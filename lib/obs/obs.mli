(** Unified observability for the whole CEC pipeline.

    One dependency-free subsystem of counters, gauges, fixed-bucket
    histograms and hierarchical timed spans, shared by the SAT solver,
    the sweeping engine, the parallel partitioner, the proof layers and
    the certification service.

    {2 Domain safety}

    A {!Registry.t} is deliberately {e not} synchronized: each worker
    domain records into its own registry at plain-field-mutation cost,
    and the registries are {!Registry.merge_into}d after the workers
    are joined.  Merging counters and histograms is associative and
    commutative, so the aggregate is independent of both the merge
    order and the number of domains — [--jobs N] produces the same
    deterministic counters for every [N].

    {2 The ambient registry}

    Instrumented code does not thread a registry through every call; it
    records into the {e ambient} registry of its domain
    (domain-local state, see {!ambient} / {!with_ambient}).  A fresh
    domain starts with a throwaway registry, so instrumentation is
    always safe to run; a caller that wants the numbers installs its
    own registry around the work and exports it afterwards. *)

(** {1 Clock} *)

module Clock : sig
  (** Wall-clock seconds used by spans and timers.  The default is
      [Sys.time] (processor time — dependency-free); executables that
      link [unix] should install [Unix.gettimeofday] at startup for
      real timelines.  Tests may install a fake clock to make timing
      deterministic. *)

  val now : unit -> float

  (** Install a clock; returns by {!set}ting again. *)
  val set : (unit -> float) -> unit
end

(** {1 Instruments} *)

module Counter : sig
  (** A monotonically increasing integer.  Merging adds. *)

  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  (** A last-write-wins float (byte counts, high-water marks,
      wall-clock totals).  Merging keeps the maximum, so gauges are
      deterministic only when every domain agrees on the value. *)

  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val get : t -> float
end

module Histogram : sig
  (** A fixed-bound bucket histogram with exact count, sum and max.
      Bucket [i] counts observations [<= bounds.(i)]; one overflow
      bucket counts the rest.  Merging adds bucket-wise and requires
      identical bounds. *)

  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val max_value : t -> float

  (** Bucket upper bounds (a copy). *)
  val bounds : t -> float array

  (** Per-bucket counts, length [Array.length (bounds h) + 1] (a copy). *)
  val buckets : t -> int array

  (** 1, 2, 5 decades from 1 to 100k — suits both milliseconds and
      clause sizes. *)
  val default_bounds : float array
end

(** {1 Registry} *)

module Registry : sig
  type t

  val create : unit -> t

  (** Find-or-create by name.  Returned handles are plain mutable
      records: hold them across a hot loop instead of re-resolving. *)

  val counter : t -> string -> Counter.t

  val gauge : t -> string -> Gauge.t

  (** @raise Invalid_argument when [name] exists with other bounds. *)
  val histogram : ?bounds:float array -> t -> string -> Histogram.t

  (** [merge_into ~into src] folds [src] into [into]: counters add,
      gauges keep the maximum, histograms add bucket-wise, span events
      are appended ([src] after [into], preserving each side's order).
      [src] is unchanged.  Counter and histogram merging is
      associative and commutative with {!create} as identity.
      @raise Invalid_argument on histogram bound mismatch. *)
  val merge_into : into:t -> t -> unit

  (** Sorted [(name, value)] views, for tests and ad-hoc reporting. *)

  val counters : t -> (string * int) list

  val gauges : t -> (string * float) list
end

(** {1 Spans} *)

module Span : sig
  (** Hierarchical timed spans.  [with_ reg name f] records a begin
      event, runs [f], and records the matching end event even when
      [f] raises — so the event sequence of one registry is always
      well-parenthesized.  Events carry the recording domain's id, so
      merged timelines keep one well-nested track per domain. *)

  val with_ : Registry.t -> string -> (unit -> 'a) -> 'a

  (** The number of recorded begin/end events (tests). *)
  val num_events : Registry.t -> int
end

(** {1 Ambient registry} *)

(** The current domain's ambient registry. *)
val ambient : unit -> Registry.t

(** [with_ambient reg f] makes [reg] ambient on this domain for the
    duration of [f] (restored afterwards, even on exceptions). *)
val with_ambient : Registry.t -> (unit -> 'a) -> 'a

(** {1 Exporters} *)

module Export : sig
  (** Flat JSON with a stable shape and sorted keys:
      [{"counters":{..},"gauges":{..},"histograms":{..}}].  Counters
      are deterministic for deterministic workloads; gauges and
      latency-valued histograms are wall-clock dependent. *)
  val stats_json : Registry.t -> string

  (** Only the counters object, sorted — the byte-comparable
      determinism surface. *)
  val counters_json : Registry.t -> string

  (** Chrome [trace_event] JSON (load in chrome://tracing or
      {{:https://ui.perfetto.dev}Perfetto}): one "B"/"E" duration
      event per span boundary, microsecond timestamps rebased to the
      earliest event, one track (tid) per recording domain. *)
  val trace_json : Registry.t -> string
end
