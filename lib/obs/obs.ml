module Clock = struct
  let clock = Atomic.make Sys.time
  let now () = (Atomic.get clock) ()
  let set f = Atomic.set clock f
end

module Counter = struct
  type t = { mutable c : int }

  let make () = { c = 0 }
  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let get t = t.c
end

module Gauge = struct
  type t = { mutable g : float }

  let make () = { g = 0.0 }
  let set t v = t.g <- v
  let add t v = t.g <- t.g +. v
  let get t = t.g
end

module Histogram = struct
  type t = {
    bounds : float array;
    buckets : int array; (* length = Array.length bounds + 1 (overflow) *)
    mutable count : int;
    mutable sum : float;
    mutable max : float;
  }

  let default_bounds =
    [|
      1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000.; 20_000.;
      50_000.; 100_000.;
    |]

  let make bounds =
    let n = Array.length bounds in
    for i = 1 to n - 1 do
      if bounds.(i - 1) >= bounds.(i) then
        invalid_arg "Obs.Histogram: bounds must be strictly increasing"
    done;
    { bounds = Array.copy bounds; buckets = Array.make (n + 1) 0; count = 0; sum = 0.0; max = 0.0 }

  (* First bucket whose bound is >= v (linear: bound arrays are tiny
     and the scan usually stops in the first few entries). *)
  let bucket_of t v =
    let n = Array.length t.bounds in
    let rec find i = if i >= n || v <= t.bounds.(i) then i else find (i + 1) in
    find 0

  let observe t v =
    let b = bucket_of t v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v > t.max then t.max <- v

  let count t = t.count
  let sum t = t.sum
  let max_value t = t.max
  let bounds t = Array.copy t.bounds
  let buckets t = Array.copy t.buckets
end

type span_phase = Begin | End

type span_event = {
  name : string;
  phase : span_phase;
  ts : float;
  tid : int;
}

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    gauges : (string, Gauge.t) Hashtbl.t;
    histograms : (string, Histogram.t) Hashtbl.t;
    mutable events : span_event list; (* newest first *)
    mutable num_events : int;
  }

  let create () =
    {
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
      events = [];
      num_events = 0;
    }

  let find_or_add tbl name make =
    match Hashtbl.find_opt tbl name with
    | Some x -> x
    | None ->
      let x = make () in
      Hashtbl.add tbl name x;
      x

  let counter t name = find_or_add t.counters name Counter.make

  let gauge t name = find_or_add t.gauges name Gauge.make

  let histogram ?bounds t name =
    match Hashtbl.find_opt t.histograms name with
    | Some h ->
      (match bounds with
      | Some b when h.Histogram.bounds <> b ->
        invalid_arg (Printf.sprintf "Obs.Registry.histogram: %S exists with different bounds" name)
      | _ -> h)
    | None ->
      let h = Histogram.make (Option.value bounds ~default:Histogram.default_bounds) in
      Hashtbl.add t.histograms name h;
      h

  let push_event t e =
    t.events <- e :: t.events;
    t.num_events <- t.num_events + 1

  let merge_into ~into src =
    Hashtbl.iter (fun name c -> Counter.add (counter into name) (Counter.get c)) src.counters;
    Hashtbl.iter
      (fun name g ->
        let dst = gauge into name in
        if Gauge.get g > Gauge.get dst then Gauge.set dst (Gauge.get g))
      src.gauges;
    Hashtbl.iter
      (fun name (h : Histogram.t) ->
        let dst = histogram ~bounds:h.Histogram.bounds into name in
        Array.iteri
          (fun i n -> dst.Histogram.buckets.(i) <- dst.Histogram.buckets.(i) + n)
          h.Histogram.buckets;
        dst.Histogram.count <- dst.Histogram.count + h.Histogram.count;
        dst.Histogram.sum <- dst.Histogram.sum +. h.Histogram.sum;
        if h.Histogram.max > dst.Histogram.max then dst.Histogram.max <- h.Histogram.max)
      src.histograms;
    (* [events] is newest-first, so appending src's list after into's
       keeps each side's chronological order within the merged list. *)
    if src.events <> [] then begin
      into.events <- src.events @ into.events;
      into.num_events <- into.num_events + src.num_events
    end

  let sorted_bindings tbl value =
    Hashtbl.fold (fun name x acc -> (name, value x) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let counters t = sorted_bindings t.counters Counter.get

  let gauges t = sorted_bindings t.gauges Gauge.get
end

module Span = struct
  let with_ (reg : Registry.t) name f =
    let tid = (Domain.self () :> int) in
    Registry.push_event reg { name; phase = Begin; ts = Clock.now (); tid };
    Fun.protect
      ~finally:(fun () -> Registry.push_event reg { name; phase = End; ts = Clock.now (); tid })
      f

  let num_events (reg : Registry.t) = reg.Registry.num_events
end

let ambient_key = Domain.DLS.new_key (fun () -> Registry.create ())

let ambient () = Domain.DLS.get ambient_key

let with_ambient reg f =
  let old = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key reg;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key old) f

module Export = struct
  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Shortest float form that still parses as a JSON number. *)
  let float_str f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f

  let obj buf fields =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, emit) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape name);
        Buffer.add_string buf "\":";
        emit buf)
      fields;
    Buffer.add_char buf '}'

  let arr buf emit_elt elts =
    Buffer.add_char buf '[';
    Array.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit_elt buf x)
      elts;
    Buffer.add_char buf ']'

  let counters_fields (reg : Registry.t) =
    List.map
      (fun (name, v) -> (name, fun buf -> Buffer.add_string buf (string_of_int v)))
      (Registry.counters reg)

  let counters_json reg =
    let buf = Buffer.create 256 in
    obj buf (counters_fields reg);
    Buffer.contents buf

  let histogram_fields (h : Histogram.t) buf =
    obj buf
      [
        ("bounds", fun buf -> arr buf (fun buf f -> Buffer.add_string buf (float_str f)) h.Histogram.bounds);
        ("buckets", fun buf -> arr buf (fun buf n -> Buffer.add_string buf (string_of_int n)) h.Histogram.buckets);
        ("count", fun buf -> Buffer.add_string buf (string_of_int h.Histogram.count));
        ("sum", fun buf -> Buffer.add_string buf (float_str h.Histogram.sum));
        ("max", fun buf -> Buffer.add_string buf (float_str h.Histogram.max));
      ]

  let stats_json (reg : Registry.t) =
    let buf = Buffer.create 1024 in
    let gauges =
      List.map
        (fun (name, v) -> (name, fun buf -> Buffer.add_string buf (float_str v)))
        (Registry.gauges reg)
    in
    let histograms =
      Hashtbl.fold (fun name h acc -> (name, h) :: acc) reg.Registry.histograms []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (name, h) -> (name, histogram_fields h))
    in
    obj buf
      [
        ("counters", fun buf -> obj buf (counters_fields reg));
        ("gauges", fun buf -> obj buf gauges);
        ("histograms", fun buf -> obj buf histograms);
      ];
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let trace_json (reg : Registry.t) =
    let events = Array.of_list (List.rev reg.Registry.events) in
    let t0 = Array.fold_left (fun acc e -> Float.min acc e.ts) Float.infinity events in
    let t0 = if Float.is_finite t0 then t0 else 0.0 in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    Array.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        obj buf
          [
            ("name", fun buf ->
                Buffer.add_char buf '"';
                Buffer.add_string buf (escape e.name);
                Buffer.add_char buf '"');
            ("cat", fun buf -> Buffer.add_string buf "\"cec\"");
            ("ph", fun buf ->
                Buffer.add_string buf (match e.phase with Begin -> "\"B\"" | End -> "\"E\""));
            ("ts", fun buf -> Buffer.add_string buf (float_str (1e6 *. (e.ts -. t0))));
            ("pid", fun buf -> Buffer.add_char buf '1');
            ("tid", fun buf -> Buffer.add_string buf (string_of_int e.tid));
          ])
      events;
    Buffer.add_string buf "]}\n";
    Buffer.contents buf
end
