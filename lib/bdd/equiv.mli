(** BDD-based combinational equivalence checking — the pre-SAT
    baseline.  Builds both circuits' output BDDs in one manager;
    canonicity makes each output comparison a node-id check.  No proof
    is produced (canonicity {e is} the argument), which is precisely
    the gap the resolution-proof engines close; the benchmark harness
    uses this engine to reproduce the classic blow-up-on-multipliers
    comparison. *)

type verdict =
  | Equivalent
  | Inequivalent of bool array  (** distinguishing input assignment *)
  | Blowup  (** the node limit was hit before an answer *)

type report = {
  verdict : verdict;
  bdd_nodes : int;  (** nodes allocated when finishing (or at the cap) *)
}

(** Static variable order: inputs in first-visit order of a depth-first
    traversal from the outputs (of both circuits).  On chained
    datapaths this interleaves the operands, which is the difference
    between linear and exponential adder BDDs. *)
val dfs_order : Aig.t -> Aig.t -> int array

(** [check ?max_nodes a b] compares all output pairs, using
    {!dfs_order} for the variable order.
    @raise Invalid_argument if interfaces differ. *)
val check : ?max_nodes:int -> Aig.t -> Aig.t -> report

(** [check_pair ?max_nodes g] compares outputs 0 and 1 of a single
    graph — the cone-level query of the sweeping-engine portfolio,
    where both candidate literals are extracted as outputs of one
    shared-input cone.  An [Inequivalent] assignment is over [g]'s own
    inputs (the caller maps it back through its cone-extraction node
    map).  @raise Invalid_argument unless [g] has at least two
    outputs. *)
val check_pair : ?max_nodes:int -> Aig.t -> report
