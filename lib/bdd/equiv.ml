type verdict =
  | Equivalent
  | Inequivalent of bool array
  | Blowup

type report = { verdict : verdict; bdd_nodes : int }

(* Inputs in first-visit order of a DFS from the outputs: a cheap
   static-order heuristic that interleaves operands of chained
   datapaths (a0 b0 a1 b1 ... for a ripple adder). *)
let dfs_order a b =
  let n = Aig.num_inputs a in
  let position = Array.make n (-1) in
  let next = ref 0 in
  let visit_graph g =
    let seen = Array.make (Aig.num_nodes g) false in
    let rec visit node =
      if node <> 0 && not seen.(node) then begin
        seen.(node) <- true;
        if Aig.is_input_node g node then begin
          let i = node - 1 in
          if position.(i) < 0 then begin
            position.(i) <- !next;
            incr next
          end
        end
        else begin
          visit (Aig.Lit.var (Aig.fanin0 g node));
          visit (Aig.Lit.var (Aig.fanin1 g node))
        end
      end
    in
    Array.iter (fun l -> visit (Aig.Lit.var l)) (Aig.outputs g)
  in
  visit_graph a;
  visit_graph b;
  (* Unreferenced inputs take the remaining positions. *)
  Array.iteri
    (fun i p ->
      if p < 0 then begin
        position.(i) <- !next;
        incr next
      end)
    position;
  position

(* Compare the first two outputs of a single graph — the cone-level
   query the sweeping-engine portfolio asks ("is node n equal to its
   class leader?"), with both candidate literals extracted as outputs
   of one shared-input cone.  Canonicity settles equality by node-id
   comparison; a differing pair yields a distinguishing assignment over
   the cone's own inputs. *)
let check_pair ?max_nodes g =
  if Aig.num_outputs g < 2 then invalid_arg "Equiv.check_pair: expected two outputs";
  let order = dfs_order g g in
  let t = Manager.create ?max_nodes ~num_vars:(Aig.num_inputs g) () in
  match
    let outs = Manager.of_aig ~order t g in
    if outs.(0) = outs.(1) then Equivalent
    else
      let diff = Manager.xor_ t outs.(0) outs.(1) in
      match Manager.any_sat t diff with
      | Some by_bdd_var ->
        Inequivalent (Array.init (Aig.num_inputs g) (fun i -> by_bdd_var.(order.(i))))
      | None -> Equivalent
  with
  | verdict -> { verdict; bdd_nodes = Manager.size t }
  | exception Manager.Node_limit -> { verdict = Blowup; bdd_nodes = Manager.size t }

let check ?max_nodes a b =
  if Aig.num_inputs a <> Aig.num_inputs b then invalid_arg "Equiv.check: input counts differ";
  if Aig.num_outputs a <> Aig.num_outputs b then invalid_arg "Equiv.check: output counts differ";
  let order = dfs_order a b in
  let t = Manager.create ?max_nodes ~num_vars:(Aig.num_inputs a) () in
  match
    let outs_a = Manager.of_aig ~order t a in
    let outs_b = Manager.of_aig ~order t b in
    let rec compare_outputs i =
      if i >= Array.length outs_a then Equivalent
      else if outs_a.(i) = outs_b.(i) then compare_outputs (i + 1)
      else
        let diff = Manager.xor_ t outs_a.(i) outs_b.(i) in
        match Manager.any_sat t diff with
        | Some by_bdd_var ->
          (* Map the model back from BDD variables to input indices. *)
          Inequivalent (Array.init (Aig.num_inputs a) (fun i -> by_bdd_var.(order.(i))))
        | None -> compare_outputs (i + 1)
    in
    compare_outputs 0
  with
  | verdict -> { verdict; bdd_nodes = Manager.size t }
  | exception Manager.Node_limit -> { verdict = Blowup; bdd_nodes = Manager.size t }
