let check_interfaces a b =
  if Graph.num_inputs a <> Graph.num_inputs b then
    invalid_arg "Miter.build: input counts differ";
  if Graph.num_outputs a <> Graph.num_outputs b then
    invalid_arg "Miter.build: output counts differ";
  if Graph.num_outputs a = 0 then invalid_arg "Miter.build: circuits have no outputs"

let build_common a b =
  check_interfaces a b;
  let g = Graph.create ~num_inputs:(Graph.num_inputs a) in
  let inputs = Array.init (Graph.num_inputs a) (Graph.input g) in
  let outs_a = Graph.append g a ~inputs in
  let outs_b = Graph.append g b ~inputs in
  let diffs = Array.map2 (Graph.xor_ g) outs_a outs_b in
  (g, diffs)

let build_detailed a b =
  let g, diffs = build_common a b in
  Graph.add_output g (Graph.or_list g (Array.to_list diffs));
  (g, diffs)

let build a b = fst (build_detailed a b)

let build_pairwise a b =
  let g, diffs = build_common a b in
  Array.iter (Graph.add_output g) diffs;
  g

let of_lits g a b = Graph.xor_ g a b
