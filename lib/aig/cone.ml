let visit_tfi g lits =
  let seen = Array.make (Graph.num_nodes g) false in
  let rec visit n =
    if n <> 0 && not seen.(n) then begin
      seen.(n) <- true;
      if Graph.is_and_node g n then begin
        visit (Lit.var (Graph.fanin0 g n));
        visit (Lit.var (Graph.fanin1 g n))
      end
    end
  in
  List.iter (fun l -> visit (Lit.var l)) lits;
  seen

let collect seen p =
  let acc = ref [] in
  for n = Array.length seen - 1 downto 0 do
    if seen.(n) && p n then acc := n :: !acc
  done;
  Array.of_list !acc

let tfi g lits = collect (visit_tfi g lits) (fun n -> n <> 0)
let tfi_ands g lits = collect (visit_tfi g lits) (Graph.is_and_node g)

let tfi_ands_above g lits ~stop =
  let seen = Array.make (Graph.num_nodes g) false in
  let rec visit n =
    if n <> 0 && not seen.(n) && not (stop n) then begin
      seen.(n) <- true;
      if Graph.is_and_node g n then begin
        visit (Lit.var (Graph.fanin0 g n));
        visit (Lit.var (Graph.fanin1 g n))
      end
    end
  in
  List.iter (fun l -> visit (Lit.var l)) lits;
  collect seen (Graph.is_and_node g)

let support g lits =
  let seen = visit_tfi g lits in
  collect seen (Graph.is_input_node g) |> Array.map (fun n -> n - 1)

let size g lits = Array.length (tfi_ands g lits)
