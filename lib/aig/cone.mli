(** Transitive fanin cones and structural supports. *)

(** [tfi g lits] is the set of node identifiers in the transitive
    fanin of [lits] (including the literals' own nodes, excluding the
    constant), as a sorted array. *)
val tfi : Graph.t -> Lit.t list -> int array

(** Same, restricted to AND nodes, in topological order. *)
val tfi_ands : Graph.t -> Lit.t list -> int array

(** AND nodes in the transitive fanin of [lits] that lie strictly
    above the frontier: traversal does not enter (or include) nodes
    satisfying [stop].  Used by the partitioned checker to isolate the
    output-combining layer of a miter from the per-output cones. *)
val tfi_ands_above : Graph.t -> Lit.t list -> stop:(int -> bool) -> int array

(** Primary-input indices (0-based) in the structural support. *)
val support : Graph.t -> Lit.t list -> int array

(** Number of AND nodes in the cone. *)
val size : Graph.t -> Lit.t list -> int
