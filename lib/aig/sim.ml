type t = { g : Graph.t; words : int; table : int64 array (* node * words, row-major *) }

let create g ~words =
  if words <= 0 then invalid_arg "Sim.create: words must be positive";
  { g; words; table = Array.make (Graph.num_nodes g * words) 0L }

let graph sim = sim.g
let words sim = sim.words
let num_patterns sim = 64 * sim.words

let base sim node = node * sim.words

let randomize_inputs sim rng =
  for i = 0 to Graph.num_inputs sim.g - 1 do
    let b = base sim (1 + i) in
    for w = 0 to sim.words - 1 do
      sim.table.(b + w) <- Support.Rng.int64 rng
    done
  done

let set_input_word sim ~input ~word v =
  if input < 0 || input >= Graph.num_inputs sim.g then
    invalid_arg "Sim.set_input_word: input out of range";
  if word < 0 || word >= sim.words then invalid_arg "Sim.set_input_word: word out of range";
  sim.table.(base sim (1 + input) + word) <- v

let set_input_bit sim ~input ~bit b =
  if bit < 0 || bit >= num_patterns sim then invalid_arg "Sim.set_input_bit: bit out of range";
  let w = bit / 64 and off = bit mod 64 in
  let idx = base sim (1 + input) + w in
  let mask = Int64.shift_left 1L off in
  sim.table.(idx) <-
    (if b then Int64.logor sim.table.(idx) mask
     else Int64.logand sim.table.(idx) (Int64.lognot mask))

let run sim =
  let g = sim.g and table = sim.table and words = sim.words in
  Graph.iter_ands g (fun n ->
      let f0 = Graph.fanin0 g n and f1 = Graph.fanin1 g n in
      let b0 = base sim (Lit.var f0) and b1 = base sim (Lit.var f1) and bn = base sim n in
      let neg0 = Lit.is_neg f0 and neg1 = Lit.is_neg f1 in
      for w = 0 to words - 1 do
        let v0 = Array.unsafe_get table (b0 + w) in
        let v0 = if neg0 then Int64.lognot v0 else v0 in
        let v1 = Array.unsafe_get table (b1 + w) in
        let v1 = if neg1 then Int64.lognot v1 else v1 in
        Array.unsafe_set table (bn + w) (Int64.logand v0 v1)
      done)

let node_values sim node =
  Array.sub sim.table (base sim node) sim.words

let lit_word sim l w =
  let v = sim.table.(base sim (Lit.var l) + w) in
  if Lit.is_neg l then Int64.lognot v else v

let lit_values sim l = Array.init sim.words (fun w -> lit_word sim l w)

let lit_bit sim l ~bit =
  if bit < 0 || bit >= num_patterns sim then invalid_arg "Sim.lit_bit: bit out of range";
  let w = bit / 64 and off = bit mod 64 in
  Int64.logand (Int64.shift_right_logical (lit_word sim l w) off) 1L = 1L

(* Exhaustive stimulus: pattern index = input assignment.  For input i,
   bit p of its stimulus is bit i of p.  For i < 6 these are the
   classic truth-table constants; beyond, whole words alternate. *)
let truth_table_exn g l n =
  let patterns = max 1 (1 lsl n) in
  let words = max 1 (patterns / 64) in
  let sim = create g ~words in
  for i = 0 to n - 1 do
    for w = 0 to words - 1 do
      let v = ref 0L in
      for off = 0 to min 63 (patterns - 1) do
        let p = (w * 64) + off in
        if (p lsr i) land 1 = 1 then v := Int64.logor !v (Int64.shift_left 1L off)
      done;
      set_input_word sim ~input:i ~word:w !v
    done
  done;
  run sim;
  let result = lit_values sim l in
  (* Mask off unused pattern bits when fewer than 64 patterns exist. *)
  if patterns < 64 then begin
    let mask = Int64.sub (Int64.shift_left 1L patterns) 1L in
    result.(0) <- Int64.logand result.(0) mask
  end;
  result

let truth_table_opt g l =
  let n = Graph.num_inputs g in
  if n > 16 then None else Some (truth_table_exn g l n)

let truth_table g l =
  let n = Graph.num_inputs g in
  if n > 16 then invalid_arg "Sim.truth_table: more than 16 inputs";
  truth_table_exn g l n

let equal_functions g a b = truth_table g a = truth_table g b
