(** Miter construction for equivalence checking.

    A miter of two combinational circuits with identical interfaces is
    a single-output circuit that evaluates to 1 exactly on the input
    assignments where the circuits disagree; the circuits are
    equivalent iff the miter output is constant 0. *)

(** [build a b] shares the primary inputs, XORs outputs pairwise and
    ORs the disagreement bits into the single output.
    @raise Invalid_argument if interfaces differ. *)
val build : Graph.t -> Graph.t -> Graph.t

(** Like {!build}, also returning the per-output disagreement literals
    (the XOR of each output pair, before the OR reduction).  The
    partitioned checker splits the check along these literals and
    still certifies the combined single-output miter. *)
val build_detailed : Graph.t -> Graph.t -> Graph.t * Lit.t array

(** Pairwise miter: one output per output pair, not ORed together
    (useful for per-output equivalence checking and for sweeping
    statistics). *)
val build_pairwise : Graph.t -> Graph.t -> Graph.t

(** [of_lits g a b] appends to [g] a literal that is 1 iff [a <> b]. *)
val of_lits : Graph.t -> Lit.t -> Lit.t -> Lit.t
