(** And-Inverter Graphs with structural hashing.

    A graph holds one constant node (variable 0), a fixed set of
    primary inputs (variables 1..n), and two-input AND nodes whose
    fanins are {!Lit.t} values referring to earlier nodes, so node
    identifiers are a topological order by construction.  [and_]
    performs one-level constant folding and structural hashing, so
    building the same expression twice yields the same literal.

    Outputs are an ordered list of literals designating the functions
    the graph computes. *)

type t

(** [create ~num_inputs] is a graph with the given primary inputs and
    no AND nodes or outputs. *)
val create : num_inputs:int -> t

val num_inputs : t -> int

(** Total number of nodes: constant + inputs + ANDs. *)
val num_nodes : t -> int

val num_ands : t -> int
val num_outputs : t -> int

(** Positive literal of primary input [i] (0-based).
    @raise Invalid_argument if out of range. *)
val input : t -> int -> Lit.t

(** {1 Construction} *)

(** Structurally hashed AND with one-level simplification:
    [x AND true = x], [x AND false = false], [x AND x = x],
    [x AND not x = false]. *)
val and_ : t -> Lit.t -> Lit.t -> Lit.t

val or_ : t -> Lit.t -> Lit.t -> Lit.t
val xor_ : t -> Lit.t -> Lit.t -> Lit.t
val xnor_ : t -> Lit.t -> Lit.t -> Lit.t
val implies : t -> Lit.t -> Lit.t -> Lit.t

(** [mux g ~sel ~t ~e] is [if sel then t else e]. *)
val mux : t -> sel:Lit.t -> t:Lit.t -> e:Lit.t -> Lit.t

(** Conjunction / disjunction of a list (balanced tree). *)
val and_list : t -> Lit.t list -> Lit.t

val or_list : t -> Lit.t list -> Lit.t

val add_output : t -> Lit.t -> unit
val output : t -> int -> Lit.t
val outputs : t -> Lit.t array

(** Replace output [i]'s literal (used by rewriting). *)
val set_output : t -> int -> Lit.t -> unit

(** {1 Structure access} *)

(** Node classification by identifier. *)
val is_const_node : t -> int -> bool

val is_input_node : t -> int -> bool
val is_and_node : t -> int -> bool

(** Fanins of an AND node.  @raise Invalid_argument otherwise. *)
val fanin0 : t -> int -> Lit.t

val fanin1 : t -> int -> Lit.t

(** [iter_ands g f] applies [f] to every AND node identifier in
    topological (= increasing) order. *)
val iter_ands : t -> (int -> unit) -> unit

(** Logic level of every node (inputs and constant at level 0). *)
val levels : t -> int array

(** Largest logic level over the outputs. *)
val depth : t -> int

(** {1 Whole-graph operations} *)

(** [append dst src ~inputs] copies [src]'s AND structure into [dst],
    substituting [inputs.(i)] (a [dst] literal) for [src]'s input [i],
    and returns the [dst] literals corresponding to [src]'s outputs.
    Structural hashing applies, so shared structure is reused.
    @raise Invalid_argument if [inputs] has the wrong length. *)
val append : t -> t -> inputs:Lit.t array -> Lit.t array

(** [extract_cone g lits] is a fresh graph computing exactly [lits]
    (as its outputs, in order) over the same primary inputs, containing
    only the AND nodes in the transitive fanin of [lits]. *)
val extract_cone : t -> Lit.t list -> t

(** Like {!extract_cone}, also returning the node correspondence:
    element [m] of the array is the [g] node that fresh node [m]
    stands for (the constant and the primary inputs map to
    themselves).  The map lets clients translate cone-local literals —
    and resolution proofs over the cone's Tseitin CNF — back into the
    original graph's numbering. *)
val extract_cone_map : t -> Lit.t list -> t * int array

(** Rebuild the graph keeping only nodes reachable from the outputs;
    returns the compacted graph. *)
val cleanup : t -> t

(** Evaluate the outputs under a Boolean input assignment
    (a reference semantics used by tests and counterexample replay). *)
val eval : t -> bool array -> bool array

(** Evaluate an arbitrary literal under an input assignment. *)
val eval_lit : t -> bool array -> Lit.t -> bool

(** Structural invariant check (fanins precede nodes, hash is
    consistent); raises [Failure] describing the first violation. *)
val check : t -> unit

val pp_stats : Format.formatter -> t -> unit
