module Veci = Support.Veci

type t = {
  num_inputs : int;
  fan0 : Veci.t; (* indexed by AND slot: node id - first_and *)
  fan1 : Veci.t;
  strash : (int * int, int) Hashtbl.t; (* (f0, f1) normalized -> node id *)
  outs : Veci.t;
}

let first_and g = 1 + g.num_inputs

let create ~num_inputs =
  if num_inputs < 0 then invalid_arg "Graph.create: negative input count";
  {
    num_inputs;
    fan0 = Veci.create ();
    fan1 = Veci.create ();
    strash = Hashtbl.create 1024;
    outs = Veci.create ();
  }

let num_inputs g = g.num_inputs
let num_ands g = Veci.size g.fan0
let num_nodes g = first_and g + num_ands g
let num_outputs g = Veci.size g.outs

let input g i =
  if i < 0 || i >= g.num_inputs then invalid_arg "Graph.input: out of range";
  Lit.of_var (1 + i)

let is_const_node _ n = n = 0
let is_input_node g n = n >= 1 && n <= g.num_inputs
let is_and_node g n = n >= first_and g && n < num_nodes g

let fanin0 g n =
  if not (is_and_node g n) then invalid_arg "Graph.fanin0: not an AND node";
  Veci.get g.fan0 (n - first_and g)

let fanin1 g n =
  if not (is_and_node g n) then invalid_arg "Graph.fanin1: not an AND node";
  Veci.get g.fan1 (n - first_and g)

(* One-level simplification and structural hashing.  Fanins are
   normalized so that [f0 <= f1]; this is the canonical key. *)
let and_ g a b =
  let check_lit l =
    if Lit.var l >= num_nodes g then invalid_arg "Graph.and_: literal out of range"
  in
  check_lit a;
  check_lit b;
  let f0, f1 = if a <= b then (a, b) else (b, a) in
  if f0 = Lit.false_ then Lit.false_
  else if f0 = Lit.true_ then f1
  else if f0 = f1 then f0
  else if f0 = Lit.neg f1 then Lit.false_
  else
    match Hashtbl.find_opt g.strash (f0, f1) with
    | Some n -> Lit.of_var n
    | None ->
      let n = num_nodes g in
      Veci.push g.fan0 f0;
      Veci.push g.fan1 f1;
      Hashtbl.add g.strash (f0, f1) n;
      Lit.of_var n

let or_ g a b = Lit.neg (and_ g (Lit.neg a) (Lit.neg b))
let implies g a b = Lit.neg (and_ g a (Lit.neg b))

let xor_ g a b =
  (* (a AND not b) OR (not a AND b) *)
  or_ g (and_ g a (Lit.neg b)) (and_ g (Lit.neg a) b)

let xnor_ g a b = Lit.neg (xor_ g a b)

let mux g ~sel ~t ~e = or_ g (and_ g sel t) (and_ g (Lit.neg sel) e)

(* Balanced reduction keeps depth logarithmic, which matters for the
   simulation and SAT behaviour of generated benchmark circuits. *)
let rec reduce_balanced g op = function
  | [] -> invalid_arg "Graph.reduce_balanced: empty list"
  | [ l ] -> l
  | lits ->
    let rec pair = function
      | [] -> []
      | [ l ] -> [ l ]
      | a :: b :: rest -> op g a b :: pair rest
    in
    reduce_balanced g op (pair lits)

let and_list g = function
  | [] -> Lit.true_
  | lits -> reduce_balanced g and_ lits

let or_list g = function
  | [] -> Lit.false_
  | lits -> reduce_balanced g or_ lits

let add_output g l =
  if Lit.var l >= num_nodes g then invalid_arg "Graph.add_output: literal out of range";
  Veci.push g.outs l

let output g i =
  if i < 0 || i >= num_outputs g then invalid_arg "Graph.output: out of range";
  Veci.get g.outs i

let outputs g = Veci.to_array g.outs

let set_output g i l =
  if i < 0 || i >= num_outputs g then invalid_arg "Graph.set_output: out of range";
  if Lit.var l >= num_nodes g then invalid_arg "Graph.set_output: literal out of range";
  Veci.set g.outs i l

let iter_ands g f =
  for n = first_and g to num_nodes g - 1 do
    f n
  done

let levels g =
  let level = Array.make (num_nodes g) 0 in
  iter_ands g (fun n ->
      let l0 = level.(Lit.var (fanin0 g n)) and l1 = level.(Lit.var (fanin1 g n)) in
      level.(n) <- 1 + max l0 l1);
  level

let depth g =
  let level = levels g in
  Array.fold_left (fun acc l -> max acc level.(Lit.var l)) 0 (outputs g)

let append dst src ~inputs =
  if Array.length inputs <> src.num_inputs then
    invalid_arg "Graph.append: input map has wrong length";
  let map = Array.make (num_nodes src) Lit.false_ in
  (* map.(n) is the dst literal for src's positive literal of node n *)
  map.(0) <- Lit.false_;
  for i = 0 to src.num_inputs - 1 do
    map.(1 + i) <- inputs.(i)
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  iter_ands src (fun n -> map.(n) <- and_ dst (map_lit (fanin0 src n)) (map_lit (fanin1 src n)));
  Array.map map_lit (outputs src)

let extract_cone_map g lits =
  let fresh = create ~num_inputs:g.num_inputs in
  let map = Array.make (num_nodes g) Lit.false_ in
  let visited = Array.make (num_nodes g) false in
  (* back.(m) is the [g] node that fresh node [m] stands for; the
     constant and the inputs map to themselves. *)
  let back = Veci.make (first_and g) 0 in
  visited.(0) <- true;
  for i = 0 to g.num_inputs - 1 do
    visited.(1 + i) <- true;
    map.(1 + i) <- input fresh i;
    Veci.set back (1 + i) (1 + i)
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  let rec visit n =
    if not visited.(n) then begin
      visited.(n) <- true;
      let f0 = fanin0 g n and f1 = fanin1 g n in
      visit (Lit.var f0);
      visit (Lit.var f1);
      let before = num_nodes fresh in
      map.(n) <- and_ fresh (map_lit f0) (map_lit f1);
      (* The mapping is injective and [g] holds no foldable node, so
         every visit allocates; keep the guard anyway. *)
      if num_nodes fresh > before then Veci.push back n
    end
  in
  List.iter
    (fun l ->
      visit (Lit.var l);
      add_output fresh (map_lit l))
    lits;
  (fresh, Veci.to_array back)

let extract_cone g lits = fst (extract_cone_map g lits)

let cleanup g = extract_cone g (Array.to_list (outputs g))

let eval g assignment =
  if Array.length assignment <> g.num_inputs then
    invalid_arg "Graph.eval: assignment has wrong length";
  let value = Array.make (num_nodes g) false in
  for i = 0 to g.num_inputs - 1 do
    value.(1 + i) <- assignment.(i)
  done;
  let lit_value l = value.(Lit.var l) <> Lit.is_neg l in
  iter_ands g (fun n -> value.(n) <- lit_value (fanin0 g n) && lit_value (fanin1 g n));
  Array.map lit_value (outputs g)

let eval_lit g assignment l =
  let cone = extract_cone g [ l ] in
  (eval cone assignment).(0)

let check g =
  iter_ands g (fun n ->
      let f0 = fanin0 g n and f1 = fanin1 g n in
      if Lit.var f0 >= n || Lit.var f1 >= n then
        failwith (Printf.sprintf "Graph.check: node %d has non-topological fanin" n);
      if f0 > f1 then failwith (Printf.sprintf "Graph.check: node %d fanins not normalized" n);
      match Hashtbl.find_opt g.strash (f0, f1) with
      | Some m when m = n -> ()
      | _ -> failwith (Printf.sprintf "Graph.check: node %d missing from strash table" n));
  Array.iter
    (fun l ->
      if Lit.var l >= num_nodes g then failwith "Graph.check: dangling output literal")
    (outputs g)

let pp_stats fmt g =
  Format.fprintf fmt "inputs=%d ands=%d outputs=%d depth=%d" (num_inputs g) (num_ands g)
    (num_outputs g) (depth g)
