(** Bit-parallel simulation of AIGs.

    Each node carries [words] 64-bit simulation words, so one pass
    evaluates the graph under [64 * words] input patterns at once.
    This is the workhorse behind candidate-equivalence detection in
    SAT sweeping and behind the semantic test oracles. *)

type t

(** Allocate a simulator for [g] with [words] 64-bit words per node.
    Input words start at zero. *)
val create : Graph.t -> words:int -> t

val graph : t -> Graph.t
val words : t -> int

(** Fill every input word from the generator. *)
val randomize_inputs : t -> Support.Rng.t -> unit

(** [set_input_word sim ~input ~word v] sets one 64-bit slice of a
    primary input's stimulus. *)
val set_input_word : t -> input:int -> word:int -> int64 -> unit

(** [set_input_bit sim ~input ~bit b] sets pattern [bit] (0-based,
    across all words) of a primary input. *)
val set_input_bit : t -> input:int -> bit:int -> bool -> unit

(** Recompute all AND nodes from the current input stimulus. *)
val run : t -> unit

(** Simulation words of a node's positive literal (no copy: do not
    mutate). *)
val node_values : t -> int -> int64 array

(** [lit_word sim l w] is word [w] of literal [l] (complemented as
    needed). *)
val lit_word : t -> Lit.t -> int -> int64

(** All words of a literal, as a fresh array. *)
val lit_values : t -> Lit.t -> int64 array

(** [lit_bit sim l ~bit] extracts one simulated pattern. *)
val lit_bit : t -> Lit.t -> bit:int -> bool

(** Number of patterns ([64 * words]). *)
val num_patterns : t -> int

(** {1 Truth tables}

    For graphs with at most 16 inputs, exhaustive simulation gives the
    complete truth table of a literal: bit [i] of the result is the
    value under the assignment encoded by the binary expansion of [i]
    (input 0 is the least significant). *)

(** @raise Invalid_argument when the graph has more than 16 inputs. *)
val truth_table : Graph.t -> Lit.t -> int64 array

(** Total variant: [None] when the graph has more than 16 inputs.
    Engine selectors probing arbitrary cones use this so a wide cone
    degrades to "no truth table" instead of an exception. *)
val truth_table_opt : Graph.t -> Lit.t -> int64 array option

(** Compare two literals' truth tables (same graph, <= 16 inputs). *)
val equal_functions : Graph.t -> Lit.t -> Lit.t -> bool
