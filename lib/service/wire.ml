let read_line ?(max_bytes = 65536) fd =
  let buf = Buffer.create 128 in
  let chunk = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > max_bytes then Error "request too long"
    else
      match Unix.read fd chunk 0 1 with
      | 0 -> if Buffer.length buf = 0 then Error "connection closed" else Ok (Buffer.contents buf)
      | _ ->
        let c = Bytes.get chunk 0 in
        if c = '\n' then Ok (Buffer.contents buf)
        else begin
          Buffer.add_char buf c;
          go ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let write_all fd s =
  let data = Bytes.unsafe_of_string s in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      match Unix.write fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write_line fd s = write_all fd (s ^ "\n")
