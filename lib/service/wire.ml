let deadline_error = "deadline exceeded"

let chunk_size = 4096

(* Wait until [fd] is readable, or the absolute [deadline] passes.
   [true] = readable; [false] = deadline exceeded.  EINTR resumes with
   the remaining time. *)
let wait_readable fd deadline =
  match deadline with
  | None -> true
  | Some d ->
    let rec go () =
      let left = d -. Unix.gettimeofday () in
      if left <= 0.0 then false
      else
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

let wait_writable fd deadline =
  match deadline with
  | None -> true
  | Some d ->
    let rec go () =
      let left = d -. Unix.gettimeofday () in
      if left <= 0.0 then false
      else
        match Unix.select [] [ fd ] [] left with
        | _, [], _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

(* Consume exactly [want] bytes that a MSG_PEEK just reported present.
   A single [read] may still return short (signals, socket buffers),
   so loop; the bytes cannot vanish — we are the only reader. *)
let drain_exact fd buf want =
  let got = ref 0 in
  while !got < want do
    match Unix.read fd buf !got (want - !got) with
    | 0 -> raise (Unix.Unix_error (Unix.ECONNRESET, "read", "peer vanished mid-line"))
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Position of '\n' within the first [n] bytes, if any. *)
let newline_within buf n =
  let rec go i = if i >= n then None else if Bytes.get buf i = '\n' then Some i else go (i + 1) in
  go 0

(* Sockets take the chunked MSG_PEEK path: peek a chunk, then consume
   exactly up to (and including) the newline, so nothing past the
   frame is ever read — and a 64 KiB certificate body costs ~16
   syscall pairs instead of 64k one-byte reads.  Non-socket
   descriptors (pipes in tests) fall back to byte-at-a-time reads,
   which never over-read by construction. *)
let read_line ?(max_bytes = 65536) ?deadline fd =
  let acc = Buffer.create 128 in
  let chunk = Bytes.create chunk_size in
  let finish_eof () =
    if Buffer.length acc = 0 then Error "connection closed" else Ok (Buffer.contents acc)
  in
  let byte = Bytes.create 1 in
  let rec slow () =
    if Buffer.length acc > max_bytes then Error "request too long"
    else if not (wait_readable fd deadline) then Error deadline_error
    else
      match Unix.read fd byte 0 1 with
      | 0 -> finish_eof ()
      | _ ->
        if Bytes.get byte 0 = '\n' then Ok (Buffer.contents acc)
        else begin
          Buffer.add_char acc (Bytes.get byte 0);
          slow ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> slow ()
  in
  let rec fast () =
    if Buffer.length acc > max_bytes then Error "request too long"
    else if not (wait_readable fd deadline) then Error deadline_error
    else
      match Unix.recv fd chunk 0 chunk_size [ Unix.MSG_PEEK ] with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fast ()
      | exception Unix.Unix_error ((Unix.ENOTSOCK | Unix.EINVAL | Unix.EOPNOTSUPP), _, _) ->
        slow ()
      | 0 -> finish_eof ()
      | n -> (
        match newline_within chunk n with
        | Some i ->
          drain_exact fd chunk (i + 1);
          Buffer.add_subbytes acc chunk 0 i;
          if Buffer.length acc > max_bytes then Error "request too long"
          else Ok (Buffer.contents acc)
        | None ->
          drain_exact fd chunk n;
          Buffer.add_subbytes acc chunk 0 n;
          fast ())
  in
  fast ()

let write_all ?deadline fd s =
  let data = Bytes.unsafe_of_string s in
  let len = Bytes.length data in
  match deadline with
  | None ->
    let rec go off =
      if off < len then
        match Unix.write fd data off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0
  | Some _ ->
    (* A blocking stream-socket write parks until the WHOLE buffer is
       queued, so select's 1-byte writability is no deadline: the fd
       must be non-blocking for the write itself to stay bounded. *)
    Unix.set_nonblock fd;
    Fun.protect
      ~finally:(fun () -> try Unix.clear_nonblock fd with Unix.Unix_error _ -> ())
      (fun () ->
        let rec go off =
          if off < len then
            if not (wait_writable fd deadline) then
              raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", deadline_error))
            else
              match Unix.write fd data off (len - off) with
              | n -> go (off + n)
              | exception
                  Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                go off
        in
        go 0)

let write_line ?deadline fd s = write_all ?deadline fd (s ^ "\n")
