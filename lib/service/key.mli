(** Content addressing of circuit pairs.

    The certificate store ({!Store}) is keyed by a structural hash of
    the {e normalized} (golden, revised) pair: both graphs are passed
    through {!normalize} (dead-node elimination via [Aig.cleanup], so
    unreferenced logic cannot perturb the key), serialized in the
    deterministic ASCII AIGER encoding, and digested together with a
    format-version tag.  Two requests naming structurally identical
    live logic therefore map to the same certificate, while any
    structural difference — including a different node numbering of the
    live logic — yields a different key.  This is content addressing on
    structure, not on function: functionally equal but structurally
    different pairs are distinct entries (deciding functional equality
    is the service's whole job). *)

type t

(** Bumped whenever the key derivation changes; mixed into the digest
    so stores written by older derivations can never serve a new one. *)
val format_version : int

(** Dead-node elimination ([Aig.cleanup]).  The service solves, stores
    and validates certificates against the normalized pair, so keys and
    proofs always talk about the same graphs. *)
val normalize : Aig.t -> Aig.t

(** Structural hash of the normalized pair ({!normalize} is applied
    internally; passing already-normalized graphs is idempotent). *)
val of_pair : Aig.t -> Aig.t -> t

(** Lowercase hex rendering (doubles as the on-disk object filename). *)
val to_hex : t -> string

(** Parse a hex rendering; [None] unless it is exactly a 32-character
    lowercase hex string. *)
val of_hex : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
