(** The certification daemon: a Unix-domain-socket server that answers
    {!Protocol} requests from a persistent {!Store}, solving misses on
    the {!Engine} (and thus the {!Cec_core.Parallel} domain pool).

    {2 Life cycle}

    [run] binds the socket, spawns the worker domains and enters the
    accept loop.  Each connection carries exactly one request; [check]
    requests are parsed, normalized and keyed by the accept loop, then
    pushed onto a {e bounded} queue — a full queue bounces the request
    immediately with an error response (backpressure) instead of
    letting latency grow without bound.  Worker domains pop jobs,
    consult the store, solve misses, persist the verdict and reply.

    A request's deadline (its [TIMEOUT_MS], or the configured default)
    travels with the job: a job whose deadline expired while queued is
    cancelled without solving, and an in-flight solve re-checks the
    deadline at every budget-escalation round boundary.

    On SIGINT/SIGTERM — or a [shutdown] request — the server stops
    accepting, {e drains} the queue (every accepted request is still
    answered), joins the workers, persists the store index, removes the
    socket, and returns the final metrics.  When [log] is set the
    metrics and store counters are also printed to stderr.

    {2 Failure behaviour}

    A job whose processing raises (including the injected
    [worker.crash] {!Fault}) is re-enqueued once; a second crash
    answers its client with a typed [worker_crashed] error — accepted
    connections are always answered, never left hanging.  A worker
    loop that dies outside the per-job handler is restarted by a
    supervisor (counted in [worker_restarts]).  A degraded solve
    (crashed partitions, failed certificate stitching) is reported as
    status ["uncertified"] with a [reason] field rather than claiming
    a verdict, and its result is not cached.  At startup a stale
    socket file is removed only after a probe connect proves no daemon
    is listening, and the store runs {!Store.fsck} before serving. *)

type config = {
  socket_path : string;
  store_dir : string;
  store_capacity : int option;  (** store byte cap ([None] unbounded) *)
  paranoid : bool;  (** re-validate certificates before serving *)
  workers : int;  (** worker domains consuming the queue (min 1) *)
  queue_capacity : int;  (** bounced beyond this many queued jobs *)
  engine : Engine.config;
  default_timeout_ms : int option;
      (** deadline for requests that do not carry their own *)
  log : bool;  (** per-request and shutdown logging to stderr *)
  clock : unit -> float;
      (** time source for deadlines and latencies (default
          [Unix.gettimeofday]); tests inject a fake clock to make the
          deadline paths deterministic *)
  stats_out : string option;
      (** write {!Obs.Export.stats_json} of the full pipeline registry
          (request metrics + merged worker-domain counters) here at
          shutdown *)
  trace_out : string option;
      (** write {!Obs.Export.trace_json} here at shutdown *)
}

(** One worker, queue of 64, paranoid, unbounded store, no default
    deadline, [Engine.default_config], logging on. *)
val default_config : socket_path:string -> store_dir:string -> config

(** Run until shutdown; returns the final request metrics and store
    counters.  @raise Unix.Unix_error when the socket cannot be bound,
    [Failure] when [socket_path] exists and is not a socket. *)
val run : config -> Metrics.snapshot * Store.stats

(** Client side: send one request line over the socket, return the
    one-line response.  [Error] covers connection failures and a
    server that closed without replying. *)
val request : socket_path:string -> string -> (string, string) result

(** Read a netlist by extension ([.blif] → BLIF, anything else →
    AIGER); shared with {!Batch} and the CLI. *)
val load_netlist : string -> (Aig.t, string) result
