(** The certification daemon: a stream-socket server that answers
    {!Protocol} requests from a persistent {!Store}, solving misses on
    the {!Engine} (and thus the {!Cec_core.Parallel} domain pool).  It
    listens on any mix of {!Addr} endpoints — Unix domain sockets for
    a local daemon, TCP for a fleet shard behind the router.

    {2 Life cycle}

    [run] binds every listen address, spawns the worker domains and
    enters the accept loop (a [select] over all listening descriptors,
    EINTR-safe — signals during [select]/[accept] retry instead of
    killing the daemon).  Each connection carries exactly one request;
    [check] requests are parsed, normalized and keyed by the accept
    loop, then pushed onto a {e bounded} queue — a full queue bounces
    the request immediately with a typed [queue_full] error response
    (backpressure) instead of letting latency grow without bound.
    Worker domains pop jobs, consult the store, solve misses, persist
    the verdict and reply.

    A request's deadline (its [TIMEOUT_MS], or the configured default)
    travels with the job: a job whose deadline expired while queued is
    cancelled without solving, and an in-flight solve re-checks the
    deadline at every budget-escalation round boundary.

    On SIGINT/SIGTERM — or a [shutdown] request — the server stops
    accepting, {e drains} the queue (every accepted request is still
    answered), joins the workers, persists the store index, removes its
    Unix socket files, and returns the final metrics.  When [log] is
    set the metrics and store counters are also printed to stderr.

    {2 Failure behaviour}

    A job whose processing raises (including the injected
    [worker.crash] {!Fault}) is re-enqueued once; a second crash
    answers its client with a typed [worker_crashed] error — accepted
    connections are always answered, never left hanging.  A worker
    loop that dies outside the per-job handler is restarted by a
    supervisor (counted in [worker_restarts]).  A degraded solve
    (crashed partitions, failed certificate stitching) is reported as
    status ["uncertified"] with a [reason] field rather than claiming
    a verdict, and its result is not cached.  At startup a stale
    socket file is removed only after a probe connect proves no daemon
    is listening, and the store runs {!Store.fsck} before serving. *)

type config = {
  listen : Addr.t list;  (** endpoints to serve on (at least one) *)
  store_dir : string;
  store_capacity : int option;  (** store byte cap ([None] unbounded) *)
  paranoid : bool;  (** re-validate certificates before serving *)
  workers : int;  (** worker domains consuming the queue (min 1) *)
  queue_capacity : int;  (** bounced beyond this many queued jobs *)
  engine : Engine.config;
  default_timeout_ms : int option;
      (** deadline for requests that do not carry their own *)
  log : bool;  (** per-request and shutdown logging to stderr *)
  clock : unit -> float;
      (** time source for deadlines and latencies (default
          [Unix.gettimeofday]); tests inject a fake clock to make the
          deadline paths deterministic *)
  stats_out : string option;
      (** write {!Obs.Export.stats_json} of the full pipeline registry
          (request metrics + merged worker-domain counters) here at
          shutdown *)
  trace_out : string option;
      (** write {!Obs.Export.trace_json} here at shutdown *)
  on_listen : Addr.t list -> unit;
      (** called once from the server's own context after every listen
          address is bound, with the {e actual} addresses — a TCP
          listen on port 0 reports the kernel-assigned port, which is
          how tests and the bench find an ephemeral shard.  Default
          [ignore]. *)
}

(** One worker, queue of 64, paranoid, unbounded store, no default
    deadline, [Engine.default_config], logging on, listening on the
    given Unix socket only. *)
val default_config : socket_path:string -> store_dir:string -> config

(** Run until shutdown; returns the final request metrics and store
    counters.  @raise Unix.Unix_error when a listen address cannot be
    bound, [Failure] when a Unix socket path exists and is not a
    socket (or a live daemon already listens on it), [Invalid_argument]
    when [listen] is empty. *)
val run : config -> Metrics.snapshot * Store.stats

(** Client side: send one request line to an address, return the
    one-line response.  [Error] covers connection failures and a
    server that closed without replying.  One shot — see {!Client} for
    the retrying/failover version. *)
val request_addr : Addr.t -> string -> (string, string) result

(** [request ~socket_path] is {!request_addr} on a Unix socket path. *)
val request : socket_path:string -> string -> (string, string) result

(** Read a netlist by extension ([.blif] → BLIF, anything else →
    AIGER); shared with {!Batch}, the fleet {!Fleet.Router} and the
    CLI. *)
val load_netlist : string -> (Aig.t, string) result
