(** A content-addressed, persistent certificate store.

    Decided verdicts are kept on disk keyed by {!Key.t} (the structural
    hash of the normalized pair), so repeated requests for the same
    pair are answered without solving — across requests, connections
    and process restarts.

    {2 On-disk layout}

    {v
    DIR/index              entry list: "cecproof-index <version>" then
                           one "<hex> <bytes> <stamp>" line per entry
    DIR/objects/<hex>      one certificate per entry:
                             cecproof-cert <version>
                             equivalent            | inequivalent <bits>
                             <resolution trace...> |
    v}

    Equivalent entries persist the verdict plus the {e trimmed} dense
    resolution trace ({!Proof.Export.trace_to_string});  inequivalent
    entries persist the distinguishing input assignment; undecided
    verdicts are never stored (a later, bigger budget may settle them).
    Every file is written to a temporary name in the same directory and
    renamed into place, so readers never observe a half-written entry
    and a crash cannot corrupt an existing one.

    Both the index and the certificate files are stamped with
    {!format_version}: entries carrying any other version are treated
    as misses and dropped, so a cached store directory (e.g. restored
    by a CI cache) written by an older or newer format can never poison
    a run.  A missing or unreadable index is rebuilt by scanning
    [objects/].

    {2 Eviction}

    When a byte capacity is configured, each insertion is followed by
    an eviction pass dropping least-recently-used entries (access
    order, persisted via the index stamps) until the store fits.

    {2 Paranoid mode}

    A loaded certificate is untrusted input: the file may have rotted,
    been truncated, or been written by an adversary.  In paranoid mode
    (the default) a loaded equivalent entry is re-validated with
    {!Cec_core.Certify.validate_against} against the requested pair —
    and a loaded counterexample is replayed through the miter — before
    being served; anything that fails is deleted and reported as a
    miss, so the caller falls back to solving.  Disabling paranoia
    serves entries unchecked (fast path for trusted local stores).

    All operations are serialized by an internal mutex and safe to call
    from multiple domains. *)

type t

type stats = {
  entries : int;
  bytes : int;  (** certificate bytes currently on disk *)
  hits : int;
  misses : int;  (** includes corrupt entries dropped on load *)
  stores : int;
  evictions : int;
  corrupt : int;  (** entries rejected at load time and deleted *)
}

(** Version stamp of the index and certificate file formats. *)
val format_version : int

(** Open (creating directories as needed) a store rooted at [dir].
    [capacity_bytes] bounds the total certificate bytes (unbounded when
    omitted); [paranoid] defaults to [true]. *)
val create : ?capacity_bytes:int -> ?paranoid:bool -> dir:string -> unit -> t

val dir : t -> string
val paranoid : t -> bool

(** Path of the certificate file an entry for [key] lives at (whether
    or not it currently exists). *)
val entry_path : t -> Key.t -> string

(** Index membership (no file access, no validation). *)
val mem : t -> Key.t -> bool

(** [find t key ~golden ~revised] loads, reconstructs and (in paranoid
    mode) re-validates the stored verdict for [key].  [golden] and
    [revised] must be the normalized pair the key was derived from:
    they rebuild the miter CNF an equivalent certificate refutes.
    Returns [None] — after deleting the entry — when the entry is
    absent, unparsable, version-mismatched, or fails validation. *)
val find : t -> Key.t -> golden:Aig.t -> revised:Aig.t -> Cec_core.Cec.verdict option

(** Persist a verdict (atomically); undecided verdicts are ignored.
    Runs the eviction pass when a capacity is configured. *)
val store : t -> Key.t -> Cec_core.Cec.verdict -> unit

(** Persist the index now (also done on every mutation). *)
val flush : t -> unit

val stats : t -> stats

(** Flat JSON fields (mergeable with {!Metrics.fields}). *)
val fields : stats -> (string * Protocol.json) list

val pp_stats : Format.formatter -> stats -> unit
