(** A content-addressed, persistent certificate store.

    Decided verdicts are kept on disk keyed by {!Key.t} (the structural
    hash of the normalized pair), so repeated requests for the same
    pair are answered without solving — across requests, connections
    and process restarts.

    {2 On-disk layout}

    {v
    DIR/index              entry list: "cecproof-index <version>" then
                           one "<hex> <bytes> <stamp>" line per entry
    DIR/objects/<hex>      one certificate per entry:
                             cecproof-cert <version>
                             equivalent bin3 | bin | trace  |  inequivalent <bits>
                             <CECB bytes...> | <ascii trace...>  |
    v}

    Equivalent entries persist the verdict plus the {e trimmed}
    refutation — by default as a {e hinted} {!Proof.Binfmt} binary
    certificate ([bin3]: pivot hints and the prover's partition
    boundaries as a shard table, re-validated search-free and in
    parallel by {!Proof.Hint_check}), as the un-hinted binary format
    with [~cert_format:Bin], or as the dense ASCII trace
    ({!Proof.Export.trace_to_string}) with
    [~cert_format:Trace].  Inequivalent entries persist the
    distinguishing input assignment; undecided verdicts are never
    stored (a later, bigger budget may settle them).  Every file is
    written to a temporary name in the same directory and renamed into
    place, so readers never observe a half-written entry and a crash
    cannot corrupt an existing one.

    Version-1 objects (header [cecproof-cert 1], bare [equivalent]
    verdict line, ASCII trace body) and version-2 objects ([bin] or
    [trace] bodies) remain readable: an old store directory keeps
    answering hits, its old index is transparently rebuilt by scanning
    [objects/], and entries are rewritten in the current format only
    when stored again.  Entries carrying any
    {e other} version are treated as misses and dropped, so a cached
    store directory (e.g. restored by a CI cache) written by an unknown
    format can never poison a run.  A missing or unreadable index is
    likewise rebuilt by scanning [objects/].

    {2 Eviction}

    When a byte capacity is configured, each insertion is followed by
    an eviction pass dropping least-recently-used entries (access
    order, persisted via the index stamps) until the store fits.

    {2 Paranoid mode}

    A loaded certificate is untrusted input: the file may have rotted,
    been truncated, or been written by an adversary.  In paranoid mode
    (the default) a loaded equivalent entry is re-validated against the
    requested pair before being served — ASCII traces with
    {!Cec_core.Certify.validate_against}, un-hinted binary bodies with
    the bounded-memory {!Proof.Stream_check}, hinted ([bin3]) bodies
    with the search-free {!Proof.Hint_check}, each against the pair's
    miter CNF — and a loaded counterexample is replayed through the
    miter.
    Anything that fails is deleted and reported as a miss, so the
    caller falls back to solving.  Disabling paranoia serves entries
    unchecked (fast path for trusted local stores).

    All operations are serialized by an internal mutex and safe to call
    from multiple domains. *)

type t

(** Body format for {e newly stored} equivalent certificates ([Bin3]
    is the default: hinted, checked search-free by {!Proof.Hint_check}
    on load; [Bin] is the un-hinted binary format checked by
    {!Proof.Stream_check}; [Trace] the dense ASCII trace).  Reading
    understands all three, plus legacy version-1 objects, regardless
    of this choice. *)
type cert_format = Trace | Bin | Bin3

type stats = {
  entries : int;
  bytes : int;  (** certificate bytes currently on disk *)
  hits : int;
  misses : int;  (** includes corrupt entries dropped on load *)
  stores : int;
  evictions : int;
  corrupt : int;  (** entries rejected at load time and deleted *)
  write_failures : int;
      (** object writes that failed (I/O error or injected fault); the
          verdict was served uncached *)
}

(** Version stamp of the index and certificate file formats. *)
val format_version : int

(** Open (creating directories as needed) a store rooted at [dir].
    [capacity_bytes] bounds the total certificate bytes (unbounded when
    omitted); [paranoid] defaults to [true]; [cert_format] (default
    [Bin3]) picks the body format for newly stored certificates;
    [startup_fsck] (default [true]) runs {!fsck} before the store
    serves, so a crashed predecessor's debris never reaches readers. *)
val create :
  ?capacity_bytes:int ->
  ?paranoid:bool ->
  ?cert_format:cert_format ->
  ?startup_fsck:bool ->
  dir:string ->
  unit ->
  t

val dir : t -> string
val paranoid : t -> bool

(** Path of the certificate file an entry for [key] lives at (whether
    or not it currently exists). *)
val entry_path : t -> Key.t -> string

(** Index membership (no file access, no validation). *)
val mem : t -> Key.t -> bool

(** [find t key ~golden ~revised] loads, reconstructs and (in paranoid
    mode) re-validates the stored verdict for [key].  [golden] and
    [revised] must be the normalized pair the key was derived from:
    they rebuild the miter CNF an equivalent certificate refutes.
    Returns [None] — after deleting the entry — when the entry is
    absent, unparsable, version-mismatched, or fails validation. *)
val find : t -> Key.t -> golden:Aig.t -> revised:Aig.t -> Cec_core.Cec.verdict option

(** Persist a verdict (atomically); undecided verdicts are ignored.
    Runs the eviction pass when a capacity is configured. *)
val store : t -> Key.t -> Cec_core.Cec.verdict -> unit

(** Persist the index now (also done on every mutation). *)
val flush : t -> unit

val stats : t -> stats

(** Flat JSON fields (mergeable with {!Metrics.fields}). *)
val fields : stats -> (string * Protocol.json) list

val pp_stats : Format.formatter -> stats -> unit

(** {2 Crash recovery}

    A crash (or an injected {!Fault} mid-write) can leave three kinds
    of debris: orphaned [.tmp-*.part] files, truncated or garbage
    objects, and index/object disagreements.  {!fsck} sweeps all
    three: tmp files and structurally invalid objects are moved to
    [DIR/quarantine] (never deleted — evidence survives for forensics;
    deletion is the fallback only if the move itself fails), valid
    objects missing from the index are re-adopted so warm hits keep
    serving, and index entries without an object are dropped.  Binary
    bodies are re-validated with the streaming checker
    ({!Proof.Stream_check}, structural mode — the pair-specific leaf
    check still happens at {!find} time in paranoid mode).  Runs by
    default when a store is opened. *)

type fsck_report = {
  scanned : int;  (** object files examined *)
  valid : int;  (** objects that passed structural validation *)
  orphan_tmp : int;  (** leftover [.tmp-*.part] files quarantined *)
  quarantined : int;  (** total files moved to quarantine (incl. tmp) *)
  adopted : int;  (** valid objects re-added to a forgetful index *)
  dropped : int;  (** index entries whose object was missing *)
}

(** Sweep the store directory into a consistent state (see above). *)
val fsck : t -> fsck_report

(** Where quarantined files go: [DIR/quarantine]. *)
val quarantine_dir : t -> string

val pp_fsck : Format.formatter -> fsck_report -> unit
