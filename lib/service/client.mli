(** A fault-tolerant client for the certification daemon.

    {!Server.request} is one shot: connect, send, read, done.  Against
    a daemon that is restarting, draining, or briefly overloaded that
    turns transient conditions into hard failures.  [request] retries
    with exponential backoff on exactly the transient errors —
    [ECONNREFUSED] (daemon not yet listening or just died), [ENOENT]
    (socket file not created yet), [ETIMEDOUT] (connect timeout against
    a black-holed peer), [EPIPE]/[ECONNRESET] (daemon went away
    mid-exchange), an EOF before any response byte, and the server's
    [queue full] / [overloaded] bounces — and fails fast on everything
    else (a malformed request will not become less malformed by
    retrying).

    Backoff for attempt [k] (0-based) is [base_delay_ms * 2^k],
    multiplied by a deterministic jitter in [0.5, 1.5) drawn from a
    seeded {!Support.Rng} stream, so a herd of replaying clients
    decorrelates without making test runs flaky.

    Both transports of {!Addr} are supported; {!request_to} with a list
    of addresses additionally fails over across replicas: each attempt
    rotates to the next address, so a dead primary costs one backoff
    step, not the whole retry budget. *)

type config = {
  retries : int;  (** additional attempts after the first (min 0) *)
  base_delay_ms : float;  (** backoff unit for the first retry *)
  seed : int;  (** jitter stream seed *)
  sleep : float -> unit;  (** injectable for tests (default [Unix.sleepf]) *)
  connect_timeout_ms : float option;
      (** bound on each connect attempt; [None] (the default) blocks on
          the kernel's own connect timeout.  A TCP connect to a
          black-holed host can otherwise stall for minutes, so anything
          probing remote shards should set this. *)
  deadline_ms : float option;
      (** end-to-end budget for one {!request_to} call, covering every
          attempt {e and} every backoff sleep.  Once it would be
          exceeded the client stops — it never sleeps past the
          deadline — and returns the last transient error wrapped in
          [Wire.deadline_error].  [None] (default) keeps the
          pre-deadline behaviour: the retry budget alone bounds the
          call. *)
}

(** 4 retries, 25ms base delay — worst-case wait ~1.5s total; no
    connect timeout, no deadline. *)
val default_config : config

(** One attempt against one address: connect (with the configured
    timeout), send, read one response line.  [Error (transient, msg)]
    tags whether the failure is worth retrying.  [deadline] (absolute
    seconds) bounds connect, write and read; expiry surfaces as a
    transient [Wire.deadline_error].  The building block of
    {!request_to}; exposed for callers (the fleet router) that own
    their retry policy. *)
val attempt :
  ?config:config -> ?deadline:float -> Addr.t -> string -> (string, bool * string) result

(** Send one request line to the first address that answers, retrying
    transient failures per the policy above and rotating through the
    addresses round-robin (attempt [k] goes to address [k mod N]).
    [Ok response] on the first success; [Error msg] carries the last
    failure once the attempts are exhausted.  With [deadline_ms] set,
    cumulative attempt time plus backoff never exceeds the budget: the
    call returns [Error "deadline exceeded (<last error>)"] rather
    than sleeping past it.
    @raise Invalid_argument on an empty address list. *)
val request_to : ?config:config -> Addr.t list -> string -> (string, string) result

(** [request ~socket_path line] is [request_to [Addr.Unix_path
    socket_path] line] — the pre-fleet interface, kept because almost
    every local caller talks to exactly one Unix-socket daemon. *)
val request : ?config:config -> socket_path:string -> string -> (string, string) result
