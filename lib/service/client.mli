(** A fault-tolerant client for the certification daemon.

    {!Server.request} is one shot: connect, send, read, done.  Against
    a daemon that is restarting, draining, or briefly overloaded that
    turns transient conditions into hard failures.  [request] retries
    with exponential backoff on exactly the transient errors —
    [ECONNREFUSED] (daemon not yet listening or just died), [ENOENT]
    (socket file not created yet), [EPIPE]/[ECONNRESET] (daemon went
    away mid-exchange), an EOF before any response byte, and the
    server's [queue full] bounce — and fails fast on everything else
    (a malformed request will not become less malformed by retrying).

    Backoff for attempt [k] (0-based) is [base_delay_ms * 2^k],
    multiplied by a deterministic jitter in [0.5, 1.5) drawn from a
    seeded {!Support.Rng} stream, so a herd of replaying clients
    decorrelates without making test runs flaky. *)

type config = {
  retries : int;  (** additional attempts after the first (min 0) *)
  base_delay_ms : float;  (** backoff unit for the first retry *)
  seed : int;  (** jitter stream seed *)
  sleep : float -> unit;  (** injectable for tests (default [Unix.sleepf]) *)
}

(** 4 retries, 25ms base delay — worst-case wait ~1.5s total. *)
val default_config : config

(** Send one request line, retrying transient failures per the policy
    above.  [Ok response] on the first success; [Error msg] carries the
    last failure once the attempts are exhausted. *)
val request : ?config:config -> socket_path:string -> string -> (string, string) result
