type config = {
  retries : int;
  base_delay_ms : float;
  seed : int;
  sleep : float -> unit;
  connect_timeout_ms : float option;
  deadline_ms : float option;
}

let default_config =
  {
    retries = 4;
    base_delay_ms = 25.0;
    seed = 0;
    sleep = Unix.sleepf;
    connect_timeout_ms = None;
    deadline_ms = None;
  }

(* One attempt: connect, send, read one response line.  [Error
   (transient, msg)] tags whether the failure is worth retrying.
   [deadline] (absolute) bounds the whole exchange: connect, write and
   read each check the remaining budget. *)
let attempt ?(config = default_config) ?deadline addr line =
  let name = Addr.to_string addr in
  let connect_timeout_ms =
    (* The tighter of the configured connect timeout and what is left
       of the request deadline. *)
    match deadline with
    | None -> config.connect_timeout_ms
    | Some d ->
      let left_ms = (d -. Unix.gettimeofday ()) *. 1000.0 in
      let left_ms = Float.max 1.0 left_ms in
      Some
        (match config.connect_timeout_ms with
        | None -> left_ms
        | Some t -> Float.min t left_ms)
  in
  match Addr.connect ?timeout_ms:connect_timeout_ms addr with
  | exception Unix.Unix_error (e, _, _) ->
    let transient =
      match e with Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT -> true | _ -> false
    in
    Error (transient, Printf.sprintf "%s: %s" name (Unix.error_message e))
  | fd -> (
    let close () = try Unix.close fd with Unix.Unix_error _ -> () in
    match
      Wire.write_line ?deadline fd line;
      Wire.read_line ?deadline fd
    with
    | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as e), _, _) ->
      close ();
      Error (true, Printf.sprintf "%s: %s" name (Unix.error_message e))
    | exception Unix.Unix_error (Unix.ETIMEDOUT, "write", _) ->
      close ();
      Error (true, Printf.sprintf "%s: %s" name Wire.deadline_error)
    | exception Unix.Unix_error (e, _, _) ->
      close ();
      Error (false, Printf.sprintf "%s: %s" name (Unix.error_message e))
    | Error msg ->
      close ();
      if msg = Wire.deadline_error then
        (* Transient in principle, but the budget is gone; request_to
           stops retrying once the deadline passes. *)
        Error (true, Printf.sprintf "%s: %s" name msg)
      else
        (* EOF before a response: the daemon died between accept and
           reply (or a drain raced the connect) — transient. *)
        Error (msg = "connection closed", msg)
    | Ok response ->
      close ();
      if Protocol.field "error" response = Some "queue full" then Error (true, "queue full")
      else if Protocol.field "code" response = Some "overloaded" then
        Error (true, "overloaded")
      else Ok response)

let request_to ?(config = default_config) addrs line =
  let n = List.length addrs in
  if n = 0 then invalid_arg "Client.request_to: empty address list";
  let addr k = List.nth addrs (k mod n) in
  let rng = Support.Rng.create config.seed in
  let deadline =
    match config.deadline_ms with
    | None -> None
    | Some ms -> Some (Unix.gettimeofday () +. (ms /. 1000.0))
  in
  let expired () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
  in
  let rec go k =
    match attempt ~config ?deadline (addr k) line with
    | Ok response -> Ok response
    | Error (transient, msg) ->
      if (not transient) || k >= max 0 config.retries then Error msg
      else begin
        let backoff = config.base_delay_ms *. (2.0 ** float_of_int k) in
        let jitter = 0.5 +. Support.Rng.float rng in
        let pause = backoff *. jitter /. 1000.0 in
        (* Never sleep past the request deadline: if the next attempt
           could not even start in budget, surface the last transient
           error with a deadline tag instead. *)
        let overruns =
          match deadline with
          | None -> false
          | Some d -> Unix.gettimeofday () +. pause >= d
        in
        if expired () || overruns then
          Error (Printf.sprintf "%s (%s)" Wire.deadline_error msg)
        else begin
          config.sleep pause;
          go (k + 1)
        end
      end
  in
  go 0

let request ?config ~socket_path line = request_to ?config [ Addr.Unix_path socket_path ] line
