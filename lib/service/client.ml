type config = {
  retries : int;
  base_delay_ms : float;
  seed : int;
  sleep : float -> unit;
  connect_timeout_ms : float option;
}

let default_config =
  { retries = 4; base_delay_ms = 25.0; seed = 0; sleep = Unix.sleepf; connect_timeout_ms = None }

(* One attempt: connect, send, read one response line.  [Error
   (transient, msg)] tags whether the failure is worth retrying. *)
let attempt ?(config = default_config) addr line =
  let name = Addr.to_string addr in
  match Addr.connect ?timeout_ms:config.connect_timeout_ms addr with
  | exception Unix.Unix_error (e, _, _) ->
    let transient =
      match e with Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT -> true | _ -> false
    in
    Error (transient, Printf.sprintf "%s: %s" name (Unix.error_message e))
  | fd -> (
    let close () = try Unix.close fd with Unix.Unix_error _ -> () in
    match
      Wire.write_line fd line;
      Wire.read_line fd
    with
    | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as e), _, _) ->
      close ();
      Error (true, Printf.sprintf "%s: %s" name (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      close ();
      Error (false, Printf.sprintf "%s: %s" name (Unix.error_message e))
    | Error msg ->
      close ();
      (* EOF before a response: the daemon died between accept and
         reply (or a drain raced the connect) — transient. *)
      Error (msg = "connection closed", msg)
    | Ok response ->
      close ();
      if Protocol.field "error" response = Some "queue full" then Error (true, "queue full")
      else if Protocol.field "code" response = Some "overloaded" then
        Error (true, "overloaded")
      else Ok response)

let request_to ?(config = default_config) addrs line =
  let n = List.length addrs in
  if n = 0 then invalid_arg "Client.request_to: empty address list";
  let addr k = List.nth addrs (k mod n) in
  let rng = Support.Rng.create config.seed in
  let rec go k =
    match attempt ~config (addr k) line with
    | Ok response -> Ok response
    | Error (transient, msg) ->
      if (not transient) || k >= max 0 config.retries then Error msg
      else begin
        let backoff = config.base_delay_ms *. (2.0 ** float_of_int k) in
        let jitter = 0.5 +. Support.Rng.float rng in
        config.sleep (backoff *. jitter /. 1000.0);
        go (k + 1)
      end
  in
  go 0

let request ?config ~socket_path line = request_to ?config [ Addr.Unix_path socket_path ] line
