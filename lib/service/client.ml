type config = {
  retries : int;
  base_delay_ms : float;
  seed : int;
  sleep : float -> unit;
}

let default_config = { retries = 4; base_delay_ms = 25.0; seed = 0; sleep = Unix.sleepf }

(* One attempt: connect, send, read one response line.  [Error (retry,
   msg)] tags whether the failure is worth retrying. *)
let attempt ~socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (e, _, _) ->
    close ();
    let transient = match e with Unix.ECONNREFUSED | Unix.ENOENT -> true | _ -> false in
    Error (transient, Printf.sprintf "%s: %s" socket_path (Unix.error_message e))
  | () -> (
    match
      Wire.write_line fd line;
      Wire.read_line fd
    with
    | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as e), _, _) ->
      close ();
      Error (true, Printf.sprintf "%s: %s" socket_path (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      close ();
      Error (false, Printf.sprintf "%s: %s" socket_path (Unix.error_message e))
    | Error msg ->
      close ();
      (* EOF before a response: the daemon died between accept and
         reply (or a drain raced the connect) — transient. *)
      Error (msg = "connection closed", msg)
    | Ok response ->
      close ();
      if Protocol.field "error" response = Some "queue full" then Error (true, "queue full")
      else Ok response)

let request ?(config = default_config) ~socket_path line =
  let rng = Support.Rng.create config.seed in
  let rec go k =
    match attempt ~socket_path line with
    | Ok response -> Ok response
    | Error (transient, msg) ->
      if (not transient) || k >= max 0 config.retries then Error msg
      else begin
        let backoff = config.base_delay_ms *. (2.0 ** float_of_int k) in
        let jitter = 0.5 +. Support.Rng.float rng in
        config.sleep (backoff *. jitter /. 1000.0);
        go (k + 1)
      end
  in
  go 0
