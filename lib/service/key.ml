type t = string

let format_version = 1

let normalize = Aig.cleanup

let of_pair a b =
  let a = normalize a and b = normalize b in
  let payload =
    Printf.sprintf "cecproof-key %d\n%s\n--\n%s" format_version (Aig.Aiger.to_string a)
      (Aig.Aiger.to_string b)
  in
  Digest.to_hex (Digest.string payload)

let to_hex k = k

let is_hex_char c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let of_hex s = if String.length s = 32 && String.for_all is_hex_char s then Some s else None

let equal = String.equal
let pp fmt k = Format.pp_print_string fmt k
