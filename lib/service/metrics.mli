(** Request-level counters and latency aggregates for the
    certification service, recorded into an {!Obs.Registry.t} so the
    service shares the observability pipeline (stats/trace exporters)
    with the rest of the tree.  Store-level counters (hits, evictions,
    bytes) live in {!Store.stats}; the server merges both into one
    [stats] response.  All operations are thread-safe (one mutex), so
    worker domains and the accept loop can record concurrently. *)

type outcome =
  | Proved  (** equivalent, certificate produced or served *)
  | Counterexample
  | Undecided  (** conflict budget exhausted after every round *)
  | Timeout  (** per-request deadline expired *)
  | Uncertified
      (** degraded: crashed partition jobs or failed certificate
          stitching — answered honestly instead of claiming a result *)

type latency = {
  count : int;
  total_ms : float;
  max_ms : float;
}

type snapshot = {
  requests : int;  (** every request line received, of any kind *)
  proved : int;
  counterexamples : int;
  undecided : int;
  timeouts : int;
  hits : int;  (** check requests answered from the store *)
  misses : int;  (** check requests that went to the solver *)
  uncertified : int;
  cancelled : int;  (** deadline expired while still queued *)
  rejected : int;  (** bounced by a full request queue *)
  errors : int;  (** unreadable netlists, bad requests, solver errors *)
  retried : int;  (** jobs re-enqueued after a worker crash *)
  worker_restarts : int;  (** worker loops restarted by the supervisor *)
  hit_latency : latency;  (** end-to-end latency of store hits *)
  solve_latency : latency;  (** end-to-end latency of solved requests *)
}

type t

val create : unit -> t

(** Record into an existing registry ([service.*] counters and
    histograms), e.g. the one the server exports via [--stats-out]. *)
val of_registry : Obs.Registry.t -> t

(** The backing registry (for the exporters). *)
val registry : t -> Obs.Registry.t

(** Fold the live counters into [into] under the metrics lock — the
    safe way to snapshot the registry while workers are recording
    (used by the daemon's [metrics] wire request). *)
val merge_registry_into : t -> into:Obs.Registry.t -> unit

val incr_requests : t -> unit

(** Record a completed check request: its outcome, whether it was
    served from the store, and its end-to-end latency. *)
val record : t -> outcome -> cached:bool -> ms:float -> unit

val record_cancelled : t -> unit
val record_retry : t -> unit
val record_worker_restart : t -> unit
val record_rejected : t -> unit
val record_error : t -> unit
val snapshot : t -> snapshot

(** Flat JSON fields (mergeable with {!Store.fields}). *)
val fields : snapshot -> (string * Protocol.json) list

val to_json : snapshot -> string
val pp : Format.formatter -> snapshot -> unit
