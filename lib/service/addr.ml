type t =
  | Unix_path of string
  | Tcp of string * int

let parse s =
  if s = "" then Error "empty address"
  else if String.contains s '/' then Ok (Unix_path s)
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_path s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | None -> Ok (Unix_path s)
      | Some p when p < 0 || p > 65535 ->
        Error (Printf.sprintf "%s: port %d out of range" s p)
      | Some p -> Ok (Tcp (host, p)))

let to_string = function
  | Unix_path path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let equal a b =
  match (a, b) with
  | Unix_path p, Unix_path q -> String.equal p q
  | Tcp (h, p), Tcp (h', p') -> String.equal h h' && p = p'
  | Unix_path _, Tcp _ | Tcp _, Unix_path _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)

let family = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let sockaddr ?(listening = false) = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
    let host = if host = "" then if listening then "0.0.0.0" else "127.0.0.1" else host in
    match Unix.inet_addr_of_string host with
    | ip -> Unix.ADDR_INET (ip, port)
    | exception Failure _ -> (
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> Unix.ADDR_INET (ip, port)
      | _ -> failwith (Printf.sprintf "%s: host does not resolve" host)))

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let set_nodelay t fd =
  match t with
  | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Unix_path _ -> ()

(* Non-blocking connect under a select deadline: EINPROGRESS, wait for
   writability, then read the outcome from SO_ERROR.  EINTR during the
   wait resumes with the remaining time. *)
let connect_deadline fd sa ~timeout_ms ~name =
  Unix.set_nonblock fd;
  let finish () =
    Unix.clear_nonblock fd;
    match Unix.getsockopt_error fd with
    | None -> ()
    | Some e -> raise (Unix.Unix_error (e, "connect", name))
  in
  match Unix.connect fd sa with
  | () -> Unix.clear_nonblock fd
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
    let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.0) in
    let rec wait () =
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", name))
      else
        match Unix.select [] [ fd ] [] left with
        | _, [], [] -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", name))
        | _ -> finish ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ()

let connect ?timeout_ms t =
  let sa = sockaddr t in
  let fd = Unix.socket (family t) Unix.SOCK_STREAM 0 in
  (try
     (match timeout_ms with
     | None -> Unix.connect fd sa
     | Some ms -> connect_deadline fd sa ~timeout_ms:ms ~name:(to_string t));
     set_nodelay t fd
   with e ->
     close_quietly fd;
     raise e);
  fd

(* Is some process listening on the Unix socket at [path]?
   Distinguishes a live daemon (connect succeeds) from a stale file
   left by a crashed one (ECONNREFUSED). *)
let unix_socket_live path =
  let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let live =
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
  in
  close_quietly probe;
  live

let reclaim_stale_unix path =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (* Probe before unlinking: clobbering a live daemon's socket would
       orphan it silently; only a provably stale file is removed. *)
    if unix_socket_live path then
      failwith (Printf.sprintf "%s: a daemon is already listening on this socket" path)
    else Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s: exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let bind_listen ?(backlog = 64) t =
  (match t with Unix_path path -> reclaim_stale_unix path | Tcp _ -> ());
  let fd = Unix.socket (family t) Unix.SOCK_STREAM 0 in
  try
    (match t with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | Unix_path _ -> ());
    Unix.bind fd (sockaddr ~listening:true t);
    Unix.listen fd backlog;
    let bound =
      match t with
      | Unix_path _ -> t
      | Tcp (host, _) -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Tcp ((if host = "" then "0.0.0.0" else host), port)
        | Unix.ADDR_UNIX _ -> t)
    in
    (fd, bound)
  with e ->
    close_quietly fd;
    raise e
