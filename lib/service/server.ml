module Cec = Cec_core.Cec
module P = Protocol

type config = {
  listen : Addr.t list;
  store_dir : string;
  store_capacity : int option;
  paranoid : bool;
  workers : int;
  queue_capacity : int;
  engine : Engine.config;
  default_timeout_ms : int option;
  log : bool;
  clock : unit -> float;
  stats_out : string option;
  trace_out : string option;
  on_listen : Addr.t list -> unit;
}

let default_config ~socket_path ~store_dir =
  {
    listen = [ Addr.Unix_path socket_path ];
    store_dir;
    store_capacity = None;
    paranoid = true;
    workers = 1;
    queue_capacity = 64;
    engine = Engine.default_config;
    default_timeout_ms = None;
    log = true;
    clock = Unix.gettimeofday;
    stats_out = None;
    trace_out = None;
    on_listen = ignore;
  }

(* One accepted [check] request, parked on the bounded queue.  The
   worker that pops it owns (and closes) the connection. *)
type job = {
  golden : Aig.t;
  revised : Aig.t;
  key : Key.t;
  deadline : float option;
  fd : Unix.file_descr;
  mutable retries : int;
}

type state = {
  cfg : config;
  store : Store.t;
  metrics : Metrics.t;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable draining : bool;
  stop : bool Atomic.t;
  (* [peer.partition] black-holes the daemon: until this instant every
     accepted connection is parked unanswered (and unread).  Only the
     accept-loop domain touches these, so no lock. *)
  mutable partition_until : float;
  mutable parked : (float * Unix.file_descr) list;
}

(* --- framing (EINTR/partial-IO handling lives in {!Wire}) --- *)

let max_request_bytes = 65536

(* A client that connects and then never sends a full line must not
   wedge the accept loop forever. *)
let request_read_timeout = 10.0

let read_line_fd fd = Wire.read_line ~max_bytes:max_request_bytes fd

let read_request fd =
  Wire.read_line ~max_bytes:max_request_bytes
    ~deadline:(Unix.gettimeofday () +. request_read_timeout)
    fd

(* Best-effort response write: a vanished client (EPIPE/ECONNRESET)
   is not the server's problem.  The [peer.drop]/[peer.reset] fault
   points model the network failing mid-response: drop truncates the
   reply and shuts the stream down, reset arms SO_LINGER(0) and skips
   the write so the caller's close turns into an RST.  Neither closes
   the fd — that stays with the caller, as on the healthy path. *)
let send fd line =
  try
    if Fault.fire "peer.drop" then begin
      let framed = line ^ "\n" in
      Wire.write_all fd (String.sub framed 0 (String.length framed / 2));
      Unix.shutdown fd Unix.SHUTDOWN_ALL
    end
    else if Fault.fire "peer.reset" then Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0)
    else Wire.write_line fd line
  with
  | Unix.Unix_error
      ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN | Unix.EINVAL | Unix.ENOTSOCK
        | Unix.EOPNOTSUPP ),
        _,
        _ ) ->
    ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- request handling --- *)

let load_netlist path =
  try
    if Filename.check_suffix path ".blif" then Ok (Aig.Blif.read_file path)
    else Ok (Aig.Aiger.read_file path)
  with
  | Aig.Aiger.Parse_error msg | Aig.Blif.Parse_error msg ->
    Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let status_of_verdict ?degraded ~timed_out verdict =
  match (degraded, verdict) with
  | Some _, Cec.Undecided -> "uncertified"
  | _, Cec.Equivalent _ -> "equivalent"
  | _, Cec.Inequivalent _ -> "inequivalent"
  | _, Cec.Undecided -> if timed_out then "timeout" else "undecided"

let outcome_of_verdict ?degraded ~timed_out verdict =
  match (degraded, verdict) with
  | Some _, Cec.Undecided -> Metrics.Uncertified
  | _, Cec.Equivalent _ -> Metrics.Proved
  | _, Cec.Inequivalent _ -> Metrics.Counterexample
  | _, Cec.Undecided -> if timed_out then Metrics.Timeout else Metrics.Undecided

let check_response ?degraded ~key ~cached ~ms ~conflicts ~timed_out verdict =
  let base =
    [
      ("status", P.String (status_of_verdict ?degraded ~timed_out verdict));
      ("cached", P.Bool cached);
      ("key", P.String (Key.to_hex key));
      ("conflicts", P.Int conflicts);
      ("ms", P.Float ms);
    ]
  in
  let extra =
    match verdict with
    | Cec.Inequivalent cex ->
      [
        ( "cex",
          P.String (String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')) );
      ]
    | Cec.Equivalent _ | Cec.Undecided -> []
  in
  let reason =
    match (degraded, verdict) with
    | Some r, Cec.Undecided -> [ ("reason", P.String r) ]
    | _ -> []
  in
  P.to_json (base @ extra @ reason)

let log st fmt =
  if st.cfg.log then Format.eprintf ("cecd: " ^^ fmt ^^ "@.") else Format.ifprintf Format.err_formatter fmt

let ms_since st t0 = 1000.0 *. (st.cfg.clock () -. t0)

let process st job =
  let t0 = st.cfg.clock () in
  (* Server-layer crash point: fires after the job left the queue, so
     the supervised re-enqueue/typed-failure path gets exercised. *)
  Fault.inject "worker.crash";
  let expired = match job.deadline with Some d -> t0 >= d | None -> false in
  if expired then begin
    Metrics.record_cancelled st.metrics;
    log st "cancelled %s (deadline expired in queue)" (Key.to_hex job.key);
    send job.fd
      (P.to_json
         [
           ("status", P.String "timeout");
           ("cached", P.Bool false);
           ("key", P.String (Key.to_hex job.key));
           ("conflicts", P.Int 0);
           ("ms", P.Float 0.0);
         ])
  end
  else
    match Store.find st.store job.key ~golden:job.golden ~revised:job.revised with
    | Some verdict ->
      let ms = ms_since st t0 in
      Metrics.record st.metrics (outcome_of_verdict ~timed_out:false verdict) ~cached:true ~ms;
      log st "hit %s (%s, %.2fms)" (Key.to_hex job.key)
        (status_of_verdict ~timed_out:false verdict)
        ms;
      send job.fd (check_response ~key:job.key ~cached:true ~ms ~conflicts:0 ~timed_out:false verdict)
    | None -> (
      match
        Engine.solve ~clock:st.cfg.clock ?deadline:job.deadline st.cfg.engine job.golden
          job.revised
      with
      | exception Invalid_argument msg ->
        Metrics.record_error st.metrics;
        send job.fd (P.error_response msg)
      | result ->
        let degraded = result.Engine.degraded in
        if degraded = None then Store.store st.store job.key result.Engine.verdict;
        let ms = ms_since st t0 in
        Metrics.record st.metrics
          (outcome_of_verdict ?degraded ~timed_out:result.Engine.timed_out result.Engine.verdict)
          ~cached:false ~ms;
        log st "solved %s (%s, %d conflicts, %.2fms)" (Key.to_hex job.key)
          (status_of_verdict ?degraded ~timed_out:result.Engine.timed_out result.Engine.verdict)
          result.Engine.conflicts ms;
        send job.fd
          (check_response ?degraded ~key:job.key ~cached:false ~ms
             ~conflicts:result.Engine.conflicts ~timed_out:result.Engine.timed_out
             result.Engine.verdict))

(* Worker supervision: a job whose [process] raises is re-enqueued
   once (any worker may pick it up); a second crash answers the client
   with a typed [worker_crashed] error — the connection is never left
   hanging, and one poisoned job can never wedge the pool. *)
let rec worker st =
  Mutex.lock st.lock;
  while Queue.is_empty st.queue && not st.draining do
    Condition.wait st.nonempty st.lock
  done;
  if Queue.is_empty st.queue then Mutex.unlock st.lock (* draining and empty: exit *)
  else begin
    let job = Queue.pop st.queue in
    Mutex.unlock st.lock;
    (match process st job with
    | () -> close_quietly job.fd
    | exception e ->
      if job.retries = 0 then begin
        job.retries <- 1;
        Metrics.record_retry st.metrics;
        log st "job %s crashed (%s), re-enqueued" (Key.to_hex job.key) (Printexc.to_string e);
        (* Re-enqueue past the capacity check: bouncing an accepted job
           would turn a transient fault into a spurious rejection. *)
        Mutex.lock st.lock;
        Queue.push job st.queue;
        Condition.signal st.nonempty;
        Mutex.unlock st.lock
      end
      else begin
        Metrics.record_error st.metrics;
        log st "job %s crashed twice (%s): failing" (Key.to_hex job.key) (Printexc.to_string e);
        send job.fd (P.error_response ~code:"worker_crashed" (Printexc.to_string e));
        close_quietly job.fd
      end);
    worker st
  end

(* Outer supervisor: [worker] itself is not supposed to raise (crashes
   are absorbed per-job above), but if it ever does — a bug in the
   bookkeeping, an I/O error outside the per-job handler — the domain
   restarts its loop instead of silently shrinking the pool. *)
let supervised_worker st =
  let rec go () =
    try worker st
    with e ->
      Metrics.record_worker_restart st.metrics;
      log st "worker loop crashed (%s), restarting" (Printexc.to_string e);
      go ()
  in
  go ()

let stats_response st =
  P.to_json (Metrics.fields (Metrics.snapshot st.metrics) @ Store.fields (Store.stats st.store))

(* Full observability snapshot, as one line of the {!Obs.Export} flat
   JSON shape.  The fleet router polls this and folds shard snapshots
   together with the associative [Obs] merge, so everything exported
   here must be meaningfully summable across shards: service.* request
   counters and latency histograms are, and the store counters are
   exported as counters too (shard stores are disjoint, so entry/byte
   totals across the fleet are sums). *)
let metrics_response st =
  let reg = Obs.Registry.create () in
  Metrics.merge_registry_into st.metrics ~into:reg;
  let s = Store.stats st.store in
  List.iter
    (fun (name, value) ->
      Obs.Counter.add (Obs.Registry.counter reg ("service." ^ name)) value)
    [
      ("store_entries", s.Store.entries);
      ("store_bytes", s.Store.bytes);
      ("store_stores", s.Store.stores);
      ("store_evictions", s.Store.evictions);
      ("store_corrupt", s.Store.corrupt);
      ("store_write_failures", s.Store.write_failures);
    ];
  String.trim (Obs.Export.stats_json reg)

(* How long one [peer.partition] firing keeps the daemon black-holed. *)
let partition_window = 0.5

(* Parked connections whose window passed are finally closed (the peer
   sees an EOF with no response — exactly a healed partition). *)
let sweep_parked st =
  let now = Unix.gettimeofday () in
  let live, expired = List.partition (fun (until, _) -> until > now) st.parked in
  st.parked <- live;
  List.iter (fun (_, fd) -> close_quietly fd) expired

(* Parse and dispatch one connection's request.  Everything answerable
   without solving is answered inline; [check] jobs go to the queue,
   which then owns the connection. *)
let handle_connection st fd =
  (* [peer.slow] models a stalling client on the accept path; the
     daemon must stay responsive and drain cleanly regardless. *)
  if Fault.fire "peer.slow" then Unix.sleepf 0.05;
  sweep_parked st;
  if Fault.fire "peer.partition" then
    st.partition_until <- Unix.gettimeofday () +. partition_window;
  if Unix.gettimeofday () < st.partition_until then
    (* Black-holed: the connection is accepted but never read nor
       answered until the window passes.  Clients only escape via
       their own deadlines — which is the point. *)
    st.parked <- (st.partition_until, fd) :: st.parked
  else
  match read_request fd with
  | Error msg ->
    send fd (P.error_response msg);
    close_quietly fd
  | Ok line -> (
    Metrics.incr_requests st.metrics;
    match P.parse_request line with
    | Error msg ->
      Metrics.record_error st.metrics;
      send fd (P.error_response msg);
      close_quietly fd
    | Ok P.Ping ->
      send fd (P.to_json [ ("ok", P.Bool true) ]);
      close_quietly fd
    | Ok P.Stats ->
      send fd (stats_response st);
      close_quietly fd
    | Ok P.Metrics ->
      send fd (metrics_response st);
      close_quietly fd
    | Ok P.Shutdown ->
      log st "shutdown requested, draining";
      Atomic.set st.stop true;
      send fd (P.to_json [ ("ok", P.Bool true); ("draining", P.Bool true) ]);
      close_quietly fd
    | Ok (P.Join _ | P.Leave _ | P.Drain _) ->
      (* Ring membership lives in the router; a shard daemon has no
         ring to reconfigure. *)
      Metrics.record_error st.metrics;
      send fd (P.error_response ~code:"router_only" "ring admin requests go to the router");
      close_quietly fd
    | Ok (P.Check { golden; revised; timeout_ms }) -> (
      match (load_netlist golden, load_netlist revised) with
      | Error msg, _ | _, Error msg ->
        Metrics.record_error st.metrics;
        send fd (P.error_response msg);
        close_quietly fd
      | Ok a, Ok b ->
        if Aig.num_inputs a <> Aig.num_inputs b || Aig.num_outputs a <> Aig.num_outputs b
        then begin
          Metrics.record_error st.metrics;
          send fd (P.error_response "interface mismatch between the two netlists");
          close_quietly fd
        end
        else begin
          let a = Key.normalize a and b = Key.normalize b in
          let key = Key.of_pair a b in
          let timeout = match timeout_ms with Some _ as t -> t | None -> st.cfg.default_timeout_ms in
          let deadline =
            Option.map (fun ms -> st.cfg.clock () +. (float_of_int ms /. 1000.0)) timeout
          in
          Mutex.lock st.lock;
          if Queue.length st.queue >= max 1 st.cfg.queue_capacity then begin
            Mutex.unlock st.lock;
            Metrics.record_rejected st.metrics;
            send fd (P.error_response ~code:"queue_full" "queue full");
            close_quietly fd
          end
          else begin
            Queue.push { golden = a; revised = b; key; deadline; fd; retries = 0 } st.queue;
            Condition.signal st.nonempty;
            Mutex.unlock st.lock
          end
        end))

(* --- life cycle --- *)

(* {!Addr.bind_listen} probes stale Unix sockets before unlinking
   (a live daemon is a hard error) and reports the kernel-assigned
   port back for TCP port-0 binds. *)
let bind_addr addr = Addr.bind_listen addr

let run cfg =
  let store =
    Store.create ?capacity_bytes:cfg.store_capacity ~paranoid:cfg.paranoid ~dir:cfg.store_dir ()
  in
  let st =
    {
      cfg;
      store;
      metrics = Metrics.create ();
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      draining = false;
      stop = Atomic.make false;
      partition_until = 0.0;
      parked = [];
    }
  in
  if cfg.listen = [] then invalid_arg "Server.run: empty listen list";
  (* Bind everything before serving anything: a half-bound daemon that
     already answers on one endpoint but will die on the next bind
     would look like a flapping shard to the router. *)
  let listeners =
    List.fold_left
      (fun bound addr ->
        match bind_addr addr with
        | fd_addr -> fd_addr :: bound
        | exception e ->
          List.iter (fun (fd, _) -> close_quietly fd) bound;
          raise e)
      [] cfg.listen
    |> List.rev
  in
  let listen_fds = List.map fst listeners in
  cfg.on_listen (List.map snd listeners);
  let request_stop _ = Atomic.set st.stop true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  (* Each worker domain records observability (solver, sweep, proof
     counters) into its own registry; the registries are merged into
     the metrics registry after the joins, so the exported stats cover
     the whole pipeline, not just request-level counters. *)
  let worker_regs = Array.init (max 1 cfg.workers) (fun _ -> Obs.Registry.create ()) in
  let workers =
    Array.init (max 1 cfg.workers) (fun i ->
        Domain.spawn (fun () -> Obs.with_ambient worker_regs.(i) (fun () -> supervised_worker st)))
  in
  log st "listening on %s (store %s, %d worker(s))"
    (String.concat ", " (List.map (fun (_, a) -> Addr.to_string a) listeners))
    cfg.store_dir (Array.length workers);
  (* The accept loop must survive signals: SIGINT/SIGTERM land here
     (the handler only flips [stop], so select/accept resume with
     EINTR), and an aborted handshake surfaces as ECONNABORTED —
     neither may kill the daemon.  Handled uniformly for every
     listening descriptor. *)
  while not (Atomic.get st.stop) do
    match Unix.select listen_fds [] [] 0.1 with
    | [], _, _ -> ()
    | ready, _, _ ->
      List.iter
        (fun (listen_fd, addr) ->
          if List.memq listen_fd ready then
            match Unix.accept listen_fd with
            | fd, _ -> (
              (match addr with
              | Addr.Tcp _ -> (
                (* One-line request/response: never wait on Nagle. *)
                try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
              | Addr.Unix_path _ -> ());
              try handle_connection st fd
              with e ->
                Metrics.record_error st.metrics;
                send fd (P.error_response (Printexc.to_string e));
                close_quietly fd)
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
              ())
        listeners
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter close_quietly listen_fds;
  (* Connections still parked by a partition window get their EOF now. *)
  List.iter (fun (_, fd) -> close_quietly fd) st.parked;
  st.parked <- [];
  (* Drain: workers finish every queued job, then exit. *)
  Mutex.lock st.lock;
  st.draining <- true;
  Condition.broadcast st.nonempty;
  Mutex.unlock st.lock;
  Array.iter Domain.join workers;
  let reg = Metrics.registry st.metrics in
  Array.iter (fun r -> Obs.Registry.merge_into ~into:reg r) worker_regs;
  let write_file path data = Out_channel.with_open_text path (fun oc -> output_string oc data) in
  Option.iter (fun path -> write_file path (Obs.Export.stats_json reg)) cfg.stats_out;
  Option.iter (fun path -> write_file path (Obs.Export.trace_json reg)) cfg.trace_out;
  Store.flush store;
  List.iter
    (function
      | _, Addr.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | _, Addr.Tcp _ -> ())
    listeners;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigpipe old_pipe;
  let snapshot = Metrics.snapshot st.metrics in
  let store_stats = Store.stats store in
  if cfg.log then begin
    Format.eprintf "cecd: shutdown metrics: %a@." Metrics.pp snapshot;
    Format.eprintf "cecd: store: %a@." Store.pp_stats store_stats
  end;
  (snapshot, store_stats)

let request_addr addr line =
  match Addr.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" (Addr.to_string addr) (Unix.error_message e))
  | fd ->
    let result =
      send fd line;
      read_line_fd fd
    in
    close_quietly fd;
    result

let request ~socket_path line = request_addr (Addr.Unix_path socket_path) line
