module Cec = Cec_core.Cec
module P = Protocol

type config = {
  socket_path : string;
  store_dir : string;
  store_capacity : int option;
  paranoid : bool;
  workers : int;
  queue_capacity : int;
  engine : Engine.config;
  default_timeout_ms : int option;
  log : bool;
  clock : unit -> float;
  stats_out : string option;
  trace_out : string option;
}

let default_config ~socket_path ~store_dir =
  {
    socket_path;
    store_dir;
    store_capacity = None;
    paranoid = true;
    workers = 1;
    queue_capacity = 64;
    engine = Engine.default_config;
    default_timeout_ms = None;
    log = true;
    clock = Unix.gettimeofday;
    stats_out = None;
    trace_out = None;
  }

(* One accepted [check] request, parked on the bounded queue.  The
   worker that pops it owns (and closes) the connection. *)
type job = {
  golden : Aig.t;
  revised : Aig.t;
  key : Key.t;
  deadline : float option;
  fd : Unix.file_descr;
}

type state = {
  cfg : config;
  store : Store.t;
  metrics : Metrics.t;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable draining : bool;
  stop : bool Atomic.t;
}

(* --- framing --- *)

let max_request_bytes = 65536

let read_line_fd fd =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > max_request_bytes then Error "request too long"
    else
      match Unix.read fd byte 0 1 with
      | 0 -> if Buffer.length buf = 0 then Error "connection closed" else Ok (Buffer.contents buf)
      | _ ->
        let c = Bytes.get byte 0 in
        if c = '\n' then Ok (Buffer.contents buf)
        else begin
          Buffer.add_char buf c;
          go ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Best-effort response write: a vanished client (EPIPE/ECONNRESET)
   is not the server's problem. *)
let send fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      match Unix.write fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- request handling --- *)

let load_netlist path =
  try
    if Filename.check_suffix path ".blif" then Ok (Aig.Blif.read_file path)
    else Ok (Aig.Aiger.read_file path)
  with
  | Aig.Aiger.Parse_error msg | Aig.Blif.Parse_error msg ->
    Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let status_of_verdict ~timed_out = function
  | Cec.Equivalent _ -> "equivalent"
  | Cec.Inequivalent _ -> "inequivalent"
  | Cec.Undecided -> if timed_out then "timeout" else "undecided"

let outcome_of_verdict ~timed_out = function
  | Cec.Equivalent _ -> Metrics.Proved
  | Cec.Inequivalent _ -> Metrics.Counterexample
  | Cec.Undecided -> if timed_out then Metrics.Timeout else Metrics.Undecided

let check_response ~key ~cached ~ms ~conflicts ~timed_out verdict =
  let base =
    [
      ("status", P.String (status_of_verdict ~timed_out verdict));
      ("cached", P.Bool cached);
      ("key", P.String (Key.to_hex key));
      ("conflicts", P.Int conflicts);
      ("ms", P.Float ms);
    ]
  in
  let extra =
    match verdict with
    | Cec.Inequivalent cex ->
      [
        ( "cex",
          P.String (String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')) );
      ]
    | Cec.Equivalent _ | Cec.Undecided -> []
  in
  P.to_json (base @ extra)

let log st fmt =
  if st.cfg.log then Format.eprintf ("cecd: " ^^ fmt ^^ "@.") else Format.ifprintf Format.err_formatter fmt

let ms_since st t0 = 1000.0 *. (st.cfg.clock () -. t0)

let process st job =
  let t0 = st.cfg.clock () in
  let expired = match job.deadline with Some d -> t0 >= d | None -> false in
  if expired then begin
    Metrics.record_cancelled st.metrics;
    log st "cancelled %s (deadline expired in queue)" (Key.to_hex job.key);
    send job.fd
      (P.to_json
         [
           ("status", P.String "timeout");
           ("cached", P.Bool false);
           ("key", P.String (Key.to_hex job.key));
           ("conflicts", P.Int 0);
           ("ms", P.Float 0.0);
         ])
  end
  else
    match Store.find st.store job.key ~golden:job.golden ~revised:job.revised with
    | Some verdict ->
      let ms = ms_since st t0 in
      Metrics.record st.metrics (outcome_of_verdict ~timed_out:false verdict) ~cached:true ~ms;
      log st "hit %s (%s, %.2fms)" (Key.to_hex job.key)
        (status_of_verdict ~timed_out:false verdict)
        ms;
      send job.fd (check_response ~key:job.key ~cached:true ~ms ~conflicts:0 ~timed_out:false verdict)
    | None -> (
      match
        Engine.solve ~clock:st.cfg.clock ?deadline:job.deadline st.cfg.engine job.golden
          job.revised
      with
      | exception Invalid_argument msg ->
        Metrics.record_error st.metrics;
        send job.fd (P.error_response msg)
      | result ->
        Store.store st.store job.key result.Engine.verdict;
        let ms = ms_since st t0 in
        Metrics.record st.metrics
          (outcome_of_verdict ~timed_out:result.Engine.timed_out result.Engine.verdict)
          ~cached:false ~ms;
        log st "solved %s (%s, %d conflicts, %.2fms)" (Key.to_hex job.key)
          (status_of_verdict ~timed_out:result.Engine.timed_out result.Engine.verdict)
          result.Engine.conflicts ms;
        send job.fd
          (check_response ~key:job.key ~cached:false ~ms ~conflicts:result.Engine.conflicts
             ~timed_out:result.Engine.timed_out result.Engine.verdict))

let rec worker st =
  Mutex.lock st.lock;
  while Queue.is_empty st.queue && not st.draining do
    Condition.wait st.nonempty st.lock
  done;
  if Queue.is_empty st.queue then Mutex.unlock st.lock (* draining and empty: exit *)
  else begin
    let job = Queue.pop st.queue in
    Mutex.unlock st.lock;
    (try process st job
     with e ->
       Metrics.record_error st.metrics;
       send job.fd (P.error_response (Printexc.to_string e)));
    close_quietly job.fd;
    worker st
  end

let stats_response st =
  P.to_json (Metrics.fields (Metrics.snapshot st.metrics) @ Store.fields (Store.stats st.store))

(* Parse and dispatch one connection's request.  Everything answerable
   without solving is answered inline; [check] jobs go to the queue,
   which then owns the connection. *)
let handle_connection st fd =
  match read_line_fd fd with
  | Error msg ->
    send fd (P.error_response msg);
    close_quietly fd
  | Ok line -> (
    Metrics.incr_requests st.metrics;
    match P.parse_request line with
    | Error msg ->
      Metrics.record_error st.metrics;
      send fd (P.error_response msg);
      close_quietly fd
    | Ok P.Ping ->
      send fd (P.to_json [ ("ok", P.Bool true) ]);
      close_quietly fd
    | Ok P.Stats ->
      send fd (stats_response st);
      close_quietly fd
    | Ok P.Shutdown ->
      log st "shutdown requested, draining";
      Atomic.set st.stop true;
      send fd (P.to_json [ ("ok", P.Bool true); ("draining", P.Bool true) ]);
      close_quietly fd
    | Ok (P.Check { golden; revised; timeout_ms }) -> (
      match (load_netlist golden, load_netlist revised) with
      | Error msg, _ | _, Error msg ->
        Metrics.record_error st.metrics;
        send fd (P.error_response msg);
        close_quietly fd
      | Ok a, Ok b ->
        if Aig.num_inputs a <> Aig.num_inputs b || Aig.num_outputs a <> Aig.num_outputs b
        then begin
          Metrics.record_error st.metrics;
          send fd (P.error_response "interface mismatch between the two netlists");
          close_quietly fd
        end
        else begin
          let a = Key.normalize a and b = Key.normalize b in
          let key = Key.of_pair a b in
          let timeout = match timeout_ms with Some _ as t -> t | None -> st.cfg.default_timeout_ms in
          let deadline =
            Option.map (fun ms -> st.cfg.clock () +. (float_of_int ms /. 1000.0)) timeout
          in
          Mutex.lock st.lock;
          if Queue.length st.queue >= max 1 st.cfg.queue_capacity then begin
            Mutex.unlock st.lock;
            Metrics.record_rejected st.metrics;
            send fd (P.error_response "queue full");
            close_quietly fd
          end
          else begin
            Queue.push { golden = a; revised = b; key; deadline; fd } st.queue;
            Condition.signal st.nonempty;
            Mutex.unlock st.lock
          end
        end))

(* --- life cycle --- *)

let bind_socket path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s: exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     close_quietly fd;
     raise e);
  fd

let run cfg =
  let store =
    Store.create ?capacity_bytes:cfg.store_capacity ~paranoid:cfg.paranoid ~dir:cfg.store_dir ()
  in
  let st =
    {
      cfg;
      store;
      metrics = Metrics.create ();
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      draining = false;
      stop = Atomic.make false;
    }
  in
  let listen_fd = bind_socket cfg.socket_path in
  let request_stop _ = Atomic.set st.stop true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  (* Each worker domain records observability (solver, sweep, proof
     counters) into its own registry; the registries are merged into
     the metrics registry after the joins, so the exported stats cover
     the whole pipeline, not just request-level counters. *)
  let worker_regs = Array.init (max 1 cfg.workers) (fun _ -> Obs.Registry.create ()) in
  let workers =
    Array.init (max 1 cfg.workers) (fun i ->
        Domain.spawn (fun () -> Obs.with_ambient worker_regs.(i) (fun () -> worker st)))
  in
  log st "listening on %s (store %s, %d worker(s))" cfg.socket_path cfg.store_dir
    (Array.length workers);
  while not (Atomic.get st.stop) do
    match Unix.select [ listen_fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept listen_fd with
      | fd, _ -> (
        try handle_connection st fd
        with e ->
          Metrics.record_error st.metrics;
          send fd (P.error_response (Printexc.to_string e));
          close_quietly fd)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  close_quietly listen_fd;
  (* Drain: workers finish every queued job, then exit. *)
  Mutex.lock st.lock;
  st.draining <- true;
  Condition.broadcast st.nonempty;
  Mutex.unlock st.lock;
  Array.iter Domain.join workers;
  let reg = Metrics.registry st.metrics in
  Array.iter (fun r -> Obs.Registry.merge_into ~into:reg r) worker_regs;
  let write_file path data = Out_channel.with_open_text path (fun oc -> output_string oc data) in
  Option.iter (fun path -> write_file path (Obs.Export.stats_json reg)) cfg.stats_out;
  Option.iter (fun path -> write_file path (Obs.Export.trace_json reg)) cfg.trace_out;
  Store.flush store;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigpipe old_pipe;
  let snapshot = Metrics.snapshot st.metrics in
  let store_stats = Store.stats store in
  if cfg.log then begin
    Format.eprintf "cecd: shutdown metrics: %a@." Metrics.pp snapshot;
    Format.eprintf "cecd: store: %a@." Store.pp_stats store_stats
  end;
  (snapshot, store_stats)

let request ~socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (e, _, _) ->
    close_quietly fd;
    Error (Printf.sprintf "%s: %s" socket_path (Unix.error_message e))
  | () ->
    let result =
      send fd line;
      read_line_fd fd
    in
    close_quietly fd;
    result
