module Cec = Cec_core.Cec
module P = Protocol

type config = {
  socket_path : string;
  store_dir : string;
  store_capacity : int option;
  paranoid : bool;
  workers : int;
  queue_capacity : int;
  engine : Engine.config;
  default_timeout_ms : int option;
  log : bool;
  clock : unit -> float;
  stats_out : string option;
  trace_out : string option;
}

let default_config ~socket_path ~store_dir =
  {
    socket_path;
    store_dir;
    store_capacity = None;
    paranoid = true;
    workers = 1;
    queue_capacity = 64;
    engine = Engine.default_config;
    default_timeout_ms = None;
    log = true;
    clock = Unix.gettimeofday;
    stats_out = None;
    trace_out = None;
  }

(* One accepted [check] request, parked on the bounded queue.  The
   worker that pops it owns (and closes) the connection. *)
type job = {
  golden : Aig.t;
  revised : Aig.t;
  key : Key.t;
  deadline : float option;
  fd : Unix.file_descr;
  mutable retries : int;
}

type state = {
  cfg : config;
  store : Store.t;
  metrics : Metrics.t;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable draining : bool;
  stop : bool Atomic.t;
}

(* --- framing (EINTR/partial-IO handling lives in {!Wire}) --- *)

let max_request_bytes = 65536

let read_line_fd fd = Wire.read_line ~max_bytes:max_request_bytes fd

(* Best-effort response write: a vanished client (EPIPE/ECONNRESET)
   is not the server's problem. *)
let send fd line =
  try Wire.write_line fd line
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- request handling --- *)

let load_netlist path =
  try
    if Filename.check_suffix path ".blif" then Ok (Aig.Blif.read_file path)
    else Ok (Aig.Aiger.read_file path)
  with
  | Aig.Aiger.Parse_error msg | Aig.Blif.Parse_error msg ->
    Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let status_of_verdict ?degraded ~timed_out verdict =
  match (degraded, verdict) with
  | Some _, Cec.Undecided -> "uncertified"
  | _, Cec.Equivalent _ -> "equivalent"
  | _, Cec.Inequivalent _ -> "inequivalent"
  | _, Cec.Undecided -> if timed_out then "timeout" else "undecided"

let outcome_of_verdict ?degraded ~timed_out verdict =
  match (degraded, verdict) with
  | Some _, Cec.Undecided -> Metrics.Uncertified
  | _, Cec.Equivalent _ -> Metrics.Proved
  | _, Cec.Inequivalent _ -> Metrics.Counterexample
  | _, Cec.Undecided -> if timed_out then Metrics.Timeout else Metrics.Undecided

let check_response ?degraded ~key ~cached ~ms ~conflicts ~timed_out verdict =
  let base =
    [
      ("status", P.String (status_of_verdict ?degraded ~timed_out verdict));
      ("cached", P.Bool cached);
      ("key", P.String (Key.to_hex key));
      ("conflicts", P.Int conflicts);
      ("ms", P.Float ms);
    ]
  in
  let extra =
    match verdict with
    | Cec.Inequivalent cex ->
      [
        ( "cex",
          P.String (String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')) );
      ]
    | Cec.Equivalent _ | Cec.Undecided -> []
  in
  let reason =
    match (degraded, verdict) with
    | Some r, Cec.Undecided -> [ ("reason", P.String r) ]
    | _ -> []
  in
  P.to_json (base @ extra @ reason)

let log st fmt =
  if st.cfg.log then Format.eprintf ("cecd: " ^^ fmt ^^ "@.") else Format.ifprintf Format.err_formatter fmt

let ms_since st t0 = 1000.0 *. (st.cfg.clock () -. t0)

let process st job =
  let t0 = st.cfg.clock () in
  (* Server-layer crash point: fires after the job left the queue, so
     the supervised re-enqueue/typed-failure path gets exercised. *)
  Fault.inject "worker.crash";
  let expired = match job.deadline with Some d -> t0 >= d | None -> false in
  if expired then begin
    Metrics.record_cancelled st.metrics;
    log st "cancelled %s (deadline expired in queue)" (Key.to_hex job.key);
    send job.fd
      (P.to_json
         [
           ("status", P.String "timeout");
           ("cached", P.Bool false);
           ("key", P.String (Key.to_hex job.key));
           ("conflicts", P.Int 0);
           ("ms", P.Float 0.0);
         ])
  end
  else
    match Store.find st.store job.key ~golden:job.golden ~revised:job.revised with
    | Some verdict ->
      let ms = ms_since st t0 in
      Metrics.record st.metrics (outcome_of_verdict ~timed_out:false verdict) ~cached:true ~ms;
      log st "hit %s (%s, %.2fms)" (Key.to_hex job.key)
        (status_of_verdict ~timed_out:false verdict)
        ms;
      send job.fd (check_response ~key:job.key ~cached:true ~ms ~conflicts:0 ~timed_out:false verdict)
    | None -> (
      match
        Engine.solve ~clock:st.cfg.clock ?deadline:job.deadline st.cfg.engine job.golden
          job.revised
      with
      | exception Invalid_argument msg ->
        Metrics.record_error st.metrics;
        send job.fd (P.error_response msg)
      | result ->
        let degraded = result.Engine.degraded in
        if degraded = None then Store.store st.store job.key result.Engine.verdict;
        let ms = ms_since st t0 in
        Metrics.record st.metrics
          (outcome_of_verdict ?degraded ~timed_out:result.Engine.timed_out result.Engine.verdict)
          ~cached:false ~ms;
        log st "solved %s (%s, %d conflicts, %.2fms)" (Key.to_hex job.key)
          (status_of_verdict ?degraded ~timed_out:result.Engine.timed_out result.Engine.verdict)
          result.Engine.conflicts ms;
        send job.fd
          (check_response ?degraded ~key:job.key ~cached:false ~ms
             ~conflicts:result.Engine.conflicts ~timed_out:result.Engine.timed_out
             result.Engine.verdict))

(* Worker supervision: a job whose [process] raises is re-enqueued
   once (any worker may pick it up); a second crash answers the client
   with a typed [worker_crashed] error — the connection is never left
   hanging, and one poisoned job can never wedge the pool. *)
let rec worker st =
  Mutex.lock st.lock;
  while Queue.is_empty st.queue && not st.draining do
    Condition.wait st.nonempty st.lock
  done;
  if Queue.is_empty st.queue then Mutex.unlock st.lock (* draining and empty: exit *)
  else begin
    let job = Queue.pop st.queue in
    Mutex.unlock st.lock;
    (match process st job with
    | () -> close_quietly job.fd
    | exception e ->
      if job.retries = 0 then begin
        job.retries <- 1;
        Metrics.record_retry st.metrics;
        log st "job %s crashed (%s), re-enqueued" (Key.to_hex job.key) (Printexc.to_string e);
        (* Re-enqueue past the capacity check: bouncing an accepted job
           would turn a transient fault into a spurious rejection. *)
        Mutex.lock st.lock;
        Queue.push job st.queue;
        Condition.signal st.nonempty;
        Mutex.unlock st.lock
      end
      else begin
        Metrics.record_error st.metrics;
        log st "job %s crashed twice (%s): failing" (Key.to_hex job.key) (Printexc.to_string e);
        send job.fd (P.error_response ~code:"worker_crashed" (Printexc.to_string e));
        close_quietly job.fd
      end);
    worker st
  end

(* Outer supervisor: [worker] itself is not supposed to raise (crashes
   are absorbed per-job above), but if it ever does — a bug in the
   bookkeeping, an I/O error outside the per-job handler — the domain
   restarts its loop instead of silently shrinking the pool. *)
let supervised_worker st =
  let rec go () =
    try worker st
    with e ->
      Metrics.record_worker_restart st.metrics;
      log st "worker loop crashed (%s), restarting" (Printexc.to_string e);
      go ()
  in
  go ()

let stats_response st =
  P.to_json (Metrics.fields (Metrics.snapshot st.metrics) @ Store.fields (Store.stats st.store))

(* Parse and dispatch one connection's request.  Everything answerable
   without solving is answered inline; [check] jobs go to the queue,
   which then owns the connection. *)
let handle_connection st fd =
  (* [peer.slow] models a stalling client on the accept path; the
     daemon must stay responsive and drain cleanly regardless. *)
  if Fault.fire "peer.slow" then Unix.sleepf 0.05;
  match read_line_fd fd with
  | Error msg ->
    send fd (P.error_response msg);
    close_quietly fd
  | Ok line -> (
    Metrics.incr_requests st.metrics;
    match P.parse_request line with
    | Error msg ->
      Metrics.record_error st.metrics;
      send fd (P.error_response msg);
      close_quietly fd
    | Ok P.Ping ->
      send fd (P.to_json [ ("ok", P.Bool true) ]);
      close_quietly fd
    | Ok P.Stats ->
      send fd (stats_response st);
      close_quietly fd
    | Ok P.Shutdown ->
      log st "shutdown requested, draining";
      Atomic.set st.stop true;
      send fd (P.to_json [ ("ok", P.Bool true); ("draining", P.Bool true) ]);
      close_quietly fd
    | Ok (P.Check { golden; revised; timeout_ms }) -> (
      match (load_netlist golden, load_netlist revised) with
      | Error msg, _ | _, Error msg ->
        Metrics.record_error st.metrics;
        send fd (P.error_response msg);
        close_quietly fd
      | Ok a, Ok b ->
        if Aig.num_inputs a <> Aig.num_inputs b || Aig.num_outputs a <> Aig.num_outputs b
        then begin
          Metrics.record_error st.metrics;
          send fd (P.error_response "interface mismatch between the two netlists");
          close_quietly fd
        end
        else begin
          let a = Key.normalize a and b = Key.normalize b in
          let key = Key.of_pair a b in
          let timeout = match timeout_ms with Some _ as t -> t | None -> st.cfg.default_timeout_ms in
          let deadline =
            Option.map (fun ms -> st.cfg.clock () +. (float_of_int ms /. 1000.0)) timeout
          in
          Mutex.lock st.lock;
          if Queue.length st.queue >= max 1 st.cfg.queue_capacity then begin
            Mutex.unlock st.lock;
            Metrics.record_rejected st.metrics;
            send fd (P.error_response "queue full");
            close_quietly fd
          end
          else begin
            Queue.push { golden = a; revised = b; key; deadline; fd; retries = 0 } st.queue;
            Condition.signal st.nonempty;
            Mutex.unlock st.lock
          end
        end))

(* --- life cycle --- *)

(* Is some process listening on the socket at [path]?  Distinguishes a
   live daemon (connect succeeds) from a stale file left by a crashed
   one (ECONNREFUSED). *)
let socket_live path =
  let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let live =
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
  in
  close_quietly probe;
  live

let bind_socket path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (* Probe before unlinking: clobbering a live daemon's socket would
       orphan it silently; only a provably stale file is removed. *)
    if socket_live path then
      failwith (Printf.sprintf "%s: a daemon is already listening on this socket" path)
    else Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s: exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     close_quietly fd;
     raise e);
  fd

let run cfg =
  let store =
    Store.create ?capacity_bytes:cfg.store_capacity ~paranoid:cfg.paranoid ~dir:cfg.store_dir ()
  in
  let st =
    {
      cfg;
      store;
      metrics = Metrics.create ();
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      draining = false;
      stop = Atomic.make false;
    }
  in
  let listen_fd = bind_socket cfg.socket_path in
  let request_stop _ = Atomic.set st.stop true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  (* Each worker domain records observability (solver, sweep, proof
     counters) into its own registry; the registries are merged into
     the metrics registry after the joins, so the exported stats cover
     the whole pipeline, not just request-level counters. *)
  let worker_regs = Array.init (max 1 cfg.workers) (fun _ -> Obs.Registry.create ()) in
  let workers =
    Array.init (max 1 cfg.workers) (fun i ->
        Domain.spawn (fun () -> Obs.with_ambient worker_regs.(i) (fun () -> supervised_worker st)))
  in
  log st "listening on %s (store %s, %d worker(s))" cfg.socket_path cfg.store_dir
    (Array.length workers);
  while not (Atomic.get st.stop) do
    match Unix.select [ listen_fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept listen_fd with
      | fd, _ -> (
        try handle_connection st fd
        with e ->
          Metrics.record_error st.metrics;
          send fd (P.error_response (Printexc.to_string e));
          close_quietly fd)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  close_quietly listen_fd;
  (* Drain: workers finish every queued job, then exit. *)
  Mutex.lock st.lock;
  st.draining <- true;
  Condition.broadcast st.nonempty;
  Mutex.unlock st.lock;
  Array.iter Domain.join workers;
  let reg = Metrics.registry st.metrics in
  Array.iter (fun r -> Obs.Registry.merge_into ~into:reg r) worker_regs;
  let write_file path data = Out_channel.with_open_text path (fun oc -> output_string oc data) in
  Option.iter (fun path -> write_file path (Obs.Export.stats_json reg)) cfg.stats_out;
  Option.iter (fun path -> write_file path (Obs.Export.trace_json reg)) cfg.trace_out;
  Store.flush store;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigpipe old_pipe;
  let snapshot = Metrics.snapshot st.metrics in
  let store_stats = Store.stats store in
  if cfg.log then begin
    Format.eprintf "cecd: shutdown metrics: %a@." Metrics.pp snapshot;
    Format.eprintf "cecd: store: %a@." Store.pp_stats store_stats
  end;
  (snapshot, store_stats)

let request ~socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (e, _, _) ->
    close_quietly fd;
    Error (Printf.sprintf "%s: %s" socket_path (Unix.error_message e))
  | () ->
    let result =
      send fd line;
      read_line_fd fd
    in
    close_quietly fd;
    result
