(** The line-delimited request protocol spoken over the daemon's Unix
    domain socket, and the flat-JSON response encoding.

    One request per connection: the client sends a single
    newline-terminated line, the server answers with a single JSON
    object on one line and closes.  Requests:

    {v
    check GOLDEN REVISED [TIMEOUT_MS]    decide a pair (netlist paths)
    stats                                metrics + store counters as JSON
    metrics                              full observability registry as
                                         nested flat JSON (the {!Obs}
                                         export shape; mergeable by the
                                         fleet router)
    ping                                 liveness probe
    shutdown                             drain the queue and exit
    join ID ADDR                         admin: add shard to the ring
    leave ID                             admin: drain + remove shard
    drain ID                             admin: stop routing to shard
    v}

    The three admin requests reconfigure a {e router}'s ring live;
    plain shard daemons answer them with a typed [router_only]
    error.

    Netlist paths are read by the {e server} process, so they must be
    meaningful in its filesystem namespace (the daemon is a local
    service).  Paths containing whitespace are not representable.

    Responses are flat JSON objects — string, integer, float and
    boolean fields only, no nesting — so that {!field} can extract
    values without a JSON parser. *)

type json =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** Render a flat object; keys are emitted in the given order. *)
val to_json : (string * json) list -> string

(** [field name line] extracts field [name] from a flat JSON object
    rendered by {!to_json}: [Some] of the raw value with string quoting
    and escapes undone, [None] when absent.  Not a general JSON
    parser. *)
val field : string -> string -> string option

(** Convenience: an [{"error": msg}] response line.  [code] adds a
    stable machine-readable ["code"] field (e.g. ["worker_crashed"],
    ["queue_full"]) so clients can react without parsing prose. *)
val error_response : ?code:string -> string -> string

type request =
  | Check of {
      golden : string;
      revised : string;
      timeout_ms : int option;
    }
  | Stats
  | Metrics
  | Ping
  | Shutdown
  | Join of {
      id : string;
      addr : string;
    }
  | Leave of { id : string }
  | Drain of { id : string }

val parse_request : string -> (request, string) result
val print_request : request -> string
