module Cec = Cec_core.Cec
module Certify = Cec_core.Certify

(* Version 2 introduced binary certificate bodies and the explicit
   ["trace"/"bin"] word on the verdict line; version 3 adds hinted
   binary bodies ("bin3": pivot hints + shard table, checkable without
   search and in parallel).  Version-1 objects (bare ["equivalent"] +
   ASCII trace) and version-2 objects are still readable; the index
   format is versioned separately below and an old index is simply
   rebuilt. *)
let format_version = 3

type cert_format = Trace | Bin | Bin3

type entry = {
  mutable bytes : int;
  mutable stamp : int;
}

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
  write_failures : int;
}

type t = {
  dir : string;
  objects : string;
  capacity : int option;
  paranoid : bool;
  cert_format : cert_format;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable store_count : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable write_failures : int;
  lock : Mutex.t;
}

(* --- filesystem helpers --- *)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Atomic publication: write to a fresh temporary in the same directory
   (same filesystem, so the rename cannot degrade to copy+delete) and
   rename over the final name. *)
let write_atomic ~path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".tmp-" ".part" in
  (try Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* --- index persistence --- *)

let index_path t = Filename.concat t.dir "index"
let object_path t hex = Filename.concat t.objects hex

let save_index t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "cecproof-index %d\n" format_version;
  Hashtbl.iter (fun hex (e : entry) -> Printf.bprintf buf "%s %d %d\n" hex e.bytes e.stamp) t.table;
  write_atomic ~path:(index_path t) (Buffer.contents buf)

(* Restore the entry table from the index file; falls back to scanning
   objects/ when the index is absent, unparsable or version-mismatched
   (rebuilt entries all get stamp 0: ancient, evicted first). *)
let load_entries t =
  let from_index () =
    match read_file (index_path t) with
    | exception Sys_error _ -> None
    | text -> (
      match String.split_on_char '\n' text with
      | header :: lines when header = Printf.sprintf "cecproof-index %d" format_version -> (
        let parse line =
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ hex; bytes; stamp ] -> (
            match (Key.of_hex hex, int_of_string_opt bytes, int_of_string_opt stamp) with
            | Some _, Some bytes, Some stamp when bytes >= 0 && stamp >= 0 ->
              Some (hex, bytes, stamp)
            | _ -> None)
          | _ -> None
        in
        let rec collect acc = function
          | [] -> Some (List.rev acc)
          | "" :: rest -> collect acc rest
          | line :: rest -> (
            match parse line with
            | Some e -> collect (e :: acc) rest
            | None -> None (* any bad line: distrust the whole index *))
        in
        match collect [] lines with
        | Some entries ->
          Some
            (List.filter (fun (hex, _, _) -> Sys.file_exists (object_path t hex)) entries)
        | None -> None)
      | _ -> None)
  in
  let from_scan () =
    match Sys.readdir t.objects with
    | exception Sys_error _ -> []
    | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             match Key.of_hex name with
             | None -> None
             | Some _ -> (
               match (Unix.stat (object_path t name)).Unix.st_size with
               | size -> Some (name, size, 0)
               | exception Unix.Unix_error _ -> None))
  in
  let entries = match from_index () with Some e -> e | None -> from_scan () in
  List.iter
    (fun (hex, bytes, stamp) ->
      Hashtbl.replace t.table hex { bytes; stamp };
      t.total_bytes <- t.total_bytes + bytes;
      if stamp > t.clock then t.clock <- stamp)
    entries

let dir t = t.dir
let paranoid t = t.paranoid
let entry_path t key = object_path t (Key.to_hex key)
let with_lock t f = Mutex.protect t.lock f
let mem t key = with_lock t (fun () -> Hashtbl.mem t.table (Key.to_hex key))

let touch t (e : entry) =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

(* --- certificate encoding --- *)

let header = Printf.sprintf "cecproof-cert %d" format_version
let legacy_headers = [ "cecproof-cert 1"; "cecproof-cert 2" ]
let known_header h = h = header || List.mem h legacy_headers

let encode ~format verdict =
  match verdict with
  | Cec.Undecided -> None
  | Cec.Inequivalent cex ->
    let bits = String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0') in
    Some (Printf.sprintf "%s\ninequivalent %s\n" header bits)
  | Cec.Equivalent cert -> (
    match format with
    | Bin ->
      (* [Binfmt.encode] walks the reachable cone itself, so no
         separate trimming pass is needed. *)
      Some
        (Printf.sprintf "%s\nequivalent bin\n%s" header
           (Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root))
    | Bin3 ->
      (* Hinted body: pivot hints plus a shard table on the prover's
         section boundaries, so reads re-validate without search and
         in parallel. *)
      Some
        (Printf.sprintf "%s\nequivalent bin3\n%s" header
           (Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries cert.Cec.proof
              ~root:cert.Cec.root))
    | Trace ->
      let trimmed, root = Proof.Trim.cone cert.Cec.proof ~root:cert.Cec.root in
      Some
        (Printf.sprintf "%s\nequivalent trace\n%s" header
           (Proof.Export.trace_to_string trimmed ~root)))

(* Split [data] into (first line, remainder after its newline). *)
let split_line data =
  match String.index_opt data '\n' with
  | None -> (data, "")
  | Some i -> (String.sub data 0 i, String.sub data (i + 1) (String.length data - i - 1))

(* Decode, reconstruct and (in paranoid mode) re-validate one
   certificate file against the requesting pair.  Every failure mode —
   I/O, version skew, parse errors, a proof that no longer checks, a
   counterexample that no longer distinguishes — is an [Error], which
   [find] turns into entry deletion + miss. *)
(* Simulated bit-rot ([store.corrupt]): flip one mid-file byte before
   parsing, exercising the validation/drop/miss path on reads. *)
let corrupt_bytes data =
  if String.length data = 0 then data
  else begin
    let b = Bytes.of_string data in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    Bytes.unsafe_to_string b
  end

let load_verdict t path ~golden ~revised =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | data -> (
    let data = if Fault.fire "store.corrupt" then corrupt_bytes data else data in
    let first, rest = split_line data in
    if not (known_header first) then
      Error (Printf.sprintf "version/header mismatch: %S (want %S)" first header)
    else
      let verdict_line, body = split_line rest in
      (* Version-1 objects say bare "equivalent" and always carry an
         ASCII trace; later versions name their body format. *)
      let equivalent_trace () =
        match Proof.Export.trace_of_string body with
        | exception Failure msg -> Error msg
        | exception Invalid_argument msg -> Error msg
        | proof, root -> (
          match Cnf.Tseitin.miter_formula (Aig.Miter.build golden revised) with
          | exception Invalid_argument msg -> Error msg
          | formula -> (
            let cert = { Cec.proof; root; formula; boundaries = [||] } in
            if not t.paranoid then Ok (Cec.Equivalent cert)
            else
              match Certify.validate_against cert golden revised with
              | Ok _ -> Ok (Cec.Equivalent cert)
              | Error e -> Error (Format.asprintf "%a" Certify.pp_error e)))
      in
      (* The decoded proof's node ids equal stream positions, so the
         shard table maps straight back to section boundaries — a
         reloaded certificate re-encodes with the same shards. *)
      let boundaries_of_body () =
        match Proof.Binfmt.reader body with
        | exception Proof.Binfmt.Corrupt _ -> [||]
        | r ->
          let n = Proof.Binfmt.declared_nodes r in
          Proof.Binfmt.shards r |> Array.to_list
          |> List.filter_map (fun sh ->
                 if sh.Proof.Binfmt.end_pos < n then Some (sh.Proof.Binfmt.end_pos - 1)
                 else None)
          |> Array.of_list
      in
      let equivalent_bin ~hinted () =
        match Cnf.Tseitin.miter_formula (Aig.Miter.build golden revised) with
        | exception Invalid_argument msg -> Error msg
        | formula -> (
          let checked =
            if not t.paranoid then Ok ()
            else if hinted then
              (* Hinted bodies re-validate search-free: the checker
                 follows each chain's stored pivots and enforces the
                 shard/export discipline. *)
              match Proof.Hint_check.check ~formula body with
              | Ok _ -> Ok ()
              | Error e -> Error (Format.asprintf "%a" Proof.Hint_check.pp_error e)
            else
              (* The streaming checker plays the [Certify] role for
                 binary bodies: leaves must come from this pair's miter
                 CNF, every chain re-resolves, the root is empty. *)
              match Proof.Stream_check.check ~formula body with
              | Ok _ -> Ok ()
              | Error e -> Error (Format.asprintf "%a" Proof.Stream_check.pp_error e)
          in
          match checked with
          | Error msg -> Error msg
          | Ok () -> (
            match Proof.Binfmt.decode body with
            | exception Failure msg -> Error msg
            | proof, root ->
              Ok (Cec.Equivalent { Cec.proof; root; formula; boundaries = boundaries_of_body () })))
      in
      match String.split_on_char ' ' verdict_line with
      | [ "equivalent" ] | [ "equivalent"; "trace" ] -> equivalent_trace ()
      | [ "equivalent"; "bin" ] -> equivalent_bin ~hinted:false ()
      | [ "equivalent"; "bin3" ] -> equivalent_bin ~hinted:true ()
      | [ "inequivalent"; bits ] ->
        if String.exists (fun c -> c <> '0' && c <> '1') bits then
          Error "malformed counterexample bits"
        else if String.length bits <> Aig.num_inputs golden then
          Error "counterexample arity mismatch"
        else begin
          let cex = Array.init (String.length bits) (fun i -> bits.[i] = '1') in
          if t.paranoid then begin
            match Aig.Miter.build golden revised with
            | exception Invalid_argument msg -> Error msg
            | miter ->
              if (Aig.eval miter cex).(0) then Ok (Cec.Inequivalent cex)
              else Error "stored counterexample does not distinguish the pair"
          end
          else Ok (Cec.Inequivalent cex)
        end
      | _ -> Error (Printf.sprintf "malformed verdict line %S" verdict_line))

let drop_entry t hex (e : entry) =
  Hashtbl.remove t.table hex;
  t.total_bytes <- t.total_bytes - e.bytes;
  try Sys.remove (object_path t hex) with Sys_error _ -> ()

(* --- fsck --- *)

type fsck_report = {
  scanned : int;
  valid : int;
  orphan_tmp : int;
  quarantined : int;
  adopted : int;
  dropped : int;
}

let quarantine_dir t = Filename.concat t.dir "quarantine"

(* Move a suspect file out of the store.  Quarantining must never make
   recovery worse: if the rename itself fails the file is deleted, so
   a repeated fsck always converges to a consistent store. *)
let quarantine t path =
  let dst_dir = quarantine_dir t in
  mkdir_p dst_dir;
  let base = Filename.basename path in
  let rec fresh i =
    let cand =
      if i = 0 then Filename.concat dst_dir base
      else Filename.concat dst_dir (Printf.sprintf "%s.%d" base i)
    in
    if Sys.file_exists cand then fresh (i + 1) else cand
  in
  try Sys.rename path (fresh 0) with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ())

let is_tmp_name name =
  String.length name > 5 && String.sub name 0 5 = ".tmp-" && Filename.check_suffix name ".part"

(* Structural validation of one object's bytes — no pair in hand, so
   this checks everything checkable without a miter CNF: header and
   verdict-line shape, trace parsability, and for binary bodies a full
   [Stream_check] pass (every chain re-resolves, root empty) minus the
   leaf-origin check that needs the formula. *)
let validate_object data =
  let first, rest = split_line data in
  if not (known_header first) then Error (Printf.sprintf "header mismatch: %S" first)
  else
    let verdict_line, body = split_line rest in
    match String.split_on_char ' ' verdict_line with
    | [ "equivalent" ] | [ "equivalent"; "trace" ] -> (
      match Proof.Export.trace_of_string body with
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg
      | _ -> Ok ())
    | [ "equivalent"; "bin" ] -> (
      match Proof.Stream_check.check body with
      | Ok _ -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Proof.Stream_check.pp_error e))
    | [ "equivalent"; "bin3" ] -> (
      match Proof.Hint_check.check body with
      | Ok _ -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Proof.Hint_check.pp_error e))
    | [ "inequivalent"; bits ] ->
      if bits <> "" && String.for_all (fun c -> c = '0' || c = '1') bits then Ok ()
      else Error "malformed counterexample bits"
    | _ -> Error (Printf.sprintf "malformed verdict line %S" verdict_line)

let fsck_locked t =
  let orphan_tmp = ref 0
  and quarantined = ref 0
  and adopted = ref 0
  and dropped = ref 0
  and valid = ref 0
  and scanned = ref 0 in
  let sweep_tmp dirpath =
    match Sys.readdir dirpath with
    | exception Sys_error _ -> ()
    | names ->
      Array.iter
        (fun name ->
          if is_tmp_name name then begin
            quarantine t (Filename.concat dirpath name);
            incr orphan_tmp;
            incr quarantined
          end)
        names
  in
  sweep_tmp t.dir;
  sweep_tmp t.objects;
  (match Sys.readdir t.objects with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        let path = Filename.concat t.objects name in
        if not (try Sys.is_directory path with Sys_error _ -> true) then begin
          incr scanned;
          let entry = Hashtbl.find_opt t.table name in
          let condemn () =
            (match entry with
            | Some e ->
              Hashtbl.remove t.table name;
              t.total_bytes <- t.total_bytes - e.bytes
            | None -> ());
            quarantine t path;
            incr quarantined
          in
          if Key.of_hex name = None then condemn ()
          else
            match read_file path with
            | exception Sys_error _ -> condemn ()
            | data -> (
              match validate_object data with
              | Error _ -> condemn ()
              | Ok () -> (
                incr valid;
                let bytes = String.length data in
                match entry with
                | Some e ->
                  if e.bytes <> bytes then begin
                    t.total_bytes <- t.total_bytes - e.bytes + bytes;
                    e.bytes <- bytes
                  end
                | None ->
                  (* A valid object the index forgot (crash between the
                     object rename and the index write): re-adopt it so
                     warm hits keep serving after recovery. *)
                  Hashtbl.replace t.table name { bytes; stamp = 0 };
                  t.total_bytes <- t.total_bytes + bytes;
                  incr adopted))
        end)
      names);
  let missing =
    Hashtbl.fold
      (fun hex (e : entry) acc ->
        if Sys.file_exists (object_path t hex) then acc else (hex, e) :: acc)
      t.table []
  in
  List.iter
    (fun (hex, (e : entry)) ->
      Hashtbl.remove t.table hex;
      t.total_bytes <- t.total_bytes - e.bytes;
      incr dropped)
    missing;
  save_index t;
  {
    scanned = !scanned;
    valid = !valid;
    orphan_tmp = !orphan_tmp;
    quarantined = !quarantined;
    adopted = !adopted;
    dropped = !dropped;
  }

let fsck t = with_lock t (fun () -> fsck_locked t)

let pp_fsck fmt r =
  Format.fprintf fmt "scanned=%d valid=%d orphan_tmp=%d quarantined=%d adopted=%d dropped=%d"
    r.scanned r.valid r.orphan_tmp r.quarantined r.adopted r.dropped

let create ?capacity_bytes ?(paranoid = true) ?(cert_format = Bin3) ?(startup_fsck = true) ~dir () =
  let objects = Filename.concat dir "objects" in
  mkdir_p objects;
  let t =
    {
      dir;
      objects;
      capacity = capacity_bytes;
      paranoid;
      cert_format;
      table = Hashtbl.create 64;
      clock = 0;
      total_bytes = 0;
      hits = 0;
      misses = 0;
      store_count = 0;
      evictions = 0;
      corrupt = 0;
      write_failures = 0;
      lock = Mutex.create ();
    }
  in
  load_entries t;
  if startup_fsck then ignore (fsck_locked t);
  t

let find t key ~golden ~revised =
  with_lock t (fun () ->
      let hex = Key.to_hex key in
      match Hashtbl.find_opt t.table hex with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e -> (
        match load_verdict t (object_path t hex) ~golden ~revised with
        | Ok verdict ->
          t.hits <- t.hits + 1;
          touch t e;
          save_index t;
          Some verdict
        | Error _ ->
          t.corrupt <- t.corrupt + 1;
          t.misses <- t.misses + 1;
          drop_entry t hex e;
          save_index t;
          None))

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun hex (e : entry) acc ->
        match acc with
        | Some (_, (best : entry)) when best.stamp <= e.stamp -> acc
        | _ -> Some (hex, e))
      t.table None
  in
  match victim with
  | None -> false
  | Some (hex, e) ->
    drop_entry t hex e;
    t.evictions <- t.evictions + 1;
    true

let over_capacity t =
  match t.capacity with Some cap -> t.total_bytes > cap | None -> false

(* Object publication with injection points.  [store.write] simulates
   an I/O error / crash before any data lands (the orphaned tmp file
   stays behind for fsck); [store.torn_write] simulates a crash after
   publishing only a truncated prefix — the worst case tmp+rename is
   supposed to prevent, forced here so fsck provably cleans it up. *)
let write_object_atomic t hex data =
  let path = object_path t hex in
  let tmp = Filename.temp_file ~temp_dir:t.objects ".tmp-" ".part" in
  if Fault.fire "store.write" then raise (Fault.Injected "store.write");
  if Fault.fire "store.torn_write" then begin
    let cut = max 1 (String.length data / 3) in
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (String.sub data 0 cut));
    Sys.rename tmp path;
    raise (Fault.Injected "store.torn_write")
  end;
  (try Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let store t key verdict =
  match encode ~format:t.cert_format verdict with
  | None -> ()
  | Some data ->
    with_lock t (fun () ->
        let hex = Key.to_hex key in
        match write_object_atomic t hex data with
        | exception (Fault.Injected _ | Sys_error _) ->
          (* A verdict that cannot be cached is still a verdict: count
             the failure and serve the caller uncached. *)
          t.write_failures <- t.write_failures + 1
        | () ->
        let bytes = String.length data in
        (match Hashtbl.find_opt t.table hex with
        | Some e ->
          t.total_bytes <- t.total_bytes - e.bytes + bytes;
          e.bytes <- bytes;
          touch t e
        | None ->
          let e = { bytes; stamp = 0 } in
          touch t e;
          Hashtbl.replace t.table hex e;
          t.total_bytes <- t.total_bytes + bytes);
        t.store_count <- t.store_count + 1;
        (* LRU eviction pass: the just-written entry holds the newest
           stamp, so it survives unless it is the only one left. *)
        while over_capacity t && Hashtbl.length t.table > 1 && evict_lru t do
          ()
        done;
        save_index t)

let flush t = with_lock t (fun () -> save_index t)

let stats t =
  with_lock t (fun () ->
      {
        entries = Hashtbl.length t.table;
        bytes = t.total_bytes;
        hits = t.hits;
        misses = t.misses;
        stores = t.store_count;
        evictions = t.evictions;
        corrupt = t.corrupt;
        write_failures = t.write_failures;
      })

let fields s =
  Protocol.
    [
      ("store_entries", Int s.entries);
      ("store_bytes", Int s.bytes);
      ("store_stores", Int s.stores);
      ("store_evictions", Int s.evictions);
      ("store_corrupt", Int s.corrupt);
      ("store_write_failures", Int s.write_failures);
    ]

let pp_stats fmt s =
  Format.fprintf fmt
    "entries=%d bytes=%d hits=%d misses=%d stores=%d evictions=%d corrupt=%d write_failures=%d"
    s.entries s.bytes s.hits s.misses s.stores s.evictions s.corrupt s.write_failures
