type outcome =
  | Proved
  | Counterexample
  | Undecided
  | Timeout
  | Uncertified

type latency = {
  count : int;
  total_ms : float;
  max_ms : float;
}

type snapshot = {
  requests : int;
  proved : int;
  counterexamples : int;
  undecided : int;
  timeouts : int;
  hits : int;
  misses : int;
  uncertified : int;
  cancelled : int;
  rejected : int;
  errors : int;
  retried : int;
  worker_restarts : int;
  hit_latency : latency;
  solve_latency : latency;
}

(* The counters live in an {!Obs.Registry.t}, so the service shares the
   observability pipeline (stats/trace exporters) with the rest of the
   tree.  A registry is unsynchronized by design; here the accept loop
   and worker domains record into one registry, so a mutex serializes
   every operation (the pre-obs behaviour, unchanged). *)
type t = {
  reg : Obs.Registry.t;
  requests : Obs.Counter.t;
  proved : Obs.Counter.t;
  counterexamples : Obs.Counter.t;
  undecided : Obs.Counter.t;
  timeouts : Obs.Counter.t;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  uncertified : Obs.Counter.t;
  cancelled : Obs.Counter.t;
  rejected : Obs.Counter.t;
  errors : Obs.Counter.t;
  retried : Obs.Counter.t;
  worker_restarts : Obs.Counter.t;
  hit_ms : Obs.Histogram.t;
  solve_ms : Obs.Histogram.t;
  lock : Mutex.t;
}

let of_registry reg =
  let c = Obs.Registry.counter reg in
  {
    reg;
    requests = c "service.requests";
    proved = c "service.proved";
    counterexamples = c "service.counterexamples";
    undecided = c "service.undecided";
    timeouts = c "service.timeouts";
    hits = c "service.store_hits";
    misses = c "service.store_misses";
    uncertified = c "service.uncertified";
    cancelled = c "service.cancelled";
    rejected = c "service.rejected";
    errors = c "service.errors";
    retried = c "service.job_retries";
    worker_restarts = c "service.worker_restarts";
    hit_ms = Obs.Registry.histogram reg "service.hit_ms";
    solve_ms = Obs.Registry.histogram reg "service.solve_ms";
    lock = Mutex.create ();
  }

let create () = of_registry (Obs.Registry.create ())

let registry t = t.reg

let with_lock t f = Mutex.protect t.lock f

let merge_registry_into t ~into = with_lock t (fun () -> Obs.Registry.merge_into ~into t.reg)

let incr_requests t = with_lock t (fun () -> Obs.Counter.incr t.requests)

let record t outcome ~cached ~ms =
  with_lock t (fun () ->
      (match outcome with
      | Proved -> Obs.Counter.incr t.proved
      | Counterexample -> Obs.Counter.incr t.counterexamples
      | Undecided -> Obs.Counter.incr t.undecided
      | Timeout -> Obs.Counter.incr t.timeouts
      | Uncertified -> Obs.Counter.incr t.uncertified);
      if cached then begin
        Obs.Counter.incr t.hits;
        Obs.Histogram.observe t.hit_ms ms
      end
      else begin
        Obs.Counter.incr t.misses;
        Obs.Histogram.observe t.solve_ms ms
      end)

let record_cancelled t = with_lock t (fun () -> Obs.Counter.incr t.cancelled)
let record_retry t = with_lock t (fun () -> Obs.Counter.incr t.retried)
let record_worker_restart t = with_lock t (fun () -> Obs.Counter.incr t.worker_restarts)
let record_rejected t = with_lock t (fun () -> Obs.Counter.incr t.rejected)
let record_error t = with_lock t (fun () -> Obs.Counter.incr t.errors)

let latency_of h =
  { count = Obs.Histogram.count h; total_ms = Obs.Histogram.sum h; max_ms = Obs.Histogram.max_value h }

let snapshot t =
  with_lock t (fun () ->
      {
        requests = Obs.Counter.get t.requests;
        proved = Obs.Counter.get t.proved;
        counterexamples = Obs.Counter.get t.counterexamples;
        undecided = Obs.Counter.get t.undecided;
        timeouts = Obs.Counter.get t.timeouts;
        hits = Obs.Counter.get t.hits;
        misses = Obs.Counter.get t.misses;
        uncertified = Obs.Counter.get t.uncertified;
        cancelled = Obs.Counter.get t.cancelled;
        rejected = Obs.Counter.get t.rejected;
        errors = Obs.Counter.get t.errors;
        retried = Obs.Counter.get t.retried;
        worker_restarts = Obs.Counter.get t.worker_restarts;
        hit_latency = latency_of t.hit_ms;
        solve_latency = latency_of t.solve_ms;
      })

let avg (l : latency) = if l.count = 0 then 0.0 else l.total_ms /. float_of_int l.count

let fields (s : snapshot) =
  Protocol.
    [
      ("requests", Int s.requests);
      ("proved", Int s.proved);
      ("counterexamples", Int s.counterexamples);
      ("undecided", Int s.undecided);
      ("timeouts", Int s.timeouts);
      ("store_hits", Int s.hits);
      ("store_misses", Int s.misses);
      ("uncertified", Int s.uncertified);
      ("cancelled", Int s.cancelled);
      ("rejected", Int s.rejected);
      ("errors", Int s.errors);
      ("retried", Int s.retried);
      ("worker_restarts", Int s.worker_restarts);
      ("hit_ms_avg", Float (avg s.hit_latency));
      ("hit_ms_max", Float s.hit_latency.max_ms);
      ("solve_ms_avg", Float (avg s.solve_latency));
      ("solve_ms_max", Float s.solve_latency.max_ms);
    ]

let to_json s = Protocol.to_json (fields s)

let pp fmt (s : snapshot) =
  Format.fprintf fmt
    "requests=%d proved=%d cex=%d undecided=%d timeouts=%d uncertified=%d hits=%d misses=%d \
     cancelled=%d rejected=%d errors=%d retried=%d worker_restarts=%d | hit avg %.2fms max \
     %.2fms | solve avg %.2fms max %.2fms"
    s.requests s.proved s.counterexamples s.undecided s.timeouts s.uncertified s.hits s.misses
    s.cancelled s.rejected s.errors s.retried s.worker_restarts (avg s.hit_latency)
    s.hit_latency.max_ms (avg s.solve_latency) s.solve_latency.max_ms
