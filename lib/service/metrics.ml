type outcome =
  | Proved
  | Counterexample
  | Undecided
  | Timeout

type latency = {
  count : int;
  total_ms : float;
  max_ms : float;
}

type snapshot = {
  requests : int;
  proved : int;
  counterexamples : int;
  undecided : int;
  timeouts : int;
  hits : int;
  misses : int;
  cancelled : int;
  rejected : int;
  errors : int;
  hit_latency : latency;
  solve_latency : latency;
}

type agg = {
  mutable n : int;
  mutable total : float;
  mutable max : float;
}

type t = {
  mutable requests : int;
  mutable proved : int;
  mutable counterexamples : int;
  mutable undecided : int;
  mutable timeouts : int;
  mutable hits : int;
  mutable misses : int;
  mutable cancelled : int;
  mutable rejected : int;
  mutable errors : int;
  hit_ms : agg;
  solve_ms : agg;
  lock : Mutex.t;
}

let create () =
  {
    requests = 0;
    proved = 0;
    counterexamples = 0;
    undecided = 0;
    timeouts = 0;
    hits = 0;
    misses = 0;
    cancelled = 0;
    rejected = 0;
    errors = 0;
    hit_ms = { n = 0; total = 0.0; max = 0.0 };
    solve_ms = { n = 0; total = 0.0; max = 0.0 };
    lock = Mutex.create ();
  }

let with_lock t f = Mutex.protect t.lock f

let incr_requests t = with_lock t (fun () -> t.requests <- t.requests + 1)

let observe agg ms =
  agg.n <- agg.n + 1;
  agg.total <- agg.total +. ms;
  if ms > agg.max then agg.max <- ms

let record t outcome ~cached ~ms =
  with_lock t (fun () ->
      (match outcome with
      | Proved -> t.proved <- t.proved + 1
      | Counterexample -> t.counterexamples <- t.counterexamples + 1
      | Undecided -> t.undecided <- t.undecided + 1
      | Timeout -> t.timeouts <- t.timeouts + 1);
      if cached then begin
        t.hits <- t.hits + 1;
        observe t.hit_ms ms
      end
      else begin
        t.misses <- t.misses + 1;
        observe t.solve_ms ms
      end)

let record_cancelled t = with_lock t (fun () -> t.cancelled <- t.cancelled + 1)
let record_rejected t = with_lock t (fun () -> t.rejected <- t.rejected + 1)
let record_error t = with_lock t (fun () -> t.errors <- t.errors + 1)

let snapshot t =
  with_lock t (fun () ->
      {
        requests = t.requests;
        proved = t.proved;
        counterexamples = t.counterexamples;
        undecided = t.undecided;
        timeouts = t.timeouts;
        hits = t.hits;
        misses = t.misses;
        cancelled = t.cancelled;
        rejected = t.rejected;
        errors = t.errors;
        hit_latency = { count = t.hit_ms.n; total_ms = t.hit_ms.total; max_ms = t.hit_ms.max };
        solve_latency =
          { count = t.solve_ms.n; total_ms = t.solve_ms.total; max_ms = t.solve_ms.max };
      })

let avg (l : latency) = if l.count = 0 then 0.0 else l.total_ms /. float_of_int l.count

let fields (s : snapshot) =
  Protocol.
    [
      ("requests", Int s.requests);
      ("proved", Int s.proved);
      ("counterexamples", Int s.counterexamples);
      ("undecided", Int s.undecided);
      ("timeouts", Int s.timeouts);
      ("store_hits", Int s.hits);
      ("store_misses", Int s.misses);
      ("cancelled", Int s.cancelled);
      ("rejected", Int s.rejected);
      ("errors", Int s.errors);
      ("hit_ms_avg", Float (avg s.hit_latency));
      ("hit_ms_max", Float s.hit_latency.max_ms);
      ("solve_ms_avg", Float (avg s.solve_latency));
      ("solve_ms_max", Float s.solve_latency.max_ms);
    ]

let to_json s = Protocol.to_json (fields s)

let pp fmt (s : snapshot) =
  Format.fprintf fmt
    "requests=%d proved=%d cex=%d undecided=%d timeouts=%d hits=%d misses=%d cancelled=%d \
     rejected=%d errors=%d | hit avg %.2fms max %.2fms | solve avg %.2fms max %.2fms"
    s.requests s.proved s.counterexamples s.undecided s.timeouts s.hits s.misses s.cancelled
    s.rejected s.errors (avg s.hit_latency) s.hit_latency.max_ms (avg s.solve_latency)
    s.solve_latency.max_ms
