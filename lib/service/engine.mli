(** The service's decision procedure: requests are dispatched onto the
    partitioned {!Cec_core.Parallel} domain pool, one scheduling round
    at a time, with the conflict budget escalated geometrically between
    rounds and a per-request deadline checked at every round boundary.

    A round is one [Parallel.check] call with [max_rounds = 1]; keeping
    the rounds out here (instead of letting [Parallel] escalate
    internally) is what makes deadlines enforceable: an expired
    deadline between rounds aborts with a timeout instead of burning
    the remaining budget.  The trade-off is that partitions settled in
    an earlier round are re-solved in later ones; budgets grow
    geometrically, so the waste is bounded by a constant factor.

    With [budget = None] the single round runs unbudgeted — it always
    decides, but a deadline can then only be enforced before it
    starts. *)

type config = {
  jobs : int;  (** worker domains per solve (the [Parallel] pool size) *)
  engine : Cec_core.Cec.engine;  (** per-partition decision engine *)
  budget : int option;
      (** initial per-partition conflict budget; [None] = one
          unbudgeted round *)
  escalation : int;  (** budget multiplier between rounds (min 2) *)
  max_rounds : int;  (** budgeted rounds before giving up (min 1) *)
}

(** Sweeping partitions, one domain, 50k initial conflicts, 4x
    escalation over at most 4 rounds. *)
val default_config : config

type result = {
  verdict : Cec_core.Cec.verdict;
  conflicts : int;  (** total across all rounds *)
  sat_calls : int;
  rounds : int;  (** rounds actually executed *)
  timed_out : bool;  (** [Undecided] because the deadline expired *)
  degraded : string option;
      (** [Some reason] when the final round was degraded (a partition
          job crashed twice, or certificate stitching failed — see
          {!Cec_core.Parallel.report}); the verdict is then an
          uncertified [Undecided].  Earlier degraded rounds that a
          later clean round recovered from are not reported. *)
}

(** [solve ?clock ?deadline config golden revised] decides the pair.
    [deadline] is an absolute instant on [clock] (default
    [Unix.gettimeofday]); when it has passed before any round starts,
    the result is an immediate [Undecided] with [timed_out = true] and
    no work done.  Tests inject a fake [clock] to make deadline
    behaviour deterministic.
    @raise Invalid_argument if the interfaces differ. *)
val solve : ?clock:(unit -> float) -> ?deadline:float -> config -> Aig.t -> Aig.t -> result
