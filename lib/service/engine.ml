module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel

type config = {
  jobs : int;
  engine : Cec.engine;
  budget : int option;
  escalation : int;
  max_rounds : int;
}

let default_config =
  {
    jobs = 1;
    engine = Cec.Sweeping Sweep.default_config;
    budget = Some 50_000;
    escalation = 4;
    max_rounds = 4;
  }

type result = {
  verdict : Cec.verdict;
  conflicts : int;
  sat_calls : int;
  rounds : int;
  timed_out : bool;
  degraded : string option;
}

let solve ?(clock = Unix.gettimeofday) ?deadline config golden revised =
  let expired () =
    match deadline with Some d -> clock () >= d | None -> false
  in
  let escalation = max 2 config.escalation in
  let max_rounds = max 1 config.max_rounds in
  let conflicts = ref 0 and sat_calls = ref 0 and rounds = ref 0 in
  let finish ?degraded verdict timed_out =
    {
      verdict;
      conflicts = !conflicts;
      sat_calls = !sat_calls;
      rounds = !rounds;
      timed_out;
      degraded;
    }
  in
  let rec round n budget =
    if expired () then finish Cec.Undecided true
    else begin
      let pconfig =
        {
          Parallel.num_domains = max 1 config.jobs;
          engine = config.engine;
          budget;
          escalation;
          max_rounds = 1;
        }
      in
      let report = Parallel.check ~config:pconfig golden revised in
      incr rounds;
      conflicts := !conflicts + report.Parallel.stats.Parallel.conflicts;
      sat_calls := !sat_calls + report.Parallel.stats.Parallel.sat_calls;
      match report.Parallel.verdict with
      | (Cec.Equivalent _ | Cec.Inequivalent _) as verdict -> finish verdict false
      | Cec.Undecided -> (
        (* A degraded round (crashed job, failed stitch) is retried on
           the next escalation round like any undecided one — transient
           faults recover on a clean retry.  Only when the rounds run
           out does the last degradation reason surface to the caller,
           so a persistent fault yields an explicit uncertified answer
           instead of a silent give-up. *)
        match budget with
        | None -> finish ?degraded:report.Parallel.degraded Cec.Undecided false
        | Some b ->
          if n + 1 >= max_rounds then finish ?degraded:report.Parallel.degraded Cec.Undecided false
          else round (n + 1) (Some (b * escalation)))
    end
  in
  round 0 config.budget
