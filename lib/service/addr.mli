(** Service endpoint addresses: a Unix domain socket path or a TCP
    [host:port] endpoint.

    The daemon, client and fleet router all speak the same
    line-delimited protocol over either transport; this module is the
    one place that parses, renders, resolves and connects addresses, so
    "where a peer lives" is a value, not a convention.

    {2 Syntax}

    A string containing a [/] is always a Unix socket path.  Otherwise,
    a string whose last [:] is followed by a decimal port is a TCP
    endpoint ([HOST:PORT], e.g. [127.0.0.1:7311] or [:7311] for all
    interfaces); anything else is a Unix socket path (so bare names
    like [cecd.sock] keep working). *)

type t =
  | Unix_path of string  (** Unix domain socket at this path *)
  | Tcp of string * int  (** TCP [host, port]; port 0 = kernel-assigned *)

(** Parse the syntax above.  [Error] on an empty string or an
    out-of-range TCP port. *)
val parse : string -> (t, string) result

(** Renders back to the parsed syntax ([HOST:PORT] or the bare path). *)
val to_string : t -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** The socket domain to create a socket in for this address. *)
val family : t -> Unix.socket_domain

(** Resolve to a [Unix.sockaddr].  TCP hosts are resolved with
    [getaddrinfo] (numeric addresses never require DNS); an empty host
    means all interfaces for binds and loopback for connects.
    @raise Failure when the host does not resolve. *)
val sockaddr : ?listening:bool -> t -> Unix.sockaddr

(** [connect ?timeout_ms t] opens a stream socket connected to [t].
    Without a timeout this is a plain blocking [Unix.connect].  With
    one, the connect runs non-blocking under a [select] deadline —
    a black-holed peer (e.g. a dropped-packet firewall) fails with
    [Unix.Unix_error (ETIMEDOUT, "connect", _)] after [timeout_ms]
    instead of blocking for the kernel's minutes-long default.  The
    returned descriptor is back in blocking mode, with [TCP_NODELAY]
    set on TCP sockets (the protocol is one-line request/response).
    EINTR during the wait resumes with the remaining time.
    @raise Unix.Unix_error as [Unix.connect] does, plus [ETIMEDOUT]. *)
val connect : ?timeout_ms:float -> t -> Unix.file_descr

(** [bind_listen ?backlog t] binds and listens on [t] and returns the
    listening descriptor together with the actual bound address — for
    [Tcp (_, 0)] the kernel-assigned port is read back with
    [getsockname], so callers learn where they are reachable.  TCP
    sockets get [SO_REUSEADDR].  A Unix socket path that already
    exists is probed with a connect before anything is unlinked: a
    stale file left by a crashed daemon (connect refused) is removed,
    a live listener is a hard error — clobbering it would silently
    orphan a running daemon.
    @raise Unix.Unix_error on bind/listen failure, [Failure] when a
    Unix path hosts a live listener or is not a socket. *)
val bind_listen : ?backlog:int -> t -> Unix.file_descr * t
