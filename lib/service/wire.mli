(** Signal-safe line framing over raw file descriptors.

    The daemon protocol is one JSON line per request/response.  Raw
    [Unix.read]/[Unix.write] can return early on [EINTR] (the daemon
    installs SIGINT/SIGTERM handlers) or write partially; every
    framing loop in server and client goes through these helpers so
    no byte is dropped or duplicated on a signal.

    Reads from sockets are chunked: a [MSG_PEEK] finds the newline and
    exactly the frame is consumed, so large certificate bodies cost a
    handful of syscalls instead of one per byte, and nothing belonging
    to a later read is ever swallowed.  Non-socket descriptors fall
    back to byte-at-a-time reads.

    Both directions take an optional absolute {e deadline} (a
    [Unix.gettimeofday]-clock instant).  The fd is [select]ed before
    each I/O attempt; once the instant passes, reads return
    [Error deadline_error] and writes raise
    [Unix.Unix_error (ETIMEDOUT, "write", _)].  This is what lets the
    router abort a stalled shard instead of wedging a worker slot. *)

(** The [Error] payload {!read_line} returns when its [deadline]
    passes — compare against this to distinguish a stalled peer from a
    malformed frame. *)
val deadline_error : string

(** [read_line ?max_bytes ?deadline fd] reads up to (and consuming)
    the next ['\n'], retrying on [EINTR].  [Ok line] excludes the
    newline; EOF before any byte is [Error "connection closed"]; EOF
    mid-line returns the partial line (the peer closed after its last,
    unterminated line).  Lines over [max_bytes] (default 65536) are
    [Error "request too long"].  When [deadline] (absolute seconds)
    passes before the line completes, [Error deadline_error].
    @raise Unix.Unix_error on I/O errors other than [EINTR]. *)
val read_line :
  ?max_bytes:int -> ?deadline:float -> Unix.file_descr -> (string, string) result

(** Write the whole string, retrying on [EINTR] and short writes.
    @raise Unix.Unix_error on other I/O errors ([EPIPE] included —
    callers decide whether a vanished peer matters), and
    [Unix.Unix_error (ETIMEDOUT, "write", _)] when [deadline] passes
    while the peer's receive window stays full. *)
val write_all : ?deadline:float -> Unix.file_descr -> string -> unit

(** [write_line fd s] is [write_all fd (s ^ "\n")]. *)
val write_line : ?deadline:float -> Unix.file_descr -> string -> unit
