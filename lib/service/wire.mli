(** Signal-safe line framing over raw file descriptors.

    The daemon protocol is one JSON line per request/response.  Raw
    [Unix.read]/[Unix.write] can return early on [EINTR] (the daemon
    installs SIGINT/SIGTERM handlers) or write partially; every
    framing loop in server and client goes through these helpers so
    no byte is dropped or duplicated on a signal. *)

(** [read_line ?max_bytes fd] reads up to (and consuming) the next
    ['\n'], retrying on [EINTR].  [Ok line] excludes the newline; EOF
    before any byte is [Error "connection closed"]; EOF mid-line
    returns the partial line (the peer closed after its last,
    unterminated line).  Lines over [max_bytes] (default 65536) are
    [Error "request too long"].
    @raise Unix.Unix_error on I/O errors other than [EINTR]. *)
val read_line : ?max_bytes:int -> Unix.file_descr -> (string, string) result

(** Write the whole string, retrying on [EINTR] and short writes.
    @raise Unix.Unix_error on other I/O errors ([EPIPE] included —
    callers decide whether a vanished peer matters). *)
val write_all : Unix.file_descr -> string -> unit

(** [write_line fd s] is [write_all fd (s ^ "\n")]. *)
val write_line : Unix.file_descr -> string -> unit
