(** Library interface: the persistent certification service.

    [Service.Store] is the content-addressed certificate store,
    [Service.Server] the Unix-domain-socket daemon ([cec_tool serve]),
    [Service.Batch] the socketless batch mode, [Service.Engine] the
    deadline/escalation solve loop over {!Cec_core.Parallel}. *)

module Addr = Addr
module Key = Key
module Protocol = Protocol
module Wire = Wire
module Metrics = Metrics
module Store = Store
module Engine = Engine
module Server = Server
module Client = Client
module Batch = Batch
