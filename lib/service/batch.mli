(** Offline batch mode: run many pairs through store + engine without
    the socket — same caching, same escalation and deadlines, no
    daemon.  This is how a build system or CI step pre-warms a store
    (or consumes one) from a manifest file. *)

type line_result = {
  golden_path : string;
  revised_path : string;
  status : string;  (** equivalent | inequivalent | undecided | timeout | error *)
  cached : bool;
  ms : float;
  detail : string;  (** error message or counterexample bits; "" otherwise *)
}

type summary = {
  total : int;
  hits : int;
  proved : int;
  counterexamples : int;
  undecided : int;  (** includes timeouts *)
  errors : int;
  ms : float;  (** wall time over the whole batch *)
}

(** Parse a manifest: one "GOLDEN REVISED" pair of netlist paths per
    line, blank lines and [#] comments ignored.  Relative paths are
    resolved against the manifest's own directory. *)
val parse_manifest : string -> ((string * string) list, string) result

(** Run every pair through the store (then the engine on a miss),
    invoking [on_result] per pair in order.  [timeout_ms] is a
    per-pair deadline. *)
val run :
  ?clock:(unit -> float) ->
  store:Store.t ->
  engine:Engine.config ->
  ?timeout_ms:int ->
  ?on_result:(line_result -> unit) ->
  (string * string) list ->
  summary
