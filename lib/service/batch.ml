module Cec = Cec_core.Cec

type line_result = {
  golden_path : string;
  revised_path : string;
  status : string;
  cached : bool;
  ms : float;
  detail : string;
}

type summary = {
  total : int;
  hits : int;
  proved : int;
  counterexamples : int;
  undecided : int;
  errors : int;
  ms : float;
}

let parse_manifest path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    let base = Filename.dirname path in
    let resolve p = if Filename.is_relative p then Filename.concat base p else p in
    let rec collect acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then collect acc (lineno + 1) rest
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ a; b ] -> collect ((resolve a, resolve b) :: acc) (lineno + 1) rest
          | _ ->
            Error
              (Printf.sprintf "%s:%d: expected \"GOLDEN REVISED\", got %S" path lineno line))
    in
    collect [] 1 (String.split_on_char '\n' text)

let run ?(clock = Unix.gettimeofday) ~store ~engine ?timeout_ms ?(on_result = fun _ -> ()) pairs =
  let t0 = clock () in
  let hits = ref 0 and proved = ref 0 and cex = ref 0 and undecided = ref 0 and errors = ref 0 in
  let finish_pair golden_path revised_path started status cached detail =
    (match status with
    | "equivalent" -> incr proved
    | "inequivalent" -> incr cex
    | "undecided" | "timeout" | "uncertified" -> incr undecided
    | _ -> incr errors);
    if cached then incr hits;
    on_result
      {
        golden_path;
        revised_path;
        status;
        cached;
        ms = 1000.0 *. (clock () -. started);
        detail;
      }
  in
  List.iter
    (fun (golden_path, revised_path) ->
      let started = clock () in
      match (Server.load_netlist golden_path, Server.load_netlist revised_path) with
      | Error msg, _ | _, Error msg -> finish_pair golden_path revised_path started "error" false msg
      | Ok a, Ok b ->
        if Aig.num_inputs a <> Aig.num_inputs b || Aig.num_outputs a <> Aig.num_outputs b
        then
          finish_pair golden_path revised_path started "error" false
            "interface mismatch between the two netlists"
        else begin
          let a = Key.normalize a and b = Key.normalize b in
          let key = Key.of_pair a b in
          let deadline =
            Option.map (fun ms -> started +. (float_of_int ms /. 1000.0)) timeout_ms
          in
          let bits cexa =
            String.init (Array.length cexa) (fun i -> if cexa.(i) then '1' else '0')
          in
          match Store.find store key ~golden:a ~revised:b with
          | Some (Cec.Equivalent _) -> finish_pair golden_path revised_path started "equivalent" true ""
          | Some (Cec.Inequivalent cexa) ->
            finish_pair golden_path revised_path started "inequivalent" true (bits cexa)
          | Some Cec.Undecided ->
            (* Not storable, hence not loadable; kept for exhaustiveness. *)
            finish_pair golden_path revised_path started "undecided" true ""
          | None -> (
            match Engine.solve ~clock ?deadline engine a b with
            | exception Invalid_argument msg ->
              finish_pair golden_path revised_path started "error" false msg
            | result ->
              if result.Engine.degraded = None then Store.store store key result.Engine.verdict;
              let status =
                match (result.Engine.verdict, result.Engine.degraded) with
                | Cec.Equivalent _, _ -> "equivalent"
                | Cec.Inequivalent _, _ -> "inequivalent"
                | Cec.Undecided, Some _ -> "uncertified"
                | Cec.Undecided, None ->
                  if result.Engine.timed_out then "timeout" else "undecided"
              in
              let detail =
                match (result.Engine.verdict, result.Engine.degraded) with
                | Cec.Inequivalent c, _ -> bits c
                | Cec.Undecided, Some reason -> reason
                | _ -> ""
              in
              finish_pair golden_path revised_path started status false detail)
        end)
    pairs;
  {
    total = List.length pairs;
    hits = !hits;
    proved = !proved;
    counterexamples = !cex;
    undecided = !undecided;
    errors = !errors;
    ms = 1000.0 *. (clock () -. t0);
  }
