type json =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s

let to_json fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      escape_into buf name;
      Buffer.add_string buf "\":";
      match value with
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float f -> Printf.bprintf buf "%.3f" f
      | String s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"')
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Undo [escape_into] (sufficient for strings we emitted ourselves;
   \uXXXX is decoded only for the control range we produce). *)
let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' when !i + 5 < n ->
         (match int_of_string_opt ("0x" ^ String.sub s (!i + 2) 4) with
         | Some code when code < 256 ->
           Buffer.add_char buf (Char.chr code);
           i := !i + 4
         | Some _ | None -> Buffer.add_string buf "\\u")
       | c -> Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let field name line =
  let pattern = Printf.sprintf "\"%s\":" name in
  let plen = String.length pattern and n = String.length line in
  let rec search i =
    if i + plen > n then None
    else if String.sub line i plen = pattern then Some (i + plen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
    if start < n && line.[start] = '"' then begin
      (* String value: scan to the next unescaped quote. *)
      let rec close i =
        if i >= n then None
        else if line.[i] = '\\' then close (i + 2)
        else if line.[i] = '"' then Some i
        else close (i + 1)
      in
      match close (start + 1) with
      | None -> None
      | Some stop -> Some (unescape (String.sub line (start + 1) (stop - start - 1)))
    end
    else begin
      let stop = ref start in
      while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do incr stop done;
      Some (String.trim (String.sub line start (!stop - start)))
    end

let error_response ?code msg =
  match code with
  | None -> to_json [ ("error", String msg) ]
  | Some c -> to_json [ ("error", String msg); ("code", String c) ]

type request =
  | Check of {
      golden : string;
      revised : string;
      timeout_ms : int option;
    }
  | Stats
  | Metrics
  | Ping
  | Shutdown
  | Join of {
      id : string;
      addr : string;
    }
  | Leave of { id : string }
  | Drain of { id : string }

let parse_request line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "stats" ] -> Ok Stats
  | [ "metrics" ] -> Ok Metrics
  | [ "ping" ] -> Ok Ping
  | [ "shutdown" ] -> Ok Shutdown
  | [ "join"; id; addr ] -> Ok (Join { id; addr })
  | "join" :: _ -> Error "join: expected shard id and address (join ID ADDR)"
  | [ "leave"; id ] -> Ok (Leave { id })
  | "leave" :: _ -> Error "leave: expected one shard id (leave ID)"
  | [ "drain"; id ] -> Ok (Drain { id })
  | "drain" :: _ -> Error "drain: expected one shard id (drain ID)"
  | "check" :: golden :: revised :: rest -> (
    match rest with
    | [] -> Ok (Check { golden; revised; timeout_ms = None })
    | [ ms ] -> (
      match int_of_string_opt ms with
      | Some ms when ms >= 0 -> Ok (Check { golden; revised; timeout_ms = Some ms })
      | Some _ | None -> Error (Printf.sprintf "check: bad timeout %S" ms))
    | _ -> Error "check: too many arguments (check GOLDEN REVISED [TIMEOUT_MS])")
  | "check" :: _ -> Error "check: expected two netlist paths"
  | cmd :: _ ->
    Error
      (Printf.sprintf "unknown request %S (check|stats|metrics|ping|shutdown|join|leave|drain)"
         cmd)
  | [] -> Error "empty request"

let print_request = function
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Ping -> "ping"
  | Shutdown -> "shutdown"
  | Join { id; addr } -> Printf.sprintf "join %s %s" id addr
  | Leave { id } -> Printf.sprintf "leave %s" id
  | Drain { id } -> Printf.sprintf "drain %s" id
  | Check { golden; revised; timeout_ms } -> (
    match timeout_ms with
    | None -> Printf.sprintf "check %s %s" golden revised
    | Some ms -> Printf.sprintf "check %s %s %d" golden revised ms)
