(** A CDCL SAT solver with resolution-proof logging.

    The solver is MiniSat-shaped — two-watched-literal propagation,
    VSIDS decision order with phase saving, first-UIP clause learning
    with self-subsumption minimization, Luby restarts — and, on top,
    logs every learned clause as a trivial-resolution chain in a
    {!Proof.Resolution} store, so an unsatisfiable run ends with a
    checkable derivation of the empty clause whose leaves are the added
    clauses.

    Clauses marked [~assumption:true] become assumption leaves in the
    proof; {!Proof.Lift} can then rewrite the refutation into a
    derivation of the negated assumptions from the other clauses alone.
    Learned clauses may be deleted from the {e solver} under memory
    pressure, but never from the {e proof store}, so every logged chain
    stays permanently valid. *)

type t

type result =
  | Sat of bool array  (** model indexed by variable *)
  | Unsat of Proof.Resolution.id  (** root of the refutation in [proof t] *)
  | Unsat_assuming of {
      clause : Cnf.Clause.t;  (** a derived clause over negated assumptions *)
      pid : Proof.Resolution.id;  (** its derivation in [proof t] *)
    }  (** only when [solve] was given assumptions *)
  | Unknown  (** conflict budget exhausted *)

(** [create ()] has no variables and an empty internal proof store;
    pass [~proof] to log into an existing store.  [reduce_base]
    (default 4000) is the live-learned-clause count that triggers the
    first activity-based clause-database reduction; deletions never
    touch the proof store, so logged chains stay valid. *)
val create : ?proof:Proof.Resolution.t -> ?reduce_base:int -> unit -> t

val proof : t -> Proof.Resolution.t

(** Number of nodes currently in the proof store — a cheap monotone
    marker.  Sampling it right after a refuted query yields the section
    boundaries {!Proof.Binfmt.encode_hinted} shards a hinted
    certificate on. *)
val proof_size : t -> int

(** Proof ids of learned chains the solver has retired from its clause
    database, in retirement order.  A retired chain is never an
    antecedent of any chain learned later, so these are deletion hints
    for a streaming certificate encoder ({!Proof.Binfmt} computes exact
    last-use positions offline and does not need them, but an online
    emitter has nothing else to go on).  Counted by the ambient-registry
    counter [sat.retired_chains]. *)
val trim_hints : t -> Proof.Resolution.id array

(** Allocate one fresh variable; returns its index. *)
val new_var : t -> int

(** Make variables [0 .. n-1] exist. *)
val ensure_vars : t -> int -> unit

val num_vars : t -> int

(** Add a clause; creates its proof leaf.  Adding the empty clause (or
    clashing units) makes the solver permanently unsatisfiable.
    Clauses may be added between [solve] calls (incremental use). *)
val add_clause : ?assumption:bool -> t -> Cnf.Clause.t -> unit

(** [add_derived_clause t c pid] adds a clause whose derivation already
    exists in [proof t] at [pid] — a proved lemma.  No leaf is created,
    so proofs using the clause stitch through its derivation. *)
val add_derived_clause : t -> Cnf.Clause.t -> Proof.Resolution.id -> unit

(** Add every clause of a formula (none marked as assumptions), and
    make all its variables exist. *)
val add_formula : t -> Cnf.Formula.t -> unit

(** Solve the current clause set, optionally under assumption
    literals.  When the assumptions are inconsistent with the clauses,
    the result is [Unsat_assuming] carrying a {e proved} clause over
    the negated assumptions (the equivalence-lemma mechanism of the
    sweeping engine).  A self-contradictory assumption list (both
    polarities of one variable) also answers [Unsat_assuming], with the
    trivial final clause [~l] for the later of the clashing pair; since
    no such clause is derivable from the clauses alone, its [pid] is an
    assumption leaf and must not be reused as a derived lemma.
    [max_conflicts] bounds the search ([Unknown] when exceeded);
    default is unbounded.

    Each call adds the number of live learned clauses carried over from
    previous calls to the ambient counter [sat.clauses_carried]. *)
val solve : ?max_conflicts:int -> ?assumptions:Aig.Lit.t list -> t -> result

(** {1 Root-level facts}

    Facts fixed at decision level 0 accumulate across incremental
    [solve] calls; an incremental client can often settle a query from
    them without searching. *)

(** Run unit propagation to fixpoint at the root level, making facts
    implied by recently added clauses visible to {!root_lit_value} and
    {!derive_fixed} without a full [solve].  A root-level conflict
    makes the solver permanently unsatisfiable (subsequent [solve]
    calls answer [Unsat]). *)
val propagate_root : t -> unit

(** Truth value of [l] under the root-level assignment only: [1] true,
    [0] false, [-1] not fixed at the root. *)
val root_lit_value : t -> Aig.Lit.t -> int

(** When [l] is true at the root level, return the unit clause [(l)]
    together with a derivation of it in [proof t], built by resolving
    the reason chain of [l]'s assignment (memoized per variable).
    [None] when [l] is not a root-level fact. *)
val derive_fixed : t -> Aig.Lit.t -> (Cnf.Clause.t * Proof.Resolution.id) option

(** {1 Statistics} *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_learned : t -> int
val num_restarts : t -> int
