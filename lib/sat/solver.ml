module Veci = Support.Veci
module Clause = Cnf.Clause
module Lit = Aig.Lit
module R = Proof.Resolution

type clause_rec = {
  lits : int array;
  pid : R.id;
  learned : bool;
  mutable act : float;
  mutable deleted : bool;
}

type result =
  | Sat of bool array
  | Unsat of R.id
  | Unsat_assuming of { clause : Clause.t; pid : R.id }
  | Unknown

type t = {
  proof : R.t;
  mutable arena : clause_rec array;
  mutable num_clauses : int;
  mutable nvars : int;
  (* Per-variable state (capacity-doubled on new_var). *)
  mutable assign : int array; (* -1 unassigned, else 0/1 *)
  mutable level : int array;
  mutable reason : int array; (* arena index or -1 *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array; (* analyze scratch *)
  mutable watches : Veci.t array; (* per literal *)
  trail : Veci.t;
  trail_lim : Veci.t;
  mutable qhead : int;
  mutable order : Heap.t option; (* built lazily so [activity] can be swapped *)
  mutable var_inc : float;
  mutable unsat_root : R.id option;
  learned_indices : Veci.t;
  retired : Veci.t; (* pids of learned clauses dropped by reduce_db *)
  mutable live_learned : int;
  mutable reduce_base : int;
  mutable cla_inc : float;
  mutable reductions : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
  (* Ambient-registry handles, resolved once at [create] so the hot
     loops pay a single field increment. *)
  o_conflicts : Obs.Counter.t;
  o_decisions : Obs.Counter.t;
  o_propagations : Obs.Counter.t;
  o_restarts : Obs.Counter.t;
  o_learned_size : Obs.Histogram.t;
  o_retired : Obs.Counter.t;
  o_carried : Obs.Counter.t;
  unit_pids : (int, R.id) Hashtbl.t;
      (* var -> derivation of its root-level unit; see [unit_pid] *)
}

let dummy_clause = { lits = [||]; pid = -1; learned = false; act = 0.0; deleted = false }

let create ?proof ?(reduce_base = 4000) () =
  let proof = match proof with Some p -> p | None -> R.create () in
  let reg = Obs.ambient () in
  {
    proof;
    arena = Array.make 64 dummy_clause;
    num_clauses = 0;
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    seen = Array.make 16 false;
    watches = Array.init 32 (fun _ -> Veci.create ~capacity:4 ());
    trail = Veci.create ();
    trail_lim = Veci.create ();
    qhead = 0;
    order = None;
    var_inc = 1.0;
    unsat_root = None;
    learned_indices = Veci.create ();
    retired = Veci.create ();
    live_learned = 0;
    reduce_base;
    cla_inc = 1.0;
    reductions = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learned = 0;
    restarts = 0;
    o_conflicts = Obs.Registry.counter reg "sat.conflicts";
    o_decisions = Obs.Registry.counter reg "sat.decisions";
    o_propagations = Obs.Registry.counter reg "sat.propagations";
    o_restarts = Obs.Registry.counter reg "sat.restarts";
    o_learned_size = Obs.Registry.histogram reg "sat.learned_clause_size";
    o_retired = Obs.Registry.counter reg "sat.retired_chains";
    o_carried = Obs.Registry.counter reg "sat.clauses_carried";
    unit_pids = Hashtbl.create 64;
  }

let proof s = s.proof
let proof_size s = R.size s.proof
let trim_hints s = Veci.to_array s.retired
let num_vars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_learned s = s.learned
let num_restarts s = s.restarts

let order s =
  match s.order with
  | Some h -> h
  | None ->
    let h = Heap.create (fun v -> s.activity.(v)) in
    for v = 0 to s.nvars - 1 do
      Heap.insert h v
    done;
    s.order <- Some h;
    h

let grow_arrays s n =
  let cap = Array.length s.assign in
  if n > cap then begin
    let cap' = ref cap in
    while !cap' < n do
      cap' := !cap' * 2
    done;
    let extend a fill =
      let b = Array.make !cap' fill in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assign <- extend s.assign (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason (-1);
    s.activity <- extend s.activity 0.0;
    s.phase <- extend s.phase false;
    s.seen <- extend s.seen false;
    let wcap = Array.length s.watches in
    if 2 * !cap' > wcap then begin
      let w = Array.init (2 * !cap') (fun i -> if i < wcap then s.watches.(i) else Veci.create ~capacity:4 ()) in
      s.watches <- w
    end
  end

let new_var s =
  grow_arrays s (s.nvars + 1);
  let v = s.nvars in
  s.nvars <- s.nvars + 1;
  (match s.order with Some h -> Heap.insert h v | None -> ());
  v

let ensure_vars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

(* Literal valuation: 1 true, 0 false, -1 unassigned. *)
let lit_value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Veci.size s.trail_lim

let enqueue s l reason_idx =
  assert (lit_value s l <> 0);
  if lit_value s l < 0 then begin
    let v = Lit.var l in
    s.assign.(v) <- 1 lxor (l land 1);
    s.level.(v) <- decision_level s;
    s.reason.(v) <- reason_idx;
    s.phase.(v) <- s.assign.(v) = 1;
    Veci.push s.trail l
  end

let clause_ref s i = s.arena.(i)

let push_arena s cr =
  if s.num_clauses = Array.length s.arena then begin
    let a = Array.make (2 * s.num_clauses) dummy_clause in
    Array.blit s.arena 0 a 0 s.num_clauses;
    s.arena <- a
  end;
  s.arena.(s.num_clauses) <- cr;
  s.num_clauses <- s.num_clauses + 1;
  s.num_clauses - 1

let watch s l ci = Veci.push s.watches.(l) ci

(* Derive the empty clause from a clause falsified at level 0 by
   resolving every literal against the reason chain of its variable, in
   reverse trail order.  Returns the proof id of the empty clause. *)
let derive_empty_at_level0 s start_clause start_pid =
  assert (decision_level s = 0);
  let chain_ants = ref [ start_pid ] and chain_pivots = ref [] in
  let pending = Array.make s.nvars false in
  Array.iter
    (fun l ->
      assert (lit_value s l = 0);
      pending.(Lit.var l) <- true)
    (start_clause : Clause.t :> int array);
  for idx = Veci.size s.trail - 1 downto 0 do
    let t = Veci.get s.trail idx in
    let v = Lit.var t in
    if pending.(v) then begin
      pending.(v) <- false;
      let ri = s.reason.(v) in
      assert (ri >= 0);
      let cr = clause_ref s ri in
      chain_ants := cr.pid :: !chain_ants;
      chain_pivots := v :: !chain_pivots;
      Array.iter (fun l -> if Lit.var l <> v then pending.(Lit.var l) <- true) cr.lits
    end
  done;
  let antecedents = Array.of_list (List.rev !chain_ants) in
  let pivots = Array.of_list (List.rev !chain_pivots) in
  if Array.length antecedents = 1 then start_pid
  else R.add_chain s.proof ~clause:Clause.empty ~antecedents ~pivots

let cancel_until s blevel =
  if decision_level s > blevel then begin
    let bound = Veci.get s.trail_lim blevel in
    for idx = Veci.size s.trail - 1 downto bound do
      let v = Lit.var (Veci.get s.trail idx) in
      s.assign.(v) <- -1;
      s.reason.(v) <- -1;
      let h = order s in
      if not (Heap.mem h v) then Heap.insert h v
    done;
    Veci.shrink s.trail bound;
    Veci.shrink s.trail_lim blevel;
    s.qhead <- bound
  end

let set_unsat s root = if s.unsat_root = None then s.unsat_root <- Some root

let add_clause_with_pid s c pid =
  ensure_vars s (Clause.max_var c + 1);
  (* Clauses may arrive between incremental queries: return to the
     root level so watch initialization sees only level-0 truths. *)
  cancel_until s 0;
  let lits = Clause.lits c in
  if Array.length lits = 0 then set_unsat s pid
  else begin
    (* Order literals so the first two are non-false when possible
       (clauses are only added at level 0). *)
    let arr = Array.copy lits in
    let n = Array.length arr in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if lit_value s arr.(i) <> 0 then begin
        let tmp = arr.(!k) in
        arr.(!k) <- arr.(i);
        arr.(i) <- tmp;
        incr k
      end
    done;
    let ci = push_arena s { lits = arr; pid; learned = false; act = 0.0; deleted = false } in
    if !k = 0 then
      (* Every literal is already false at level 0. *)
      set_unsat s (derive_empty_at_level0 s c pid)
    else if n = 1 || !k = 1 then begin
      if lit_value s arr.(0) < 0 then enqueue s arr.(0) ci;
      if n >= 2 then begin
        watch s arr.(0) ci;
        watch s arr.(1) ci
      end
    end
    else begin
      watch s arr.(0) ci;
      watch s arr.(1) ci
    end
  end

let add_clause ?(assumption = false) s c =
  add_clause_with_pid s c (R.add_leaf ~assumption s.proof c)

(* Register a clause already derived in the proof store (a lemma): no
   new leaf is created, so checkers see the derivation instead. *)
let add_derived_clause s c pid = add_clause_with_pid s c pid

let add_formula s f =
  ensure_vars s (Cnf.Formula.num_vars f);
  Cnf.Formula.iter (fun c -> add_clause s c) f

exception Conflict of int

(* Two-watched-literal propagation.  Returns the arena index of a
   conflicting clause, or -1. *)
let propagate s =
  try
    while s.qhead < Veci.size s.trail do
      let p = Veci.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      Obs.Counter.incr s.o_propagations;
      let false_lit = Lit.neg p in
      let wl = s.watches.(false_lit) in
      let n = Veci.size wl in
      let keep = ref 0 in
      let i = ref 0 in
      (try
         while !i < n do
           let ci = Veci.get wl !i in
           incr i;
           let cr = clause_ref s ci in
           if cr.deleted then () else begin
           let lits = cr.lits in
           (* Normalize: watched false literal in position 1. *)
           if lits.(0) = false_lit then begin
             lits.(0) <- lits.(1);
             lits.(1) <- false_lit
           end;
           if lit_value s lits.(0) = 1 then begin
             Veci.set wl !keep ci;
             incr keep
           end
           else begin
             (* Look for a replacement watch. *)
             let len = Array.length lits in
             let rec find k = if k >= len then -1 else if lit_value s lits.(k) <> 0 then k else find (k + 1) in
             let k = find 2 in
             if k >= 0 then begin
               lits.(1) <- lits.(k);
               lits.(k) <- false_lit;
               watch s lits.(1) ci
             end
             else begin
               (* Unit or conflict. *)
               Veci.set wl !keep ci;
               incr keep;
               if lit_value s lits.(0) = 0 then begin
                 (* Conflict: retain the remaining watchers. *)
                 while !i < n do
                   Veci.set wl !keep (Veci.get wl !i);
                   incr keep;
                   incr i
                 done;
                 Veci.shrink wl !keep;
                 raise (Conflict ci)
               end
               else enqueue s lits.(0) ci
             end
           end
           end
         done;
         Veci.shrink wl !keep
       with Conflict _ as e -> raise e)
    done;
    -1
  with Conflict ci -> ci

let bump_clause s ci =
  let cr = s.arena.(ci) in
  if cr.learned then begin
    cr.act <- cr.act +. s.cla_inc;
    if cr.act > 1e20 then begin
      Veci.iter (fun i -> s.arena.(i).act <- s.arena.(i).act *. 1e-20) s.learned_indices;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  match s.order with Some h -> Heap.update h v | None -> ()

let decay s =
  s.var_inc <- s.var_inc /. 0.95;
  s.cla_inc <- s.cla_inc /. 0.999

(* First-UIP conflict analysis with proof logging.  Returns
   (learned clause literals with the asserting literal first,
    backtrack level, proof id of the learned clause). *)
let analyze s confl_idx =
  let dl = decision_level s in
  assert (dl > 0);
  let learnt = Veci.create () in
  let to_clear = Veci.create () in
  let zero_pending = Veci.create () in
  let chain_ants = ref [ (clause_ref s confl_idx).pid ] in
  let chain_pivots = ref [] in
  let counter = ref 0 in
  let mark q =
    let v = Lit.var q in
    if not s.seen.(v) then begin
      s.seen.(v) <- true;
      Veci.push to_clear v;
      if s.level.(v) = 0 then Veci.push zero_pending v
      else begin
        bump_var s v;
        if s.level.(v) = dl then incr counter else Veci.push learnt q
      end
    end
  in
  bump_clause s confl_idx;
  let confl = ref confl_idx in
  let skip = ref (-1) in
  let idx = ref (Veci.size s.trail - 1) in
  let uip = ref (-1) in
  let continue = ref true in
  while !continue do
    Array.iter (fun q -> if q <> !skip then mark q) (clause_ref s !confl).lits;
    while not s.seen.(Lit.var (Veci.get s.trail !idx)) do
      decr idx
    done;
    let p = Veci.get s.trail !idx in
    decr idx;
    let v = Lit.var p in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      uip := p;
      continue := false
    end
    else begin
      let ri = s.reason.(v) in
      assert (ri >= 0);
      bump_clause s ri;
      confl := ri;
      chain_ants := (clause_ref s ri).pid :: !chain_ants;
      chain_pivots := v :: !chain_pivots;
      skip := p
    end
  done;
  let uip_lit = Lit.neg !uip in
  (* Self-subsumption minimization: a kept literal q is redundant when
     every literal of its reason (other than ~q) is already marked —
     i.e. in the clause or eliminated at level 0. *)
  let removable q =
    let v = Lit.var q in
    let ri = s.reason.(v) in
    ri >= 0
    && Array.for_all
         (fun r -> Lit.var r = v || s.seen.(Lit.var r))
         (clause_ref s ri).lits
  in
  let kept = Veci.create () and removed = Veci.create () in
  Veci.iter (fun q -> if removable q then Veci.push removed q else Veci.push kept q) learnt;
  (* Unmark removed vars so later redundancy checks cannot rely on
     them... except removal is single-pass over the original marks, so
     order-independence requires leaving marks; instead re-validate:
     a removed literal whose reason mentions another removed literal is
     fine (it is eliminated later in the chain), so marks stay. *)
  (* Resolve removed literals away, deepest trail position first. *)
  let removed = Veci.to_array removed in
  let trail_pos = Hashtbl.create 16 in
  Veci.iteri (fun i l -> Hashtbl.replace trail_pos (Lit.var l) i) s.trail;
  Array.sort
    (fun a b -> compare (Hashtbl.find trail_pos (Lit.var b)) (Hashtbl.find trail_pos (Lit.var a)))
    removed;
  Array.iter
    (fun q ->
      let v = Lit.var q in
      let cr = clause_ref s s.reason.(v) in
      chain_ants := cr.pid :: !chain_ants;
      chain_pivots := v :: !chain_pivots;
      Array.iter
        (fun r ->
          let u = Lit.var r in
          if u <> v && not s.seen.(u) then begin
            (* Only level-0 literals can be unmarked here. *)
            assert (s.level.(u) = 0);
            s.seen.(u) <- true;
            Veci.push to_clear u;
            Veci.push zero_pending u
          end)
        cr.lits)
    removed;
  (* Eliminate level-0 literals by resolving with their reasons in
     reverse trail order. *)
  let zero_set = Array.make s.nvars false in
  Veci.iter (fun v -> zero_set.(v) <- true) zero_pending;
  let zero_bound = if Veci.size s.trail_lim > 0 then Veci.get s.trail_lim 0 else Veci.size s.trail in
  for tidx = zero_bound - 1 downto 0 do
    let tl = Veci.get s.trail tidx in
    let v = Lit.var tl in
    if zero_set.(v) then begin
      zero_set.(v) <- false;
      let cr = clause_ref s s.reason.(v) in
      chain_ants := cr.pid :: !chain_ants;
      chain_pivots := v :: !chain_pivots;
      Array.iter (fun r -> if Lit.var r <> v then zero_set.(Lit.var r) <- true) cr.lits
    end
  done;
  Veci.iter (fun v -> s.seen.(v) <- false) to_clear;
  let final_lits = uip_lit :: Veci.to_list kept in
  let clause = Clause.of_list final_lits in
  let antecedents = Array.of_list (List.rev !chain_ants) in
  let pivots = Array.of_list (List.rev !chain_pivots) in
  let pid =
    if Array.length antecedents = 1 then (clause_ref s confl_idx).pid
    else R.add_chain s.proof ~clause ~antecedents ~pivots
  in
  (* Backtrack to the second-highest level in the clause. *)
  let blevel = Veci.fold (fun acc q -> max acc s.level.(Lit.var q)) 0 kept in
  (uip_lit, Veci.to_array kept, blevel, pid, clause)

let record_learned s uip_lit kept blevel pid =
  s.learned <- s.learned + 1;
  let n = 1 + Array.length kept in
  Obs.Histogram.observe s.o_learned_size (float_of_int n);
  if n = 1 then begin
    (* Unit learned clause: assert at level 0. *)
    cancel_until s 0;
    let ci =
      push_arena s { lits = [| uip_lit |]; pid; learned = true; act = s.cla_inc; deleted = false }
    in
    enqueue s uip_lit ci
  end
  else begin
    (* Watch the asserting literal and one literal from blevel. *)
    let lits = Array.make n uip_lit in
    Array.blit kept 0 lits 1 (Array.length kept);
    let best = ref 1 in
    for i = 2 to n - 1 do
      if s.level.(Lit.var lits.(i)) > s.level.(Lit.var lits.(!best)) then best := i
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    cancel_until s blevel;
    let ci = push_arena s { lits; pid; learned = true; act = s.cla_inc; deleted = false } in
    Veci.push s.learned_indices ci;
    s.live_learned <- s.live_learned + 1;
    watch s lits.(0) ci;
    watch s lits.(1) ci;
    enqueue s uip_lit ci
  end

(* Delete the lower-activity half of the learned clauses (proofs are
   untouched: the resolution store keeps every chain).  Binary and
   locked (currently-a-reason) clauses are kept; deleted clauses are
   dropped lazily from watch lists during propagation. *)
let locked s ci =
  let cr = s.arena.(ci) in
  Array.length cr.lits > 0 && s.reason.(Lit.var cr.lits.(0)) = ci

let reduce_db s =
  s.reductions <- s.reductions + 1;
  let live =
    Veci.fold (fun acc ci -> if s.arena.(ci).deleted then acc else ci :: acc) [] s.learned_indices
  in
  let sorted = List.sort (fun a b -> compare s.arena.(a).act s.arena.(b).act) live in
  let to_remove = List.length sorted / 2 in
  let removed = ref 0 in
  List.iter
    (fun ci ->
      let cr = s.arena.(ci) in
      if !removed < to_remove && Array.length cr.lits > 2 && not (locked s ci) then begin
        cr.deleted <- true;
        (* The proof node stays (later chains may still cite it), but a
           clause the solver dropped is never an antecedent of a chain
           learned after this point — exactly the deletion hint a
           streaming certificate encoder wants. *)
        Veci.push s.retired cr.pid;
        Obs.Counter.incr s.o_retired;
        incr removed;
        s.live_learned <- s.live_learned - 1
      end)
    sorted

let all_assigned s = Veci.size s.trail = s.nvars

let pick_branch s =
  let h = order s in
  let rec loop () =
    if Heap.is_empty h then -1
    else
      let v = Heap.pop h in
      if s.assign.(v) < 0 then v else loop ()
  in
  loop ()

(* The assumption literal [l] is false under the current trail; derive
   a clause over negated assumptions explaining why, by resolving the
   reason of [~l] against the reason chain of every non-decision
   literal (reverse trail order).  Decisions met on the way are
   assumptions, and their negations stay in the clause. *)
let analyze_final s l =
  let v0 = Lit.var l in
  let r0 = s.reason.(v0) in
  if r0 < 0 then
    (* [~l] was itself enqueued as an assumption: the assumption list
       contains a complementary pair.  No clause over the negated
       assumptions is derivable from the clauses alone (it would be the
       tautology [l | ~l], which resolution cannot produce and
       {!Clause.of_list} rejects), so answer with the trivial unit
       [~l] recorded as an assumption leaf: given the earlier
       assumption [~l], the later assumption [l] fails.  The sweeping
       engines never issue same-variable assumption pairs, so the leaf
       never reaches a certificate. *)
    let clause = Clause.singleton (Lit.neg l) in
    (clause, R.add_leaf ~assumption:true s.proof clause)
  else begin
  let cr0 = clause_ref s r0 in
  let chain_ants = ref [ cr0.pid ] and chain_pivots = ref [] in
  let pending = Array.make s.nvars false in
  let kept = ref [ Lit.neg l ] in
  Array.iter (fun q -> if Lit.var q <> v0 then pending.(Lit.var q) <- true) cr0.lits;
  for idx = Veci.size s.trail - 1 downto 0 do
    let t = Veci.get s.trail idx in
    let v = Lit.var t in
    if pending.(v) then begin
      pending.(v) <- false;
      let ri = s.reason.(v) in
      if ri < 0 then kept := Lit.neg t :: !kept
      else begin
        let cr = clause_ref s ri in
        chain_ants := cr.pid :: !chain_ants;
        chain_pivots := v :: !chain_pivots;
        Array.iter (fun q -> if Lit.var q <> v then pending.(Lit.var q) <- true) cr.lits
      end
    end
  done;
  let clause = Clause.of_list !kept in
  let antecedents = Array.of_list (List.rev !chain_ants) in
  let pivots = Array.of_list (List.rev !chain_pivots) in
  let pid =
    if Array.length antecedents = 1 then cr0.pid
    else R.add_chain s.proof ~clause ~antecedents ~pivots
  in
  (clause, pid)
  end

(* Truth value of [l] under the root-level (level-0) assignment only:
   1 true, 0 false, -1 not fixed at the root.  Root facts accumulate
   across incremental [solve] calls and are never undone. *)
let root_lit_value s l =
  let v = Lit.var l in
  if v >= s.nvars then -1
  else begin
    let a = s.assign.(v) in
    if a < 0 || s.level.(v) <> 0 then -1 else a lxor (l land 1)
  end

(* Derivation of the unit clause for the root-level assignment of [v],
   built by resolving [v]'s reason clause against the unit derivations
   of its other literals (all assigned earlier at level 0, so the
   recursion follows the trail backwards and terminates).  Every
   resolution step removes exactly one literal from the reason clause,
   so no intermediate resolvent can be tautological.  Memoized per
   variable: root facts are permanent and reason clauses of root
   assignments are locked, so the chains stay valid for the lifetime of
   the solver. *)
let rec unit_pid s v =
  match Hashtbl.find_opt s.unit_pids v with
  | Some pid -> pid
  | None ->
    let cr = clause_ref s s.reason.(v) in
    let t = Lit.make v ~neg:(s.assign.(v) = 0) in
    let pid =
      if Array.length cr.lits = 1 then cr.pid
      else begin
        let ants = ref [] and pivots = ref [] in
        Array.iter
          (fun q ->
            let w = Lit.var q in
            if w <> v then begin
              ants := unit_pid s w :: !ants;
              pivots := w :: !pivots
            end)
          cr.lits;
        R.add_chain s.proof
          ~clause:(Clause.singleton t)
          ~antecedents:(Array.of_list (cr.pid :: List.rev !ants))
          ~pivots:(Array.of_list (List.rev !pivots))
      end
    in
    Hashtbl.replace s.unit_pids v pid;
    pid

let derive_fixed s l =
  if root_lit_value s l <> 1 then None
  else begin
    let v = Lit.var l in
    (* Root-level assignments always carry a clause reason (units are
       enqueued with their arena index, propagations record theirs);
       the guard is purely defensive. *)
    if s.reason.(v) < 0 then None else Some (Clause.singleton l, unit_pid s v)
  end

let model s =
  Array.init s.nvars (fun v -> s.assign.(v) = 1)

(* Run unit propagation to fixpoint at the root level, so facts implied
   by recently added clauses become visible to [root_lit_value] and
   [derive_fixed] without a full [solve].  A root-level conflict makes
   the solver permanently unsatisfiable, exactly as in [solve]. *)
let propagate_root s =
  if s.unsat_root = None then begin
    cancel_until s 0;
    let confl = propagate s in
    if confl >= 0 then begin
      let cr = clause_ref s confl in
      let root = derive_empty_at_level0 s (Clause.of_array cr.lits) cr.pid in
      set_unsat s root
    end
  end

let solve ?max_conflicts ?(assumptions = []) s =
  match s.unsat_root with
  | Some root -> Unsat root
  | None ->
    cancel_until s 0;
    (* Learned clauses still live from previous [solve] calls — the
       carried-knowledge payoff of incremental use (0 on every call for
       a throwaway per-query solver). *)
    Obs.Counter.add s.o_carried s.live_learned;
    let assumptions = Array.of_list assumptions in
    Array.iter (fun l -> ensure_vars s (Lit.var l + 1)) assumptions;
    let budget = match max_conflicts with Some b -> b | None -> max_int in
    let start_conflicts = s.conflicts in
    let restart_idx = ref 0 in
    let restart_budget = ref (100 * Luby.term 0) in
    let rec loop () =
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        Obs.Counter.incr s.o_conflicts;
        if decision_level s = 0 then begin
          let cr = clause_ref s confl in
          let root = derive_empty_at_level0 s (Clause.of_array cr.lits) cr.pid in
          set_unsat s root;
          Unsat root
        end
        else if s.conflicts - start_conflicts > budget then Unknown
        else begin
          let uip_lit, kept, blevel, pid, _clause = analyze s confl in
          record_learned s uip_lit kept blevel pid;
          decay s;
          decr restart_budget;
          if s.live_learned > s.reduce_base + (1000 * s.reductions) then reduce_db s;
          loop ()
        end
      end
      else if !restart_budget <= 0 && decision_level s > 0 then begin
        s.restarts <- s.restarts + 1;
        Obs.Counter.incr s.o_restarts;
        incr restart_idx;
        restart_budget := 100 * Luby.term !restart_idx;
        cancel_until s 0;
        loop ()
      end
      else if decision_level s < Array.length assumptions then begin
        (* Re-establish assumptions as pseudo-decisions, one level
           each; levels of already-true assumptions stay empty. *)
        let a = assumptions.(decision_level s) in
        match lit_value s a with
        | 0 ->
          let clause, pid = analyze_final s a in
          Unsat_assuming { clause; pid }
        | value ->
          Veci.push s.trail_lim (Veci.size s.trail);
          if value < 0 then enqueue s a (-1);
          loop ()
      end
      else if all_assigned s then Sat (model s)
      else begin
        let v = pick_branch s in
        if v < 0 then Sat (model s)
        else begin
          s.decisions <- s.decisions + 1;
          Obs.Counter.incr s.o_decisions;
          Veci.push s.trail_lim (Veci.size s.trail);
          enqueue s (Lit.make v ~neg:(not s.phase.(v))) (-1);
          loop ()
        end
      end
    in
    loop ()
