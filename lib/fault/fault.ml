exception Injected of string

type spec = { points : (string * float) list; seed : int }

(* Installed state.  [enabled] is the fast path: [fire] reads it once
   and returns when no spec is installed, so disabled builds pay a
   single atomic load per injection point.  The spec and its RNG live
   behind [lock] because worker domains draw concurrently and the
   splitmix64 state is mutable. *)
let enabled = Atomic.make false
let lock = Mutex.create ()
let installed : (spec * Support.Rng.t) option ref = ref None

let known_points =
  [
    ("store.write", "I/O error while writing a certificate object (orphan tmp file)");
    ("store.torn_write", "crash after publishing a truncated certificate object");
    ("store.corrupt", "bit-flip in certificate bytes read back from the store");
    ("worker.crash", "uncaught exception in a worker domain mid-job");
    ("engine.budget", "solver budget blowout: round aborted before completion");
    ("proof.lift", "failure while lifting/stitching partition refutations");
    ("peer.slow", "peer stalls: artificial delay handling a connection");
    ("peer.drop", "peer closes the connection mid-response (truncated reply)");
    ("peer.reset", "peer resets the connection (ECONNRESET) instead of replying");
    ("peer.partition", "peer black-holed: connections accepted but never answered for a window");
  ]

let valid_point name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' || c = '_' || c = '-')
       name

let parse s =
  let s = String.trim s in
  let body, seed =
    match String.index_opt s '@' with
    | None -> (s, Ok 0)
    | Some i ->
        let tail = String.sub s (i + 1) (String.length s - i - 1) in
        let seed =
          match String.split_on_char '=' tail with
          | [ "seed"; v ] -> (
              match int_of_string_opt (String.trim v) with
              | Some n -> Ok n
              | None -> Error (Printf.sprintf "fault spec: bad seed %S" v))
          | _ -> Error (Printf.sprintf "fault spec: expected @seed=N, got %S" tail)
        in
        (String.sub s 0 i, seed)
  in
  match seed with
  | Error _ as e -> e
  | Ok seed ->
      let rec points acc = function
        | [] -> Ok (List.rev acc)
        | part :: rest -> (
            match String.index_opt part ':' with
            | None -> Error (Printf.sprintf "fault spec: expected point:rate, got %S" part)
            | Some i -> (
                let name = String.trim (String.sub part 0 i) in
                let rate_s = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
                if not (valid_point name) then
                  Error (Printf.sprintf "fault spec: bad point name %S" name)
                else
                  match float_of_string_opt rate_s with
                  | None -> Error (Printf.sprintf "fault spec: bad rate %S for %s" rate_s name)
                  | Some r when r < 0.0 || r > 1.0 || Float.is_nan r ->
                      Error (Printf.sprintf "fault spec: rate %g for %s outside [0,1]" r name)
                  | Some r -> points ((name, r) :: acc) rest))
      in
      let parts = String.split_on_char ',' body |> List.map String.trim in
      if parts = [ "" ] then Error "fault spec: empty"
      else (
        match points [] parts with
        | Error _ as e -> e
        | Ok pts -> Ok { points = pts; seed })

let always ?(seed = 0) point = { points = [ (point, 1.0) ]; seed }

let to_string { points; seed } =
  let pts = List.map (fun (p, r) -> Printf.sprintf "%s:%g" p r) points in
  Printf.sprintf "%s@seed=%d" (String.concat "," pts) seed

let install spec =
  Mutex.protect lock (fun () ->
      installed := Some (spec, Support.Rng.create spec.seed);
      Atomic.set enabled true)

let disable () =
  Mutex.protect lock (fun () ->
      installed := None;
      Atomic.set enabled false)

let active () = Atomic.get enabled

let with_spec spec f =
  let previous = Mutex.protect lock (fun () -> !installed) in
  install spec;
  Fun.protect
    ~finally:(fun () ->
      match previous with Some (prev, _) -> install prev | None -> disable ())
    f

let fire point =
  if not (Atomic.get enabled) then false
  else
    let fired =
      Mutex.protect lock (fun () ->
          match !installed with
          | None -> false
          | Some (spec, rng) -> (
              match List.assoc_opt point spec.points with
              | None -> false
              | Some rate -> rate > 0.0 && Support.Rng.float rng < rate))
    in
    if fired then
      Obs.Counter.incr (Obs.Registry.counter (Obs.ambient ()) ("fault.injected." ^ point));
    fired

let inject point = if fire point then raise (Injected point)
