(** Deterministic fault injection.

    Robustness code is only trustworthy if its failure paths run; this
    module lets tests, benchmarks and CI {e drive} them.  Code under
    test consults named {e injection points} ([store.write],
    [worker.crash], ...); a seeded specification maps each point to a
    firing probability, and every draw flows through one splitmix64
    stream, so a given spec replays the same fault schedule run to run
    (up to domain interleaving when several domains draw).

    {2 Cost when disabled}

    With no spec installed — the production configuration — {!fire} is
    a single relaxed [Atomic.get] returning [false]: no lock, no hash
    lookup, no allocation.  Injection points therefore stay in the
    shipped binary and compile down to a branch-never-taken.

    {2 Spec syntax}

    {v point:rate[,point:rate...][@seed=N] v}

    e.g. ["store.write:0.05,worker.crash:0.01@seed=42"].  Rates are
    floats in [[0, 1]]; the seed defaults to 0.  Point names are free
    form ([[a-z0-9._-]]); unknown names simply never fire, so a spec
    can name points of a newer binary without breaking an older one.

    Every fired injection increments the ambient {!Obs} registry
    counter [fault.injected.<point>]. *)

(** Raised by {!inject} (and nothing else) when a point fires.  The
    payload is the point name. *)
exception Injected of string

type spec

(** Parse the spec syntax above.  [Error] on empty specs, malformed
    rates, rates outside [[0, 1]] and malformed point names. *)
val parse : string -> (spec, string) result

(** A one-point spec, for tests: [always "store.write"] fires every
    draw of that point. *)
val always : ?seed:int -> string -> spec

(** Round-trips through {!parse}. *)
val to_string : spec -> string

(** Install a spec process-wide (replacing any previous one). *)
val install : spec -> unit

(** Remove the installed spec: every point stops firing and {!fire}
    returns to its single-atomic-load fast path. *)
val disable : unit -> unit

(** Whether any spec is installed. *)
val active : unit -> bool

(** [with_spec spec f] installs [spec], runs [f], and restores the
    previous installation state even when [f] raises. *)
val with_spec : spec -> (unit -> 'a) -> 'a

(** Draw at a named injection point: [true] when the installed spec
    fires it.  Always [false] with no spec installed. *)
val fire : string -> bool

(** [inject point] raises [Injected point] when {!fire} does. *)
val inject : string -> unit

(** The injection points consulted by this codebase, with what each
    one simulates (documentation; {!parse} does not restrict names).
    The [peer.*] family models network-level failure: [peer.slow]
    (stall), [peer.drop] (close mid-response), [peer.reset]
    (ECONNRESET instead of a reply) and [peer.partition] (black-hole:
    connections are accepted but never answered for a window). *)
val known_points : (string * string) list
