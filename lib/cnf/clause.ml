module Lit = Aig.Lit

type t = int array

let empty = [||]
let is_empty c = Array.length c = 0

(* Sort, deduplicate, and reject tautologies.  Sorted literal order
   puts the two polarities of a variable adjacently, so both checks are
   a single pass. *)
let normalize lits =
  Array.sort compare lits;
  let n = Array.length lits in
  if n = 0 then [||]
  else begin
    let out = Array.make n lits.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      let l = lits.(i) in
      let prev = out.(!k - 1) in
      if l = prev then ()
      else begin
        if Lit.var l = Lit.var prev then
          invalid_arg "Clause: tautology (both polarities of a variable)";
        out.(!k) <- l;
        incr k
      end
    done;
    Array.sub out 0 !k
  end

let of_array lits = normalize (Array.copy lits)
let of_list lits = normalize (Array.of_list lits)
let map_lits f c = normalize (Array.map f c)
let singleton l = [| l |]

let size = Array.length
let lits c = Array.copy c
let to_list = Array.to_list
let iter = Array.iter
let fold f acc c = Array.fold_left f acc c

let mem l c =
  (* Binary search in the sorted representation. *)
  let rec loop lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if c.(mid) = l then true else if c.(mid) < l then loop (mid + 1) hi else loop lo mid
  in
  loop 0 (Array.length c)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let hash c = Array.fold_left (fun acc l -> (acc * 31) + l + 1) 17 c

let subsumes c d = Array.for_all (fun l -> mem l d) c

let resolve c d ~pivot =
  let pos = Lit.of_var pivot and neg = Lit.neg (Lit.of_var pivot) in
  if not (mem pos c) then invalid_arg "Clause.resolve: positive pivot not in first clause";
  if not (mem neg d) then invalid_arg "Clause.resolve: negative pivot not in second clause";
  let keep arr skip = Array.to_list (Array.of_seq (Seq.filter (fun l -> l <> skip) (Array.to_seq arr))) in
  of_list (keep c pos @ keep d neg)

let resolve_any ~c ~d =
  let clashes =
    Array.to_list c
    |> List.filter_map (fun l -> if mem (Lit.neg l) d then Some (Lit.var l) else None)
  in
  match clashes with
  | [ v ] -> if mem (Lit.of_var v) c then resolve c d ~pivot:v else resolve d c ~pivot:v
  | [] -> invalid_arg "Clause.resolve_any: no clashing variable"
  | _ -> invalid_arg "Clause.resolve_any: more than one clashing variable"

let max_var c = Array.fold_left (fun acc l -> max acc (Lit.var l)) (-1) c

let satisfied_by c assignment =
  Array.exists (fun l -> assignment.(Lit.var l) <> Lit.is_neg l) c

let pp fmt c =
  Format.fprintf fmt "(";
  Array.iteri (fun i l -> Format.fprintf fmt (if i = 0 then "%a" else " %a") Lit.pp l) c;
  Format.fprintf fmt ")"

let to_dimacs_string c =
  String.concat " " (List.map (fun l -> string_of_int (Lit.to_dimacs l)) (to_list c) @ [ "0" ])
