(** Clauses: sets of literals, stored as sorted duplicate-free arrays.

    The canonical representation makes clause equality, subsumption and
    resolution (the operations the proof checker performs millions of
    times) cheap and deterministic.  Literals use {!Aig.Lit}'s packed
    encoding. *)

type t = private int array

val empty : t
val is_empty : t -> bool

(** Build from literals; sorts and removes duplicates.
    @raise Invalid_argument if the result would be a tautology
    (contains both polarities of a variable) — tautologies never occur
    in Tseitin CNFs or resolution proofs and are rejected early. *)
val of_list : Aig.Lit.t list -> t

val of_array : Aig.Lit.t array -> t
val singleton : Aig.Lit.t -> t

(** [map_lits f c] applies [f] to every literal and re-canonicalizes.
    Used to translate clauses between literal numberings (e.g. from an
    extracted cone back into its source graph).
    @raise Invalid_argument if the image is a tautology. *)
val map_lits : (Aig.Lit.t -> Aig.Lit.t) -> t -> t

val size : t -> int
val mem : Aig.Lit.t -> t -> bool
val lits : t -> Aig.Lit.t array
val to_list : t -> Aig.Lit.t list
val iter : (Aig.Lit.t -> unit) -> t -> unit
val fold : ('a -> Aig.Lit.t -> 'a) -> 'a -> t -> 'a

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [subsumes c d] iff every literal of [c] occurs in [d]. *)
val subsumes : t -> t -> bool

(** [resolve c d ~pivot] is the resolvent of [c] (containing the
    positive literal of variable [pivot]) and [d] (containing the
    negative literal): the union minus both pivot literals.
    @raise Invalid_argument if the pivot literals are not present as
    stated, or if the resolvent would be a tautology. *)
val resolve : t -> t -> pivot:int -> t

(** [resolve_any c d] resolves on the unique clashing variable.
    @raise Invalid_argument if there is no clash or more than one. *)
val resolve_any : c:t -> d:t -> t

(** Largest variable index occurring, or [-1] for the empty clause. *)
val max_var : t -> int

(** True under a total assignment ([assignment.(v)] is variable [v]). *)
val satisfied_by : t -> bool array -> bool

val pp : Format.formatter -> t -> unit
val to_dimacs_string : t -> string
