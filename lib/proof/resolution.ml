module Clause = Cnf.Clause

type id = int

type node =
  | Leaf of { clause : Clause.t; assumption : bool }
  | Chain of { clause : Clause.t; antecedents : id array; pivots : int array }

type t = {
  mutable nodes : node array;
  mutable size : int;
  leaf_index : (Clause.t, id) Hashtbl.t;
  (* Ambient-registry handles resolved at [create]: node creation is a
     hot path during conflict analysis. *)
  o_leaves : Obs.Counter.t;
  o_chains : Obs.Counter.t;
}

let dummy = Leaf { clause = Clause.empty; assumption = false }

let create () =
  let reg = Obs.ambient () in
  {
    nodes = Array.make 64 dummy;
    size = 0;
    leaf_index = Hashtbl.create 64;
    o_leaves = Obs.Registry.counter reg "proof.leaves";
    o_chains = Obs.Registry.counter reg "proof.chains";
  }

let size t = t.size

let append t n =
  if t.size = Array.length t.nodes then begin
    let nodes = Array.make (2 * t.size) dummy in
    Array.blit t.nodes 0 nodes 0 t.size;
    t.nodes <- nodes
  end;
  t.nodes.(t.size) <- n;
  t.size <- t.size + 1;
  t.size - 1

let add_leaf ?(assumption = false) t clause =
  if assumption then begin
    Obs.Counter.incr t.o_leaves;
    append t (Leaf { clause; assumption = true })
  end
  else
    match Hashtbl.find_opt t.leaf_index clause with
    | Some id -> id
    | None ->
      let id = append t (Leaf { clause; assumption = false }) in
      Hashtbl.add t.leaf_index clause id;
      Obs.Counter.incr t.o_leaves;
      id

let add_chain t ~clause ~antecedents ~pivots =
  let n = Array.length antecedents in
  if n < 2 || Array.length pivots <> n - 1 then
    invalid_arg "Resolution.add_chain: need k+1 antecedents for k pivots, k >= 1";
  Array.iter
    (fun a -> if a < 0 || a >= t.size then invalid_arg "Resolution.add_chain: bad antecedent id")
    antecedents;
  Obs.Counter.incr t.o_chains;
  append t (Chain { clause; antecedents; pivots })

let node t id =
  if id < 0 || id >= t.size then invalid_arg "Resolution.node: bad id";
  t.nodes.(id)

let clause_of t id =
  match node t id with
  | Leaf { clause; _ } | Chain { clause; _ } -> clause

let is_assumption t id =
  match node t id with
  | Leaf { assumption; _ } -> assumption
  | Chain _ -> false

let iter f t =
  for id = 0 to t.size - 1 do
    f id t.nodes.(id)
  done

let reachable t ~root =
  let seen = Array.make t.size false in
  (* Iterative DFS: proofs can be hundreds of thousands of nodes deep. *)
  let stack = Support.Veci.create () in
  Support.Veci.push stack root;
  while not (Support.Veci.is_empty stack) do
    let id = Support.Veci.pop stack in
    if not seen.(id) then begin
      seen.(id) <- true;
      match t.nodes.(id) with
      | Leaf _ -> ()
      | Chain { antecedents; _ } -> Array.iter (Support.Veci.push stack) antecedents
    end
  done;
  let acc = ref [] in
  for id = t.size - 1 downto 0 do
    if seen.(id) then acc := id :: !acc
  done;
  Array.of_list !acc

let import dst src ~root ~map_leaf =
  let order = reachable src ~root in
  let map = Hashtbl.create (Array.length order) in
  Array.iter
    (fun id ->
      let dst_id =
        match node src id with
        | Leaf { clause; _ } -> map_leaf id clause
        | Chain { clause; antecedents; pivots } ->
          let antecedents = Array.map (Hashtbl.find map) antecedents in
          add_chain dst ~clause ~antecedents ~pivots
      in
      Hashtbl.add map id dst_id)
    order;
  Hashtbl.find map root

let import_mapped dst src ~root ~map_lit ~map_leaf =
  (* An injective literal renaming commutes with resolution, so the
     chains stay valid verbatim once clauses and pivots are mapped. *)
  let map_pivot v = Aig.Lit.var (map_lit (Aig.Lit.of_var v)) in
  let order = reachable src ~root in
  let map = Hashtbl.create (Array.length order) in
  Array.iter
    (fun id ->
      let dst_id =
        match node src id with
        | Leaf { clause; _ } -> map_leaf id (Clause.map_lits map_lit clause)
        | Chain { clause; antecedents; pivots } ->
          add_chain dst
            ~clause:(Clause.map_lits map_lit clause)
            ~antecedents:(Array.map (Hashtbl.find map) antecedents)
            ~pivots:(Array.map map_pivot pivots)
      in
      Hashtbl.add map id dst_id)
    order;
  Hashtbl.find map root

let recompute_chain t ~antecedents ~pivots =
  let acc = ref (clause_of t antecedents.(0)) in
  Array.iteri
    (fun i pivot ->
      let c = clause_of t antecedents.(i + 1) in
      let pos = Aig.Lit.of_var pivot in
      let acc' =
        if Clause.mem pos !acc && Clause.mem (Aig.Lit.neg pos) c then
          Clause.resolve !acc c ~pivot
        else Clause.resolve c !acc ~pivot
      in
      acc := acc')
    pivots;
  !acc

let pp_node fmt = function
  | Leaf { clause; assumption } ->
    Format.fprintf fmt "leaf%s %a" (if assumption then "*" else "") Clause.pp clause
  | Chain { clause; antecedents; pivots } ->
    Format.fprintf fmt "chain %a <-" Clause.pp clause;
    Array.iteri
      (fun i a ->
        if i = 0 then Format.fprintf fmt " %d" a
        else Format.fprintf fmt " [%d] %d" pivots.(i - 1) a)
      antecedents
