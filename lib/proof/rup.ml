module Clause = Cnf.Clause
module Lit = Aig.Lit

type error = { index : int; clause : Clause.t; reason : string }

let pp_error fmt e =
  Format.fprintf fmt "lemma %d %s: %s" e.index (Clause.to_dimacs_string e.clause) e.reason

(* Naive unit propagation to a fixpoint: repeatedly scan all clauses.
   Quadratic in the worst case, which is fine for a reference checker —
   clarity and independence from the solver matter more than speed. *)
let propagate_to_conflict clauses assignment =
  let changed = ref true in
  let conflict = ref false in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun c ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          Clause.iter
            (fun l ->
              match Hashtbl.find_opt assignment (Lit.var l) with
              | None -> unassigned := l :: !unassigned
              | Some v -> if v <> Lit.is_neg l then satisfied := true)
            c;
          if not !satisfied then begin
            match !unassigned with
            | [] -> conflict := true
            | [ l ] ->
              Hashtbl.replace assignment (Lit.var l) (not (Lit.is_neg l));
              changed := true
            | _ :: _ :: _ -> ()
          end
        end)
      clauses
  done;
  !conflict

let check_clause formula lemmas c =
  let assignment = Hashtbl.create 64 in
  (* Assume the negation of every literal of [c]. *)
  Clause.iter (fun l -> Hashtbl.replace assignment (Lit.var l) (Lit.is_neg l)) c;
  let clauses = Cnf.Formula.to_list formula @ lemmas in
  propagate_to_conflict clauses assignment

let check_stream formula lemmas =
  if lemmas = [] then
    Error { index = 0; clause = Clause.empty; reason = "empty lemma stream" }
  else
    (* [accepted] is threaded newest-first and handed to [check_clause]
       as-is: unit propagation scans the clause set to a fixpoint, so
       its order is irrelevant, and re-reversing the list per lemma
       (as this function used to) made the whole stream quadratic in
       list traffic on top of the propagation cost. *)
    let rec loop index accepted = function
      | [] -> (
        match accepted with
        | last :: _ when Clause.is_empty last -> Ok index
        | last :: _ ->
          Error
            { index = index - 1; clause = last; reason = "stream does not end with the empty clause" }
        | [] -> assert false)
      | c :: rest ->
        if check_clause formula accepted c then loop (index + 1) (c :: accepted) rest
        else Error { index; clause = c; reason = "clause is not RUP" }
    in
    loop 0 [] lemmas

let check_drup_string formula text =
  let lemmas =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           (* Real DRUP files carry "c" comment lines, "d <lits> 0"
              deletion lines (this checker keeps every lemma, so they
              are advice to skip) and CRLF endings; [String.trim]
              drops the '\r'. *)
           let line = String.trim line in
           let toks = String.split_on_char ' ' line |> List.filter (fun tok -> tok <> "") in
           match toks with
           | [] | "c" :: _ | "d" :: _ -> None
           | _ when line.[0] = 'c' -> None
           | toks ->
             let lits =
               List.map
                 (fun tok ->
                   match int_of_string_opt tok with
                   | Some v -> v
                   | None -> failwith (Printf.sprintf "Rup.check_drup_string: bad token %S" tok))
                 toks
             in
             (match List.rev lits with
             | 0 :: rest -> Some (Clause.of_list (List.rev_map Lit.of_dimacs rest))
             | _ -> failwith "Rup.check_drup_string: clause missing terminator"))
  in
  check_stream formula lemmas
