module Clause = Cnf.Clause

type stats = {
  nodes : int;
  chains : int;
  steps : int;
  hints_followed : int;
  deletes : int;
  peak_live : int;
  shards : int;
}

type error = { offset : int; reason : string; malformed : bool; chain : int option }

let pp_error fmt (e : error) =
  (match e.chain with
  | Some c -> Format.fprintf fmt "chain %d, byte %d: %s" c e.offset e.reason
  | None -> Format.fprintf fmt "byte %d: %s" e.offset e.reason);
  if e.malformed then Format.fprintf fmt " (malformed certificate)"

exception Reject of { offset : int; reason : string; chain : int option }

let reject ?chain offset fmt =
  Printf.ksprintf (fun reason -> raise (Reject { offset; reason; chain })) fmt

let corrupt offset fmt =
  Printf.ksprintf (fun reason -> raise (Binfmt.Corrupt { offset; reason })) fmt

(* What one shard's forward pass leaves behind for the join.  Times are
   global node counts at the moment a record was processed, so "node
   [p] was dead when chain [q] used it" is exactly [delete-time <= q]
   regardless of which shards the two records sit in. *)
type shard_outcome = {
  mutable sr_chains : int;
  mutable sr_steps : int;
  mutable sr_deletes : int;
  mutable sr_peak : int;
  mutable foreign_uses : (int * int * int) list;  (** position, using chain, offset *)
  mutable foreign_deletes : (int * int * int) list;  (** position, time, offset *)
  mutable local_deletes : (int * int * int) list;  (** position, time, offset *)
  mutable failure : error option;
}

let fresh_outcome () =
  {
    sr_chains = 0;
    sr_steps = 0;
    sr_deletes = 0;
    sr_peak = 0;
    foreign_uses = [];
    foreign_deletes = [];
    local_deletes = [];
    failure = None;
  }

(* Forward pass over one shard, search-free: every resolution step
   follows its stored hint.  Local antecedents come from the live
   table exactly as in {!Stream_check}; cross-shard antecedents come
   from the header's export table (and are recorded for the join, so a
   use the exporting shard later invalidates still rejects).  The live
   set is the shard's local live clauses plus the imports currently
   held — for a valid certificate that is never more than the
   sequential checker's live set at the same instant. *)
let check_shard ?formula base shards exports idx =
  let out = fresh_outcome () in
  let sh = shards.(idx) in
  let n = Binfmt.declared_nodes base in
  let r = Binfmt.shard_reader base idx in
  let live = Hashtbl.create 64 in
  let imports = Hashtbl.create 8 in
  let held = ref 0 in
  let peak () =
    let p = Hashtbl.length live + !held in
    if p > out.sr_peak then out.sr_peak <- p
  in
  let own_exports = Hashtbl.create (max 1 (Array.length sh.Binfmt.exports)) in
  Array.iter (fun (p, c) -> Hashtbl.replace own_exports p c) sh.Binfmt.exports;
  let check_export at pos clause =
    match Hashtbl.find_opt own_exports pos with
    | Some c when not (Clause.equal c clause) ->
      reject ~chain:pos at "exported clause for node %d does not match its derivation" pos
    | Some _ | None -> ()
  in
  let run () =
    let continue = ref true in
    while !continue do
      let at0 = Binfmt.offset r in
      if at0 >= sh.Binfmt.byte_stop then begin
        if Binfmt.defined_nodes r <> sh.Binfmt.end_pos then
          corrupt at0 "shard %d declares %d nodes but defines %d" idx
            (sh.Binfmt.end_pos - sh.Binfmt.start_pos)
            (Binfmt.defined_nodes r - sh.Binfmt.start_pos);
        continue := false
      end
      else
        match Binfmt.next r with
        | None -> corrupt at0 "certificate ends inside shard %d" idx
        | Some record -> (
          let at = Binfmt.offset r in
          if at > sh.Binfmt.byte_stop then corrupt at0 "record crosses a shard boundary";
          if Binfmt.defined_nodes r > sh.Binfmt.end_pos then
            corrupt at "shard %d defines more nodes than declared" idx;
          match record with
          | Binfmt.Leaf { clause; assumption } ->
            let pos = Binfmt.defined_nodes r - 1 in
            if assumption then reject ~chain:pos at "assumption leaf in a final certificate";
            (match formula with
            | Some f when not (Cnf.Formula.mem f clause) ->
              reject ~chain:pos at "leaf clause %s is not in the formula"
                (Clause.to_dimacs_string clause)
            | Some _ | None -> ());
            check_export at pos clause;
            Hashtbl.add live pos clause;
            peak ()
          | Binfmt.Chain { antecedents; pivots } ->
            let pos = Binfmt.defined_nodes r - 1 in
            let chain = Some pos in
            let clause_of p =
              if p >= sh.Binfmt.start_pos then
                match Hashtbl.find_opt live p with
                | Some c -> c
                | None -> reject ?chain at "antecedent %d is dead (deleted before its last use)" p
              else begin
                out.foreign_uses <- (p, pos, at) :: out.foreign_uses;
                match Hashtbl.find_opt imports p with
                | Some c -> c
                | None -> (
                  match Hashtbl.find_opt exports p with
                  | Some c ->
                    Hashtbl.add imports p c;
                    incr held;
                    peak ();
                    c
                  | None -> reject ?chain at "cross-shard antecedent %d is not exported" p)
              end
            in
            let acc = ref (clause_of antecedents.(0)) in
            for i = 1 to Array.length antecedents - 1 do
              let pivot = pivots.(i - 1) in
              (match Binfmt.resolve_hinted !acc (clause_of antecedents.(i)) ~pivot with
              | resolvent -> acc := resolvent
              | exception Invalid_argument msg ->
                reject ?chain at "hinted resolution step %d on variable %d failed: %s" i pivot msg);
              out.sr_steps <- out.sr_steps + 1
            done;
            out.sr_chains <- out.sr_chains + 1;
            check_export at pos !acc;
            Hashtbl.add live pos !acc;
            peak ()
          | Binfmt.Delete ids ->
            out.sr_deletes <- out.sr_deletes + 1;
            let time = Binfmt.defined_nodes r in
            Array.iter
              (fun p ->
                if p = n - 1 then reject at "delete of the root";
                if p >= sh.Binfmt.start_pos then begin
                  if not (Hashtbl.mem live p) then reject at "double delete of node %d" p;
                  Hashtbl.remove live p;
                  out.local_deletes <- (p, time, at) :: out.local_deletes
                end
                else begin
                  out.foreign_deletes <- (p, time, at) :: out.foreign_deletes;
                  if Hashtbl.mem imports p then begin
                    Hashtbl.remove imports p;
                    decr held
                  end
                end)
              ids)
    done;
    if idx = Array.length shards - 1 then
      match Hashtbl.find_opt live (n - 1) with
      | Some c when Clause.is_empty c -> ()
      | Some c ->
        reject (Binfmt.offset r) "root clause %s is not empty" (Clause.to_dimacs_string c)
      | None -> reject (Binfmt.offset r) "root was deleted"
  in
  (match run () with
  | () -> ()
  | exception Reject { offset; reason; chain } ->
    out.failure <- Some { offset; reason; malformed = false; chain }
  | exception Binfmt.Corrupt { offset; reason } ->
    out.failure <- Some { offset; reason; malformed = true; chain = None });
  out

(* Join at the stitch points: fold every shard's delete reports into
   one position -> time map (a position deleted twice anywhere is a
   double delete) and replay the cross-shard uses against it — a use at
   chain [q] of a node deleted at time [<= q] is exactly what the
   sequential checker would have rejected as a dead antecedent. *)
let join outcomes =
  let candidates = ref [] in
  Array.iter
    (fun o -> match o.failure with Some e -> candidates := e :: !candidates | None -> ())
    outcomes;
  let deletes = Hashtbl.create 64 in
  let record_delete (p, t, off) =
    match Hashtbl.find_opt deletes p with
    | None -> Hashtbl.replace deletes p (t, off)
    | Some (t0, off0) ->
      (* The sequential pass trips on the later of the two records. *)
      let off_err = if t >= t0 then off else off0 in
      candidates :=
        {
          offset = off_err;
          reason = Printf.sprintf "double delete of node %d" p;
          malformed = false;
          chain = None;
        }
        :: !candidates;
      Hashtbl.replace deletes p (min t t0, min off off0)
  in
  Array.iter
    (fun o ->
      List.iter record_delete o.local_deletes;
      List.iter record_delete o.foreign_deletes)
    outcomes;
  Array.iter
    (fun o ->
      List.iter
        (fun (p, q, off) ->
          match Hashtbl.find_opt deletes p with
          | Some (td, _) when td <= q ->
            candidates :=
              {
                offset = off;
                reason =
                  Printf.sprintf "antecedent %d is dead (deleted before its last use)" p;
                malformed = false;
                chain = Some q;
              }
              :: !candidates
          | _ -> ())
        o.foreign_uses)
    outcomes;
  !candidates

(* The reported error is the candidate earliest in the byte stream —
   a deterministic function of the bytes alone, independent of worker
   scheduling (shard byte ranges are disjoint and ordered, so this is
   also the lowest-shard failure). *)
let error_key (e : error) =
  (e.offset, (match e.chain with None -> -1 | Some c -> c), e.reason, e.malformed)

let pick candidates =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some b -> if compare (error_key e) (error_key b) < 0 then Some e else acc)
    None candidates

let check ?formula ?(jobs = 1) data =
  let reg = Obs.ambient () in
  let fail e =
    Obs.Counter.incr (Obs.Registry.counter reg "check.rejects");
    Error e
  in
  match Binfmt.reader data with
  | exception Binfmt.Corrupt { offset; reason } ->
    fail { offset; reason; malformed = true; chain = None }
  | base ->
    if Binfmt.version_of base <> Binfmt.version_hinted then
      fail
        {
          offset = String.length Binfmt.magic;
          reason =
            Printf.sprintf "certificate carries no hints (CECB version %d); use Stream_check"
              (Binfmt.version_of base);
          malformed = false;
          chain = None;
        }
    else begin
      let shards = Binfmt.shards base in
      let s_count = Array.length shards in
      let exports = Hashtbl.create 64 in
      Array.iter
        (fun sh -> Array.iter (fun (p, c) -> Hashtbl.replace exports p c) sh.Binfmt.exports)
        shards;
      (* Shards are independent units of work pulled off an atomic
         cursor by [jobs] domains; every shard is always checked (no
         early abort), so the outcome — verdict, error choice and all
         aggregate counters — is identical for every [jobs], including
         on rejection. *)
      let outcomes = Array.make s_count (fresh_outcome ()) in
      let cursor = Atomic.make 0 in
      let workers = max 1 (min jobs s_count) in
      let work wreg () =
        Obs.with_ambient wreg (fun () ->
            let rec loop () =
              let i = Atomic.fetch_and_add cursor 1 in
              if i < s_count then begin
                outcomes.(i) <-
                  Obs.Span.with_ wreg "check.shard" (fun () ->
                      check_shard ?formula base shards exports i);
                loop ()
              end
            in
            loop ())
      in
      let regs = Array.init workers (fun _ -> Obs.Registry.create ()) in
      let spawned = Array.init (workers - 1) (fun k -> Domain.spawn (work regs.(k + 1))) in
      work regs.(0) ();
      Array.iter Domain.join spawned;
      Array.iter (fun r -> Obs.Registry.merge_into ~into:reg r) regs;
      match pick (join outcomes) with
      | Some e -> fail e
      | None ->
        let chains = ref 0 and steps = ref 0 and deletes = ref 0 and peak = ref 0 in
        Array.iter
          (fun o ->
            chains := !chains + o.sr_chains;
            steps := !steps + o.sr_steps;
            deletes := !deletes + o.sr_deletes;
            if o.sr_peak > !peak then peak := o.sr_peak)
          outcomes;
        let c name = Obs.Registry.counter reg name in
        Obs.Counter.incr (c "check.checks");
        Obs.Counter.add (c "check.chains") !chains;
        Obs.Counter.add (c "check.steps") !steps;
        (* Every step resolved on its stored hint — zero search; the
           equality [check.hints_followed = check.steps] is the no-search
           pin the tests rely on. *)
        Obs.Counter.add (c "check.hints_followed") !steps;
        Obs.Counter.add (c "check.shards") s_count;
        let peak_gauge = Obs.Registry.gauge reg "check.peak_live" in
        Obs.Gauge.set peak_gauge (Float.max (Obs.Gauge.get peak_gauge) (float_of_int !peak));
        Ok
          {
            nodes = Binfmt.declared_nodes base;
            chains = !chains;
            steps = !steps;
            hints_followed = !steps;
            deletes = !deletes;
            peak_live = !peak;
            shards = s_count;
          }
    end
