(** Search-free, shard-parallel validation of hinted certificates.

    {!Stream_check} re-infers every resolution step by searching for
    the clashing variable.  Hinted (CECB version-2) certificates spell
    the pivot sequence out (LRAT/GRIT-style), so this checker follows
    the hints in a strict linear scan — zero clause-search steps — with
    the same bounded live-set discipline: clauses are resident only
    between their defining and delete records.

    The hinted header's {e shard table} (the partition boundaries the
    prover recorded at stitch time) additionally lets the shards check
    {e concurrently}: [jobs] OCaml domains pull shards off a shared
    cursor, each validating its byte span independently — cross-shard
    antecedents come from the header's export table, whose entries the
    owning shard verifies against the actual derivations — and the
    results {e join at the stitch points}: delete/use reports are
    replayed globally so a node deleted before a cross-shard use, or
    deleted twice, rejects exactly as in the sequential pass.  Every
    shard is always checked (no early abort), so verdict, error choice
    and aggregate counters are identical for every [jobs] value.

    The ambient {!Obs} registry records [check.checks], [check.chains],
    [check.steps], [check.hints_followed] (always equal to
    [check.steps]: the no-search pin), [check.shards], [check.rejects],
    the high-water gauge [check.peak_live], and one [check.shard] span
    per shard. *)

type stats = {
  nodes : int;  (** node records validated *)
  chains : int;  (** resolution chains recomputed *)
  steps : int;  (** resolution steps performed *)
  hints_followed : int;  (** steps resolved via their stored hint — always [steps] *)
  deletes : int;  (** delete records applied *)
  peak_live : int;
      (** maximum clauses resident in any one shard (local live set
          plus held imports); never exceeds {!Stream_check}'s peak on
          the same certificate *)
  shards : int;  (** shards validated *)
}

type error = {
  offset : int;  (** byte position the failure was detected at *)
  reason : string;
  malformed : bool;
      (** [true]: the byte stream itself is corrupt; [false]:
          well-formed but not a valid refutation *)
  chain : int option;  (** node position the failure is attributed to, when one is *)
}

val pp_error : Format.formatter -> error -> unit

(** [check ?formula ?jobs data] validates [data] as a {e hinted}
    binary certificate of unsatisfiability; with [formula], every leaf
    must be one of its clauses.  [jobs] (default 1) bounds the domains
    checking shards concurrently — it affects wall time only, never
    the result.  Version-1 certificates are refused (use
    {!Stream_check}).  Never raises on untrusted input. *)
val check : ?formula:Cnf.Formula.t -> ?jobs:int -> string -> (stats, error) result
