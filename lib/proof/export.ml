module Clause = Cnf.Clause
module Lit = Aig.Lit
module R = Resolution

let add_lits buf c =
  Clause.iter (fun l -> Printf.bprintf buf " %d" (Lit.to_dimacs l)) c;
  Buffer.add_string buf " 0"

let trace_to_string proof ~root =
  let buf = Buffer.create 4096 in
  let order = R.reachable proof ~root in
  (* Renumber densely so the trace stands alone. *)
  let rename = Hashtbl.create (Array.length order) in
  Array.iteri (fun i id -> Hashtbl.add rename id i) order;
  Array.iter
    (fun id ->
      let i = 1 + Hashtbl.find rename id in
      (match R.node proof id with
      | R.Leaf { clause; assumption } ->
        Printf.bprintf buf "%d %s" i (if assumption then "A" else "L");
        add_lits buf clause
      | R.Chain { clause; antecedents; pivots } ->
        Printf.bprintf buf "%d C %d" i (1 + Hashtbl.find rename antecedents.(0));
        Array.iteri
          (fun k pivot ->
            Printf.bprintf buf " %d %d" (pivot + 1) (1 + Hashtbl.find rename antecedents.(k + 1)))
          pivots;
        Buffer.add_string buf " 0";
        add_lits buf clause);
      Buffer.add_char buf '\n')
    order;
  Buffer.contents buf

let drup_to_string proof ~root =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun id ->
      match R.node proof id with
      | R.Leaf _ -> ()
      | R.Chain { clause; _ } ->
        Clause.iter (fun l -> Printf.bprintf buf "%d " (Lit.to_dimacs l)) clause;
        Buffer.add_string buf "0\n")
    (R.reachable proof ~root);
  Buffer.contents buf

let trace_of_string text =
  let proof = R.create () in
  let rename = Hashtbl.create 64 in
  let last = ref None in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      (* [String.trim] drops the '\r' of CRLF traces. *)
      let toks = String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") in
      match toks with
      | [] -> ()
      | id_s :: kind :: rest ->
        let int_of s =
          match int_of_string_opt s with
          | Some v -> v
          | None -> failwith (Printf.sprintf "Export.trace_of_string: not a number %S" s)
        in
        let id = int_of id_s in
        let lits_of toks =
          let rec loop acc = function
            | [] -> failwith "Export.trace_of_string: missing terminator"
            | "0" :: rest -> (List.rev acc, rest)
            | t :: rest -> loop (Lit.of_dimacs (int_of t) :: acc) rest
          in
          loop [] toks
        in
        let new_id =
          match kind with
          | "L" | "A" ->
            let lits, rest = lits_of rest in
            if rest <> [] then failwith "Export.trace_of_string: trailing tokens";
            R.add_leaf ~assumption:(kind = "A") proof (Clause.of_list lits)
          | "C" ->
            let rec chain acc_ants acc_pivots = function
              | "0" :: rest -> (List.rev acc_ants, List.rev acc_pivots, rest)
              | a :: rest when acc_ants = [] -> chain [ int_of a ] acc_pivots rest
              | p :: a :: rest -> chain (int_of a :: acc_ants) ((int_of p - 1) :: acc_pivots) rest
              | _ -> failwith "Export.trace_of_string: malformed chain"
            in
            let ants, pivots, rest = chain [] [] rest in
            let lits, rest = lits_of rest in
            if rest <> [] then failwith "Export.trace_of_string: trailing tokens";
            let antecedents =
              Array.of_list
                (List.map
                   (fun a ->
                     match Hashtbl.find_opt rename a with
                     | Some i -> i
                     | None -> failwith "Export.trace_of_string: forward reference")
                   ants)
            in
            R.add_chain proof ~clause:(Clause.of_list lits) ~antecedents
              ~pivots:(Array.of_list pivots)
          | k -> failwith (Printf.sprintf "Export.trace_of_string: unknown kind %S" k)
        in
        (* [Hashtbl.replace] here would let a duplicate id silently
           shadow the earlier node and corrupt every later reference. *)
        if Hashtbl.mem rename id then
          failwith (Printf.sprintf "Export.trace_of_string: duplicate node id %d" id);
        Hashtbl.add rename id new_id;
        last := Some new_id
      | _ -> failwith "Export.trace_of_string: malformed line")
    lines;
  match !last with
  | Some root -> (proof, root)
  | None -> failwith "Export.trace_of_string: empty trace"

let dot_to_string proof ~root =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph proof {\n  rankdir=BT;\n";
  let escape c = String.concat "\\n" (String.split_on_char ' ' (Clause.to_dimacs_string c)) in
  Array.iter
    (fun id ->
      match R.node proof id with
      | R.Leaf { clause; assumption } ->
        Printf.bprintf buf "  n%d [shape=box%s, label=\"%s\"];\n" id
          (if assumption then ", style=dashed" else "")
          (escape clause)
      | R.Chain { clause; antecedents; pivots } ->
        Printf.bprintf buf "  n%d [shape=ellipse, label=\"%s\"];\n" id (escape clause);
        Array.iteri
          (fun k a ->
            if k = 0 then Printf.bprintf buf "  n%d -> n%d;\n" a id
            else Printf.bprintf buf "  n%d -> n%d [label=\"%d\"];\n" a id (pivots.(k - 1) + 1))
          antecedents)
    (R.reachable proof ~root);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
