module Clause = Cnf.Clause

type stats = {
  nodes : int;
  chains : int;
  deletes : int;
  peak_live : int;
  live_at_end : int;
}

type error = { offset : int; reason : string; malformed : bool; chain : int option }

let pp_error fmt e =
  (match e.chain with
  | Some c -> Format.fprintf fmt "chain %d, byte %d: %s" c e.offset e.reason
  | None -> Format.fprintf fmt "byte %d: %s" e.offset e.reason);
  if e.malformed then Format.fprintf fmt " (malformed certificate)"

exception Reject of { offset : int; reason : string; chain : int option }

let reject ?chain offset fmt =
  Printf.ksprintf (fun reason -> raise (Reject { offset; reason; chain })) fmt

let corrupt offset fmt =
  Printf.ksprintf (fun reason -> raise (Binfmt.Corrupt { offset; reason })) fmt

let check ?formula data =
  let reg = Obs.ambient () in
  let run () =
    let r = Binfmt.reader data in
    let n = Binfmt.declared_nodes r in
    let shards = Binfmt.shards r in
    let s_count = Array.length shards in
    (* Declared export clauses by position, across all shards: each is
       cross-checked against the derivation at its defining record, and
       every cross-shard antecedent must appear here — the sequential
       pass enforces exactly the discipline the sharded checker
       ({!Hint_check}) relies on, so the two accept the same sets. *)
    let declared_exports = Hashtbl.create 16 in
    Array.iter
      (fun sh ->
        Array.iter (fun (p, c) -> Hashtbl.replace declared_exports p c) sh.Binfmt.exports)
      shards;
    (* The whole working set: position -> clause, for exactly the
       clauses between their defining record and their delete record.
       Memory is proportional to the peak live count, not to [n] — a
       well-trimmed certificate checks in a small fraction of its
       materialized size. *)
    let live = Hashtbl.create 256 in
    let peak = ref 0 and chains = ref 0 and deletes = ref 0 in
    let cur = ref 0 in
    let check_export at p clause =
      match Hashtbl.find_opt declared_exports p with
      | Some c when not (Clause.equal c clause) ->
        reject ~chain:p at "exported clause for node %d does not match its derivation" p
      | Some _ | None -> ()
    in
    let add_live at pos clause =
      check_export at pos clause;
      Hashtbl.add live pos clause;
      if Hashtbl.length live > !peak then peak := Hashtbl.length live
    in
    let clause_of ~chain at pos =
      match Hashtbl.find_opt live pos with
      | Some c -> c
      | None -> reject ?chain at "antecedent %d is dead (deleted before its last use)" pos
    in
    let rec loop () =
      (* Shard-boundary discipline: records must fill each shard's byte
         span with exactly its declared node count, never straddling a
         boundary. *)
      let at0 = Binfmt.offset r in
      while !cur < s_count - 1 && at0 >= shards.(!cur).Binfmt.byte_stop do
        if Binfmt.defined_nodes r <> shards.(!cur).Binfmt.end_pos then
          corrupt at0 "shard %d declares %d nodes but defines %d" !cur
            (shards.(!cur).Binfmt.end_pos - shards.(!cur).Binfmt.start_pos)
            (Binfmt.defined_nodes r - shards.(!cur).Binfmt.start_pos);
        incr cur
      done;
      match Binfmt.next r with
      | None -> ()
      | Some record ->
        let at = Binfmt.offset r in
        if at > shards.(!cur).Binfmt.byte_stop then corrupt at0 "record crosses a shard boundary";
        (match record with
        | Binfmt.Leaf { clause; assumption } ->
          let pos = Binfmt.defined_nodes r - 1 in
          if assumption then reject ~chain:pos at "assumption leaf in a final certificate";
          (match formula with
          | Some f when not (Cnf.Formula.mem f clause) ->
            reject ~chain:pos at "leaf clause %s is not in the formula"
              (Clause.to_dimacs_string clause)
          | Some _ | None -> ());
          add_live at pos clause
        | Binfmt.Chain { antecedents; pivots } ->
          let pos = Binfmt.defined_nodes r - 1 in
          let chain = Some pos in
          let foreign p =
            if p < shards.(!cur).Binfmt.start_pos && not (Hashtbl.mem declared_exports p) then
              reject ?chain at "cross-shard antecedent %d is not exported" p
          in
          foreign antecedents.(0);
          let acc = ref (clause_of ~chain at antecedents.(0)) in
          for i = 1 to Array.length antecedents - 1 do
            foreign antecedents.(i);
            match Binfmt.resolve_step !acc (clause_of ~chain at antecedents.(i)) with
            | None -> reject ?chain at "no clashing variable in resolution step"
            | Some (resolvent, pivot) ->
              (* Hinted chains also search here, then cross-check: the
                 hint must name exactly the variable resolution finds. *)
              if Array.length pivots > 0 && pivots.(i - 1) <> pivot then
                reject ?chain at "step %d resolves on variable %d but the hint says %d" i pivot
                  pivots.(i - 1);
              acc := resolvent
            | exception Invalid_argument msg -> reject ?chain at "invalid resolution step: %s" msg
          done;
          incr chains;
          add_live at pos !acc
        | Binfmt.Delete ids ->
          incr deletes;
          Array.iter
            (fun pos ->
              if pos = n - 1 then reject at "delete of the root";
              if not (Hashtbl.mem live pos) then reject at "double delete of node %d" pos;
              Hashtbl.remove live pos)
            ids);
        loop ()
    in
    loop ();
    (match Hashtbl.find_opt live (n - 1) with
    | Some c when Clause.is_empty c -> ()
    | Some c ->
      reject (Binfmt.offset r) "root clause %s is not empty" (Clause.to_dimacs_string c)
    | None -> reject (Binfmt.offset r) "root was deleted");
    Obs.Counter.incr (Obs.Registry.counter reg "proof.stream.checks");
    Obs.Counter.add (Obs.Registry.counter reg "proof.stream.chains") !chains;
    let peak_gauge = Obs.Registry.gauge reg "proof.stream.peak_live" in
    Obs.Gauge.set peak_gauge (Float.max (Obs.Gauge.get peak_gauge) (float_of_int !peak));
    Ok
      {
        nodes = n;
        chains = !chains;
        deletes = !deletes;
        peak_live = !peak;
        live_at_end = Hashtbl.length live;
      }
  in
  match run () with
  | result -> result
  | exception Reject { offset; reason; chain } ->
    Obs.Counter.incr (Obs.Registry.counter reg "proof.stream.rejects");
    Error { offset; reason; malformed = false; chain }
  | exception Binfmt.Corrupt { offset; reason } ->
    Obs.Counter.incr (Obs.Registry.counter reg "proof.stream.rejects");
    Error { offset; reason; malformed = true; chain = None }
