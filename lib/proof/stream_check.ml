module Clause = Cnf.Clause

type stats = {
  nodes : int;
  chains : int;
  deletes : int;
  peak_live : int;
  live_at_end : int;
}

type error = { offset : int; reason : string; malformed : bool }

let pp_error fmt e =
  Format.fprintf fmt "byte %d: %s%s" e.offset e.reason
    (if e.malformed then " (malformed certificate)" else "")

exception Reject of { offset : int; reason : string }

let reject offset fmt = Printf.ksprintf (fun reason -> raise (Reject { offset; reason })) fmt

let check ?formula data =
  let reg = Obs.ambient () in
  let run () =
    let r = Binfmt.reader data in
    let n = Binfmt.declared_nodes r in
    (* The whole working set: position -> clause, for exactly the
       clauses between their defining record and their delete record.
       Memory is proportional to the peak live count, not to [n] — a
       well-trimmed certificate checks in a small fraction of its
       materialized size. *)
    let live = Hashtbl.create 256 in
    let peak = ref 0 and chains = ref 0 and deletes = ref 0 in
    let add_live pos clause =
      Hashtbl.add live pos clause;
      if Hashtbl.length live > !peak then peak := Hashtbl.length live
    in
    let clause_of at pos =
      match Hashtbl.find_opt live pos with
      | Some c -> c
      | None -> reject at "antecedent %d is dead (deleted before its last use)" pos
    in
    let rec loop () =
      match Binfmt.next r with
      | None -> ()
      | Some record ->
        let at = Binfmt.offset r in
        (match record with
        | Binfmt.Leaf { clause; assumption } ->
          if assumption then reject at "assumption leaf in a final certificate";
          (match formula with
          | Some f when not (Cnf.Formula.mem f clause) ->
            reject at "leaf clause %s is not in the formula" (Clause.to_dimacs_string clause)
          | Some _ | None -> ());
          add_live (Binfmt.defined_nodes r - 1) clause
        | Binfmt.Chain { antecedents } ->
          let acc = ref (clause_of at antecedents.(0)) in
          for i = 1 to Array.length antecedents - 1 do
            match Binfmt.resolve_step !acc (clause_of at antecedents.(i)) with
            | None -> reject at "no clashing variable in resolution step"
            | Some (resolvent, _pivot) -> acc := resolvent
            | exception Invalid_argument msg -> reject at "invalid resolution step: %s" msg
          done;
          incr chains;
          add_live (Binfmt.defined_nodes r - 1) !acc
        | Binfmt.Delete ids ->
          incr deletes;
          Array.iter
            (fun pos ->
              if pos = n - 1 then reject at "delete of the root";
              if not (Hashtbl.mem live pos) then reject at "double delete of node %d" pos;
              Hashtbl.remove live pos)
            ids);
        loop ()
    in
    loop ();
    (match Hashtbl.find_opt live (n - 1) with
    | Some c when Clause.is_empty c -> ()
    | Some c ->
      reject (Binfmt.offset r) "root clause %s is not empty" (Clause.to_dimacs_string c)
    | None -> reject (Binfmt.offset r) "root was deleted");
    Obs.Counter.incr (Obs.Registry.counter reg "proof.stream.checks");
    Obs.Counter.add (Obs.Registry.counter reg "proof.stream.chains") !chains;
    let peak_gauge = Obs.Registry.gauge reg "proof.stream.peak_live" in
    Obs.Gauge.set peak_gauge (Float.max (Obs.Gauge.get peak_gauge) (float_of_int !peak));
    Ok
      {
        nodes = n;
        chains = !chains;
        deletes = !deletes;
        peak_live = !peak;
        live_at_end = Hashtbl.length live;
      }
  in
  match run () with
  | result -> result
  | exception Reject { offset; reason } ->
    Obs.Counter.incr (Obs.Registry.counter reg "proof.stream.rejects");
    Error { offset; reason; malformed = false }
  | exception Binfmt.Corrupt { offset; reason } ->
    Obs.Counter.incr (Obs.Registry.counter reg "proof.stream.rejects");
    Error { offset; reason; malformed = true }
