module Clause = Cnf.Clause
module Lit = Aig.Lit
module R = Resolution

exception Lift_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lift_error s)) fmt

(* The lifted image of a node: either dropped (assumption leaves), or a
   node of the same proof together with its clause. *)
type image =
  | Dropped
  | Kept of { id : R.id; clause : Clause.t }

let lift_chain proof lifted id antecedents pivots =
  (* Replay one chain over the lifted antecedents.  [base] is the id
     whose clause the pending steps start from; [steps] are the kept
     (pivot, antecedent) pairs in reverse order. *)
  let image_of a =
    match Hashtbl.find_opt lifted a with
    | Some img -> img
    | None -> fail "chain %d references an unprocessed antecedent %d" id a
  in
  let state = ref None in
  (* state = Some (base_id, steps_rev, current_clause) *)
  let start img =
    match img with
    | Dropped -> ()
    | Kept { id; clause } -> state := Some (id, [], clause)
  in
  start (image_of antecedents.(0));
  Array.iteri
    (fun i pivot ->
      let img = image_of antecedents.(i + 1) in
      match (!state, img) with
      | None, img ->
        (* Everything so far was dropped; restart from this side. *)
        start img
      | Some _, Dropped -> ()
      | Some (base, steps, acc), Kept { id = aid; clause = c } ->
        let pos = Lit.of_var pivot in
        let neg = Lit.neg pos in
        let acc_has_pos = Clause.mem pos acc and acc_has_neg = Clause.mem neg acc in
        let c_has_pos = Clause.mem pos c and c_has_neg = Clause.mem neg c in
        if (acc_has_pos && c_has_neg) || (acc_has_neg && c_has_pos) then begin
          let resolvent =
            try if acc_has_pos then Clause.resolve acc c ~pivot else Clause.resolve c acc ~pivot
            with Invalid_argument msg -> fail "chain %d: lifted replay failed: %s" id msg
          in
          state := Some (base, (pivot, aid) :: steps, resolvent)
        end
        else if not (acc_has_pos || acc_has_neg) then
          (* Pivot already gone from the running clause: step redundant. *)
          ()
        else
          (* The other side lost its pivot literal; it subsumes the
             original resolvent on its own, so restart from it. *)
          state := Some (aid, [], c))
    pivots;
  match !state with
  | None -> Dropped
  | Some (base, [], clause) -> Kept { id = base; clause }
  | Some (base, steps_rev, clause) ->
    let steps = List.rev steps_rev in
    let antecedents' = Array.of_list (base :: List.map snd steps) in
    let pivots' = Array.of_list (List.map fst steps) in
    (* Reuse the original node when the replay changed nothing. *)
    if antecedents' = antecedents && pivots' = pivots then
      Kept { id; clause = R.clause_of proof id }
    else
      let id' = R.add_chain proof ~clause ~antecedents:antecedents' ~pivots:pivots' in
      Kept { id = id'; clause }

let refutation proof ~root =
  if not (Clause.is_empty (R.clause_of proof root)) then
    fail "root %d is not an empty clause" root;
  let reg = Obs.ambient () in
  Obs.Counter.incr (Obs.Registry.counter reg "proof.lifts");
  let order = R.reachable proof ~root in
  Obs.Counter.add (Obs.Registry.counter reg "proof.lift_nodes") (Array.length order);
  let lifted : (R.id, image) Hashtbl.t = Hashtbl.create (Array.length order) in
  let depth : (R.id, int) Hashtbl.t = Hashtbl.create (Array.length order) in
  let max_depth = ref 0 in
  Array.iter
    (fun id ->
      let image =
        match R.node proof id with
        | R.Leaf { assumption = true; _ } -> Dropped
        | R.Leaf { clause; assumption = false } -> Kept { id; clause }
        | R.Chain { antecedents; pivots; _ } ->
          let d =
            1
            + Array.fold_left
                (fun acc a -> max acc (Option.value ~default:0 (Hashtbl.find_opt depth a)))
                0 antecedents
          in
          Hashtbl.replace depth id d;
          if d > !max_depth then max_depth := d;
          lift_chain proof lifted id antecedents pivots
      in
      Hashtbl.add lifted id image)
    order;
  Obs.Histogram.observe
    (Obs.Registry.histogram reg "proof.lift_depth")
    (float_of_int !max_depth);
  match Hashtbl.find lifted root with
  | Dropped -> fail "refutation consisted only of assumptions"
  | Kept { id; clause } -> (id, clause)
