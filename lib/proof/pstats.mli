(** Size metrics of resolution proofs — the quantities the paper's
    evaluation tables report. *)

type t = {
  leaves : int;  (** distinct input clauses used *)
  assumptions : int;  (** assumption leaves (0 in final proofs) *)
  chains : int;  (** derived clauses *)
  resolutions : int;  (** total resolution steps, i.e. Σ (chain length − 1) *)
  literals : int;  (** total literal occurrences over derived clauses *)
  depth : int;  (** longest path from a leaf to the root *)
}

(** Statistics over an explicit id set.  Ids are deduped first: a node
    listed several times — or reachable through several chains when
    the caller concatenates overlapping cones — is counted once. *)
val of_ids : Resolution.t -> Resolution.id array -> t

(** Statistics of the sub-DAG rooted at [root]. *)
val of_root : Resolution.t -> root:Resolution.id -> t

(** Statistics of a whole store (depth over all nodes). *)
val of_proof : Resolution.t -> t

val pp : Format.formatter -> t -> unit

(** Header and row renderers for the benchmark tables. *)
val columns : string list

val row : t -> string list
