type t = {
  leaves : int;
  assumptions : int;
  chains : int;
  resolutions : int;
  literals : int;
  depth : int;
}

let of_ids proof ids =
  let max_id = Array.fold_left max 0 ids in
  let depth = Array.make (max_id + 1) 0 in
  (* Dedupe by node id: a node reachable through several chains (or an
     id repeated in the input) must be counted once. *)
  let counted = Array.make (max_id + 1) false in
  let stats = ref { leaves = 0; assumptions = 0; chains = 0; resolutions = 0; literals = 0; depth = 0 } in
  Array.iter
    (fun id ->
      if counted.(id) then ()
      else begin
      counted.(id) <- true;
      match Resolution.node proof id with
      | Resolution.Leaf { assumption; _ } ->
        let s = !stats in
        stats :=
          { s with leaves = s.leaves + 1; assumptions = (s.assumptions + if assumption then 1 else 0) }
      | Resolution.Chain { clause; antecedents; _ } ->
        let d = 1 + Array.fold_left (fun acc a -> max acc depth.(a)) 0 antecedents in
        depth.(id) <- d;
        let s = !stats in
        stats :=
          {
            s with
            chains = s.chains + 1;
            resolutions = s.resolutions + Array.length antecedents - 1;
            literals = s.literals + Cnf.Clause.size clause;
            depth = max s.depth d;
          }
      end)
    ids;
  !stats

let of_root proof ~root = of_ids proof (Resolution.reachable proof ~root)

let of_proof proof = of_ids proof (Array.init (Resolution.size proof) Fun.id)

let pp fmt s =
  Format.fprintf fmt "leaves=%d chains=%d resolutions=%d literals=%d depth=%d" s.leaves s.chains
    s.resolutions s.literals s.depth

let columns = [ "leaves"; "chains"; "resolutions"; "literals"; "depth" ]

let row s =
  List.map string_of_int [ s.leaves; s.chains; s.resolutions; s.literals; s.depth ]
