(** Streaming validation of binary certificates.

    {!Checker} materializes a whole {!Resolution.t} before looking at a
    single chain.  This checker instead validates a {!Binfmt}
    certificate in one forward pass over the bytes, keeping only the
    {e live} clauses — each clause is resident from its defining record
    until its delete record — so memory is bounded by the peak live
    count, not the proof size.  Chain result clauses are recomputed by
    resolution; for hinted (version-2) certificates the searched pivot
    is additionally cross-checked against the stored hint, the shard
    table is enforced (byte spans, per-shard node counts, export
    clauses matching their derivations, cross-shard antecedents
    exported), so this sequential pass accepts exactly the certificates
    the sharded {!Hint_check} accepts.  Leaves are checked against the
    formula when one is given, assumption leaves are rejected, and the
    final node must hold the empty clause.

    The ambient {!Obs} registry records [proof.stream.checks],
    [proof.stream.chains], [proof.stream.rejects] and the high-water
    gauge [proof.stream.peak_live]. *)

type stats = {
  nodes : int;  (** node records validated *)
  chains : int;  (** resolution chains recomputed *)
  deletes : int;  (** delete records applied *)
  peak_live : int;  (** maximum simultaneously resident clauses *)
  live_at_end : int;  (** clauses never freed (the root among them) *)
}

type error = {
  offset : int;  (** byte position the failure was detected at *)
  reason : string;
  malformed : bool;
      (** [true]: the byte stream itself is corrupt (bad magic, truncation,
          dangling reference); [false]: well-formed but not a valid
          refutation *)
  chain : int option;
      (** node position (chain id) the failure is attributed to, when
          one is — header and delete failures carry none *)
}

val pp_error : Format.formatter -> error -> unit

(** [check ?formula data] validates [data] as a binary certificate of
    unsatisfiability; with [formula], every leaf must be one of its
    clauses.  Never raises on untrusted input — corruption and invalid
    proofs both come back as [Error]. *)
val check : ?formula:Cnf.Formula.t -> string -> (stats, error) result
