(** Library interface: resolution proof store, checkers (materialized
    and streaming), assumption lifting, trimming, statistics, and text
    and binary certificate formats. *)

module Resolution = Resolution
module Checker = Checker
module Lift = Lift
module Trim = Trim
module Pstats = Pstats
module Export = Export
module Binfmt = Binfmt
module Stream_check = Stream_check
module Hint_check = Hint_check
module Rup = Rup
module Compress = Compress
module Interpolant = Interpolant
module Core = Core
