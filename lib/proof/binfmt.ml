module Clause = Cnf.Clause
module Lit = Aig.Lit
module R = Resolution

let magic = "CECB"
let version = 1
let version_hinted = 2

exception Corrupt of { offset : int; reason : string }

let corrupt offset fmt = Printf.ksprintf (fun reason -> raise (Corrupt { offset; reason })) fmt

type record =
  | Leaf of { clause : Clause.t; assumption : bool }
  | Chain of { antecedents : int array; pivots : int array }
  | Delete of int array

type shard = {
  start_pos : int;
  end_pos : int;
  byte_start : int;
  byte_stop : int;
  exports : (int * Clause.t) array;
}

(* One step of trivial resolution with the pivot re-derived instead of
   stored: a non-tautological resolvent exists only when exactly one
   variable clashes between the operands, so the format omits pivots
   entirely (they are about half of every chain's bytes) and readers
   recover them here.  Returns [None] when nothing clashes; picking the
   first clash is safe because a second one would make any resolvent a
   tautology, which [Clause.resolve] rejects.  The orientation mirrors
   [Resolution.recompute_chain]. *)
let resolve_step acc c =
  let pivot = ref (-1) in
  (try
     Clause.iter
       (fun l ->
         if Clause.mem (Lit.neg l) c then begin
           pivot := Lit.var l;
           raise Exit
         end)
       acc
   with Exit -> ());
  if !pivot < 0 then None
  else
    let pivot = !pivot in
    let pos = Lit.of_var pivot in
    let resolvent =
      if Clause.mem pos acc && Clause.mem (Lit.neg pos) c then Clause.resolve acc c ~pivot
      else Clause.resolve c acc ~pivot
    in
    Some (resolvent, pivot)

(* One hinted step: resolve on the stored pivot, no search.  A wrong
   hint either names a variable absent from an operand or yields a
   tautology; [Clause.resolve] raises [Invalid_argument] on both, so a
   corrupted hint can never produce an accepted-but-different clause. *)
let resolve_hinted acc c ~pivot =
  let pos = Lit.of_var pivot in
  if Clause.mem pos acc && Clause.mem (Lit.neg pos) c then Clause.resolve acc c ~pivot
  else Clause.resolve c acc ~pivot

(* --- varints --- *)

(* Unsigned LEB128: 7 value bits per byte, high bit set on all but the
   last.  Every quantity in the format is non-negative by construction
   (internal literals are [2*var + sign], references are positive
   backward deltas), so no zigzag encoding is needed. *)
let put_varint buf v =
  assert (v >= 0);
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Sorted strictly-increasing int lists (clause literals, delete sets)
   are stored as a first absolute value followed by positive gaps. *)
let put_deltas buf arr =
  put_varint buf (Array.length arr);
  Array.iteri (fun i v -> put_varint buf (if i = 0 then v else v - arr.(i - 1))) arr

(* --- encoding --- *)

(* Position of the last record referencing each node of [order]
   (indexed by position).  The root is pinned to the final position so
   it is never scheduled for deletion. *)
let last_uses proof order pos_of =
  let n = Array.length order in
  let last = Array.make n (-1) in
  Array.iteri
    (fun pos id ->
      match R.node proof id with
      | R.Leaf _ -> ()
      | R.Chain { antecedents; _ } ->
        Array.iter (fun a -> last.(Hashtbl.find pos_of a) <- pos) antecedents)
    order;
  last.(n - 1) <- n - 1;
  last

(* Shared emission plan: the just-in-time node order (a leaf enters the
   stream immediately before its first consumer instead of up front, so
   a streaming checker's live set never holds formula clauses it has no
   use for yet; chains keep their topological order), the delete
   schedule, and — for the hinted format — the shard end positions
   derived from the caller's proof-id boundaries.  Both encoders share
   this plan, so v1 and v3 certificates of the same proof have the same
   node order, the same delete records and therefore the same peak live
   set. *)
let emission_plan ?(boundaries = [||]) ?(min_shard_nodes = 1) proof ~root =
  let cone = R.reachable proof ~root in
  let bnds = List.sort_uniq compare (Array.to_list boundaries) |> Array.of_list in
  let nb = Array.length bnds in
  let bi = ref 0 in
  let raw_ends = ref [] in
  let emitted = Hashtbl.create (Array.length cone) in
  let order = Array.make (Array.length cone) (-1) in
  let count = ref 0 in
  let emit id =
    if not (Hashtbl.mem emitted id) then begin
      Hashtbl.add emitted id !count;
      order.(!count) <- id;
      incr count
    end
  in
  Array.iter
    (fun id ->
      (match R.node proof id with
      | R.Leaf _ -> ()
      | R.Chain { antecedents; _ } ->
        Array.iter emit antecedents;
        emit id);
      (* A boundary names the last proof id of a section: close the
         shard once every cone node up to it has been emitted. *)
      while !bi < nb && bnds.(!bi) <= id do
        raw_ends := !count :: !raw_ends;
        incr bi
      done)
    cone;
  emit root (* a leaf-only proof has no chain to pull the root in *);
  let n = !count in
  (* Coalesce: drop empty shards and shards below [min_shard_nodes]
     (tiny shards cost export-table bytes for no parallelism); the
     final shard — the stitch section — always ends at [n]. *)
  let ends =
    let kept = ref [] and prev = ref 0 in
    List.iter
      (fun e ->
        if e < n && e - !prev >= min_shard_nodes then begin
          kept := e :: !kept;
          prev := e
        end)
      (List.rev !raw_ends);
    Array.of_list (List.rev (n :: !kept))
  in
  let last = last_uses proof order emitted in
  let deletable = Array.make n [] in
  for pos = n - 2 downto 0 do
    let u = last.(pos) in
    if u >= 0 then deletable.(u) <- pos :: deletable.(u)
  done;
  (order, emitted, n, deletable, ends)

(* Append the record(s) for position [pos] — the node and, right after
   it, any delete record that becomes possible there.  Identical byte
   layout in both versions except that hinted chains carry their pivot
   variables after the antecedent references. *)
let put_record buf proof emitted ~hinted pos id deletable deletes =
  (match R.node proof id with
  | R.Leaf { clause; assumption } ->
    Buffer.add_char buf (if assumption then '\001' else '\000');
    put_deltas buf (Clause.lits clause)
  | R.Chain { antecedents; pivots; _ } ->
    Buffer.add_char buf '\002';
    put_varint buf (Array.length antecedents);
    Array.iter (fun a -> put_varint buf (pos - Hashtbl.find emitted a)) antecedents;
    if hinted then Array.iter (put_varint buf) pivots);
  match deletable.(pos) with
  | [] -> ()
  | dead ->
    incr deletes;
    Buffer.add_char buf '\003';
    put_deltas buf (Array.of_list dead)

let record_size_obs reg n deletes bytes =
  Obs.Counter.add (Obs.Registry.counter reg "proof.bin.nodes") n;
  Obs.Counter.add (Obs.Registry.counter reg "proof.bin.delete_records") deletes;
  Obs.Gauge.add (Obs.Registry.gauge reg "proof.bin.bytes") (float_of_int bytes)

let encode proof ~root =
  let order, emitted, n, deletable, _ends = emission_plan proof ~root in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_varint buf n;
  let deletes = ref 0 in
  Array.iteri (fun pos id -> put_record buf proof emitted ~hinted:false pos id deletable deletes) order;
  record_size_obs (Obs.ambient ()) n !deletes (Buffer.length buf);
  Buffer.contents buf

let encode_hinted ?boundaries ?(min_shard_nodes = 256) proof ~root =
  let order, emitted, n, deletable, ends =
    emission_plan ?boundaries ~min_shard_nodes proof ~root
  in
  let s_count = Array.length ends in
  let shard_of = Array.make n 0 in
  let s = ref 0 in
  for pos = 0 to n - 1 do
    while pos >= ends.(!s) do
      incr s
    done;
    shard_of.(pos) <- !s
  done;
  (* A node referenced from a later shard must be exported: its
     position and result clause go in the header so that shard's
     checker can start without replaying earlier shards. *)
  let exported = Array.make n false in
  Array.iteri
    (fun q id ->
      match R.node proof id with
      | R.Leaf _ -> ()
      | R.Chain { antecedents; _ } ->
        Array.iter
          (fun a ->
            let p = Hashtbl.find emitted a in
            if shard_of.(p) < shard_of.(q) then exported.(p) <- true)
          antecedents)
    order;
  let exports = Array.make s_count [] in
  for p = n - 1 downto 0 do
    if exported.(p) then exports.(shard_of.(p)) <- p :: exports.(shard_of.(p))
  done;
  let bodies = Array.init s_count (fun _ -> Buffer.create 1024) in
  let deletes = ref 0 in
  Array.iteri
    (fun pos id ->
      put_record bodies.(shard_of.(pos)) proof emitted ~hinted:true pos id deletable deletes)
    order;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version_hinted);
  put_varint buf n;
  put_varint buf s_count;
  let prev_end = ref 0 in
  let export_count = ref 0 in
  Array.iteri
    (fun s e ->
      put_varint buf (e - !prev_end);
      prev_end := e;
      put_varint buf (Buffer.length bodies.(s));
      put_varint buf (List.length exports.(s));
      let prev_pos = ref 0 in
      List.iteri
        (fun i p ->
          incr export_count;
          put_varint buf (if i = 0 then p else p - !prev_pos);
          prev_pos := p;
          put_deltas buf (Clause.lits (R.clause_of proof order.(p))))
        exports.(s))
    ends;
  Array.iter (Buffer.add_buffer buf) bodies;
  let reg = Obs.ambient () in
  record_size_obs reg n !deletes (Buffer.length buf);
  Obs.Counter.add (Obs.Registry.counter reg "proof.bin.shards") s_count;
  Obs.Counter.add (Obs.Registry.counter reg "proof.bin.exports") !export_count;
  Buffer.contents buf

let is_binary data =
  String.length data > String.length magic && String.sub data 0 (String.length magic) = magic

let is_hinted data =
  is_binary data
  && String.length data > String.length magic
  && Char.code data.[String.length magic] = version_hinted

(* --- record reader --- *)

type reader = {
  data : string;
  mutable pos : int;
  declared : int;  (** node count from the header *)
  mutable defined : int;  (** node records consumed so far *)
  version : int;
  shards : shard array;
}

let declared_nodes r = r.declared
let defined_nodes r = r.defined
let offset r = r.pos
let version_of r = r.version
let shards r = r.shards
let shard_reader r i = { r with pos = r.shards.(i).byte_start; defined = r.shards.(i).start_pos }

let get_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= String.length r.data then corrupt r.pos "truncated varint";
    if !shift > 56 then corrupt r.pos "varint overflow";
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let get_deltas r ~what =
  let k = get_varint r in
  if k > String.length r.data - r.pos then corrupt r.pos "%s length overruns the data" what;
  let arr = Array.make k 0 in
  for i = 0 to k - 1 do
    let d = get_varint r in
    if i = 0 then arr.(0) <- d
    else if d = 0 then corrupt r.pos "non-increasing %s" what
    else arr.(i) <- arr.(i - 1) + d
  done;
  arr

(* Shard-table parse for the hinted format: strictly increasing end
   positions covering all nodes, per-shard body byte lengths that sum
   to exactly the remaining data, and per-shard export lists (position
   + result clause) for every node referenced across a boundary. *)
let read_shard_table r declared =
  let s_count = get_varint r in
  if s_count = 0 then corrupt r.pos "zero shards";
  if s_count > declared then corrupt r.pos "more shards than nodes";
  let ends = Array.make s_count 0 in
  let lens = Array.make s_count 0 in
  let exports = Array.make s_count [||] in
  let prev_end = ref 0 in
  for s = 0 to s_count - 1 do
    let start = !prev_end in
    let d = get_varint r in
    if d = 0 then corrupt r.pos "empty shard";
    let e = start + d in
    if e > declared then corrupt r.pos "shard end beyond the node count";
    ends.(s) <- e;
    prev_end := e;
    lens.(s) <- get_varint r;
    let ec = get_varint r in
    if ec > String.length r.data - r.pos then corrupt r.pos "export count overruns the data";
    let prev_pos = ref 0 in
    exports.(s) <-
      Array.init ec (fun i ->
          let d = get_varint r in
          let p = if i = 0 then d else !prev_pos + d in
          if i > 0 && d = 0 then corrupt r.pos "non-increasing export positions";
          if p < start || p >= e then corrupt r.pos "export position outside its shard";
          prev_pos := p;
          let lits = get_deltas r ~what:"export clause literals" in
          let clause =
            try Clause.of_array lits
            with Invalid_argument msg -> corrupt r.pos "bad export clause: %s" msg
          in
          (p, clause))
  done;
  if ends.(s_count - 1) <> declared then corrupt r.pos "shard table does not cover all nodes";
  let body_start = r.pos in
  let total = Array.fold_left ( + ) 0 lens in
  if total <> String.length r.data - body_start then
    corrupt r.pos "shard byte lengths disagree with the data size";
  let byte_start = ref body_start in
  Array.init s_count (fun s ->
      let start_pos = if s = 0 then 0 else ends.(s - 1) in
      let sh =
        {
          start_pos;
          end_pos = ends.(s);
          byte_start = !byte_start;
          byte_stop = !byte_start + lens.(s);
          exports = exports.(s);
        }
      in
      byte_start := sh.byte_stop;
      sh)

let reader data =
  if not (is_binary data) then corrupt 0 "bad magic (not a %s certificate)" magic;
  let vpos = String.length magic in
  let v = Char.code data.[vpos] in
  if v <> version && v <> version_hinted then
    corrupt vpos "unsupported format version %d (want %d or %d)" v version version_hinted;
  let r = { data; pos = vpos + 1; declared = 0; defined = 0; version = v; shards = [||] } in
  let declared = get_varint r in
  if declared = 0 then corrupt r.pos "empty certificate";
  (* Every node record takes at least one byte, so a count beyond the
     data size is corrupt — checked before any count-sized allocation. *)
  if declared > String.length data then corrupt r.pos "node count overruns the data";
  let shards =
    if v = version then
      [|
        {
          start_pos = 0;
          end_pos = declared;
          byte_start = r.pos;
          byte_stop = String.length data;
          exports = [||];
        };
      |]
    else read_shard_table r declared
  in
  { r with declared; shards }

let next r =
  if r.pos >= String.length r.data then begin
    if r.defined < r.declared then
      corrupt r.pos "certificate ends after %d of %d nodes" r.defined r.declared;
    None
  end
  else begin
    let at = r.pos in
    let tag = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    (* Delete records may trail the final node (freeing the root's
       antecedents); further node records may not. *)
    if tag <> 3 && r.defined = r.declared then corrupt at "trailing bytes after the last node";
    match tag with
    | 0 | 1 ->
      let lits = get_deltas r ~what:"clause literals" in
      let clause =
        try Clause.of_array lits
        with Invalid_argument msg -> corrupt at "bad leaf clause: %s" msg
      in
      r.defined <- r.defined + 1;
      Some (Leaf { clause; assumption = tag = 1 })
    | 2 ->
      let pos = r.defined in
      let k = get_varint r in
      if k < 2 then corrupt at "chain with %d antecedents" k;
      if k > String.length r.data - at then corrupt at "chain length overruns the data";
      let antecedents =
        Array.init k (fun _ ->
            let d = get_varint r in
            if d = 0 || d > pos then corrupt at "antecedent reference out of range";
            pos - d)
      in
      let pivots =
        if r.version = version_hinted then Array.init (k - 1) (fun _ -> get_varint r) else [||]
      in
      r.defined <- r.defined + 1;
      Some (Chain { antecedents; pivots })
    | 3 ->
      let ids = get_deltas r ~what:"delete ids" in
      if Array.length ids = 0 then corrupt at "empty delete record";
      if ids.(Array.length ids - 1) >= r.defined then
        corrupt at "delete of an undefined node";
      Some (Delete ids)
    | t -> corrupt at "unknown record tag %d" t
  end

(* --- decoding --- *)

let decode data =
  match
    let r = reader data in
    let dst = R.create () in
    let ids = Array.make (declared_nodes r) (-1) in
    let rec loop () =
      match next r with
      | None -> ()
      | Some record ->
        (match record with
        | Leaf { clause; assumption } ->
          ids.(r.defined - 1) <- R.add_leaf ~assumption dst clause
        | Chain { antecedents; pivots = hints } ->
          let antecedents = Array.map (fun p -> ids.(p)) antecedents in
          let pivots = Array.make (Array.length antecedents - 1) 0 in
          let acc = ref (R.clause_of dst antecedents.(0)) in
          for i = 1 to Array.length antecedents - 1 do
            if Array.length hints > 0 then begin
              (* Hinted chain: follow the stored pivot, no search. *)
              let pivot = hints.(i - 1) in
              match resolve_hinted !acc (R.clause_of dst antecedents.(i)) ~pivot with
              | resolvent ->
                pivots.(i - 1) <- pivot;
                acc := resolvent
              | exception Invalid_argument msg ->
                corrupt (offset r) "invalid hinted resolution step: %s" msg
            end
            else
              match resolve_step !acc (R.clause_of dst antecedents.(i)) with
              | None -> corrupt (offset r) "no clashing variable in resolution step"
              | Some (resolvent, pivot) ->
                pivots.(i - 1) <- pivot;
                acc := resolvent
              | exception Invalid_argument msg ->
                corrupt (offset r) "invalid resolution step: %s" msg
          done;
          ids.(r.defined - 1) <- R.add_chain dst ~clause:!acc ~antecedents ~pivots
        | Delete _ -> () (* memory-management advice; nothing to free here *));
        loop ()
    in
    loop ();
    (dst, ids.(declared_nodes r - 1))
  with
  | result -> result
  | exception Corrupt { offset; reason } ->
    failwith (Printf.sprintf "Binfmt.decode: byte %d: %s" offset reason)
