module Clause = Cnf.Clause
module Lit = Aig.Lit
module R = Resolution

let magic = "CECB"
let version = 1

exception Corrupt of { offset : int; reason : string }

let corrupt offset fmt = Printf.ksprintf (fun reason -> raise (Corrupt { offset; reason })) fmt

type record =
  | Leaf of { clause : Clause.t; assumption : bool }
  | Chain of { antecedents : int array }
  | Delete of int array

(* One step of trivial resolution with the pivot re-derived instead of
   stored: a non-tautological resolvent exists only when exactly one
   variable clashes between the operands, so the format omits pivots
   entirely (they are about half of every chain's bytes) and readers
   recover them here.  Returns [None] when nothing clashes; picking the
   first clash is safe because a second one would make any resolvent a
   tautology, which [Clause.resolve] rejects.  The orientation mirrors
   [Resolution.recompute_chain]. *)
let resolve_step acc c =
  let pivot = ref (-1) in
  (try
     Clause.iter
       (fun l ->
         if Clause.mem (Lit.neg l) c then begin
           pivot := Lit.var l;
           raise Exit
         end)
       acc
   with Exit -> ());
  if !pivot < 0 then None
  else
    let pivot = !pivot in
    let pos = Lit.of_var pivot in
    let resolvent =
      if Clause.mem pos acc && Clause.mem (Lit.neg pos) c then Clause.resolve acc c ~pivot
      else Clause.resolve c acc ~pivot
    in
    Some (resolvent, pivot)

(* --- varints --- *)

(* Unsigned LEB128: 7 value bits per byte, high bit set on all but the
   last.  Every quantity in the format is non-negative by construction
   (internal literals are [2*var + sign], references are positive
   backward deltas), so no zigzag encoding is needed. *)
let put_varint buf v =
  assert (v >= 0);
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Sorted strictly-increasing int lists (clause literals, delete sets)
   are stored as a first absolute value followed by positive gaps. *)
let put_deltas buf arr =
  put_varint buf (Array.length arr);
  Array.iteri (fun i v -> put_varint buf (if i = 0 then v else v - arr.(i - 1))) arr

(* --- encoding --- *)

(* Position of the last record referencing each node of [order]
   (indexed by position).  The root is pinned to the final position so
   it is never scheduled for deletion. *)
let last_uses proof order pos_of =
  let n = Array.length order in
  let last = Array.make n (-1) in
  Array.iteri
    (fun pos id ->
      match R.node proof id with
      | R.Leaf _ -> ()
      | R.Chain { antecedents; _ } ->
        Array.iter (fun a -> last.(Hashtbl.find pos_of a) <- pos) antecedents)
    order;
  last.(n - 1) <- n - 1;
  last

let encode proof ~root =
  (* Just-in-time leaf placement: a leaf enters the stream immediately
     before its first consumer instead of up front, so the streaming
     checker's live set never holds formula clauses it has no use for
     yet.  Chains keep their topological (reachable) order. *)
  let cone = R.reachable proof ~root in
  let emitted = Hashtbl.create (Array.length cone) in
  let order = Array.make (Array.length cone) (-1) in
  let count = ref 0 in
  let emit id =
    if not (Hashtbl.mem emitted id) then begin
      Hashtbl.add emitted id !count;
      order.(!count) <- id;
      incr count
    end
  in
  Array.iter
    (fun id ->
      match R.node proof id with
      | R.Leaf _ -> ()
      | R.Chain { antecedents; _ } ->
        Array.iter emit antecedents;
        emit id)
    cone;
  emit root (* a leaf-only proof has no chain to pull the root in *);
  let n = !count in
  let last = last_uses proof order emitted in
  (* Group deletions by the position they become possible at. *)
  let deletable = Array.make n [] in
  for pos = n - 2 downto 0 do
    let u = last.(pos) in
    if u >= 0 then deletable.(u) <- pos :: deletable.(u)
  done;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_varint buf n;
  let deletes = ref 0 in
  Array.iteri
    (fun pos id ->
      (match R.node proof id with
      | R.Leaf { clause; assumption } ->
        Buffer.add_char buf (if assumption then '\001' else '\000');
        put_deltas buf (Clause.lits clause)
      | R.Chain { antecedents; _ } ->
        Buffer.add_char buf '\002';
        put_varint buf (Array.length antecedents);
        Array.iter (fun a -> put_varint buf (pos - Hashtbl.find emitted a)) antecedents);
      match deletable.(pos) with
      | [] -> ()
      | dead ->
        incr deletes;
        Buffer.add_char buf '\003';
        put_deltas buf (Array.of_list dead))
    order;
  let reg = Obs.ambient () in
  Obs.Counter.add (Obs.Registry.counter reg "proof.bin.nodes") n;
  Obs.Counter.add (Obs.Registry.counter reg "proof.bin.delete_records") !deletes;
  Obs.Gauge.add (Obs.Registry.gauge reg "proof.bin.bytes") (float_of_int (Buffer.length buf));
  Buffer.contents buf

let is_binary data =
  String.length data > String.length magic && String.sub data 0 (String.length magic) = magic

(* --- record reader --- *)

type reader = {
  data : string;
  mutable pos : int;
  declared : int;  (** node count from the header *)
  mutable defined : int;  (** node records consumed so far *)
}

let declared_nodes r = r.declared
let defined_nodes r = r.defined
let offset r = r.pos

let get_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= String.length r.data then corrupt r.pos "truncated varint";
    if !shift > 56 then corrupt r.pos "varint overflow";
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let get_deltas r ~what =
  let k = get_varint r in
  if k > String.length r.data - r.pos then corrupt r.pos "%s length overruns the data" what;
  let arr = Array.make k 0 in
  for i = 0 to k - 1 do
    let d = get_varint r in
    if i = 0 then arr.(0) <- d
    else if d = 0 then corrupt r.pos "non-increasing %s" what
    else arr.(i) <- arr.(i - 1) + d
  done;
  arr

let reader data =
  if not (is_binary data) then corrupt 0 "bad magic (not a %s certificate)" magic;
  let vpos = String.length magic in
  let v = Char.code data.[vpos] in
  if v <> version then corrupt vpos "unsupported format version %d (want %d)" v version;
  let r = { data; pos = vpos + 1; declared = 0; defined = 0 } in
  let declared = get_varint r in
  if declared = 0 then corrupt r.pos "empty certificate";
  (* Every node record takes at least one byte, so a count beyond the
     data size is corrupt — checked before any count-sized allocation. *)
  if declared > String.length data then corrupt r.pos "node count overruns the data";
  { r with declared }

let next r =
  if r.pos >= String.length r.data then begin
    if r.defined < r.declared then
      corrupt r.pos "certificate ends after %d of %d nodes" r.defined r.declared;
    None
  end
  else begin
    let at = r.pos in
    let tag = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    (* Delete records may trail the final node (freeing the root's
       antecedents); further node records may not. *)
    if tag <> 3 && r.defined = r.declared then corrupt at "trailing bytes after the last node";
    match tag with
    | 0 | 1 ->
      let lits = get_deltas r ~what:"clause literals" in
      let clause =
        try Clause.of_array lits
        with Invalid_argument msg -> corrupt at "bad leaf clause: %s" msg
      in
      r.defined <- r.defined + 1;
      Some (Leaf { clause; assumption = tag = 1 })
    | 2 ->
      let pos = r.defined in
      let k = get_varint r in
      if k < 2 then corrupt at "chain with %d antecedents" k;
      if k > String.length r.data - at then corrupt at "chain length overruns the data";
      let antecedents =
        Array.init k (fun _ ->
            let d = get_varint r in
            if d = 0 || d > pos then corrupt at "antecedent reference out of range";
            pos - d)
      in
      r.defined <- r.defined + 1;
      Some (Chain { antecedents })
    | 3 ->
      let ids = get_deltas r ~what:"delete ids" in
      if Array.length ids = 0 then corrupt at "empty delete record";
      if ids.(Array.length ids - 1) >= r.defined then
        corrupt at "delete of an undefined node";
      Some (Delete ids)
    | t -> corrupt at "unknown record tag %d" t
  end

(* --- decoding --- *)

let decode data =
  match
    let r = reader data in
    let dst = R.create () in
    let ids = Array.make (declared_nodes r) (-1) in
    let rec loop () =
      match next r with
      | None -> ()
      | Some record ->
        (match record with
        | Leaf { clause; assumption } ->
          ids.(r.defined - 1) <- R.add_leaf ~assumption dst clause
        | Chain { antecedents } ->
          let antecedents = Array.map (fun p -> ids.(p)) antecedents in
          let pivots = Array.make (Array.length antecedents - 1) 0 in
          let acc = ref (R.clause_of dst antecedents.(0)) in
          for i = 1 to Array.length antecedents - 1 do
            match resolve_step !acc (R.clause_of dst antecedents.(i)) with
            | None -> corrupt (offset r) "no clashing variable in resolution step"
            | Some (resolvent, pivot) ->
              pivots.(i - 1) <- pivot;
              acc := resolvent
            | exception Invalid_argument msg ->
              corrupt (offset r) "invalid resolution step: %s" msg
          done;
          ids.(r.defined - 1) <- R.add_chain dst ~clause:!acc ~antecedents ~pivots
        | Delete _ -> () (* memory-management advice; nothing to free here *));
        loop ()
    in
    loop ();
    (dst, ids.(declared_nodes r - 1))
  with
  | result -> result
  | exception Corrupt { offset; reason } ->
    failwith (Printf.sprintf "Binfmt.decode: byte %d: %s" offset reason)
