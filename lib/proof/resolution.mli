(** Resolution proof DAGs.

    A proof is an append-only store of nodes.  A {e leaf} holds a
    clause taken as given — a clause of the formula being refuted, or a
    temporary assumption unit (marked, so checkers and lifters can
    treat it specially).  A {e chain} is a trivial-resolution chain:
    antecedents [c0 c1 ... ck] with pivot variables [v1 ... vk],
    denoting [resolve (... resolve (resolve c0 c1 v1) c2 v2 ...) ck vk].
    Chains are exactly what a CDCL solver produces per learned clause,
    and what clause minimization extends.

    The store records the {e claimed} result clause of each chain; the
    {!Checker} recomputes and compares.  Node identifiers are dense
    integers, valid only within their own proof; {!import} re-bases a
    sub-DAG from one proof into another. *)

type id = int

type node =
  | Leaf of { clause : Cnf.Clause.t; assumption : bool }
  | Chain of { clause : Cnf.Clause.t; antecedents : id array; pivots : int array }

type t

val create : unit -> t

(** Number of nodes allocated so far. *)
val size : t -> int

(** [add_leaf t clause] registers an input clause and returns its id.
    Leaves are hash-consed per proof: re-adding the same non-assumption
    clause returns the existing id. *)
val add_leaf : ?assumption:bool -> t -> Cnf.Clause.t -> id

(** [add_chain t ~clause ~antecedents ~pivots] appends a chain.
    @raise Invalid_argument unless
    [Array.length antecedents = Array.length pivots + 1 >= 2]
    and all antecedent ids are already allocated. *)
val add_chain : t -> clause:Cnf.Clause.t -> antecedents:id array -> pivots:int array -> id

val node : t -> id -> node

(** Result clause of any node. *)
val clause_of : t -> id -> Cnf.Clause.t

val is_assumption : t -> id -> bool

val iter : (id -> node -> unit) -> t -> unit

(** Node ids reachable from [root] (including it), in increasing
    (hence topological) order. *)
val reachable : t -> root:id -> id array

(** [import dst src ~root ~map_leaf] copies the sub-DAG of [src]
    rooted at [root] into [dst].  Every [src] leaf is translated by
    [map_leaf], which returns the [dst] node standing for it — either a
    [dst] leaf or a previously derived [dst] chain (this is how lemma
    sub-proofs are stitched into the global proof).  Returns the [dst]
    id of the root.  Chains are copied verbatim with re-based ids. *)
val import : t -> t -> root:id -> map_leaf:(id -> Cnf.Clause.t -> id) -> id

(** Like {!import}, but additionally renames every literal through
    [map_lit] — clauses (leaf and chain results) and chain pivots
    alike; [map_leaf] receives the {e renamed} leaf clause.  [map_lit]
    must be injective on the variables of the sub-DAG and preserve
    polarity (map a positive literal to a positive or negative literal
    consistently with its complement), so that resolution steps remain
    valid after renaming.  This is how a refutation produced over an
    extracted cone's numbering is re-based onto the numbering of the
    graph the cone came from. *)
val import_mapped :
  t ->
  t ->
  root:id ->
  map_lit:(Aig.Lit.t -> Aig.Lit.t) ->
  map_leaf:(id -> Cnf.Clause.t -> id) ->
  id

(** Recompute the result of a chain with {!Cnf.Clause.resolve},
    ignoring the stored clause.  Raises [Invalid_argument] when a pivot
    is not actually clashing.  Exposed for the checker and tests. *)
val recompute_chain : t -> antecedents:id array -> pivots:int array -> Cnf.Clause.t

val pp_node : Format.formatter -> node -> unit
