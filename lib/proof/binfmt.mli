(** Compact binary certificates.

    The dense ASCII trace ({!Export.trace_to_string}) spells every
    node id, literal and {e result clause} out in decimal; for shipping
    and storing certificates this module provides a binary format that
    is typically several times smaller and — unlike the trace — can be
    validated in one forward pass holding only live clauses
    ({!Stream_check}).

    {2 Format}

    {v
    "CECB" <version byte>
    varint: node count n
    then records; node records are numbered 0..n-1 in order:
      tag 0x00  leaf            varint k, k delta-coded literals
      tag 0x01  assumption leaf same layout as a leaf
      tag 0x02  chain           varint k (#antecedents, >= 2), then k
                                antecedent references, each the positive
                                backward delta [pos - ref]
      tag 0x03  delete          varint m, m delta-coded node ids whose
                                clauses are dead from here on
    v}

    All integers are unsigned LEB128 varints; literals use the internal
    [2*var + sign] encoding and, like delete-id lists, are sorted and
    gap-coded.  Chains store {e no result clause and no pivots}: a
    non-tautological resolvent exists only when exactly one variable
    clashes between the operands, so readers re-derive each pivot
    ({!resolve_step}) and recompute each result by resolution.  A chain
    record therefore costs a couple of bytes per antecedent, and
    corrupting it cannot produce an accepted-but-wrong clause — the
    resolution either fails or derives what it derives.

    The encoder walks the cone of [root] (so encoding trims), places
    each leaf immediately before its first consumer, and emits a delete
    record after the last use of every node — computed by a
    backward-trimming pass — so a streaming checker's live set stays
    small.  The node stream is topological and the root is the final
    node record, never deleted. *)

val magic : string

(** Format version written by {!encode} and required by {!reader}. *)
val version : int

(** [true] when [data] starts with the binary certificate magic;
    ASCII traces (which start with a decimal id) never match. *)
val is_binary : string -> bool

(** Serialize the cone of [root].  Node and delete-record counts and
    the encoded size are recorded in the ambient {!Obs} registry
    ([proof.bin.nodes], [proof.bin.delete_records], [proof.bin.bytes]). *)
val encode : Resolution.t -> root:Resolution.id -> string

(** Rebuild a {!Resolution.t} (chain clauses recomputed by resolution)
    and return it with the root id.  Delete records are validated but
    not acted on — the store keeps every node.
    @raise Failure on malformed input or an invalid resolution step. *)
val decode : string -> Resolution.t * Resolution.id

(** {2 Record-level reader}

    Shared by {!decode} and {!Stream_check}: iterate the records of a
    certificate without materializing the DAG. *)

exception Corrupt of { offset : int; reason : string }

type record =
  | Leaf of { clause : Cnf.Clause.t; assumption : bool }
  | Chain of { antecedents : int array }
      (** antecedent values are node positions, already delta-resolved *)
  | Delete of int array  (** sorted node positions, already defined *)

(** [resolve_step acc c] re-derives one trivial-resolution step: finds
    the clashing variable between [acc] and [c], resolves on it
    (oriented like {!Resolution.recompute_chain}) and returns the
    resolvent with the pivot.  [None] when no variable clashes.
    @raise Invalid_argument when the resolvent is a tautology (two or
    more clashing variables). *)
val resolve_step : Cnf.Clause.t -> Cnf.Clause.t -> (Cnf.Clause.t * int) option

type reader

(** Validate the magic, version and node count.  @raise Corrupt. *)
val reader : string -> reader

(** Node count declared by the header. *)
val declared_nodes : reader -> int

(** Node records consumed so far; the node defined by the latest
    [Leaf]/[Chain] record has position [defined_nodes r - 1]. *)
val defined_nodes : reader -> int

(** Current byte offset (for error reporting). *)
val offset : reader -> int

(** Next record, or [None] at a clean end of data.  Structural
    validation only (tags, bounds, reference ranges, monotonicity);
    resolution steps are the caller's business.  @raise Corrupt. *)
val next : reader -> record option
