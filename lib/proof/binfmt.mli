(** Compact binary certificates.

    The dense ASCII trace ({!Export.trace_to_string}) spells every
    node id, literal and {e result clause} out in decimal; for shipping
    and storing certificates this module provides a binary format that
    is typically several times smaller and — unlike the trace — can be
    validated in one forward pass holding only live clauses
    ({!Stream_check}, {!Hint_check}).

    {2 Format}

    {v
    "CECB" <version byte>
    -- version 2 (hinted) only:
    varint: node count n
    varint: shard count S, then S shard entries:
      varint  end position delta (strictly increasing, last end = n)
      varint  body byte length of the shard's record span
      varint  export count e, then e exports:
        varint  node position delta (ascending, within the shard)
        varint k, k delta-coded literals (the node's result clause)
    -- version 1 starts records right after the node count:
    then records; node records are numbered 0..n-1 in order:
      tag 0x00  leaf            varint k, k delta-coded literals
      tag 0x01  assumption leaf same layout as a leaf
      tag 0x02  chain           varint k (#antecedents, >= 2), then k
                                antecedent references, each the positive
                                backward delta [pos - ref]; version 2
                                additionally stores k-1 pivot variables
                                (the resolution hints)
      tag 0x03  delete          varint m, m delta-coded node ids whose
                                clauses are dead from here on
    v}

    All integers are unsigned LEB128 varints; literals use the internal
    [2*var + sign] encoding and, like delete-id lists, are sorted and
    gap-coded.  Version-1 chains store {e no result clause and no
    pivots}: a non-tautological resolvent exists only when exactly one
    variable clashes between the operands, so readers re-derive each
    pivot ({!resolve_step}) and recompute each result by resolution.
    Version-2 (hinted, LRAT/GRIT-style) chains additionally spell the
    pivot sequence out, so a checker follows the hints with {e zero
    search} ({!resolve_hinted}); a corrupted hint either names a
    non-clashing variable or yields a tautology, so it can never
    produce an accepted-but-wrong clause.

    The hinted header also carries a {e shard table}: the node stream
    is split at the partition boundaries the prover recorded (the
    stitch structure of {!Lift}-lifted per-partition refutations), and
    every node referenced across a shard boundary is {e exported} —
    its position and result clause appear in the header — so shards
    validate concurrently and join at the stitch points
    ({!Hint_check}).  A single-shard table (no boundaries) degenerates
    to the version-1 layout plus hints.

    The encoders walk the cone of [root] (so encoding trims), place
    each leaf immediately before its first consumer, and emit a delete
    record after the last use of every node — computed by a
    backward-trimming pass — so a streaming checker's live set stays
    small.  Both versions share the same emission plan: identical node
    order and delete schedule, hence identical peak live set.  The node
    stream is topological and the root is the final node record, never
    deleted. *)

val magic : string

(** Format version written by {!encode}. *)
val version : int

(** Format version written by {!encode_hinted}. *)
val version_hinted : int

(** [true] when [data] starts with the binary certificate magic;
    ASCII traces (which start with a decimal id) never match. *)
val is_binary : string -> bool

(** [true] when [data] is a binary certificate in the hinted
    (version-2) format. *)
val is_hinted : string -> bool

(** Serialize the cone of [root].  Node and delete-record counts and
    the encoded size are recorded in the ambient {!Obs} registry
    ([proof.bin.nodes], [proof.bin.delete_records], [proof.bin.bytes]). *)
val encode : Resolution.t -> root:Resolution.id -> string

(** Serialize the cone of [root] in the hinted format.  [boundaries]
    are proof ids marking the {e last node of each section} (partition
    sub-derivations recorded at stitch or sweep time); each becomes a
    shard end once mapped to stream positions.  Boundaries outside the
    cone, duplicated, or delimiting shards smaller than
    [min_shard_nodes] (default 256) are coalesced away; no boundaries
    means one shard.  Also records [proof.bin.shards] and
    [proof.bin.exports] in the ambient registry. *)
val encode_hinted :
  ?boundaries:Resolution.id array ->
  ?min_shard_nodes:int ->
  Resolution.t ->
  root:Resolution.id ->
  string

(** Rebuild a {!Resolution.t} and return it with the root id.  Chain
    clauses are recomputed by resolution — following the stored hints
    for version-2 input, by clash search for version-1.  Delete records
    are validated but not acted on — the store keeps every node.
    @raise Failure on malformed input or an invalid resolution step. *)
val decode : string -> Resolution.t * Resolution.id

(** {2 Record-level reader}

    Shared by {!decode}, {!Stream_check} and {!Hint_check}: iterate the
    records of a certificate without materializing the DAG. *)

exception Corrupt of { offset : int; reason : string }

type record =
  | Leaf of { clause : Cnf.Clause.t; assumption : bool }
  | Chain of { antecedents : int array; pivots : int array }
      (** antecedent values are node positions, already delta-resolved;
          [pivots] has one hint per resolution step for version-2 input
          and is empty for version-1 *)
  | Delete of int array  (** sorted node positions, already defined *)

(** One contiguous slice of the node stream, from the header's shard
    table (version 1 synthesizes a single all-covering shard).
    Positions [start_pos..end_pos-1] live in bytes
    [byte_start..byte_stop-1]; [exports] lists, in ascending position
    order, the nodes later shards reference together with their
    declared result clauses. *)
type shard = {
  start_pos : int;
  end_pos : int;
  byte_start : int;
  byte_stop : int;
  exports : (int * Cnf.Clause.t) array;
}

(** [resolve_step acc c] re-derives one trivial-resolution step: finds
    the clashing variable between [acc] and [c], resolves on it
    (oriented like {!Resolution.recompute_chain}) and returns the
    resolvent with the pivot.  [None] when no variable clashes.
    @raise Invalid_argument when the resolvent is a tautology (two or
    more clashing variables). *)
val resolve_step : Cnf.Clause.t -> Cnf.Clause.t -> (Cnf.Clause.t * int) option

(** [resolve_hinted acc c ~pivot] performs one step on the stored
    pivot, with no search (oriented like {!Resolution.recompute_chain}).
    @raise Invalid_argument when [pivot] does not clash between the
    operands or the resolvent is a tautology. *)
val resolve_hinted : Cnf.Clause.t -> Cnf.Clause.t -> pivot:int -> Cnf.Clause.t

type reader

(** Validate the magic, version, node count and (hinted format) the
    whole shard table.  @raise Corrupt. *)
val reader : string -> reader

(** Node count declared by the header. *)
val declared_nodes : reader -> int

(** Node records consumed so far; the node defined by the latest
    [Leaf]/[Chain] record has position [defined_nodes r - 1]. *)
val defined_nodes : reader -> int

(** Current byte offset (for error reporting). *)
val offset : reader -> int

(** Format version byte the data carries ({!version} or
    {!version_hinted}). *)
val version_of : reader -> int

(** The shard table; a single synthetic shard for version-1 data. *)
val shards : reader -> shard array

(** [shard_reader r i] is a fresh reader positioned at the first byte
    of shard [i], with [defined_nodes] pre-set to its start position —
    the entry point for checking shards independently. *)
val shard_reader : reader -> int -> reader

(** Next record, or [None] at a clean end of data.  Structural
    validation only (tags, bounds, reference ranges, monotonicity);
    resolution steps and shard-boundary discipline are the caller's
    business.  @raise Corrupt. *)
val next : reader -> record option
