let cone proof ~root =
  let dst = Resolution.create () in
  let map_leaf src_id clause =
    Resolution.add_leaf ~assumption:(Resolution.is_assumption proof src_id) dst clause
  in
  let root' = Resolution.import dst proof ~root ~map_leaf in
  let reg = Obs.ambient () in
  Obs.Counter.add (Obs.Registry.counter reg "proof.trim_input") (Resolution.size proof);
  Obs.Counter.add (Obs.Registry.counter reg "proof.trim_kept") (Resolution.size dst);
  (dst, root')

let sizes proof ~root =
  (Array.length (Resolution.reachable proof ~root), Resolution.size proof)
