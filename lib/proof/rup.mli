(** Reverse-unit-propagation (RUP / DRUP) checking.

    A clause [C] has the RUP property with respect to a formula [F]
    when unit propagation on [F ∧ ¬C] derives a conflict.  Every clause
    a CDCL solver learns is RUP, so the derived-clause stream exported
    by {!Export.drup_to_string} is verifiable without any resolution
    information — a second, completely independent checking path beside
    {!Checker}. *)

type error = {
  index : int;  (** 0-based position in the stream *)
  clause : Cnf.Clause.t;
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

(** [check_clause formula lemmas c] decides whether [c] is RUP with
    respect to [formula]'s clauses plus the [lemmas] accepted so far. *)
val check_clause : Cnf.Formula.t -> Cnf.Clause.t list -> Cnf.Clause.t -> bool

(** [check_stream formula lemmas] verifies each lemma in order (each
    may use the previous ones) and requires the last to be the empty
    clause.  Returns the number of lemmas verified. *)
val check_stream : Cnf.Formula.t -> Cnf.Clause.t list -> (int, error) result

(** Parse a DRUP file and verify it.  Accepts the output of
    {!Export.drup_to_string} as well as solver-produced files with
    [c] comment lines, [d <lits> 0] deletion lines (ignored — this
    checker keeps every lemma) and CRLF line endings.
    @raise Failure on malformed text. *)
val check_drup_string : Cnf.Formula.t -> string -> (int, error) result
