(* Positional parser for the {!Obs.Export.stats_json} shape: the
   exporter emits ["counters"] first and ["gauges"] second, always,
   so the sections are parsed in order rather than searched for —
   a histogram named [*.counters] can never be mistaken for a
   section header. *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> fail "expected %C at byte %d, found %C" ch c.i x
  | None -> fail "expected %C at byte %d, found end of input" ch c.i

let expect_str c lit =
  let n = String.length lit in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = lit then c.i <- c.i + n
  else fail "expected %S at byte %d" lit c.i

let name_char ch = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9')
                   || ch = '.' || ch = '_' || ch = '-'

let parse_name c =
  expect c '"';
  let start = c.i in
  while match peek c with Some ch when name_char ch -> true | _ -> false do
    c.i <- c.i + 1
  done;
  if c.i = start then fail "empty or malformed name at byte %d" start;
  let name = String.sub c.s start (c.i - start) in
  expect c '"';
  name

let number_char ch = (ch >= '0' && ch <= '9') || ch = '.' || ch = '-' || ch = '+'
                     || ch = 'e' || ch = 'E' || ch = 'n' || ch = 'a' || ch = 'i' || ch = 'f'

let parse_number c =
  let start = c.i in
  while match peek c with Some ch when number_char ch -> true | _ -> false do
    c.i <- c.i + 1
  done;
  if c.i = start then fail "expected a number at byte %d" start;
  String.sub c.s start (c.i - start)

(* One flat section body: ["name":number{,"name":number}] between the
   braces.  The opening ["section":{ ] has already been consumed. *)
let parse_section c =
  let pairs = ref [] in
  (match peek c with
  | Some '}' -> ()
  | _ ->
    let rec loop () =
      let name = parse_name c in
      expect c ':';
      let value = parse_number c in
      pairs := (name, value) :: !pairs;
      match peek c with
      | Some ',' ->
        c.i <- c.i + 1;
        loop ()
      | _ -> ()
    in
    loop ());
  expect c '}';
  List.rev !pairs

let parse_prefix line =
  let c = { s = String.trim line; i = 0 } in
  expect_str c "{\"counters\":{";
  let counters = parse_section c in
  expect_str c ",\"gauges\":{";
  let gauges = parse_section c in
  (* The histogram section (and anything after it) is deliberately not
     parsed — see the interface. *)
  (counters, gauges)

let int_of name v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> fail "counter %s: %S is not an integer" name v

let float_of name v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail "gauge %s: %S is not a number" name v

let counters line =
  match parse_prefix line with
  | cs, _ -> Ok (List.map (fun (n, v) -> (n, int_of n v)) cs)
  | exception Bad msg -> Error msg

let gauges line =
  match parse_prefix line with
  | _, gs -> Ok (List.map (fun (n, v) -> (n, float_of n v)) gs)
  | exception Bad msg -> Error msg

let merge_into reg line =
  match parse_prefix line with
  | exception Bad msg -> Error msg
  | cs, gs -> (
    (* Validate both sections before mutating anything: a snapshot
       whose tail is garbled must not half-apply. *)
    match
      ( List.map (fun (n, v) -> (n, int_of n v)) cs,
        List.map (fun (n, v) -> (n, float_of n v)) gs )
    with
    | exception Bad msg -> Error msg
    | cs, gs ->
      List.iter (fun (n, v) -> Obs.Counter.add (Obs.Registry.counter reg n) v) cs;
      List.iter
        (fun (n, v) ->
          let g = Obs.Registry.gauge reg n in
          Obs.Gauge.set g (Float.max (Obs.Gauge.get g) v))
        gs;
      Ok ())
