type t = {
  capacity : int;
  lock : Mutex.t;
  mutable in_flight : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { capacity; lock = Mutex.create (); in_flight = 0 }

let capacity t = t.capacity
let in_flight t = Mutex.protect t.lock (fun () -> t.in_flight)

let try_acquire t =
  Mutex.protect t.lock (fun () ->
      if t.in_flight >= t.capacity then false
      else begin
        t.in_flight <- t.in_flight + 1;
        true
      end)

let release t =
  Mutex.protect t.lock (fun () ->
      if t.in_flight <= 0 then invalid_arg "Admission.release: no slot held";
      t.in_flight <- t.in_flight - 1)

let with_slot t f =
  if try_acquire t then Some (Fun.protect ~finally:(fun () -> release t) f) else None
