(** The fleet front end: a stateless router that speaks the same
    line-delimited {!Service.Protocol} as the shard daemons and fans
    [check] traffic out over a {!Ring} of shards.

    {2 Routing}

    A [check] request is parsed and keyed exactly as a shard would key
    it (normalize, {!Service.Key.of_pair}), so the router and every
    shard agree on identity by construction.  The key's replica set —
    the first [replicas] distinct shards clockwise on the ring — is
    tried in preference order; the first shard that completes the
    exchange answers the client verbatim.  The router never interprets
    verdicts: certificates are produced, stored and validated by the
    shards, so the fleet path adds no trust surface — a certificate
    fetched through the router is byte-identical to one fetched from
    the shard directly.

    {2 Failover}

    Forward failures (refused/timed-out connects, mid-exchange EOFs)
    mark the shard down via {!Health} and fall through to the next
    replica; shards marked down are skipped up front and re-tried only
    as a last resort (they may have recovered since the last probe).
    A background prober pings every shard each [probe_interval_ms], so
    a restarted shard rejoins the rotation without traffic having to
    discover it.  With [replicas >= 2], a solved-on-primary verdict is
    also replayed to the remaining replica set in the background
    (fire-and-forget), so the replicas' stores stay warm and a shard
    loss costs availability of nothing.

    {2 Admission control}

    {!Admission} caps in-flight forwards per shard; a saturated
    replica set — or a full router queue — is answered immediately
    with a typed [overloaded] error carrying [retry_after_ms], which
    the retrying {!Service.Client} backs off on.  Requests the router
    cannot place at all (every replica down and unreachable) get a
    typed [unavailable] error.  Accepted connections are always
    answered.

    {2 Aggregation}

    The router's own counters live in an {!Obs} registry under
    [fleet.*].  A [metrics] request polls every shard's [metrics]
    endpoint, folds the snapshots together with {!Snapshot} (counters
    add, gauges max — the same associative merge used for worker
    domains) and answers with one fleet-wide flat-JSON snapshot; the
    same snapshot is written to [stats_out] at shutdown.  [stats]
    answers a cheap router-local summary without touching shards. *)

type shard = {
  id : string;  (** ring identity; stable across restarts *)
  addr : Service.Addr.t;  (** where the shard daemon listens *)
}

type config = {
  listen : Service.Addr.t;
  shards : shard list;
  replicas : int;  (** replica-set size per key (clamped to 1..N) *)
  vnodes : int;  (** ring points per shard *)
  workers : int;  (** forwarding worker domains (min 1) *)
  max_inflight : int;  (** per-shard in-flight forward cap *)
  queue_capacity : int;  (** accepted-connection queue bound *)
  probe_interval_ms : float;  (** health probe period *)
  connect_timeout_ms : float;  (** per-forward connect bound *)
  retry_after_ms : int;  (** hint carried by [overloaded] rejections *)
  replication_queue : int;  (** pending warm-replication bound *)
  log : bool;
  stats_out : string option;
      (** write the final fleet snapshot (router counters + last shard
          poll) here at shutdown *)
  on_listen : Service.Addr.t -> unit;
      (** called with the actual bound address (kernel-assigned port
          for TCP port 0) before the first accept *)
}

(** [replicas = 1], 64 vnodes, 4 workers, in-flight cap 8, queue 128,
    500ms probes, 250ms connect timeout, retry-after 50ms. *)
val default_config : listen:Service.Addr.t -> shards:shard list -> config

(** Run until SIGINT/SIGTERM or a [shutdown] request; drains accepted
    connections and the replication queue, then returns the final
    fleet registry (router [fleet.*] counters merged with the last
    poll of every reachable shard).
    @raise Invalid_argument on an empty shard list or duplicate ids,
    [Failure]/[Unix.Unix_error] when the listen address cannot be
    bound. *)
val run : config -> Obs.Registry.t
