(** The fleet front end: a stateless router that speaks the same
    line-delimited {!Service.Protocol} as the shard daemons and fans
    [check] traffic out over a {!Ring} of shards.

    {2 Routing}

    A [check] request is parsed and keyed exactly as a shard would key
    it (normalize, {!Service.Key.of_pair}), so the router and every
    shard agree on identity by construction.  The key's replica set —
    the first [replicas] distinct non-draining shards clockwise on the
    ring — is tried in preference order; the first shard that completes
    the exchange answers the client verbatim.  The router never
    interprets verdicts: certificates are produced, stored and
    validated by the shards, so the fleet path adds no trust surface —
    a certificate fetched through the router is byte-identical to one
    fetched from the shard directly.

    {2 Coalescing}

    Identical structural keys in flight share one shard round-trip: the
    first request leads, later ones park their connection on a
    single-flight table and are answered with the leader's response
    (counted in [fleet.coalesced]).  A failing leader answers its
    followers with the same typed error — parked connections are never
    stranded.

    {2 Deadlines}

    A [check]'s [TIMEOUT_MS] (or [request_timeout_ms] when absent) is
    the end-to-end budget.  Each replica hop gets an equal share of
    what remains (floored at 50ms); a shard that connects but does not
    answer within its hop budget is aborted ([fleet.stalled_forwards]),
    marked suspect and failed over.  A request whose whole budget is
    gone is answered with a typed [deadline_exceeded] error — no router
    worker ever blocks past the request deadline.  Probes carry their
    own [probe_timeout_ms], so a shard that accepts and then stalls is
    marked unhealthy rather than wedging the prober.

    {2 Live reconfiguration}

    [join ID ADDR], [drain ID] and [leave ID] requests change the ring
    without a restart.  Drain flips the shard to replica-only: no new
    forwards or replication land on it, but it keeps its ring arc (so
    un-drain — rejoin — is cheap).  Leave drains, waits (bounded by
    [drain_timeout_ms]) for the shard's in-flight forwards to finish,
    then removes it from the ring.  Join adds the shard and replays
    recently routed check lines whose new replica set includes it
    (bounded memory, via the background replicator) so its store warms
    up without traffic.  Every ring change bumps the {e epoch}
    (gauge [fleet.ring_epoch]) and reports the sampled
    {!Ring.moved_fraction} (gauge [fleet.moved_fraction]); [stats]
    exposes both plus per-state shard counts.

    {2 Failover}

    Forward failures (refused/timed-out connects, mid-exchange EOFs,
    stalled exchanges) mark the shard down via {!Health} and fall
    through to the next replica; shards marked down are skipped up
    front and re-tried only as a last resort (they may have recovered
    since the last probe).  A background prober pings every shard each
    [probe_interval_ms], so a restarted shard rejoins the rotation
    without traffic having to discover it.  With [replicas >= 2], a
    solved-on-primary verdict is also replayed to the remaining
    replica set in the background (fire-and-forget), so the replicas'
    stores stay warm and a shard loss costs availability of nothing.

    {2 Admission control}

    {!Admission} caps in-flight forwards per shard; a saturated
    replica set — or a full router queue — is answered immediately
    with a typed [overloaded] error carrying [retry_after_ms], which
    the retrying {!Service.Client} backs off on.  Requests the router
    cannot place at all (every replica down and unreachable) get a
    typed [unavailable] error.  Accepted connections are always
    answered.

    {2 Aggregation}

    The router's own counters live in an {!Obs} registry under
    [fleet.*].  A [metrics] request polls every shard's [metrics]
    endpoint (bounded by [probe_timeout_ms] each), folds the snapshots
    together with {!Snapshot} (counters add, gauges max — the same
    associative merge used for worker domains) and answers with one
    fleet-wide flat-JSON snapshot; the same snapshot is written to
    [stats_out] at shutdown.  [stats] answers a cheap router-local
    summary without touching shards. *)

type shard = {
  id : string;  (** ring identity; stable across restarts *)
  addr : Service.Addr.t;  (** where the shard daemon listens *)
}

type config = {
  listen : Service.Addr.t;
  shards : shard list;  (** initial membership; see [join]/[leave] *)
  replicas : int;  (** replica-set size per key (clamped to 1..N) *)
  vnodes : int;  (** ring points per shard *)
  workers : int;  (** forwarding worker domains (min 1) *)
  max_inflight : int;  (** per-shard in-flight forward cap *)
  queue_capacity : int;  (** accepted-connection queue bound *)
  probe_interval_ms : float;  (** health probe period *)
  connect_timeout_ms : float;  (** per-forward connect bound *)
  retry_after_ms : int;  (** hint carried by [overloaded] rejections *)
  replication_queue : int;  (** pending warm-replication bound *)
  request_timeout_ms : float;
      (** end-to-end budget for requests that carry no [TIMEOUT_MS] of
          their own; also bounds reading a client's request line *)
  probe_timeout_ms : float;
      (** response deadline per probe and per metrics poll *)
  drain_timeout_ms : float;
      (** how long [leave] waits for in-flight work before removing the
          shard anyway (reported as [drained=false]) *)
  log : bool;
  stats_out : string option;
      (** write the final fleet snapshot (router counters + last shard
          poll) here at shutdown *)
  on_listen : Service.Addr.t -> unit;
      (** called with the actual bound address (kernel-assigned port
          for TCP port 0) before the first accept *)
}

(** [replicas = 1], 64 vnodes, 4 workers, in-flight cap 8, queue 128,
    500ms probes, 250ms connect timeout, retry-after 50ms, 10s default
    request budget, 1s probe deadline, 5s drain bound. *)
val default_config : listen:Service.Addr.t -> shards:shard list -> config

(** Run until SIGINT/SIGTERM or a [shutdown] request; drains accepted
    connections and the replication queue, then returns the final
    fleet registry (router [fleet.*] counters merged with the last
    poll of every reachable shard).
    @raise Invalid_argument on an empty shard list or duplicate ids,
    [Failure]/[Unix.Unix_error] when the listen address cannot be
    bound. *)
val run : config -> Obs.Registry.t
