(** Import a shard's [metrics] wire response — the {!Obs.Export}
    flat-JSON shape [{"counters":{..},"gauges":{..},"histograms":{..}}]
    — back into an {!Obs.Registry.t}, so the router can aggregate the
    fleet with the {e same} associative/commutative merge the rest of
    the tree uses for worker domains: counters add, gauges keep the
    maximum.  (Histogram sections carry nested bucket arrays and are
    skipped: the fleet-level latency story is told by the bench's
    client-observed percentiles, and summing shard-local histograms
    would double-count queue effects anyway.)

    This is not a general JSON parser; it understands exactly what
    {!Obs.Export.stats_json} emits — flat sections of
    ["name": number] pairs with [[a-z0-9._-]] names — and returns
    [Error] on anything else, so a garbled shard response is dropped
    (and counted) instead of poisoning the fleet snapshot. *)

(** Counter section of a snapshot line, sorted by name. *)
val counters : string -> ((string * int) list, string) result

(** Gauge section, sorted by name. *)
val gauges : string -> ((string * float) list, string) result

(** [merge_into reg line] folds one shard snapshot into [reg]
    (counters add, gauges max).  [Error] leaves [reg] untouched. *)
val merge_into : Obs.Registry.t -> string -> (unit, string) result
