type t = {
  ids : string list;  (* sorted, distinct *)
  vnodes : int;
  points : (int * string) array;  (* sorted by (hash, id) *)
}

let default_vnodes = 64

(* Point placement must be stable across processes and join orders, so
   the hash is a digest of the labelling string, not [Hashtbl.hash]
   (whose value is unspecified across OCaml versions).  62 bits keep
   every point a nonnegative OCaml int. *)
let hash_string s =
  let d = Digest.string s in
  let byte i = Char.code d.[i] in
  let h = ref 0 in
  for i = 0 to 7 do
    h := (!h lsl 8) lor byte i
  done;
  !h land max_int

let hash_key key = hash_string ("key\x00" ^ key)

let points_of ids vnodes =
  let points =
    List.concat_map
      (fun id -> List.init vnodes (fun i -> (hash_string (Printf.sprintf "%s#%d" id i), id)))
      ids
    |> Array.of_list
  in
  Array.sort compare points;
  points

let validate_id id = if id = "" then invalid_arg "Ring: empty shard id"

let create ?(vnodes = default_vnodes) ids =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  if ids = [] then invalid_arg "Ring.create: no shards";
  List.iter validate_id ids;
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> List.length ids then invalid_arg "Ring.create: duplicate shard id";
  { ids = sorted; vnodes; points = points_of sorted vnodes }

let shards t = t.ids
let num_shards t = List.length t.ids
let vnodes t = t.vnodes
let mem t id = List.mem id t.ids

let add t id =
  validate_id id;
  if mem t id then invalid_arg (Printf.sprintf "Ring.add: shard %S already present" id);
  let ids = List.sort compare (id :: t.ids) in
  { t with ids; points = points_of ids t.vnodes }

let remove t id =
  if not (mem t id) then invalid_arg (Printf.sprintf "Ring.remove: shard %S not present" id);
  if num_shards t = 1 then invalid_arg "Ring.remove: cannot empty the ring";
  let ids = List.filter (fun i -> i <> id) t.ids in
  { t with ids; points = points_of ids t.vnodes }

(* Index of the first point with hash >= h, wrapping to 0 past the
   end — the key's successor on the circle. *)
let successor points h =
  let n = Array.length points in
  let rec bsearch lo hi =
    (* invariant: points.(lo-1) < h <= points.(hi), with sentinels *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst points.(mid) < h then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let lookup ?(n = 1) t key =
  let num = num_shards t in
  if num = 0 || n < 1 then []
  else begin
    let want = min n num in
    let start = successor t.points (hash_key key) in
    let total = Array.length t.points in
    let seen = Hashtbl.create (2 * want) in
    let owners = ref [] in
    let i = ref 0 in
    while Hashtbl.length seen < want && !i < total do
      let _, id = t.points.((start + !i) mod total) in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        owners := id :: !owners
      end;
      incr i
    done;
    List.rev !owners
  end

let owner t key = match lookup ~n:1 t key with [] -> None | id :: _ -> Some id

(* Sampled estimate of how much of the key space changed primary owner
   between two rings — what a reconfiguration actually moved.  The
   synthetic keys go through the same [hash_key] stream as real ones,
   so the estimate inherits consistent hashing's movement bound
   (≈ vnodes-of-changed-shards / total vnodes). *)
let moved_fraction ?(keys = 1024) ~before ~after () =
  if keys < 1 then invalid_arg "Ring.moved_fraction: keys < 1";
  let moved = ref 0 in
  for i = 0 to keys - 1 do
    let key = Printf.sprintf "mf-%d" i in
    if owner before key <> owner after key then incr moved
  done;
  float_of_int !moved /. float_of_int keys
