(** A consistent-hash ring over shard identifiers.

    The certification service's unit of distribution is the per-pair
    certificate, already keyed by the structural hash of the
    normalized pair ({!Service.Key}); the ring decides {e which shard
    owns which key}.  Each shard contributes [vnodes] points on a
    2^62-sized hash circle (derived by digesting ["id#i"], so point
    placement depends only on the shard id, never on join order); a
    key belongs to the first point at or clockwise after its own hash,
    and its replica set is the first [n] {e distinct} shards from
    there.

    Consistent hashing is what makes the fleet elastic: adding or
    removing one shard only moves the keys whose arc changed hands —
    about [1/N] of the keyspace — while every other key keeps its
    owner (and therefore its warm cache entry).  The qcheck suite pins
    both properties: balance (no shard owns a grossly outsized share)
    and monotonicity (a key's owner after a shard join is either its
    old owner or the new shard; after a leave, keys not owned by the
    leaver do not move).

    Values are immutable: [add]/[remove] return new rings, so a router
    can swap topologies atomically by replacing one reference. *)

type t

(** Number of points each shard contributes (default 64 — keeps the
    owner-share coefficient of variation around 15% for small N). *)
val default_vnodes : int

(** [create ?vnodes ids] builds a ring over the given shard ids.
    @raise Invalid_argument on an empty list, duplicate ids, an empty
    id, or [vnodes < 1]. *)
val create : ?vnodes:int -> string list -> t

(** Shard ids, sorted. *)
val shards : t -> string list

val num_shards : t -> int
val vnodes : t -> int
val mem : t -> string -> bool

(** @raise Invalid_argument if the id is already present or empty. *)
val add : t -> string -> t

(** @raise Invalid_argument if the id is not present, or when removing
    the last shard (a ring is never empty). *)
val remove : t -> string -> t

(** [lookup t ~n key] is the key's replica set: the first [min n
    (num_shards t)] distinct shards clockwise from the key's hash, in
    preference order (primary first).  [n] defaults to 1.  Never
    empty.  Deterministic for a given ring and key. *)
val lookup : ?n:int -> t -> string -> string list

(** Primary owner, the head of [lookup ~n:1]. *)
val owner : t -> string -> string option

(** [moved_fraction ~before ~after ()] estimates the fraction of the
    key space whose {e primary} owner differs between two rings, by
    sampling [keys] (default 1024) synthetic keys through the ordinary
    hash stream.  For a single join or leave consistent hashing bounds
    the true value near [1/N]; the router reports this gauge at every
    reconfiguration so operators can see a rebalance did not reshuffle
    the world.  @raise Invalid_argument when [keys < 1]. *)
val moved_fraction : ?keys:int -> before:t -> after:t -> unit -> float
