module P = Service.Protocol
module Addr = Service.Addr
module Wire = Service.Wire
module Key = Service.Key

type shard = {
  id : string;
  addr : Addr.t;
}

type config = {
  listen : Addr.t;
  shards : shard list;
  replicas : int;
  vnodes : int;
  workers : int;
  max_inflight : int;
  queue_capacity : int;
  probe_interval_ms : float;
  connect_timeout_ms : float;
  retry_after_ms : int;
  replication_queue : int;
  log : bool;
  stats_out : string option;
  on_listen : Addr.t -> unit;
}

let default_config ~listen ~shards =
  {
    listen;
    shards;
    replicas = 1;
    vnodes = Ring.default_vnodes;
    workers = 4;
    max_inflight = 8;
    queue_capacity = 128;
    probe_interval_ms = 500.;
    connect_timeout_ms = 250.;
    retry_after_ms = 50;
    replication_queue = 256;
    log = false;
    stats_out = None;
    on_listen = ignore;
  }

type shard_state = {
  shard : shard;
  health : Health.t;
  admission : Admission.t;
}

type t = {
  cfg : config;
  replicas : int;
  ring : Ring.t;
  states : shard_state array;
  by_id : (string, shard_state) Hashtbl.t;
  (* Router-local counters.  Workers, the prober and the replicator all
     record here, so unlike the per-domain registries elsewhere in the
     tree this one is shared and must be locked. *)
  reg : Obs.Registry.t;
  reg_lock : Mutex.t;
  (* Accepted connections waiting for a worker. *)
  q_lock : Mutex.t;
  q_nonempty : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable draining : bool;
  (* Warm-replication jobs: the original request line and the replica
     ids that still need a copy of the verdict. *)
  r_lock : Mutex.t;
  r_nonempty : Condition.t;
  repl : (string * string list) Queue.t;
  mutable r_draining : bool;
  stop : bool Atomic.t;
}

let tick ?(n = 1) st name =
  Mutex.protect st.reg_lock (fun () ->
      Obs.Counter.add (Obs.Registry.counter st.reg name) n)

let counter_value st name =
  Mutex.protect st.reg_lock (fun () ->
      Obs.Counter.get (Obs.Registry.counter st.reg name))

let logf st fmt =
  Printf.ksprintf
    (fun msg -> if st.cfg.log then Printf.eprintf "[router] %s\n%!" msg)
    fmt

let reply fd line =
  (* The peer may have given up and gone away; its loss, not ours. *)
  try Wire.write_line fd line with Unix.Unix_error _ -> ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* {2 Forwarding} *)

type outcome =
  | Answer of string  (** shard answered; relay verbatim *)
  | Busy  (** shard is alive but shedding load; try a replica *)
  | Down of string  (** transport failure; shard presumed dead *)

let forward st ss line =
  match Addr.connect ~timeout_ms:st.cfg.connect_timeout_ms ss.shard.addr with
  | exception Unix.Unix_error (e, _, _) -> Down (Unix.error_message e)
  | exception Failure msg -> Down msg
  | fd ->
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        match
          Wire.write_line fd line;
          Wire.read_line fd
        with
        | exception Unix.Unix_error (e, _, _) -> Down (Unix.error_message e)
        | Error msg -> Down msg
        | Ok resp -> (
          match P.field "code" resp with
          | Some ("queue_full" | "overloaded") -> Busy
          | _ -> Answer resp))

let note_alive st ss =
  if Health.record_success ss.health then begin
    tick st "fleet.shard_up";
    logf st "shard %s is back up" ss.shard.id
  end

let note_dead st ss msg =
  tick st "fleet.forward_failures";
  if Health.record_failure ss.health then begin
    tick st "fleet.shard_down";
    logf st "shard %s marked down: %s" ss.shard.id msg
  end

(* {2 Routing} *)

let overloaded_response st =
  P.to_json
    [
      ("error", P.String "fleet saturated");
      ("code", P.String "overloaded");
      ("retry_after_ms", P.Int st.cfg.retry_after_ms);
    ]

let unavailable_response =
  P.error_response ~code:"unavailable" "no replica reachable"

(* Try one shard under its admission cap.  [Some response] relays;
   [None] falls through to the next replica. *)
let try_shard st ~fallback ss line saturated =
  if not (Admission.try_acquire ss.admission) then begin
    saturated := true;
    None
  end
  else
    Fun.protect
      ~finally:(fun () -> Admission.release ss.admission)
      (fun () ->
        match forward st ss line with
        | Answer resp ->
          note_alive st ss;
          tick st "fleet.forwarded";
          if fallback then tick st "fleet.failovers";
          Some (ss.shard.id, resp)
        | Busy ->
          (* A load-shedding shard is a healthy shard. *)
          note_alive st ss;
          saturated := true;
          None
        | Down msg ->
          note_dead st ss msg;
          None)

let schedule_replication st line others =
  let accepted =
    Mutex.protect st.r_lock (fun () ->
        if st.r_draining || Queue.length st.repl >= st.cfg.replication_queue
        then false
        else begin
          Queue.push (line, others) st.repl;
          true
        end)
  in
  if accepted then Condition.signal st.r_nonempty
  else tick st "fleet.replication_dropped"

let route_check st fd line key =
  tick st "fleet.checks";
  let owner_ids = Ring.lookup ~n:st.replicas st.ring key in
  let owners = List.map (Hashtbl.find st.by_id) owner_ids in
  let saturated = ref false in
  (* Preference pass over shards believed up; shards marked down get a
     second chance only after every live replica has been tried — the
     prober may simply not have noticed a recovery yet. *)
  let live, down = List.partition (fun ss -> Health.up ss.health) owners in
  let rec first_answer ~fallback = function
    | [] -> None
    | ss :: rest -> (
      match try_shard st ~fallback ss line saturated with
      | Some _ as r -> r
      | None -> first_answer ~fallback:true rest)
  in
  let ordered = live @ down in
  let starts_at_primary =
    match (ordered, owners) with
    | a :: _, b :: _ -> a.shard.id = b.shard.id
    | _ -> false
  in
  let answer = first_answer ~fallback:(not starts_at_primary) ordered in
  match answer with
  | Some (answered_by, resp) ->
    reply fd resp;
    (* A fresh verdict on a replicated key gets replayed to the rest of
       the replica set in the background, keeping standby stores warm. *)
    if List.length owner_ids > 1 then begin
      match (P.field "cached" resp, P.field "status" resp) with
      | Some "false", Some ("equivalent" | "inequivalent") ->
        schedule_replication st line
          (List.filter (fun id -> id <> answered_by) owner_ids)
      | _ -> ()
    end
  | None ->
    if !saturated then begin
      tick st "fleet.overloaded";
      reply fd (overloaded_response st)
    end
    else begin
      tick st "fleet.unavailable";
      reply fd unavailable_response
    end

(* {2 Aggregation} *)

let fleet_snapshot st =
  let reg = Obs.Registry.create () in
  Array.iter
    (fun ss ->
      match forward st ss "metrics" with
      | Answer line -> (
        match Snapshot.merge_into reg line with
        | Ok () -> tick st "fleet.polls"
        | Error msg ->
          tick st "fleet.poll_errors";
          logf st "shard %s: bad metrics snapshot: %s" ss.shard.id msg)
      | Busy | Down _ -> tick st "fleet.poll_errors")
    st.states;
  (* Merge our own counters last so the poll bookkeeping above is part
     of the snapshot it produced. *)
  Mutex.protect st.reg_lock (fun () -> Obs.Registry.merge_into ~into:reg st.reg);
  reg

let stats_response st =
  let up =
    Array.fold_left
      (fun n ss -> if Health.up ss.health then n + 1 else n)
      0 st.states
  in
  P.to_json
    [
      ("ok", P.Bool true);
      ("router", P.Bool true);
      ("shards", P.Int (Array.length st.states));
      ("shards_up", P.Int up);
      ("replicas", P.Int st.replicas);
      ("requests", P.Int (counter_value st "fleet.requests"));
      ("forwarded", P.Int (counter_value st "fleet.forwarded"));
      ("failovers", P.Int (counter_value st "fleet.failovers"));
      ("overloaded", P.Int (counter_value st "fleet.overloaded"));
      ("unavailable", P.Int (counter_value st "fleet.unavailable"));
      ("replicated", P.Int (counter_value st "fleet.replicated"));
    ]

(* {2 Request handling} *)

let handle st fd =
  match Wire.read_line fd with
  | Error msg -> reply fd (P.error_response msg)
  | Ok line -> (
    tick st "fleet.requests";
    match P.parse_request line with
    | Error msg -> reply fd (P.error_response msg)
    | Ok P.Ping -> reply fd (P.to_json [ ("ok", P.Bool true); ("router", P.Bool true) ])
    | Ok P.Stats -> reply fd (stats_response st)
    | Ok P.Metrics ->
      reply fd (String.trim (Obs.Export.stats_json (fleet_snapshot st)))
    | Ok P.Shutdown ->
      Atomic.set st.stop true;
      reply fd (P.to_json [ ("ok", P.Bool true); ("draining", P.Bool true) ])
    | Ok (P.Check { golden; revised; timeout_ms = _ }) -> (
      (* Key exactly as a shard would, so ring placement and shard
         store identity agree by construction. *)
      match (Service.Server.load_netlist golden, Service.Server.load_netlist revised) with
      | Error msg, _ | _, Error msg -> reply fd (P.error_response msg)
      | Ok a, Ok b -> route_check st fd line (Key.to_hex (Key.of_pair a b))))

let rec worker_loop st =
  let job =
    Mutex.protect st.q_lock (fun () ->
        let rec wait () =
          if not (Queue.is_empty st.queue) then Some (Queue.pop st.queue)
          else if st.draining then None
          else begin
            Condition.wait st.q_nonempty st.q_lock;
            wait ()
          end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some fd ->
    (try handle st fd
     with e -> reply fd (P.error_response (Printexc.to_string e)));
    close_quietly fd;
    worker_loop st

(* {2 Background domains} *)

let rec replicator st =
  let job =
    Mutex.protect st.r_lock (fun () ->
        let rec wait () =
          if not (Queue.is_empty st.repl) then Some (Queue.pop st.repl)
          else if st.r_draining then None
          else begin
            Condition.wait st.r_nonempty st.r_lock;
            wait ()
          end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some (line, ids) ->
    List.iter
      (fun id ->
        match Hashtbl.find_opt st.by_id id with
        | None -> ()
        | Some ss -> (
          match forward st ss line with
          | Answer _ ->
            note_alive st ss;
            tick st "fleet.replicated"
          | Busy ->
            note_alive st ss;
            tick st "fleet.replication_failures"
          | Down msg ->
            note_dead st ss msg;
            tick st "fleet.replication_failures"))
      ids;
    replicator st

let rec prober st =
  if not (Atomic.get st.stop) then begin
    Array.iter
      (fun ss ->
        if not (Atomic.get st.stop) then begin
          tick st "fleet.probes";
          match forward st ss "ping" with
          | Answer _ | Busy -> note_alive st ss
          | Down msg ->
            tick st "fleet.probe_failures";
            note_dead st ss msg
        end)
      st.states;
    (* Sleep in short slices so shutdown is not gated on the probe
       period. *)
    let rec nap remaining =
      if remaining > 0. && not (Atomic.get st.stop) then begin
        Unix.sleepf (Float.min 0.05 remaining);
        nap (remaining -. 0.05)
      end
    in
    nap (st.cfg.probe_interval_ms /. 1000.);
    prober st
  end

(* {2 Accept loop and life cycle} *)

let enqueue st fd =
  let accepted =
    Mutex.protect st.q_lock (fun () ->
        if st.draining || Queue.length st.queue >= st.cfg.queue_capacity then
          false
        else begin
          Queue.push fd st.queue;
          true
        end)
  in
  if accepted then Condition.signal st.q_nonempty
  else begin
    (* Shed load before reading the request: the client learns the
       retry-after without the router spending a worker on it. *)
    tick st "fleet.overloaded";
    reply fd (overloaded_response st);
    close_quietly fd
  end

let run cfg =
  if cfg.shards = [] then invalid_arg "Router.run: no shards";
  let ids = List.map (fun s -> s.id) cfg.shards in
  let ring = Ring.create ~vnodes:(max 1 cfg.vnodes) ids in
  let states =
    Array.of_list
      (List.map
         (fun shard ->
           {
             shard;
             health = Health.create ();
             admission = Admission.create ~capacity:(max 1 cfg.max_inflight);
           })
         cfg.shards)
  in
  let by_id = Hashtbl.create 16 in
  Array.iter (fun ss -> Hashtbl.replace by_id ss.shard.id ss) states;
  let st =
    {
      cfg;
      replicas = min (max 1 cfg.replicas) (List.length cfg.shards);
      ring;
      states;
      by_id;
      reg = Obs.Registry.create ();
      reg_lock = Mutex.create ();
      q_lock = Mutex.create ();
      q_nonempty = Condition.create ();
      queue = Queue.create ();
      draining = false;
      r_lock = Mutex.create ();
      r_nonempty = Condition.create ();
      repl = Queue.create ();
      r_draining = false;
      stop = Atomic.make false;
    }
  in
  let lfd, actual = Addr.bind_listen cfg.listen in
  cfg.on_listen actual;
  logf st "routing %d shards (replicas %d) on %s"
    (Array.length states) st.replicas (Addr.to_string actual);
  let on_signal _ = Atomic.set st.stop true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let workers =
    List.init (max 1 cfg.workers) (fun _ ->
        Domain.spawn (fun () -> worker_loop st))
  in
  let prober_d = Domain.spawn (fun () -> prober st) in
  let repl_d = Domain.spawn (fun () -> replicator st) in
  let rec accept_loop () =
    if not (Atomic.get st.stop) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept ~cloexec:true lfd with
        | exception
            Unix.Unix_error
              ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED), _, _) ->
          ()
        | fd, _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          enqueue st fd));
      accept_loop ()
    end
  in
  accept_loop ();
  close_quietly lfd;
  (match actual with
  | Addr.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Addr.Tcp _ -> ());
  Mutex.protect st.q_lock (fun () -> st.draining <- true);
  Condition.broadcast st.q_nonempty;
  List.iter Domain.join workers;
  Domain.join prober_d;
  Mutex.protect st.r_lock (fun () -> st.r_draining <- true);
  Condition.broadcast st.r_nonempty;
  Domain.join repl_d;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let final = fleet_snapshot st in
  (match cfg.stats_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Obs.Export.stats_json final);
    close_out oc);
  logf st
    "drained: %d requests, %d forwarded, %d failovers, %d overloaded, %d unavailable"
    (counter_value st "fleet.requests")
    (counter_value st "fleet.forwarded")
    (counter_value st "fleet.failovers")
    (counter_value st "fleet.overloaded")
    (counter_value st "fleet.unavailable");
  final
