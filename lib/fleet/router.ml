module P = Service.Protocol
module Addr = Service.Addr
module Wire = Service.Wire
module Key = Service.Key

type shard = {
  id : string;
  addr : Addr.t;
}

type config = {
  listen : Addr.t;
  shards : shard list;
  replicas : int;
  vnodes : int;
  workers : int;
  max_inflight : int;
  queue_capacity : int;
  probe_interval_ms : float;
  connect_timeout_ms : float;
  retry_after_ms : int;
  replication_queue : int;
  request_timeout_ms : float;
  probe_timeout_ms : float;
  drain_timeout_ms : float;
  log : bool;
  stats_out : string option;
  on_listen : Addr.t -> unit;
}

let default_config ~listen ~shards =
  {
    listen;
    shards;
    replicas = 1;
    vnodes = Ring.default_vnodes;
    workers = 4;
    max_inflight = 8;
    queue_capacity = 128;
    probe_interval_ms = 500.;
    connect_timeout_ms = 250.;
    retry_after_ms = 50;
    replication_queue = 256;
    request_timeout_ms = 10_000.;
    probe_timeout_ms = 1_000.;
    drain_timeout_ms = 5_000.;
    log = false;
    stats_out = None;
    on_listen = ignore;
  }

type member = {
  shard : shard;
  health : Health.t;
  admission : Admission.t;
  (* Draining members take no new forwards and no replication; flipped
     under [m_lock], read without it (a stale read costs one forward to
     a shard that still answers correctly). *)
  mutable draining : bool;
}

(* One in-flight [check] per structural key: the first request becomes
   the leader and does the shard round-trip; identical keys arriving
   meanwhile park their connection here and are answered with the
   leader's response. *)
type flight = { mutable waiters : Unix.file_descr list }

type t = {
  cfg : config;
  replicas : int;  (* desired replica-set size; clamped per lookup *)
  (* Live topology.  The ring is immutable; reconfiguration swaps the
     reference and bumps the epoch under [m_lock].  [members] maps
     shard id to its connection state and is mutated only under the
     same lock. *)
  m_lock : Mutex.t;
  mutable ring : Ring.t;
  mutable epoch : int;
  members : (string, member) Hashtbl.t;
  (* Single-flight table, under [f_lock]. *)
  f_lock : Mutex.t;
  flights : (string, flight) Hashtbl.t;
  (* Recently routed check lines by key (bounded FIFO), the source for
     join warm-up replication. *)
  s_lock : Mutex.t;
  seen : (string, string) Hashtbl.t;
  seen_order : string Queue.t;
  (* Router-local counters.  Workers, the prober and the replicator all
     record here, so unlike the per-domain registries elsewhere in the
     tree this one is shared and must be locked. *)
  reg : Obs.Registry.t;
  reg_lock : Mutex.t;
  (* Accepted connections waiting for a worker. *)
  q_lock : Mutex.t;
  q_nonempty : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable draining : bool;
  (* Warm-replication jobs: the original request line and the replica
     ids that still need a copy of the verdict. *)
  r_lock : Mutex.t;
  r_nonempty : Condition.t;
  repl : (string * string list) Queue.t;
  mutable r_draining : bool;
  stop : bool Atomic.t;
}

let tick ?(n = 1) st name =
  Mutex.protect st.reg_lock (fun () ->
      Obs.Counter.add (Obs.Registry.counter st.reg name) n)

let counter_value st name =
  Mutex.protect st.reg_lock (fun () ->
      Obs.Counter.get (Obs.Registry.counter st.reg name))

let set_gauge st name v =
  Mutex.protect st.reg_lock (fun () -> Obs.Gauge.set (Obs.Registry.gauge st.reg name) v)

let logf st fmt =
  Printf.ksprintf
    (fun msg -> if st.cfg.log then Printf.eprintf "[router] %s\n%!" msg)
    fmt

let reply fd line =
  (* The peer may have given up and gone away; its loss, not ours. *)
  try Wire.write_line fd line with Unix.Unix_error _ -> ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* {2 Topology access} *)

let current_ring st = Mutex.protect st.m_lock (fun () -> st.ring)
let current_epoch st = Mutex.protect st.m_lock (fun () -> st.epoch)
let member_of st id = Mutex.protect st.m_lock (fun () -> Hashtbl.find_opt st.members id)

let members_snapshot st =
  Mutex.protect st.m_lock (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) st.members []
      |> List.sort (fun a b -> compare a.shard.id b.shard.id))

(* The key's candidate members in preference order: walk the whole
   ring order and keep the first [replicas] non-draining members.  A
   draining shard therefore slides its traffic to the next shard
   clockwise without any key changing its eventual owner. *)
let candidates st key =
  Mutex.protect st.m_lock (fun () ->
      let order = Ring.lookup ~n:(Ring.num_shards st.ring) st.ring key in
      let live =
        List.filter_map
          (fun id ->
            match Hashtbl.find_opt st.members id with
            | Some m when not m.draining -> Some m
            | _ -> None)
          order
      in
      let rec take n = function
        | [] -> []
        | m :: rest -> if n <= 0 then [] else m :: take (n - 1) rest
      in
      take st.replicas live)

(* {2 Forwarding} *)

type outcome =
  | Answer of string  (** shard answered; relay verbatim *)
  | Busy  (** shard is alive but shedding load; try a replica *)
  | Down of string  (** transport failure; shard presumed dead *)
  | Stalled  (** connected but exceeded its response deadline *)

let forward ?deadline st m line =
  let connect_ms =
    match deadline with
    | None -> st.cfg.connect_timeout_ms
    | Some d ->
      let left = (d -. Unix.gettimeofday ()) *. 1000. in
      Float.min st.cfg.connect_timeout_ms (Float.max 1. left)
  in
  match Addr.connect ~timeout_ms:connect_ms m.shard.addr with
  | exception Unix.Unix_error (e, _, _) -> Down (Unix.error_message e)
  | exception Failure msg -> Down msg
  | fd ->
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        match
          Wire.write_line ?deadline fd line;
          Wire.read_line ?deadline fd
        with
        | exception Unix.Unix_error (Unix.ETIMEDOUT, "write", _) -> Stalled
        | exception Unix.Unix_error (e, _, _) -> Down (Unix.error_message e)
        | Error msg -> if msg = Wire.deadline_error then Stalled else Down msg
        | Ok resp -> (
          match P.field "code" resp with
          | Some ("queue_full" | "overloaded") -> Busy
          | _ -> Answer resp))

let note_alive st m =
  if Health.record_success m.health then begin
    tick st "fleet.shard_up";
    logf st "shard %s is back up" m.shard.id
  end

let note_dead st m msg =
  tick st "fleet.forward_failures";
  if Health.record_failure m.health then begin
    tick st "fleet.shard_down";
    logf st "shard %s marked down: %s" m.shard.id msg
  end

(* {2 Routing} *)

let overloaded_response st =
  P.to_json
    [
      ("error", P.String "fleet saturated");
      ("code", P.String "overloaded");
      ("retry_after_ms", P.Int st.cfg.retry_after_ms);
    ]

let unavailable_response =
  P.error_response ~code:"unavailable" "no replica reachable"

let deadline_response =
  P.error_response ~code:"deadline_exceeded" "request deadline exceeded"

(* Try one shard under its admission cap.  [Some response] relays;
   [None] falls through to the next replica. *)
let try_shard st ~fallback ?deadline m line saturated =
  if not (Admission.try_acquire m.admission) then begin
    saturated := true;
    None
  end
  else
    Fun.protect
      ~finally:(fun () -> Admission.release m.admission)
      (fun () ->
        match forward ?deadline st m line with
        | Answer resp ->
          note_alive st m;
          tick st "fleet.forwarded";
          if fallback then tick st "fleet.failovers";
          Some (m.shard.id, resp)
        | Busy ->
          (* A load-shedding shard is a healthy shard. *)
          note_alive st m;
          saturated := true;
          None
        | Stalled ->
          (* Connected but never answered within budget: abort the
             connection (done by [forward]'s close) and treat the
             shard as suspect so the prober re-vets it. *)
          tick st "fleet.stalled_forwards";
          note_dead st m Wire.deadline_error;
          None
        | Down msg ->
          note_dead st m msg;
          None)

let schedule_replication st line others =
  let accepted =
    Mutex.protect st.r_lock (fun () ->
        if st.r_draining || Queue.length st.repl >= st.cfg.replication_queue
        then false
        else begin
          Queue.push (line, others) st.repl;
          true
        end)
  in
  if accepted then Condition.signal st.r_nonempty
  else tick st "fleet.replication_dropped"

(* Bounded memory of recently routed check lines, keyed by structural
   key: this is what a joining shard is warmed up from. *)
let seen_capacity = 1024

let remember_key st key line =
  Mutex.protect st.s_lock (fun () ->
      if not (Hashtbl.mem st.seen key) then begin
        Hashtbl.replace st.seen key line;
        Queue.push key st.seen_order;
        while Queue.length st.seen_order > seen_capacity do
          Hashtbl.remove st.seen (Queue.pop st.seen_order)
        done
      end)

(* Route one [check]; returns the response line (the caller owns the
   reply and the single-flight bookkeeping).  [overall] is the
   absolute request deadline; each hop gets an equal share of what is
   left, floored at 50ms, so one stalled replica cannot eat the whole
   budget. *)
let route_check st line key ~overall =
  tick st "fleet.checks";
  remember_key st key line;
  let cands = candidates st key in
  let saturated = ref false in
  let expired = ref false in
  (* Preference pass over shards believed up; shards marked down get a
     second chance only after every live replica has been tried — the
     prober may simply not have noticed a recovery yet. *)
  let live, down = List.partition (fun m -> Health.up m.health) cands in
  let rec first_answer ~fallback = function
    | [] -> None
    | m :: rest ->
      let now = Unix.gettimeofday () in
      if now >= overall then begin
        expired := true;
        None
      end
      else begin
        let hops_left = 1 + List.length rest in
        let hop = Float.max 0.05 ((overall -. now) /. float_of_int hops_left) in
        let hop_deadline = Float.min overall (now +. hop) in
        match try_shard st ~fallback ~deadline:hop_deadline m line saturated with
        | Some _ as r -> r
        | None -> first_answer ~fallback:true rest
      end
  in
  let ordered = live @ down in
  let starts_at_primary =
    match (ordered, cands) with
    | a :: _, b :: _ -> a.shard.id = b.shard.id
    | _ -> false
  in
  match first_answer ~fallback:(not starts_at_primary) ordered with
  | Some (answered_by, resp) ->
    (* A fresh verdict on a replicated key gets replayed to the rest of
       the replica set in the background, keeping standby stores warm. *)
    let cand_ids = List.map (fun m -> m.shard.id) cands in
    (if List.length cand_ids > 1 then
       match (P.field "cached" resp, P.field "status" resp) with
       | Some "false", Some ("equivalent" | "inequivalent") ->
         schedule_replication st line (List.filter (fun id -> id <> answered_by) cand_ids)
       | _ -> ());
    resp
  | None ->
    if !expired || Unix.gettimeofday () >= overall then begin
      tick st "fleet.deadline_exceeded";
      deadline_response
    end
    else if !saturated then begin
      tick st "fleet.overloaded";
      overloaded_response st
    end
    else begin
      tick st "fleet.unavailable";
      unavailable_response
    end

(* {2 Ring administration} *)

let reconfig_gauges st ~before ~after =
  let moved = Ring.moved_fraction ~before ~after () in
  set_gauge st "fleet.ring_epoch" (float_of_int (current_epoch st));
  set_gauge st "fleet.moved_fraction" moved;
  moved

(* Warm-up: replay every remembered check line whose (new-ring) replica
   set includes the joining shard, to that shard only, through the
   ordinary background replicator.  Returns how many were scheduled. *)
let schedule_warmup st id =
  let ring = current_ring st in
  let entries =
    Mutex.protect st.s_lock (fun () ->
        Hashtbl.fold (fun key line acc -> (key, line) :: acc) st.seen [])
  in
  let want = min st.replicas (Ring.num_shards ring) in
  let n =
    List.fold_left
      (fun n (key, line) ->
        if List.mem id (Ring.lookup ~n:want ring key) then begin
          schedule_replication st line [ id ];
          n + 1
        end
        else n)
      0 entries
  in
  if n > 0 then tick ~n st "fleet.warmups";
  n

let handle_join st ~id ~addr_str =
  match Addr.parse addr_str with
  | Error msg -> P.error_response msg
  | Ok addr -> (
    let result =
      Mutex.protect st.m_lock (fun () ->
          if Hashtbl.mem st.members id then
            Error (Printf.sprintf "shard %S already in the ring" id)
          else
            match Ring.add st.ring id with
            | exception Invalid_argument msg -> Error msg
            | ring ->
              let before = st.ring in
              st.ring <- ring;
              st.epoch <- st.epoch + 1;
              Hashtbl.replace st.members id
                {
                  shard = { id; addr };
                  health = Health.create ();
                  admission = Admission.create ~capacity:(max 1 st.cfg.max_inflight);
                  draining = false;
                };
              Ok (before, ring))
    in
    match result with
    | Error msg -> P.error_response msg
    | Ok (before, after) ->
      tick st "fleet.joins";
      let moved = reconfig_gauges st ~before ~after in
      let warmups = schedule_warmup st id in
      logf st "shard %s joined (epoch %d, moved %.3f, %d warm-ups)" id (current_epoch st)
        moved warmups;
      P.to_json
        [
          ("ok", P.Bool true);
          ("joined", P.String id);
          ("epoch", P.Int (current_epoch st));
          ("moved_fraction", P.Float moved);
          ("warmups", P.Int warmups);
        ])

let handle_drain st ~id =
  match member_of st id with
  | None -> P.error_response (Printf.sprintf "unknown shard %S" id)
  | Some m ->
    Mutex.protect st.m_lock (fun () -> m.draining <- true);
    tick st "fleet.drains";
    logf st "shard %s draining (%d in flight)" id (Admission.in_flight m.admission);
    P.to_json
      [
        ("ok", P.Bool true);
        ("draining", P.String id);
        ("epoch", P.Int (current_epoch st));
        ("in_flight", P.Int (Admission.in_flight m.admission));
      ]

let handle_leave st ~id =
  match member_of st id with
  | None -> P.error_response (Printf.sprintf "unknown shard %S" id)
  | Some m ->
    (* Drain first: stop placing new work, then wait (bounded) for the
       shard's in-flight forwards to finish, so removal never cuts a
       request mid-exchange. *)
    Mutex.protect st.m_lock (fun () -> m.draining <- true);
    let t0 = Unix.gettimeofday () in
    let wait_until = t0 +. (st.cfg.drain_timeout_ms /. 1000.) in
    let rec await () =
      if Admission.in_flight m.admission = 0 then true
      else if Unix.gettimeofday () >= wait_until then false
      else begin
        Unix.sleepf 0.01;
        await ()
      end
    in
    let drained = await () in
    let drained_ms = 1000. *. (Unix.gettimeofday () -. t0) in
    let result =
      Mutex.protect st.m_lock (fun () ->
          match Ring.remove st.ring id with
          | exception Invalid_argument msg -> Error msg
          | ring ->
            let before = st.ring in
            st.ring <- ring;
            st.epoch <- st.epoch + 1;
            Hashtbl.remove st.members id;
            Ok (before, ring))
    in
    (match result with
    | Error msg ->
      (* Leave failed (e.g. last shard): the member stays, so undo the
         drain flag rather than stranding it unroutable. *)
      Mutex.protect st.m_lock (fun () -> m.draining <- false);
      P.error_response msg
    | Ok (before, after) ->
      tick st "fleet.leaves";
      let moved = reconfig_gauges st ~before ~after in
      if not drained then
        logf st "shard %s removed with work still in flight after %.0fms" id drained_ms;
      logf st "shard %s left (epoch %d, moved %.3f, drained %.0fms)" id (current_epoch st)
        moved drained_ms;
      P.to_json
        [
          ("ok", P.Bool true);
          ("removed", P.String id);
          ("epoch", P.Int (current_epoch st));
          ("moved_fraction", P.Float moved);
          ("drained", P.Bool drained);
          ("drained_ms", P.Float drained_ms);
        ])

(* {2 Aggregation} *)

let fleet_snapshot st =
  let reg = Obs.Registry.create () in
  let poll_deadline () = Unix.gettimeofday () +. (st.cfg.probe_timeout_ms /. 1000.) in
  List.iter
    (fun m ->
      match forward ~deadline:(poll_deadline ()) st m "metrics" with
      | Answer line -> (
        match Snapshot.merge_into reg line with
        | Ok () -> tick st "fleet.polls"
        | Error msg ->
          tick st "fleet.poll_errors";
          logf st "shard %s: bad metrics snapshot: %s" m.shard.id msg)
      | Busy | Down _ | Stalled -> tick st "fleet.poll_errors")
    (members_snapshot st);
  (* Merge our own counters last so the poll bookkeeping above is part
     of the snapshot it produced. *)
  Mutex.protect st.reg_lock (fun () -> Obs.Registry.merge_into ~into:reg st.reg);
  reg

let stats_response st =
  let members = members_snapshot st in
  let up = List.fold_left (fun n m -> if Health.up m.health then n + 1 else n) 0 members in
  let draining =
    List.fold_left (fun n (m : member) -> if m.draining then n + 1 else n) 0 members
  in
  P.to_json
    [
      ("ok", P.Bool true);
      ("router", P.Bool true);
      ("shards", P.Int (List.length members));
      ("shards_up", P.Int up);
      ("shards_draining", P.Int draining);
      ("epoch", P.Int (current_epoch st));
      ("replicas", P.Int st.replicas);
      ("requests", P.Int (counter_value st "fleet.requests"));
      ("forwarded", P.Int (counter_value st "fleet.forwarded"));
      ("failovers", P.Int (counter_value st "fleet.failovers"));
      ("overloaded", P.Int (counter_value st "fleet.overloaded"));
      ("unavailable", P.Int (counter_value st "fleet.unavailable"));
      ("replicated", P.Int (counter_value st "fleet.replicated"));
      ("coalesced", P.Int (counter_value st "fleet.coalesced"));
      ("deadline_exceeded", P.Int (counter_value st "fleet.deadline_exceeded"));
    ]

(* {2 Request handling} *)

(* Answer a [check] with single-flight coalescing: the first worker in
   on a key leads and does the shard exchange; identical keys arriving
   while it is out park their fd on the flight and are answered with
   the leader's response.  The leader owns every parked fd from the
   moment it collects the flight.  Closes [fd] in all paths. *)
let answer_check st fd line key ~overall =
  let role =
    Mutex.protect st.f_lock (fun () ->
        match Hashtbl.find_opt st.flights key with
        | Some fl ->
          fl.waiters <- fd :: fl.waiters;
          `Follower
        | None ->
          Hashtbl.add st.flights key { waiters = [] };
          `Leader)
  in
  match role with
  | `Follower ->
    (* Parked: the leader replies and closes.  Nothing more to do on
       this worker — which is the point of coalescing. *)
    tick st "fleet.coalesced"
  | `Leader ->
    let resp =
      try route_check st line key ~overall
      with e -> P.error_response (Printexc.to_string e)
    in
    let waiters =
      Mutex.protect st.f_lock (fun () ->
          let fl = Hashtbl.find st.flights key in
          Hashtbl.remove st.flights key;
          fl.waiters)
    in
    reply fd resp;
    close_quietly fd;
    List.iter
      (fun wfd ->
        reply wfd resp;
        close_quietly wfd)
      waiters

(* Parse and answer one connection.  Owns [fd]: every path replies (or
   parks the fd on a flight, transferring ownership to the leader) and
   closes it. *)
let handle st fd =
  let finish line =
    reply fd line;
    close_quietly fd
  in
  let read_deadline = Unix.gettimeofday () +. (st.cfg.request_timeout_ms /. 1000.) in
  match Wire.read_line ~deadline:read_deadline fd with
  | Error msg -> finish (P.error_response msg)
  | Ok line -> (
    tick st "fleet.requests";
    match P.parse_request line with
    | Error msg -> finish (P.error_response msg)
    | Ok P.Ping -> finish (P.to_json [ ("ok", P.Bool true); ("router", P.Bool true) ])
    | Ok P.Stats -> finish (stats_response st)
    | Ok P.Metrics ->
      finish (String.trim (Obs.Export.stats_json (fleet_snapshot st)))
    | Ok P.Shutdown ->
      Atomic.set st.stop true;
      finish (P.to_json [ ("ok", P.Bool true); ("draining", P.Bool true) ])
    | Ok (P.Join { id; addr }) -> finish (handle_join st ~id ~addr_str:addr)
    | Ok (P.Drain { id }) -> finish (handle_drain st ~id)
    | Ok (P.Leave { id }) -> finish (handle_leave st ~id)
    | Ok (P.Check { golden; revised; timeout_ms }) -> (
      (* Key exactly as a shard would, so ring placement and shard
         store identity agree by construction. *)
      match (Service.Server.load_netlist golden, Service.Server.load_netlist revised) with
      | Error msg, _ | _, Error msg -> finish (P.error_response msg)
      | Ok a, Ok b ->
        let budget_ms =
          match timeout_ms with
          | Some ms when ms > 0 -> float_of_int ms
          | Some _ | None -> st.cfg.request_timeout_ms
        in
        let overall = Unix.gettimeofday () +. (budget_ms /. 1000.) in
        answer_check st fd line (Key.to_hex (Key.of_pair a b)) ~overall))

let rec worker_loop st =
  let job =
    Mutex.protect st.q_lock (fun () ->
        let rec wait () =
          if not (Queue.is_empty st.queue) then Some (Queue.pop st.queue)
          else if st.draining then None
          else begin
            Condition.wait st.q_nonempty st.q_lock;
            wait ()
          end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some fd ->
    (* [handle] owns the fd; the backstop below only fires when it
       raised, which it can only do before any close. *)
    (try handle st fd
     with e ->
       reply fd (P.error_response (Printexc.to_string e));
       close_quietly fd);
    worker_loop st

(* {2 Background domains} *)

let rec replicator st =
  let job =
    Mutex.protect st.r_lock (fun () ->
        let rec wait () =
          if not (Queue.is_empty st.repl) then Some (Queue.pop st.repl)
          else if st.r_draining then None
          else begin
            Condition.wait st.r_nonempty st.r_lock;
            wait ()
          end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some (line, ids) ->
    let deadline () = Unix.gettimeofday () +. (st.cfg.request_timeout_ms /. 1000.) in
    List.iter
      (fun id ->
        match member_of st id with
        | None -> ()
        | Some m when m.draining -> ()
        | Some m -> (
          match forward ~deadline:(deadline ()) st m line with
          | Answer _ ->
            note_alive st m;
            tick st "fleet.replicated"
          | Busy ->
            note_alive st m;
            tick st "fleet.replication_failures"
          | Stalled ->
            note_dead st m Wire.deadline_error;
            tick st "fleet.replication_failures"
          | Down msg ->
            note_dead st m msg;
            tick st "fleet.replication_failures"))
      ids;
    replicator st

let rec prober st =
  if not (Atomic.get st.stop) then begin
    List.iter
      (fun m ->
        if not (Atomic.get st.stop) then begin
          tick st "fleet.probes";
          (* A probe that connects but never answers is as dead as a
             refused connect: the deadline turns it into [Stalled]
             instead of blocking the prober forever. *)
          let deadline = Unix.gettimeofday () +. (st.cfg.probe_timeout_ms /. 1000.) in
          match forward ~deadline st m "ping" with
          | Answer _ | Busy -> note_alive st m
          | Stalled ->
            tick st "fleet.probe_failures";
            note_dead st m "probe stalled"
          | Down msg ->
            tick st "fleet.probe_failures";
            note_dead st m msg
        end)
      (members_snapshot st);
    (* Sleep in short slices so shutdown is not gated on the probe
       period. *)
    let rec nap remaining =
      if remaining > 0. && not (Atomic.get st.stop) then begin
        Unix.sleepf (Float.min 0.05 remaining);
        nap (remaining -. 0.05)
      end
    in
    nap (st.cfg.probe_interval_ms /. 1000.);
    prober st
  end

(* {2 Accept loop and life cycle} *)

let enqueue st fd =
  let accepted =
    Mutex.protect st.q_lock (fun () ->
        if st.draining || Queue.length st.queue >= st.cfg.queue_capacity then
          false
        else begin
          Queue.push fd st.queue;
          true
        end)
  in
  if accepted then Condition.signal st.q_nonempty
  else begin
    (* Shed load before reading the request: the client learns the
       retry-after without the router spending a worker on it. *)
    tick st "fleet.overloaded";
    reply fd (overloaded_response st);
    close_quietly fd
  end

let run cfg =
  if cfg.shards = [] then invalid_arg "Router.run: no shards";
  let ids = List.map (fun s -> s.id) cfg.shards in
  let ring = Ring.create ~vnodes:(max 1 cfg.vnodes) ids in
  let members = Hashtbl.create 16 in
  List.iter
    (fun shard ->
      Hashtbl.replace members shard.id
        {
          shard;
          health = Health.create ();
          admission = Admission.create ~capacity:(max 1 cfg.max_inflight);
          draining = false;
        })
    cfg.shards;
  let st =
    {
      cfg;
      replicas = max 1 cfg.replicas;
      m_lock = Mutex.create ();
      ring;
      epoch = 0;
      members;
      f_lock = Mutex.create ();
      flights = Hashtbl.create 64;
      s_lock = Mutex.create ();
      seen = Hashtbl.create 256;
      seen_order = Queue.create ();
      reg = Obs.Registry.create ();
      reg_lock = Mutex.create ();
      q_lock = Mutex.create ();
      q_nonempty = Condition.create ();
      queue = Queue.create ();
      draining = false;
      r_lock = Mutex.create ();
      r_nonempty = Condition.create ();
      repl = Queue.create ();
      r_draining = false;
      stop = Atomic.make false;
    }
  in
  set_gauge st "fleet.ring_epoch" 0.;
  let lfd, actual = Addr.bind_listen cfg.listen in
  cfg.on_listen actual;
  logf st "routing %d shards (replicas %d) on %s"
    (Hashtbl.length members) st.replicas (Addr.to_string actual);
  let on_signal _ = Atomic.set st.stop true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let workers =
    List.init (max 1 cfg.workers) (fun _ ->
        Domain.spawn (fun () -> worker_loop st))
  in
  let prober_d = Domain.spawn (fun () -> prober st) in
  let repl_d = Domain.spawn (fun () -> replicator st) in
  let rec accept_loop () =
    if not (Atomic.get st.stop) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept ~cloexec:true lfd with
        | exception
            Unix.Unix_error
              ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED), _, _) ->
          ()
        | fd, _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          enqueue st fd));
      accept_loop ()
    end
  in
  accept_loop ();
  close_quietly lfd;
  (match actual with
  | Addr.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Addr.Tcp _ -> ());
  Mutex.protect st.q_lock (fun () -> st.draining <- true);
  Condition.broadcast st.q_nonempty;
  List.iter Domain.join workers;
  Domain.join prober_d;
  Mutex.protect st.r_lock (fun () -> st.r_draining <- true);
  Condition.broadcast st.r_nonempty;
  Domain.join repl_d;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let final = fleet_snapshot st in
  (match cfg.stats_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Obs.Export.stats_json final);
    close_out oc);
  logf st
    "drained: %d requests, %d forwarded, %d failovers, %d overloaded, %d unavailable, %d coalesced, %d deadline-exceeded"
    (counter_value st "fleet.requests")
    (counter_value st "fleet.forwarded")
    (counter_value st "fleet.failovers")
    (counter_value st "fleet.overloaded")
    (counter_value st "fleet.unavailable")
    (counter_value st "fleet.coalesced")
    (counter_value st "fleet.deadline_exceeded");
  final
