(** Per-shard health state, fed by both the router's periodic ping
    probes and the outcome of real forwarded requests.

    A shard is [up] until [failure_threshold] {e consecutive} failures
    are recorded (probe timeouts, refused connects, mid-exchange
    EOFs), and up again on the first success — asymmetric on purpose:
    marking down is damped so one dropped packet does not trigger a
    failover stampede, while recovery is instant because the evidence
    (a completed exchange) is definitive.

    Transitions are reported by the recording call, so the caller can
    count and log them exactly once.  All operations are serialized by
    an internal mutex and safe from any domain. *)

type t

(** [create ()] starts [up] with a clean failure count.
    [failure_threshold] defaults to 1 (fail over on first evidence —
    the router retries through replicas anyway, so pessimism is
    cheap). *)
val create : ?failure_threshold:int -> unit -> t

val up : t -> bool

(** Consecutive failures since the last success. *)
val failures : t -> int

(** Record a completed exchange; [true] iff this flipped the shard
    from down to up. *)
val record_success : t -> bool

(** Record a failed exchange; [true] iff this flipped the shard from
    up to down. *)
val record_failure : t -> bool
