(** Per-shard admission control: a concurrency cap on in-flight
    forwarded requests.

    The shard daemons already bound their own queues, but by the time
    a shard bounces a request the router has paid a connect and a
    round trip for a rejection.  Capping in-flight forwards at the
    router keeps the excess load off the wire entirely: a saturated
    shard is skipped in favour of its replicas, and when the whole
    replica set is saturated the client gets one immediate typed
    [overloaded] rejection with a retry-after hint — bounded latency
    under overload instead of collapse.

    A slot is acquired for the duration of one forwarded exchange and
    must be released exactly once.  Mutex-serialized, safe from any
    domain. *)

type t

(** @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> t

val capacity : t -> int
val in_flight : t -> int

(** [true] and a slot held, or [false] when the cap is reached. *)
val try_acquire : t -> bool

(** Release a held slot.  @raise Invalid_argument when no slot is
    held (a double release is always a router bug worth crashing
    loudly on). *)
val release : t -> unit

(** [with_slot t f] runs [f] holding a slot, releasing on any exit;
    [None] when the cap is reached ([f] not run). *)
val with_slot : t -> (unit -> 'a) -> 'a option
