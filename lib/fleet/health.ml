type t = {
  threshold : int;
  lock : Mutex.t;
  mutable up : bool;
  mutable failures : int;
}

let create ?(failure_threshold = 1) () =
  { threshold = max 1 failure_threshold; lock = Mutex.create (); up = true; failures = 0 }

let with_lock t f = Mutex.protect t.lock f

let up t = with_lock t (fun () -> t.up)
let failures t = with_lock t (fun () -> t.failures)

let record_success t =
  with_lock t (fun () ->
      let transitioned = not t.up in
      t.up <- true;
      t.failures <- 0;
      transitioned)

let record_failure t =
  with_lock t (fun () ->
      t.failures <- t.failures + 1;
      let transitioned = t.up && t.failures >= t.threshold in
      if transitioned then t.up <- false;
      transitioned)
