(** Library interface: the proof-stitching equivalence checker.
    [Cec_core.Cec.check], [Cec_core.Sweep.run], [Cec_core.Certify]. *)

module Simclass = Simclass
module Sweep = Sweep
module Cec = Cec
module Parallel = Parallel
module Certify = Certify
