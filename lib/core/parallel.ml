module Lit = Aig.Lit
module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Solver = Sat.Solver
module R = Proof.Resolution

type config = {
  num_domains : int;
  engine : Cec.engine;
  budget : int option;
  escalation : int;
  max_rounds : int;
}

let default_config =
  {
    num_domains = Domain.recommended_domain_count ();
    engine = Cec.Sweeping Sweep.default_config;
    budget = None;
    escalation = 4;
    max_rounds = 3;
  }

type status =
  | Proved
  | Refuted
  | Gave_up
  | Trivial
  | Shared of int
  | Crashed

type partition = {
  output : int;
  cone_ands : int;
  attempts : int;
  conflicts : int;
  sat_calls : int;
  status : status;
}

type stats = {
  partitions : partition array;
  domains : int;
  rounds : int;
  conflicts : int;
  sat_calls : int;
}

type report = {
  verdict : Cec.verdict;
  stats : stats;
  degraded : string option;
}

(* One solving job: a distinct disagreement literal and its fanin cone,
   extracted with the node correspondence needed to re-base the cone's
   refutation onto the miter's numbering.  Worker domains mutate only
   their own job; the main domain reads after joining them. *)
type job = {
  diff : Lit.t;
  cone : Aig.t;
  node_map : int array;
  covers : int; (* first output index settled by this job *)
  mutable result : Cec.report option;
  mutable attempts : int;
  mutable conflicts : int;
  mutable sat_calls : int;
  mutable crashes : int;
  mutable last_error : string option;
}

(* How each output pair is settled. *)
type slot =
  | Slot_trivial (* disagreement literal constant false *)
  | Slot_static_neq (* disagreement literal constant true *)
  | Slot_job of job

let attempt engine budget bdd_cap job =
  Fault.inject "worker.crash";
  let report =
    if Fault.fire "engine.budget" then
      (* Simulated budget blowout: the attempt burns its whole budget
         without deciding, forcing the escalation/give-up machinery. *)
      {
        Cec.verdict = Cec.Undecided;
        sweep_stats = None;
        solver_conflicts = Option.value budget ~default:0;
        sat_calls = 1;
      }
    else Cec.check_miter ?max_conflicts:budget ?bdd_max_nodes:bdd_cap engine job.cone
  in
  job.attempts <- job.attempts + 1;
  job.conflicts <- job.conflicts + report.Cec.solver_conflicts;
  job.sat_calls <- job.sat_calls + report.Cec.sat_calls;
  job.result <- Some report

(* Run one attempt on every job, pulling indices from a shared counter
   (a queue without stealing: jobs are independent, so arrival order
   cannot influence any result).  Returns the worker count used.

   Supervision: a job whose attempt raises (a worker "crash" — real
   bug or injected [worker.crash]) is retried once, immediately, on
   the same worker; a second crash marks the job permanently crashed
   ([job.crashes >= 2], surfaced as status [Crashed] and a degraded
   report) instead of tearing down the whole round.  Each worker
   mutates only the job it popped, so the crash bookkeeping needs no
   synchronization.

   Each worker records observability into its own local registry —
   plain mutation, no synchronization — and the registries are merged
   into the caller's ambient registry after the joins.  Counter and
   histogram merging is commutative, so the aggregate is identical for
   every worker count. *)
let run_round ~num_domains engine budget bdd_cap jobs =
  let n = Array.length jobs in
  if n = 0 then 0
  else begin
    let workers = max 1 (min num_domains n) in
    let next = Atomic.make 0 in
    let round_start = Obs.Clock.now () in
    let work reg () =
      Obs.with_ambient reg (fun () ->
          let o_attempts = Obs.Registry.counter reg "parallel.attempts" in
          let o_job_ms = Obs.Registry.histogram reg "parallel.job_ms" in
          let o_queue_wait_ms = Obs.Registry.histogram reg "parallel.queue_wait_ms" in
          let o_crashes = Obs.Registry.counter reg "parallel.job_crashes" in
          let o_retries = Obs.Registry.counter reg "parallel.job_retries" in
          let crash job e =
            job.crashes <- job.crashes + 1;
            job.last_error <- Some (Printexc.to_string e);
            Obs.Counter.incr o_crashes
          in
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              let job = jobs.(i) in
              let t0 = Obs.Clock.now () in
              Obs.Histogram.observe o_queue_wait_ms (1000.0 *. (t0 -. round_start));
              (try attempt engine budget bdd_cap job
               with e ->
                 crash job e;
                 if job.crashes <= 1 then begin
                   Obs.Counter.incr o_retries;
                   try attempt engine budget bdd_cap job with e2 -> crash job e2
                 end);
              Obs.Counter.incr o_attempts;
              Obs.Histogram.observe o_job_ms (1000.0 *. (Obs.Clock.now () -. t0));
              loop ()
            end
          in
          loop ())
    in
    let parent = Obs.ambient () in
    let regs = Array.init workers (fun _ -> Obs.Registry.create ()) in
    let spawned = Array.init (workers - 1) (fun k -> Domain.spawn (work regs.(k + 1))) in
    work regs.(0) ();
    Array.iter Domain.join spawned;
    Array.iter (fun r -> Obs.Registry.merge_into ~into:parent r) regs;
    workers
  end

let job_undecided job =
  match job.result with
  | Some { Cec.verdict = Cec.Undecided; _ } -> true
  | Some _ -> false
  | None -> true

(* Crashed on both its attempt and the one retry: terminal, never
   rescheduled, reported as [Crashed]. *)
let job_crashed job = job.crashes >= 2 && job_undecided job

let job_refuted job =
  match job.result with
  | Some { Cec.verdict = Cec.Inequivalent _; _ } -> true
  | _ -> false

(* Merge the per-partition refutations into one refutation of the
   combined miter CNF (see the .mli for the construction). *)
let stitch miter diffs formula jobs =
  Fault.inject "proof.lift";
  let s = R.create () in
  let lemma_root : (Clause.t, R.id) Hashtbl.t = Hashtbl.create 16 in
  let lemma_order = ref [] in
  let sections = ref [] in
  let direct = ref None in
  List.iter
    (fun job ->
      match job.result with
      | Some { Cec.verdict = Cec.Equivalent cert; _ } when !direct = None ->
        let map_lit l = Lit.apply_sign (Lit.of_var job.node_map.(Lit.var l)) ~neg:(Lit.is_neg l) in
        let assumption = Clause.singleton job.diff in
        let root =
          R.import_mapped s cert.Cec.proof ~root:cert.Cec.root ~map_lit
            ~map_leaf:(fun _ c ->
              if Clause.equal c assumption then R.add_leaf ~assumption:true s c
              else R.add_leaf s c)
        in
        let lifted, lemma = Proof.Lift.refutation s ~root in
        (* One section per stitched partition: hinted-certificate
           shards check these spans in parallel. *)
        sections := (R.size s - 1) :: !sections;
        if Clause.is_empty lemma then
          (* The partition refuted the definitional clauses alone —
             impossible for consistent Tseitin cones, but if it ever
             happens the derivation already refutes the miter CNF. *)
          direct := Some lifted
        else if (not (Formula.mem formula lemma)) && not (Hashtbl.mem lemma_root lemma) then begin
          Hashtbl.replace lemma_root lemma lifted;
          lemma_order := lemma :: !lemma_order
        end
      | _ -> ())
    jobs;
  let boundaries () = Array.of_list (List.rev !sections) in
  match !direct with
  | Some root -> ({ Cec.proof = s; root; formula; boundaries = boundaries () }, 0)
  | None ->
    (* Final stitch: the asserted output, the output-combining OR
       layer above the disagreement nodes, and the per-partition unit
       lemmas conflict by unit propagation alone.  Importing the tiny
       refutation with lemma leaves replaced by their derivations
       yields a proof whose leaves are all original miter clauses. *)
    let qproof = R.create () in
    let solver = Solver.create ~proof:qproof () in
    Solver.ensure_vars solver (Aig.num_nodes miter);
    Solver.add_clause solver Cnf.Tseitin.constant_unit;
    let stop = Array.make (Aig.num_nodes miter) false in
    Array.iter (fun d -> if not (Lit.is_const d) then stop.(Lit.var d) <- true) diffs;
    let out = Aig.output miter 0 in
    Array.iter
      (fun n -> List.iter (Solver.add_clause solver) (Cnf.Tseitin.clauses_of_and miter n))
      (Aig.Cone.tfi_ands_above miter [ out ] ~stop:(fun n -> stop.(n)));
    Solver.add_clause solver (Clause.singleton out);
    List.iter (Solver.add_clause solver) (List.rev !lemma_order);
    (match Solver.solve solver with
    | Solver.Unsat root ->
      let final =
        R.import s qproof ~root ~map_leaf:(fun _ c ->
            match Hashtbl.find_opt lemma_root c with
            | Some id -> id
            | None -> R.add_leaf s c)
      in
      ( { Cec.proof = s; root = final; formula; boundaries = boundaries () },
        Solver.num_conflicts solver )
    | Solver.Sat _ | Solver.Unknown | Solver.Unsat_assuming _ ->
      failwith "Parallel.check: final stitch call did not refute (internal error)")

let check ?(config = default_config) a b =
  let miter, diffs = Aig.Miter.build_detailed a b in
  let formula = Cnf.Tseitin.miter_formula miter in
  (* Partition: one slot per output pair, one job per distinct
     non-constant disagreement literal. *)
  let job_of_diff : (Lit.t, job) Hashtbl.t = Hashtbl.create 16 in
  let slots =
    Array.mapi
      (fun o diff ->
        if diff = Lit.false_ then Slot_trivial
        else if diff = Lit.true_ then Slot_static_neq
        else
          match Hashtbl.find_opt job_of_diff diff with
          | Some job -> Slot_job job
          | None ->
            let cone, node_map = Aig.extract_cone_map miter [ diff ] in
            let job =
              {
                diff;
                cone;
                node_map;
                covers = o;
                result = None;
                attempts = 0;
                conflicts = 0;
                sat_calls = 0;
                crashes = 0;
                last_error = None;
              }
            in
            Hashtbl.add job_of_diff diff job;
            Slot_job job)
      diffs
  in
  let jobs =
    Array.of_list
      (List.filteri
         (fun o slot -> match slot with Slot_job j -> j.covers = o | _ -> false)
         (Array.to_list slots)
      |> List.map (function Slot_job j -> j | _ -> assert false))
  in
  (* Largest cones first: pure scheduling, invisible in the results. *)
  let schedule = Array.copy jobs in
  Array.sort
    (fun x y ->
      match compare (Aig.num_ands y.cone) (Aig.num_ands x.cone) with
      | 0 -> compare x.covers y.covers
      | c -> c)
    schedule;
  let num_domains = max 1 config.num_domains in
  let escalation = max 2 config.escalation in
  let reg = Obs.ambient () in
  let o_rounds = Obs.Registry.counter reg "parallel.rounds" in
  let o_escalations = Obs.Registry.counter reg "parallel.budget_escalations" in
  Obs.Counter.add (Obs.Registry.counter reg "parallel.partitions") (Array.length slots);
  Obs.Counter.add (Obs.Registry.counter reg "parallel.jobs") (Array.length jobs);
  let rounds = ref 0 in
  let domains_used = ref (if Array.length schedule = 0 then 1 else 0) in
  let budget_for round =
    Option.map (fun b -> b * int_of_float (float_of_int escalation ** float_of_int round)) config.budget
  in
  (* Engine cutoffs ride the same escalation schedule: a portfolio
     sweep's per-candidate BDD node cap grows with the conflict budget,
     so a cone whose BDD blew up in round 0 gets a real second chance
     rather than hitting the identical cap again. *)
  let bdd_cap_for round =
    match config.engine with
    | Cec.Sweeping { Sweep.portfolio = Sweep.Bdd_first | Sweep.Hybrid; bdd_max_nodes; _ } ->
      Some (bdd_max_nodes * int_of_float (float_of_int escalation ** float_of_int round))
    | _ -> None
  in
  let pending = ref schedule in
  let continue = ref (Array.length schedule > 0) in
  while !continue do
    let budget = budget_for !rounds in
    Obs.Counter.incr o_rounds;
    if !rounds > 0 then Obs.Counter.incr o_escalations;
    let used =
      Obs.Span.with_ reg "parallel.round" (fun () ->
          run_round ~num_domains config.engine budget (bdd_cap_for !rounds) !pending)
    in
    domains_used := max !domains_used used;
    incr rounds;
    let undecided =
      Array.of_list
        (List.filter (fun j -> job_undecided j && not (job_crashed j)) (Array.to_list !pending))
    in
    pending := undecided;
    continue :=
      Array.length undecided > 0
      && budget <> None
      && !rounds < max 1 config.max_rounds
      && not (Array.exists job_refuted jobs)
  done;
  (* Aggregate in output order — completion order is irrelevant. *)
  let partitions =
    Array.mapi
      (fun o slot ->
        match slot with
        | Slot_trivial ->
          { output = o; cone_ands = 0; attempts = 0; conflicts = 0; sat_calls = 0; status = Trivial }
        | Slot_static_neq ->
          { output = o; cone_ands = 0; attempts = 0; conflicts = 0; sat_calls = 0; status = Refuted }
        | Slot_job job ->
          let status =
            match job.result with
            | Some { Cec.verdict = Cec.Equivalent _; _ } -> Proved
            | Some { Cec.verdict = Cec.Inequivalent _; _ } -> Refuted
            | Some { Cec.verdict = Cec.Undecided; _ } | None ->
              if job_crashed job then Crashed else Gave_up
          in
          if job.covers = o then
            {
              output = o;
              cone_ands = Aig.num_ands job.cone;
              attempts = job.attempts;
              conflicts = job.conflicts;
              sat_calls = job.sat_calls;
              status;
            }
          else
            {
              output = o;
              cone_ands = Aig.num_ands job.cone;
              attempts = 0;
              conflicts = 0;
              sat_calls = 0;
              status =
                (match status with
                | Refuted -> Refuted
                | Gave_up -> Gave_up
                | Crashed -> Crashed
                | _ -> Shared job.covers);
            })
      slots
  in
  let witness = function
    | Slot_static_neq -> Some (Array.make (Aig.num_inputs miter) false)
    | Slot_job { result = Some { Cec.verdict = Cec.Inequivalent cex; _ }; _ } -> Some cex
    | _ -> None
  in
  let first_cex = Array.to_list slots |> List.find_map witness in
  let gave_up =
    Array.exists (fun p -> match p.status with Gave_up -> true | _ -> false) partitions
  in
  let crashed = Array.to_list jobs |> List.filter job_crashed in
  let crash_reason () =
    let detail =
      match List.find_map (fun j -> j.last_error) crashed with
      | Some msg -> ": " ^ msg
      | None -> ""
    in
    Printf.sprintf "%d partition job(s) crashed twice%s" (List.length crashed) detail
  in
  let base_conflicts = Array.fold_left (fun acc j -> acc + j.conflicts) 0 jobs in
  let base_calls = Array.fold_left (fun acc j -> acc + j.sat_calls) 0 jobs in
  let verdict, degraded, extra_conflicts, extra_calls =
    match first_cex with
    | Some cex -> (Cec.Inequivalent cex, None, 0, 0)
    | None ->
      if crashed <> [] then (Cec.Undecided, Some (crash_reason ()), 0, 0)
      else if gave_up then (Cec.Undecided, None, 0, 0)
      else begin
        (* Proof stitching is post-verdict work: every partition is
           already proved.  If it still fails (a lifting bug, or the
           injected [proof.lift] fault) the honest answer is an
           uncertified [Undecided], never an [Equivalent] without a
           checkable certificate. *)
        match
          Obs.Span.with_ reg "parallel.stitch" (fun () ->
              stitch miter diffs formula (Array.to_list jobs))
        with
        | cert, stitch_conflicts -> (Cec.Equivalent cert, None, stitch_conflicts, 1)
        | exception e ->
          Obs.Counter.incr (Obs.Registry.counter reg "parallel.stitch_failures");
          ( Cec.Undecided,
            Some (Printf.sprintf "certificate stitching failed: %s" (Printexc.to_string e)),
            0,
            0 )
      end
  in
  {
    verdict;
    degraded;
    stats =
      {
        partitions;
        domains = !domains_used;
        rounds = !rounds;
        conflicts = base_conflicts + extra_conflicts;
        sat_calls = base_calls + extra_calls;
      };
  }
