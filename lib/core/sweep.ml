module Lit = Aig.Lit
module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Solver = Sat.Solver
module R = Proof.Resolution

type mode =
  | Perpair
  | Incremental

let mode_to_string = function Perpair -> "perpair" | Incremental -> "incr"

let mode_of_string = function
  | "perpair" | "per-pair" -> Some Perpair
  | "incr" | "incremental" -> Some Incremental
  | _ -> None

type config = {
  words : int;
  seed : int;
  max_conflicts : int option;
  lemma_reuse : bool;
  mode : mode;
}

let default_config =
  { words = 8; seed = 1; max_conflicts = None; lemma_reuse = true; mode = Perpair }

type stats = {
  mutable sat_calls : int;
  mutable cex : int;
  mutable unknowns : int;
  mutable merges : int;
  mutable const_merges : int;
  mutable lemmas : int;
  mutable conflicts : int;
  mutable reused : int;
}

let fresh_stats () =
  {
    sat_calls = 0;
    cex = 0;
    unknowns = 0;
    merges = 0;
    const_merges = 0;
    lemmas = 0;
    conflicts = 0;
    reused = 0;
  }

(* Ambient-registry handles, resolved once per engine. *)
type obs_handles = {
  o_sat_calls : Obs.Counter.t;
  o_refuted : Obs.Counter.t;
  o_cex : Obs.Counter.t;
  o_budget : Obs.Counter.t;
  o_lemmas : Obs.Counter.t;
  o_merges : Obs.Counter.t;
  o_const_merges : Obs.Counter.t;
  o_sim_refinements : Obs.Counter.t;
  o_reuse : Obs.Counter.t;
}

let obs_handles () =
  let reg = Obs.ambient () in
  let c = Obs.Registry.counter reg in
  {
    o_sat_calls = c "sweep.sat_calls";
    o_refuted = c "sweep.sat_refuted";
    o_cex = c "sweep.sat_cex";
    o_budget = c "sweep.sat_budget";
    o_lemmas = c "sweep.lemmas";
    o_merges = c "sweep.merges";
    o_const_merges = c "sweep.const_merges";
    o_sim_refinements = c "sweep.sim_refinements";
    o_reuse = c "sweep.incremental_reuse";
  }

type outcome =
  | Proved of {
      proof : R.t;
      root : R.id;
      formula : Formula.t;
      boundaries : R.id array;
    }
  | Disproved of bool array
  | Unresolved

(* Result of one equivalence query. *)
type query_result =
  | Refuted of R.id * Clause.t (* derivation root (in the global proof) and lemma clause *)
  | Countermodel of bool array (* input assignment *)
  | Budget

(* The generic sweeping skeleton: an engine provides the SAT query; the
   skeleton walks nodes in topological order, settles each against its
   simulation-class leader, refines on counterexamples and records
   merges.  Lemma registration is engine-specific. *)
type engine = {
  g : Aig.t;
  cfg : config;
  stats : stats;
  obs : obs_handles;
  simc : Simclass.t;
  merged : (int * bool) option array;
  query : lits:Lit.t list -> assumptions:Lit.t list -> query_result;
  try_reuse : lits:Lit.t list -> assumptions:Lit.t list -> query_result option;
      (* settle a query from facts the engine already holds, without a
         SAT call; [None] means a real query is needed *)
  register_lemma : Clause.t -> R.id -> unit;
}

let extract_inputs g model =
  Array.init (Aig.num_inputs g) (fun i ->
      let v = Lit.var (Aig.input g i) in
      v < Array.length model && model.(v))

(* Prove node [n] equal to the constant given by [phase]: one
   refutation; its lemma [(~n)] or [(n)] subsumes both equivalence
   clauses. *)
let prove_constant e n phase =
  let ln = Lit.of_var n in
  let assumption = if phase then Lit.neg ln else ln in
  match e.query ~lits:[ ln ] ~assumptions:[ assumption ] with
  | Refuted (root, lemma) ->
    e.register_lemma lemma root;
    e.stats.const_merges <- e.stats.const_merges + 1;
    Obs.Counter.incr e.obs.o_const_merges;
    `Merged
  | Countermodel inputs ->
    e.stats.cex <- e.stats.cex + 1;
    Simclass.add_pattern e.simc inputs;
    `Cex
  | Budget ->
    e.stats.unknowns <- e.stats.unknowns + 1;
    `Gave_up

(* Prove node [n] equal to leader [r] up to [phase]: two refutations,
   one implication lemma each. *)
let prove_pair e n r phase =
  let ln = Lit.of_var n in
  let lr = Lit.apply_sign (Lit.of_var r) ~neg:phase in
  let lits = [ ln; Lit.of_var r ] in
  match e.query ~lits ~assumptions:[ ln; Lit.neg lr ] with
  | Countermodel inputs ->
    e.stats.cex <- e.stats.cex + 1;
    Simclass.add_pattern e.simc inputs;
    `Cex
  | Budget ->
    e.stats.unknowns <- e.stats.unknowns + 1;
    `Gave_up
  | Refuted (root_a, lemma_a) -> (
    match e.query ~lits ~assumptions:[ Lit.neg ln; lr ] with
    | Countermodel inputs ->
      e.stats.cex <- e.stats.cex + 1;
      Simclass.add_pattern e.simc inputs;
      `Cex
    | Budget ->
      e.stats.unknowns <- e.stats.unknowns + 1;
      `Gave_up
    | Refuted (root_b, lemma_b) ->
      e.register_lemma lemma_a root_a;
      e.register_lemma lemma_b root_b;
      e.stats.merges <- e.stats.merges + 1;
      Obs.Counter.incr e.obs.o_merges;
      `Merged)

(* Settle one AND node against its current class leader, retrying after
   counterexample refinements (each refinement strictly splits the
   class, so this terminates). *)
let rec settle e n =
  match Simclass.candidate e.simc n with
  | None -> ()
  | Some (r, phase) ->
    let verdict = if r = 0 then prove_constant e n phase else prove_pair e n r phase in
    (match verdict with
    | `Merged -> e.merged.(n) <- Some (r, phase)
    | `Gave_up -> ()
    | `Cex -> settle e n)

let sweep_all e = Aig.iter_ands e.g (fun n -> settle e n)

(* --- mode 1: a fresh solver per query, assumption-unit clauses,
       lifting, and explicit import into the global proof ------------ *)

type fresh_state = {
  miter_cnf : Formula.t;
  global : R.t;
  lemma_root : (Clause.t, R.id) Hashtbl.t;
  mutable lemma_list : Clause.t list;
  lemmas_by_max_var : (int, Clause.t list) Hashtbl.t;
  mutable sections : R.id list;
      (* last global proof node of each imported per-query refutation,
         newest first: section boundaries for hinted certificate
         emission ({!Proof.Binfmt.encode_hinted}) *)
}

let fresh_register o st stats clause root =
  if not (Hashtbl.mem st.lemma_root clause) then begin
    Hashtbl.replace st.lemma_root clause root;
    st.lemma_list <- clause :: st.lemma_list;
    let key = Clause.max_var clause in
    let existing = Option.value ~default:[] (Hashtbl.find_opt st.lemmas_by_max_var key) in
    Hashtbl.replace st.lemmas_by_max_var key (clause :: existing);
    stats.lemmas <- stats.lemmas + 1;
    Obs.Counter.incr o.o_lemmas
  end

(* Import a lifted derivation from a per-query proof into the global
   proof: miter clauses become (hash-consed) global leaves, previously
   proved lemmas are replaced by their derivations. *)
let fresh_import st qproof root =
  R.import st.global qproof ~root ~map_leaf:(fun _id c ->
      match Hashtbl.find_opt st.lemma_root c with
      | Some lemma_id -> lemma_id
      | None ->
        assert (Formula.mem st.miter_cnf c);
        R.add_leaf st.global c)

let fresh_query g cfg st stats ~lits ~assumptions =
  stats.sat_calls <- stats.sat_calls + 1;
  let qproof = R.create () in
  let solver = Solver.create ~proof:qproof () in
  let cone = Aig.Cone.tfi g lits in
  let in_cone = Array.make (Aig.num_nodes g) false in
  in_cone.(0) <- true;
  Array.iter (fun n -> in_cone.(n) <- true) cone;
  Solver.add_formula solver (Cnf.Tseitin.of_cone g lits);
  if cfg.lemma_reuse then
    Array.iter
      (fun n ->
        match Hashtbl.find_opt st.lemmas_by_max_var n with
        | None -> ()
        | Some lemmas ->
          List.iter
            (fun c ->
              if Clause.fold (fun acc l -> acc && in_cone.(Lit.var l)) true c then
                Solver.add_clause solver c)
            lemmas)
      cone;
  List.iter (fun l -> Solver.add_clause ~assumption:true solver (Clause.singleton l)) assumptions;
  let result =
    match Solver.solve ?max_conflicts:cfg.max_conflicts solver with
    | Solver.Sat model -> Countermodel (extract_inputs g model)
    | Solver.Unknown -> Budget
    | Solver.Unsat_assuming _ ->
      (* Assumptions are passed as clauses in this mode. *)
      assert false
    | Solver.Unsat root ->
      let lifted_root, lemma = Proof.Lift.refutation qproof ~root in
      let global_root = fresh_import st qproof lifted_root in
      st.sections <- (R.size st.global - 1) :: st.sections;
      Refuted (global_root, lemma)
  in
  stats.conflicts <- stats.conflicts + Solver.num_conflicts solver;
  result

let fresh_final g cfg st stats =
  stats.sat_calls <- stats.sat_calls + 1;
  let qproof = R.create () in
  let solver = Solver.create ~proof:qproof () in
  Solver.add_formula solver st.miter_cnf;
  if cfg.lemma_reuse then List.iter (Solver.add_clause solver) st.lemma_list;
  let result =
    match Solver.solve ?max_conflicts:cfg.max_conflicts solver with
    | Solver.Sat model -> Disproved (extract_inputs g model)
    | Solver.Unknown | Solver.Unsat_assuming _ ->
      stats.unknowns <- stats.unknowns + 1;
      Unresolved
    | Solver.Unsat root ->
      let global_root = fresh_import st qproof root in
      Proved
        {
          proof = st.global;
          root = global_root;
          formula = st.miter_cnf;
          boundaries = Array.of_list (List.rev st.sections);
        }
  in
  stats.conflicts <- stats.conflicts + Solver.num_conflicts solver;
  result

let make_fresh_engine g cfg ~formula =
  let st =
    {
      miter_cnf = formula;
      global = R.create ();
      lemma_root = Hashtbl.create 256;
      lemma_list = [];
      lemmas_by_max_var = Hashtbl.create 256;
      sections = [];
    }
  in
  let stats = fresh_stats () in
  let o = obs_handles () in
  let engine =
    {
      g;
      cfg;
      stats;
      obs = o;
      simc = Simclass.create g ~words:cfg.words ~seed:cfg.seed;
      merged = Array.make (Aig.num_nodes g) None;
      query = (fun ~lits ~assumptions -> fresh_query g cfg st stats ~lits ~assumptions);
      try_reuse = (fun ~lits:_ ~assumptions:_ -> None);
      register_lemma = (fun clause root -> fresh_register o st stats clause root);
    }
  in
  (engine, fun () -> fresh_final g cfg st stats)

(* --- mode 2: one incremental solver whose proof store IS the global
       proof; native assumptions; lemmas installed as derived clauses - *)

let make_incremental_engine g cfg ~formula =
  let global = R.create () in
  let solver = Solver.create ~proof:global () in
  Solver.ensure_vars solver (Aig.num_nodes g);
  Solver.add_clause solver Cnf.Tseitin.constant_unit;
  let added = Array.make (Aig.num_nodes g) false in
  let stats = fresh_stats () in
  let o = obs_handles () in
  let prev_conflicts = ref 0 in
  let account () =
    stats.conflicts <- stats.conflicts + (Solver.num_conflicts solver - !prev_conflicts);
    prev_conflicts := Solver.num_conflicts solver
  in
  let add_cone lits =
    Array.iter
      (fun n ->
        if not added.(n) then begin
          added.(n) <- true;
          List.iter (Solver.add_clause solver) (Cnf.Tseitin.clauses_of_and g n)
        end)
      (Aig.Cone.tfi_ands g lits)
  in
  let sections = ref [] in
  let query ~lits ~assumptions =
    stats.sat_calls <- stats.sat_calls + 1;
    add_cone lits;
    let result =
      match Solver.solve ?max_conflicts:cfg.max_conflicts ~assumptions solver with
      | Solver.Sat model -> Countermodel (extract_inputs g model)
      | Solver.Unknown -> Budget
      | Solver.Unsat_assuming { clause; pid } ->
        sections := (Solver.proof_size solver - 1) :: !sections;
        Refuted (pid, clause)
      | Solver.Unsat _ ->
        (* The definitional clauses alone are satisfiable, so a global
           refutation can only mean a programming error. *)
        assert false
    in
    account ();
    result
  in
  (* Facts fixed at the solver's root level — constant nodes discovered
     by earlier merges and their propagation closure — settle a query
     without searching: refuting assumption [a] only needs the unit
     [~a], and [Solver.derive_fixed] builds its derivation straight
     from the reason chain already on the trail.  This is knowledge the
     per-pair engine rediscovers from scratch on every query.  The cone
     is loaded and root propagation run first, so units implied by
     earlier lemmas through this query's own cone count too. *)
  let try_reuse ~lits ~assumptions =
    add_cone lits;
    Solver.propagate_root solver;
    match List.find_map (fun a -> Solver.derive_fixed solver (Lit.neg a)) assumptions with
    | Some (clause, pid) -> Some (Refuted (pid, clause))
    | None -> None
  in
  let register_lemma clause pid =
    (* The lemma becomes an ordinary solver clause backed by its
       derivation: later queries stitch through it for free. *)
    if cfg.lemma_reuse then Solver.add_derived_clause solver clause pid;
    stats.lemmas <- stats.lemmas + 1;
    Obs.Counter.incr o.o_lemmas
  in
  let engine =
    {
      g;
      cfg;
      stats;
      obs = o;
      simc = Simclass.create g ~words:cfg.words ~seed:cfg.seed;
      merged = Array.make (Aig.num_nodes g) None;
      query;
      try_reuse;
      register_lemma;
    }
  in
  let finalize () =
    stats.sat_calls <- stats.sat_calls + 1;
    add_cone [ Aig.output g 0 ];
    Solver.add_clause solver (Clause.singleton (Aig.output g 0));
    let result =
      match Solver.solve ?max_conflicts:cfg.max_conflicts solver with
      | Solver.Sat model -> Disproved (extract_inputs g model)
      | Solver.Unknown | Solver.Unsat_assuming _ ->
        stats.unknowns <- stats.unknowns + 1;
        Unresolved
      | Solver.Unsat root ->
        Proved
          { proof = global; root; formula; boundaries = Array.of_list (List.rev !sections) }
    in
    account ();
    result
  in
  (engine, finalize)

(* --- entry points ------------------------------------------------- *)

let make_engine g cfg ~formula =
  let engine, finalize =
    match cfg.mode with
    | Incremental -> make_incremental_engine g cfg ~formula
    | Perpair -> make_fresh_engine g cfg ~formula
  in
  (* Wrap the engine-specific callbacks so every mode records the same
     observability counters at the same points.  A query settled from
     already-held facts counts only as a reuse, never as a SAT call. *)
  let o = engine.obs in
  let query ~lits ~assumptions =
    match engine.try_reuse ~lits ~assumptions with
    | Some r ->
      engine.stats.reused <- engine.stats.reused + 1;
      Obs.Counter.incr o.o_reuse;
      r
    | None ->
      Obs.Counter.incr o.o_sat_calls;
      let r = engine.query ~lits ~assumptions in
      (match r with
      | Refuted _ -> Obs.Counter.incr o.o_refuted
      | Countermodel _ ->
        Obs.Counter.incr o.o_cex;
        (* Every sweeping countermodel becomes a refinement pattern. *)
        Obs.Counter.incr o.o_sim_refinements
      | Budget -> Obs.Counter.incr o.o_budget);
      r
  in
  let finalize () =
    Obs.Counter.incr o.o_sat_calls;
    let outcome = finalize () in
    (match outcome with
    | Proved _ -> Obs.Counter.incr o.o_refuted
    | Disproved _ -> Obs.Counter.incr o.o_cex
    | Unresolved -> Obs.Counter.incr o.o_budget);
    outcome
  in
  ({ engine with query }, finalize)

let run g cfg =
  if Aig.num_outputs g <> 1 then invalid_arg "Sweep.run: expected a single-output miter";
  let engine, finalize = make_engine g cfg ~formula:(Cnf.Tseitin.miter_formula g) in
  sweep_all engine;
  (finalize (), engine.stats)

(* Functional reduction (fraiging): sweep an arbitrary graph and
   rebuild it with every proved-equivalent node replaced by its class
   representative.  Every replacement is SAT-proved against the
   graph's own Tseitin CNF, so the result computes the same functions. *)
let fraig g cfg =
  let engine, _finalize =
    (* fraig makes no final call and works on arbitrary graphs: the
       leaf universe is the graph's own Tseitin CNF. *)
    make_engine g cfg ~formula:(Cnf.Tseitin.of_graph g)
  in
  sweep_all engine;
  let fresh = Aig.create ~num_inputs:(Aig.num_inputs g) in
  let map = Array.make (Aig.num_nodes g) Lit.false_ in
  for i = 0 to Aig.num_inputs g - 1 do
    map.(1 + i) <- Aig.input fresh i
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  Aig.iter_ands g (fun n ->
      map.(n) <-
        (match engine.merged.(n) with
        | Some (r, phase) -> Lit.apply_sign map.(r) ~neg:phase
        | None -> Aig.and_ fresh (map_lit (Aig.fanin0 g n)) (map_lit (Aig.fanin1 g n))));
  Array.iter (fun l -> Aig.add_output fresh (map_lit l)) (Aig.outputs g);
  (fresh, engine.stats)
