module Lit = Aig.Lit
module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Solver = Sat.Solver
module R = Proof.Resolution

type mode =
  | Perpair
  | Incremental

let mode_to_string = function Perpair -> "perpair" | Incremental -> "incr"

let mode_of_string = function
  | "perpair" | "per-pair" -> Some Perpair
  | "incr" | "incremental" -> Some Incremental
  | _ -> None

type portfolio =
  | Sat_only
  | Bdd_first
  | Hybrid

let portfolio_to_string = function
  | Sat_only -> "sat"
  | Bdd_first -> "bdd"
  | Hybrid -> "hybrid"

let portfolio_of_string = function
  | "sat" -> Some Sat_only
  | "bdd" -> Some Bdd_first
  | "hybrid" -> Some Hybrid
  | _ -> None

type config = {
  words : int;
  seed : int;
  max_conflicts : int option;
  lemma_reuse : bool;
  mode : mode;
  portfolio : portfolio;
  bdd_max_nodes : int;
  sim_refine_width : int;
}

let default_config =
  {
    words = 8;
    seed = 1;
    max_conflicts = None;
    lemma_reuse = true;
    mode = Perpair;
    portfolio = Sat_only;
    bdd_max_nodes = 20_000;
    sim_refine_width = 10;
  }

type stats = {
  mutable sat_calls : int;
  mutable cex : int;
  mutable unknowns : int;
  mutable merges : int;
  mutable const_merges : int;
  mutable lemmas : int;
  mutable conflicts : int;
  mutable reused : int;
  mutable bdd_proved : int;
  mutable bdd_cex : int;
  mutable bdd_blowups : int;
  mutable sim_proved : int;
  mutable sim_splits : int;
}

let fresh_stats () =
  {
    sat_calls = 0;
    cex = 0;
    unknowns = 0;
    merges = 0;
    const_merges = 0;
    lemmas = 0;
    conflicts = 0;
    reused = 0;
    bdd_proved = 0;
    bdd_cex = 0;
    bdd_blowups = 0;
    sim_proved = 0;
    sim_splits = 0;
  }

(* Ambient-registry handles, resolved once per engine. *)
type obs_handles = {
  o_sat_calls : Obs.Counter.t;
  o_refuted : Obs.Counter.t;
  o_cex : Obs.Counter.t;
  o_budget : Obs.Counter.t;
  o_lemmas : Obs.Counter.t;
  o_merges : Obs.Counter.t;
  o_const_merges : Obs.Counter.t;
  o_sim_refinements : Obs.Counter.t;
  o_reuse : Obs.Counter.t;
}

let obs_handles () =
  let reg = Obs.ambient () in
  let c = Obs.Registry.counter reg in
  {
    o_sat_calls = c "sweep.sat_calls";
    o_refuted = c "sweep.sat_refuted";
    o_cex = c "sweep.sat_cex";
    o_budget = c "sweep.sat_budget";
    o_lemmas = c "sweep.lemmas";
    o_merges = c "sweep.merges";
    o_const_merges = c "sweep.const_merges";
    o_sim_refinements = c "sweep.sim_refinements";
    o_reuse = c "sweep.incremental_reuse";
  }

type outcome =
  | Proved of {
      proof : R.t;
      root : R.id;
      formula : Formula.t;
      boundaries : R.id array;
    }
  | Disproved of bool array
  | Unresolved

(* Result of one equivalence query. *)
type query_result =
  | Refuted of R.id * Clause.t (* derivation root (in the global proof) and lemma clause *)
  | Countermodel of bool array (* input assignment *)
  | Budget

(* Verdict of the pre-SAT portfolio stages (simulation refinement and
   the BDD closer) on one candidate. *)
type probe_verdict =
  | Probe_cex of bool array
      (* distinguishing input assignment: the candidate is false, no
         SAT call needed — the pattern splits the class *)
  | Probe_equal
      (* functionally proved equal; the SAT query that follows only
         re-derives the merge as a resolution lemma, keeping the
         stitched certificate resolution-only *)
  | Probe_unknown (* nothing learned: plain SAT *)

(* The generic sweeping skeleton: an engine provides the SAT query; the
   skeleton walks nodes in topological order, settles each against its
   simulation-class leader, refines on counterexamples and records
   merges.  Lemma registration is engine-specific. *)
type engine = {
  g : Aig.t;
  cfg : config;
  stats : stats;
  obs : obs_handles;
  simc : Simclass.t;
  merged : (int * bool) option array;
  probe : int -> int -> bool -> probe_verdict;
      (* [probe n r phase] runs the portfolio's pre-SAT stages on the
         candidate "node [n] equals leader [r] up to [phase]" ([r = 0]
         means the constant given by [phase]).  The identity
         [fun _ _ _ -> Probe_unknown] is pure SAT sweeping. *)
  query : lits:Lit.t list -> assumptions:Lit.t list -> query_result;
  try_reuse : lits:Lit.t list -> assumptions:Lit.t list -> query_result option;
      (* settle a query from facts the engine already holds, without a
         SAT call; [None] means a real query is needed *)
  register_lemma : Clause.t -> R.id -> unit;
}

let extract_inputs g model =
  Array.init (Aig.num_inputs g) (fun i ->
      let v = Lit.var (Aig.input g i) in
      v < Array.length model && model.(v))

(* --- pre-SAT portfolio stages: simulation refinement + BDD closer --

   Both candidate literals are extracted as the two outputs of one
   shared-input cone ({!Aig.extract_cone} keeps every primary input
   identically numbered), so any distinguishing assignment found over
   the cone is directly a global refinement pattern. *)

type portfolio_obs = {
  p_sim_splits : Obs.Counter.t;
  p_sim_proved : Obs.Counter.t;
  p_bdd_proved : Obs.Counter.t;
  p_bdd_cex : Obs.Counter.t;
  p_bdd_blowups : Obs.Counter.t;
  p_fallbacks : Obs.Counter.t;
  p_route_bdd : Obs.Counter.t;
  p_route_sat : Obs.Counter.t;
  p_route_race : Obs.Counter.t;
  p_cone_width : Obs.Histogram.t;
  p_cone_ands : Obs.Histogram.t;
}

(* Resolved only when the portfolio is active: a pure-SAT sweep must
   not register engine.* metrics (the observability goldens pin the
   full counter set of the default path). *)
let portfolio_obs () =
  let reg = Obs.ambient () in
  let c = Obs.Registry.counter reg in
  {
    p_sim_splits = c "engine.sim_splits";
    p_sim_proved = c "engine.sim_proved";
    p_bdd_proved = c "engine.bdd_proved";
    p_bdd_cex = c "engine.bdd_cex";
    p_bdd_blowups = c "engine.bdd_blowups";
    p_fallbacks = c "engine.fallbacks";
    p_route_bdd = c "engine.route_bdd";
    p_route_sat = c "engine.route_sat";
    p_route_race = c "engine.route_race";
    p_cone_width =
      Obs.Registry.histogram ~bounds:[| 4.; 8.; 16.; 32.; 64.; 128. |] reg "engine.cone_width";
    p_cone_ands =
      Obs.Registry.histogram
        ~bounds:[| 16.; 64.; 256.; 1024.; 4096.; 16384. |]
        reg "engine.cone_ands";
  }

(* Exhaustive bit-parallel simulation over the candidate cone's support
   — complete on [2^width] patterns, so "no differing pattern" IS
   functional equality, and a differing pattern index encodes a
   counterexample assignment.  Pattern bits beyond [2^width] in a
   partial word repeat earlier assignments (index bits above [width]
   drive no support input), so no masking is needed on either side. *)
let sim_refine cone support width =
  let words = max 1 ((1 lsl width) / 64) in
  let sim = Aig.Sim.create cone ~words in
  Array.iteri
    (fun k input ->
      for w = 0 to words - 1 do
        let v = ref 0L in
        for off = 0 to 63 do
          if (((w * 64) + off) lsr k) land 1 = 1 then
            v := Int64.logor !v (Int64.shift_left 1L off)
        done;
        Aig.Sim.set_input_word sim ~input ~word:w !v
      done)
    support;
  Aig.Sim.run sim;
  let la = Aig.output cone 0 and lb = Aig.output cone 1 in
  let diff = ref (-1) in
  (try
     for w = 0 to words - 1 do
       let d = Int64.logxor (Aig.Sim.lit_word sim la w) (Aig.Sim.lit_word sim lb w) in
       if d <> 0L then begin
         let off = ref 0 in
         while Int64.logand (Int64.shift_right_logical d !off) 1L = 0L do
           incr off
         done;
         diff := (w * 64) + !off;
         raise Exit
       end
     done
   with Exit -> ());
  if !diff < 0 then `Equal
  else begin
    let p = !diff in
    let pattern = Array.make (Aig.num_inputs cone) false in
    Array.iteri (fun k input -> pattern.(input) <- (p lsr k) land 1 = 1) support;
    `Cex pattern
  end

(* Structural XOR scan: count AND nodes of shape
   [~(x & y) & ~(~x & ~y)] (XOR/XNOR up to output sign).  Rewriting can
   dissolve the textbook shape, so the selector backs this up with the
   functional projection probe below. *)
let xor_roots g =
  let count = ref 0 in
  Aig.iter_ands g (fun n ->
      let f0 = Aig.fanin0 g n and f1 = Aig.fanin1 g n in
      if
        Lit.is_neg f0 && Lit.is_neg f1
        && Aig.is_and_node g (Lit.var f0)
        && Aig.is_and_node g (Lit.var f1)
      then begin
        let a = Lit.var f0 and b = Lit.var f1 in
        let a0 = Aig.fanin0 g a and a1 = Aig.fanin1 g a in
        let b0 = Aig.fanin0 g b and b1 = Aig.fanin1 g b in
        let opp u v = Lit.var u = Lit.var v && Lit.is_neg u <> Lit.is_neg v in
        if (opp a0 b0 && opp a1 b1) || (opp a0 b1 && opp a1 b0) then incr count
      end);
  !count

(* Functional XOR probe: project the candidate function onto its first
   six support inputs (the rest held at zero) and price the
   projection's irredundant cover ({!Synth.Isop}).  A parity-like
   projection costs [vars * 2^(vars-1)] literals — at least [2^vars] —
   while control logic (AND/OR/MUX trees) stays far below; this
   catches XOR-dense arithmetic whose structural shape rewriting has
   dissolved. *)
let projection_sop_dense cone support =
  let vars = min 6 (Array.length support) in
  if vars < 4 then false
  else begin
    let sim = Aig.Sim.create cone ~words:1 in
    for k = 0 to vars - 1 do
      let v = ref 0L in
      for p = 0 to 63 do
        if (p lsr k) land 1 = 1 then v := Int64.logor !v (Int64.shift_left 1L p)
      done;
      Aig.Sim.set_input_word sim ~input:support.(k) ~word:0 !v
    done;
    Aig.Sim.run sim;
    let mask =
      if vars = 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl vars)) 1L
    in
    let truth = Int64.logand (Aig.Sim.lit_word sim (Aig.output cone 0) 0) mask in
    Synth.Isop.literal_count (Synth.Isop.compute ~vars truth) >= 1 lsl vars
  end

type route =
  | Route_bdd (* full node budget *)
  | Route_sat (* skip the BDD: predicted blowup *)
  | Route_race (* reduced node budget, SAT on blowup *)

(* Cone features -> route.  Narrow or small cones go to the BDD
   (canonical and fast there); XOR-dense cones deeper than their
   support is wide — the multiplier signature (carry-save chains run
   deeper than the operand width, while comparator/parity chains stay
   shallower than their input count) — go straight to SAT rather than
   burning the node budget on a guaranteed blowup; everything else
   races a small-budget BDD with SAT as the fallback, letting the node
   cap itself act as the selector of last resort. *)
let select_route ~width ~ands ~depth ~dense =
  if width <= 24 && ands <= 4_000 then Route_bdd
  else if dense && ands >= 256 && depth >= width then Route_sat
  else Route_race

let make_probe g cfg stats =
  match cfg.portfolio with
  | Sat_only -> fun _ _ _ -> Probe_unknown
  | (Bdd_first | Hybrid) as pf ->
    let o = portfolio_obs () in
    fun n r phase ->
      let ln = Lit.of_var n in
      let lt =
        if r = 0 then if phase then Lit.true_ else Lit.false_
        else Lit.apply_sign (Lit.of_var r) ~neg:phase
      in
      let lits = [ ln; lt ] in
      let cone = Aig.extract_cone g lits in
      let support = Aig.Cone.support g lits in
      let width = Array.length support in
      let ands = Aig.num_ands cone in
      Obs.Histogram.observe o.p_cone_width (float_of_int width);
      Obs.Histogram.observe o.p_cone_ands (float_of_int ands);
      if width <= cfg.sim_refine_width && width <= 16 then begin
        match sim_refine cone support width with
        | `Cex pattern ->
          stats.sim_splits <- stats.sim_splits + 1;
          Obs.Counter.incr o.p_sim_splits;
          Probe_cex pattern
        | `Equal ->
          stats.sim_proved <- stats.sim_proved + 1;
          Obs.Counter.incr o.p_sim_proved;
          Probe_equal
      end
      else begin
        let route =
          match pf with
          | Bdd_first -> Route_bdd
          | Sat_only -> assert false
          | Hybrid ->
            let dense =
              (ands > 0 && float_of_int (3 * xor_roots cone) /. float_of_int ands >= 0.25)
              || projection_sop_dense cone support
            in
            select_route ~width ~ands ~depth:(Aig.depth cone) ~dense
        in
        (* Circuit breaker: once this sweep has burned 32 race-budget
           BDD builds without an answer, the structure is telling us
           its BDDs don't fit — stop paying for further races and send
           the uncertain cones straight to SAT.  Confident Route_bdd
           cones (narrow and small) keep their full budget. *)
        let route =
          if route = Route_race && stats.bdd_blowups >= 32 then Route_sat else route
        in
        match route with
        | Route_sat ->
          Obs.Counter.incr o.p_route_sat;
          Probe_unknown
        | (Route_bdd | Route_race) as rt ->
          let max_nodes =
            if rt = Route_race then max 1_000 (cfg.bdd_max_nodes / 8) else cfg.bdd_max_nodes
          in
          Obs.Counter.incr (if rt = Route_race then o.p_route_race else o.p_route_bdd);
          let report = Bdd.Equiv.check_pair ~max_nodes cone in
          (match report.Bdd.Equiv.verdict with
          | Bdd.Equiv.Equivalent ->
            stats.bdd_proved <- stats.bdd_proved + 1;
            Obs.Counter.incr o.p_bdd_proved;
            Probe_equal
          | Bdd.Equiv.Inequivalent pattern ->
            stats.bdd_cex <- stats.bdd_cex + 1;
            Obs.Counter.incr o.p_bdd_cex;
            Probe_cex pattern
          | Bdd.Equiv.Blowup ->
            stats.bdd_blowups <- stats.bdd_blowups + 1;
            Obs.Counter.incr o.p_bdd_blowups;
            Obs.Counter.incr o.p_fallbacks;
            Probe_unknown)
      end

(* Prove node [n] equal to the constant given by [phase]: one
   refutation; its lemma [(~n)] or [(n)] subsumes both equivalence
   clauses. *)
let prove_constant e n phase =
  let ln = Lit.of_var n in
  let assumption = if phase then Lit.neg ln else ln in
  match e.query ~lits:[ ln ] ~assumptions:[ assumption ] with
  | Refuted (root, lemma) ->
    e.register_lemma lemma root;
    e.stats.const_merges <- e.stats.const_merges + 1;
    Obs.Counter.incr e.obs.o_const_merges;
    `Merged
  | Countermodel inputs ->
    e.stats.cex <- e.stats.cex + 1;
    Simclass.add_pattern e.simc inputs;
    `Cex
  | Budget ->
    e.stats.unknowns <- e.stats.unknowns + 1;
    `Gave_up

(* Prove node [n] equal to leader [r] up to [phase]: two refutations,
   one implication lemma each. *)
let prove_pair e n r phase =
  let ln = Lit.of_var n in
  let lr = Lit.apply_sign (Lit.of_var r) ~neg:phase in
  let lits = [ ln; Lit.of_var r ] in
  match e.query ~lits ~assumptions:[ ln; Lit.neg lr ] with
  | Countermodel inputs ->
    e.stats.cex <- e.stats.cex + 1;
    Simclass.add_pattern e.simc inputs;
    `Cex
  | Budget ->
    e.stats.unknowns <- e.stats.unknowns + 1;
    `Gave_up
  | Refuted (root_a, lemma_a) -> (
    match e.query ~lits ~assumptions:[ Lit.neg ln; lr ] with
    | Countermodel inputs ->
      e.stats.cex <- e.stats.cex + 1;
      Simclass.add_pattern e.simc inputs;
      `Cex
    | Budget ->
      e.stats.unknowns <- e.stats.unknowns + 1;
      `Gave_up
    | Refuted (root_b, lemma_b) ->
      e.register_lemma lemma_a root_a;
      e.register_lemma lemma_b root_b;
      e.stats.merges <- e.stats.merges + 1;
      Obs.Counter.incr e.obs.o_merges;
      `Merged)

(* Settle one AND node against its current class leader, retrying after
   counterexample refinements (each refinement strictly splits the
   class, so this terminates).  The portfolio probe runs first: a probe
   counterexample splits the class without any SAT call (the pattern
   provably separates [n] from its leader, so progress is preserved);
   probe-proved candidates still go through the SAT query so the merge
   is re-derived as a resolution lemma. *)
let rec settle e n =
  match Simclass.candidate e.simc n with
  | None -> ()
  | Some (r, phase) -> (
    match e.probe n r phase with
    | Probe_cex inputs ->
      Simclass.add_pattern e.simc inputs;
      settle e n
    | Probe_equal | Probe_unknown ->
      let verdict = if r = 0 then prove_constant e n phase else prove_pair e n r phase in
      (match verdict with
      | `Merged -> e.merged.(n) <- Some (r, phase)
      | `Gave_up -> ()
      | `Cex -> settle e n))

let sweep_all e = Aig.iter_ands e.g (fun n -> settle e n)

(* --- mode 1: a fresh solver per query, assumption-unit clauses,
       lifting, and explicit import into the global proof ------------ *)

type fresh_state = {
  miter_cnf : Formula.t;
  global : R.t;
  lemma_root : (Clause.t, R.id) Hashtbl.t;
  mutable lemma_list : Clause.t list;
  lemmas_by_max_var : (int, Clause.t list) Hashtbl.t;
  mutable sections : R.id list;
      (* last global proof node of each imported per-query refutation,
         newest first: section boundaries for hinted certificate
         emission ({!Proof.Binfmt.encode_hinted}) *)
}

let fresh_register o st stats clause root =
  if not (Hashtbl.mem st.lemma_root clause) then begin
    Hashtbl.replace st.lemma_root clause root;
    st.lemma_list <- clause :: st.lemma_list;
    let key = Clause.max_var clause in
    let existing = Option.value ~default:[] (Hashtbl.find_opt st.lemmas_by_max_var key) in
    Hashtbl.replace st.lemmas_by_max_var key (clause :: existing);
    stats.lemmas <- stats.lemmas + 1;
    Obs.Counter.incr o.o_lemmas
  end

(* Import a lifted derivation from a per-query proof into the global
   proof: miter clauses become (hash-consed) global leaves, previously
   proved lemmas are replaced by their derivations. *)
let fresh_import st qproof root =
  R.import st.global qproof ~root ~map_leaf:(fun _id c ->
      match Hashtbl.find_opt st.lemma_root c with
      | Some lemma_id -> lemma_id
      | None ->
        assert (Formula.mem st.miter_cnf c);
        R.add_leaf st.global c)

let fresh_query g cfg st stats ~lits ~assumptions =
  stats.sat_calls <- stats.sat_calls + 1;
  let qproof = R.create () in
  let solver = Solver.create ~proof:qproof () in
  let cone = Aig.Cone.tfi g lits in
  let in_cone = Array.make (Aig.num_nodes g) false in
  in_cone.(0) <- true;
  Array.iter (fun n -> in_cone.(n) <- true) cone;
  Solver.add_formula solver (Cnf.Tseitin.of_cone g lits);
  if cfg.lemma_reuse then
    Array.iter
      (fun n ->
        match Hashtbl.find_opt st.lemmas_by_max_var n with
        | None -> ()
        | Some lemmas ->
          List.iter
            (fun c ->
              if Clause.fold (fun acc l -> acc && in_cone.(Lit.var l)) true c then
                Solver.add_clause solver c)
            lemmas)
      cone;
  List.iter (fun l -> Solver.add_clause ~assumption:true solver (Clause.singleton l)) assumptions;
  let result =
    match Solver.solve ?max_conflicts:cfg.max_conflicts solver with
    | Solver.Sat model -> Countermodel (extract_inputs g model)
    | Solver.Unknown -> Budget
    | Solver.Unsat_assuming _ ->
      (* Assumptions are passed as clauses in this mode. *)
      assert false
    | Solver.Unsat root ->
      let lifted_root, lemma = Proof.Lift.refutation qproof ~root in
      let global_root = fresh_import st qproof lifted_root in
      st.sections <- (R.size st.global - 1) :: st.sections;
      Refuted (global_root, lemma)
  in
  stats.conflicts <- stats.conflicts + Solver.num_conflicts solver;
  result

let fresh_final g cfg st stats =
  stats.sat_calls <- stats.sat_calls + 1;
  let qproof = R.create () in
  let solver = Solver.create ~proof:qproof () in
  Solver.add_formula solver st.miter_cnf;
  if cfg.lemma_reuse then List.iter (Solver.add_clause solver) st.lemma_list;
  let result =
    match Solver.solve ?max_conflicts:cfg.max_conflicts solver with
    | Solver.Sat model -> Disproved (extract_inputs g model)
    | Solver.Unknown | Solver.Unsat_assuming _ ->
      stats.unknowns <- stats.unknowns + 1;
      Unresolved
    | Solver.Unsat root ->
      let global_root = fresh_import st qproof root in
      Proved
        {
          proof = st.global;
          root = global_root;
          formula = st.miter_cnf;
          boundaries = Array.of_list (List.rev st.sections);
        }
  in
  stats.conflicts <- stats.conflicts + Solver.num_conflicts solver;
  result

let make_fresh_engine g cfg ~formula =
  let st =
    {
      miter_cnf = formula;
      global = R.create ();
      lemma_root = Hashtbl.create 256;
      lemma_list = [];
      lemmas_by_max_var = Hashtbl.create 256;
      sections = [];
    }
  in
  let stats = fresh_stats () in
  let o = obs_handles () in
  let engine =
    {
      g;
      cfg;
      stats;
      obs = o;
      simc = Simclass.create g ~words:cfg.words ~seed:cfg.seed;
      merged = Array.make (Aig.num_nodes g) None;
      probe = (fun _ _ _ -> Probe_unknown);
      query = (fun ~lits ~assumptions -> fresh_query g cfg st stats ~lits ~assumptions);
      try_reuse = (fun ~lits:_ ~assumptions:_ -> None);
      register_lemma = (fun clause root -> fresh_register o st stats clause root);
    }
  in
  (engine, fun () -> fresh_final g cfg st stats)

(* --- mode 2: one incremental solver whose proof store IS the global
       proof; native assumptions; lemmas installed as derived clauses - *)

let make_incremental_engine g cfg ~formula =
  let global = R.create () in
  let solver = Solver.create ~proof:global () in
  Solver.ensure_vars solver (Aig.num_nodes g);
  Solver.add_clause solver Cnf.Tseitin.constant_unit;
  let added = Array.make (Aig.num_nodes g) false in
  let stats = fresh_stats () in
  let o = obs_handles () in
  let prev_conflicts = ref 0 in
  let account () =
    stats.conflicts <- stats.conflicts + (Solver.num_conflicts solver - !prev_conflicts);
    prev_conflicts := Solver.num_conflicts solver
  in
  let add_cone lits =
    Array.iter
      (fun n ->
        if not added.(n) then begin
          added.(n) <- true;
          List.iter (Solver.add_clause solver) (Cnf.Tseitin.clauses_of_and g n)
        end)
      (Aig.Cone.tfi_ands g lits)
  in
  let sections = ref [] in
  let query ~lits ~assumptions =
    stats.sat_calls <- stats.sat_calls + 1;
    add_cone lits;
    let result =
      match Solver.solve ?max_conflicts:cfg.max_conflicts ~assumptions solver with
      | Solver.Sat model -> Countermodel (extract_inputs g model)
      | Solver.Unknown -> Budget
      | Solver.Unsat_assuming { clause; pid } ->
        sections := (Solver.proof_size solver - 1) :: !sections;
        Refuted (pid, clause)
      | Solver.Unsat _ ->
        (* The definitional clauses alone are satisfiable, so a global
           refutation can only mean a programming error. *)
        assert false
    in
    account ();
    result
  in
  (* Facts fixed at the solver's root level — constant nodes discovered
     by earlier merges and their propagation closure — settle a query
     without searching: refuting assumption [a] only needs the unit
     [~a], and [Solver.derive_fixed] builds its derivation straight
     from the reason chain already on the trail.  This is knowledge the
     per-pair engine rediscovers from scratch on every query.  The cone
     is loaded and root propagation run first, so units implied by
     earlier lemmas through this query's own cone count too. *)
  let try_reuse ~lits ~assumptions =
    add_cone lits;
    Solver.propagate_root solver;
    match List.find_map (fun a -> Solver.derive_fixed solver (Lit.neg a)) assumptions with
    | Some (clause, pid) -> Some (Refuted (pid, clause))
    | None -> None
  in
  let register_lemma clause pid =
    (* The lemma becomes an ordinary solver clause backed by its
       derivation: later queries stitch through it for free. *)
    if cfg.lemma_reuse then Solver.add_derived_clause solver clause pid;
    stats.lemmas <- stats.lemmas + 1;
    Obs.Counter.incr o.o_lemmas
  in
  let engine =
    {
      g;
      cfg;
      stats;
      obs = o;
      simc = Simclass.create g ~words:cfg.words ~seed:cfg.seed;
      merged = Array.make (Aig.num_nodes g) None;
      probe = (fun _ _ _ -> Probe_unknown);
      query;
      try_reuse;
      register_lemma;
    }
  in
  let finalize () =
    stats.sat_calls <- stats.sat_calls + 1;
    add_cone [ Aig.output g 0 ];
    Solver.add_clause solver (Clause.singleton (Aig.output g 0));
    let result =
      match Solver.solve ?max_conflicts:cfg.max_conflicts solver with
      | Solver.Sat model -> Disproved (extract_inputs g model)
      | Solver.Unknown | Solver.Unsat_assuming _ ->
        stats.unknowns <- stats.unknowns + 1;
        Unresolved
      | Solver.Unsat root ->
        Proved
          { proof = global; root; formula; boundaries = Array.of_list (List.rev !sections) }
    in
    account ();
    result
  in
  (engine, finalize)

(* --- entry points ------------------------------------------------- *)

let make_engine g cfg ~formula =
  let engine, finalize =
    match cfg.mode with
    | Incremental -> make_incremental_engine g cfg ~formula
    | Perpair -> make_fresh_engine g cfg ~formula
  in
  (* Wrap the engine-specific callbacks so every mode records the same
     observability counters at the same points.  A query settled from
     already-held facts counts only as a reuse, never as a SAT call. *)
  let o = engine.obs in
  let query ~lits ~assumptions =
    match engine.try_reuse ~lits ~assumptions with
    | Some r ->
      engine.stats.reused <- engine.stats.reused + 1;
      Obs.Counter.incr o.o_reuse;
      r
    | None ->
      Obs.Counter.incr o.o_sat_calls;
      let r = engine.query ~lits ~assumptions in
      (match r with
      | Refuted _ -> Obs.Counter.incr o.o_refuted
      | Countermodel _ ->
        Obs.Counter.incr o.o_cex;
        (* Every sweeping countermodel becomes a refinement pattern. *)
        Obs.Counter.incr o.o_sim_refinements
      | Budget -> Obs.Counter.incr o.o_budget);
      r
  in
  let probe = make_probe g cfg engine.stats in
  let finalize () =
    Obs.Counter.incr o.o_sat_calls;
    let outcome = finalize () in
    (match outcome with
    | Proved _ -> Obs.Counter.incr o.o_refuted
    | Disproved _ -> Obs.Counter.incr o.o_cex
    | Unresolved -> Obs.Counter.incr o.o_budget);
    outcome
  in
  ({ engine with query; probe }, finalize)

let run g cfg =
  if Aig.num_outputs g <> 1 then invalid_arg "Sweep.run: expected a single-output miter";
  let engine, finalize = make_engine g cfg ~formula:(Cnf.Tseitin.miter_formula g) in
  sweep_all engine;
  (finalize (), engine.stats)

(* Functional reduction (fraiging): sweep an arbitrary graph and
   rebuild it with every proved-equivalent node replaced by its class
   representative.  Every replacement is SAT-proved against the
   graph's own Tseitin CNF, so the result computes the same functions. *)
let fraig g cfg =
  let engine, _finalize =
    (* fraig makes no final call and works on arbitrary graphs: the
       leaf universe is the graph's own Tseitin CNF. *)
    make_engine g cfg ~formula:(Cnf.Tseitin.of_graph g)
  in
  sweep_all engine;
  let fresh = Aig.create ~num_inputs:(Aig.num_inputs g) in
  let map = Array.make (Aig.num_nodes g) Lit.false_ in
  for i = 0 to Aig.num_inputs g - 1 do
    map.(1 + i) <- Aig.input fresh i
  done;
  let map_lit l = Lit.apply_sign map.(Lit.var l) ~neg:(Lit.is_neg l) in
  Aig.iter_ands g (fun n ->
      map.(n) <-
        (match engine.merged.(n) with
        | Some (r, phase) -> Lit.apply_sign map.(r) ~neg:phase
        | None -> Aig.and_ fresh (map_lit (Aig.fanin0 g n)) (map_lit (Aig.fanin1 g n))));
  Array.iter (fun l -> Aig.add_output fresh (map_lit l)) (Aig.outputs g);
  (fresh, engine.stats)
