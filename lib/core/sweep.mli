(** SAT sweeping with resolution-proof stitching — the paper's engine.

    The input is a single-output miter.  The engine simulates to guess
    candidate node equivalences, settles each candidate with two small
    assumption-based SAT calls over the candidates' fanin cones, lifts
    each refutation into an {e equivalence lemma clause} proved from
    the miter CNF, and feeds lemmas to later calls.  The final call
    refutes the miter's output unit clause; importing that refutation —
    with lemma leaves replaced by their own derivations — yields one
    resolution proof of the miter CNF whose leaves are exactly original
    clauses. *)

(** Engine mode — how SAT queries map onto solver instances. *)
type mode =
  | Perpair
      (** a fresh throwaway solver per query over the candidates' fanin
          cones, assumption-unit clauses, each refutation
          {!Proof.Lift}ed and imported into a global store (the flow as
          described in the paper) *)
  | Incremental
      (** one persistent solver per instance whose proof store {e is}
          the global proof — cone clauses loaded once on demand,
          per-query activation literals passed as native solver
          assumptions, learned clauses and variable activity carried
          across queries, lemmas installed once as derived clauses
          referenced by their global chain id; no lifting or importing
          at all.  Queries already settled by root-level facts are
          answered without a SAT call (counted by
          [sweep.incremental_reuse]).  Both modes produce the same kind
          of checkable certificate. *)

val mode_to_string : mode -> string

(** Inverse of {!mode_to_string}; also accepts the long spellings
    ["per-pair"] and ["incremental"]. *)
val mode_of_string : string -> mode option

(** Candidate-settling portfolio — which engines run {e before} the SAT
    closer on each candidate equivalence.  Certificates stay
    resolution-only in every portfolio: a candidate the BDD or
    exhaustive simulation proves equal is still re-derived by the
    (lemma-assisted) SAT query, so stitched refutations check exactly
    as in pure SAT sweeping. *)
type portfolio =
  | Sat_only  (** the SAT closer alone (the default, and the baseline) *)
  | Bdd_first
      (** every too-wide-for-simulation candidate tries a bounded BDD
          ({!Bdd.Equiv.check_pair}) before SAT; blowups fall through *)
  | Hybrid
      (** a cone-feature selector (support width, AND count, depth,
          XOR density) routes each candidate BDD-first, SAT-first, or
          to a reduced-budget BDD race *)

val portfolio_to_string : portfolio -> string

(** Inverse of {!portfolio_to_string} (["sat"], ["bdd"], ["hybrid"]). *)
val portfolio_of_string : string -> portfolio option

type config = {
  words : int;  (** random simulation words (64 patterns each) *)
  seed : int;  (** simulation seed *)
  max_conflicts : int option;  (** per-query conflict budget *)
  lemma_reuse : bool;  (** feed proved lemmas to later SAT calls *)
  mode : mode;  (** see {!mode}; default {!Perpair} *)
  portfolio : portfolio;  (** see {!portfolio}; default {!Sat_only} *)
  bdd_max_nodes : int;
      (** BDD node cap per candidate probe (default 20000); the race
          route uses an eighth of it.  Escalated alongside the conflict
          budget by {!Parallel}'s rounds. *)
  sim_refine_width : int;
      (** support-width cap (<= 16) under which a candidate is settled
          by exhaustive bit-parallel simulation of its cone instead of
          any engine probe (default 10) *)
}

val default_config : config

type stats = {
  mutable sat_calls : int;  (** SAT queries issued (including final) *)
  mutable cex : int;  (** queries refuted by a counterexample *)
  mutable unknowns : int;  (** queries that hit the conflict budget *)
  mutable merges : int;  (** node pairs proved equivalent *)
  mutable const_merges : int;  (** nodes proved constant *)
  mutable lemmas : int;  (** lemma clauses derived *)
  mutable conflicts : int;  (** total solver conflicts *)
  mutable reused : int;
      (** queries settled from root-level facts without a SAT call
          (incremental mode only) *)
  mutable bdd_proved : int;
      (** candidates the bounded BDD probe proved equal (each is then
          re-derived by SAT for the certificate) *)
  mutable bdd_cex : int;  (** candidates the BDD probe refuted — no SAT call *)
  mutable bdd_blowups : int;
      (** BDD probes that hit the node cap and fell through to SAT *)
  mutable sim_proved : int;
      (** candidates proved equal by exhaustive simulation of a narrow
          cone (then re-derived by SAT) *)
  mutable sim_splits : int;
      (** candidates refuted by exhaustive narrow-cone simulation — no
          engine probe or SAT call *)
}

type outcome =
  | Proved of {
      proof : Proof.Resolution.t;
      root : Proof.Resolution.id;
      formula : Cnf.Formula.t;  (** the miter CNF the proof refutes *)
      boundaries : Proof.Resolution.id array;
          (** last proof node of each refuted query's imported
              derivation, ascending — the section boundaries a hinted
              certificate ({!Proof.Binfmt.encode_hinted}) shards on *)
    }
  | Disproved of bool array  (** an input assignment setting the output *)
  | Unresolved  (** final query exhausted its budget *)

(** [run miter config] sweeps and proves.  The final SAT call runs
    without a conflict budget unless the per-query budget is set, in
    which case it applies there too.
    @raise Invalid_argument unless [miter] has exactly one output. *)
val run : Aig.t -> config -> outcome * stats

(** [fraig g config] is functional reduction: sweep an arbitrary
    (multi-output) graph and rebuild it with every proved-equivalent
    node replaced by its class representative — the classic FRAIG
    operation, with every merge justified by a SAT proof against the
    graph's own Tseitin CNF.  Returns the reduced graph (same
    interface, same functions) and the sweeping statistics. *)
val fraig : Aig.t -> config -> Aig.t * stats
