module Solver = Sat.Solver
module R = Proof.Resolution

type certificate = {
  proof : R.t;
  root : R.id;
  formula : Cnf.Formula.t;
  boundaries : R.id array;
}

type engine =
  | Monolithic
  | Sweeping of Sweep.config

let engine_of_string ?(base = Sweep.default_config) name =
  match name with
  | "mono" | "monolithic" -> Some Monolithic
  | "sat" | "sweep" | "sweeping" -> Some (Sweeping { base with Sweep.portfolio = Sweep.Sat_only })
  | "bdd" -> Some (Sweeping { base with Sweep.portfolio = Sweep.Bdd_first })
  | "hybrid" -> Some (Sweeping { base with Sweep.portfolio = Sweep.Hybrid })
  | _ -> None

type verdict =
  | Equivalent of certificate
  | Inequivalent of bool array
  | Undecided

type report = {
  verdict : verdict;
  sweep_stats : Sweep.stats option;
  solver_conflicts : int;
  sat_calls : int;
}

let extract_inputs g model =
  Array.init (Aig.num_inputs g) (fun i ->
      let v = Aig.Lit.var (Aig.input g i) in
      v < Array.length model && model.(v))

let check_monolithic ?max_conflicts miter =
  let formula = Cnf.Tseitin.miter_formula miter in
  let solver = Solver.create () in
  Solver.add_formula solver formula;
  let verdict =
    match Solver.solve ?max_conflicts solver with
    | Solver.Sat model -> Inequivalent (extract_inputs miter model)
    | Solver.Unknown | Solver.Unsat_assuming _ -> Undecided
    | Solver.Unsat root ->
      Equivalent { proof = Solver.proof solver; root; formula; boundaries = [||] }
  in
  {
    verdict;
    sweep_stats = None;
    solver_conflicts = Solver.num_conflicts solver;
    sat_calls = 1;
  }

let check_sweeping ?max_conflicts ?bdd_max_nodes cfg miter =
  let cfg =
    match max_conflicts with
    | None -> cfg
    | Some budget -> { cfg with Sweep.max_conflicts = Some budget }
  in
  let cfg =
    match bdd_max_nodes with
    | None -> cfg
    | Some cap -> { cfg with Sweep.bdd_max_nodes = cap }
  in
  let outcome, stats = Sweep.run miter cfg in
  let verdict =
    match outcome with
    | Sweep.Proved { proof; root; formula; boundaries } ->
      Equivalent { proof; root; formula; boundaries }
    | Sweep.Disproved inputs -> Inequivalent inputs
    | Sweep.Unresolved -> Undecided
  in
  {
    verdict;
    sweep_stats = Some stats;
    solver_conflicts = stats.Sweep.conflicts;
    sat_calls = stats.Sweep.sat_calls;
  }

let check_miter ?max_conflicts ?bdd_max_nodes engine miter =
  if Aig.num_outputs miter <> 1 then invalid_arg "Cec.check_miter: expected one output";
  match engine with
  | Monolithic -> check_monolithic ?max_conflicts miter
  | Sweeping cfg -> check_sweeping ?max_conflicts ?bdd_max_nodes cfg miter

let check engine a b = check_miter engine (Aig.Miter.build a b)

(* Bounded sequential equivalence: unroll both transition structures
   from reset and check the combinational expansions. *)
let check_bounded ~frames engine a b =
  if Aig.Seq.num_pis a <> Aig.Seq.num_pis b then
    invalid_arg "Cec.check_bounded: primary input counts differ";
  if Aig.Seq.num_pos a <> Aig.Seq.num_pos b then
    invalid_arg "Cec.check_bounded: primary output counts differ";
  check engine (Aig.Seq.unroll a ~frames) (Aig.Seq.unroll b ~frames)

(* Bounded model checking: is any output (read: bad-state flag) of the
   unrolled circuit reachable within [frames] steps from reset? *)
let check_bounded_safety ~frames engine seq =
  let unrolled = Aig.Seq.unroll seq ~frames in
  (* Fold every frame's bad-state flags into one output and reuse the
     single-output miter machinery: safe iff that output is constant
     false. *)
  let g = Aig.create ~num_inputs:(Aig.num_inputs unrolled) in
  let inputs = Array.init (Aig.num_inputs unrolled) (Aig.input g) in
  let outs = Aig.append g unrolled ~inputs in
  Aig.add_output g (Aig.or_list g (Array.to_list outs));
  check_miter engine g

type output_report = {
  output : int;
  output_verdict : verdict;
}

let check_outputs engine a b =
  if Aig.num_inputs a <> Aig.num_inputs b then invalid_arg "Cec.check_outputs: input counts differ";
  if Aig.num_outputs a <> Aig.num_outputs b then
    invalid_arg "Cec.check_outputs: output counts differ";
  Array.init (Aig.num_outputs a) (fun o ->
      let cone_a = Aig.extract_cone a [ Aig.output a o ] in
      let cone_b = Aig.extract_cone b [ Aig.output b o ] in
      { output = o; output_verdict = (check engine cone_a cone_b).verdict })

let equivalent a b =
  match (check (Sweeping Sweep.default_config) a b).verdict with
  | Equivalent _ -> true
  | Inequivalent _ -> false
  | Undecided -> failwith "Cec.equivalent: undecided"
