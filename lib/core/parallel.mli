(** Parallel partitioned CEC with a stitched certificate.

    The check is split along the miter's per-output disagreement
    literals: each output pair becomes an independent job over its own
    fanin cone, the jobs run on a bounded pool of OCaml domains, and —
    when every partition is proved — the per-partition refutations are
    recombined into {e one} resolution refutation of the combined
    single-output miter CNF, exactly the certificate the sequential
    engines emit.  {!Proof.Checker.check} (and {!Certify}) accept the
    stitched result unchanged.

    Stitching works like the sweeping engine's lemma mechanism, lifted
    to partition granularity: partition [o]'s refutation of
    [cone CNF ∧ (d_o)] is re-based onto the miter's numbering
    ({!Proof.Resolution.import_mapped}), its output unit is turned into
    an assumption and lifted away ({!Proof.Lift}), leaving a derivation
    of the unit lemma [(¬d_o)] from miter clauses alone; a final
    trivial SAT call then refutes the asserted miter output from those
    lemmas and the output-combining OR layer, and importing it — lemma
    leaves replaced by their derivations — closes the proof.

    Results are deterministic: jobs are solved independently with
    deterministic engines and merged in output order, so verdict and
    stitched proof are identical for every [num_domains]. *)

type config = {
  num_domains : int;  (** worker domains (clamped to at least 1) *)
  engine : Cec.engine;  (** per-partition decision engine *)
  budget : int option;
      (** initial per-partition conflict budget; [None] = one
          unbudgeted attempt per partition *)
  escalation : int;  (** budget multiplier between retry rounds *)
  max_rounds : int;
      (** total budgeted attempts per partition before giving up *)
}

(** Sweeping partitions on [Domain.recommended_domain_count] domains,
    no budget ([max_rounds] irrelevant until a budget is set). *)
val default_config : config

type status =
  | Proved  (** partition refuted: the output pair is equivalent *)
  | Refuted  (** counterexample found *)
  | Gave_up  (** conflict budget exhausted in every round *)
  | Trivial  (** structurally settled, no SAT work *)
  | Shared of int
      (** same disagreement cone as the given earlier output; solved
          once, cost attributed to that partition *)

type partition = {
  output : int;  (** output-pair index *)
  cone_ands : int;  (** AND nodes in the partition's fanin cone *)
  attempts : int;  (** budgeted attempts used *)
  conflicts : int;
  sat_calls : int;
  status : status;
}

type stats = {
  partitions : partition array;  (** one per output pair, in order *)
  domains : int;  (** worker domains actually used *)
  rounds : int;  (** scheduling rounds executed (>= 1 with any job) *)
  conflicts : int;  (** total, including the final stitch call *)
  sat_calls : int;
}

type report = {
  verdict : Cec.verdict;
  stats : stats;
}

(** Check two circuits with the same interface.  [Equivalent]
    certificates refute the combined miter CNF
    ({!Cnf.Tseitin.miter_formula} of {!Aig.Miter.build}), so
    {!Certify.validate_against} applies as-is.  An [Inequivalent]
    witness is the lowest-indexed differing output's counterexample.
    The verdict is [Undecided] only when some partition stayed
    undecided after [max_rounds] budget escalations and no partition
    was refuted.
    @raise Invalid_argument if interfaces differ. *)
val check : ?config:config -> Aig.t -> Aig.t -> report
