(** Parallel partitioned CEC with a stitched certificate.

    The check is split along the miter's per-output disagreement
    literals: each output pair becomes an independent job over its own
    fanin cone, the jobs run on a bounded pool of OCaml domains, and —
    when every partition is proved — the per-partition refutations are
    recombined into {e one} resolution refutation of the combined
    single-output miter CNF, exactly the certificate the sequential
    engines emit.  {!Proof.Checker.check} (and {!Certify}) accept the
    stitched result unchanged.

    Stitching works like the sweeping engine's lemma mechanism, lifted
    to partition granularity: partition [o]'s refutation of
    [cone CNF ∧ (d_o)] is re-based onto the miter's numbering
    ({!Proof.Resolution.import_mapped}), its output unit is turned into
    an assumption and lifted away ({!Proof.Lift}), leaving a derivation
    of the unit lemma [(¬d_o)] from miter clauses alone; a final
    trivial SAT call then refutes the asserted miter output from those
    lemmas and the output-combining OR layer, and importing it — lemma
    leaves replaced by their derivations — closes the proof.

    Results are deterministic: jobs are solved independently with
    deterministic engines and merged in output order, so verdict and
    stitched proof are identical for every [num_domains]. *)

type config = {
  num_domains : int;  (** worker domains (clamped to at least 1) *)
  engine : Cec.engine;  (** per-partition decision engine *)
  budget : int option;
      (** initial per-partition conflict budget; [None] = one
          unbudgeted attempt per partition *)
  escalation : int;  (** budget multiplier between retry rounds *)
  max_rounds : int;
      (** total budgeted attempts per partition before giving up *)
}

(** Sweeping partitions on [Domain.recommended_domain_count] domains,
    no budget ([max_rounds] irrelevant until a budget is set). *)
val default_config : config

type status =
  | Proved  (** partition refuted: the output pair is equivalent *)
  | Refuted  (** counterexample found *)
  | Gave_up  (** conflict budget exhausted in every round *)
  | Trivial  (** structurally settled, no SAT work *)
  | Shared of int
      (** same disagreement cone as the given earlier output; solved
          once, cost attributed to that partition *)
  | Crashed
      (** the partition's job raised on its attempt {e and} its one
          supervised retry; the run degrades to [Undecided] *)

type partition = {
  output : int;  (** output-pair index *)
  cone_ands : int;  (** AND nodes in the partition's fanin cone *)
  attempts : int;  (** budgeted attempts used *)
  conflicts : int;
  sat_calls : int;
  status : status;
}

type stats = {
  partitions : partition array;  (** one per output pair, in order *)
  domains : int;  (** worker domains actually used *)
  rounds : int;  (** scheduling rounds executed (>= 1 with any job) *)
  conflicts : int;  (** total, including the final stitch call *)
  sat_calls : int;
}

type report = {
  verdict : Cec.verdict;
  stats : stats;
  degraded : string option;
      (** [Some reason] when the run could not deliver what it should
          have: a partition job crashed twice (status [Crashed]), or
          every partition was proved but certificate stitching failed.
          The verdict is then [Undecided] — degraded runs never claim
          an uncertified [Equivalent].  [None] for clean runs,
          including ordinary budget-exhaustion give-ups. *)
}

(** Check two circuits with the same interface.  [Equivalent]
    certificates refute the combined miter CNF
    ({!Cnf.Tseitin.miter_formula} of {!Aig.Miter.build}), so
    {!Certify.validate_against} applies as-is.  An [Inequivalent]
    witness is the lowest-indexed differing output's counterexample.
    The verdict is [Undecided] only when some partition stayed
    undecided after [max_rounds] budget escalations (or crashed, see
    [degraded]) and no partition was refuted.

    Supervision: a job whose engine raises — including the injected
    [worker.crash] {!Fault} — is retried once; a second failure marks
    its partition [Crashed] and degrades the run instead of raising
    out of [check] or deadlocking the pool.
    @raise Invalid_argument if interfaces differ. *)
val check : ?config:config -> Aig.t -> Aig.t -> report
