(** Top-level combinational equivalence checking.

    Two engines decide the same question — "is the miter output
    constant 0?" — and on success both deliver a {!certificate}: a
    resolution refutation of the miter CNF, independently re-checkable
    with {!Certify}.

    - [Monolithic]: one proof-logging SAT call on the whole miter CNF
      (the baseline the paper compares against).
    - [Sweeping]: the paper's engine ({!Sweep}): simulation-guided node
      merging with per-pair SAT calls and proof stitching. *)

type certificate = {
  proof : Proof.Resolution.t;
  root : Proof.Resolution.id;
  formula : Cnf.Formula.t;  (** the miter CNF the proof refutes *)
  boundaries : Proof.Resolution.id array;
      (** section boundaries (last proof node of each refuted query or
          stitched partition, ascending) for sharded hinted-certificate
          emission; empty when the prover recorded none — the hinted
          encoder then emits a single shard *)
}

type engine =
  | Monolithic
  | Sweeping of Sweep.config

(** Parse an engine name: ["mono"]/["monolithic"], ["sat"] (or
    ["sweep"]/["sweeping"]) for pure SAT sweeping, ["bdd"] and
    ["hybrid"] for the corresponding {!Sweep.portfolio} over [base]
    (default {!Sweep.default_config}). *)
val engine_of_string : ?base:Sweep.config -> string -> engine option

type verdict =
  | Equivalent of certificate
  | Inequivalent of bool array  (** distinguishing input assignment *)
  | Undecided  (** conflict budget exhausted *)

type report = {
  verdict : verdict;
  sweep_stats : Sweep.stats option;  (** present for the sweeping engine *)
  solver_conflicts : int;  (** total conflicts across all SAT calls *)
  sat_calls : int;
}

(** Check two circuits with the same interface.
    @raise Invalid_argument if interfaces differ. *)
val check : engine -> Aig.t -> Aig.t -> report

(** Check a prebuilt single-output miter.  [bdd_max_nodes] overrides
    the sweeping portfolio's per-candidate BDD node cap (ignored by
    [Monolithic]); {!Parallel} uses it to escalate engine cutoffs
    alongside the conflict budget. *)
val check_miter : ?max_conflicts:int -> ?bdd_max_nodes:int -> engine -> Aig.t -> report

(** Bounded sequential equivalence: unroll both transition structures
    [frames] steps from their reset states and check the combinational
    expansions.  An [Inequivalent] witness is an input trace (frame 0's
    inputs first).
    @raise Invalid_argument if interfaces differ. *)
val check_bounded : frames:int -> engine -> Aig.Seq.t -> Aig.Seq.t -> report

(** Bounded model checking (safety): treat every primary output of
    [seq] as a bad-state flag and decide whether any can be 1 within
    [frames] steps of the reset state.  [Equivalent cert] means
    {e safe for the bound}, with a resolution certificate for the
    unrolled formula; [Inequivalent trace] is a concrete input trace
    reaching a bad state. *)
val check_bounded_safety : frames:int -> engine -> Aig.Seq.t -> report

(** Per-output checking: one verdict (and, when equivalent, one
    certificate) per output pair, each over the pair's own fanin
    cones.  Useful for diagnosing which functions of a revised netlist
    broke.
    @raise Invalid_argument if interfaces differ. *)
type output_report = {
  output : int;
  output_verdict : verdict;
}

val check_outputs : engine -> Aig.t -> Aig.t -> output_report array

(** Convenience: [equivalent a b] runs the sweeping engine with
    defaults and returns the boolean verdict.
    @raise Failure on [Undecided]. *)
val equivalent : Aig.t -> Aig.t -> bool
