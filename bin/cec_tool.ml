(* cec_tool: command-line front end for the library.

   Subcommands:
     gen         generate a named benchmark circuit as ASCII AIGER
     stats       print size statistics of an AIGER file
     miter       build the miter of two AIGER files
     dimacs      export a single-output miter's CNF in DIMACS
     cec         check two AIGER files for equivalence (with proofs)
     check-proof validate a certificate (ASCII trace or CECB binary)
     fraig       functional reduction (merge SAT-proved equivalences)
     opt         run an optimization pipeline over an AIGER file
     bounded     bounded sequential equivalence (unroll + CEC)
     bmc         bounded safety of a sequential AIGER file
     sat         solve a DIMACS CNF with proof logging
     suite       list the built-in benchmark suite
     serve       run the certification daemon (Unix socket and/or TCP)
     client      submit one request to a daemon or a fleet router
     route       run the fleet router over a ring of shard daemons
     batch       run a manifest of pairs against a store, no daemon
     fsck        check and repair a certificate store directory

   The [commands] list at the bottom is the authority; an unknown
   subcommand prints that list and exits 2. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel

(* Netlists are read as BLIF or AIGER depending on the extension. *)
let read_aiger path =
  try
    if Filename.check_suffix path ".blif" then Ok (Aig.Blif.read_file path)
    else Ok (Aig.Aiger.read_file path)
  with
  | Aig.Aiger.Parse_error msg | Aig.Blif.Parse_error msg ->
    Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let netlist_to_string ?(blif = false) g =
  if blif then Aig.Blif.to_string g else Aig.Aiger.to_string g

(* Binary mode: certificate files may be CECB bytes, and text outputs
   must not grow CRLF endings on any platform. *)
let write_text path text =
  match path with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* Write the observability registry to the requested export files. *)
let export_obs reg ~stats_out ~trace_out =
  Option.iter (fun p -> write_text (Some p) (Obs.Export.stats_json reg)) stats_out;
  Option.iter (fun p -> write_text (Some p) (Obs.Export.trace_json reg)) trace_out

(* --- circuit specifications for `gen` --- *)

let circuit_of_spec spec =
  let fail () =
    Error
      (Printf.sprintf
         "unknown circuit spec %S (try add-rc:8, add-cla:8, add-csel:8, mul-arr:4, mul-sa:4, \
          eq:8, lt:8, parity:16, alu:8, mux:4, rand:16:300:8)"
         spec)
  in
  (* Sizes are parsed with [int_of_string_opt] so that a malformed spec
     like add-rc:x reports the usage hint instead of an uncaught
     [int_of_string] exception. *)
  let exception Bad_size in
  let size s = match int_of_string_opt s with Some n -> n | None -> raise Bad_size in
  try
    match String.split_on_char ':' spec with
    | [ "add-rc"; n ] -> Ok (Circuits.Adder.ripple_carry (size n))
    | [ "add-cla"; n ] -> Ok (Circuits.Adder.carry_lookahead (size n))
    | [ "add-csel"; n ] -> Ok (Circuits.Adder.carry_select (size n))
    | [ "mul-arr"; n ] -> Ok (Circuits.Multiplier.array (size n))
    | [ "mul-sa"; n ] -> Ok (Circuits.Multiplier.shift_add (size n))
    | [ "eq"; n ] -> Ok (Circuits.Datapath.equality (size n))
    | [ "lt"; n ] -> Ok (Circuits.Datapath.less_than (size n))
    | [ "parity"; n ] -> Ok (Circuits.Datapath.parity (size n))
    | [ "alu"; n ] -> Ok (Circuits.Datapath.alu (size n))
    | [ "mux"; n ] -> Ok (Circuits.Datapath.mux_tree (size n))
    | [ "rand"; inputs; ands; outputs ] ->
      Ok
        (Circuits.Random_aig.generate (Support.Rng.create 11) ~num_inputs:(size inputs)
           ~num_ands:(size ands) ~num_outputs:(size outputs))
    | _ -> fail ()
  with Bad_size -> fail ()

let apply_rewrite g = function
  | None -> g
  | Some "restructure" -> Circuits.Rewrite.restructure (Support.Rng.create 7) g
  | Some "rebalance" -> Circuits.Rewrite.rebalance `Balanced g
  | Some "double-negate" -> Circuits.Rewrite.double_negate g
  | Some other -> failwith (Printf.sprintf "unknown rewrite %S" other)

(* --- subcommand implementations (return exit codes) --- *)

let run_gen spec rewrite output =
  match circuit_of_spec spec with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok g ->
    let g = apply_rewrite g rewrite in
    let blif = match output with Some p -> Filename.check_suffix p ".blif" | None -> false in
    write_text output (netlist_to_string ~blif g);
    0

let run_stats path =
  match read_aiger path with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok g ->
    Format.printf "%s: %a@." path Aig.pp_stats g;
    0

let run_miter path_a path_b output =
  match (read_aiger path_a, read_aiger path_b) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    2
  | Ok a, Ok b -> (
    match Aig.Miter.build a b with
    | m ->
      write_text output (Aig.Aiger.to_string m);
      0
    | exception Invalid_argument msg ->
      prerr_endline msg;
      2)

let run_dimacs path output =
  match read_aiger path with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok g -> (
    match Cnf.Tseitin.miter_formula g with
    | f ->
      write_text output (Cnf.Dimacs.to_string f);
      0
    | exception Invalid_argument msg ->
      prerr_endline msg;
      2)

let engine_of_string lemma_reuse words max_conflicts mode name =
  let base = { Sweep.default_config with Sweep.lemma_reuse; words; max_conflicts; mode } in
  match Cec.engine_of_string ~base name with
  | Some engine -> Ok engine
  | None -> Error (Printf.sprintf "unknown engine %S (mono|sat|sweep|bdd|hybrid)" name)

let print_cex cex =
  print_string "counterexample: ";
  Array.iter (fun b -> print_char (if b then '1' else '0')) cex;
  print_newline ()

(* Parse-and-install wrapper shared by cec/serve/batch: the spec is
   installed around [k] and always removed again, so one subcommand
   cannot leak faults into another in the same process. *)
let with_faults faults k =
  match faults with
  | None -> k ()
  | Some spec -> (
    match Fault.parse spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok s ->
      Fault.install s;
      Fun.protect ~finally:Fault.disable k)

let print_partition (p : Parallel.partition) =
  let status =
    match p.Parallel.status with
    | Parallel.Proved -> "proved"
    | Parallel.Refuted -> "refuted"
    | Parallel.Gave_up -> "gave-up"
    | Parallel.Trivial -> "trivial"
    | Parallel.Shared o -> Printf.sprintf "shared with #%d" o
    | Parallel.Crashed -> "crashed"
  in
  Format.printf "partition %3d: %-18s (ands=%d, attempts=%d, conflicts=%d, sat_calls=%d)@."
    p.Parallel.output status p.Parallel.cone_ands p.Parallel.attempts p.Parallel.conflicts
    p.Parallel.sat_calls

let run_cec path_a path_b engine_name words no_lemmas max_conflicts sweep_mode jobs stats_out
    trace_out proof_out cert_format validate faults =
  with_faults faults @@ fun () ->
  match (read_aiger path_a, read_aiger path_b) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    2
  | Ok a, Ok b -> (
    match engine_of_string (not no_lemmas) words max_conflicts sweep_mode engine_name with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok engine -> (
      let reg = Obs.Registry.create () in
      (* --jobs N >= 1 always takes the partitioned path, so --jobs 1
         and --jobs 4 run the same per-partition work and produce
         identical aggregate counters; 0 (the default) is the
         sequential single-miter engine. *)
      let check () =
        Obs.with_ambient reg (fun () ->
            if jobs <= 0 then (Cec.check engine a b, None)
            else begin
              let config =
                {
                  Parallel.default_config with
                  Parallel.num_domains = jobs;
                  engine;
                  budget = max_conflicts;
                }
              in
              let par = Parallel.check ~config a b in
              let stats = par.Parallel.stats in
              Array.iter print_partition stats.Parallel.partitions;
              Format.printf "parallel: %d partitions on %d domains, %d round(s)@."
                (Array.length stats.Parallel.partitions)
                stats.Parallel.domains stats.Parallel.rounds;
              ( {
                  Cec.verdict = par.Parallel.verdict;
                  sweep_stats = None;
                  solver_conflicts = stats.Parallel.conflicts;
                  sat_calls = stats.Parallel.sat_calls;
                },
                par.Parallel.degraded )
            end)
      in
      match check () with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        2
      | report, degraded -> (
        export_obs reg ~stats_out ~trace_out;
        match report.Cec.verdict with
        | Cec.Equivalent cert ->
          let stats = Proof.Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
          Format.printf "EQUIVALENT (conflicts=%d, sat_calls=%d)@." report.Cec.solver_conflicts
            report.Cec.sat_calls;
          Format.printf "proof: %a@." Proof.Pstats.pp stats;
          (match proof_out with
          | None -> ()
          | Some path -> (
            match cert_format with
            | Service.Store.Bin ->
              (* [Binfmt.encode] trims to the reachable cone itself. *)
              write_text (Some path) (Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root)
            | Service.Store.Bin3 ->
              (* Hinted body sharded on the prover's section
                 boundaries: check-proof follows the hints with no
                 search and can split shards across --jobs domains. *)
              write_text (Some path)
                (Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries cert.Cec.proof
                   ~root:cert.Cec.root)
            | Service.Store.Trace ->
              let trimmed, root = Proof.Trim.cone cert.Cec.proof ~root:cert.Cec.root in
              write_text (Some path) (Proof.Export.trace_to_string trimmed ~root)));
          if validate then begin
            match Cec_core.Certify.validate_against cert a b with
            | Ok chains -> Format.printf "certificate validated (%d chains)@." chains
            | Error e ->
              Format.printf "certificate REJECTED: %a@." Cec_core.Certify.pp_error e;
              exit 3
          end;
          0
        | Cec.Inequivalent cex ->
          print_endline "INEQUIVALENT";
          print_cex cex;
          1
        | Cec.Undecided ->
          (match degraded with
          | Some reason -> Printf.printf "UNCERTIFIED (%s)\n" reason
          | None -> print_endline "UNDECIDED (conflict budget exhausted)");
          4)))

let run_check_proof miter_path trace_path jobs =
  match read_aiger miter_path with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok miter -> (
    match In_channel.with_open_bin trace_path In_channel.input_all with
    | exception Sys_error msg ->
      prerr_endline msg;
      2
    | text when Proof.Binfmt.is_hinted text -> (
      (* Hinted CECB certificate: follow the stored pivots — no search
         — and check the shards on [jobs] domains.  Same exit contract:
         corruption 2, well-formed-but-invalid 3. *)
      match Cnf.Tseitin.miter_formula miter with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        2
      | formula -> (
        match Proof.Hint_check.check ~formula ~jobs text with
        | Ok st ->
          Format.printf
            "OK: %d chains verified against %s (hinted, %d steps on %d shard(s), peak %d of %d \
             nodes live)@."
            st.Proof.Hint_check.chains miter_path st.Proof.Hint_check.hints_followed
            st.Proof.Hint_check.shards st.Proof.Hint_check.peak_live st.Proof.Hint_check.nodes;
          0
        | Error e when e.Proof.Hint_check.malformed ->
          Printf.eprintf "%s: parse error: %s\n" trace_path
            (Format.asprintf "%a" Proof.Hint_check.pp_error e);
          2
        | Error e ->
          Format.printf "REJECTED: %a@." Proof.Hint_check.pp_error e;
          3))
    | text when Proof.Binfmt.is_binary text -> (
      (* CECB binary certificate: validate in one bounded-memory pass.
         Byte-level corruption exits 2 (parse error), a well-formed but
         invalid proof exits 3 — same contract as the ASCII path. *)
      match Cnf.Tseitin.miter_formula miter with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        2
      | formula -> (
        match Proof.Stream_check.check ~formula text with
        | Ok st ->
          Format.printf "OK: %d chains verified against %s (binary, peak %d of %d nodes live)@."
            st.Proof.Stream_check.chains miter_path st.Proof.Stream_check.peak_live
            st.Proof.Stream_check.nodes;
          0
        | Error e when e.Proof.Stream_check.malformed ->
          Printf.eprintf "%s: parse error: %s\n" trace_path
            (Format.asprintf "%a" Proof.Stream_check.pp_error e);
          2
        | Error e ->
          Format.printf "REJECTED: %a@." Proof.Stream_check.pp_error e;
          3))
    | text -> (
    (* A malformed trace must exit cleanly (code 2) with a parse-error
       message, never an uncaught exception: [trace_of_string] raises
       [Failure] on syntax errors and [Invalid_argument] on dangling
       antecedent ids. *)
    match Proof.Export.trace_of_string text with
    | exception Failure msg ->
      Printf.eprintf "%s: parse error: %s\n" trace_path msg;
      2
    | exception Invalid_argument msg ->
      Printf.eprintf "%s: parse error: %s\n" trace_path msg;
      2
    | proof, root -> (
      match Cnf.Tseitin.miter_formula miter with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        2
      | formula -> (
        match Proof.Checker.check proof ~root ~formula () with
        | Ok chains ->
          Format.printf "OK: %d chains verified against %s@." chains miter_path;
          0
        | Error e ->
          Format.printf "REJECTED: %a@." Proof.Checker.pp_error e;
          3))))

let run_fraig path words output =
  match read_aiger path with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok g ->
    let cfg = { Sweep.default_config with Sweep.words } in
    let reduced, stats = Sweep.fraig g cfg in
    Format.eprintf "fraig: %d ANDs -> %d ANDs (%d merges, %d constants, %d SAT calls)@."
      (Aig.num_ands g) (Aig.num_ands reduced)
      stats.Sweep.merges stats.Sweep.const_merges stats.Sweep.sat_calls;
    write_text output (Aig.Aiger.to_string reduced);
    0

let run_sat path trace_out rup_check =
  match Cnf.Dimacs.read_file path with
  | exception Cnf.Dimacs.Parse_error msg ->
    prerr_endline msg;
    2
  | exception Sys_error msg ->
    prerr_endline msg;
    2
  | formula -> (
    let solver = Sat.Solver.create () in
    Sat.Solver.add_formula solver formula;
    match Sat.Solver.solve solver with
    | Sat.Solver.Sat model ->
      print_endline "s SATISFIABLE";
      print_string "v";
      Array.iteri
        (fun v value -> Printf.printf " %d" (if value then v + 1 else -(v + 1)))
        model;
      print_endline " 0";
      10
    | Sat.Solver.Unknown | Sat.Solver.Unsat_assuming _ ->
      print_endline "s UNKNOWN";
      0
    | Sat.Solver.Unsat root ->
      print_endline "s UNSATISFIABLE";
      let proof = Sat.Solver.proof solver in
      let trimmed, troot = Proof.Trim.cone proof ~root in
      (match Proof.Checker.check trimmed ~root:troot ~formula () with
      | Ok chains -> Printf.printf "c proof checked (%d chains)\n" chains
      | Error e ->
        Format.printf "c proof REJECTED: %a@." Proof.Checker.pp_error e;
        exit 3);
      if rup_check then begin
        match Proof.Rup.check_drup_string formula (Proof.Export.drup_to_string trimmed ~root:troot) with
        | Ok lemmas -> Printf.printf "c DRUP checked (%d lemmas)\n" lemmas
        | Error e ->
          Format.printf "c DRUP REJECTED: %a@." Proof.Rup.pp_error e;
          exit 3
      end;
      (match trace_out with
      | None -> ()
      | Some out -> write_text (Some out) (Proof.Export.trace_to_string trimmed ~root:troot));
      20)

let run_opt path passes words output =
  match read_aiger path with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok g ->
    let apply g pass =
      let before = Aig.num_ands g in
      let g' =
        match pass with
        | "cutsweep" -> Synth.Cutsweep.reduce g
        | "fraig" ->
          let reduced, _ = Sweep.fraig g { Sweep.default_config with Sweep.words } in
          Aig.cleanup reduced
        | "balance" -> Circuits.Rewrite.rebalance `Balanced g
        | "cleanup" -> Aig.cleanup g
        | other -> failwith (Printf.sprintf "unknown pass %S (cutsweep|fraig|balance|cleanup)" other)
      in
      Format.eprintf "%-9s %d -> %d ANDs (depth %d -> %d)@." pass before (Aig.num_ands g')
        (Aig.depth g) (Aig.depth g');
      g'
    in
    (match
       List.fold_left apply g (String.split_on_char ',' passes |> List.filter (fun s -> s <> ""))
     with
    | result ->
      write_text output (Aig.Aiger.to_string result);
      0
    | exception Failure msg ->
      prerr_endline msg;
      2)

let run_bounded path_a path_b frames engine_name sweep_mode =
  let read path =
    try Ok (Aig.Seq.read_file path) with
    | Aig.Seq.Parse_error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Sys_error msg -> Error msg
  in
  match (read path_a, read path_b) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    2
  | Ok a, Ok b -> (
    match engine_of_string true Sweep.default_config.Sweep.words None sweep_mode engine_name with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok engine -> (
      match Cec.check_bounded ~frames engine a b with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        2
      | report -> (
        match report.Cec.verdict with
        | Cec.Equivalent cert ->
          Format.printf "BOUNDED-EQUIVALENT for %d frames (conflicts=%d)@." frames
            report.Cec.solver_conflicts;
          (match Cec_core.Certify.validate cert with
          | Ok chains -> Format.printf "certificate validated (%d chains)@." chains
          | Error e ->
            Format.printf "certificate REJECTED: %a@." Cec_core.Certify.pp_error e;
            exit 3);
          0
        | Cec.Inequivalent trace ->
          print_endline "INEQUIVALENT";
          print_cex trace;
          1
        | Cec.Undecided ->
          print_endline "UNDECIDED";
          4)))

let run_bmc path frames engine_name sweep_mode =
  match
    try Ok (Aig.Seq.read_file path) with
    | Aig.Seq.Parse_error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Sys_error msg -> Error msg
  with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok seq -> (
    match engine_of_string true Sweep.default_config.Sweep.words None sweep_mode engine_name with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok engine -> (
      match (Cec.check_bounded_safety ~frames engine seq).Cec.verdict with
      | Cec.Equivalent cert ->
        Format.printf "SAFE for %d frames@." frames;
        (match Cec_core.Certify.validate cert with
        | Ok chains -> Format.printf "certificate validated (%d chains)@." chains
        | Error e ->
          Format.printf "certificate REJECTED: %a@." Cec_core.Certify.pp_error e;
          exit 3);
        0
      | Cec.Inequivalent trace ->
        print_endline "UNSAFE (bad state reachable)";
        print_cex trace;
        1
      | Cec.Undecided ->
        print_endline "UNDECIDED";
        4))

(* --- certification service (lib/service) --- *)

let mb_to_bytes = Option.map (fun mb -> mb * 1024 * 1024)

let service_engine jobs budget sweep_mode portfolio =
  let base =
    {
      Service.Engine.default_config with
      Service.Engine.jobs;
      engine = Cec.Sweeping { Sweep.default_config with Sweep.mode = sweep_mode; portfolio };
    }
  in
  match budget with None -> base | Some _ -> { base with Service.Engine.budget = budget }

(* [--socket PATH] is always a Unix path; [--listen ADDR] goes through
   {!Service.Addr.parse} (Unix path or HOST:PORT).  Any mix, at least
   one. *)
let listen_addrs socket listens =
  let parsed =
    List.fold_left
      (fun acc spec ->
        match acc with
        | Error _ -> acc
        | Ok addrs -> (
          match Service.Addr.parse spec with
          | Ok a -> Ok (a :: addrs)
          | Error msg -> Error msg))
      (Ok []) listens
  in
  match parsed with
  | Error msg -> Error msg
  | Ok addrs -> (
    match
      (match socket with Some p -> [ Service.Addr.Unix_path p ] | None -> [])
      @ List.rev addrs
    with
    | [] -> Error "expected --socket PATH or --listen ADDR"
    | addrs -> Ok addrs)

let run_serve socket listens store capacity_mb no_paranoid workers queue jobs budget sweep_mode
    portfolio timeout_ms quiet stats_out trace_out faults =
  with_faults faults @@ fun () ->
  match listen_addrs socket listens with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok listen -> (
    let cfg =
      {
        (Service.Server.default_config ~socket_path:"unused" ~store_dir:store) with
        Service.Server.listen;
        store_capacity = mb_to_bytes capacity_mb;
        paranoid = not no_paranoid;
        workers;
        queue_capacity = queue;
        engine = service_engine jobs budget sweep_mode portfolio;
        default_timeout_ms = timeout_ms;
        log = not quiet;
        stats_out;
        trace_out;
      }
    in
    match Service.Server.run cfg with
    | _ -> 0
    | exception Failure msg ->
      prerr_endline msg;
      2
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "%s(%s): %s\n" fn arg (Unix.error_message e);
      2)

let run_client socket connects connect_timeout_ms ping stats metrics shutdown timeout_ms retries
    retry_delay_ms golden revised =
  match listen_addrs socket connects with
  | Error _ ->
    prerr_endline "client: expected --socket PATH or --connect ADDR";
    2
  | Ok addrs -> (
    let config =
      {
        Service.Client.default_config with
        Service.Client.retries = max 0 retries;
        base_delay_ms = retry_delay_ms;
        connect_timeout_ms;
        (* The request deadline also caps the client's own retry loop,
           with a grace second for the (typed) response to travel. *)
        deadline_ms = Option.map (fun ms -> float_of_int ms +. 1000.) timeout_ms;
      }
    in
    let send req =
      match Service.Client.request_to ~config addrs (Service.Protocol.print_request req) with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok line ->
        print_endline line;
        (match Service.Protocol.field "error" line with
        | Some _ -> 2
        | None -> (
          match Service.Protocol.field "status" line with
          | Some "equivalent" -> 0
          | Some "inequivalent" -> 1
          | Some "undecided" | Some "timeout" | Some "uncertified" -> 4
          | _ -> 0))
    in
    if ping then send Service.Protocol.Ping
    else if stats then send Service.Protocol.Stats
    else if metrics then send Service.Protocol.Metrics
    else if shutdown then send Service.Protocol.Shutdown
    else
      match (golden, revised) with
      | Some golden, Some revised -> send (Service.Protocol.Check { golden; revised; timeout_ms })
      | _ ->
        prerr_endline
          "client: expected GOLDEN and REVISED paths (or --ping/--stats/--metrics/--shutdown)";
        2)

(* A shard spec is [ID=ADDR] ([ADDR] alone uses the address string as
   the ring id — fine for ad-hoc fleets, but named ids keep ring
   placement stable when a shard moves host). *)
let parse_shard spec =
  let id, addr_spec =
    match String.index_opt spec '=' with
    | Some i when i > 0 && not (String.contains (String.sub spec 0 i) '/') ->
      (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
    | _ -> (spec, spec)
  in
  match Service.Addr.parse addr_spec with
  | Ok addr -> Ok { Fleet.Router.id; addr }
  | Error msg -> Error (Printf.sprintf "shard %S: %s" spec msg)

let run_route listen shard_specs replicas vnodes workers max_inflight queue probe_interval_ms
    connect_timeout_ms retry_after_ms request_timeout_ms probe_timeout_ms drain_timeout_ms quiet
    stats_out =
  let shards =
    List.fold_left
      (fun acc spec ->
        match (acc, parse_shard spec) with
        | Error _, _ -> acc
        | _, (Error _ as e) -> e
        | Ok shards, Ok s -> Ok (s :: shards))
      (Ok []) shard_specs
  in
  match (Service.Addr.parse listen, shards) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    2
  | Ok listen, Ok shards -> (
    let cfg =
      {
        (Fleet.Router.default_config ~listen ~shards:(List.rev shards)) with
        Fleet.Router.replicas;
        vnodes;
        workers;
        max_inflight;
        queue_capacity = queue;
        probe_interval_ms;
        connect_timeout_ms;
        retry_after_ms;
        request_timeout_ms;
        probe_timeout_ms;
        drain_timeout_ms;
        log = not quiet;
        stats_out;
      }
    in
    match Fleet.Router.run cfg with
    | _ -> 0
    | exception (Failure msg | Invalid_argument msg) ->
      prerr_endline msg;
      2
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "%s(%s): %s\n" fn arg (Unix.error_message e);
      2)

(* Ring administration against a running router: exactly one of
   --join/--leave/--drain, sent as a single protocol request. *)
let run_fleet_admin connects connect_timeout_ms join leave drain =
  let request =
    match (join, leave, drain) with
    | Some spec, None, None -> (
      match String.index_opt spec '=' with
      | Some i when i > 0 ->
        Ok
          (Service.Protocol.Join
             {
               id = String.sub spec 0 i;
               addr = String.sub spec (i + 1) (String.length spec - i - 1);
             })
      | _ -> Error "fleet-admin: --join expects ID=ADDR")
    | None, Some id, None -> Ok (Service.Protocol.Leave { id })
    | None, None, Some id -> Ok (Service.Protocol.Drain { id })
    | None, None, None -> Error "fleet-admin: expected one of --join/--leave/--drain"
    | _ -> Error "fleet-admin: --join/--leave/--drain are mutually exclusive"
  in
  match (listen_addrs None connects, request) with
  | Error _, _ ->
    prerr_endline "fleet-admin: expected --connect ADDR (the router)";
    2
  | _, Error msg ->
    prerr_endline msg;
    2
  | Ok addrs, Ok request -> (
    let config = { Service.Client.default_config with connect_timeout_ms } in
    match
      Service.Client.request_to ~config addrs (Service.Protocol.print_request request)
    with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok line ->
      print_endline line;
      (match Service.Protocol.field "error" line with Some _ -> 2 | None -> 0))

let run_batch manifest store_dir capacity_mb no_paranoid cert_format jobs budget sweep_mode
    portfolio timeout_ms stats_out trace_out faults =
  with_faults faults @@ fun () ->
  match Service.Batch.parse_manifest manifest with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok pairs ->
    let store =
      Service.Store.create ?capacity_bytes:(mb_to_bytes capacity_mb) ~paranoid:(not no_paranoid)
        ~cert_format ~dir:store_dir ()
    in
    let on_result (r : Service.Batch.line_result) =
      Format.printf "%-12s %s%s %s %s%s@." r.Service.Batch.status
        (if r.Service.Batch.cached then "[hit] " else "")
        r.Service.Batch.golden_path r.Service.Batch.revised_path
        (Printf.sprintf "(%.1f ms)" r.Service.Batch.ms)
        (if r.Service.Batch.detail = "" then "" else " " ^ r.Service.Batch.detail)
    in
    let reg = Obs.Registry.create () in
    let s =
      Obs.with_ambient reg (fun () ->
          Service.Batch.run ~store
            ~engine:(service_engine jobs budget sweep_mode portfolio)
            ?timeout_ms ~on_result
            pairs)
    in
    export_obs reg ~stats_out ~trace_out;
    Service.Store.flush store;
    Format.printf "batch: %d pairs, %d hits, %d proved, %d cex, %d undecided, %d errors in %.1f ms@."
      s.Service.Batch.total s.Service.Batch.hits s.Service.Batch.proved
      s.Service.Batch.counterexamples s.Service.Batch.undecided s.Service.Batch.errors
      s.Service.Batch.ms;
    Format.printf "store: %a@." Service.Store.pp_stats (Service.Store.stats store);
    if s.Service.Batch.errors > 0 then 2 else 0

let run_fsck store_dir =
  (* [~startup_fsck:false]: run the sweep explicitly so its report can
     be printed instead of being swallowed by [create]. *)
  match Service.Store.create ~startup_fsck:false ~dir:store_dir () with
  | exception (Sys_error msg | Failure msg) ->
    prerr_endline msg;
    2
  | store ->
    let report = Service.Store.fsck store in
    Format.printf "fsck %s: %a@." store_dir Service.Store.pp_fsck report;
    if report.Service.Store.quarantined > 0 then
      Format.printf "quarantined files moved to %s@." (Service.Store.quarantine_dir store);
    Format.printf "store: %a@." Service.Store.pp_stats (Service.Store.stats store);
    0

let run_suite () =
  List.iter
    (fun case ->
      let miter = Circuits.Suite.miter_of case in
      Format.printf "%-16s %a@." case.Circuits.Suite.name Aig.pp_stats miter)
    Circuits.Suite.default;
  0

(* --- cmdliner wiring --- *)

open Cmdliner

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let stats_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ] ~docv:"FILE"
        ~doc:
          "Write the aggregated observability registry (counters, gauges, histograms) as flat \
           JSON with a stable key order.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the recorded spans as Chrome trace_event JSON (load in chrome://tracing or \
           Perfetto).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection, e.g. \
           $(b,store.write:0.05,worker.crash:0.01@seed=42): each named injection point fires \
           with the given probability, drawn from one seeded PRNG stream so a spec replays the \
           same fault schedule.  Points: store.write, store.torn_write, store.corrupt, \
           worker.crash, engine.budget, proof.lift, peer.slow, peer.drop, peer.reset, \
           peer.partition.  Omitted = disabled (the points compile to a single boolean \
           load).")

let cert_format_conv =
  Arg.enum
    [
      ("trace", Service.Store.Trace);
      ("bin", Service.Store.Bin);
      ("bin3", Service.Store.Bin3);
    ]

(* `cec --proof` keeps writing ASCII traces unless asked (they diff and
   grep); the store defaults to the compact binary format. *)
let cert_format_arg ~default ~doc =
  Arg.(value & opt cert_format_conv default & info [ "cert-format" ] ~docv:"FORMAT" ~doc)

let gen_cmd =
  let spec =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc:"Circuit spec, e.g. add-rc:8.")
  in
  let rewrite =
    Arg.(
      value
      & opt (some string) None
      & info [ "rewrite" ] ~docv:"KIND"
          ~doc:"Apply a function-preserving rewrite: restructure, rebalance, double-negate.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark circuit as ASCII AIGER.")
    Term.(const run_gen $ spec $ rewrite $ output_arg)

let file_pos n doc = Arg.(required & pos n (some file) None & info [] ~docv:"FILE" ~doc)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print AIG size statistics.")
    Term.(const run_stats $ file_pos 0 "AIGER file.")

let miter_cmd =
  Cmd.v
    (Cmd.info "miter" ~doc:"Build the single-output miter of two circuits.")
    Term.(
      const run_miter $ file_pos 0 "Golden AIGER file." $ file_pos 1 "Revised AIGER file."
      $ output_arg)

let dimacs_cmd =
  Cmd.v
    (Cmd.info "dimacs" ~doc:"Export a single-output miter's CNF (with the output unit) in DIMACS.")
    Term.(const run_dimacs $ file_pos 0 "Single-output AIGER file." $ output_arg)

let sweep_mode_conv = Arg.enum [ ("perpair", Sweep.Perpair); ("incr", Sweep.Incremental) ]

let sweep_mode_arg =
  Arg.(
    value
    & opt sweep_mode_conv Sweep.Perpair
    & info [ "sweep" ] ~docv:"MODE"
        ~doc:
          "Sweeping engine mode: $(b,perpair) (a fresh solver per equivalence query, the \
           default) or $(b,incr) (one persistent incremental solver per partition — cone CNF \
           loaded once, queries issued as solver assumptions, learned clauses and proved lemmas \
           carried across queries).")

let portfolio_conv =
  Arg.enum [ ("sat", Sweep.Sat_only); ("bdd", Sweep.Bdd_first); ("hybrid", Sweep.Hybrid) ]

let service_engine_arg =
  Arg.(
    value
    & opt portfolio_conv Sweep.Sat_only
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Candidate-settling portfolio for the sweeping engine: $(b,sat) (default), $(b,bdd) \
           or $(b,hybrid).  Certificates are resolution-only in every portfolio.")

let cec_cmd =
  let engine =
    Arg.(
      value & opt string "sweep"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "$(b,mono) (one monolithic SAT call), $(b,sat)/$(b,sweep) (pure SAT sweeping), \
             $(b,bdd) (bounded BDD probe before every SAT query) or $(b,hybrid) (cone-feature \
             selector routing candidates between BDD, SAT and a race).  All engines emit the \
             same resolution-only certificates.")
  in
  let words =
    Arg.(
      value
      & opt int Sweep.default_config.Sweep.words
      & info [ "words" ] ~doc:"Random simulation words.")
  in
  let no_lemmas =
    Arg.(value & flag & info [ "no-lemmas" ] ~doc:"Disable lemma reuse (ablation).")
  in
  let budget =
    Arg.(value & opt (some int) None & info [ "max-conflicts" ] ~doc:"Per-call conflict budget.")
  in
  let proof_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof" ] ~docv:"FILE" ~doc:"Write the trimmed resolution trace here.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ] ~doc:"Re-check the certificate against a rebuilt miter CNF.")
  in
  let cert_format =
    cert_format_arg ~default:Service.Store.Trace
      ~doc:
        "Format for $(b,--proof): $(b,trace) (ASCII resolution trace, the default), $(b,bin) \
         (compact CECB binary certificate with deletion records) or $(b,bin3) (hinted CECB: \
         pivot hints plus a shard table on the prover's partition boundaries, checkable without \
         search and in parallel).  $(b,check-proof) auto-detects all three."
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Partition the miter per output and solve the partitions on $(docv) domains, \
             stitching the per-partition refutations into one certificate.  0 (default) keeps \
             the sequential single-miter engine; any $(docv) >= 1 takes the partitioned path, \
             so aggregate counters are identical for every worker count.")
  in
  Cmd.v
    (Cmd.info "cec" ~doc:"Check two AIGER circuits for equivalence."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Exit codes: 0 equivalent, 1 inequivalent, 2 usage error, 3 certificate rejected, 4 \
              undecided.";
         ])
    Term.(
      const run_cec $ file_pos 0 "Golden AIGER file." $ file_pos 1 "Revised AIGER file." $ engine
      $ words $ no_lemmas $ budget $ sweep_mode_arg $ jobs $ stats_out_arg $ trace_out_arg
      $ proof_out $ cert_format $ validate $ faults_arg)

let check_proof_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Check a hinted ($(b,bin3)) certificate's shards on $(docv) domains, joining at the \
             recorded partition boundaries.  Affects wall time only: verdict, error report and \
             aggregate counters are identical for every $(docv).  Ignored for un-hinted formats.")
  in
  Cmd.v
    (Cmd.info "check-proof"
       ~doc:
         "Validate a certificate against a miter AIGER file.  ASCII resolution traces, CECB \
          binary certificates and hinted ($(b,bin3)) certificates are auto-detected; binary \
          ones are checked in one bounded-memory streaming pass, hinted ones search-free and — \
          with $(b,--jobs) — shard-parallel.")
    Term.(
      const run_check_proof $ file_pos 0 "Single-output miter AIGER file."
      $ file_pos 1 "Certificate file (ASCII trace or CECB binary)."
      $ jobs)

let fraig_cmd =
  let words =
    Arg.(
      value
      & opt int Sweep.default_config.Sweep.words
      & info [ "words" ] ~doc:"Random simulation words.")
  in
  Cmd.v
    (Cmd.info "fraig" ~doc:"Functional reduction: merge SAT-proved equivalent nodes.")
    Term.(const run_fraig $ file_pos 0 "AIGER file." $ words $ output_arg)

let opt_cmd =
  let passes =
    Arg.(
      value
      & opt string "cutsweep,fraig,balance"
      & info [ "passes" ] ~docv:"LIST" ~doc:"Comma-separated passes: cutsweep, fraig, balance, cleanup.")
  in
  let words =
    Arg.(
      value
      & opt int Sweep.default_config.Sweep.words
      & info [ "words" ] ~doc:"Random simulation words for fraig.")
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Run an optimization pipeline over an AIGER file.")
    Term.(const run_opt $ file_pos 0 "AIGER file." $ passes $ words $ output_arg)

let bounded_cmd =
  let frames = Arg.(value & opt int 8 & info [ "frames" ] ~doc:"Unrolling depth.") in
  let engine =
    Arg.(
      value & opt string "sweep"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "$(b,mono) (one monolithic SAT call), $(b,sat)/$(b,sweep) (pure SAT sweeping), \
             $(b,bdd) (bounded BDD probe before every SAT query) or $(b,hybrid) (cone-feature \
             selector routing candidates between BDD, SAT and a race).  All engines emit the \
             same resolution-only certificates.")
  in
  Cmd.v
    (Cmd.info "bounded"
       ~doc:"Bounded sequential equivalence of two latch-bearing AIGER files (unroll + CEC).")
    Term.(
      const run_bounded $ file_pos 0 "Golden sequential AIGER." $ file_pos 1 "Revised sequential AIGER."
      $ frames $ engine $ sweep_mode_arg)

let bmc_cmd =
  let frames = Arg.(value & opt int 8 & info [ "frames" ] ~doc:"Unrolling depth.") in
  let engine =
    Arg.(
      value & opt string "sweep"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "$(b,mono) (one monolithic SAT call), $(b,sat)/$(b,sweep) (pure SAT sweeping), \
             $(b,bdd) (bounded BDD probe before every SAT query) or $(b,hybrid) (cone-feature \
             selector routing candidates between BDD, SAT and a race).  All engines emit the \
             same resolution-only certificates.")
  in
  Cmd.v
    (Cmd.info "bmc"
       ~doc:"Bounded safety: treat every output of a sequential AIGER file as a bad-state flag.")
    Term.(const run_bmc $ file_pos 0 "Sequential AIGER file." $ frames $ engine $ sweep_mode_arg)

let sat_cmd =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof" ] ~docv:"FILE" ~doc:"Write the trimmed resolution trace here.")
  in
  let rup = Arg.(value & flag & info [ "rup" ] ~doc:"Also verify the derived clauses by RUP.") in
  Cmd.v
    (Cmd.info "sat" ~doc:"Solve a DIMACS CNF with proof logging (exit 10 SAT / 20 UNSAT).")
    Term.(const run_sat $ file_pos 0 "DIMACS CNF file." $ trace_out $ rup)

let suite_cmd =
  Cmd.v
    (Cmd.info "suite" ~doc:"List the built-in benchmark suite with miter sizes.")
    Term.(const run_suite $ const ())

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

let listen_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: a Unix socket path or $(b,HOST:PORT) (port 0 asks the kernel for an \
           ephemeral port).  Repeatable; combines with $(b,--socket).")

let connect_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "connect-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Bound each connect attempt; without it a TCP connect to an unreachable host blocks \
           on the kernel's own (minutes-long) timeout.")

let store_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc:"Certificate store directory (created if absent).")

let capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "capacity-mb" ] ~docv:"MB"
        ~doc:"Store size cap in MiB; least-recently-used certificates are evicted beyond it.")

let no_paranoid_arg =
  Arg.(
    value & flag
    & info [ "no-paranoid" ]
        ~doc:"Trust stored certificates without re-validating them against a rebuilt miter.")

let service_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Solver domains per request (the parallel pool size).")

let service_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N"
        ~doc:"Initial per-partition conflict budget (escalated geometrically between rounds).")

let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-request deadline in milliseconds.")

let serve_cmd =
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains consuming the queue.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N" ~doc:"Bounded queue capacity; further requests are bounced.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-request logging to stderr.") in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the certification daemon (Unix socket and/or TCP)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Answers line-delimited requests (see $(b,client)) from a persistent \
              content-addressed certificate store, solving misses on the parallel engine.  \
              Listens on any mix of $(b,--socket) and $(b,--listen) endpoints — a TCP listen \
              makes the daemon a fleet shard behind $(b,route).  SIGINT/SIGTERM or a \
              $(b,shutdown) request drains the queue, persists the store index and exits.";
         ])
    Term.(
      const run_serve $ socket_arg $ listen_arg $ store_arg $ capacity_arg $ no_paranoid_arg
      $ workers $ queue $ service_jobs_arg $ service_budget_arg $ sweep_mode_arg
      $ service_engine_arg $ timeout_ms_arg $ quiet $ stats_out_arg $ trace_out_arg $ faults_arg)

let client_cmd =
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe.") in
  let retries =
    Arg.(
      value & opt int 4
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retries after a transient failure (connection refused, daemon restarting, queue \
             full), with exponential backoff and jitter; 0 fails fast.")
  in
  let retry_delay =
    Arg.(
      value & opt float 25.0
      & info [ "retry-delay-ms" ] ~docv:"MS" ~doc:"Backoff unit for the first retry.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Fetch metrics and store counters as JSON.") in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Fetch the full observability registry as flat JSON (from a router: the aggregated \
             fleet-wide snapshot).")
  in
  let shutdown = Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit.") in
  let connect =
    Arg.(
      value
      & opt_all string []
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Daemon or router address (Unix socket path or $(b,HOST:PORT)).  Repeatable: \
             retries rotate through the addresses, failing over across replicas.")
  in
  let golden = Arg.(value & pos 0 (some string) None & info [] ~docv:"GOLDEN" ~doc:"Golden netlist path (as seen by the daemon).") in
  let revised = Arg.(value & pos 1 (some string) None & info [] ~docv:"REVISED" ~doc:"Revised netlist path (as seen by the daemon).") in
  Cmd.v
    (Cmd.info "client" ~doc:"Submit one request to a daemon or a fleet router."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Prints the daemon's one-line JSON response.  Exit codes mirror $(b,cec): 0 \
              equivalent, 1 inequivalent, 2 error, 4 undecided or timed out.";
         ])
    Term.(
      const run_client $ socket_arg $ connect $ connect_timeout_arg $ ping $ stats $ metrics
      $ shutdown $ timeout_ms_arg $ retries $ retry_delay $ golden $ revised)

let route_cmd =
  let listen =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Router listen address (Unix socket path or $(b,HOST:PORT)).")
  in
  let shard =
    Arg.(
      value
      & opt_all string []
      & info [ "shard" ] ~docv:"[ID=]ADDR"
          ~doc:
            "A shard daemon, repeatable.  $(i,ID) is the stable ring identity (defaults to the \
             address); keep ids fixed across restarts so keys keep their owners.")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"R"
          ~doc:
            "Replica-set size per key: requests fail over across $(docv) shards, and fresh \
             verdicts are replayed to the standby replicas in the background.")
  in
  let vnodes =
    Arg.(
      value
      & opt int Fleet.Ring.default_vnodes
      & info [ "vnodes" ] ~docv:"N" ~doc:"Ring points per shard (balance/monotonicity knob).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Forwarding worker domains.")
  in
  let max_inflight =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Per-shard in-flight forward cap; a saturated replica set is answered with a \
                typed $(b,overloaded) rejection.")
  in
  let queue =
    Arg.(
      value & opt int 128
      & info [ "queue" ] ~docv:"N" ~doc:"Accepted-connection queue bound; beyond it requests \
                                         are shed immediately.")
  in
  let probe =
    Arg.(
      value & opt float 500.
      & info [ "probe-interval-ms" ] ~docv:"MS" ~doc:"Health probe period per shard.")
  in
  let connect_timeout =
    Arg.(
      value & opt float 250.
      & info [ "connect-timeout-ms" ] ~docv:"MS" ~doc:"Per-forward connect bound.")
  in
  let retry_after =
    Arg.(
      value & opt int 50
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Retry hint carried by $(b,overloaded) rejections.")
  in
  let request_timeout =
    Arg.(
      value & opt float 10_000.
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:
            "End-to-end budget for requests that carry no $(b,TIMEOUT_MS) of their own; a \
             request whose budget runs out is answered with a typed $(b,deadline_exceeded) \
             error instead of hanging.")
  in
  let probe_timeout =
    Arg.(
      value & opt float 1_000.
      & info [ "probe-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Response deadline per health probe: a shard that accepts the connection but \
             never answers is marked down instead of wedging the prober.")
  in
  let drain_timeout =
    Arg.(
      value & opt float 5_000.
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:"How long $(b,leave) waits for a shard's in-flight work before removing it \
                anyway.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress router logging to stderr.") in
  Cmd.v
    (Cmd.info "route" ~doc:"Run the fleet router over a ring of shard daemons."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Speaks the same line protocol as $(b,serve) and consistent-hashes each \
              $(b,check)'s structural key over the shard ring, so repeated and equivalent \
              requests land on the shard that already holds the certificate.  Failed shards \
              are probed, skipped and failed over; $(b,client --metrics) against the router \
              returns the merged fleet-wide snapshot.  The ring reconfigures live via \
              $(b,fleet-admin) (join/leave/drain) — no restart, observable through the \
              $(b,epoch) and $(b,moved_fraction) fields of $(b,client --stats).";
         ])
    Term.(
      const run_route $ listen $ shard $ replicas $ vnodes $ workers $ max_inflight $ queue
      $ probe $ connect_timeout $ retry_after $ request_timeout $ probe_timeout $ drain_timeout
      $ quiet $ stats_out_arg)

let fleet_admin_cmd =
  let connect =
    Arg.(
      value
      & opt_all string []
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Router address (Unix socket path or $(b,HOST:PORT)).")
  in
  let join =
    Arg.(
      value
      & opt (some string) None
      & info [ "join" ] ~docv:"ID=ADDR"
          ~doc:
            "Add shard $(i,ID) (listening on $(i,ADDR)) to the ring.  The router warms the \
             new shard up by replaying recently routed keys it now owns.")
  in
  let leave =
    Arg.(
      value
      & opt (some string) None
      & info [ "leave" ] ~docv:"ID"
          ~doc:
            "Drain shard $(i,ID), wait for its in-flight work (bounded by the router's \
             $(b,--drain-timeout-ms)), then remove it from the ring.")
  in
  let drain =
    Arg.(
      value
      & opt (some string) None
      & info [ "drain" ] ~docv:"ID"
          ~doc:
            "Flip shard $(i,ID) to replica-only: it stops receiving forwards and replication \
             but keeps its ring arc, so a later $(b,--join) is cheap.")
  in
  Cmd.v
    (Cmd.info "fleet-admin" ~doc:"Reconfigure a running fleet router's ring."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Sends one ring-administration request to a router started with $(b,route) and \
              prints its one-line JSON response (new epoch, sampled moved-key fraction, \
              warm-up count).  Exit code 0 on an $(b,ok) response, 2 otherwise.";
         ])
    Term.(const run_fleet_admin $ connect $ connect_timeout_arg $ join $ leave $ drain)

let batch_cmd =
  let manifest =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:"Manifest file: one \"GOLDEN REVISED\" pair per line, # comments allowed; relative \
                paths resolve against the manifest's directory.")
  in
  let cert_format =
    cert_format_arg ~default:Service.Store.Bin3
      ~doc:
        "Body format for newly stored certificates: $(b,bin3) (hinted CECB binary, the \
         default), $(b,bin) (compact CECB binary without hints) or $(b,trace) (ASCII \
         resolution trace).  Reading understands all three."
  in
  Cmd.v
    (Cmd.info "batch" ~doc:"Check a manifest of pairs against a certificate store, no daemon."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Offline mode: shares the store format with $(b,serve), so a batch run warms the \
              cache for a later daemon (and vice versa).";
         ])
    Term.(
      const run_batch $ manifest $ store_arg $ capacity_arg $ no_paranoid_arg $ cert_format
      $ service_jobs_arg $ service_budget_arg $ sweep_mode_arg $ service_engine_arg
      $ timeout_ms_arg $ stats_out_arg $ trace_out_arg $ faults_arg)

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck" ~doc:"Check and repair a certificate store directory."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Sweeps crash debris: orphaned temporary files and truncated/garbage certificate \
              objects are moved to the store's $(b,quarantine/) directory (binary bodies are \
              re-validated with the streaming proof checker), valid objects missing from the \
              index are re-adopted, and index entries whose object vanished are dropped.  The \
              daemon runs the same sweep at startup.";
         ])
    Term.(const run_fsck $ store_arg)

let commands =
  [
    gen_cmd;
    stats_cmd;
    miter_cmd;
    dimacs_cmd;
    cec_cmd;
    check_proof_cmd;
    fraig_cmd;
    opt_cmd;
    bounded_cmd;
    bmc_cmd;
    sat_cmd;
    suite_cmd;
    serve_cmd;
    client_cmd;
    route_cmd;
    fleet_admin_cmd;
    batch_cmd;
    fsck_cmd;
  ]

let main_cmd =
  Cmd.group
    (Cmd.info "cec_tool" ~version:"1.0.0"
       ~doc:"Combinational equivalence checking with resolution proofs.")
    commands

let () =
  (* Real wall-clock timelines for spans and latency histograms; the
     dependency-free Obs default is processor time. *)
  Obs.Clock.set Unix.gettimeofday;
  (* An unknown subcommand enumerates the full command list and exits 2
     (cmdliner's own message reserves exit 124 for CLI parse errors and
     its suggestion list elides non-near-miss names).  Unambiguous
     prefixes still reach cmdliner, which accepts them. *)
  let names = List.map Cmd.name commands in
  (match Array.to_list Sys.argv with
  | _ :: arg :: _
    when String.length arg > 0
         && arg.[0] <> '-'
         && not (List.exists (fun n -> String.starts_with ~prefix:arg n) names) ->
    Printf.eprintf "cec_tool: unknown command %S.\nCommands:\n  %s\n" arg
      (String.concat "\n  " names);
    exit 2
  | _ -> ());
  exit (Cmd.eval' main_cmd)
