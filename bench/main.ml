(* Experiment harness: regenerates every table (T1-T4) and figure
   series (F1-F4) documented in EXPERIMENTS.md, plus one Bechamel
   micro-benchmark per experiment.

   Usage:
     dune exec bench/main.exe            run all experiments + bechamel
     dune exec bench/main.exe t1 f3 ...  run selected experiments
     dune exec bench/main.exe bechamel   run only the micro-benchmarks *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel
module Simclass = Cec_core.Simclass
module Pstats = Proof.Pstats

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let sweeping_engine = Cec.Sweeping Sweep.default_config

let check_case engine case =
  let miter = Circuits.Suite.miter_of case in
  time (fun () -> Cec.check_miter engine miter)

let cert_of report =
  match report.Cec.verdict with
  | Cec.Equivalent cert -> cert
  | Cec.Inequivalent _ -> failwith "benchmark case inequivalent (bug)"
  | Cec.Undecided -> failwith "benchmark case undecided"

(* Collected certificates feed F2 (check time vs proof size). *)
let collected_certificates : (string * Cec.certificate) list ref = ref []

let remember name cert = collected_certificates := (name, cert) :: !collected_certificates

(* --- T1: benchmark characteristics --- *)

let t1 () =
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let miter = Aig.Miter.build golden revised in
        [
          case.Circuits.Suite.name;
          string_of_int (Aig.num_inputs golden);
          string_of_int (Aig.num_outputs golden);
          string_of_int (Aig.num_ands golden);
          string_of_int (Aig.num_ands revised);
          string_of_int (Aig.num_ands miter);
          string_of_int (Aig.depth miter);
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"T1: benchmark suite characteristics"
    ~columns:[ "case"; "PIs"; "POs"; "golden ANDs"; "revised ANDs"; "miter ANDs"; "depth" ]
    ~rows

(* --- T2: engine comparison (time, SAT calls, conflicts, merges) --- *)

let t2 () =
  let rows =
    List.map
      (fun case ->
        let mono, mono_t = check_case Cec.Monolithic case in
        let sweep, sweep_t = check_case sweeping_engine case in
        let s = Option.get sweep.Cec.sweep_stats in
        [
          case.Circuits.Suite.name;
          Tables.fmt_ms mono_t;
          string_of_int mono.Cec.solver_conflicts;
          Tables.fmt_ms sweep_t;
          string_of_int sweep.Cec.sat_calls;
          string_of_int sweep.Cec.solver_conflicts;
          string_of_int (s.Sweep.merges + s.Sweep.const_merges);
          string_of_int s.Sweep.cex;
          Tables.fmt_ratio mono_t sweep_t;
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"T2: CEC engines (mono vs sweeping; time in ms)"
    ~columns:
      [
        "case"; "mono ms"; "mono conf"; "sweep ms"; "calls"; "sweep conf"; "merges"; "cex";
        "speedup";
      ]
    ~rows

(* --- T2h: hard instances (time and proof size, both engines) --- *)

let t2h () =
  let rows =
    List.map
      (fun case ->
        let mono, mono_t = check_case Cec.Monolithic case in
        let sweep, sweep_t = check_case sweeping_engine case in
        let ms = Pstats.of_root (cert_of mono).Cec.proof ~root:(cert_of mono).Cec.root in
        let ss = Pstats.of_root (cert_of sweep).Cec.proof ~root:(cert_of sweep).Cec.root in
        [
          case.Circuits.Suite.name;
          Tables.fmt_ms mono_t;
          Tables.fmt_ms sweep_t;
          Tables.fmt_ratio mono_t sweep_t;
          string_of_int ms.Pstats.resolutions;
          string_of_int ss.Pstats.resolutions;
          Tables.fmt_ratio (float_of_int ms.Pstats.resolutions) (float_of_int ss.Pstats.resolutions);
        ])
      Circuits.Suite.hard
  in
  Tables.print ~title:"T2h: hard instances (Booth multiplier pairs)"
    ~columns:
      [ "case"; "mono ms"; "sweep ms"; "speedup"; "mono res"; "sweep res"; "proof ratio" ]
    ~rows

(* --- T3: resolution proof sizes, both engines, checker pass --- *)

let t3 () =
  let rows =
    List.map
      (fun case ->
        let name = case.Circuits.Suite.name in
        let mono, _ = check_case Cec.Monolithic case in
        let sweep, _ = check_case sweeping_engine case in
        let mono_cert = cert_of mono and sweep_cert = cert_of sweep in
        remember (name ^ "/mono") mono_cert;
        remember (name ^ "/sweep") sweep_cert;
        let ms = Pstats.of_root mono_cert.Cec.proof ~root:mono_cert.Cec.root in
        let ss = Pstats.of_root sweep_cert.Cec.proof ~root:sweep_cert.Cec.root in
        let checked cert =
          match Cec_core.Certify.validate cert with
          | Ok _ -> "ok"
          | Error _ -> "FAIL"
        in
        [
          name;
          string_of_int ms.Pstats.chains;
          string_of_int ms.Pstats.resolutions;
          string_of_int ss.Pstats.chains;
          string_of_int ss.Pstats.resolutions;
          Tables.fmt_ratio (float_of_int ms.Pstats.resolutions) (float_of_int ss.Pstats.resolutions);
          checked mono_cert;
          checked sweep_cert;
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"T3: resolution proof size (chains / resolution steps)"
    ~columns:
      [ "case"; "mono chains"; "mono res"; "sweep chains"; "sweep res"; "mono/sweep"; "chk-m"; "chk-s" ]
    ~rows

(* --- T4: trimming the sweeping proofs --- *)

let t4 () =
  (* The monolithic store keeps a chain per learned clause, most of
     which never feed the empty clause; the sweeping store keeps lemma
     derivations, some of which the final refutation never needs.
     Trimming measures both kinds of dead weight. *)
  let trim_stats cert =
    let reachable, total = Proof.Trim.sizes cert.Cec.proof ~root:cert.Cec.root in
    let (trimmed, troot), trim_t =
      time (fun () -> Proof.Trim.cone cert.Cec.proof ~root:cert.Cec.root)
    in
    let check_result, check_t =
      time (fun () -> Proof.Checker.check trimmed ~root:troot ~formula:cert.Cec.formula ())
    in
    let ok = match check_result with Ok _ -> "ok" | Error _ -> "FAIL" in
    let pct = 100.0 *. float_of_int (total - reachable) /. float_of_int (max total 1) in
    (total, reachable, pct, trim_t, check_t, ok)
  in
  let rows =
    List.map
      (fun case ->
        let mono, _ = check_case Cec.Monolithic case in
        let sweep, _ = check_case sweeping_engine case in
        let m_total, m_reach, m_pct, _, _, m_ok = trim_stats (cert_of mono) in
        let s_total, s_reach, s_pct, trim_t, check_t, s_ok = trim_stats (cert_of sweep) in
        [
          case.Circuits.Suite.name;
          Printf.sprintf "%d/%d" m_reach m_total;
          Printf.sprintf "%.1f%%" m_pct;
          Printf.sprintf "%d/%d" s_reach s_total;
          Printf.sprintf "%.1f%%" s_pct;
          Tables.fmt_ms trim_t;
          Tables.fmt_ms check_t;
          (if m_ok = "ok" && s_ok = "ok" then "ok" else "FAIL");
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"T4: proof trimming (live nodes / store nodes, % trimmed)"
    ~columns:
      [ "case"; "mono live/all"; "mono cut"; "sweep live/all"; "sweep cut"; "trim ms"; "check ms"; "ok" ]
    ~rows

(* --- F1: proof size vs circuit size (adder width sweep) --- *)

let f1_widths = [ 2; 4; 8; 12; 16; 24; 32 ]

let f1 () =
  let rows =
    List.map
      (fun width ->
        let miter =
          Aig.Miter.build (Circuits.Adder.ripple_carry width) (Circuits.Adder.carry_lookahead width)
        in
        let mono, mono_t = time (fun () -> Cec.check_miter Cec.Monolithic miter) in
        let sweep, sweep_t = time (fun () -> Cec.check_miter sweeping_engine miter) in
        let mono_cert = cert_of mono and sweep_cert = cert_of sweep in
        remember (Printf.sprintf "add%d/mono" width) mono_cert;
        remember (Printf.sprintf "add%d/sweep" width) sweep_cert;
        let ms = Pstats.of_root mono_cert.Cec.proof ~root:mono_cert.Cec.root in
        let ss = Pstats.of_root sweep_cert.Cec.proof ~root:sweep_cert.Cec.root in
        [
          string_of_int width;
          string_of_int (Aig.num_ands miter);
          string_of_int ms.Pstats.resolutions;
          string_of_int ss.Pstats.resolutions;
          Tables.fmt_ms mono_t;
          Tables.fmt_ms sweep_t;
        ])
      f1_widths
  in
  Tables.print
    ~title:"F1: proof size scaling on add-rc vs add-cla miters (series: mono, sweep)"
    ~columns:[ "width"; "miter ANDs"; "mono res"; "sweep res"; "mono ms"; "sweep ms" ]
    ~rows

(* --- F2: proof check time vs proof size --- *)

let f2 () =
  if !collected_certificates = [] then
    (* Standalone invocation: gather a few certificates first. *)
    List.iter
      (fun case ->
        let sweep, _ = check_case sweeping_engine case in
        remember case.Circuits.Suite.name (cert_of sweep))
      Circuits.Suite.small;
  let rows =
    List.rev_map
      (fun (name, cert) ->
        let s = Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
        let result, check_t =
          time (fun () ->
              Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:cert.Cec.formula ())
        in
        let ok = match result with Ok _ -> "ok" | Error _ -> "FAIL" in
        [
          name;
          string_of_int s.Pstats.chains;
          string_of_int s.Pstats.resolutions;
          Tables.fmt_ms check_t;
          (if s.Pstats.resolutions = 0 then "-"
           else Printf.sprintf "%.2f" (1e6 *. check_t /. float_of_int s.Pstats.resolutions));
          ok;
        ])
      !collected_certificates
  in
  Tables.print ~title:"F2: proof check time vs proof size (series over all certificates)"
    ~columns:[ "certificate"; "chains"; "resolutions"; "check ms"; "us/res"; "ok" ]
    ~rows

(* --- F3: simulation budget vs SAT calls (ablation) --- *)

let f3 () =
  let miter = Aig.Miter.build (Circuits.Multiplier.array 4) (Circuits.Multiplier.shift_add 4) in
  let rows =
    List.map
      (fun words ->
        let cfg = { Sweep.default_config with Sweep.words } in
        let (outcome, stats), t = time (fun () -> Sweep.run miter cfg) in
        let verdict =
          match outcome with
          | Sweep.Proved _ -> "proved"
          | Sweep.Disproved _ -> "CEX?"
          | Sweep.Unresolved -> "budget"
        in
        let classes, members =
          let simc = Simclass.create miter ~words ~seed:Sweep.default_config.Sweep.seed in
          Simclass.class_stats simc
        in
        [
          string_of_int words;
          string_of_int (64 * words);
          string_of_int classes;
          string_of_int members;
          string_of_int stats.Sweep.sat_calls;
          string_of_int stats.Sweep.cex;
          Tables.fmt_ms t;
          verdict;
        ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Tables.print ~title:"F3: simulation budget vs SAT effort (mul4 array-vs-shift/add)"
    ~columns:[ "words"; "patterns"; "classes"; "members"; "sat calls"; "cex"; "ms"; "verdict" ]
    ~rows

(* --- F4: lemma reuse ablation --- *)

let f4_budget = 20_000

let f4 () =
  let rows =
    List.map
      (fun case ->
        let run lemma_reuse =
          (* The no-lemmas arm can blow up by orders of magnitude, so
             the final call gets a conflict budget; budgeted rows are
             marked and report a lower bound. *)
          let cfg =
            { Sweep.default_config with Sweep.lemma_reuse; max_conflicts = Some f4_budget }
          in
          check_case (Cec.Sweeping cfg) case
        in
        let with_l, t_with = run true in
        let without_l, t_without = run false in
        let conflicts r = r.Cec.solver_conflicts in
        let budgeted = match without_l.Cec.verdict with Cec.Undecided -> ">" | _ -> "" in
        [
          case.Circuits.Suite.name;
          Tables.fmt_ms t_with;
          string_of_int (conflicts with_l);
          Tables.fmt_ms t_without;
          budgeted ^ string_of_int (conflicts without_l);
          budgeted
          ^ Tables.fmt_ratio
              (float_of_int (conflicts without_l))
              (float_of_int (max 1 (conflicts with_l)));
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"F4: lemma reuse ablation (sweeping engine)"
    ~columns:[ "case"; "lemmas ms"; "lemmas conf"; "no-lemmas ms"; "no-lemmas conf"; "conf blowup" ]
    ~rows


(* --- T5: fraig functional reduction (the engine as synthesis) --- *)

let t5 () =
  let rows =
    List.map
      (fun case ->
        (* Fraig the structurally inflated (revised) version alone. *)
        let inflated = case.Circuits.Suite.revised () in
        let (reduced, stats), t = time (fun () -> Sweep.fraig inflated Sweep.default_config) in
        [
          case.Circuits.Suite.name;
          string_of_int (Aig.num_ands inflated);
          string_of_int (Aig.num_ands reduced);
          Printf.sprintf "%.1f%%"
            (100.0
            *. float_of_int (Aig.num_ands inflated - Aig.num_ands reduced)
            /. float_of_int (max 1 (Aig.num_ands inflated)));
          string_of_int (stats.Sweep.merges + stats.Sweep.const_merges);
          string_of_int stats.Sweep.sat_calls;
          Tables.fmt_ms t;
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"T5: fraig functional reduction of the revised netlists"
    ~columns:[ "case"; "ANDs before"; "ANDs after"; "reduction"; "merges"; "sat calls"; "ms" ]
    ~rows

(* --- F5: proof compression by derivation sharing --- *)

let f5 () =
  let rows =
    List.map
      (fun case ->
        let sweep, _ = check_case sweeping_engine case in
        let cert = cert_of sweep in
        let (kept, original), t =
          time (fun () -> Proof.Compress.sharing_gain cert.Cec.proof ~root:cert.Cec.root)
        in
        let shared, sroot = Proof.Compress.share cert.Cec.proof ~root:cert.Cec.root in
        let ok =
          match Proof.Checker.check shared ~root:sroot ~formula:cert.Cec.formula () with
          | Ok _ -> "ok"
          | Error _ -> "FAIL"
        in
        [
          case.Circuits.Suite.name;
          string_of_int original;
          string_of_int kept;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int (original - kept) /. float_of_int (max 1 original));
          Tables.fmt_ms t;
          ok;
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"F5: proof compression by derivation sharing (sweeping proofs)"
    ~columns:[ "case"; "cone nodes"; "after sharing"; "shared away"; "ms"; "ok" ]
    ~rows

(* --- T7: certified synthesis pipeline (restructure -> cutsweep -> fraig) --- *)

let t7 () =
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () in
        let inflated = case.Circuits.Suite.revised () in
        let swept = Synth.Cutsweep.reduce inflated in
        let fraiged, _ = Sweep.fraig swept Sweep.default_config in
        let fraiged = Aig.cleanup fraiged in
        let certified =
          match (Cec.check sweeping_engine golden fraiged).Cec.verdict with
          | Cec.Equivalent cert -> (
            match Cec_core.Certify.validate_against cert golden fraiged with
            | Ok _ -> "ok"
            | Error _ -> "FAIL")
          | Cec.Inequivalent _ -> "NEQ"
          | Cec.Undecided -> "budget"
        in
        [
          case.Circuits.Suite.name;
          string_of_int (Aig.num_ands golden);
          string_of_int (Aig.num_ands inflated);
          string_of_int (Aig.num_ands swept);
          string_of_int (Aig.num_ands fraiged);
          Printf.sprintf "%.1f%%"
            (100.0
            *. float_of_int (Aig.num_ands inflated - Aig.num_ands fraiged)
            /. float_of_int (max 1 (Aig.num_ands inflated)));
          certified;
        ])
      Circuits.Suite.default
  in
  Tables.print
    ~title:"T7: certified optimization pipeline (revised -> cutsweep -> fraig, checked vs golden)"
    ~columns:[ "case"; "golden"; "revised"; "cutsweep"; "fraig"; "reduction"; "cert" ]
    ~rows

(* --- T6: BDD baseline across the suite --- *)

let t6 () =
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let report, bdd_t = time (fun () -> Bdd.Equiv.check ~max_nodes:1_000_000 golden revised) in
        let verdict =
          match report.Bdd.Equiv.verdict with
          | Bdd.Equiv.Equivalent -> "eq"
          | Bdd.Equiv.Inequivalent _ -> "NEQ"
          | Bdd.Equiv.Blowup -> "BLOWUP"
        in
        let _, sweep_t = check_case sweeping_engine case in
        [
          case.Circuits.Suite.name;
          verdict;
          string_of_int report.Bdd.Equiv.bdd_nodes;
          Tables.fmt_ms bdd_t;
          Tables.fmt_ms sweep_t;
        ])
      Circuits.Suite.default
  in
  Tables.print ~title:"T6: BDD baseline vs sweeping (node cap 1M)"
    ~columns:[ "case"; "bdd verdict"; "bdd nodes"; "bdd ms"; "sweep ms" ]
    ~rows

(* --- F6: where BDDs fall off a cliff (multiplier width sweep) --- *)

let f6 () =
  let rows =
    List.map
      (fun width ->
        let golden = Circuits.Multiplier.array width in
        let revised = Circuits.Rewrite.restructure (Support.Rng.create 5) golden in
        let report, bdd_t = time (fun () -> Bdd.Equiv.check ~max_nodes:1_000_000 golden revised) in
        let bdd_verdict =
          match report.Bdd.Equiv.verdict with
          | Bdd.Equiv.Equivalent -> "eq"
          | Bdd.Equiv.Inequivalent _ -> "NEQ"
          | Bdd.Equiv.Blowup -> "BLOWUP"
        in
        let sweep, sweep_t =
          time (fun () -> Cec.check (Cec.Sweeping Sweep.default_config) golden revised)
        in
        let sweep_verdict, proof_res =
          match sweep.Cec.verdict with
          | Cec.Equivalent cert ->
            let s = Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
            ("eq+proof", string_of_int s.Pstats.resolutions)
          | Cec.Inequivalent _ -> ("NEQ", "-")
          | Cec.Undecided -> ("budget", "-")
        in
        [
          string_of_int width;
          bdd_verdict;
          string_of_int report.Bdd.Equiv.bdd_nodes;
          Tables.fmt_ms bdd_t;
          sweep_verdict;
          Tables.fmt_ms sweep_t;
          proof_res;
        ])
      [ 4; 6; 8; 10 ]
  in
  Tables.print
    ~title:"F6: BDD cliff on multipliers (mulN array vs restructured; BDD cap 1M nodes)"
    ~columns:[ "width"; "bdd"; "bdd nodes"; "bdd ms"; "sweep"; "sweep ms"; "sweep proof res" ]
    ~rows

(* --- F7: engine-mode ablation (fresh solvers + lifting vs one
       incremental solver with native assumptions) ------------------- *)

let f7 () =
  let rows =
    List.map
      (fun case ->
        let run mode = check_case (Cec.Sweeping { Sweep.default_config with Sweep.mode }) case in
        let fresh, t_fresh = run Sweep.Perpair in
        let inc, t_inc = run Sweep.Incremental in
        let proof_res report =
          let cert = cert_of report in
          (Pstats.of_root cert.Cec.proof ~root:cert.Cec.root).Pstats.resolutions
        in
        [
          case.Circuits.Suite.name;
          Tables.fmt_ms t_fresh;
          string_of_int fresh.Cec.solver_conflicts;
          string_of_int (proof_res fresh);
          Tables.fmt_ms t_inc;
          string_of_int inc.Cec.solver_conflicts;
          string_of_int (proof_res inc);
          Tables.fmt_ratio t_fresh t_inc;
        ])
      (Circuits.Suite.default @ Circuits.Suite.hard)
  in
  Tables.print
    ~title:"F7: engine mode (fresh solvers + lift vs incremental native assumptions)"
    ~columns:
      [ "case"; "fresh ms"; "fresh conf"; "fresh res"; "inc ms"; "inc conf"; "inc res"; "speedup" ]
    ~rows

(* --- F8: bounded sequential equivalence scaling over frames -------- *)

let f8 () =
  let a = Circuits.Counters.gray_output_binary_counter 6 in
  let b = Circuits.Counters.gray_state_counter 6 in
  let rows =
    List.map
      (fun frames ->
        let ua = Aig.Seq.unroll a ~frames and ub = Aig.Seq.unroll b ~frames in
        let miter_ands = Aig.num_ands (Aig.Miter.build ua ub) in
        let run engine = time (fun () -> Cec.check_bounded ~frames engine a b) in
        let mono, mono_t = run Cec.Monolithic in
        let sweep, sweep_t =
          run (Cec.Sweeping { Sweep.default_config with Sweep.mode = Sweep.Incremental })
        in
        let res report =
          match report.Cec.verdict with
          | Cec.Equivalent cert ->
            string_of_int
              (Pstats.of_root cert.Cec.proof ~root:cert.Cec.root).Pstats.resolutions
          | Cec.Inequivalent _ -> "NEQ"
          | Cec.Undecided -> "budget"
        in
        [
          string_of_int frames;
          string_of_int miter_ands;
          Tables.fmt_ms mono_t;
          res mono;
          Tables.fmt_ms sweep_t;
          res sweep;
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  Tables.print
    ~title:"F8: bounded sequential equivalence (6-bit gray counter pair, frames sweep)"
    ~columns:[ "frames"; "miter ANDs"; "mono ms"; "mono res"; "sweep ms"; "sweep res" ]
    ~rows

(* --- P1: parallel partitioned CEC (domain scaling + stitched proofs) --- *)

let p1 () =
  let parallel_cfg num_domains = { Parallel.default_config with Parallel.num_domains } in
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let sweep, sweep_t = check_case sweeping_engine case in
        let run nd = time (fun () -> Parallel.check ~config:(parallel_cfg nd) golden revised) in
        let p1r, t1 = run 1 in
        let _, t2 = run 2 in
        let _, t4 = run 4 in
        let stitched =
          match p1r.Parallel.verdict with
          | Cec.Equivalent cert -> Pstats.of_root cert.Cec.proof ~root:cert.Cec.root
          | Cec.Inequivalent _ | Cec.Undecided -> failwith "benchmark case not proved (bug)"
        in
        let sweep_res =
          (let cert = cert_of sweep in
           Pstats.of_root cert.Cec.proof ~root:cert.Cec.root)
            .Pstats.resolutions
        in
        [
          case.Circuits.Suite.name;
          string_of_int (Array.length p1r.Parallel.stats.Parallel.partitions);
          Tables.fmt_ms sweep_t;
          Tables.fmt_ms t1;
          Tables.fmt_ms t2;
          Tables.fmt_ms t4;
          Tables.fmt_ratio t1 t4;
          string_of_int sweep_res;
          string_of_int stitched.Pstats.resolutions;
        ])
      Circuits.Suite.default
  in
  Tables.print
    ~title:
      "P1: parallel partitioned CEC (per-output jobs, stitched certificate; 1/2/4 domains vs \
       sequential sweeping)"
    ~columns:
      [
        "case"; "parts"; "seq ms"; "1-dom ms"; "2-dom ms"; "4-dom ms"; "scaling"; "seq res";
        "stitched res";
      ]
    ~rows

(* --- P2: certificate store, cold solve vs warm hit --- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let p2 () =
  let dir = Filename.temp_file "cecd-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Service.Store.create ~dir () in
  let engine = Service.Engine.default_config in
  let rows =
    List.map
      (fun case ->
        let golden = Service.Key.normalize (case.Circuits.Suite.golden ()) in
        let revised = Service.Key.normalize (case.Circuits.Suite.revised ()) in
        let key = Service.Key.of_pair golden revised in
        (* Cold: the full service path on an empty store — miss, solve,
           persist the certificate. *)
        let result, cold_t =
          time (fun () ->
              match Service.Store.find store key ~golden ~revised with
              | Some _ -> failwith "store not cold (bug)"
              | None ->
                let result = Service.Engine.solve engine golden revised in
                Service.Store.store store key result.Service.Engine.verdict;
                result)
        in
        (* Warm: the same request again — load, reparse and (paranoid
           mode) re-validate the stored certificate. *)
        let reloaded, warm_t = time (fun () -> Service.Store.find store key ~golden ~revised) in
        let status =
          match reloaded with
          | Some (Cec.Equivalent _) -> "equivalent"
          | Some (Cec.Inequivalent _) -> "inequivalent"
          | Some Cec.Undecided | None -> "MISS (bug)"
        in
        let bytes =
          match Unix.stat (Service.Store.entry_path store key) with
          | { Unix.st_size; _ } -> st_size
          | exception Unix.Unix_error _ -> 0
        in
        [
          case.Circuits.Suite.name;
          Tables.fmt_ms cold_t;
          Tables.fmt_ms warm_t;
          Tables.fmt_ratio cold_t warm_t;
          status;
          string_of_int bytes;
          string_of_int result.Service.Engine.conflicts;
        ])
      Circuits.Suite.default
  in
  Tables.print
    ~title:
      "P2: certificate store, cold solve vs warm paranoid hit (find+solve+store vs \
       find+reparse+revalidate)"
    ~columns:[ "case"; "cold ms"; "warm ms"; "speedup"; "status"; "cert bytes"; "conflicts" ]
    ~rows;
  Format.printf "store: %a@." Service.Store.pp_stats (Service.Store.stats store)

(* --- P3: observability — registry export + instrumentation overhead --- *)

let p3 () =
  (* The p1 workload (4-domain partitioned check over the suite), once
     per case under a fresh registry.  The instrumentation cannot be
     compiled out, so the overhead column is analytic: a micro-timed
     [Counter.incr] cost times the number of counter ticks the case
     recorded, as a share of the case's wall time.  The merged registry
     is exported to BENCH_p3.json so the perf trajectory is tracked in
     machine-readable form from this PR on. *)
  let incr_ns =
    let reg = Obs.Registry.create () in
    let c = Obs.Registry.counter reg "bench.calibrate" in
    let n = 5_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      Obs.Counter.incr c
    done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let merged = Obs.Registry.create () in
  let config = { Parallel.default_config with Parallel.num_domains = 4 } in
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let reg = Obs.Registry.create () in
        let report, t =
          Obs.with_ambient reg (fun () -> time (fun () -> Parallel.check ~config golden revised))
        in
        (match report.Parallel.verdict with
        | Cec.Equivalent _ -> ()
        | Cec.Inequivalent _ | Cec.Undecided -> failwith "benchmark case not proved (bug)");
        let counters = Obs.Registry.counters reg in
        let value name = try List.assoc name counters with Not_found -> 0 in
        let ticks = List.fold_left (fun acc (_, v) -> acc + v) 0 counters in
        let overhead = 100.0 *. (float_of_int ticks *. incr_ns /. 1e9) /. t in
        Obs.Gauge.set
          (Obs.Registry.gauge merged ("bench.p3." ^ case.Circuits.Suite.name ^ "_ms"))
          (1000.0 *. t);
        Obs.Registry.merge_into ~into:merged reg;
        [
          case.Circuits.Suite.name;
          Tables.fmt_ms t;
          string_of_int (value "sat.conflicts");
          string_of_int (value "sat.propagations");
          string_of_int (value "sweep.sat_calls");
          string_of_int (value "proof.chains");
          string_of_int ticks;
          Printf.sprintf "%.2f%%" overhead;
        ])
      Circuits.Suite.default
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "P3: observability registry over the p1 workload (4 domains; Counter.incr ~ %.1f ns, \
          overhead = ticks x incr / wall)"
         incr_ns)
    ~columns:
      [ "case"; "ms"; "conflicts"; "props"; "SAT calls"; "chains"; "obs ticks"; "overhead" ]
    ~rows;
  Out_channel.with_open_text "BENCH_p3.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p3.json (%d counters)\n"
    (List.length (Obs.Registry.counters merged))

let p4 () =
  (* Certificate formats over the p1 workload: for every suite case,
     solve once (4-domain partitioned check), then export the same
     refutation as an ASCII trace and as a CECB binary certificate and
     validate each with its own checker — parse + materialized
     [Checker.check] for the trace, one streaming bounded-memory pass
     for the binary.  Bytes, check times and the streaming peak live
     set go to BENCH_p4.json. *)
  let merged = Obs.Registry.create () in
  let config = { Parallel.default_config with Parallel.num_domains = 4 } in
  let total_ascii = ref 0 and total_bin = ref 0 in
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let reg = Obs.Registry.create () in
        Obs.with_ambient reg (fun () ->
            let report = Parallel.check ~config golden revised in
            let cert =
              match report.Parallel.verdict with
              | Cec.Equivalent cert -> cert
              | Cec.Inequivalent _ | Cec.Undecided -> failwith "benchmark case not proved (bug)"
            in
            let proof = cert.Cec.proof and root = cert.Cec.root in
            let formula = cert.Cec.formula in
            let ascii, t_ascii_enc =
              time (fun () ->
                  let trimmed, troot = Proof.Trim.cone proof ~root in
                  Proof.Export.trace_to_string trimmed ~root:troot)
            in
            let bin, t_bin_enc = time (fun () -> Proof.Binfmt.encode proof ~root) in
            let chains_checked, t_ascii_chk =
              time (fun () ->
                  let p, r = Proof.Export.trace_of_string ascii in
                  match Proof.Checker.check p ~root:r ~formula () with
                  | Ok chains -> chains
                  | Error e -> failwith (Format.asprintf "ascii check failed: %a" Proof.Checker.pp_error e))
            in
            let st, t_bin_chk =
              time (fun () ->
                  match Proof.Stream_check.check ~formula bin with
                  | Ok st -> st
                  | Error e ->
                    failwith (Format.asprintf "binary check failed: %a" Proof.Stream_check.pp_error e))
            in
            if st.Proof.Stream_check.chains <> chains_checked then
              failwith "checkers disagree on chain count (bug)";
            let ratio = float_of_int (String.length ascii) /. float_of_int (String.length bin) in
            total_ascii := !total_ascii + String.length ascii;
            total_bin := !total_bin + String.length bin;
            let gauge suffix v =
              Obs.Gauge.set
                (Obs.Registry.gauge merged ("bench.p4." ^ case.Circuits.Suite.name ^ suffix))
                v
            in
            gauge "_ascii_bytes" (float_of_int (String.length ascii));
            gauge "_bin_bytes" (float_of_int (String.length bin));
            gauge "_ratio" ratio;
            gauge "_ascii_check_ms" (1000.0 *. t_ascii_chk);
            gauge "_bin_check_ms" (1000.0 *. t_bin_chk);
            gauge "_peak_live" (float_of_int st.Proof.Stream_check.peak_live);
            Obs.Registry.merge_into ~into:merged reg;
            [
              case.Circuits.Suite.name;
              string_of_int (String.length ascii);
              string_of_int (String.length bin);
              Printf.sprintf "%.2fx" ratio;
              Tables.fmt_ms (t_ascii_enc +. t_bin_enc);
              Tables.fmt_ms t_ascii_chk;
              Tables.fmt_ms t_bin_chk;
              string_of_int st.Proof.Stream_check.chains;
              string_of_int st.Proof.Stream_check.peak_live;
            ]))
      Circuits.Suite.default
  in
  Tables.print
    ~title:
      "P4: certificate formats (ASCII trace vs CECB binary) over the p1 workload (4 domains)"
    ~columns:
      [ "case"; "ascii B"; "bin B"; "ratio"; "enc ms"; "ascii chk"; "bin chk"; "chains"; "peak live" ]
    ~rows;
  let total_ratio = float_of_int !total_ascii /. float_of_int !total_bin in
  Obs.Gauge.set (Obs.Registry.gauge merged "bench.p4.total_ascii_bytes") (float_of_int !total_ascii);
  Obs.Gauge.set (Obs.Registry.gauge merged "bench.p4.total_bin_bytes") (float_of_int !total_bin);
  Obs.Gauge.set (Obs.Registry.gauge merged "bench.p4.total_ratio") total_ratio;
  Printf.printf "total: ascii %d B, binary %d B (%.2fx smaller)\n" !total_ascii !total_bin
    total_ratio;
  (* Acceptance: streaming must genuinely beat materializing — across
     the workload the live high-water mark (gauges merge by max) stays
     strictly below the chain total (counters merge by sum).  Both come
     from the lib/obs registry the streaming checker feeds. *)
  let peak =
    try int_of_float (List.assoc "proof.stream.peak_live" (Obs.Registry.gauges merged))
    with Not_found -> 0
  and chain_total =
    try List.assoc "proof.stream.chains" (Obs.Registry.counters merged) with Not_found -> 0
  in
  Printf.printf "streaming: peak live %d clauses vs %d chains checked (%s)\n" peak chain_total
    (if peak < chain_total then "bounded-memory OK" else "NOT below chain count");
  Out_channel.with_open_text "BENCH_p4.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p4.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

(* --- P5: availability under injected faults --- *)

let p5 () =
  (* A live daemon (2 workers) replays a fixed mix of check requests
     through the retrying client while lib/fault injects crashes and
     store write failures at the configured rates.  Per spec: request
     success rate, p50/p99 client-observed latency, degraded
     (uncertified) answers, typed errors, worker retries, and what a
     post-mortem fsck of the store finds.  Any wrong verdict (a suite
     pair reported anything but equivalent/uncertified) aborts the
     benchmark.  Gauges go to BENCH_p5.json. *)
  let requests = 200 in
  let specs =
    [
      ("clean", "none", None);
      ("worker crash 5%", "worker_crash", Some "worker.crash:0.05@seed=42");
      (* The replay is hit-dominated, so store writes are rare; high
         rates are needed to actually exercise the write-failure path. *)
      ("store faults 50%", "store_write", Some "store.write:0.5,store.torn_write:0.25@seed=42");
      ("combined 5%", "combined", Some "worker.crash:0.05,store.write:0.05@seed=42");
    ]
  in
  let cases = List.filteri (fun i _ -> i < 2) Circuits.Suite.small in
  let merged = Obs.Registry.create () in
  let rows =
    List.map
      (fun (label, slug, spec) ->
        let dir = Filename.temp_file "cecd-p5" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        Fun.protect ~finally:(fun () ->
            Fault.disable ();
            rm_rf dir)
        @@ fun () ->
        let paths =
          List.map
            (fun case ->
              let g = Filename.concat dir (case.Circuits.Suite.name ^ "-g.aig") in
              let r = Filename.concat dir (case.Circuits.Suite.name ^ "-r.aig") in
              Aig.Aiger.write_file g (case.Circuits.Suite.golden ());
              Aig.Aiger.write_file r (case.Circuits.Suite.revised ());
              (g, r))
            cases
        in
        (match spec with
        | None -> Fault.disable ()
        | Some s -> (
          match Fault.parse s with
          | Ok sp -> Fault.install sp
          | Error e -> failwith ("p5: bad fault spec: " ^ e)));
        let socket_path = Filename.concat dir "cecd.sock" in
        let store_dir = Filename.concat dir "store" in
        let cfg =
          {
            (Service.Server.default_config ~socket_path ~store_dir) with
            Service.Server.log = false;
            Service.Server.workers = 2;
          }
        in
        let server = Domain.spawn (fun () -> Service.Server.run cfg) in
        let client = { Service.Client.default_config with Service.Client.base_delay_ms = 10.0 } in
        let rec wait n =
          if n = 0 then failwith "p5: server did not come up"
          else
            match Service.Server.request ~socket_path "ping" with
            | Ok _ -> ()
            | Error _ ->
              Unix.sleepf 0.02;
              wait (n - 1)
        in
        wait 250;
        let lat = Array.make requests 0.0 in
        let succeeded = ref 0 and uncertified = ref 0 and errors = ref 0 in
        for i = 0 to requests - 1 do
          let g, r = List.nth paths (i mod List.length paths) in
          let line = Printf.sprintf "check %s %s" g r in
          let t0 = Unix.gettimeofday () in
          (match Service.Client.request ~config:client ~socket_path line with
          | Ok response -> (
            match Service.Protocol.field "status" response with
            | Some "equivalent" -> incr succeeded
            | Some "uncertified" -> incr uncertified
            | Some other -> failwith (Printf.sprintf "p5: wrong verdict %S under faults" other)
            | None -> incr errors (* typed error response, e.g. worker_crashed *))
          | Error _ -> incr errors);
          lat.(i) <- 1000.0 *. (Unix.gettimeofday () -. t0)
        done;
        ignore (Service.Client.request ~config:client ~socket_path "shutdown");
        let metrics, _store_stats = Domain.join server in
        Fault.disable ();
        let store = Service.Store.create ~startup_fsck:false ~dir:store_dir () in
        let fsck = Service.Store.fsck store in
        Array.sort compare lat;
        let pct p = lat.(min (requests - 1) (int_of_float (p *. float_of_int requests))) in
        let rate = 100.0 *. float_of_int !succeeded /. float_of_int requests in
        let gauge suffix v = Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p5." ^ slug ^ suffix)) v in
        gauge "_success_rate" rate;
        gauge "_p50_ms" (pct 0.50);
        gauge "_p99_ms" (pct 0.99);
        gauge "_uncertified" (float_of_int !uncertified);
        gauge "_errors" (float_of_int !errors);
        gauge "_retried" (float_of_int metrics.Service.Metrics.retried);
        gauge "_quarantined" (float_of_int fsck.Service.Store.quarantined);
        [
          label;
          Printf.sprintf "%.1f%%" rate;
          string_of_int !uncertified;
          string_of_int !errors;
          Tables.fmt_ms (pct 0.50 /. 1000.0);
          Tables.fmt_ms (pct 0.99 /. 1000.0);
          string_of_int metrics.Service.Metrics.retried;
          string_of_int fsck.Service.Store.orphan_tmp;
          string_of_int fsck.Service.Store.quarantined;
        ])
      specs
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "P5: availability under injected faults (%d requests, 2 workers, retrying client; \
          success = equivalent, wrong verdicts abort)"
         requests)
    ~columns:
      [
        "faults"; "success"; "uncert"; "errors"; "p50"; "p99"; "retried"; "orphan tmp";
        "quarantined";
      ]
    ~rows;
  Out_channel.with_open_text "BENCH_p5.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p5.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

let p6 () =
  (* Per-pair vs single-instance incremental sweeping on the SAT-bound
     rows of the suite (the mul*/add32 cases that dominate BENCH_p3).
     Each case runs the 4-domain partitioned check once per mode under
     a fresh registry; wall time, SAT calls, conflicts, the queries
     settled by root-fact reuse and the learned clauses carried across
     queries land side by side, and per-case gauges (including the
     speedup) go to BENCH_p6.json. *)
  let merged = Obs.Registry.create () in
  let sat_bound =
    List.filter
      (fun case ->
        let n = case.Circuits.Suite.name in
        String.starts_with ~prefix:"mul" n || String.starts_with ~prefix:"add32" n)
      Circuits.Suite.default
  in
  let config mode =
    {
      Parallel.default_config with
      Parallel.num_domains = 4;
      engine = Cec.Sweeping { Sweep.default_config with Sweep.mode };
    }
  in
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let run mode =
          let reg = Obs.Registry.create () in
          let report, t =
            Obs.with_ambient reg (fun () ->
                time (fun () -> Parallel.check ~config:(config mode) golden revised))
          in
          (match report.Parallel.verdict with
          | Cec.Equivalent _ -> ()
          | Cec.Inequivalent _ | Cec.Undecided -> failwith "benchmark case not proved (bug)");
          (reg, t)
        in
        let reg_pp, t_pp = run Sweep.Perpair in
        let reg_incr, t_incr = run Sweep.Incremental in
        let value reg name = try List.assoc name (Obs.Registry.counters reg) with Not_found -> 0 in
        let speedup = t_pp /. t_incr in
        let name = case.Circuits.Suite.name in
        Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p6." ^ name ^ "_perpair_ms")) (1000.0 *. t_pp);
        Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p6." ^ name ^ "_incr_ms")) (1000.0 *. t_incr);
        Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p6." ^ name ^ "_speedup")) speedup;
        Obs.Registry.merge_into ~into:merged reg_incr;
        [
          name;
          Tables.fmt_ms t_pp;
          Tables.fmt_ms t_incr;
          Printf.sprintf "%.1fx" speedup;
          string_of_int (value reg_pp "sweep.sat_calls");
          string_of_int (value reg_incr "sweep.sat_calls");
          string_of_int (value reg_incr "sweep.incremental_reuse");
          string_of_int (value reg_pp "sat.conflicts");
          string_of_int (value reg_incr "sat.conflicts");
          string_of_int (value reg_incr "sat.clauses_carried");
        ])
      sat_bound
  in
  Tables.print
    ~title:
      "P6: per-pair vs incremental sweeping on the SAT-bound rows (4 domains; one persistent \
       solver per partition in incr mode)"
    ~columns:
      [
        "case"; "perpair ms"; "incr ms"; "speedup"; "calls pp"; "calls incr"; "reused";
        "confl pp"; "confl incr"; "carried";
      ]
    ~rows;
  Out_channel.with_open_text "BENCH_p6.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p6.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

(* --- P7: fleet load generator (sharding, zipf skew, failover) --- *)

(* Closed-loop load generation against an in-process fleet: K TCP
   shards behind the router, a pool of distinct pairs whose popularity
   is zipf-skewed (a few hot keys, a long tail — the
   millions-of-users shape), a cold warm-up pass and a measured warm
   phase.  Shard service time is dominated by the [peer.slow] fault
   (50ms stall per accepted connection), which models an I/O-bound
   shard: on any core count the fleet's throughput is then set by how
   well the router spreads connections over shards, which is exactly
   the property under test — warm-hit CPU cost would make the numbers
   core-count-dependent instead.  Wrong verdicts abort the benchmark.
   Results (p50/p99/p999, saturation throughput for 1/2/4 shards, and
   a kill-one-shard failover scenario) go to BENCH_p7.json. *)

let p7_with_temp_dir prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () -> f dir

let p7_zipf_cdf n s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let acc = ref 0.0 in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let p7_sample rng cdf =
  let u = Support.Rng.float rng in
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || cdf.(i) >= u then i else go (i + 1) in
  go 0

(* [num] pairs with distinct structural keys; every fourth pair is
   inequivalent so verdict correctness is actually observable. *)
let p7_pairs dir num =
  List.init num (fun i ->
      let width = 4 + i in
      let golden = Circuits.Datapath.parity width in
      let revised = Circuits.Rewrite.double_negate (Circuits.Datapath.parity width) in
      let expected =
        if i mod 4 = 3 then begin
          Aig.set_output revised 0 (Aig.Lit.neg (Aig.output revised 0));
          "inequivalent"
        end
        else "equivalent"
      in
      let g = Filename.concat dir (Printf.sprintf "p7-g%d.aig" i) in
      let r = Filename.concat dir (Printf.sprintf "p7-r%d.aig" i) in
      Aig.Aiger.write_file g golden;
      Aig.Aiger.write_file r revised;
      (Printf.sprintf "check %s %s" g r, expected))
  |> Array.of_list

let p7_await_addr cell what =
  let rec go n =
    if n = 0 then failwith ("p7: no address from " ^ what)
    else
      match Atomic.get cell with
      | Some addr -> addr
      | None ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 500

let p7_start_shard dir id =
  let cell = Atomic.make None in
  let cfg =
    {
      (Service.Server.default_config ~socket_path:"unused"
         ~store_dir:(Filename.concat dir ("store-" ^ id)))
      with
      Service.Server.listen = [ Service.Addr.Tcp ("127.0.0.1", 0) ];
      log = false;
      on_listen = (fun addrs -> Atomic.set cell (Some (List.hd addrs)));
    }
  in
  let domain = Domain.spawn (fun () -> Service.Server.run cfg) in
  (id, p7_await_addr cell ("shard " ^ id), domain)

let p7_start_router ~shards ~replicas =
  let cell = Atomic.make None in
  let cfg =
    {
      (Fleet.Router.default_config
         ~listen:(Service.Addr.Tcp ("127.0.0.1", 0))
         ~shards:(List.map (fun (id, addr, _) -> { Fleet.Router.id; addr }) shards))
      with
      Fleet.Router.replicas;
      workers = 8;
      probe_interval_ms = 200.;
      connect_timeout_ms = 2000.;
      log = false;
      on_listen = (fun addr -> Atomic.set cell (Some addr));
    }
  in
  let domain = Domain.spawn (fun () -> Fleet.Router.run cfg) in
  (p7_await_addr cell "router", domain)

type p7_outcome = {
  latencies : float array;  (* ms, one per answered request *)
  answered : int;
  no_response : int;
  degraded : int;
  typed_errors : int;
  wrong : int;
}

(* [clients] closed-loop generators share one request counter; each
   draws keys from its own seeded zipf stream. *)
let p7_closed_loop ?config ~router ~pairs ~cdf ~clients ~total () =
  let client_cfg =
    match config with
    | Some c -> c
    | None ->
      {
        Service.Client.default_config with
        Service.Client.retries = 3;
        base_delay_ms = 5.0;
        connect_timeout_ms = Some 2000.;
      }
  in
  let next = Atomic.make 0 in
  let run_client c =
    let rng = Support.Rng.create (7701 + c) in
    let lat = ref [] and answered = ref 0 and no_response = ref 0 in
    let degraded = ref 0 and typed = ref 0 and wrong = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        let line, expected = pairs.(p7_sample rng cdf) in
        let t0 = Unix.gettimeofday () in
        (match Service.Client.request_to ~config:client_cfg [ router ] line with
        | Error _ -> incr no_response
        | Ok response ->
          incr answered;
          lat := (1000.0 *. (Unix.gettimeofday () -. t0)) :: !lat;
          (match Service.Protocol.field "status" response with
          | Some s when s = expected -> ()
          | Some ("uncertified" | "timeout") -> incr degraded
          | Some _ -> incr wrong
          | None -> incr typed (* typed error: worker_crashed, overloaded, ... *)));
        loop ()
      end
    in
    loop ();
    (!lat, !answered, !no_response, !degraded, !typed, !wrong)
  in
  let domains = List.init clients (fun c -> Domain.spawn (fun () -> run_client c)) in
  let parts = List.map Domain.join domains in
  let latencies =
    Array.of_list (List.concat_map (fun (l, _, _, _, _, _) -> l) parts)
  in
  Array.sort compare latencies;
  let sum f = List.fold_left (fun acc part -> acc + f part) 0 parts in
  {
    latencies;
    answered = sum (fun (_, a, _, _, _, _) -> a);
    no_response = sum (fun (_, _, n, _, _, _) -> n);
    degraded = sum (fun (_, _, _, d, _, _) -> d);
    typed_errors = sum (fun (_, _, _, _, t, _) -> t);
    wrong = sum (fun (_, _, _, _, _, w) -> w);
  }

let p7_pct latencies p =
  let n = Array.length latencies in
  if n = 0 then 0.0 else latencies.(min (n - 1) (int_of_float (p *. float_of_int n)))

let p7 () =
  let num_keys = 16 and zipf_s = 1.1 and clients = 8 and warm_requests = 150 in
  let merged = Obs.Registry.create () in
  let gauge name v = Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p7." ^ name)) v in
  let cdf = p7_zipf_cdf num_keys zipf_s in
  (* The I/O-bound-shard model: every shard connection stalls 50ms.
     Deterministic (rate 1.0), and installed only around the fleet
     phases. *)
  (match Fault.parse "peer.slow:1.0@seed=7" with
  | Ok spec -> Fault.install spec
  | Error e -> failwith ("p7: bad fault spec: " ^ e));
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let run_fleet num_shards =
    p7_with_temp_dir "cecd-p7" @@ fun dir ->
    let pairs = p7_pairs dir num_keys in
    let shards =
      List.init num_shards (fun i -> p7_start_shard dir (Printf.sprintf "s%d" i))
    in
    let router, router_domain = p7_start_router ~shards ~replicas:1 in
    (* Cold pass: populate the stores (not measured). *)
    Array.iter
      (fun (line, expected) ->
        match Service.Server.request_addr router line with
        | Ok response when Service.Protocol.field "status" response = Some expected -> ()
        | Ok response -> failwith ("p7: cold pass answered " ^ response)
        | Error msg -> failwith ("p7: cold pass failed: " ^ msg))
      pairs;
    (* Warm phase, measured: closed-loop zipf traffic. *)
    let t0 = Unix.gettimeofday () in
    let o = p7_closed_loop ~router ~pairs ~cdf ~clients ~total:warm_requests () in
    let wall = Unix.gettimeofday () -. t0 in
    ignore (Service.Server.request_addr router "shutdown");
    ignore (Domain.join router_domain);
    List.iter
      (fun (_, addr, domain) ->
        ignore (Service.Server.request_addr addr "shutdown");
        ignore (Domain.join domain))
      shards;
    if o.wrong > 0 then failwith "p7: wrong verdict under zipf load";
    let rps = float_of_int o.answered /. wall in
    let tag name v = gauge (Printf.sprintf "shards%d_%s" num_shards name) v in
    tag "p50_ms" (p7_pct o.latencies 0.50);
    tag "p99_ms" (p7_pct o.latencies 0.99);
    tag "p999_ms" (p7_pct o.latencies 0.999);
    tag "throughput_rps" rps;
    tag "no_response" (float_of_int o.no_response);
    ( Printf.sprintf "%d" num_shards,
      o,
      rps,
      [
        string_of_int num_shards;
        string_of_int o.answered;
        string_of_int (o.no_response + o.typed_errors);
        Tables.fmt_ms (p7_pct o.latencies 0.50 /. 1000.0);
        Tables.fmt_ms (p7_pct o.latencies 0.99 /. 1000.0);
        Tables.fmt_ms (p7_pct o.latencies 0.999 /. 1000.0);
        Printf.sprintf "%.1f" rps;
      ] )
  in
  let scaling = List.map run_fleet [ 1; 2; 4 ] in
  let rps_of n =
    List.find_map (fun (tag, _, rps, _) -> if tag = string_of_int n then Some rps else None) scaling
    |> Option.get
  in
  let speedup = rps_of 4 /. rps_of 1 in
  gauge "speedup_4v1" speedup;

  (* Failover: 3 shards, replicas = 2, worker crashes injected, one
     shard killed mid-run.  Every request must still get a response
     and no verdict may be wrong. *)
  Fault.disable ();
  (match Fault.parse "peer.slow:1.0,worker.crash:0.02@seed=7" with
  | Ok spec -> Fault.install spec
  | Error e -> failwith ("p7: bad fault spec: " ^ e));
  let failover_row =
    p7_with_temp_dir "cecd-p7f" @@ fun dir ->
    let pairs = p7_pairs dir num_keys in
    let shards = List.init 3 (fun i -> p7_start_shard dir (Printf.sprintf "s%d" i)) in
    let router, router_domain = p7_start_router ~shards ~replicas:2 in
    (* Cold pass under worker.crash: retry until every pair has a
       definite stored verdict, so replication can warm all keys. *)
    Array.iter
      (fun (line, expected) ->
        let rec retry n =
          match Service.Server.request_addr router line with
          | Ok r when Service.Protocol.field "status" r = Some expected -> ()
          | _ when n > 0 -> retry (n - 1)
          | _ -> failwith "p7: failover cold pass did not converge"
        in
        retry 10)
      pairs;
    (* Let the background replicator warm the standby replicas before
       the shard loss, so failover hits are warm. *)
    let rec wait_replicated n =
      if n > 0 then begin
        match Service.Server.request_addr router "stats" with
        | Ok line
          when (match Service.Protocol.field "replicated" line with
               | Some v -> (
                 (* The field crosses the wire: a malformed shard reply
                    must read as "not replicated yet", not tear the
                    bench down from inside a guard. *)
                 match int_of_string_opt v with
                 | Some replicated -> replicated >= num_keys
                 | None ->
                   Printf.eprintf "p7: non-numeric replicated field %S in stats reply\n%!" v;
                   false)
               | None -> false) ->
          ()
        | _ ->
          Unix.sleepf 0.1;
          wait_replicated (n - 1)
      end
    in
    wait_replicated 100;
    let total = 120 in
    let victim_id, victim_addr, victim_domain = List.hd shards in
    let t0 = Unix.gettimeofday () in
    let loadgen =
      Domain.spawn (fun () -> p7_closed_loop ~router ~pairs ~cdf ~clients:4 ~total ())
    in
    (* Kill one shard roughly mid-run (the load takes ~2-3s). *)
    Unix.sleepf 1.0;
    ignore (Service.Server.request_addr victim_addr "shutdown");
    ignore (Domain.join victim_domain);
    let o = Domain.join loadgen in
    let wall = Unix.gettimeofday () -. t0 in
    ignore (Service.Server.request_addr router "shutdown");
    let final = Domain.join router_domain in
    List.iter
      (fun (id, addr, domain) ->
        if id <> victim_id then begin
          ignore (Service.Server.request_addr addr "shutdown");
          ignore (Domain.join domain)
        end)
      shards;
    if o.wrong > 0 then failwith "p7: wrong verdict during failover";
    let failovers =
      Obs.Counter.get (Obs.Registry.counter final "fleet.failovers")
    in
    let response_rate =
      100.0 *. float_of_int o.answered /. float_of_int (o.answered + o.no_response)
    in
    gauge "failover_response_rate" response_rate;
    gauge "failover_wrong" (float_of_int o.wrong);
    gauge "failover_typed_errors" (float_of_int o.typed_errors);
    gauge "failover_recorded" (float_of_int failovers);
    gauge "failover_p99_ms" (p7_pct o.latencies 0.99);
    [
      "3, kill 1";
      string_of_int o.answered;
      string_of_int (o.no_response + o.typed_errors);
      Tables.fmt_ms (p7_pct o.latencies 0.50 /. 1000.0);
      Tables.fmt_ms (p7_pct o.latencies 0.99 /. 1000.0);
      Tables.fmt_ms (p7_pct o.latencies 0.999 /. 1000.0);
      Printf.sprintf "%.1f" (float_of_int o.answered /. wall);
    ]
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "P7: fleet load generator (closed loop, %d clients, %d warm requests, zipf s=%.1f over \
          %d keys, 50ms I/O-bound shards; saturation speedup 4v1 = %.2fx; failover: replicas=2, \
          worker.crash 2%%, one shard killed mid-run)"
         clients warm_requests zipf_s num_keys speedup)
    ~columns:[ "shards"; "answered"; "no-resp/typed"; "p50"; "p99"; "p999"; "rps" ]
    ~rows:(List.map (fun (_, _, _, row) -> row) scaling @ [ failover_row ]);
  Out_channel.with_open_text "BENCH_p7.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p7.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

(* --- P10: chaos — live reconfiguration under network faults --- *)

(* A 3-shard fleet (replicas = 2) under closed-loop zipf load and a
   chaos fault spec — every shard connection slow, some dropped
   mid-reply, reset, or black-holed for a window — while one shard is
   drained, removed and re-joined without a restart.  Acceptance:
   every request gets a typed response (no transport errors), no
   verdict is ever wrong, no latency exceeds the client deadline, the
   ring epoch lands exactly where the admin sequence says it must with
   a movement fraction inside the consistent-hash bound, and sampled
   certificates from the surviving stores still pass the search-free
   hinted checker.  Gauges go to BENCH_p10.json. *)

let p10 () =
  let num_keys = 16 and zipf_s = 1.1 and clients = 4 and total = 200 in
  let merged = Obs.Registry.create () in
  let gauge name v = Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p10." ^ name)) v in
  let cdf = p7_zipf_cdf num_keys zipf_s in
  p7_with_temp_dir "cecd-p10" @@ fun dir ->
  let pairs = p7_pairs dir num_keys in
  (* Every load request carries its own 5s end-to-end budget. *)
  let budgeted = Array.map (fun (line, e) -> (line ^ " 5000", e)) pairs in
  let shards = List.init 3 (fun i -> p7_start_shard dir (Printf.sprintf "s%d" i)) in
  let router, router_domain = p7_start_router ~shards ~replicas:2 in
  (* Cold pass, fault-free: populate the stores. *)
  Array.iter
    (fun (line, expected) ->
      match Service.Server.request_addr router line with
      | Ok r when Service.Protocol.field "status" r = Some expected -> ()
      | Ok r -> failwith ("p10: cold pass answered " ^ r)
      | Error msg -> failwith ("p10: cold pass failed: " ^ msg))
    pairs;
  (* Wait for warm replication, so losing a shard costs no data. *)
  let rec wait_replicated n =
    if n = 0 then failwith "p10: replication never warmed the standbys";
    match Service.Server.request_addr router "stats" with
    | Ok line
      when (match Service.Protocol.field "replicated" line with
           | Some v -> (
             match int_of_string_opt v with Some r -> r >= num_keys | None -> false)
           | None -> false) ->
      ()
    | _ ->
      Unix.sleepf 0.1;
      wait_replicated (n - 1)
  in
  wait_replicated 100;
  (match
     Fault.parse "peer.slow:1.0,peer.drop:0.05,peer.reset:0.05,peer.partition:0.02@seed=11"
   with
  | Ok spec -> Fault.install spec
  | Error e -> failwith ("p10: bad fault spec: " ^ e));
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let config =
    {
      Service.Client.default_config with
      Service.Client.retries = 4;
      base_delay_ms = 10.0;
      connect_timeout_ms = Some 2000.;
      deadline_ms = Some 8000.;
    }
  in
  let t0 = Unix.gettimeofday () in
  let loadgen =
    Domain.spawn (fun () -> p7_closed_loop ~config ~router ~pairs:budgeted ~cdf ~clients ~total ())
  in
  (* Mid-run: drain, remove and re-join shard s0 (its daemon stays up
     throughout — only its ring membership changes). *)
  let admin line =
    match Service.Server.request_addr router line with
    | Ok r when Service.Protocol.field "ok" r = Some "true" -> r
    | Ok r -> failwith (Printf.sprintf "p10: %S answered %s" line r)
    | Error msg -> failwith (Printf.sprintf "p10: %S failed: %s" line msg)
  in
  let _, s0_addr, _ = List.hd shards in
  Unix.sleepf 0.8;
  ignore (admin "drain s0");
  Unix.sleepf 0.3;
  let leave = admin "leave s0" in
  Unix.sleepf 0.3;
  let join = admin (Printf.sprintf "join s0 %s" (Service.Addr.to_string s0_addr)) in
  let o = Domain.join loadgen in
  let wall = Unix.gettimeofday () -. t0 in
  (* Chaos off and the last partition window lapsed before the
     shutdown handshakes (a black-holed shard would park them). *)
  Fault.disable ();
  Unix.sleepf 0.6;
  ignore (Service.Server.request_addr router "shutdown");
  let final = Domain.join router_domain in
  List.iter
    (fun (_, addr, domain) ->
      ignore (Service.Server.request_addr addr "shutdown");
      ignore (Domain.join domain))
    shards;
  (* Acceptance. *)
  if o.wrong > 0 then failwith (Printf.sprintf "p10: %d wrong verdicts under chaos" o.wrong);
  if o.no_response > 0 then
    failwith (Printf.sprintf "p10: %d requests got no typed response" o.no_response);
  let worst = if Array.length o.latencies = 0 then 0.0 else o.latencies.(Array.length o.latencies - 1) in
  if worst > 8500.0 then
    failwith (Printf.sprintf "p10: worst latency %.0fms exceeds the 8s client deadline" worst);
  (match Service.Protocol.field "epoch" join with
  | Some "2" -> ()
  | other ->
    failwith
      (Printf.sprintf "p10: epoch %S after leave+join (expected 2)"
         (Option.value ~default:"missing" other)));
  let moved =
    float_of_string (Option.value ~default:"0" (Service.Protocol.field "moved_fraction" join))
  in
  if moved <= 0.0 || moved > 0.67 then
    failwith (Printf.sprintf "p10: re-join moved fraction %.3f outside (0, 2/3]" moved);
  let c name = Obs.Counter.get (Obs.Registry.counter final ("fleet." ^ name)) in
  if c "joins" <> 1 || c "leaves" <> 1 || c "drains" <> 1 then
    failwith
      (Printf.sprintf "p10: admin counters joins=%d leaves=%d drains=%d" (c "joins") (c "leaves")
         (c "drains"));
  (* Sampled certificates from the surviving stores still verify with
     the search-free hinted checker. *)
  let store_dirs = List.map (fun (id, _, _) -> Filename.concat dir ("store-" ^ id)) shards in
  let certs_checked = ref 0 in
  Array.iteri
    (fun i (_, expected) ->
      if expected = "equivalent" && !certs_checked < 3 then begin
        let load p =
          match Service.Server.load_netlist p with
          | Ok g -> Service.Key.normalize g
          | Error e -> failwith ("p10: " ^ e)
        in
        let golden = load (Filename.concat dir (Printf.sprintf "p7-g%d.aig" i)) in
        let revised = load (Filename.concat dir (Printf.sprintf "p7-r%d.aig" i)) in
        let key = Service.Key.of_pair golden revised in
        let found = ref false in
        List.iter
          (fun store_dir ->
            if not !found then
              let store = Service.Store.create ~dir:store_dir () in
              match Service.Store.find store key ~golden ~revised with
              | Some (Cec.Equivalent cert) ->
                found := true;
                let formula = Cnf.Tseitin.miter_formula (Aig.Miter.build golden revised) in
                let bin =
                  Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries cert.Cec.proof
                    ~root:cert.Cec.root
                in
                (match Proof.Hint_check.check ~formula ~jobs:2 bin with
                | Ok _ -> incr certs_checked
                | Error e ->
                  failwith
                    (Format.asprintf "p10: stored certificate rejected: %a"
                       Proof.Hint_check.pp_error e))
              | _ -> ())
          store_dirs;
        if not !found then failwith "p10: certificate not found in any store"
      end)
    pairs;
  let response_rate =
    100.0 *. float_of_int o.answered /. float_of_int (max 1 (o.answered + o.no_response))
  in
  gauge "response_rate" response_rate;
  gauge "no_response" (float_of_int o.no_response);
  gauge "wrong" (float_of_int o.wrong);
  gauge "typed_errors" (float_of_int o.typed_errors);
  gauge "degraded" (float_of_int o.degraded);
  gauge "p50_ms" (p7_pct o.latencies 0.50);
  gauge "p99_ms" (p7_pct o.latencies 0.99);
  gauge "worst_ms" worst;
  gauge "throughput_rps" (float_of_int o.answered /. wall);
  gauge "epoch" 2.0;
  gauge "moved_fraction_rejoin" moved;
  gauge "leave_drained"
    (if Service.Protocol.field "drained" leave = Some "true" then 1.0 else 0.0);
  gauge "joins" (float_of_int (c "joins"));
  gauge "leaves" (float_of_int (c "leaves"));
  gauge "drains" (float_of_int (c "drains"));
  gauge "coalesced" (float_of_int (c "coalesced"));
  gauge "deadline_exceeded" (float_of_int (c "deadline_exceeded"));
  gauge "stalled_forwards" (float_of_int (c "stalled_forwards"));
  gauge "failovers" (float_of_int (c "failovers"));
  gauge "certs_checked" (float_of_int !certs_checked);
  Tables.print
    ~title:
      (Printf.sprintf
         "P10: chaos fleet (3 shards, replicas=2, %d clients, %d requests, zipf s=%.1f over %d \
          keys; drop 5%%, reset 5%%, partition 2%%, 50ms slow; drain+leave+rejoin s0 mid-run)"
         clients total zipf_s num_keys)
    ~columns:[ "answered"; "no-resp"; "typed"; "wrong"; "p50"; "p99"; "worst"; "epoch"; "certs" ]
    ~rows:
      [
        [
          string_of_int o.answered;
          string_of_int o.no_response;
          string_of_int o.typed_errors;
          string_of_int o.wrong;
          Tables.fmt_ms (p7_pct o.latencies 0.50 /. 1000.0);
          Tables.fmt_ms (p7_pct o.latencies 0.99 /. 1000.0);
          Tables.fmt_ms (worst /. 1000.0);
          "2";
          string_of_int !certs_checked;
        ];
      ];
  Out_channel.with_open_text "BENCH_p10.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p10.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

(* --- P8: hinted certificate checking vs solving --- *)

let p8 () =
  (* Check-vs-solve over the p1 workload: for every suite case, solve
     once (4-domain partitioned check) with the wall time recorded,
     export the refutation as a hinted CECB v3 certificate carrying
     the prover's partition boundaries, and re-validate it three ways:
     the searching streaming checker, the search-free hinted checker,
     and the hinted checker over 4 domains.  Acceptance: on every row
     the hinted check is faster than the solve, the hinted checker
     performs zero search (hints_followed = steps), and the hinted
     peak live set never exceeds the streaming peak.  Gauges go to
     BENCH_p8.json. *)
  let merged = Obs.Registry.create () in
  let config = { Parallel.default_config with Parallel.num_domains = 4 } in
  let violations = ref [] in
  let rows =
    List.map
      (fun case ->
        let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
        let reg = Obs.Registry.create () in
        Obs.with_ambient reg (fun () ->
            let report, t_solve = time (fun () -> Parallel.check ~config golden revised) in
            let cert =
              match report.Parallel.verdict with
              | Cec.Equivalent cert -> cert
              | Cec.Inequivalent _ | Cec.Undecided -> failwith "benchmark case not proved (bug)"
            in
            let formula = cert.Cec.formula in
            let bin, _t_enc =
              time (fun () ->
                  Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries cert.Cec.proof
                    ~root:cert.Cec.root)
            in
            let stream_st, t_stream =
              time (fun () ->
                  match Proof.Stream_check.check ~formula bin with
                  | Ok st -> st
                  | Error e ->
                    failwith
                      (Format.asprintf "stream check failed: %a" Proof.Stream_check.pp_error e))
            in
            let hint ~jobs =
              time (fun () ->
                  match Proof.Hint_check.check ~formula ~jobs bin with
                  | Ok st -> st
                  | Error e ->
                    failwith
                      (Format.asprintf "hinted check failed (jobs=%d): %a" jobs
                         Proof.Hint_check.pp_error e))
            in
            let h1, t_hint1 = hint ~jobs:1 in
            let h4, t_hint4 = hint ~jobs:4 in
            if h1.Proof.Hint_check.hints_followed <> h1.Proof.Hint_check.steps then
              failwith "hinted checker fell back to search (bug)";
            if h1.Proof.Hint_check.peak_live > stream_st.Proof.Stream_check.peak_live then
              failwith "hinted peak live exceeds the streaming peak (bug)";
            if h1 <> h4 then failwith "check stats depend on jobs (bug)";
            let t_hint = Float.min t_hint1 t_hint4 in
            if t_hint >= t_solve then
              violations := case.Circuits.Suite.name :: !violations;
            let speedup = t_solve /. Float.max t_hint1 1e-9 in
            let gauge suffix v =
              Obs.Gauge.set
                (Obs.Registry.gauge merged ("bench.p8." ^ case.Circuits.Suite.name ^ suffix))
                v
            in
            gauge "_solve_ms" (1000.0 *. t_solve);
            gauge "_stream_check_ms" (1000.0 *. t_stream);
            gauge "_hint_check_ms" (1000.0 *. t_hint1);
            gauge "_hint_check_j4_ms" (1000.0 *. t_hint4);
            gauge "_check_speedup" speedup;
            gauge "_bin_bytes" (float_of_int (String.length bin));
            gauge "_shards" (float_of_int h1.Proof.Hint_check.shards);
            gauge "_steps" (float_of_int h1.Proof.Hint_check.steps);
            gauge "_peak_live" (float_of_int h1.Proof.Hint_check.peak_live);
            Obs.Registry.merge_into ~into:merged reg;
            [
              case.Circuits.Suite.name;
              Tables.fmt_ms t_solve;
              Tables.fmt_ms t_stream;
              Tables.fmt_ms t_hint1;
              Tables.fmt_ms t_hint4;
              string_of_int h1.Proof.Hint_check.shards;
              string_of_int h1.Proof.Hint_check.steps;
              string_of_int h1.Proof.Hint_check.peak_live;
              Printf.sprintf "%.0fx" speedup;
            ]))
      Circuits.Suite.default
  in
  Tables.print
    ~title:
      "P8: hinted certificate checking vs solving (CECB v3, prover boundaries, 4 domains)"
    ~columns:
      [
        "case"; "solve"; "stream chk"; "hint chk"; "hint j4"; "shards"; "steps"; "peak live";
        "speedup";
      ]
    ~rows;
  (* Acceptance: re-checking a hinted certificate must be cheaper than
     re-solving on every row of the workload. *)
  (match !violations with
  | [] -> Printf.printf "check < solve on all %d rows\n" (List.length rows)
  | cases -> failwith ("hinted check slower than solve on: " ^ String.concat ", " cases));
  Out_channel.with_open_text "BENCH_p8.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p8.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

let p9 () =
  (* Sweeping-engine portfolio shootout: the same miter checked by the
     pure-SAT closer, the BDD-first portfolio and the feature-routed
     hybrid, in the low-simulation regime (words = 1) where candidate
     classes are coarse and false candidates abound — exactly the work
     the pre-SAT probes absorb.  Every engine must return the same
     verdict; every hybrid certificate must pass the hinted checker
     (resolution-only certificates are portfolio-invariant).
     Acceptance: hybrid beats pure SAT by >= 1.5x on every narrow-cone
     datapath row.  Times are best-of-3; gauges and the hybrid run's
     engine.* counters go to BENCH_p9.json. *)
  let restructured ?(seed = 7) ?(intensity = 0.5) g =
    Circuits.Rewrite.restructure ~intensity (Support.Rng.create seed) g
  in
  let row name ~narrow golden revised = (name, narrow, golden, revised) in
  let workload =
    [
      (* The acceptance rows (narrow): comparator reductions, whose
         AND-reduction nodes look constant under any realistic random
         pattern budget — the false candidates random simulation
         cannot kill and pure SAT sweeping must refute one
         countermodel query at a time.  The probes refute them with no
         SAT call at all, which is where the portfolio's speedup
         lives. *)
      row "eq64-tree-lin" ~narrow:true
        (fun () -> Circuits.Datapath.equality ~tree:true 64)
        (fun () -> Circuits.Datapath.equality ~tree:false 64);
      row "eq96-tree-lin" ~narrow:true
        (fun () -> Circuits.Datapath.equality ~tree:true 96)
        (fun () -> Circuits.Datapath.equality ~tree:false 96);
      row "eq128-tree-lin" ~narrow:true
        (fun () -> Circuits.Datapath.equality ~tree:true 128)
        (fun () -> Circuits.Datapath.equality ~tree:false 128);
      (* Context rows: dense-candidate datapaths where random
         simulation already separates everything (the probes can only
         add overhead — these bound the portfolio tax), one seeded
         inequivalence, and two arithmetic shapes exercising the
         BDD-first and SAT-first routes. *)
      row "eq48-tree-lin" ~narrow:false
        (fun () -> Circuits.Datapath.equality ~tree:true 48)
        (fun () -> Circuits.Datapath.equality ~tree:false 48);
      row "lt16-rewr" ~narrow:false
        (fun () -> Circuits.Datapath.less_than 16)
        (fun () -> restructured ~intensity:0.8 (Circuits.Datapath.less_than 16));
      row "par16-tree-lin" ~narrow:false
        (fun () -> Circuits.Datapath.parity ~tree:true 16)
        (fun () -> Circuits.Datapath.parity ~tree:false 16);
      row "mux5-rewr" ~narrow:false
        (fun () -> Circuits.Datapath.mux_tree 5)
        (fun () -> restructured (Circuits.Datapath.mux_tree 5));
      row "alu8-rewr" ~narrow:false
        (fun () -> Circuits.Datapath.alu 8)
        (fun () -> restructured (Circuits.Datapath.alu 8));
      row "maj3x8-rewr" ~narrow:false
        (fun () -> Circuits.Misc_logic.majority3 8)
        (fun () -> restructured (Circuits.Misc_logic.majority3 8));
      row "lt12-neq" ~narrow:false
        (fun () -> Circuits.Datapath.less_than 12)
        (fun () ->
          (* Seeded inequivalence: the counterexample path must agree
             across engines too. *)
          let g = restructured (Circuits.Datapath.less_than 12) in
          Aig.set_output g 0 (Aig.Lit.neg (Aig.output g 0));
          g);
      row "add16-rc-cla" ~narrow:false
        (fun () -> Circuits.Adder.ripple_carry 16)
        (fun () -> Circuits.Adder.carry_lookahead 16);
      row "mul4-arr-sa" ~narrow:false
        (fun () -> Circuits.Multiplier.array 4)
        (fun () -> Circuits.Multiplier.shift_add 4);
    ]
  in
  let engines =
    [ ("sat", Sweep.Sat_only); ("bdd", Sweep.Bdd_first); ("hybrid", Sweep.Hybrid) ]
  in
  let merged = Obs.Registry.create () in
  let wins = Hashtbl.create 4 in
  let win name = Hashtbl.replace wins name (1 + Option.value ~default:0 (Hashtbl.find_opt wins name)) in
  let violations = ref [] in
  let rows =
    List.map
      (fun (name, narrow, golden, revised) ->
        let miter = Aig.Miter.build (golden ()) (revised ()) in
        let results =
          List.map
            (fun (ename, portfolio) ->
              let cfg = { Sweep.default_config with Sweep.words = 1; portfolio } in
              let reg = Obs.Registry.create () in
              let best = ref infinity and last = ref None in
              Obs.with_ambient reg (fun () ->
                  for _rep = 1 to 3 do
                    let report, t = time (fun () -> Cec.check_miter (Cec.Sweeping cfg) miter) in
                    best := Float.min !best t;
                    last := Some report
                  done);
              (* Only the hybrid run's engine.* counters land in the
                 export — one portfolio per counter set keeps the
                 selector histograms attributable. *)
              if ename = "hybrid" then Obs.Registry.merge_into ~into:merged reg;
              (ename, Option.get !last, !best))
            engines
        in
        let verdict_tag r =
          match r.Cec.verdict with
          | Cec.Equivalent _ -> "eq"
          | Cec.Inequivalent _ -> "neq"
          | Cec.Undecided -> "undecided"
        in
        (match results with
        | (_, r0, _) :: rest ->
          List.iter
            (fun (ename, r, _) ->
              if verdict_tag r <> verdict_tag r0 then
                failwith
                  (Printf.sprintf "p9 %s: engine %s disagrees (%s vs %s)" name ename
                     (verdict_tag r) (verdict_tag r0)))
            rest
        | [] -> ());
        let report_of e = List.assoc e (List.map (fun (n, r, _) -> (n, r)) results) in
        let t_of e = List.assoc e (List.map (fun (n, _, t) -> (n, t)) results) in
        (match (report_of "hybrid").Cec.verdict with
        | Cec.Equivalent cert ->
          let bin =
            Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries cert.Cec.proof
              ~root:cert.Cec.root
          in
          (match Proof.Hint_check.check ~formula:cert.Cec.formula ~jobs:2 bin with
          | Ok _ -> ()
          | Error e ->
            failwith
              (Format.asprintf "p9 %s: hybrid certificate rejected: %a" name
                 Proof.Hint_check.pp_error e))
        | Cec.Inequivalent _ | Cec.Undecided -> ());
        let t_sat = t_of "sat" and t_bdd = t_of "bdd" and t_hybrid = t_of "hybrid" in
        let winner, _ =
          List.fold_left
            (fun (bn, bt) (n, _, t) -> if t < bt then (n, t) else (bn, bt))
            ("sat", t_sat) results
        in
        win winner;
        let speedup = t_sat /. Float.max t_hybrid 1e-9 in
        if narrow && speedup < 1.5 then violations := name :: !violations;
        let gauge suffix v =
          Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p9." ^ name ^ suffix)) v
        in
        gauge "_sat_ms" (1000.0 *. t_sat);
        gauge "_bdd_ms" (1000.0 *. t_bdd);
        gauge "_hybrid_ms" (1000.0 *. t_hybrid);
        gauge "_hybrid_speedup" speedup;
        [
          name;
          (if narrow then "narrow" else "-");
          verdict_tag (report_of "hybrid");
          Tables.fmt_ms t_sat;
          Tables.fmt_ms t_bdd;
          Tables.fmt_ms t_hybrid;
          winner;
          Printf.sprintf "%.1fx" speedup;
        ])
      workload
  in
  Tables.print
    ~title:"P9: engine portfolio win rates and wall time (words=1, best of 3)"
    ~columns:[ "case"; "cones"; "verdict"; "sat"; "bdd"; "hybrid"; "winner"; "speedup" ]
    ~rows;
  List.iter
    (fun (ename, _) ->
      let w = Option.value ~default:0 (Hashtbl.find_opt wins ename) in
      Obs.Gauge.set (Obs.Registry.gauge merged ("bench.p9.wins_" ^ ename)) (float_of_int w);
      Printf.printf "%s wins %d/%d rows\n" ename w (List.length rows))
    engines;
  (match !violations with
  | [] -> Printf.printf "hybrid >= 1.5x over pure SAT on all narrow-cone datapath rows\n"
  | cases -> failwith ("hybrid < 1.5x over pure SAT on: " ^ String.concat ", " cases));
  Out_channel.with_open_text "BENCH_p9.json" (fun oc ->
      output_string oc (Obs.Export.stats_json merged));
  Printf.printf "wrote BENCH_p9.json (%d gauges)\n" (List.length (Obs.Registry.gauges merged))

(* --- Bechamel micro-benchmarks: one Test.make per experiment --- *)


let bechamel_tests () =
  let open Bechamel in
  let quick_case = List.hd Circuits.Suite.small in
  let small_miter = Circuits.Suite.miter_of quick_case in
  let small_cert =
    lazy
      (match (Cec.check_miter sweeping_engine small_miter).Cec.verdict with
      | Cec.Equivalent cert -> cert
      | Cec.Inequivalent _ | Cec.Undecided -> failwith "bechamel setup failed")
  in
  [
    Test.make ~name:"t1-suite-build"
      (Staged.stage (fun () -> ignore (Circuits.Suite.miter_of quick_case)));
    Test.make ~name:"t2-cec-sweeping"
      (Staged.stage (fun () -> ignore (Cec.check_miter sweeping_engine small_miter)));
    Test.make ~name:"t3-cec-monolithic"
      (Staged.stage (fun () -> ignore (Cec.check_miter Cec.Monolithic small_miter)));
    Test.make ~name:"t4-proof-trim"
      (Staged.stage (fun () ->
           let cert = Lazy.force small_cert in
           ignore (Proof.Trim.cone cert.Cec.proof ~root:cert.Cec.root)));
    Test.make ~name:"f1-adder-miter"
      (Staged.stage (fun () ->
           ignore
             (Aig.Miter.build (Circuits.Adder.ripple_carry 8) (Circuits.Adder.carry_lookahead 8))));
    Test.make ~name:"f2-proof-check"
      (Staged.stage (fun () ->
           let cert = Lazy.force small_cert in
           ignore
             (Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:cert.Cec.formula ())));
    Test.make ~name:"f3-simclass"
      (Staged.stage (fun () -> ignore (Simclass.create small_miter ~words:8 ~seed:1)));
    Test.make ~name:"f4-sweep-no-lemmas"
      (Staged.stage (fun () ->
           ignore (Sweep.run small_miter { Sweep.default_config with Sweep.lemma_reuse = false })));
    Test.make ~name:"t5-fraig"
      (Staged.stage (fun () ->
           ignore (Sweep.fraig (Circuits.Adder.carry_lookahead 4) Sweep.default_config)));
    Test.make ~name:"f5-proof-sharing"
      (Staged.stage (fun () ->
           let cert = Lazy.force small_cert in
           ignore (Proof.Compress.share cert.Cec.proof ~root:cert.Cec.root)));
    Test.make ~name:"t6-bdd-equiv"
      (Staged.stage (fun () ->
           ignore
             (Bdd.Equiv.check (Circuits.Adder.ripple_carry 8) (Circuits.Prefix_adder.kogge_stone 8))));
    Test.make ~name:"f7-incremental-sweep"
      (Staged.stage (fun () ->
           ignore
             (Cec.check_miter
                (Cec.Sweeping { Sweep.default_config with Sweep.mode = Sweep.Incremental })
                small_miter)));
    Test.make ~name:"f8-bounded-unroll"
      (Staged.stage (fun () ->
           ignore (Aig.Seq.unroll (Circuits.Counters.binary_counter 8) ~frames:8)));
    Test.make ~name:"f6-bdd-build"
      (Staged.stage (fun () ->
           let t = Bdd.Manager.create ~num_vars:12 () in
           ignore (Bdd.Manager.of_aig t (Circuits.Multiplier.array 6))));
  ]

let run_bechamel () =
  let open Bechamel in
  print_endline "== Bechamel micro-benchmarks (one per experiment) ==";
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg [ clock ] (Test.make_grouped ~name:"experiments" [ test ])
  in
  let analyze raw =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-24s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n" name)
        results)
    (bechamel_tests ());
  print_newline ();
  flush stdout

(* --- driver --- *)

let experiments =
  [
    ("t1", t1); ("t2", t2); ("t2h", t2h); ("t3", t3); ("t4", t4); ("t5", t5);
    ("t6", t6); ("t7", t7); ("f1", f1); ("f2", f2); ("f3", f3); ("f4", f4); ("f5", f5); ("f6", f6); ("f7", f7); ("f8", f8);
    ("p1", p1);
    ("p2", p2);
    ("p3", p3);
    ("p4", p4);
    ("p5", p5);
    ("p6", p6);
    ("p7", p7);
    ("p8", p8);
    ("p9", p9);
    ("p10", p10);
  ]

let () =
  Obs.Clock.set Unix.gettimeofday;
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then List.map fst experiments @ [ "bechamel" ] else args in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let (), t = time f in
        Printf.printf "(%s completed in %s ms)\n\n" name (Tables.fmt_ms t);
        flush stdout
      | None ->
        if name = "bechamel" then run_bechamel ()
        else begin
          Printf.eprintf "unknown experiment %S (t1-t7/t2h, f1-f8, p1-p10, bechamel)\n" name;
          exit 2
        end)
    selected
