(* Bounded sequential equivalence: two Gray-code counters with
   completely different registers (binary state vs Gray state) are
   unrolled from reset and proved to produce identical outputs for k
   steps — with a resolution certificate for the unrolled miter.

   Run with: dune exec examples/bounded_counters.exe *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep

let () =
  let width = 5 in
  let a = Circuits.Counters.gray_output_binary_counter width in
  let b = Circuits.Counters.gray_state_counter width in
  Format.printf "A: binary register, Gray-encoded outputs (%d latches)@." (Aig.Seq.num_latches a);
  Format.printf "B: Gray register, conversion in the next-state logic (%d latches)@.@."
    (Aig.Seq.num_latches b);
  List.iter
    (fun frames ->
      let engine = Cec.Sweeping { Sweep.default_config with Sweep.mode = Sweep.Incremental } in
      match (Cec.check_bounded ~frames engine a b).Cec.verdict with
      | Cec.Equivalent cert ->
        let stats = Proof.Pstats.of_root cert.Cec.proof ~root:cert.Cec.root in
        let validated =
          match Cec_core.Certify.validate cert with
          | Ok chains -> Printf.sprintf "certified (%d chains)" chains
          | Error _ -> "REJECTED"
        in
        Format.printf "frames=%2d: equivalent, proof %d resolutions, %s@." frames
          stats.Proof.Pstats.resolutions validated
      | Cec.Inequivalent trace ->
        Format.printf "frames=%2d: INEQUIVALENT (trace length %d)@." frames (Array.length trace)
      | Cec.Undecided -> Format.printf "frames=%2d: undecided@." frames)
    [ 1; 2; 4; 8; 16 ];

  (* And a corrupted revision: the divergence frame is found. *)
  Format.printf "@.corrupting B's feedback...@.";
  let bad =
    let g = Aig.create ~num_inputs:(1 + width) in
    let inputs = Array.init (1 + width) (Aig.input g) in
    let outs = Aig.append g (Aig.Seq.transition b) ~inputs in
    (* flip next-state bit 0 *)
    outs.(width) <- Aig.Lit.neg outs.(width);
    Array.iter (Aig.add_output g) outs;
    Aig.Seq.create g ~num_pis:1 ~num_latches:width
  in
  let rec first_divergence frames =
    if frames > 8 then Format.printf "no divergence within 8 frames?!@."
    else
      match (Cec.check_bounded ~frames Cec.Monolithic a bad).Cec.verdict with
      | Cec.Equivalent _ -> first_divergence (frames + 1)
      | Cec.Inequivalent _ -> Format.printf "first divergence at frame %d@." frames
      | Cec.Undecided -> Format.printf "undecided@."
  in
  first_divergence 1
