(* Tests for cut enumeration and the synth library: ISOP exactness and
   irredundancy, SOP materialization, and cut sweeping. *)

module Cut = Aig.Cut
module Isop = Synth.Isop
module Rng = Support.Rng

let qtest name ?(count = 60) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.nat

(* --- cuts --- *)

let test_cut_trivial_and_shapes () =
  let g = Aig.create ~num_inputs:3 in
  let a = Aig.input g 0 and b = Aig.input g 1 and c = Aig.input g 2 in
  let ab = Aig.and_ g a b in
  let abc = Aig.and_ g ab c in
  Aig.add_output g abc;
  let cuts = Cut.enumerate g ~k:4 ~max_cuts:8 in
  let n = Aig.Lit.var abc in
  (* Must contain the trivial cut and the {a,b,c} cut. *)
  Alcotest.(check bool) "trivial present" true
    (List.exists (fun c -> c.Cut.leaves = [| n |]) cuts.(n));
  let expected_leaves = [| Aig.Lit.var a; Aig.Lit.var b; Aig.Lit.var c |] in
  let input_cut = List.find_opt (fun cut -> cut.Cut.leaves = expected_leaves) cuts.(n) in
  match input_cut with
  | None -> Alcotest.fail "input cut missing"
  | Some c ->
    (* AND of three variables: truth has exactly one 1 at index 7. *)
    Alcotest.(check int64) "and3 truth" 0x80L c.Cut.truth

let prop_cut_truths_match_simulation =
  (* Every enumerated cut's truth agrees with evaluating the node as a
     function of the cut leaves. *)
  qtest "cut truths agree with evaluation" ~count:30 seed_arb (fun seed ->
      let g =
        Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:4 ~num_ands:20 ~num_outputs:1
      in
      let cuts = Cut.enumerate g ~k:4 ~max_cuts:6 in
      let value = Array.make (Aig.num_nodes g) false in
      let ok = ref true in
      for mask = 0 to 15 do
        (* simulate the whole graph once per input assignment *)
        for i = 0 to 3 do
          value.(Aig.Lit.var (Aig.input g i)) <- (mask lsr i) land 1 = 1
        done;
        let lit_value l = value.(Aig.Lit.var l) <> Aig.Lit.is_neg l in
        Aig.iter_ands g (fun n ->
            value.(n) <- lit_value (Aig.fanin0 g n) && lit_value (Aig.fanin1 g n));
        Aig.iter_ands g (fun n ->
            List.iter
              (fun cut ->
                let leaf_values = Array.map (fun leaf -> value.(leaf)) cut.Cut.leaves in
                if Cut.eval_truth cut leaf_values <> value.(n) then ok := false)
              cuts.(n))
      done;
      !ok)

let test_cut_leaf_bound () =
  let g = Circuits.Adder.ripple_carry 6 in
  let cuts = Cut.enumerate g ~k:3 ~max_cuts:5 in
  Array.iter
    (List.iter (fun c ->
         if Cut.size c > 3 then Alcotest.fail "cut exceeds k";
         let sorted = Array.copy c.Cut.leaves in
         Array.sort compare sorted;
         if sorted <> c.Cut.leaves then Alcotest.fail "leaves not sorted"))
    cuts;
  Array.iteri
    (fun n cs -> if n > 0 && List.length cs > 5 then Alcotest.fail "max_cuts exceeded")
    cuts

(* --- isop --- *)

let prop_isop_exact =
  qtest "isop covers exactly" ~count:300
    (QCheck.make ~print:Int64.to_string (QCheck.Gen.map Int64.of_int QCheck.Gen.int))
    (fun raw ->
      let vars = 4 in
      let truth = Int64.logand raw (Isop.full_mask vars) in
      let cubes = Isop.compute ~vars truth in
      Isop.cover vars cubes = truth)

let prop_isop_irredundant =
  qtest "isop is irredundant" ~count:150
    (QCheck.make ~print:Int64.to_string (QCheck.Gen.map Int64.of_int QCheck.Gen.int))
    (fun raw ->
      let vars = 4 in
      let truth = Int64.logand raw (Isop.full_mask vars) in
      let cubes = Isop.compute ~vars truth in
      (* dropping any single cube must lose coverage *)
      List.for_all
        (fun dropped ->
          let rest = List.filter (fun c -> c <> dropped) cubes in
          Isop.cover vars rest <> truth)
        cubes)

let test_isop_corner_cases () =
  Alcotest.(check int) "constant 0" 0 (List.length (Isop.compute ~vars:3 0L));
  (match Isop.compute ~vars:3 (Isop.full_mask 3) with
  | [ c ] -> Alcotest.(check int) "tautology cube is empty" 0 (Isop.cube_size c)
  | _ -> Alcotest.fail "tautology should be a single empty cube");
  (* single variable *)
  match Isop.compute ~vars:3 0xAAL with
  | [ c ] ->
    Alcotest.(check int) "x0 pos" 1 c.Isop.pos;
    Alcotest.(check int) "x0 neg" 0 c.Isop.neg
  | _ -> Alcotest.fail "x0 should be one cube"

let test_isop_six_vars () =
  (* Round-trip a handful of 6-variable functions. *)
  let rng = Rng.create 12 in
  for _ = 1 to 50 do
    let truth = Rng.int64 rng in
    let cubes = Isop.compute ~vars:6 truth in
    if Isop.cover 6 cubes <> truth then Alcotest.fail "6-var isop not exact"
  done

(* --- resynth --- *)

let prop_resynth_matches_truth =
  qtest "of_truth materializes the function" ~count:200
    (QCheck.make ~print:Int64.to_string (QCheck.Gen.map Int64.of_int QCheck.Gen.int))
    (fun raw ->
      let vars = 4 in
      let truth = Int64.logand raw (Isop.full_mask vars) in
      let g = Aig.create ~num_inputs:vars in
      let leaves = Array.init vars (Aig.input g) in
      let lit = Synth.Resynth.of_truth g leaves truth in
      let ok = ref true in
      for mask = 0 to 15 do
        let assignment = Array.init vars (fun i -> (mask lsr i) land 1 = 1) in
        let expected = Int64.logand (Int64.shift_right_logical truth mask) 1L = 1L in
        if Aig.eval_lit g assignment lit <> expected then ok := false
      done;
      !ok)

(* Full round trip at every width the portfolio selector feeds ISOP:
   materialize both the direct cover and the complemented cover and
   check both against the truth table bit-for-bit — the cheaper-form
   choice inside [of_truth] must never change the function. *)
let prop_resynth_round_trip_all_widths =
  qtest "isop/of_truth round-trips at every width" ~count:200
    (QCheck.make
       ~print:(fun (v, t) -> Printf.sprintf "vars=%d truth=%Ld" v t)
       QCheck.Gen.(pair (int_range 1 6) (map Int64.of_int int)))
    (fun (vars, raw) ->
      let truth = Int64.logand raw (Isop.full_mask vars) in
      let ntruth = Int64.logand (Int64.lognot truth) (Isop.full_mask vars) in
      let g = Aig.create ~num_inputs:vars in
      let leaves = Array.init vars (Aig.input g) in
      let chosen = Synth.Resynth.of_truth g leaves truth in
      let direct = Synth.Resynth.sop_to_aig g leaves (Isop.compute ~vars truth) in
      let complemented = Aig.Lit.neg (Synth.Resynth.sop_to_aig g leaves (Isop.compute ~vars ntruth)) in
      let table lit =
        Int64.logand (Aig.Sim.truth_table g lit).(0) (Isop.full_mask vars)
      in
      table chosen = truth && table direct = truth && table complemented = truth)

(* --- cut sweeping --- *)

let same_function a b =
  let n = Aig.num_inputs a in
  assert (n <= 12);
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment = Array.init n (fun i -> (mask lsr i) land 1 = 1) in
    if Aig.eval a assignment <> Aig.eval b assignment then ok := false
  done;
  !ok

let prop_cutsweep_preserves =
  qtest "cutsweep preserves functions" ~count:40 seed_arb (fun seed ->
      let g =
        Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:5 ~num_ands:40 ~num_outputs:3
      in
      let reduced = Synth.Cutsweep.reduce g in
      same_function g reduced && Aig.num_ands reduced <= Aig.num_ands g)

let test_cutsweep_reduces_inflated () =
  let base = Circuits.Adder.ripple_carry 5 in
  let inflated = Circuits.Rewrite.restructure ~intensity:1.0 (Rng.create 9) base in
  let reduced = Synth.Cutsweep.reduce inflated in
  Alcotest.(check bool) "reduces" true (Aig.num_ands reduced < Aig.num_ands inflated);
  Alcotest.(check bool) "still correct" true (same_function inflated reduced)

let test_cutsweep_vs_fraig () =
  (* Fraig (SAT-backed) is at least as strong as cut sweeping. *)
  let base = Circuits.Datapath.alu 3 in
  let inflated = Circuits.Rewrite.restructure ~intensity:1.0 (Rng.create 31) base in
  let swept = Synth.Cutsweep.reduce inflated in
  let fraiged, _ = Cec_core.Sweep.fraig inflated Cec_core.Sweep.default_config in
  Alcotest.(check bool) "fraig at least as strong" true
    (Aig.num_ands (Aig.cleanup fraiged) <= Aig.num_ands swept)

let base_suites =
  [
    ( "synth",
      [
        Alcotest.test_case "cut shapes" `Quick test_cut_trivial_and_shapes;
        prop_cut_truths_match_simulation;
        Alcotest.test_case "cut bounds" `Quick test_cut_leaf_bound;
        prop_isop_exact;
        prop_isop_irredundant;
        Alcotest.test_case "isop corner cases" `Quick test_isop_corner_cases;
        Alcotest.test_case "isop six vars" `Quick test_isop_six_vars;
        prop_resynth_matches_truth;
        prop_cutsweep_preserves;
        Alcotest.test_case "cutsweep reduces inflated" `Quick test_cutsweep_reduces_inflated;
        Alcotest.test_case "cutsweep vs fraig" `Quick test_cutsweep_vs_fraig;
      ] );
  ]

let prop_cutsweep_npn_preserves =
  qtest "npn cutsweep preserves functions" ~count:40 seed_arb (fun seed ->
      let g =
        Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:5 ~num_ands:40 ~num_outputs:3
      in
      let reduced = Synth.Cutsweep.reduce ~npn:true g in
      same_function g reduced && Aig.num_ands reduced <= Aig.num_ands g)

let test_cutsweep_npn_stronger () =
  (* Aggregated over seeds: NPN matching merges at least as much, and
     strictly more somewhere. *)
  let total_plain = ref 0 and total_npn = ref 0 in
  for seed = 0 to 19 do
    let base =
      Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:6 ~num_ands:60 ~num_outputs:4
    in
    let inflated = Circuits.Rewrite.restructure ~intensity:1.0 (Rng.create (seed + 50)) base in
    total_plain := !total_plain + Aig.num_ands (Synth.Cutsweep.reduce inflated);
    total_npn := !total_npn + Aig.num_ands (Synth.Cutsweep.reduce ~npn:true inflated)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "npn (%d) <= plain (%d)" !total_npn !total_plain)
    true (!total_npn <= !total_plain)

let npn_suites =
  [
    ( "synth-npn",
      [
        prop_cutsweep_npn_preserves;
        Alcotest.test_case "npn matching is stronger" `Quick test_cutsweep_npn_stronger;
      ] );
  ]

let suites = base_suites @ npn_suites
