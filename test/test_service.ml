(* The certification service: content-addressed keys, the persistent
   certificate store (round-trips, corruption, version skew, eviction),
   the deadline/escalation engine, the wire protocol, batch mode, and a
   full in-process daemon life cycle over a real Unix socket. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Certify = Cec_core.Certify
module Key = Service.Key
module Protocol = Service.Protocol
module Metrics = Service.Metrics
module Store = Service.Store
module Engine = Service.Engine
module Server = Service.Server
module Batch = Service.Batch

let sweeping = Cec.Sweeping Sweep.default_config

(* --- scratch directories --- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let with_temp_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* --- solved pairs to exercise the store with --- *)

(* A normalized equivalent pair plus its real certificate, as the
   service would produce it. *)
let equivalent_pair () =
  let case = List.hd Circuits.Suite.small in
  let golden = Key.normalize (case.Circuits.Suite.golden ()) in
  let revised = Key.normalize (case.Circuits.Suite.revised ()) in
  match (Cec.check sweeping golden revised).Cec.verdict with
  | Cec.Equivalent _ as verdict -> (golden, revised, verdict)
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "suite case did not prove equivalent"

let inequivalent_pair () =
  let golden = Key.normalize (Circuits.Adder.ripple_carry 3) in
  let revised = Circuits.Adder.ripple_carry 3 in
  Aig.set_output revised 0 (Aig.Lit.neg (Aig.output revised 0));
  let revised = Key.normalize revised in
  match (Cec.check sweeping golden revised).Cec.verdict with
  | Cec.Inequivalent _ as verdict -> (golden, revised, verdict)
  | Cec.Equivalent _ | Cec.Undecided -> Alcotest.fail "corrupted pair not refuted"

(* --- keys --- *)

let test_key_deterministic () =
  let golden, revised, _ = equivalent_pair () in
  let k = Key.of_pair golden revised in
  Alcotest.(check bool) "same pair, same key" true (Key.equal k (Key.of_pair golden revised));
  Alcotest.(check bool) "order matters" false (Key.equal k (Key.of_pair revised golden));
  (match Key.of_hex (Key.to_hex k) with
  | Some k' -> Alcotest.(check bool) "hex round-trip" true (Key.equal k k')
  | None -> Alcotest.fail "to_hex not parsable");
  (* Serialization-based addressing: a structurally identical reparse
     keys identically. *)
  let reread = Aig.Aiger.of_string (Aig.Aiger.to_string golden) in
  Alcotest.(check bool) "reparse keys identically" true
    (Key.equal k (Key.of_pair reread revised))

let test_key_ignores_dead_nodes () =
  let golden, revised, _ = equivalent_pair () in
  let k = Key.of_pair golden revised in
  let padded = Aig.Aiger.of_string (Aig.Aiger.to_string golden) in
  (* Grow logic that feeds no output: the key must not move. *)
  let x = Aig.xor_ padded (Aig.input padded 0) (Aig.input padded 2) in
  let y = Aig.xor_ padded x (Aig.input padded 1) in
  let (_ : Aig.Lit.t) = Aig.and_ padded y (Aig.Lit.neg (Aig.input padded 3)) in
  Alcotest.(check bool) "dead logic was actually added" true
    (Aig.num_ands padded > Aig.num_ands golden);
  Alcotest.(check bool) "dead nodes do not perturb the key" true
    (Key.equal k (Key.of_pair padded revised))

let test_key_sees_live_changes () =
  let golden, revised, _ = equivalent_pair () in
  let k = Key.of_pair golden revised in
  let negated = Aig.Aiger.of_string (Aig.Aiger.to_string golden) in
  Aig.set_output negated 0 (Aig.Lit.neg (Aig.output negated 0));
  Alcotest.(check bool) "live change moves the key" false
    (Key.equal k (Key.of_pair negated revised))

let test_key_of_hex_rejects () =
  List.iter
    (fun s ->
      match Key.of_hex s with
      | Some _ -> Alcotest.failf "of_hex accepted %S" s
      | None -> ())
    [ ""; "abc"; String.make 32 'X'; String.make 31 'a'; String.make 33 'a'; String.make 32 'g' ]

(* --- protocol --- *)

let test_protocol_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.parse_request (Protocol.print_request req) with
      | Ok req' when req' = req -> ()
      | Ok _ -> Alcotest.failf "round-trip changed %S" (Protocol.print_request req)
      | Error msg -> Alcotest.failf "round-trip rejected %S: %s" (Protocol.print_request req) msg)
    [
      Protocol.Check { golden = "a.aig"; revised = "b.aig"; timeout_ms = None };
      Protocol.Check { golden = "x.blif"; revised = "y.blif"; timeout_ms = Some 250 };
      Protocol.Stats;
      Protocol.Ping;
      Protocol.Shutdown;
    ]

let test_protocol_rejects_malformed () =
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse accepted %S" line)
    [ ""; "   "; "check"; "check only-one"; "check a b notanumber"; "frobnicate a b" ]

let test_protocol_json_fields () =
  let line =
    Protocol.to_json
      [
        ("path", Protocol.String "x \"quoted\"\\back\nline");
        ("count", Protocol.Int 42);
        ("flag", Protocol.Bool true);
        ("ms", Protocol.Float 1.5);
      ]
  in
  Alcotest.(check (option string)) "escaped string" (Some "x \"quoted\"\\back\nline")
    (Protocol.field "path" line);
  Alcotest.(check (option string)) "int" (Some "42") (Protocol.field "count" line);
  Alcotest.(check (option string)) "bool" (Some "true") (Protocol.field "flag" line);
  Alcotest.(check (option string)) "absent" None (Protocol.field "missing" line);
  Alcotest.(check (option string)) "error helper" (Some "boom")
    (Protocol.field "error" (Protocol.error_response "boom"))

(* --- metrics --- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr_requests m;
  Metrics.incr_requests m;
  Metrics.record m Metrics.Proved ~cached:false ~ms:10.0;
  Metrics.record m Metrics.Proved ~cached:true ~ms:2.0;
  Metrics.record m Metrics.Counterexample ~cached:false ~ms:6.0;
  Metrics.record m Metrics.Timeout ~cached:false ~ms:1.0;
  Metrics.record_rejected m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 2 s.Metrics.requests;
  Alcotest.(check int) "proved" 2 s.Metrics.proved;
  Alcotest.(check int) "cex" 1 s.Metrics.counterexamples;
  Alcotest.(check int) "timeouts" 1 s.Metrics.timeouts;
  Alcotest.(check int) "hits" 1 s.Metrics.hits;
  Alcotest.(check int) "misses" 3 s.Metrics.misses;
  Alcotest.(check int) "rejected" 1 s.Metrics.rejected;
  Alcotest.(check int) "hit samples" 1 s.Metrics.hit_latency.Metrics.count;
  Alcotest.(check (float 1e-9)) "solve total" 17.0 s.Metrics.solve_latency.Metrics.total_ms;
  Alcotest.(check (float 1e-9)) "solve max" 10.0 s.Metrics.solve_latency.Metrics.max_ms

(* --- store --- *)

let find_cert store key ~golden ~revised =
  match Store.find store key ~golden ~revised with
  | Some (Cec.Equivalent cert) -> cert
  | Some _ -> Alcotest.fail "stored verdict changed kind"
  | None -> Alcotest.fail "stored certificate not found"

let test_store_roundtrip_equivalent () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Alcotest.(check bool) "empty store misses" true
        (Store.find store key ~golden ~revised = None);
      Store.store store key verdict;
      Alcotest.(check bool) "mem after store" true (Store.mem store key);
      let cert = find_cert store key ~golden ~revised in
      (match Certify.validate_against cert golden revised with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "reloaded certificate rejected: %a" Certify.pp_error e);
      let s = Store.stats store in
      Alcotest.(check int) "one entry" 1 s.Store.entries;
      Alcotest.(check int) "one hit" 1 s.Store.hits;
      Alcotest.(check int) "one miss" 1 s.Store.misses)

let test_store_roundtrip_inequivalent () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = inequivalent_pair () in
      let original =
        match verdict with Cec.Inequivalent cex -> cex | _ -> assert false
      in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      match Store.find store key ~golden ~revised with
      | Some (Cec.Inequivalent cex) ->
        Alcotest.(check bool) "witness preserved" true (cex = original);
        let miter = Aig.Miter.build golden revised in
        Alcotest.(check bool) "witness still distinguishes" true (Aig.eval miter cex).(0)
      | _ -> Alcotest.fail "stored counterexample not found")

let test_store_ignores_undecided () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, _ = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key Cec.Undecided;
      Alcotest.(check bool) "undecided not stored" false (Store.mem store key);
      Alcotest.(check int) "no store counted" 0 (Store.stats store).Store.stores)

let test_store_persists_across_reopen () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      Store.flush store;
      (* A second process: fresh handle over the same directory. *)
      let reopened = Store.create ~dir () in
      let cert = find_cert reopened key ~golden ~revised in
      match Certify.validate_against cert golden revised with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "persisted certificate rejected: %a" Certify.pp_error e)

(* Flip one byte of the stored trace: the store must reject the entry,
   delete it and report a miss, so the caller re-solves. *)
let test_store_drops_corrupt_entry () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      let path = Store.entry_path store key in
      let data = read_file path in
      let pos =
        let rec digit i = if data.[i] >= '0' && data.[i] <= '9' then i else digit (i + 1) in
        digit (String.length data / 2)
      in
      write_file path
        (String.mapi (fun i c -> if i = pos then 'x' else c) data);
      Alcotest.(check bool) "corrupt entry is a miss" true
        (Store.find store key ~golden ~revised = None);
      let s = Store.stats store in
      Alcotest.(check int) "corruption counted" 1 s.Store.corrupt;
      Alcotest.(check int) "entry deleted" 0 s.Store.entries;
      Alcotest.(check bool) "file deleted" false (Sys.file_exists path);
      (* Falling back to solving and re-storing heals the entry. *)
      Store.store store key verdict;
      let (_ : Cec.certificate) = find_cert store key ~golden ~revised in
      ())

(* A semantically corrupted proof (valid syntax, broken resolution)
   must be caught by paranoid re-validation. *)
let test_store_paranoid_catches_wrong_proof () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let other_golden, _, _ = inequivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      (* Store a certificate for the WRONG pair under this key, as an
         adversary (or a colliding write) might. *)
      (match (Cec.check sweeping other_golden other_golden).Cec.verdict with
      | Cec.Equivalent _ as wrong -> Store.store store key wrong
      | _ -> Alcotest.fail "self-check did not prove equivalent");
      Alcotest.(check bool) "foreign certificate rejected" true
        (Store.find store key ~golden ~revised = None);
      Alcotest.(check int) "counted as corrupt" 1 (Store.stats store).Store.corrupt;
      (* The honest certificate still stores and loads. *)
      Store.store store key verdict;
      let (_ : Cec.certificate) = find_cert store key ~golden ~revised in
      ())

let test_store_version_skew_is_miss () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      let path = Store.entry_path store key in
      let data = read_file path in
      let newline = String.index data '\n' in
      write_file path
        (Printf.sprintf "cecproof-cert %d%s" (Store.format_version + 1)
           (String.sub data newline (String.length data - newline)));
      Alcotest.(check bool) "future version is a miss" true
        (Store.find store key ~golden ~revised = None);
      Alcotest.(check int) "version skew counted as corrupt" 1 (Store.stats store).Store.corrupt)

let test_store_rebuilds_lost_index () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      Store.flush store;
      (* Trash the index; the objects survive and the store recovers. *)
      write_file (Filename.concat dir "index") "not an index at all\ngarbage\n";
      let reopened = Store.create ~dir () in
      Alcotest.(check int) "entries recovered by scan" 1 (Store.stats reopened).Store.entries;
      let (_ : Cec.certificate) = find_cert reopened key ~golden ~revised in
      ())

(* New entries carry the hinted CECB binary body; the search-free
   hinted checker is the paranoid re-validation path for them. *)
let test_store_writes_binary_bodies () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      let data = read_file (Store.entry_path store key) in
      let expected = Printf.sprintf "cecproof-cert %d\nequivalent bin3\n" Store.format_version in
      Alcotest.(check string) "v3 header + bin3 verdict" expected
        (String.sub data 0 (String.length expected));
      let body =
        String.sub data (String.length expected) (String.length data - String.length expected)
      in
      Alcotest.(check bool) "hinted CECB body" true (Proof.Binfmt.is_hinted body);
      let cert = find_cert store key ~golden ~revised in
      match Certify.validate_against cert golden revised with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "decoded binary certificate rejected: %a" Certify.pp_error e)

(* A store directory written by format version 2 ("equivalent bin",
   un-hinted CECB body) keeps answering hits. *)
let test_store_reads_legacy_v2_objects () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let cert = match verdict with Cec.Equivalent c -> c | _ -> assert false in
      let key = Key.of_pair golden revised in
      let probe = Store.create ~dir () in
      write_file (Store.entry_path probe key)
        (Printf.sprintf "cecproof-cert 2\nequivalent bin\n%s"
           (Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root));
      let store = Store.create ~dir () in
      let loaded = find_cert store key ~golden ~revised in
      (match Certify.validate_against loaded golden revised with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "legacy v2 certificate rejected: %a" Certify.pp_error e);
      Alcotest.(check int) "served as a hit" 1 (Store.stats store).Store.hits)

let test_store_trace_format_roundtrip () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let key = Key.of_pair golden revised in
      let store = Store.create ~cert_format:Store.Trace ~dir () in
      Store.store store key verdict;
      let data = read_file (Store.entry_path store key) in
      let expected = Printf.sprintf "cecproof-cert %d\nequivalent trace\n" Store.format_version in
      Alcotest.(check string) "v2 header + trace verdict" expected
        (String.sub data 0 (String.length expected));
      let (_ : Cec.certificate) = find_cert store key ~golden ~revised in
      ())

(* A store directory written before the binary format (version-1
   header, bare "equivalent", ASCII trace) keeps answering hits. *)
let test_store_reads_legacy_v1_objects () =
  with_temp_dir "cecd-store" (fun dir ->
      let golden, revised, verdict = equivalent_pair () in
      let cert = match verdict with Cec.Equivalent c -> c | _ -> assert false in
      let key = Key.of_pair golden revised in
      let probe = Store.create ~dir () in
      let trimmed, root = Proof.Trim.cone cert.Cec.proof ~root:cert.Cec.root in
      write_file (Store.entry_path probe key)
        (Printf.sprintf "cecproof-cert 1\nequivalent\n%s"
           (Proof.Export.trace_to_string trimmed ~root));
      (* A fresh handle finds the hand-planted v1 object by scanning
         objects/ (there is no index yet) and serves it. *)
      let store = Store.create ~dir () in
      let loaded = find_cert store key ~golden ~revised in
      (match Certify.validate_against loaded golden revised with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "legacy certificate rejected: %a" Certify.pp_error e);
      Alcotest.(check int) "served as a hit" 1 (Store.stats store).Store.hits)

let test_store_lru_eviction () =
  with_temp_dir "cecd-store" (fun dir ->
      (* Small fabricated counterexample entries with distinct keys. *)
      let key_of i =
        match Key.of_hex (Printf.sprintf "%032x" (0xbeef + i)) with
        | Some k -> k
        | None -> Alcotest.fail "bad fabricated key"
      in
      let entry_bytes =
        let probe = Store.create ~dir:(Filename.concat dir "probe") () in
        Store.store probe (key_of 0) (Cec.Inequivalent (Array.make 4 false));
        (Store.stats probe).Store.bytes
      in
      let store =
        Store.create ~capacity_bytes:(3 * entry_bytes) ~dir:(Filename.concat dir "main") ()
      in
      for i = 1 to 8 do
        Store.store store (key_of i) (Cec.Inequivalent (Array.make 4 false))
      done;
      let s = Store.stats store in
      Alcotest.(check bool) "evictions happened" true (s.Store.evictions > 0);
      Alcotest.(check bool) "capacity respected" true (s.Store.bytes <= 3 * entry_bytes);
      (* LRU order: the newest entries survive. *)
      Alcotest.(check bool) "newest survives" true (Store.mem store (key_of 8));
      Alcotest.(check bool) "oldest evicted" false (Store.mem store (key_of 1)))

(* --- fake clocks --- *)

(* Every call returns [step] more than the last: deadline paths fire
   deterministically, with no real waiting and no dependence on machine
   speed.  Thread-safe, so a server config can share one across its
   accept loop and worker domains. *)
let ticking_clock ?(start = 0.0) ~step () =
  let lock = Mutex.create () and t = ref start in
  fun () ->
    Mutex.protect lock (fun () ->
        let v = !t in
        t := v +. step;
        v)

(* --- engine --- *)

let test_engine_expired_deadline () =
  let golden, revised, _ = equivalent_pair () in
  let result =
    Engine.solve
      ~clock:(fun () -> 100.0)
      ~deadline:100.0 Engine.default_config golden revised
  in
  Alcotest.(check bool) "timed out" true result.Engine.timed_out;
  Alcotest.(check bool) "undecided" true (result.Engine.verdict = Cec.Undecided);
  Alcotest.(check int) "no rounds run" 0 result.Engine.rounds

let test_engine_deadline_expires_between_rounds () =
  (* Budget 1 cannot decide this pair, so escalation would normally run
     more rounds; the clock ticks 10 s per deadline check, so the check
     before round 2 (t = 110 >= 105) cancels the escalation. *)
  let golden = Circuits.Multiplier.array 3 and revised = Circuits.Multiplier.shift_add 3 in
  let clock = ticking_clock ~start:100.0 ~step:10.0 () in
  let config =
    {
      Engine.default_config with
      Engine.engine = Cec.Monolithic;
      budget = Some 1;
      escalation = 2;
      max_rounds = 10;
    }
  in
  let result = Engine.solve ~clock ~deadline:105.0 config golden revised in
  Alcotest.(check bool) "timed out" true result.Engine.timed_out;
  Alcotest.(check bool) "undecided" true (result.Engine.verdict = Cec.Undecided);
  Alcotest.(check int) "exactly one round ran" 1 result.Engine.rounds

let test_engine_budget_exhaustion () =
  let golden = Circuits.Multiplier.array 3 and revised = Circuits.Multiplier.shift_add 3 in
  let config =
    {
      Engine.default_config with
      Engine.engine = Cec.Monolithic;
      budget = Some 1;
      escalation = 2;
      max_rounds = 1;
    }
  in
  let result = Engine.solve config golden revised in
  Alcotest.(check bool) "undecided under 1 conflict" true (result.Engine.verdict = Cec.Undecided);
  Alcotest.(check bool) "not a timeout" false result.Engine.timed_out;
  Alcotest.(check int) "one round" 1 result.Engine.rounds

let test_engine_escalation_decides () =
  let golden, revised, _ = equivalent_pair () in
  let config =
    { Engine.default_config with Engine.budget = Some 1; escalation = 8; max_rounds = 6 }
  in
  let result = Engine.solve config golden revised in
  (match result.Engine.verdict with
  | Cec.Equivalent cert -> (
    match Certify.validate_against cert golden revised with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "escalated certificate rejected: %a" Certify.pp_error e)
  | Cec.Inequivalent _ -> Alcotest.fail "spurious counterexample"
  | Cec.Undecided -> Alcotest.fail "escalation failed to decide a small pair");
  Alcotest.(check bool) "ran at least one round" true (result.Engine.rounds >= 1)

(* --- batch mode --- *)

let test_batch_manifest_parsing () =
  with_temp_dir "cecd-batch" (fun dir ->
      let manifest = Filename.concat dir "manifest.txt" in
      write_file manifest "# comment\n\n  a.aig b.aig  \nsub/c.aig /abs/d.aig\n";
      (match Batch.parse_manifest manifest with
      | Ok
          [
            (g0, r0);
            (g1, r1);
          ] ->
        Alcotest.(check string) "relative golden" (Filename.concat dir "a.aig") g0;
        Alcotest.(check string) "relative revised" (Filename.concat dir "b.aig") r0;
        Alcotest.(check string) "relative subdir" (Filename.concat dir "sub/c.aig") g1;
        Alcotest.(check string) "absolute kept" "/abs/d.aig" r1
      | Ok _ -> Alcotest.fail "wrong pair count"
      | Error msg -> Alcotest.failf "manifest rejected: %s" msg);
      write_file manifest "a.aig\n";
      match Batch.parse_manifest manifest with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed line accepted")

let test_batch_cold_then_warm () =
  with_temp_dir "cecd-batch" (fun dir ->
      let golden, revised, _ = equivalent_pair () in
      let ineq_golden, ineq_revised, _ = inequivalent_pair () in
      let path name g =
        let p = Filename.concat dir name in
        Aig.Aiger.write_file p g;
        p
      in
      let pairs =
        [
          (path "eq-golden.aig" golden, path "eq-revised.aig" revised);
          (path "neq-golden.aig" ineq_golden, path "neq-revised.aig" ineq_revised);
          (path "missing.aig" golden, path "eq-revised.aig" revised);
        ]
      in
      Sys.remove (Filename.concat dir "missing.aig");
      let store = Store.create ~dir:(Filename.concat dir "store") () in
      let engine = Engine.default_config in
      let cold = Batch.run ~store ~engine pairs in
      Alcotest.(check int) "total" 3 cold.Batch.total;
      Alcotest.(check int) "cold hits" 0 cold.Batch.hits;
      Alcotest.(check int) "cold proved" 1 cold.Batch.proved;
      Alcotest.(check int) "cold cex" 1 cold.Batch.counterexamples;
      Alcotest.(check int) "cold errors" 1 cold.Batch.errors;
      let results = ref [] in
      let warm =
        Batch.run ~store ~engine ~on_result:(fun r -> results := r :: !results) pairs
      in
      Alcotest.(check int) "warm hits" 2 warm.Batch.hits;
      Alcotest.(check int) "warm proved" 1 warm.Batch.proved;
      Alcotest.(check int) "warm cex" 1 warm.Batch.counterexamples;
      List.iter
        (fun (r : Batch.line_result) ->
          if r.Batch.status = "equivalent" || r.Batch.status = "inequivalent" then
            Alcotest.(check bool) "warm results cached" true r.Batch.cached)
        !results)

let test_batch_fake_clock_timeout () =
  with_temp_dir "cecd-batch-clock" (fun dir ->
      let golden, revised, _ = equivalent_pair () in
      let path name g =
        let p = Filename.concat dir name in
        Aig.Aiger.write_file p g;
        p
      in
      let pairs = [ (path "g.aig" golden, path "r.aig" revised) ] in
      let store = Store.create ~dir:(Filename.concat dir "store") () in
      (* The 5 s per-pair deadline is shorter than one 10 s clock tick,
         so the engine's first deadline check is already past due: the
         pair times out without solving, and the reported latency is a
         pure function of the injected clock. *)
      let clock = ticking_clock ~start:0.0 ~step:10.0 () in
      let results = ref [] in
      let summary =
        Batch.run ~clock ~store ~engine:Engine.default_config ~timeout_ms:5000
          ~on_result:(fun r -> results := r :: !results)
          pairs
      in
      Alcotest.(check int) "timeout counted as undecided" 1 summary.Batch.undecided;
      Alcotest.(check int) "nothing proved" 0 summary.Batch.proved;
      match !results with
      | [ r ] ->
        Alcotest.(check string) "status" "timeout" r.Batch.status;
        Alcotest.(check (float 1e-6)) "latency from the injected clock" 20000.0 r.Batch.ms
      | _ -> Alcotest.fail "expected exactly one result")

(* --- the daemon, end to end over a real socket --- *)

let wait_for_server socket_path =
  let rec go n =
    if n = 0 then Alcotest.fail "server did not come up"
    else
      match Server.request ~socket_path "ping" with
      | Ok _ -> ()
      | Error _ ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 250

let request_exn socket_path line =
  match Server.request ~socket_path line with
  | Ok response -> response
  | Error msg -> Alcotest.failf "request %S failed: %s" line msg

let field_exn name line =
  match Protocol.field name line with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks %S" line name

let test_server_end_to_end () =
  with_temp_dir "cecd-e2e" (fun dir ->
      let golden, revised, _ = equivalent_pair () in
      let golden_path = Filename.concat dir "golden.aig" in
      let revised_path = Filename.concat dir "revised.aig" in
      Aig.Aiger.write_file golden_path golden;
      Aig.Aiger.write_file revised_path revised;
      let socket_path = Filename.concat dir "cecd.sock" in
      let store_dir = Filename.concat dir "store" in
      let cfg =
        { (Server.default_config ~socket_path ~store_dir) with Server.log = false }
      in
      let server = Domain.spawn (fun () -> Server.run cfg) in
      wait_for_server socket_path;
      let check_line = Printf.sprintf "check %s %s" golden_path revised_path in

      (* Cold: solved, stored. *)
      let r1 = request_exn socket_path check_line in
      Alcotest.(check string) "first solve" "equivalent" (field_exn "status" r1);
      Alcotest.(check string) "first is a miss" "false" (field_exn "cached" r1);

      (* Warm: same pair again, served from the store. *)
      let r2 = request_exn socket_path check_line in
      Alcotest.(check string) "second solve" "equivalent" (field_exn "status" r2);
      Alcotest.(check string) "second is a hit" "true" (field_exn "cached" r2);
      Alcotest.(check string) "keys agree" (field_exn "key" r1) (field_exn "key" r2);

      (* The served certificate is independently reloadable and still
         validates against the normalized pair. *)
      let key =
        match Key.of_hex (field_exn "key" r2) with
        | Some k -> k
        | None -> Alcotest.fail "response key not parsable"
      in
      let audit = Store.create ~dir:store_dir () in
      (match Store.find audit key ~golden ~revised with
      | Some (Cec.Equivalent cert) -> (
        match Certify.validate_against cert golden revised with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "served certificate rejected: %a" Certify.pp_error e)
      | _ -> Alcotest.fail "served certificate not in the store");

      (* Flip a byte of the stored trace behind the server's back: it
         must fall back to re-solving (a miss), then re-cache. *)
      let entry = Store.entry_path audit key in
      let data = read_file entry in
      let pos =
        let rec digit i = if data.[i] >= '0' && data.[i] <= '9' then i else digit (i + 1) in
        digit (String.length data / 2)
      in
      write_file entry (String.mapi (fun i c -> if i = pos then 'x' else c) data);
      let r3 = request_exn socket_path check_line in
      Alcotest.(check string) "corruption re-solves" "false" (field_exn "cached" r3);
      Alcotest.(check string) "still equivalent" "equivalent" (field_exn "status" r3);
      let r4 = request_exn socket_path check_line in
      Alcotest.(check string) "healed entry hits again" "true" (field_exn "cached" r4);

      (* An already-expired deadline is answered with a timeout, not a
         solve. *)
      let r5 = request_exn socket_path (check_line ^ " 0") in
      Alcotest.(check string) "zero deadline times out" "timeout" (field_exn "status" r5);

      (* Errors are reported, not fatal. *)
      let r6 = request_exn socket_path "check /nonexistent.aig /nonexistent.aig" in
      Alcotest.(check bool) "missing netlist is an error" true
        (Protocol.field "error" r6 <> None);
      let r7 = request_exn socket_path "frobnicate" in
      Alcotest.(check bool) "bad request is an error" true (Protocol.field "error" r7 <> None);

      (* Stats reflect the history. *)
      let stats = request_exn socket_path "stats" in
      Alcotest.(check string) "stats store hits" "2" (field_exn "store_hits" stats);
      Alcotest.(check string) "stats corrupt" "1" (field_exn "store_corrupt" stats);
      Alcotest.(check string) "stats timeouts cancelled" "1" (field_exn "cancelled" stats);

      (* Graceful drain on request; the socket disappears. *)
      let bye = request_exn socket_path "shutdown" in
      Alcotest.(check string) "draining acknowledged" "true" (field_exn "draining" bye);
      let snapshot, store_stats = Domain.join server in
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path);
      (* Four equivalent answers: two solved, two served from the store. *)
      Alcotest.(check int) "server answered equivalent four times" 4 snapshot.Metrics.proved;
      Alcotest.(check int) "server hit twice" 2 snapshot.Metrics.hits;
      Alcotest.(check int) "server solved twice" 2 snapshot.Metrics.misses;
      Alcotest.(check int) "server cancelled once" 1 snapshot.Metrics.cancelled;
      Alcotest.(check int) "store kept one entry" 1 store_stats.Store.entries;
      Alcotest.(check int) "store saw the corruption" 1 store_stats.Store.corrupt)

(* The server's deadline machinery driven entirely by an injected
   clock: every clock read advances time by 1000 s, so a request with a
   generous 60 s budget has always expired by the time a worker picks
   it up — the cancellation path runs deterministically, with no
   sleeping and no real deadline racing.  The same run exercises the
   shutdown-time observability exports. *)
let test_server_fake_clock_deadline () =
  with_temp_dir "cecd-clock" (fun dir ->
      let golden, revised, _ = equivalent_pair () in
      let golden_path = Filename.concat dir "golden.aig" in
      let revised_path = Filename.concat dir "revised.aig" in
      Aig.Aiger.write_file golden_path golden;
      Aig.Aiger.write_file revised_path revised;
      let socket_path = Filename.concat dir "cecd.sock" in
      let stats_path = Filename.concat dir "stats.json" in
      let trace_path = Filename.concat dir "trace.json" in
      let cfg =
        {
          (Server.default_config ~socket_path ~store_dir:(Filename.concat dir "store")) with
          Server.log = false;
          clock = ticking_clock ~start:1.0e6 ~step:1000.0 ();
          stats_out = Some stats_path;
          trace_out = Some trace_path;
        }
      in
      let server = Domain.spawn (fun () -> Server.run cfg) in
      wait_for_server socket_path;
      let r =
        request_exn socket_path (Printf.sprintf "check %s %s 60000" golden_path revised_path)
      in
      Alcotest.(check string) "cancelled without solving" "timeout" (field_exn "status" r);
      ignore (request_exn socket_path "shutdown");
      let snapshot, _ = Domain.join server in
      Alcotest.(check int) "one cancellation" 1 snapshot.Metrics.cancelled;
      Alcotest.(check int) "nothing solved" 0 snapshot.Metrics.proved;
      (* Both exports were written at shutdown, are valid JSON, and the
         stats cover the request metrics. *)
      let stats = read_file stats_path in
      Test_obs.Json.check_valid "server stats export" stats;
      Alcotest.(check bool) "cancellation visible in the export" true
        (let sub = "\"service.cancelled\":1" in
         let n = String.length stats and m = String.length sub in
         let rec find i = i + m <= n && (String.sub stats i m = sub || find (i + 1)) in
         find 0);
      Test_obs.Json.check_valid "server trace export" (read_file trace_path))

let suites =
  [
    ( "service-key",
      [
        Alcotest.test_case "deterministic content addressing" `Quick test_key_deterministic;
        Alcotest.test_case "dead nodes do not perturb keys" `Quick test_key_ignores_dead_nodes;
        Alcotest.test_case "live changes move keys" `Quick test_key_sees_live_changes;
        Alcotest.test_case "of_hex rejects malformed input" `Quick test_key_of_hex_rejects;
      ] );
    ( "service-protocol",
      [
        Alcotest.test_case "request print-parse round-trip" `Quick
          test_protocol_request_roundtrip;
        Alcotest.test_case "malformed requests rejected" `Quick test_protocol_rejects_malformed;
        Alcotest.test_case "flat JSON encode/extract" `Quick test_protocol_json_fields;
        Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
      ] );
    ( "service-store",
      [
        Alcotest.test_case "equivalent round-trip revalidates" `Quick
          test_store_roundtrip_equivalent;
        Alcotest.test_case "inequivalent round-trip replays" `Quick
          test_store_roundtrip_inequivalent;
        Alcotest.test_case "undecided never stored" `Quick test_store_ignores_undecided;
        Alcotest.test_case "persists across reopen" `Quick test_store_persists_across_reopen;
        Alcotest.test_case "corrupt entry dropped as miss" `Quick test_store_drops_corrupt_entry;
        Alcotest.test_case "paranoid rejects foreign certificate" `Quick
          test_store_paranoid_catches_wrong_proof;
        Alcotest.test_case "version skew is a miss" `Quick test_store_version_skew_is_miss;
        Alcotest.test_case "lost index rebuilt from objects" `Quick
          test_store_rebuilds_lost_index;
        Alcotest.test_case "binary bodies written and revalidated" `Quick
          test_store_writes_binary_bodies;
        Alcotest.test_case "legacy v2 objects still read" `Quick
          test_store_reads_legacy_v2_objects;
        Alcotest.test_case "trace format round-trip" `Quick test_store_trace_format_roundtrip;
        Alcotest.test_case "legacy v1 objects still read" `Quick
          test_store_reads_legacy_v1_objects;
        Alcotest.test_case "LRU eviction under a byte cap" `Quick test_store_lru_eviction;
      ] );
    ( "service-engine",
      [
        Alcotest.test_case "expired deadline short-circuits" `Quick test_engine_expired_deadline;
        Alcotest.test_case "fake clock expires between rounds" `Quick
          test_engine_deadline_expires_between_rounds;
        Alcotest.test_case "budget exhaustion stays sound" `Quick test_engine_budget_exhaustion;
        Alcotest.test_case "escalation decides small pairs" `Quick
          test_engine_escalation_decides;
      ] );
    ( "service-batch",
      [
        Alcotest.test_case "manifest parsing" `Quick test_batch_manifest_parsing;
        Alcotest.test_case "cold run then warm run" `Quick test_batch_cold_then_warm;
        Alcotest.test_case "fake clock times out deterministically" `Quick
          test_batch_fake_clock_timeout;
      ] );
    ( "service-daemon",
      [
        Alcotest.test_case "full life cycle over a socket" `Quick test_server_end_to_end;
        Alcotest.test_case "fake-clock deadlines and shutdown exports" `Quick
          test_server_fake_clock_deadline;
      ] );
  ]
