(* The parallel partitioned engine: agreement with the sequential
   engines over the suite, stitched-certificate validity, determinism
   across domain counts, budget escalation, and partition statuses. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel
module Certify = Cec_core.Certify
module Pstats = Proof.Pstats

let sweeping = Cec.Sweeping Sweep.default_config

let config ?(engine = sweeping) ?budget ?(escalation = 4) ?(max_rounds = 3) num_domains =
  { Parallel.num_domains; engine; budget; escalation; max_rounds }

let check_stitched name golden revised (report : Parallel.report) =
  match report.Parallel.verdict with
  | Cec.Equivalent cert -> (
    (match
       Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:cert.Cec.formula ()
     with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: stitched proof rejected: %a" name Proof.Checker.pp_error e);
    match Certify.validate_against cert golden revised with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: certificate rejected: %a" name Certify.pp_error e)
  | Cec.Inequivalent _ -> Alcotest.failf "%s: spurious counterexample" name
  | Cec.Undecided -> Alcotest.failf "%s: undecided" name

(* Full suite, parallel vs sequential sweeping, stitched certificates
   validated against freshly rebuilt miters. *)
let test_suite_agreement () =
  List.iter
    (fun case ->
      let name = case.Circuits.Suite.name in
      let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
      let seq = (Cec.check sweeping golden revised).Cec.verdict in
      let par = Parallel.check ~config:(config 2) golden revised in
      match seq with
      | Cec.Equivalent _ -> check_stitched name golden revised par
      | Cec.Inequivalent _ | Cec.Undecided ->
        Alcotest.failf "%s: sequential engine failed on a suite case" name)
    Circuits.Suite.default

(* Identical verdicts and identical stitched proofs for every domain
   count. *)
let test_determinism_across_domains () =
  let case = List.hd Circuits.Suite.small in
  let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
  let fingerprint nd =
    let report = Parallel.check ~config:(config nd) golden revised in
    let proof_stats =
      match report.Parallel.verdict with
      | Cec.Equivalent cert -> Some (Pstats.of_root cert.Cec.proof ~root:cert.Cec.root)
      | Cec.Inequivalent _ | Cec.Undecided -> None
    in
    let statuses =
      Array.map (fun p -> p.Parallel.status) report.Parallel.stats.Parallel.partitions
    in
    (proof_stats, statuses, report.Parallel.stats.Parallel.conflicts,
     report.Parallel.stats.Parallel.sat_calls)
  in
  let reference = fingerprint 1 in
  List.iter
    (fun nd ->
      if fingerprint nd <> reference then
        Alcotest.failf "num_domains=%d changed the verdict, proof or statistics" nd)
    [ 1; 2; 3; 4 ]

(* With a tiny initial budget the engine escalates; it must remain
   sound either way and respect max_rounds. *)
let test_budget_escalation () =
  let golden = Circuits.Multiplier.array 3 and revised = Circuits.Multiplier.shift_add 3 in
  let tight = config ~budget:1 ~escalation:2 ~max_rounds:2 2 in
  let report = Parallel.check ~config:tight golden revised in
  Alcotest.(check bool) "at most max_rounds rounds" true
    (report.Parallel.stats.Parallel.rounds <= 2);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "attempts bounded by rounds" true (p.Parallel.attempts <= 2))
    report.Parallel.stats.Parallel.partitions;
  (match report.Parallel.verdict with
  | Cec.Equivalent _ -> check_stitched "escalated" golden revised report
  | Cec.Undecided ->
    let gave_up =
      Array.exists
        (fun p -> p.Parallel.status = Parallel.Gave_up)
        report.Parallel.stats.Parallel.partitions
    in
    Alcotest.(check bool) "undecided implies a gave-up partition" true gave_up
  | Cec.Inequivalent _ -> Alcotest.fail "spurious counterexample under a tight budget");
  (* A generous budget must settle everything in the first round. *)
  let generous = config ~budget:1_000_000 ~max_rounds:3 2 in
  let report = Parallel.check ~config:generous golden revised in
  Alcotest.(check int) "one round suffices" 1 report.Parallel.stats.Parallel.rounds;
  check_stitched "generous" golden revised report

(* An inequivalence is localized to its output partition, and the
   witness is the lowest differing output's counterexample. *)
let test_inequivalent_localization () =
  let golden = Circuits.Adder.ripple_carry 4 in
  let revised = Circuits.Adder.ripple_carry 4 in
  Aig.set_output revised 2 (Aig.Lit.neg (Aig.output revised 2));
  let report = Parallel.check ~config:(config 2) golden revised in
  match report.Parallel.verdict with
  | Cec.Inequivalent cex ->
    let miter = Aig.Miter.build golden revised in
    Alcotest.(check bool) "witness drives the miter" true (Aig.eval miter cex).(0);
    Array.iteri
      (fun o p ->
        if o = 2 then
          Alcotest.(check bool) "corrupted partition refuted" true
            (p.Parallel.status = Parallel.Refuted))
      report.Parallel.stats.Parallel.partitions
  | Cec.Equivalent _ -> Alcotest.fail "inequivalent pair declared equivalent"
  | Cec.Undecided -> Alcotest.fail "undecided"

(* Checking a circuit against itself settles every partition
   structurally; the stitched certificate still checks. *)
let test_self_check_trivial_partitions () =
  let g = Circuits.Adder.carry_lookahead 4 in
  let report = Parallel.check ~config:(config 2) g g in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "partition trivial" true (p.Parallel.status = Parallel.Trivial))
    report.Parallel.stats.Parallel.partitions;
  Alcotest.(check int) "no solving rounds" 0 report.Parallel.stats.Parallel.rounds;
  check_stitched "self" g g report

(* Duplicated outputs share one disagreement cone: solved once,
   reported as Shared. *)
let test_shared_partitions () =
  let dup g =
    Aig.add_output g (Aig.output g 0);
    g
  in
  let golden = dup (Circuits.Adder.ripple_carry 3) in
  let revised = dup (Circuits.Rewrite.double_negate (Circuits.Adder.ripple_carry 3)) in
  let report = Parallel.check ~config:(config 2) golden revised in
  let partitions = report.Parallel.stats.Parallel.partitions in
  let last = partitions.(Array.length partitions - 1) in
  Alcotest.(check bool) "duplicate output shares the first cone" true
    (last.Parallel.status = Parallel.Shared 0);
  Alcotest.(check int) "shared partition does no work" 0 last.Parallel.sat_calls;
  check_stitched "shared" golden revised report

(* The sequential engine plugged into the partitions is configurable;
   the monolithic engine must work too. *)
let test_monolithic_partitions () =
  let case = List.hd Circuits.Suite.small in
  let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
  let report = Parallel.check ~config:(config ~engine:Cec.Monolithic 2) golden revised in
  check_stitched "monolithic-partitions" golden revised report

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "determinism across domain counts" `Quick
          test_determinism_across_domains;
        Alcotest.test_case "budget escalation" `Quick test_budget_escalation;
        Alcotest.test_case "inequivalence localized" `Quick test_inequivalent_localization;
        Alcotest.test_case "self-check is trivial" `Quick test_self_check_trivial_partitions;
        Alcotest.test_case "shared partitions" `Quick test_shared_partitions;
        Alcotest.test_case "monolithic partition engine" `Quick test_monolithic_partitions;
        Alcotest.test_case "suite agreement with stitched certificates" `Slow
          test_suite_agreement;
      ] );
  ]
