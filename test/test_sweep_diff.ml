(* Differential harness for the two sweeping engine modes.

   The per-pair engine (fresh solver per query, lift + import) and the
   incremental engine (one persistent solver whose proof store is the
   global proof) must be observationally identical: same verdicts on
   every instance, certificates that pass both the random-access and
   the streaming checker, and counterexamples that replay on the miter.
   The incremental proof additionally gets a structural audit — chain
   ids are global to the instance, so a certificate must never cite a
   node that was not already proved (no forward references, no
   assumption leaves, no leaves outside the miter CNF). *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel
module Certify = Cec_core.Certify
module R = Proof.Resolution
module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Suite = Circuits.Suite

let cfg mode = { Sweep.default_config with Sweep.mode }
let engine mode = Cec.Sweeping (cfg mode)
let modes = [ Sweep.Perpair; Sweep.Incremental ]
let mname = Sweep.mode_to_string

let verdict_of = function
  | Cec.Equivalent _ -> "eq"
  | Cec.Inequivalent _ -> "neq"
  | Cec.Undecided -> "undecided"

(* Certificate must pass the random-access checker against a rebuilt
   miter AND, re-encoded as a CECB binary, the bounded-memory streaming
   checker against its own formula. *)
let check_certificate ~what golden revised (cert : Cec.certificate) =
  (match Certify.validate_against cert golden revised with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: certificate rejected: %a" what Certify.pp_error e);
  let data = Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root in
  match Proof.Stream_check.check ~formula:cert.Cec.formula data with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: streaming checker rejected: %s" what e.Proof.Stream_check.reason

let replay_cex ~what golden revised cex =
  let miter = Aig.Miter.build golden revised in
  let sim = Aig.Sim.create miter ~words:1 in
  Array.iteri (fun i b -> Aig.Sim.set_input_bit sim ~input:i ~bit:0 b) cex;
  Aig.Sim.run sim;
  if not (Aig.Sim.lit_bit sim (Aig.output miter 0) ~bit:0) then
    Alcotest.failf "%s: counterexample does not drive the miter" what

(* Run both modes on a pair and cross-check everything observable. *)
let differential ~name golden revised =
  let reports =
    List.map (fun m -> (m, (Cec.check (engine m) golden revised).Cec.verdict)) modes
  in
  (match reports with
  | [ (_, a); (_, b) ] ->
    if verdict_of a <> verdict_of b then
      Alcotest.failf "%s: verdicts differ: perpair=%s incr=%s" name (verdict_of a) (verdict_of b)
  | _ -> assert false);
  List.iter
    (fun (m, verdict) ->
      let what = Printf.sprintf "%s/%s" name (mname m) in
      match verdict with
      | Cec.Equivalent cert -> check_certificate ~what golden revised cert
      | Cec.Inequivalent cex -> replay_cex ~what golden revised cex
      | Cec.Undecided -> Alcotest.failf "%s: undecided" what)
    reports

(* --- fixed golden circuits --- *)

let test_small_suite_differential () =
  List.iter
    (fun (case : Suite.case) ->
      differential ~name:case.Suite.name (case.Suite.golden ()) (case.Suite.revised ()))
    Suite.small

let test_inequivalent_fixtures () =
  (* A negated output and a single corrupted gate: both modes must find
     a counterexample that replays on the miter. *)
  let negated () =
    let golden = Circuits.Adder.ripple_carry 4 in
    let revised = Circuits.Adder.ripple_carry 4 in
    Aig.set_output revised 0 (Aig.Lit.neg (Aig.output revised 0));
    ("negated-add4", golden, revised)
  in
  let corrupted () =
    let golden = Circuits.Multiplier.array 3 in
    let revised = Circuits.Multiplier.array 3 in
    let o = Aig.num_outputs revised - 1 in
    Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o));
    ("corrupted-mul3", golden, revised)
  in
  List.iter (fun (name, g, r) -> differential ~name g r) [ negated (); corrupted () ]

(* --- random AIG pairs (qcheck) --- *)

let qtest ?(count = 25) name prop =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let random_pair seed =
  let num_inputs = 4 + (seed mod 3) in
  let num_outputs = 1 + (seed mod 3) in
  let golden =
    Circuits.Random_aig.generate
      (Support.Rng.create (1 + seed))
      ~num_inputs ~num_ands:(20 + (seed mod 30)) ~num_outputs
  in
  let revised = Circuits.Rewrite.restructure (Support.Rng.create (7 * seed)) golden in
  if seed mod 3 = 2 then begin
    let o = seed mod Aig.num_outputs revised in
    Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o))
  end;
  (golden, revised)

let prop_random_differential =
  qtest "perpair/incr agree on random pairs" (fun seed ->
      let golden, revised = random_pair seed in
      differential ~name:(Printf.sprintf "random-%d" seed) golden revised;
      true)

(* --- incremental chain-id integrity --- *)

(* Scan an incremental certificate: walking the reachable cone of the
   root, every chain may cite only ids strictly below its own (already
   proved when the chain was logged), no assumption leaf may survive
   into the certificate, and every leaf clause must belong to the miter
   CNF.  This is the structural contract that lets the streaming
   checker work in one pass, and the property the interleaved
   lemma insertion of the incremental engine could most plausibly
   break. *)
let audit_incremental_proof ~what (cert : Cec.certificate) =
  let proved = Hashtbl.create 256 in
  Array.iter
    (fun id ->
      (match R.node cert.Cec.proof id with
      | R.Leaf { assumption = true; _ } -> Alcotest.failf "%s: assumption leaf reachable" what
      | R.Leaf { clause; _ } ->
        if not (Formula.mem cert.Cec.formula clause) then
          Alcotest.failf "%s: leaf outside the miter CNF" what
      | R.Chain { antecedents; _ } ->
        Array.iter
          (fun a ->
            if a >= id then Alcotest.failf "%s: chain %d cites forward id %d" what id a;
            if not (Hashtbl.mem proved a) then
              Alcotest.failf "%s: chain %d cites unproved id %d" what id a)
          antecedents);
      Hashtbl.replace proved id ())
    (R.reachable cert.Cec.proof ~root:cert.Cec.root)

let incremental_cert golden revised =
  match (Cec.check (engine Sweep.Incremental) golden revised).Cec.verdict with
  | Cec.Equivalent cert -> Some cert
  | Cec.Inequivalent _ | Cec.Undecided -> None

let prop_incremental_chain_ids =
  qtest "incremental certificates cite only proved ids" (fun seed ->
      let golden, revised = random_pair seed in
      (match incremental_cert golden revised with
      | Some cert -> audit_incremental_proof ~what:(Printf.sprintf "random-%d" seed) cert
      | None -> ());
      true)

(* --- corruption fuzz over the incremental trace --- *)

(* A fixed incremental certificate with plenty of chains. *)
let incr_trace =
  lazy
    (let case = Option.get (Suite.find "mul3-arr-sa") in
     match incremental_cert (case.Suite.golden ()) (case.Suite.revised ()) with
     | Some cert -> Proof.Export.trace_to_string cert.Cec.proof ~root:cert.Cec.root
     | None -> failwith "fuzz setup failed")

(* Rewrite one chain line's first antecedent to a forward (hence
   unproved) id; the parser must refuse to build the store. *)
let prop_incremental_trace_fuzz =
  qtest "corrupted incremental trace is rejected" (fun seed ->
      let text = Lazy.force incr_trace in
      let lines = String.split_on_char '\n' text in
      let chains =
        List.filteri (fun _ l -> String.length l > 0) lines
        |> List.filter (fun l ->
               match String.split_on_char ' ' l with _ :: "C" :: _ -> true | _ -> false)
      in
      let victim = List.nth chains (seed mod List.length chains) in
      let corrupted_line =
        match String.split_on_char ' ' victim with
        | id :: "C" :: _ante :: rest ->
          (* Cite an id past the end of the store: a node nobody has
             proved.  [9999999] exceeds every id in this trace. *)
          String.concat " " (id :: "C" :: "9999999" :: rest)
        | _ -> assert false
      in
      let corrupted =
        String.concat "\n" (List.map (fun l -> if l = victim then corrupted_line else l) lines)
      in
      (match Proof.Export.trace_of_string corrupted with
      | exception Failure _ -> ()
      | _proof, _root -> Alcotest.fail "trace citing an unproved id accepted");
      true)

(* --- contradictory assumptions regression (solver level) --- *)

let lit v = Aig.Lit.of_var v
let nlit v = Aig.Lit.neg (Aig.Lit.of_var v)

let test_contradictory_assumptions_regression () =
  let module Solver = Sat.Solver in
  (* Longer lists, either order, with unrelated assumptions around the
     clash: always a clean Unsat_assuming, never an exception, and the
     trivial final clause's pid is an assumption leaf (so it can never
     be laundered into a checkable certificate). *)
  List.iter
    (fun assumptions ->
      let s = Solver.create () in
      Solver.add_clause s (Clause.of_list [ lit 0; lit 1 ]);
      match Solver.solve ~assumptions s with
      | Solver.Unsat_assuming { clause; pid } -> (
        Alcotest.(check int) "unit final clause" 1 (Clause.size clause);
        match R.node (Solver.proof s) pid with
        | R.Leaf { assumption = true; _ } -> ()
        | R.Leaf _ | R.Chain _ -> Alcotest.fail "trivial clause not an assumption leaf")
      | _ -> Alcotest.fail "expected Unsat_assuming on contradictory assumptions")
    [
      [ lit 2; nlit 2 ];
      [ nlit 2; lit 2 ];
      [ lit 3; lit 2; nlit 2 ];
      [ lit 2; lit 4; nlit 4; nlit 2 ];
    ];
  (* The solver stays usable: the same instance still answers SAT
     afterwards, and a genuine clause-driven Unsat_assuming still
     carries a real derivation. *)
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ nlit 0; lit 1 ]);
  (match Solver.solve ~assumptions:[ lit 0; nlit 0 ] s with
  | Solver.Unsat_assuming _ -> ()
  | _ -> Alcotest.fail "expected Unsat_assuming");
  (match Solver.solve ~assumptions:[ lit 0 ] s with
  | Solver.Sat model ->
    Alcotest.(check bool) "propagated x1" true model.(1)
  | _ -> Alcotest.fail "solver unusable after contradictory assumptions");
  match Solver.solve ~assumptions:[ lit 0; nlit 1 ] s with
  | Solver.Unsat_assuming { clause; pid } ->
    (match R.node (Solver.proof s) pid with
    | R.Leaf { assumption = true; _ } -> Alcotest.fail "real refutation logged as assumption"
    | R.Leaf _ | R.Chain _ -> ());
    Alcotest.(check bool) "clause over negated assumptions" true
      (Clause.fold (fun acc l -> acc && (l = nlit 0 || l = lit 1)) true clause)
  | _ -> Alcotest.fail "expected clause-driven Unsat_assuming"

(* --- full-stack smoke under the CI-selected mode --- *)

(* CI runs the whole test binary once per sweep mode with
   CEC_SWEEP_MODE set; this exercises the parallel checker and the
   service engine under that mode (defaulting to perpair). *)
let ci_mode =
  match Sys.getenv_opt "CEC_SWEEP_MODE" with
  | None -> Sweep.Perpair
  | Some s -> (
    match Sweep.mode_of_string s with
    | Some m -> m
    | None -> failwith (Printf.sprintf "CEC_SWEEP_MODE=%S not a sweep mode" s))

let test_stack_smoke_under_mode () =
  let case = Option.get (Suite.find "add4-rc-cla") in
  let golden = case.Suite.golden () and revised = case.Suite.revised () in
  let pconfig =
    { Parallel.default_config with Parallel.num_domains = 2; engine = engine ci_mode }
  in
  (match (Parallel.check ~config:pconfig golden revised).Parallel.verdict with
  | Cec.Equivalent cert -> check_certificate ~what:"parallel-smoke" golden revised cert
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "parallel smoke failed");
  let econfig =
    { Service.Engine.default_config with Service.Engine.jobs = 2; engine = engine ci_mode }
  in
  let result = Service.Engine.solve econfig golden revised in
  match result.Service.Engine.verdict with
  | Cec.Equivalent _ -> ()
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "service engine smoke failed"

let suites =
  [
    ( "sweep-differential",
      [
        Alcotest.test_case "small suite, both modes" `Slow test_small_suite_differential;
        Alcotest.test_case "inequivalent fixtures replay" `Quick test_inequivalent_fixtures;
        Alcotest.test_case "contradictory assumptions" `Quick
          test_contradictory_assumptions_regression;
        Alcotest.test_case "stack smoke under CEC_SWEEP_MODE" `Quick test_stack_smoke_under_mode;
        prop_random_differential;
        prop_incremental_chain_ids;
        prop_incremental_trace_fuzz;
      ] );
  ]
