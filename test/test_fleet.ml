(* The fleet layer: consistent-hash ring properties (balance and
   monotonicity, as qcheck properties), address parsing, bounded
   connects, admission control, health tracking, snapshot merging, and
   a full loopback fleet — three TCP shards behind the router, one
   killed mid-run — with every certificate re-verified by the
   streaming checker. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Certify = Cec_core.Certify
module Addr = Service.Addr
module Key = Service.Key
module Protocol = Service.Protocol
module Server = Service.Server
module Store = Service.Store
module Ring = Fleet.Ring
module Health = Fleet.Health
module Admission = Fleet.Admission
module Snapshot = Fleet.Snapshot
module Router = Fleet.Router

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* --- ring --- *)

let test_ring_basics () =
  let ring = Ring.create [ "s0"; "s1"; "s2" ] in
  Alcotest.(check (list string)) "shards sorted" [ "s0"; "s1"; "s2" ] (Ring.shards ring);
  Alcotest.(check int) "vnodes default" Ring.default_vnodes (Ring.vnodes ring);
  (match Ring.lookup ~n:2 ring "some-key" with
  | [ a; b ] ->
    Alcotest.(check bool) "replicas distinct" true (a <> b);
    Alcotest.(check (option string)) "primary is owner" (Some a) (Ring.owner ring "some-key")
  | other -> Alcotest.failf "expected 2 replicas, got %d" (List.length other));
  Alcotest.(check (list string))
    "n beyond shard count saturates" (Ring.shards ring)
    (List.sort compare (Ring.lookup ~n:10 ring "some-key"));
  (* Deterministic: same ring value, same answer. *)
  Alcotest.(check (list string))
    "lookup deterministic" (Ring.lookup ~n:3 ring "k") (Ring.lookup ~n:3 ring "k");
  (* Rejections. *)
  List.iter
    (fun ids ->
      match Ring.create ids with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "ring accepted %s" (String.concat "," ids))
    [ []; [ "dup"; "dup" ]; [ "" ] ]

let test_ring_balance () =
  (* Deterministic balance check: many keys over 8 shards must spread
     within a loose factor of fair share (the ring hash is fixed, so
     this cannot flake). *)
  let shards = List.init 8 (fun i -> Printf.sprintf "shard-%d" i) in
  let ring = Ring.create shards in
  let keys = 4000 in
  let counts = Hashtbl.create 8 in
  for i = 0 to keys - 1 do
    match Ring.owner ring (Printf.sprintf "key-%d" i) with
    | Some s -> Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
    | None -> Alcotest.fail "owner on a non-empty ring"
  done;
  let fair = keys / 8 in
  List.iter
    (fun s ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      if n < fair / 3 || n > fair * 3 then
        Alcotest.failf "shard %s owns %d keys (fair share %d)" s n fair)
    shards

let arb_key = QCheck.(string_gen_of_size (Gen.int_range 1 24) Gen.printable)

let ring_monotonic_add =
  qtest "ring: adding a shard only moves keys to it" arb_key (fun key ->
      let before = Ring.create [ "a"; "b"; "c"; "d"; "e" ] in
      let after = Ring.add before "f" in
      match (Ring.owner before key, Ring.owner after key) with
      | Some o, Some o' -> o' = o || o' = "f"
      | _ -> false)

let ring_monotonic_remove =
  qtest "ring: removing a shard only moves its own keys" arb_key (fun key ->
      let before = Ring.create [ "a"; "b"; "c"; "d"; "e" ] in
      let after = Ring.remove before "c" in
      match (Ring.owner before key, Ring.owner after key) with
      | Some "c", Some o' -> o' <> "c"
      | Some o, Some o' -> o' = o
      | _ -> false)

let ring_replicas_distinct =
  qtest "ring: replica sets are distinct and stable under add" arb_key (fun key ->
      let ring = Ring.create [ "a"; "b"; "c"; "d" ] in
      let reps = Ring.lookup ~n:3 ring key in
      List.length reps = 3 && List.length (List.sort_uniq compare reps) = 3)

let test_ring_movement_fraction () =
  (* Growing 8 -> 9 shards should move roughly 1/9th of the keys; a
     bound of 1/3 leaves lots of room for vnode placement noise while
     still catching a modulo-style rehash (which moves ~8/9). *)
  let shards = List.init 8 (fun i -> Printf.sprintf "shard-%d" i) in
  let before = Ring.create shards in
  let after = Ring.add before "shard-8" in
  let keys = 3000 in
  let moved = ref 0 in
  for i = 0 to keys - 1 do
    let key = Printf.sprintf "key-%d" i in
    if Ring.owner before key <> Ring.owner after key then incr moved
  done;
  if !moved = 0 then Alcotest.fail "no key moved at all";
  if !moved > keys / 3 then
    Alcotest.failf "%d of %d keys moved on one join (expected ~%d)" !moved keys (keys / 9)

(* --- addresses --- *)

let test_addr_parse () =
  let ok spec expected =
    match Addr.parse spec with
    | Ok a when Addr.equal a expected -> ()
    | Ok a -> Alcotest.failf "%S parsed to %s" spec (Addr.to_string a)
    | Error msg -> Alcotest.failf "%S rejected: %s" spec msg
  in
  ok "/tmp/cecd.sock" (Addr.Unix_path "/tmp/cecd.sock");
  ok "cecd.sock" (Addr.Unix_path "cecd.sock");
  ok "127.0.0.1:7311" (Addr.Tcp ("127.0.0.1", 7311));
  ok ":7311" (Addr.Tcp ("", 7311));
  ok "localhost:0" (Addr.Tcp ("localhost", 0));
  (* A path containing '/' is never TCP, digits or not. *)
  ok "/var/run/cecd:1.sock" (Addr.Unix_path "/var/run/cecd:1.sock");
  List.iter
    (fun spec ->
      match Addr.parse spec with
      | Ok a -> Alcotest.failf "%S accepted as %s" spec (Addr.to_string a)
      | Error _ -> ())
    [ ""; "host:99999"; "host:-1" ];
  List.iter
    (fun spec ->
      match Addr.parse spec with
      | Ok a -> Alcotest.(check string) "round-trips" spec (Addr.to_string a)
      | Error msg -> Alcotest.failf "%S rejected: %s" spec msg)
    [ "/tmp/x.sock"; "127.0.0.1:7311"; ":7311" ]

let test_connect_timeout () =
  (* A true black-holed peer cannot be simulated hermetically (CI
     sandboxes may proxy or reject any address), so the deadline path
     is pinned from both reachable sides: a connect that completes must
     hand back a *blocking* descriptor that works, and a refused
     connect must surface as an error within a bound far under the
     kernel's minutes-long own timeout. *)
  let lfd, addr = Addr.bind_listen (Addr.Tcp ("127.0.0.1", 0)) in
  Fun.protect ~finally:(fun () -> Unix.close lfd) (fun () ->
      let fd = Addr.connect ~timeout_ms:500. addr in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let peer, _ = Unix.accept lfd in
          Fun.protect ~finally:(fun () -> Unix.close peer) (fun () ->
              (* The socket must be back in blocking mode: a one-line
                 exchange round-trips. *)
              Service.Wire.write_line fd "ping-bytes";
              match Service.Wire.read_line peer with
              | Ok "ping-bytes" -> ()
              | Ok other -> Alcotest.failf "garbled line %S" other
              | Error msg -> Alcotest.fail msg)));
  let port = match addr with Addr.Tcp (_, p) -> p | _ -> Alcotest.fail "tcp addr" in
  let started = Unix.gettimeofday () in
  (match Addr.connect ~timeout_ms:200. (Addr.Tcp ("127.0.0.1", port)) with
  | fd ->
    Unix.close fd;
    Alcotest.fail "connect to a closed listener succeeded"
  | exception Unix.Unix_error _ -> ());
  let elapsed = Unix.gettimeofday () -. started in
  if elapsed > 5.0 then Alcotest.failf "connect took %.1fs despite a 200ms timeout" elapsed;
  (* And the retrying client honours the configured bound end to end:
     a dead Unix socket fails fast instead of hanging. *)
  let config =
    {
      Service.Client.default_config with
      Service.Client.retries = 1;
      base_delay_ms = 1.;
      connect_timeout_ms = Some 200.;
    }
  in
  match Service.Client.request_to ~config [ Addr.Unix_path "/nonexistent/cecd.sock" ] "ping" with
  | Ok _ -> Alcotest.fail "request to a nonexistent socket succeeded"
  | Error _ -> ()

(* --- admission and health --- *)

let test_admission () =
  let adm = Admission.create ~capacity:2 in
  Alcotest.(check bool) "slot 1" true (Admission.try_acquire adm);
  Alcotest.(check bool) "slot 2" true (Admission.try_acquire adm);
  Alcotest.(check bool) "cap reached" false (Admission.try_acquire adm);
  Alcotest.(check int) "in flight" 2 (Admission.in_flight adm);
  Admission.release adm;
  Alcotest.(check bool) "slot freed" true (Admission.try_acquire adm);
  Admission.release adm;
  Admission.release adm;
  (match Admission.release adm with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double release accepted");
  Alcotest.(check (option int)) "with_slot runs" (Some 7) (Admission.with_slot adm (fun () -> 7));
  Alcotest.(check int) "with_slot releases" 0 (Admission.in_flight adm)

let test_health () =
  let h = Health.create ~failure_threshold:2 () in
  Alcotest.(check bool) "starts up" true (Health.up h);
  Alcotest.(check bool) "first failure tolerated" false (Health.record_failure h);
  Alcotest.(check bool) "still up" true (Health.up h);
  Alcotest.(check bool) "second failure transitions" true (Health.record_failure h);
  Alcotest.(check bool) "down" false (Health.up h);
  Alcotest.(check bool) "third failure is not a transition" false (Health.record_failure h);
  Alcotest.(check bool) "success transitions back" true (Health.record_success h);
  Alcotest.(check bool) "up again" true (Health.up h);
  Alcotest.(check bool) "success while up is quiet" false (Health.record_success h)

(* --- snapshot import --- *)

let test_snapshot_merge () =
  let shard = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter shard "service.proved") 3;
  Obs.Counter.add (Obs.Registry.counter shard "service.requests") 5;
  Obs.Gauge.set (Obs.Registry.gauge shard "service.uptime_s") 12.5;
  let line = Obs.Export.stats_json shard in
  let into = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter into "service.proved") 2;
  Obs.Gauge.set (Obs.Registry.gauge into "service.uptime_s") 20.0;
  (match Snapshot.merge_into into line with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "merge rejected a real export: %s" msg);
  Alcotest.(check int) "counters add" 5
    (Obs.Counter.get (Obs.Registry.counter into "service.proved"));
  Alcotest.(check int) "new counters appear" 5
    (Obs.Counter.get (Obs.Registry.counter into "service.requests"));
  Alcotest.(check (float 1e-9)) "gauges keep the max" 20.0
    (Obs.Gauge.get (Obs.Registry.gauge into "service.uptime_s"));
  (* Merging two shard snapshots is associative with the Obs merge:
     importing A then B equals importing B then A. *)
  let other = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter other "service.proved") 7;
  let line2 = Obs.Export.stats_json other in
  let ab = Obs.Registry.create () and ba = Obs.Registry.create () in
  List.iter (fun l -> Result.get_ok (Snapshot.merge_into ab l)) [ line; line2 ];
  List.iter (fun l -> Result.get_ok (Snapshot.merge_into ba l)) [ line2; line ];
  Alcotest.(check int) "import order does not matter"
    (Obs.Counter.get (Obs.Registry.counter ab "service.proved"))
    (Obs.Counter.get (Obs.Registry.counter ba "service.proved"))

let test_snapshot_rejects_garbage () =
  let into = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter into "kept") 1;
  List.iter
    (fun line ->
      match Snapshot.merge_into into line with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %S" line)
    [
      "";
      "{}";
      "nonsense";
      "{\"counters\":{\"a\":}}";
      "{\"counters\":{\"a\":1}";
      "{\"counters\":{\"UPPER\":1},\"gauges\":{}}";
      "{\"counters\":{\"a\":1,\"b\":nope},\"gauges\":{}}";
    ];
  Alcotest.(check int) "failed merges leave the registry untouched" 1
    (Obs.Counter.get (Obs.Registry.counter into "kept"))

(* --- the loopback fleet, end to end --- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

(* Capture the kernel-assigned address of a port-0 listener. *)
let addr_cell () =
  let cell = Atomic.make None in
  (cell, fun addr -> Atomic.set cell (Some addr))

let await_addr cell =
  let rec go n =
    if n = 0 then Alcotest.fail "listener did not report its address"
    else
      match Atomic.get cell with
      | Some addr -> addr
      | None ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 500

let request_exn addr line =
  match Server.request_addr addr line with
  | Ok response -> response
  | Error msg -> Alcotest.failf "request %S to %s failed: %s" line (Addr.to_string addr) msg

let field_exn name line =
  match Protocol.field name line with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks %S" line name

let await ~pred ~what =
  let rec go n =
    if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else if pred () then ()
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 200

(* Three normalized pairs with known verdicts and distinct keys. *)
let fleet_pairs () =
  let eq1_g = Key.normalize (Circuits.Adder.ripple_carry 4) in
  let eq1_r = Key.normalize (Circuits.Adder.carry_lookahead 4) in
  let eq2_g = Key.normalize (Circuits.Datapath.parity 8) in
  let eq2_r = Key.normalize (Circuits.Rewrite.double_negate (Circuits.Datapath.parity 8)) in
  let neq_g = Key.normalize (Circuits.Adder.ripple_carry 3) in
  let neq_r =
    let g = Circuits.Adder.ripple_carry 3 in
    Aig.set_output g 0 (Aig.Lit.neg (Aig.output g 0));
    Key.normalize g
  in
  [ (eq1_g, eq1_r, "equivalent"); (eq2_g, eq2_r, "equivalent"); (neq_g, neq_r, "inequivalent") ]

let test_fleet_end_to_end () =
  let dir = temp_dir "fleet-e2e" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pairs =
    List.mapi
      (fun i (golden, revised, expected) ->
        let gp = Filename.concat dir (Printf.sprintf "g%d.aig" i) in
        let rp = Filename.concat dir (Printf.sprintf "r%d.aig" i) in
        Aig.Aiger.write_file gp golden;
        Aig.Aiger.write_file rp revised;
        (golden, revised, gp, rp, expected))
      (fleet_pairs ())
  in
  (* Three shards on ephemeral TCP ports. *)
  let shard_ids = [ "s0"; "s1"; "s2" ] in
  let shards =
    List.map
      (fun id ->
        let store_dir = Filename.concat dir ("store-" ^ id) in
        let cell, on_listen = addr_cell () in
        let cfg =
          {
            (Server.default_config ~socket_path:"unused" ~store_dir) with
            Server.listen = [ Addr.Tcp ("127.0.0.1", 0) ];
            log = false;
            on_listen = (fun addrs -> on_listen (List.hd addrs));
          }
        in
        let domain = Domain.spawn (fun () -> Server.run cfg) in
        (id, store_dir, cell, domain))
      shard_ids
  in
  let shard_addrs =
    List.map (fun (id, _, cell, _) -> (id, await_addr cell)) shards
  in
  (* The router, also on an ephemeral port, with failover replicas. *)
  let router_cell, router_on_listen = addr_cell () in
  let router_cfg =
    {
      (Router.default_config
         ~listen:(Addr.Tcp ("127.0.0.1", 0))
         ~shards:(List.map (fun (id, addr) -> { Router.id; addr }) shard_addrs))
      with
      Router.replicas = 2;
      workers = 2;
      probe_interval_ms = 100.;
      connect_timeout_ms = 1000.;
      log = false;
      on_listen = router_on_listen;
    }
  in
  let router = Domain.spawn (fun () -> Router.run router_cfg) in
  let router_addr = await_addr router_cell in
  Alcotest.(check string) "router answers ping" "true"
    (field_exn "ok" (request_exn router_addr "ping"));

  (* Cold pass: every verdict correct, nothing cached. *)
  List.iter
    (fun (_, _, gp, rp, expected) ->
      let r = request_exn router_addr (Printf.sprintf "check %s %s" gp rp) in
      Alcotest.(check string) "cold verdict" expected (field_exn "status" r);
      Alcotest.(check string) "cold is a miss" "false" (field_exn "cached" r))
    pairs;

  (* Warm pass: served from the stores. *)
  List.iter
    (fun (_, _, gp, rp, expected) ->
      let r = request_exn router_addr (Printf.sprintf "check %s %s" gp rp) in
      Alcotest.(check string) "warm verdict" expected (field_exn "status" r);
      Alcotest.(check string) "warm is a hit" "true" (field_exn "cached" r))
    pairs;

  (* Every certificate reachable through the router path must also
     pass the streaming checker against a rebuilt miter formula — the
     fleet adds transport, not trust. *)
  let ring = Ring.create shard_ids in
  List.iter
    (fun (golden, revised, _, _, expected) ->
      if expected = "equivalent" then begin
        let key = Key.of_pair golden revised in
        let found = ref false in
        List.iter
          (fun (_, store_dir, _, _) ->
            let store = Store.create ~dir:store_dir () in
            match Store.find store key ~golden ~revised with
            | Some (Cec.Equivalent cert) ->
              found := true;
              let formula = Cnf.Tseitin.miter_formula (Aig.Miter.build golden revised) in
              let bytes = Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root in
              (match Proof.Stream_check.check ~formula bytes with
              | Ok _ -> ()
              | Error e ->
                Alcotest.failf "stored certificate fails the streaming checker: %a"
                  Proof.Stream_check.pp_error e)
            | _ -> ())
          shards;
        if not !found then Alcotest.fail "certificate not found in any shard store"
      end)
    pairs;

  (* Wait until the background replicator has warmed the standby
     replicas (three fresh verdicts, replicas = 2 => three replays). *)
  await
    ~pred:(fun () ->
      int_of_string (field_exn "replicated" (request_exn router_addr "stats")) >= 3)
    ~what:"warm replication to standby replicas";

  (* Kill the primary owner of the first pair mid-run... *)
  let _, _, gp0, rp0, expected0 = List.hd pairs in
  let golden0, revised0, _, _, _ = List.hd pairs in
  let key0 = Key.to_hex (Key.of_pair golden0 revised0) in
  let primary0 =
    match Ring.owner ring key0 with Some s -> s | None -> Alcotest.fail "no owner"
  in
  let killed_addr = List.assoc primary0 shard_addrs in
  Alcotest.(check string) "shard drains" "true"
    (field_exn "draining" (request_exn killed_addr "shutdown"));
  List.iter
    (fun (id, _, _, domain) -> if id = primary0 then ignore (Domain.join domain))
    shards;

  (* ...and the fleet must still answer it correctly (replica hit). *)
  let r = request_exn router_addr (Printf.sprintf "check %s %s" gp0 rp0) in
  Alcotest.(check string) "verdict survives the shard loss" expected0 (field_exn "status" r);
  Alcotest.(check string) "failover hit is warm" "true" (field_exn "cached" r);
  await
    ~pred:(fun () ->
      int_of_string (field_exn "failovers" (request_exn router_addr "stats")) >= 1)
    ~what:"a recorded failover";
  let stats = request_exn router_addr "stats" in
  Alcotest.(check string) "no unavailable responses" "0" (field_exn "unavailable" stats);
  Alcotest.(check string) "dead shard observed" "2" (field_exn "shards_up" stats);

  (* The aggregated fleet snapshot still exports and carries both the
     router's and the surviving shards' counters. *)
  let metrics = request_exn router_addr "metrics" in
  (match Snapshot.counters metrics with
  | Ok counters ->
    let get name = Option.value ~default:0 (List.assoc_opt name counters) in
    Alcotest.(check bool) "fleet counters present" true (get "fleet.forwarded" >= 7);
    Alcotest.(check bool) "shard counters merged" true (get "service.proved" >= 2)
  | Error msg -> Alcotest.failf "fleet snapshot unparsable: %s" msg);

  (* Drain everything. *)
  Alcotest.(check string) "router drains" "true"
    (field_exn "draining" (request_exn router_addr "shutdown"));
  let final = Domain.join router in
  Alcotest.(check bool) "final registry has the failover" true
    (Obs.Counter.get (Obs.Registry.counter final "fleet.failovers") >= 1);
  List.iter
    (fun (id, _, _, domain) ->
      if id <> primary0 then begin
        ignore (request_exn (List.assoc id shard_addrs) "shutdown");
        ignore (Domain.join domain)
      end)
    shards

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring balance" `Quick test_ring_balance;
        ring_monotonic_add;
        ring_monotonic_remove;
        ring_replicas_distinct;
        Alcotest.test_case "ring movement on join" `Quick test_ring_movement_fraction;
        Alcotest.test_case "addr parse" `Quick test_addr_parse;
        Alcotest.test_case "connect timeout is bounded" `Quick test_connect_timeout;
        Alcotest.test_case "admission" `Quick test_admission;
        Alcotest.test_case "health" `Quick test_health;
        Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
        Alcotest.test_case "snapshot rejects garbage" `Quick test_snapshot_rejects_garbage;
        Alcotest.test_case "loopback fleet end to end" `Slow test_fleet_end_to_end;
      ] );
  ]
