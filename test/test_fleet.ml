(* The fleet layer: consistent-hash ring properties (balance and
   monotonicity, as qcheck properties), address parsing, bounded
   connects, admission control, health tracking, snapshot merging, and
   a full loopback fleet — three TCP shards behind the router, one
   killed mid-run — with every certificate re-verified by the
   streaming checker. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Certify = Cec_core.Certify
module Addr = Service.Addr
module Key = Service.Key
module Protocol = Service.Protocol
module Server = Service.Server
module Store = Service.Store
module Ring = Fleet.Ring
module Health = Fleet.Health
module Admission = Fleet.Admission
module Snapshot = Fleet.Snapshot
module Router = Fleet.Router

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* --- ring --- *)

let test_ring_basics () =
  let ring = Ring.create [ "s0"; "s1"; "s2" ] in
  Alcotest.(check (list string)) "shards sorted" [ "s0"; "s1"; "s2" ] (Ring.shards ring);
  Alcotest.(check int) "vnodes default" Ring.default_vnodes (Ring.vnodes ring);
  (match Ring.lookup ~n:2 ring "some-key" with
  | [ a; b ] ->
    Alcotest.(check bool) "replicas distinct" true (a <> b);
    Alcotest.(check (option string)) "primary is owner" (Some a) (Ring.owner ring "some-key")
  | other -> Alcotest.failf "expected 2 replicas, got %d" (List.length other));
  Alcotest.(check (list string))
    "n beyond shard count saturates" (Ring.shards ring)
    (List.sort compare (Ring.lookup ~n:10 ring "some-key"));
  (* Deterministic: same ring value, same answer. *)
  Alcotest.(check (list string))
    "lookup deterministic" (Ring.lookup ~n:3 ring "k") (Ring.lookup ~n:3 ring "k");
  (* Rejections. *)
  List.iter
    (fun ids ->
      match Ring.create ids with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "ring accepted %s" (String.concat "," ids))
    [ []; [ "dup"; "dup" ]; [ "" ] ]

let test_ring_balance () =
  (* Deterministic balance check: many keys over 8 shards must spread
     within a loose factor of fair share (the ring hash is fixed, so
     this cannot flake). *)
  let shards = List.init 8 (fun i -> Printf.sprintf "shard-%d" i) in
  let ring = Ring.create shards in
  let keys = 4000 in
  let counts = Hashtbl.create 8 in
  for i = 0 to keys - 1 do
    match Ring.owner ring (Printf.sprintf "key-%d" i) with
    | Some s -> Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
    | None -> Alcotest.fail "owner on a non-empty ring"
  done;
  let fair = keys / 8 in
  List.iter
    (fun s ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      if n < fair / 3 || n > fair * 3 then
        Alcotest.failf "shard %s owns %d keys (fair share %d)" s n fair)
    shards

let arb_key = QCheck.(string_gen_of_size (Gen.int_range 1 24) Gen.printable)

let ring_monotonic_add =
  qtest "ring: adding a shard only moves keys to it" arb_key (fun key ->
      let before = Ring.create [ "a"; "b"; "c"; "d"; "e" ] in
      let after = Ring.add before "f" in
      match (Ring.owner before key, Ring.owner after key) with
      | Some o, Some o' -> o' = o || o' = "f"
      | _ -> false)

let ring_monotonic_remove =
  qtest "ring: removing a shard only moves its own keys" arb_key (fun key ->
      let before = Ring.create [ "a"; "b"; "c"; "d"; "e" ] in
      let after = Ring.remove before "c" in
      match (Ring.owner before key, Ring.owner after key) with
      | Some "c", Some o' -> o' <> "c"
      | Some o, Some o' -> o' = o
      | _ -> false)

let ring_replicas_distinct =
  qtest "ring: replica sets are distinct and stable under add" arb_key (fun key ->
      let ring = Ring.create [ "a"; "b"; "c"; "d" ] in
      let reps = Ring.lookup ~n:3 ring key in
      List.length reps = 3 && List.length (List.sort_uniq compare reps) = 3)

let test_ring_movement_fraction () =
  (* Growing 8 -> 9 shards should move roughly 1/9th of the keys; a
     bound of 1/3 leaves lots of room for vnode placement noise while
     still catching a modulo-style rehash (which moves ~8/9). *)
  let shards = List.init 8 (fun i -> Printf.sprintf "shard-%d" i) in
  let before = Ring.create shards in
  let after = Ring.add before "shard-8" in
  let keys = 3000 in
  let moved = ref 0 in
  for i = 0 to keys - 1 do
    let key = Printf.sprintf "key-%d" i in
    if Ring.owner before key <> Ring.owner after key then incr moved
  done;
  if !moved = 0 then Alcotest.fail "no key moved at all";
  if !moved > keys / 3 then
    Alcotest.failf "%d of %d keys moved on one join (expected ~%d)" !moved keys (keys / 9)

let test_moved_fraction_estimate () =
  (* The sampled estimator the router reports at reconfiguration must
     agree with the movement bound pinned above. *)
  let shards = List.init 8 (fun i -> Printf.sprintf "shard-%d" i) in
  let before = Ring.create shards in
  let after = Ring.add before "shard-8" in
  let f = Ring.moved_fraction ~before ~after () in
  if f <= 0.0 || f > 1.0 /. 3.0 then
    Alcotest.failf "moved fraction %.3f outside (0, 1/3] on an 8->9 join" f;
  Alcotest.(check (float 1e-9)) "identical rings move nothing" 0.0
    (Ring.moved_fraction ~before ~after:before ());
  (match Ring.moved_fraction ~keys:0 ~before ~after () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "keys=0 accepted")

(* --- addresses --- *)

let test_addr_parse () =
  let ok spec expected =
    match Addr.parse spec with
    | Ok a when Addr.equal a expected -> ()
    | Ok a -> Alcotest.failf "%S parsed to %s" spec (Addr.to_string a)
    | Error msg -> Alcotest.failf "%S rejected: %s" spec msg
  in
  ok "/tmp/cecd.sock" (Addr.Unix_path "/tmp/cecd.sock");
  ok "cecd.sock" (Addr.Unix_path "cecd.sock");
  ok "127.0.0.1:7311" (Addr.Tcp ("127.0.0.1", 7311));
  ok ":7311" (Addr.Tcp ("", 7311));
  ok "localhost:0" (Addr.Tcp ("localhost", 0));
  (* A path containing '/' is never TCP, digits or not. *)
  ok "/var/run/cecd:1.sock" (Addr.Unix_path "/var/run/cecd:1.sock");
  List.iter
    (fun spec ->
      match Addr.parse spec with
      | Ok a -> Alcotest.failf "%S accepted as %s" spec (Addr.to_string a)
      | Error _ -> ())
    [ ""; "host:99999"; "host:-1" ];
  List.iter
    (fun spec ->
      match Addr.parse spec with
      | Ok a -> Alcotest.(check string) "round-trips" spec (Addr.to_string a)
      | Error msg -> Alcotest.failf "%S rejected: %s" spec msg)
    [ "/tmp/x.sock"; "127.0.0.1:7311"; ":7311" ]

let test_connect_timeout () =
  (* A true black-holed peer cannot be simulated hermetically (CI
     sandboxes may proxy or reject any address), so the deadline path
     is pinned from both reachable sides: a connect that completes must
     hand back a *blocking* descriptor that works, and a refused
     connect must surface as an error within a bound far under the
     kernel's minutes-long own timeout. *)
  let lfd, addr = Addr.bind_listen (Addr.Tcp ("127.0.0.1", 0)) in
  Fun.protect ~finally:(fun () -> Unix.close lfd) (fun () ->
      let fd = Addr.connect ~timeout_ms:500. addr in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let peer, _ = Unix.accept lfd in
          Fun.protect ~finally:(fun () -> Unix.close peer) (fun () ->
              (* The socket must be back in blocking mode: a one-line
                 exchange round-trips. *)
              Service.Wire.write_line fd "ping-bytes";
              match Service.Wire.read_line peer with
              | Ok "ping-bytes" -> ()
              | Ok other -> Alcotest.failf "garbled line %S" other
              | Error msg -> Alcotest.fail msg)));
  let port = match addr with Addr.Tcp (_, p) -> p | _ -> Alcotest.fail "tcp addr" in
  let started = Unix.gettimeofday () in
  (match Addr.connect ~timeout_ms:200. (Addr.Tcp ("127.0.0.1", port)) with
  | fd ->
    Unix.close fd;
    Alcotest.fail "connect to a closed listener succeeded"
  | exception Unix.Unix_error _ -> ());
  let elapsed = Unix.gettimeofday () -. started in
  if elapsed > 5.0 then Alcotest.failf "connect took %.1fs despite a 200ms timeout" elapsed;
  (* And the retrying client honours the configured bound end to end:
     a dead Unix socket fails fast instead of hanging. *)
  let config =
    {
      Service.Client.default_config with
      Service.Client.retries = 1;
      base_delay_ms = 1.;
      connect_timeout_ms = Some 200.;
    }
  in
  match Service.Client.request_to ~config [ Addr.Unix_path "/nonexistent/cecd.sock" ] "ping" with
  | Ok _ -> Alcotest.fail "request to a nonexistent socket succeeded"
  | Error _ -> ()

(* --- admission and health --- *)

let test_admission () =
  let adm = Admission.create ~capacity:2 in
  Alcotest.(check bool) "slot 1" true (Admission.try_acquire adm);
  Alcotest.(check bool) "slot 2" true (Admission.try_acquire adm);
  Alcotest.(check bool) "cap reached" false (Admission.try_acquire adm);
  Alcotest.(check int) "in flight" 2 (Admission.in_flight adm);
  Admission.release adm;
  Alcotest.(check bool) "slot freed" true (Admission.try_acquire adm);
  Admission.release adm;
  Admission.release adm;
  (match Admission.release adm with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double release accepted");
  Alcotest.(check (option int)) "with_slot runs" (Some 7) (Admission.with_slot adm (fun () -> 7));
  Alcotest.(check int) "with_slot releases" 0 (Admission.in_flight adm)

let test_health () =
  let h = Health.create ~failure_threshold:2 () in
  Alcotest.(check bool) "starts up" true (Health.up h);
  Alcotest.(check bool) "first failure tolerated" false (Health.record_failure h);
  Alcotest.(check bool) "still up" true (Health.up h);
  Alcotest.(check bool) "second failure transitions" true (Health.record_failure h);
  Alcotest.(check bool) "down" false (Health.up h);
  Alcotest.(check bool) "third failure is not a transition" false (Health.record_failure h);
  Alcotest.(check bool) "success transitions back" true (Health.record_success h);
  Alcotest.(check bool) "up again" true (Health.up h);
  Alcotest.(check bool) "success while up is quiet" false (Health.record_success h)

(* --- snapshot import --- *)

let test_snapshot_merge () =
  let shard = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter shard "service.proved") 3;
  Obs.Counter.add (Obs.Registry.counter shard "service.requests") 5;
  Obs.Gauge.set (Obs.Registry.gauge shard "service.uptime_s") 12.5;
  let line = Obs.Export.stats_json shard in
  let into = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter into "service.proved") 2;
  Obs.Gauge.set (Obs.Registry.gauge into "service.uptime_s") 20.0;
  (match Snapshot.merge_into into line with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "merge rejected a real export: %s" msg);
  Alcotest.(check int) "counters add" 5
    (Obs.Counter.get (Obs.Registry.counter into "service.proved"));
  Alcotest.(check int) "new counters appear" 5
    (Obs.Counter.get (Obs.Registry.counter into "service.requests"));
  Alcotest.(check (float 1e-9)) "gauges keep the max" 20.0
    (Obs.Gauge.get (Obs.Registry.gauge into "service.uptime_s"));
  (* Merging two shard snapshots is associative with the Obs merge:
     importing A then B equals importing B then A. *)
  let other = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter other "service.proved") 7;
  let line2 = Obs.Export.stats_json other in
  let ab = Obs.Registry.create () and ba = Obs.Registry.create () in
  List.iter (fun l -> Result.get_ok (Snapshot.merge_into ab l)) [ line; line2 ];
  List.iter (fun l -> Result.get_ok (Snapshot.merge_into ba l)) [ line2; line ];
  Alcotest.(check int) "import order does not matter"
    (Obs.Counter.get (Obs.Registry.counter ab "service.proved"))
    (Obs.Counter.get (Obs.Registry.counter ba "service.proved"))

let test_snapshot_rejects_garbage () =
  let into = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter into "kept") 1;
  List.iter
    (fun line ->
      match Snapshot.merge_into into line with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %S" line)
    [
      "";
      "{}";
      "nonsense";
      "{\"counters\":{\"a\":}}";
      "{\"counters\":{\"a\":1}";
      "{\"counters\":{\"UPPER\":1},\"gauges\":{}}";
      "{\"counters\":{\"a\":1,\"b\":nope},\"gauges\":{}}";
    ];
  Alcotest.(check int) "failed merges leave the registry untouched" 1
    (Obs.Counter.get (Obs.Registry.counter into "kept"))

(* --- the loopback fleet, end to end --- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

(* Capture the kernel-assigned address of a port-0 listener. *)
let addr_cell () =
  let cell = Atomic.make None in
  (cell, fun addr -> Atomic.set cell (Some addr))

let await_addr cell =
  let rec go n =
    if n = 0 then Alcotest.fail "listener did not report its address"
    else
      match Atomic.get cell with
      | Some addr -> addr
      | None ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 500

let request_exn addr line =
  match Server.request_addr addr line with
  | Ok response -> response
  | Error msg -> Alcotest.failf "request %S to %s failed: %s" line (Addr.to_string addr) msg

let field_exn name line =
  match Protocol.field name line with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks %S" line name

let await ~pred ~what =
  let rec go n =
    if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else if pred () then ()
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 200

(* Three normalized pairs with known verdicts and distinct keys. *)
let fleet_pairs () =
  let eq1_g = Key.normalize (Circuits.Adder.ripple_carry 4) in
  let eq1_r = Key.normalize (Circuits.Adder.carry_lookahead 4) in
  let eq2_g = Key.normalize (Circuits.Datapath.parity 8) in
  let eq2_r = Key.normalize (Circuits.Rewrite.double_negate (Circuits.Datapath.parity 8)) in
  let neq_g = Key.normalize (Circuits.Adder.ripple_carry 3) in
  let neq_r =
    let g = Circuits.Adder.ripple_carry 3 in
    Aig.set_output g 0 (Aig.Lit.neg (Aig.output g 0));
    Key.normalize g
  in
  [ (eq1_g, eq1_r, "equivalent"); (eq2_g, eq2_r, "equivalent"); (neq_g, neq_r, "inequivalent") ]

let test_fleet_end_to_end () =
  let dir = temp_dir "fleet-e2e" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pairs =
    List.mapi
      (fun i (golden, revised, expected) ->
        let gp = Filename.concat dir (Printf.sprintf "g%d.aig" i) in
        let rp = Filename.concat dir (Printf.sprintf "r%d.aig" i) in
        Aig.Aiger.write_file gp golden;
        Aig.Aiger.write_file rp revised;
        (golden, revised, gp, rp, expected))
      (fleet_pairs ())
  in
  (* Three shards on ephemeral TCP ports. *)
  let shard_ids = [ "s0"; "s1"; "s2" ] in
  let shards =
    List.map
      (fun id ->
        let store_dir = Filename.concat dir ("store-" ^ id) in
        let cell, on_listen = addr_cell () in
        let cfg =
          {
            (Server.default_config ~socket_path:"unused" ~store_dir) with
            Server.listen = [ Addr.Tcp ("127.0.0.1", 0) ];
            log = false;
            on_listen = (fun addrs -> on_listen (List.hd addrs));
          }
        in
        let domain = Domain.spawn (fun () -> Server.run cfg) in
        (id, store_dir, cell, domain))
      shard_ids
  in
  let shard_addrs =
    List.map (fun (id, _, cell, _) -> (id, await_addr cell)) shards
  in
  (* The router, also on an ephemeral port, with failover replicas. *)
  let router_cell, router_on_listen = addr_cell () in
  let router_cfg =
    {
      (Router.default_config
         ~listen:(Addr.Tcp ("127.0.0.1", 0))
         ~shards:(List.map (fun (id, addr) -> { Router.id; addr }) shard_addrs))
      with
      Router.replicas = 2;
      workers = 2;
      probe_interval_ms = 100.;
      connect_timeout_ms = 1000.;
      log = false;
      on_listen = router_on_listen;
    }
  in
  let router = Domain.spawn (fun () -> Router.run router_cfg) in
  let router_addr = await_addr router_cell in
  Alcotest.(check string) "router answers ping" "true"
    (field_exn "ok" (request_exn router_addr "ping"));

  (* Cold pass: every verdict correct, nothing cached. *)
  List.iter
    (fun (_, _, gp, rp, expected) ->
      let r = request_exn router_addr (Printf.sprintf "check %s %s" gp rp) in
      Alcotest.(check string) "cold verdict" expected (field_exn "status" r);
      Alcotest.(check string) "cold is a miss" "false" (field_exn "cached" r))
    pairs;

  (* Warm pass: served from the stores. *)
  List.iter
    (fun (_, _, gp, rp, expected) ->
      let r = request_exn router_addr (Printf.sprintf "check %s %s" gp rp) in
      Alcotest.(check string) "warm verdict" expected (field_exn "status" r);
      Alcotest.(check string) "warm is a hit" "true" (field_exn "cached" r))
    pairs;

  (* Every certificate reachable through the router path must also
     pass the streaming checker against a rebuilt miter formula — the
     fleet adds transport, not trust. *)
  let ring = Ring.create shard_ids in
  List.iter
    (fun (golden, revised, _, _, expected) ->
      if expected = "equivalent" then begin
        let key = Key.of_pair golden revised in
        let found = ref false in
        List.iter
          (fun (_, store_dir, _, _) ->
            let store = Store.create ~dir:store_dir () in
            match Store.find store key ~golden ~revised with
            | Some (Cec.Equivalent cert) ->
              found := true;
              let formula = Cnf.Tseitin.miter_formula (Aig.Miter.build golden revised) in
              let bytes = Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root in
              (match Proof.Stream_check.check ~formula bytes with
              | Ok _ -> ()
              | Error e ->
                Alcotest.failf "stored certificate fails the streaming checker: %a"
                  Proof.Stream_check.pp_error e)
            | _ -> ())
          shards;
        if not !found then Alcotest.fail "certificate not found in any shard store"
      end)
    pairs;

  (* Wait until the background replicator has warmed the standby
     replicas (three fresh verdicts, replicas = 2 => three replays). *)
  await
    ~pred:(fun () ->
      int_of_string (field_exn "replicated" (request_exn router_addr "stats")) >= 3)
    ~what:"warm replication to standby replicas";

  (* Kill the primary owner of the first pair mid-run... *)
  let _, _, gp0, rp0, expected0 = List.hd pairs in
  let golden0, revised0, _, _, _ = List.hd pairs in
  let key0 = Key.to_hex (Key.of_pair golden0 revised0) in
  let primary0 =
    match Ring.owner ring key0 with Some s -> s | None -> Alcotest.fail "no owner"
  in
  let killed_addr = List.assoc primary0 shard_addrs in
  Alcotest.(check string) "shard drains" "true"
    (field_exn "draining" (request_exn killed_addr "shutdown"));
  List.iter
    (fun (id, _, _, domain) -> if id = primary0 then ignore (Domain.join domain))
    shards;

  (* ...and the fleet must still answer it correctly (replica hit). *)
  let r = request_exn router_addr (Printf.sprintf "check %s %s" gp0 rp0) in
  Alcotest.(check string) "verdict survives the shard loss" expected0 (field_exn "status" r);
  Alcotest.(check string) "failover hit is warm" "true" (field_exn "cached" r);
  await
    ~pred:(fun () ->
      int_of_string (field_exn "failovers" (request_exn router_addr "stats")) >= 1)
    ~what:"a recorded failover";
  let stats = request_exn router_addr "stats" in
  Alcotest.(check string) "no unavailable responses" "0" (field_exn "unavailable" stats);
  Alcotest.(check string) "dead shard observed" "2" (field_exn "shards_up" stats);

  (* The aggregated fleet snapshot still exports and carries both the
     router's and the surviving shards' counters. *)
  let metrics = request_exn router_addr "metrics" in
  (match Snapshot.counters metrics with
  | Ok counters ->
    let get name = Option.value ~default:0 (List.assoc_opt name counters) in
    Alcotest.(check bool) "fleet counters present" true (get "fleet.forwarded" >= 7);
    Alcotest.(check bool) "shard counters merged" true (get "service.proved" >= 2)
  | Error msg -> Alcotest.failf "fleet snapshot unparsable: %s" msg);

  (* Drain everything. *)
  Alcotest.(check string) "router drains" "true"
    (field_exn "draining" (request_exn router_addr "shutdown"));
  let final = Domain.join router in
  Alcotest.(check bool) "final registry has the failover" true
    (Obs.Counter.get (Obs.Registry.counter final "fleet.failovers") >= 1);
  List.iter
    (fun (id, _, _, domain) ->
      if id <> primary0 then begin
        ignore (request_exn (List.assoc id shard_addrs) "shutdown");
        ignore (Domain.join domain)
      end)
    shards

(* --- live reconfiguration, deadlines, coalescing, shedding --- *)

let start_shard dir id =
  let store_dir = Filename.concat dir ("store-" ^ id) in
  let cell, on_listen = addr_cell () in
  let cfg =
    {
      (Server.default_config ~socket_path:"unused" ~store_dir) with
      Server.listen = [ Addr.Tcp ("127.0.0.1", 0) ];
      log = false;
      on_listen = (fun addrs -> on_listen (List.hd addrs));
    }
  in
  let domain = Domain.spawn (fun () -> Server.run cfg) in
  (id, await_addr cell, domain)

let stop_shard (_, addr, domain) =
  ignore (request_exn addr "shutdown");
  ignore (Domain.join domain)

let start_router ?(replicas = 1) ?(workers = 4) ?(max_inflight = 8) ?(queue_capacity = 128)
    shards =
  let cell, on_listen = addr_cell () in
  let cfg =
    {
      (Router.default_config
         ~listen:(Addr.Tcp ("127.0.0.1", 0))
         ~shards:(List.map (fun (id, addr, _) -> { Router.id; addr }) shards))
      with
      Router.replicas;
      workers;
      max_inflight;
      queue_capacity;
      probe_interval_ms = 100.;
      connect_timeout_ms = 1000.;
      log = false;
      on_listen;
    }
  in
  let domain = Domain.spawn (fun () -> Router.run cfg) in
  (await_addr cell, domain)

let stop_router addr domain =
  ignore (request_exn addr "shutdown");
  ignore (Domain.join domain)

let fault_spec s =
  match Fault.parse s with Ok spec -> spec | Error msg -> Alcotest.fail msg

let test_fleet_reconfiguration () =
  let dir = temp_dir "fleet-reconf" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pairs =
    List.mapi
      (fun i (golden, revised, expected) ->
        let gp = Filename.concat dir (Printf.sprintf "g%d.aig" i) in
        let rp = Filename.concat dir (Printf.sprintf "r%d.aig" i) in
        Aig.Aiger.write_file gp golden;
        Aig.Aiger.write_file rp revised;
        (gp, rp, expected))
      (fleet_pairs ())
  in
  let s0 = start_shard dir "s0" and s1 = start_shard dir "s1" in
  (* s2's daemon is up from the start; it just isn't in the ring yet. *)
  let s2 = start_shard dir "s2" in
  let router_addr, router = start_router ~replicas:2 [ s0; s1 ] in
  let check_all what =
    List.iter
      (fun (gp, rp, expected) ->
        let r = request_exn router_addr (Printf.sprintf "check %s %s" gp rp) in
        Alcotest.(check string) (what ^ " verdict") expected (field_exn "status" r))
      pairs
  in
  let stat name = field_exn name (request_exn router_addr "stats") in
  Alcotest.(check string) "two shards at boot" "2" (stat "shards");
  Alcotest.(check string) "epoch starts at zero" "0" (stat "epoch");
  check_all "pre-join";

  (* Join the standby daemon: no restart, epoch bump, bounded movement. *)
  let _, s2_addr, _ = s2 in
  let join_line = Printf.sprintf "join s2 %s" (Addr.to_string s2_addr) in
  let r = request_exn router_addr join_line in
  Alcotest.(check string) "join ok" "true" (field_exn "ok" r);
  Alcotest.(check string) "join bumps the epoch" "1" (field_exn "epoch" r);
  let moved = float_of_string (field_exn "moved_fraction" r) in
  if moved <= 0.0 || moved > 0.67 then
    Alcotest.failf "2->3 join reports moved fraction %.3f, outside (0, 2/3]" moved;
  Alcotest.(check string) "three shards after join" "3" (stat "shards");
  (match Protocol.field "error" (request_exn router_addr join_line) with
  | Some _ -> ()
  | None -> Alcotest.fail "duplicate join accepted");
  check_all "post-join";

  (* Drain: replica-only, still a member, no epoch bump. *)
  let r = request_exn router_addr "drain s2" in
  Alcotest.(check string) "drain ok" "true" (field_exn "ok" r);
  Alcotest.(check string) "drain keeps the epoch" "1" (field_exn "epoch" r);
  Alcotest.(check string) "draining visible in stats" "1" (stat "shards_draining");
  Alcotest.(check string) "drained shard still counted" "3" (stat "shards");
  check_all "during-drain";

  (* Leave: drains, waits out in-flight work, removes from the ring. *)
  let r = request_exn router_addr "leave s2" in
  Alcotest.(check string) "leave ok" "true" (field_exn "ok" r);
  Alcotest.(check string) "leave names the shard" "s2" (field_exn "removed" r);
  Alcotest.(check string) "leave bumps the epoch" "2" (field_exn "epoch" r);
  Alcotest.(check string) "idle shard drains instantly" "true" (field_exn "drained" r);
  Alcotest.(check string) "back to two shards" "2" (stat "shards");
  Alcotest.(check string) "nothing left draining" "0" (stat "shards_draining");
  check_all "post-leave";

  (* Unknown ids and bad addresses are typed errors, not crashes. *)
  List.iter
    (fun line ->
      match Protocol.field "error" (request_exn router_addr line) with
      | Some _ -> ()
      | None -> Alcotest.failf "%S accepted" line)
    [ "leave ghost"; "drain ghost"; "join s3 nowhere:-1" ];

  (* Shrinking to one shard works; emptying the ring is refused. *)
  Alcotest.(check string) "s1 leaves" "true" (field_exn "ok" (request_exn router_addr "leave s1"));
  (match Protocol.field "error" (request_exn router_addr "leave s0") with
  | Some _ -> ()
  | None -> Alcotest.fail "emptied the ring");
  Alcotest.(check string) "single shard left" "1" (stat "shards");
  Alcotest.(check string) "epoch counts every change" "3" (stat "epoch");
  check_all "single-shard";

  (* The epoch is observable as a fleet gauge, not just in stats. *)
  (match Snapshot.gauges (request_exn router_addr "metrics") with
  | Ok gauges ->
    Alcotest.(check (float 1e-9)) "epoch gauge" 3.0
      (Option.value ~default:(-1.) (List.assoc_opt "fleet.ring_epoch" gauges))
  | Error msg -> Alcotest.failf "fleet metrics unparsable: %s" msg);

  stop_router router_addr router;
  List.iter stop_shard [ s0; s1; s2 ]

let test_fleet_deadline () =
  let dir = temp_dir "fleet-deadline" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let gp = Filename.concat dir "g.aig" and rp = Filename.concat dir "r.aig" in
  Aig.Aiger.write_file gp (Key.normalize (Circuits.Datapath.parity 6));
  Aig.Aiger.write_file rp
    (Key.normalize (Circuits.Rewrite.double_negate (Circuits.Datapath.parity 6)));
  let s0 = start_shard dir "s0" in
  let router_addr, router = start_router [ s0 ] in
  (* Partition the only shard: it accepts connections but never answers.
     The request's own 300ms budget must come back as a typed error long
     before the 10s default, with no router worker wedged. *)
  Fault.with_spec (fault_spec "peer.partition:1.0") (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = request_exn router_addr (Printf.sprintf "check %s %s 300" gp rp) in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check string) "typed deadline error" "deadline_exceeded" (field_exn "code" r);
      if elapsed > 5.0 then
        Alcotest.failf "deadline response took %.1fs against a 300ms budget" elapsed);
  let stats = request_exn router_addr "stats" in
  Alcotest.(check bool) "deadline counted" true
    (int_of_string (field_exn "deadline_exceeded" stats) >= 1);
  Alcotest.(check string) "never a wrong or dropped answer" "0" (field_exn "unavailable" stats);
  (* Let the shard's partition window lapse, then it must serve again. *)
  Unix.sleepf 0.7;
  let r = request_exn router_addr (Printf.sprintf "check %s %s" gp rp) in
  Alcotest.(check string) "shard answers after the partition heals" "equivalent"
    (field_exn "status" r);
  stop_router router_addr router;
  stop_shard s0

let test_fleet_coalescing () =
  let dir = temp_dir "fleet-coalesce" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let gp = Filename.concat dir "g.aig" and rp = Filename.concat dir "r.aig" in
  Aig.Aiger.write_file gp (Key.normalize (Circuits.Multiplier.array 4));
  Aig.Aiger.write_file rp (Key.normalize (Circuits.Multiplier.shift_add 4));
  let s0 = start_shard dir "s0" in
  let router_addr, router = start_router ~workers:6 [ s0 ] in
  let line = Printf.sprintf "check %s %s" gp rp in
  let coalesced () = int_of_string (field_exn "coalesced" (request_exn router_addr "stats")) in
  (* The shard-side slow fault keeps every exchange >= 50ms, so a salvo
     of identical keys overlaps in flight; the first round also pays a
     cold multiplier solve.  Retry a few salvos rather than trusting one
     race. *)
  Fault.with_spec (fault_spec "peer.slow:1.0") (fun () ->
      let rec rounds n =
        if coalesced () = 0 then
          if n = 0 then Alcotest.fail "no salvo ever overlapped in flight"
          else begin
            let clients =
              List.init 6 (fun _ -> Domain.spawn (fun () -> Server.request_addr router_addr line))
            in
            List.iter
              (fun d ->
                match Domain.join d with
                | Ok r ->
                  Alcotest.(check string) "salvo verdict" "equivalent" (field_exn "status" r)
                | Error msg -> Alcotest.failf "salvo request failed: %s" msg)
              clients;
            rounds (n - 1)
          end
      in
      rounds 20);
  Alcotest.(check bool) "coalesced requests counted" true (coalesced () >= 1);
  stop_router router_addr router;
  stop_shard s0

let test_fleet_shedding_concurrent () =
  let dir = temp_dir "fleet-shed" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* Eight distinct keys, so coalescing cannot absorb the burst. *)
  let lines =
    List.init 8 (fun i ->
        let n = 4 + i in
        let gp = Filename.concat dir (Printf.sprintf "g%d.aig" i) in
        let rp = Filename.concat dir (Printf.sprintf "r%d.aig" i) in
        Aig.Aiger.write_file gp (Key.normalize (Circuits.Datapath.parity n));
        Aig.Aiger.write_file rp
          (Key.normalize (Circuits.Rewrite.double_negate (Circuits.Datapath.parity n)));
        Printf.sprintf "check %s %s" gp rp)
  in
  let s0 = start_shard dir "s0" in
  let router_addr, router = start_router ~workers:4 ~max_inflight:1 ~queue_capacity:1 [ s0 ] in
  let responses =
    (* peer.slow holds the one admitted forward >= 50ms, and a start
       barrier lands all eight clients inside that window. *)
    Fault.with_spec (fault_spec "peer.slow:1.0") (fun () ->
        let ready = Atomic.make 0 in
        let clients =
          List.map
            (fun line ->
              Domain.spawn (fun () ->
                  Atomic.incr ready;
                  while Atomic.get ready < 8 do
                    Domain.cpu_relax ()
                  done;
                  Server.request_addr router_addr line))
            lines
        in
        List.map Domain.join clients)
  in
  let ok = ref 0 and shed = ref 0 in
  List.iter
    (fun resp ->
      match resp with
      | Error msg -> Alcotest.failf "client saw a transport error: %s" msg
      | Ok r -> (
        match Protocol.field "status" r with
        | Some "equivalent" -> incr ok
        | Some other -> Alcotest.failf "wrong verdict %S under overload" other
        | None ->
          Alcotest.(check string) "typed overload" "overloaded" (field_exn "code" r);
          ignore (int_of_string (field_exn "retry_after_ms" r));
          incr shed))
    responses;
  Alcotest.(check int) "every client answered" 8 (!ok + !shed);
  if !ok = 0 then Alcotest.fail "nothing got through the burst";
  if !shed = 0 then Alcotest.fail "an 8-way burst against in-flight 1 shed nothing";
  (* The router's books agree with what the clients saw. *)
  let stats = request_exn router_addr "stats" in
  Alcotest.(check int) "overloaded counter matches the shed clients" !shed
    (int_of_string (field_exn "overloaded" stats));
  Alcotest.(check int) "forwarded counter matches the served clients" !ok
    (int_of_string (field_exn "forwarded" stats));
  Alcotest.(check string) "no unavailable responses" "0" (field_exn "unavailable" stats);
  Alcotest.(check string) "distinct keys never coalesce" "0" (field_exn "coalesced" stats);
  stop_router router_addr router;
  stop_shard s0

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring balance" `Quick test_ring_balance;
        ring_monotonic_add;
        ring_monotonic_remove;
        ring_replicas_distinct;
        Alcotest.test_case "ring movement on join" `Quick test_ring_movement_fraction;
        Alcotest.test_case "moved-fraction estimator" `Quick test_moved_fraction_estimate;
        Alcotest.test_case "addr parse" `Quick test_addr_parse;
        Alcotest.test_case "connect timeout is bounded" `Quick test_connect_timeout;
        Alcotest.test_case "admission" `Quick test_admission;
        Alcotest.test_case "health" `Quick test_health;
        Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
        Alcotest.test_case "snapshot rejects garbage" `Quick test_snapshot_rejects_garbage;
        Alcotest.test_case "loopback fleet end to end" `Slow test_fleet_end_to_end;
        Alcotest.test_case "live ring reconfiguration" `Slow test_fleet_reconfiguration;
        Alcotest.test_case "deadline beats a partitioned shard" `Slow test_fleet_deadline;
        Alcotest.test_case "identical keys coalesce" `Slow test_fleet_coalescing;
        Alcotest.test_case "overload burst sheds typed errors" `Slow test_fleet_shedding_concurrent;
      ] );
  ]
