(* Tests for the BDD package: canonicity, operations against truth
   tables, agreement with AIG evaluation, counting, and the BDD-based
   equivalence baseline. *)

module M = Bdd.Manager
module Rng = Support.Rng

let test_terminals_and_vars () =
  let t = M.create ~num_vars:3 () in
  Alcotest.(check int) "two terminals" 2 (M.size t);
  let x = M.var t 0 in
  Alcotest.(check int) "var is hash-consed" x (M.var t 0);
  Alcotest.(check int) "low" M.zero (M.low t x);
  Alcotest.(check int) "high" M.one (M.high t x);
  match M.var t 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range variable accepted"

let test_operations_truth_tables () =
  let t = M.create ~num_vars:2 () in
  let a = M.var t 0 and b = M.var t 1 in
  let cases =
    [
      ("and", M.and_ t a b, [| false; false; false; true |]);
      ("or", M.or_ t a b, [| false; true; true; true |]);
      ("xor", M.xor_ t a b, [| false; true; true; false |]);
      ("not a", M.not_ t a, [| true; false; true; false |]);
    ]
  in
  List.iter
    (fun (name, node, table) ->
      Array.iteri
        (fun idx expected ->
          let assignment = [| idx land 1 = 1; idx lsr 1 = 1 |] in
          Alcotest.(check bool) (Printf.sprintf "%s(%d)" name idx) expected
            (M.eval t node assignment))
        table)
    cases

let test_canonicity () =
  let t = M.create ~num_vars:3 () in
  let a = M.var t 0 and b = M.var t 1 and c = M.var t 2 in
  (* Build (a & b) | (a & c) two different ways. *)
  let lhs = M.or_ t (M.and_ t a b) (M.and_ t a c) in
  let rhs = M.and_ t a (M.or_ t b c) in
  Alcotest.(check int) "distribution is canonical" lhs rhs;
  Alcotest.(check int) "double negation" a (M.not_ t (M.not_ t a));
  Alcotest.(check int) "x xor x" M.zero (M.xor_ t lhs lhs);
  Alcotest.(check int) "ite(a,1,0) = a" a (M.ite t a M.one M.zero)

let test_of_aig_matches_eval () =
  let rng = Rng.create 7 in
  for seed = 0 to 30 do
    ignore rng;
    let g =
      Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:5 ~num_ands:30 ~num_outputs:3
    in
    let t = M.create ~num_vars:5 () in
    let outs = M.of_aig t g in
    for mask = 0 to 31 do
      let assignment = Array.init 5 (fun i -> (mask lsr i) land 1 = 1) in
      let expected = Aig.eval g assignment in
      Array.iteri
        (fun o node ->
          if M.eval t node assignment <> expected.(o) then
            Alcotest.failf "seed %d output %d disagrees on %d" seed o mask)
        outs
    done
  done

let test_sat_count () =
  let t = M.create ~num_vars:3 () in
  let a = M.var t 0 and b = M.var t 1 in
  Alcotest.(check (float 1e-9)) "count(a & b) over 3 vars" 2.0 (M.sat_count t (M.and_ t a b));
  Alcotest.(check (float 1e-9)) "count(a | b)" 6.0 (M.sat_count t (M.or_ t a b));
  Alcotest.(check (float 1e-9)) "count(1)" 8.0 (M.sat_count t M.one);
  Alcotest.(check (float 1e-9)) "count(0)" 0.0 (M.sat_count t M.zero)

let test_any_sat () =
  let t = M.create ~num_vars:4 () in
  let a = M.var t 0 and c = M.var t 2 in
  let f = M.and_ t a (M.not_ t c) in
  (match M.any_sat t f with
  | Some assignment -> Alcotest.(check bool) "model satisfies" true (M.eval t f assignment)
  | None -> Alcotest.fail "satisfiable function has no model");
  Alcotest.(check bool) "zero has no model" true (M.any_sat t M.zero = None)

let test_support () =
  let t = M.create ~num_vars:4 () in
  let a = M.var t 0 and c = M.var t 2 in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (M.support t (M.xor_ t a c));
  Alcotest.(check (list int)) "terminal support" [] (M.support t M.one)

let test_node_limit () =
  let t = M.create ~max_nodes:8 ~num_vars:16 () in
  match
    let acc = ref M.one in
    for i = 0 to 15 do
      acc := M.and_ t !acc (M.var t i)
    done;
    !acc
  with
  | exception M.Node_limit -> ()
  | _ -> Alcotest.fail "node limit not enforced"

let test_equiv_adders () =
  let report = Bdd.Equiv.check (Circuits.Adder.ripple_carry 8) (Circuits.Prefix_adder.kogge_stone 8) in
  (match report.Bdd.Equiv.verdict with
  | Bdd.Equiv.Equivalent -> ()
  | Bdd.Equiv.Inequivalent _ -> Alcotest.fail "spurious cex"
  | Bdd.Equiv.Blowup -> Alcotest.fail "unexpected blowup");
  Alcotest.(check bool) "nontrivial BDD" true (report.Bdd.Equiv.bdd_nodes > 10)

let test_equiv_detects_difference () =
  let good = Circuits.Adder.ripple_carry 4 in
  let bad = Circuits.Adder.ripple_carry 4 in
  Aig.set_output bad 0 (Aig.Lit.neg (Aig.output bad 0));
  match (Bdd.Equiv.check good bad).Bdd.Equiv.verdict with
  | Bdd.Equiv.Inequivalent cex ->
    let miter = Aig.Miter.build good bad in
    Alcotest.(check bool) "cex is genuine" true (Aig.eval miter cex).(0)
  | Bdd.Equiv.Equivalent -> Alcotest.fail "difference missed"
  | Bdd.Equiv.Blowup -> Alcotest.fail "unexpected blowup"

let test_equiv_blowup_reported () =
  let report =
    Bdd.Equiv.check ~max_nodes:300 (Circuits.Multiplier.array 6) (Circuits.Multiplier.shift_add 6)
  in
  match report.Bdd.Equiv.verdict with
  | Bdd.Equiv.Blowup -> ()
  | Bdd.Equiv.Equivalent | Bdd.Equiv.Inequivalent _ ->
    Alcotest.fail "expected a blowup under a tiny node cap"

let test_equiv_agrees_with_sat () =
  (* BDD and SAT engines agree on random rewritten pairs. *)
  for seed = 0 to 9 do
    let g =
      Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:6 ~num_ands:40 ~num_outputs:2
    in
    let g' = Circuits.Rewrite.restructure (Rng.create (seed + 100)) g in
    match (Bdd.Equiv.check g g').Bdd.Equiv.verdict with
    | Bdd.Equiv.Equivalent -> ()
    | Bdd.Equiv.Inequivalent _ -> Alcotest.failf "BDD disagrees on seed %d" seed
    | Bdd.Equiv.Blowup -> Alcotest.failf "blowup on tiny instance %d" seed
  done

(* --- differential qcheck: the BDD baseline against the SAT engine --- *)

module Cec = Cec_core.Cec

let qtest ?(count = 40) name prop =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let random_pair seed =
  let num_inputs = 4 + (seed mod 3) in
  let golden =
    Circuits.Random_aig.generate
      (Rng.create (1 + seed))
      ~num_inputs ~num_ands:(15 + (seed mod 30)) ~num_outputs:(1 + (seed mod 2))
  in
  let revised = Circuits.Rewrite.restructure (Rng.create (11 * seed)) golden in
  if seed mod 3 = 1 then begin
    let o = seed mod Aig.num_outputs revised in
    Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o))
  end;
  (golden, revised)

(* Same verdict as the SAT engine on every random pair, and every
   Inequivalent model must replay through [Aig.eval] as a genuine
   distinguishing assignment.  The default node cap must never blow up
   on instances this small. *)
let prop_check_matches_sat =
  qtest "check agrees with the SAT engine" (fun seed ->
      let golden, revised = random_pair seed in
      let bdd = (Bdd.Equiv.check golden revised).Bdd.Equiv.verdict in
      let sat = (Cec.check (Cec.Sweeping Cec_core.Sweep.default_config) golden revised).Cec.verdict in
      match (bdd, sat) with
      | Bdd.Equiv.Equivalent, Cec.Equivalent _ -> true
      | Bdd.Equiv.Inequivalent cex, Cec.Inequivalent _ ->
        (Aig.eval (Aig.Miter.build golden revised) cex).(0)
      | Bdd.Equiv.Blowup, _ ->
        QCheck.Test.fail_reportf "seed %d: blowup under the default cap on a tiny instance" seed
      | _ ->
        QCheck.Test.fail_reportf "seed %d: BDD and SAT verdicts disagree" seed)

(* [check_pair] is the portfolio's cone query: outputs 0 and 1 of one
   graph.  An Inequivalent assignment must distinguish exactly those
   two outputs under [Aig.eval]; Equivalent is checked exhaustively
   (the generated cones are narrow enough). *)
let prop_check_pair_cex_maps =
  qtest "check_pair models distinguish the outputs" (fun seed ->
      let num_inputs = 3 + (seed mod 4) in
      let g =
        Circuits.Random_aig.generate (Rng.create seed) ~num_inputs ~num_ands:(10 + (seed mod 25))
          ~num_outputs:2
      in
      match (Bdd.Equiv.check_pair g).Bdd.Equiv.verdict with
      | Bdd.Equiv.Inequivalent cex ->
        let v = Aig.eval g cex in
        v.(0) <> v.(1)
      | Bdd.Equiv.Equivalent ->
        let ok = ref true in
        for mask = 0 to (1 lsl num_inputs) - 1 do
          let assignment = Array.init num_inputs (fun i -> (mask lsr i) land 1 = 1) in
          let v = Aig.eval g assignment in
          if v.(0) <> v.(1) then ok := false
        done;
        !ok
      | Bdd.Equiv.Blowup ->
        QCheck.Test.fail_reportf "seed %d: blowup under the default cap" seed)

(* A starved cap may force Blowup but must never change an answer:
   whatever the tiny-cap run returns, if it is not Blowup it has to be
   the default-cap verdict. *)
let prop_tiny_cap_never_lies =
  qtest ~count:20 "tiny cap blows up or agrees, never lies" (fun seed ->
      let golden, revised = random_pair seed in
      let full = (Bdd.Equiv.check golden revised).Bdd.Equiv.verdict in
      let tiny = (Bdd.Equiv.check ~max_nodes:16 golden revised).Bdd.Equiv.verdict in
      match (tiny, full) with
      | Bdd.Equiv.Blowup, _ -> true
      | Bdd.Equiv.Equivalent, Bdd.Equiv.Equivalent -> true
      | Bdd.Equiv.Inequivalent cex, Bdd.Equiv.Inequivalent _ ->
        (Aig.eval (Aig.Miter.build golden revised) cex).(0)
      | _ -> QCheck.Test.fail_reportf "seed %d: starved cap changed the verdict" seed)

let suites =
  [
    ( "bdd",
      [
        Alcotest.test_case "terminals and vars" `Quick test_terminals_and_vars;
        Alcotest.test_case "operation truth tables" `Quick test_operations_truth_tables;
        Alcotest.test_case "canonicity" `Quick test_canonicity;
        Alcotest.test_case "of_aig matches eval" `Quick test_of_aig_matches_eval;
        Alcotest.test_case "sat_count" `Quick test_sat_count;
        Alcotest.test_case "any_sat" `Quick test_any_sat;
        Alcotest.test_case "support" `Quick test_support;
        Alcotest.test_case "node limit" `Quick test_node_limit;
        Alcotest.test_case "equiv adders" `Quick test_equiv_adders;
        Alcotest.test_case "equiv detects difference" `Quick test_equiv_detects_difference;
        Alcotest.test_case "equiv blowup reported" `Quick test_equiv_blowup_reported;
        Alcotest.test_case "equiv agrees with sat engines" `Quick test_equiv_agrees_with_sat;
        prop_check_matches_sat;
        prop_check_pair_cex_maps;
        prop_tiny_cap_never_lies;
      ] );
  ]
