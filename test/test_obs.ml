(* The observability layer: instruments, domain-safe registry merging,
   both exporters, golden-trace regressions over four fixed circuits,
   and the jobs-independence of aggregate counters. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel

let sweeping = Cec.Sweeping Sweep.default_config

(* --- a minimal JSON validity checker (no dependencies) --- *)

module Json = struct
  exception Bad of string

  (* Recursive-descent RFC 8259 validator over the whole input;
     trailing whitespace (the exporters end with a newline) is the only
     thing allowed after the top-level value. *)
  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      match peek () with
      | Some c ->
        incr pos;
        c
      | None -> raise (Bad "unexpected end of input")
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      let got = next () in
      if got <> c then raise (Bad (Printf.sprintf "expected %c at %d, got %c" c (!pos - 1) got))
    in
    let string_ () =
      expect '"';
      let rec go () =
        match next () with
        | '"' -> ()
        | '\\' -> (
          match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
            for _ = 1 to 4 do
              match next () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | _ -> raise (Bad "bad \\u escape")
            done;
            go ()
          | _ -> raise (Bad "bad escape"))
        | c when Char.code c < 0x20 -> raise (Bad "raw control character in string")
        | _ -> go ()
      in
      go ()
    in
    let number () =
      (match peek () with Some '-' -> incr pos | _ -> ());
      let digits () =
        let saw = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
            saw := true;
            incr pos;
            go ()
          | _ -> ()
        in
        go ();
        if not !saw then raise (Bad "expected digits")
      in
      digits ();
      (match peek () with
      | Some '.' ->
        incr pos;
        digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
      | _ -> ()
    in
    let literal w = String.iter expect w in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        (match peek () with
        | Some '}' -> incr pos
        | _ ->
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match next () with
            | ',' -> members ()
            | '}' -> ()
            | _ -> raise (Bad "expected , or } in object")
          in
          members ())
      | Some '[' ->
        incr pos;
        skip_ws ();
        (match peek () with
        | Some ']' -> incr pos
        | _ ->
          let rec elements () =
            value ();
            skip_ws ();
            match next () with
            | ',' -> elements ()
            | ']' -> ()
            | _ -> raise (Bad "expected , or ] in array")
          in
          elements ())
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | Some c -> raise (Bad (Printf.sprintf "unexpected %c" c))
      | None -> raise (Bad "unexpected end of input")
    in
    value ();
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing garbage at offset %d" !pos))

  let is_valid s = match validate s with () -> true | exception Bad _ -> false

  let check_valid label s =
    match validate s with
    | () -> ()
    | exception Bad msg -> Alcotest.failf "%s: invalid JSON (%s) in %s" label msg s
end

let test_json_checker_self_test () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "valid: %s" s) true (Json.is_valid s))
    [
      "{}"; "[]"; "null"; "true"; "-12.5e+3"; "\"a\\\"b\\u00ff\"";
      "{\"a\":[1,2,{\"b\":null}],\"c\":\"\"}\n"; " [ 1 , 2 ] ";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "invalid: %s" s) false (Json.is_valid s))
    [
      ""; "{"; "}"; "1 2"; "{\"a\":}"; "{\"a\":1,}"; "[1,]"; "nul"; "+1"; "01x";
      "\"\\x\""; "\"unterminated";
    ]

(* --- instruments --- *)

let test_counter_basics () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "c" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.get c);
  Alcotest.(check bool) "find-or-create returns the same handle" true
    (c == Obs.Registry.counter reg "c")

let test_gauge_basics () =
  let reg = Obs.Registry.create () in
  let g = Obs.Registry.gauge reg "g" in
  Obs.Gauge.set g 2.5;
  Obs.Gauge.add g 1.0;
  Alcotest.(check (float 1e-9)) "set + add" 3.5 (Obs.Gauge.get g);
  Obs.Gauge.set g 1.0;
  Alcotest.(check (float 1e-9)) "set overwrites" 1.0 (Obs.Gauge.get g)

let test_histogram_basics () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~bounds:[| 1.0; 10.0 |] reg "h" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.0; 5.0; 100.0 ];
  Alcotest.(check (array (float 1e-9))) "bounds" [| 1.0; 10.0 |] (Obs.Histogram.bounds h);
  (* Bucket i counts observations <= bounds.(i); the last bucket is the
     overflow: 0.5 and 1.0 land in bucket 0, 5.0 in bucket 1, 100.0
     overflows. *)
  Alcotest.(check (array int)) "buckets" [| 2; 1; 1 |] (Obs.Histogram.buckets h);
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 106.5 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.Histogram.max_value h);
  (* Same name, same bounds: same handle.  Same name, other bounds:
     rejected rather than silently rebucketed. *)
  Alcotest.(check bool) "same handle" true (h == Obs.Registry.histogram reg "h");
  Alcotest.(check bool) "same handle with explicit bounds" true
    (h == Obs.Registry.histogram ~bounds:[| 1.0; 10.0 |] reg "h");
  match Obs.Registry.histogram ~bounds:[| 2.0 |] reg "h" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting bounds accepted"

let test_default_bounds_strictly_increasing () =
  let b = Obs.Histogram.default_bounds in
  Alcotest.(check bool) "non-empty" true (Array.length b > 0);
  for i = 1 to Array.length b - 1 do
    Alcotest.(check bool) "strictly increasing" true (b.(i - 1) < b.(i))
  done

let test_merge_semantics () =
  let a = Obs.Registry.create () and b = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter a "n") 3;
  Obs.Counter.add (Obs.Registry.counter b "n") 4;
  Obs.Counter.add (Obs.Registry.counter b "only-b") 1;
  Obs.Gauge.set (Obs.Registry.gauge a "g") 7.0;
  Obs.Gauge.set (Obs.Registry.gauge b "g") 5.0;
  Obs.Histogram.observe (Obs.Registry.histogram a "h") 1.0;
  Obs.Histogram.observe (Obs.Registry.histogram b "h") 2.0;
  Obs.Registry.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 7 (Obs.Counter.get (Obs.Registry.counter a "n"));
  Alcotest.(check int) "missing counters appear" 1
    (Obs.Counter.get (Obs.Registry.counter a "only-b"));
  Alcotest.(check (float 1e-9)) "gauges keep the max" 7.0
    (Obs.Gauge.get (Obs.Registry.gauge a "g"));
  Alcotest.(check int) "histograms add bucket-wise" 2
    (Obs.Histogram.count (Obs.Registry.histogram a "h"));
  (* The source is unchanged. *)
  Alcotest.(check int) "src counter untouched" 4 (Obs.Counter.get (Obs.Registry.counter b "n"))

(* --- exporters --- *)

let populated_registry () =
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg "z.last") 2;
  Obs.Counter.add (Obs.Registry.counter reg "a.first") 1;
  Obs.Gauge.set (Obs.Registry.gauge reg "needs \"escaping\"\n") 0.5;
  Obs.Histogram.observe (Obs.Registry.histogram reg "lat") 3.0;
  Obs.Span.with_ reg "outer" (fun () -> Obs.Span.with_ reg "inner" (fun () -> ()));
  reg

let test_exports_are_valid_json () =
  let reg = populated_registry () in
  Json.check_valid "stats_json" (Obs.Export.stats_json reg);
  Json.check_valid "counters_json" (Obs.Export.counters_json reg);
  Json.check_valid "trace_json" (Obs.Export.trace_json reg);
  (* An empty registry still exports valid JSON. *)
  let empty = Obs.Registry.create () in
  Json.check_valid "empty stats_json" (Obs.Export.stats_json empty);
  Json.check_valid "empty counters_json" (Obs.Export.counters_json empty);
  Json.check_valid "empty trace_json" (Obs.Export.trace_json empty)

let test_counters_json_sorted_and_stable () =
  let reg = populated_registry () in
  Alcotest.(check string) "sorted keys, exact bytes" "{\"a.first\":1,\"z.last\":2}"
    (Obs.Export.counters_json reg);
  (* Same content built in another insertion order: identical bytes. *)
  let reg' = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg' "a.first") 1;
  Obs.Counter.add (Obs.Registry.counter reg' "z.last") 2;
  Alcotest.(check string) "insertion order is invisible" (Obs.Export.counters_json reg)
    (Obs.Export.counters_json reg')

(* The chronological "ph" sequence of a trace export. *)
let ph_sequence trace =
  let out = ref [] in
  let n = String.length trace in
  for i = 0 to n - 8 do
    match String.sub trace i 8 with
    | "\"ph\":\"B\"" -> out := 'B' :: !out
    | "\"ph\":\"E\"" -> out := 'E' :: !out
    | _ -> ()
  done;
  List.rev !out

let check_well_parenthesized label trace =
  let depth = ref 0 in
  List.iter
    (fun ph ->
      (match ph with 'B' -> incr depth | _ -> decr depth);
      if !depth < 0 then Alcotest.failf "%s: end before begin" label)
    (ph_sequence trace);
  Alcotest.(check int) (label ^ ": all spans closed") 0 !depth

let test_trace_export_shape () =
  let reg = Obs.Registry.create () in
  (* The end event is recorded even when the body raises. *)
  (try Obs.Span.with_ reg "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Obs.Span.with_ reg "outer" (fun () ->
      Obs.Span.with_ reg "inner" (fun () -> ());
      Obs.Span.with_ reg "inner" (fun () -> ()));
  Alcotest.(check int) "4 spans = 8 events" 8 (Obs.Span.num_events reg);
  let trace = Obs.Export.trace_json reg in
  Json.check_valid "trace" trace;
  Alcotest.(check (list char)) "chronological, nested"
    [ 'B'; 'E'; 'B'; 'B'; 'E'; 'B'; 'E'; 'E' ] (ph_sequence trace);
  check_well_parenthesized "trace" trace

(* --- golden traces: four fixed circuits, exact counters --- *)

(* These pin the aggregate counters of a sequential [Cec.check] run.
   They are intentionally brittle: any change to the solver heuristics,
   the sweeping schedule or the proof builders shows up here as a
   reviewed diff instead of a silent drift. *)

let golden_counters golden revised =
  let reg = Obs.Registry.create () in
  let (_ : Cec.report) = Obs.with_ambient reg (fun () -> Cec.check sweeping golden revised) in
  (reg, Obs.Registry.counters reg)

let check_golden name expected golden revised =
  let reg, actual = golden_counters golden revised in
  Alcotest.(check (list (pair string int))) name expected actual;
  (* Both exporters stay schema-valid on the real registry. *)
  Json.check_valid (name ^ " stats") (Obs.Export.stats_json reg);
  Json.check_valid (name ^ " trace") (Obs.Export.trace_json reg)

let suite_case name =
  match Circuits.Suite.find name with
  | Some c -> c
  | None -> Alcotest.failf "suite case %s missing" name

let test_golden_adder () =
  let case = suite_case "add4-rc-cla" in
  check_golden "ripple-carry vs carry-lookahead"
    [
      ("proof.chains", 65);
      ("proof.leaves", 1678);
      ("proof.lift_nodes", 155);
      ("proof.lifts", 17);
      ("sat.clauses_carried", 0);
      ("sat.conflicts", 21);
      ("sat.decisions", 30);
      ("sat.propagations", 155);
      ("sat.restarts", 0);
      ("sat.retired_chains", 0);
      ("sweep.const_merges", 7);
      ("sweep.incremental_reuse", 0);
      ("sweep.lemmas", 17);
      ("sweep.merges", 5);
      ("sweep.sat_budget", 0);
      ("sweep.sat_calls", 18);
      ("sweep.sat_cex", 0);
      ("sweep.sat_refuted", 18);
      ("sweep.sim_refinements", 0);
    ]
    (case.Circuits.Suite.golden ())
    (case.Circuits.Suite.revised ())

let test_golden_rewritten_datapath () =
  let case = suite_case "mux5-rewr" in
  check_golden "mux tree vs rewritten mux tree"
    [
      ("proof.chains", 577);
      ("proof.leaves", 23697);
      ("proof.lift_nodes", 1343);
      ("proof.lifts", 199);
      ("sat.clauses_carried", 0);
      ("sat.conflicts", 199);
      ("sat.decisions", 0);
      ("sat.propagations", 1007);
      ("sat.restarts", 0);
      ("sat.retired_chains", 0);
      ("sweep.const_merges", 5);
      ("sweep.incremental_reuse", 0);
      ("sweep.lemmas", 199);
      ("sweep.merges", 97);
      ("sweep.sat_budget", 0);
      ("sweep.sat_calls", 200);
      ("sweep.sat_cex", 0);
      ("sweep.sat_refuted", 200);
      ("sweep.sim_refinements", 0);
    ]
    (case.Circuits.Suite.golden ())
    (case.Circuits.Suite.revised ())

let test_golden_constant_zero_miter () =
  (* A circuit against itself: simulation classes collapse every miter
     output to the constant; one final SAT call, no conflicts. *)
  let g () = Circuits.Adder.ripple_carry 4 in
  check_golden "self-miter is constant 0"
    [
      ("proof.chains", 2);
      ("proof.leaves", 97);
      ("sat.clauses_carried", 0);
      ("sat.conflicts", 0);
      ("sat.decisions", 0);
      ("sat.propagations", 0);
      ("sat.restarts", 0);
      ("sat.retired_chains", 0);
      ("sweep.const_merges", 0);
      ("sweep.incremental_reuse", 0);
      ("sweep.lemmas", 0);
      ("sweep.merges", 0);
      ("sweep.sat_budget", 0);
      ("sweep.sat_calls", 1);
      ("sweep.sat_cex", 0);
      ("sweep.sat_refuted", 1);
      ("sweep.sim_refinements", 0);
    ]
    (g ()) (g ())

let test_golden_incremental_adder () =
  (* Same fixture as [test_golden_adder], incremental mode: no lifts or
     imports at all (the solver's proof store is the certificate), far
     fewer leaves, three queries settled from root-level facts instead
     of SAT calls, and learned clauses carried across calls. *)
  let case = suite_case "add4-rc-cla" in
  let reg = Obs.Registry.create () in
  let (_ : Cec.report) =
    Obs.with_ambient reg (fun () ->
        Cec.check
          (Cec.Sweeping { Sweep.default_config with Sweep.mode = Sweep.Incremental })
          (case.Circuits.Suite.golden ())
          (case.Circuits.Suite.revised ()))
  in
  Alcotest.(check (list (pair string int)))
    "incremental adder pair"
    [
      ("proof.chains", 23);
      ("proof.leaves", 128);
      ("sat.clauses_carried", 96);
      ("sat.conflicts", 14);
      ("sat.decisions", 4);
      ("sat.propagations", 140);
      ("sat.restarts", 0);
      ("sat.retired_chains", 0);
      ("sweep.const_merges", 7);
      ("sweep.incremental_reuse", 3);
      ("sweep.lemmas", 17);
      ("sweep.merges", 5);
      ("sweep.sat_budget", 0);
      ("sweep.sat_calls", 15);
      ("sweep.sat_cex", 0);
      ("sweep.sat_refuted", 15);
      ("sweep.sim_refinements", 0);
    ]
    (Obs.Registry.counters reg)

let test_golden_falsifiable () =
  let golden = Circuits.Adder.ripple_carry 3 in
  let revised = Circuits.Adder.ripple_carry 3 in
  Aig.set_output revised 0 (Aig.Lit.neg (Aig.output revised 0));
  check_golden "negated output is refuted"
    [
      ("proof.chains", 0);
      ("proof.leaves", 67);
      ("sat.clauses_carried", 0);
      ("sat.conflicts", 0);
      ("sat.decisions", 5);
      ("sat.propagations", 29);
      ("sat.restarts", 0);
      ("sat.retired_chains", 0);
      ("sweep.const_merges", 0);
      ("sweep.incremental_reuse", 0);
      ("sweep.lemmas", 0);
      ("sweep.merges", 0);
      ("sweep.sat_budget", 0);
      ("sweep.sat_calls", 1);
      ("sweep.sat_cex", 1);
      ("sweep.sat_refuted", 0);
      ("sweep.sim_refinements", 0);
    ]
    golden revised

(* --- determinism across worker counts --- *)

let counters_with_domains ?(mode = Sweep.Perpair) n =
  let case = suite_case "add4-rc-cla" in
  let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
  let reg = Obs.Registry.create () in
  let report =
    Obs.with_ambient reg (fun () ->
        Parallel.check
          ~config:
            {
              Parallel.default_config with
              Parallel.num_domains = n;
              engine = Cec.Sweeping { Sweep.default_config with Sweep.mode };
            }
          golden revised)
  in
  (match report.Parallel.verdict with
  | Cec.Equivalent _ -> ()
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "suite case did not prove equivalent");
  Obs.Export.counters_json reg

let test_jobs_independence () =
  let c1 = counters_with_domains 1 in
  let c4 = counters_with_domains 4 in
  let c4' = counters_with_domains 4 in
  Alcotest.(check string) "1 domain = 4 domains" c1 c4;
  Alcotest.(check string) "4 domains repeatable" c4 c4'

let test_incremental_jobs_independence () =
  (* One persistent solver per partition: partitions are independent,
     so the aggregate counters still cannot depend on how partitions
     are spread over domains. *)
  let c1 = counters_with_domains ~mode:Sweep.Incremental 1 in
  let c4 = counters_with_domains ~mode:Sweep.Incremental 4 in
  let c4' = counters_with_domains ~mode:Sweep.Incremental 4 in
  Alcotest.(check string) "1 domain = 4 domains (incr)" c1 c4;
  Alcotest.(check string) "4 domains repeatable (incr)" c4 c4'

let test_incremental_fewer_sat_calls () =
  (* The headline effect on the multiplier fixture: root-level fact
     reuse settles some queries without search, so the incremental
     engine issues strictly fewer SAT calls than per-pair. *)
  let case = suite_case "mul3-arr-sa" in
  let counters mode =
    let reg = Obs.Registry.create () in
    let (_ : Cec.report) =
      Obs.with_ambient reg (fun () ->
          Cec.check
            (Cec.Sweeping { Sweep.default_config with Sweep.mode })
            (case.Circuits.Suite.golden ())
            (case.Circuits.Suite.revised ()))
    in
    Obs.Registry.counters reg
  in
  let count name cs = try List.assoc name cs with Not_found -> 0 in
  let perpair = counters Sweep.Perpair and incr = counters Sweep.Incremental in
  let calls_pp = count "sweep.sat_calls" perpair and calls_incr = count "sweep.sat_calls" incr in
  if calls_incr >= calls_pp then
    Alcotest.failf "expected fewer SAT calls: incr=%d perpair=%d" calls_incr calls_pp;
  Alcotest.(check bool) "reuse counter fired" true (count "sweep.incremental_reuse" incr > 0);
  Alcotest.(check int) "reuse accounts for the gap" calls_pp
    (calls_incr + count "sweep.incremental_reuse" incr);
  Alcotest.(check bool) "clauses carried across queries" true
    (count "sat.clauses_carried" incr > 0)

(* --- certificate-checker counters (the check.* family) --- *)

let hinted_cert name =
  let case = suite_case name in
  match
    (Cec.check sweeping (case.Circuits.Suite.golden ()) (case.Circuits.Suite.revised ()))
      .Cec.verdict
  with
  | Cec.Equivalent cert -> cert
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.failf "suite case %s not proven" name

(* A small shard floor so the fixed fixtures actually split; the
   production default of 256 nodes would coalesce them into one. *)
let check_registry ?(jobs = 1) (cert : Cec.certificate) =
  let data =
    Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries ~min_shard_nodes:16 cert.Cec.proof
      ~root:cert.Cec.root
  in
  let reg = Obs.Registry.create () in
  (match
     Obs.with_ambient reg (fun () -> Proof.Hint_check.check ~formula:cert.Cec.formula ~jobs data)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hinted checker rejected: %a" Proof.Hint_check.pp_error e);
  reg

let check_golden_counters name expected fixture =
  let reg = check_registry (hinted_cert fixture) in
  Alcotest.(check (list (pair string int))) name expected (Obs.Registry.counters reg);
  Json.check_valid (name ^ " stats") (Obs.Export.stats_json reg);
  Json.check_valid (name ^ " trace") (Obs.Export.trace_json reg)

let test_golden_check_adder () =
  check_golden_counters "checker counters on add4-rc-cla"
    [
      ("check.chains", 22);
      ("check.checks", 1);
      ("check.hints_followed", 105);
      ("check.shards", 5);
      ("check.steps", 105);
    ]
    "add4-rc-cla"

let test_golden_check_multiplier () =
  check_golden_counters "checker counters on mul3-arr-sa"
    [
      ("check.chains", 105);
      ("check.checks", 1);
      ("check.hints_followed", 1674);
      ("check.shards", 14);
      ("check.steps", 1674);
    ]
    "mul3-arr-sa"

let test_check_jobs_independence () =
  (* Shards are checked with no early abort and counters are summed
     over shards, so the aggregate check metrics cannot depend on how
     shards are spread over domains. *)
  let cert = hinted_cert "mul3-arr-sa" in
  let snapshot jobs =
    let reg = check_registry ~jobs cert in
    (Obs.Export.counters_json reg, Obs.Gauge.get (Obs.Registry.gauge reg "check.peak_live"))
  in
  let c1, p1 = snapshot 1 in
  let c4, p4 = snapshot 4 in
  let c4', p4' = snapshot 4 in
  Alcotest.(check string) "1 job = 4 jobs" c1 c4;
  Alcotest.(check string) "4 jobs repeatable" c4 c4';
  Alcotest.(check (float 0.0)) "peak gauge: 1 job = 4 jobs" p1 p4;
  Alcotest.(check (float 0.0)) "peak gauge repeatable" p4 p4'

(* --- qcheck properties --- *)

(* A registry population as data, so merges can be replayed onto fresh
   registries: merge_into mutates its target. *)
type op =
  | Incr of int
  | Add of int * int
  | Gauge_set of int * float
  | Observe of int * float

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Incr i) (int_bound 4);
        map2 (fun i n -> Add (i, n)) (int_bound 4) (int_bound 1000);
        map2 (fun i v -> Gauge_set (i, v)) (int_bound 4) (float_bound_inclusive 1000.0);
        map2 (fun i v -> Observe (i, v)) (int_bound 4) (float_bound_inclusive 200_000.0);
      ])

let pp_op = function
  | Incr i -> Printf.sprintf "Incr %d" i
  | Add (i, n) -> Printf.sprintf "Add (%d, %d)" i n
  | Gauge_set (i, v) -> Printf.sprintf "Gauge_set (%d, %g)" i v
  | Observe (i, v) -> Printf.sprintf "Observe (%d, %g)" i v

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_bound 30) op_gen)

let replay ops =
  let reg = Obs.Registry.create () in
  List.iter
    (fun op ->
      match op with
      | Incr i -> Obs.Counter.incr (Obs.Registry.counter reg (Printf.sprintf "c%d" i))
      | Add (i, n) -> Obs.Counter.add (Obs.Registry.counter reg (Printf.sprintf "c%d" i)) n
      | Gauge_set (i, v) -> Obs.Gauge.set (Obs.Registry.gauge reg (Printf.sprintf "g%d" i)) v
      | Observe (i, v) ->
        Obs.Histogram.observe (Obs.Registry.histogram reg (Printf.sprintf "h%d" i)) v)
    ops;
  reg

(* stats_json covers counters, gauges and histograms and is the
   equality surface for the merge algebra (span events are excluded:
   their concatenation is ordered by construction). *)
let stats reg = Obs.Export.stats_json reg

let prop_merge_associative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merge is associative" ~count:100
       QCheck.(triple ops_arb ops_arb ops_arb)
       (fun (la, lb, lc) ->
         let left = replay la in
         Obs.Registry.merge_into ~into:left (replay lb);
         Obs.Registry.merge_into ~into:left (replay lc);
         let bc = replay lb in
         Obs.Registry.merge_into ~into:bc (replay lc);
         let right = replay la in
         Obs.Registry.merge_into ~into:right bc;
         stats left = stats right))

let prop_merge_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merge is commutative" ~count:100
       QCheck.(pair ops_arb ops_arb)
       (fun (la, lb) ->
         let x = Obs.Registry.create () in
         Obs.Registry.merge_into ~into:x (replay la);
         Obs.Registry.merge_into ~into:x (replay lb);
         let y = Obs.Registry.create () in
         Obs.Registry.merge_into ~into:y (replay lb);
         Obs.Registry.merge_into ~into:y (replay la);
         stats x = stats y))

let prop_merge_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"empty registry is the merge identity" ~count:100 ops_arb
       (fun ops ->
         let r = replay ops in
         let before = stats r in
         Obs.Registry.merge_into ~into:r (Obs.Registry.create ());
         let e = Obs.Registry.create () in
         Obs.Registry.merge_into ~into:e (replay ops);
         stats r = before && stats e = before))

let prop_histogram_totals =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"histogram count and sum match the observations" ~count:200
       (QCheck.make
          ~print:QCheck.Print.(list float)
          QCheck.Gen.(list_size (int_range 1 50) (float_bound_inclusive 200_000.0)))
       (fun xs ->
         let reg = Obs.Registry.create () in
         let h = Obs.Registry.histogram reg "h" in
         List.iter (Obs.Histogram.observe h) xs;
         Obs.Histogram.count h = List.length xs
         && Array.fold_left ( + ) 0 (Obs.Histogram.buckets h) = List.length xs
         && Float.abs (Obs.Histogram.sum h -. List.fold_left ( +. ) 0.0 xs) <= 1e-6
         && Obs.Histogram.max_value h = List.fold_left Float.max neg_infinity xs))

let prop_spans_well_parenthesized =
  (* Random span trees: the Chrome export of a single-domain registry
     is always a balanced B/E sequence, even when bodies raise. *)
  let arb =
    QCheck.make ~print:QCheck.Print.(list int) QCheck.Gen.(list_size (int_bound 12) (int_bound 5))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"span events are well-parenthesized" ~count:100 arb (fun shape ->
         let reg = Obs.Registry.create () in
         let rec run = function
           | [] -> ()
           | n :: rest ->
             (try
                Obs.Span.with_ reg (Printf.sprintf "s%d" n) (fun () ->
                    run (if n mod 2 = 0 then rest else []);
                    if n = 3 then failwith "span body raises")
              with Failure _ -> ());
             if n mod 2 <> 0 then run rest
         in
         run shape;
         let trace = Obs.Export.trace_json reg in
         let seq = ph_sequence trace in
         let ok = ref true in
         let depth = ref 0 in
         List.iter
           (fun ph ->
             (match ph with 'B' -> incr depth | _ -> decr depth);
             if !depth < 0 then ok := false)
           seq;
         !ok && !depth = 0
         && List.length seq = Obs.Span.num_events reg
         && Json.is_valid trace))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "json checker self-test" `Quick test_json_checker_self_test;
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
        Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
        Alcotest.test_case "default bounds strictly increasing" `Quick
          test_default_bounds_strictly_increasing;
        Alcotest.test_case "merge semantics" `Quick test_merge_semantics;
        Alcotest.test_case "exports are valid JSON" `Quick test_exports_are_valid_json;
        Alcotest.test_case "counters_json sorted and stable" `Quick
          test_counters_json_sorted_and_stable;
        Alcotest.test_case "trace export shape" `Quick test_trace_export_shape;
        prop_merge_associative;
        prop_merge_commutative;
        prop_merge_identity;
        prop_histogram_totals;
        prop_spans_well_parenthesized;
      ] );
    ( "obs-golden",
      [
        Alcotest.test_case "adder pair" `Quick test_golden_adder;
        Alcotest.test_case "rewritten datapath" `Quick test_golden_rewritten_datapath;
        Alcotest.test_case "constant-0 miter" `Quick test_golden_constant_zero_miter;
        Alcotest.test_case "incremental adder pair" `Quick test_golden_incremental_adder;
        Alcotest.test_case "falsifiable pair" `Quick test_golden_falsifiable;
        Alcotest.test_case "aggregate counters independent of domains" `Quick
          test_jobs_independence;
        Alcotest.test_case "incremental counters independent of domains" `Quick
          test_incremental_jobs_independence;
        Alcotest.test_case "incremental drops below per-pair SAT calls" `Quick
          test_incremental_fewer_sat_calls;
        Alcotest.test_case "checker counters: adder pair" `Quick test_golden_check_adder;
        Alcotest.test_case "checker counters: multiplier pair" `Quick
          test_golden_check_multiplier;
        Alcotest.test_case "check metrics independent of jobs" `Quick
          test_check_jobs_independence;
      ] );
  ]
