(* Differential harness for the sweeping-engine portfolio.

   The portfolio (simulation refinement + BDD probes in front of the
   SAT closer) must be a pure accelerator: on every instance the
   hybrid and bdd-first engines return the same verdict as the pure
   SAT engine, counterexamples replay on the miter, and — because
   probes never replace the SAT derivation of a merge — every
   certificate is still a stitched resolution refutation that passes
   both the streaming checker and the hinted parallel checker. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Certify = Cec_core.Certify
module Suite = Circuits.Suite

let cfg portfolio = { Sweep.default_config with Sweep.portfolio }
let engine portfolio = Cec.Sweeping (cfg portfolio)
let portfolios = [ Sweep.Sat_only; Sweep.Bdd_first; Sweep.Hybrid ]
let pname = Sweep.portfolio_to_string

let verdict_of = function
  | Cec.Equivalent _ -> "eq"
  | Cec.Inequivalent _ -> "neq"
  | Cec.Undecided -> "undecided"

(* Portfolio certificates must survive the full certificate stack: the
   random-access checker against a rebuilt miter, the streaming
   checker, and the hinted (search-free, parallel) checker over the
   boundary-sharded encoding. *)
let check_certificate ~what golden revised (cert : Cec.certificate) =
  (match Certify.validate_against cert golden revised with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: certificate rejected: %a" what Certify.pp_error e);
  let data = Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root in
  (match Proof.Stream_check.check ~formula:cert.Cec.formula data with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: streaming checker rejected: %s" what e.Proof.Stream_check.reason);
  let hinted =
    Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries cert.Cec.proof ~root:cert.Cec.root
  in
  match Proof.Hint_check.check ~formula:cert.Cec.formula ~jobs:4 hinted with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "%s: hinted checker rejected: %s" what
      (Format.asprintf "%a" Proof.Hint_check.pp_error e)

let replay_cex ~what golden revised cex =
  let miter = Aig.Miter.build golden revised in
  if not (Aig.eval miter cex).(0) then
    Alcotest.failf "%s: counterexample does not drive the miter" what

let differential ~name golden revised =
  let reports =
    List.map (fun p -> (p, (Cec.check (engine p) golden revised).Cec.verdict)) portfolios
  in
  let sat_verdict =
    match reports with
    | (Sweep.Sat_only, v) :: _ -> verdict_of v
    | _ -> assert false
  in
  List.iter
    (fun (p, v) ->
      let what = Printf.sprintf "%s/%s" name (pname p) in
      if verdict_of v <> sat_verdict then
        Alcotest.failf "%s: verdict %s disagrees with sat's %s" what (verdict_of v) sat_verdict;
      match v with
      | Cec.Equivalent cert -> check_certificate ~what golden revised cert
      | Cec.Inequivalent cex -> replay_cex ~what golden revised cex
      | Cec.Undecided -> Alcotest.failf "%s: undecided" what)
    reports

(* --- fixed golden circuits --- *)

let test_small_suite_differential () =
  List.iter
    (fun (case : Suite.case) ->
      differential ~name:case.Suite.name (case.Suite.golden ()) (case.Suite.revised ()))
    Suite.small

(* The honest win regime of the portfolio: wide sparse-difference
   comparators whose AND-reduction candidates survive random
   simulation.  These rows are where the probes actually fire, so they
   are the ones most likely to expose a certificate or verdict bug. *)
let test_comparator_differential () =
  List.iter
    (fun width ->
      differential
        ~name:(Printf.sprintf "eq%d" width)
        (Circuits.Datapath.equality ~tree:true width)
        (Circuits.Datapath.equality ~tree:false width))
    [ 16; 32 ]

let test_inequivalent_fixtures () =
  let negated () =
    let golden = Circuits.Datapath.equality ~tree:true 12 in
    let revised = Circuits.Datapath.equality ~tree:false 12 in
    Aig.set_output revised 0 (Aig.Lit.neg (Aig.output revised 0));
    ("negated-eq12", golden, revised)
  in
  let corrupted () =
    let golden = Circuits.Adder.ripple_carry 6 in
    let revised = Circuits.Adder.ripple_carry 6 in
    let o = Aig.num_outputs revised - 1 in
    Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o));
    ("corrupted-add6", golden, revised)
  in
  List.iter (fun (name, g, r) -> differential ~name g r) [ negated (); corrupted () ]

(* --- random AIG pairs (qcheck) --- *)

let qtest ?(count = 25) name prop =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let random_pair seed =
  let num_inputs = 4 + (seed mod 4) in
  let num_outputs = 1 + (seed mod 3) in
  let golden =
    Circuits.Random_aig.generate
      (Support.Rng.create (1 + seed))
      ~num_inputs ~num_ands:(20 + (seed mod 40)) ~num_outputs
  in
  let revised = Circuits.Rewrite.restructure (Support.Rng.create (13 * seed)) golden in
  if seed mod 4 = 3 then begin
    let o = seed mod Aig.num_outputs revised in
    Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o))
  end;
  (golden, revised)

let prop_random_differential =
  qtest "portfolios agree on random pairs" (fun seed ->
      let golden, revised = random_pair seed in
      differential ~name:(Printf.sprintf "random-%d" seed) golden revised;
      true)

(* Tiny BDD caps force blowups mid-sweep; the fallback path must still
   deliver the SAT verdict and a checkable certificate. *)
let prop_blowup_fallback =
  qtest ~count:10 "hybrid under a starved BDD cap still certifies" (fun seed ->
      let golden, revised = random_pair (2 * seed) in
      let starved =
        Cec.Sweeping { (cfg Sweep.Hybrid) with Sweep.bdd_max_nodes = 16 }
      in
      let name = Printf.sprintf "starved-%d" seed in
      let sat = (Cec.check (engine Sweep.Sat_only) golden revised).Cec.verdict in
      let hyb = (Cec.check starved golden revised).Cec.verdict in
      if verdict_of sat <> verdict_of hyb then
        Alcotest.failf "%s: starved hybrid %s vs sat %s" name (verdict_of hyb) (verdict_of sat);
      (match hyb with
      | Cec.Equivalent cert -> check_certificate ~what:name golden revised cert
      | Cec.Inequivalent cex -> replay_cex ~what:name golden revised cex
      | Cec.Undecided -> Alcotest.failf "%s: undecided" name);
      true)

(* --- probe accounting --- *)

(* On a comparator pair the hybrid engine must actually use its
   probes (this guards against a silently disabled portfolio), and
   every probe-refuted candidate must be absent from the SAT
   counterexample count. *)
let test_probes_fire () =
  let golden = Circuits.Datapath.equality ~tree:true 24 in
  let revised = Circuits.Datapath.equality ~tree:false 24 in
  let report = Cec.check (engine Sweep.Hybrid) golden revised in
  (match report.Cec.verdict with
  | Cec.Equivalent _ -> ()
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "eq24 must be equivalent");
  match report.Cec.sweep_stats with
  | None -> Alcotest.fail "sweeping engine lost its stats"
  | Some st ->
    Alcotest.(check bool) "some probe proved or split" true
      (st.Sweep.bdd_proved + st.Sweep.sim_proved + st.Sweep.bdd_cex + st.Sweep.sim_splits > 0)

let suites =
  [
    ( "engine-differential",
      [
        Alcotest.test_case "small suite, all portfolios" `Slow test_small_suite_differential;
        Alcotest.test_case "comparator family" `Quick test_comparator_differential;
        Alcotest.test_case "inequivalent fixtures replay" `Quick test_inequivalent_fixtures;
        Alcotest.test_case "hybrid probes fire on comparators" `Quick test_probes_fire;
        prop_random_differential;
        prop_blowup_fallback;
      ] );
  ]
