(* End-to-end tests for the equivalence-checking core: simulation
   classes, the sweeping engine, certificates and their validation. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Simclass = Cec_core.Simclass
module Certify = Cec_core.Certify

let sweeping = Cec.Sweeping Sweep.default_config

let check_equivalent_both_engines name a b =
  List.iter
    (fun (engine_name, engine) ->
      match (Cec.check engine a b).Cec.verdict with
      | Cec.Equivalent cert -> (
        match Certify.validate_against cert a b with
        | Ok chains ->
          if chains <= 0 then
            Alcotest.failf "%s/%s: certificate verified but has no chains" name engine_name
        | Error e -> Alcotest.failf "%s/%s: %a" name engine_name Certify.pp_error e)
      | Cec.Inequivalent cex ->
        Alcotest.failf "%s/%s: spurious counterexample %s" name engine_name
          (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list cex)))
      | Cec.Undecided -> Alcotest.failf "%s/%s: undecided" name engine_name)
    [ ("monolithic", Cec.Monolithic); ("sweeping", sweeping) ]

let test_simclass_pairs () =
  (* Two structurally different parity circuits: the miter has many
     internally equivalent nodes, which random simulation should group. *)
  let miter =
    Aig.Miter.build (Circuits.Datapath.parity ~tree:true 8) (Circuits.Datapath.parity ~tree:false 8)
  in
  let simc = Simclass.create miter ~words:8 ~seed:3 in
  let classes, members = Simclass.class_stats simc in
  if classes = 0 || members < 4 then
    Alcotest.failf "expected nontrivial candidate classes, got %d classes / %d members" classes
      members

let test_simclass_refinement () =
  (* Two free inputs usually differ under random patterns, but an
     explicit distinguishing pattern must separate them permanently. *)
  let g = Aig.create ~num_inputs:2 in
  Aig.add_output g (Aig.and_ g (Aig.input g 0) (Aig.input g 1));
  let simc = Simclass.create g ~words:1 ~seed:0 in
  Simclass.add_pattern simc [| true; false |];
  let v0 = Aig.Lit.var (Aig.input g 0) and v1 = Aig.Lit.var (Aig.input g 1) in
  Alcotest.(check bool) "inputs separated" true (Simclass.leader simc v0 <> Simclass.leader simc v1
                                                 || v0 = v1)

let test_adders () =
  check_equivalent_both_engines "add4" (Circuits.Adder.ripple_carry 4)
    (Circuits.Adder.carry_lookahead 4);
  check_equivalent_both_engines "add8-select" (Circuits.Adder.ripple_carry 8)
    (Circuits.Adder.carry_select 8)

let test_multipliers () =
  check_equivalent_both_engines "mul3" (Circuits.Multiplier.array 3) (Circuits.Multiplier.shift_add 3)

let test_rewrites_equivalent () =
  let rng = Support.Rng.create 99 in
  let base = Circuits.Datapath.alu 4 in
  check_equivalent_both_engines "alu4-restructure" base
    (Circuits.Rewrite.restructure ~intensity:0.9 rng base);
  check_equivalent_both_engines "alu4-rebalance" base (Circuits.Rewrite.rebalance `Balanced base);
  check_equivalent_both_engines "alu4-dneg" base (Circuits.Rewrite.double_negate base)

let test_inequivalent () =
  (* An adder with a wrong carry: both engines must find a real cex. *)
  let good = Circuits.Adder.ripple_carry 4 in
  let bad = Circuits.Adder.ripple_carry 4 in
  (* Corrupt: complement the carry-out output. *)
  Aig.set_output bad (Aig.num_outputs bad - 1) (Aig.Lit.neg (Aig.output bad (Aig.num_outputs bad - 1)));
  List.iter
    (fun engine ->
      match (Cec.check engine good bad).Cec.verdict with
      | Cec.Inequivalent cex ->
        let miter = Aig.Miter.build good bad in
        let out = (Aig.eval miter cex).(0) in
        Alcotest.(check bool) "cex drives the miter to 1" true out
      | Cec.Equivalent _ -> Alcotest.fail "inequivalent circuits declared equivalent"
      | Cec.Undecided -> Alcotest.fail "undecided")
    [ Cec.Monolithic; sweeping ]

let test_sweep_stats () =
  let miter =
    Aig.Miter.build (Circuits.Adder.ripple_carry 8) (Circuits.Adder.carry_lookahead 8)
  in
  let outcome, stats = Sweep.run miter Sweep.default_config in
  (match outcome with
  | Sweep.Proved { proof; root; formula; _ } -> (
    match Proof.Checker.check proof ~root ~formula () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "stitched proof rejected: %a" Proof.Checker.pp_error e)
  | Sweep.Disproved _ -> Alcotest.fail "spurious cex"
  | Sweep.Unresolved -> Alcotest.fail "unresolved");
  if stats.Sweep.merges + stats.Sweep.const_merges = 0 then
    Alcotest.fail "sweeping an adder miter should merge nodes";
  if stats.Sweep.lemmas = 0 then Alcotest.fail "expected lemma clauses"

let test_lemma_reuse_off () =
  (* The ablation configuration must still be sound. *)
  let miter =
    Aig.Miter.build (Circuits.Adder.ripple_carry 4) (Circuits.Adder.carry_lookahead 4)
  in
  let cfg = { Sweep.default_config with Sweep.lemma_reuse = false } in
  match Sweep.run miter cfg with
  | Sweep.Proved { proof; root; formula; _ }, _ -> (
    match Proof.Checker.check proof ~root ~formula () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "proof rejected: %a" Proof.Checker.pp_error e)
  | (Sweep.Disproved _ | Sweep.Unresolved), _ -> Alcotest.fail "expected Proved"

let test_certificate_tamper () =
  (* A certificate whose formula lost a clause must be rejected by
     validate_against. *)
  let a = Circuits.Adder.ripple_carry 4 and b = Circuits.Adder.carry_lookahead 4 in
  match (Cec.check Cec.Monolithic a b).Cec.verdict with
  | Cec.Equivalent cert -> (
    let other = Circuits.Adder.ripple_carry 5 in
    match Certify.validate_against cert other (Circuits.Adder.carry_lookahead 5) with
    | Ok _ -> Alcotest.fail "tampered certificate accepted"
    | Error _ -> ())
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "setup failed"

let test_suite_small () =
  List.iter
    (fun case ->
      check_equivalent_both_engines case.Circuits.Suite.name (case.Circuits.Suite.golden ())
        (case.Circuits.Suite.revised ()))
    Circuits.Suite.small

let base_suites =
  [
    ( "core",
      [
        Alcotest.test_case "simclass groups parity nodes" `Quick test_simclass_pairs;
        Alcotest.test_case "simclass refinement" `Quick test_simclass_refinement;
        Alcotest.test_case "adders equivalent" `Quick test_adders;
        Alcotest.test_case "multipliers equivalent" `Quick test_multipliers;
        Alcotest.test_case "rewrites equivalent" `Quick test_rewrites_equivalent;
        Alcotest.test_case "inequivalent detected" `Quick test_inequivalent;
        Alcotest.test_case "sweep stats and stitched proof" `Quick test_sweep_stats;
        Alcotest.test_case "lemma reuse off" `Quick test_lemma_reuse_off;
        Alcotest.test_case "certificate tampering rejected" `Quick test_certificate_tamper;
        Alcotest.test_case "small suite end-to-end" `Slow test_suite_small;
      ] );
  ]

(* --- fraig (functional reduction) --- *)

let test_fraig_reduces_redundant_graph () =
  (* Restructuring inflates a circuit with functionally redundant
     nodes; fraig must shrink it back while preserving functions. *)
  let base = Circuits.Adder.ripple_carry 4 in
  let inflated = Circuits.Rewrite.restructure ~intensity:1.0 (Support.Rng.create 21) base in
  let reduced, stats = Sweep.fraig inflated Sweep.default_config in
  Alcotest.(check bool) "merges happened" true (stats.Sweep.merges + stats.Sweep.const_merges > 0);
  Alcotest.(check bool) "smaller than inflated" true (Aig.num_ands reduced < Aig.num_ands inflated);
  (* function preservation, exhaustively over the 8 inputs *)
  for mask = 0 to 255 do
    let assignment = Array.init 8 (fun i -> (mask lsr i) land 1 = 1) in
    if Aig.eval inflated assignment <> Aig.eval reduced assignment then
      Alcotest.failf "fraig changed the function on input %d" mask
  done

let prop_fraig_preserves_random =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fraig preserves random graphs" ~count:25 arb (fun seed ->
         let g =
           Circuits.Random_aig.generate (Support.Rng.create seed) ~num_inputs:5 ~num_ands:40
             ~num_outputs:3
         in
         let reduced, _ = Sweep.fraig g Sweep.default_config in
         let ok = ref (Aig.num_ands reduced <= Aig.num_ands g) in
         for mask = 0 to 31 do
           let assignment = Array.init 5 (fun i -> (mask lsr i) land 1 = 1) in
           if Aig.eval g assignment <> Aig.eval reduced assignment then ok := false
         done;
         !ok))

let test_fraig_idempotent_on_reduced () =
  let g = Circuits.Adder.ripple_carry 3 in
  let reduced, _ = Sweep.fraig g Sweep.default_config in
  let again, stats = Sweep.fraig reduced Sweep.default_config in
  Alcotest.(check int) "no further reduction" (Aig.num_ands reduced) (Aig.num_ands again);
  ignore stats

(* --- second validation path: DRUP/RUP on small stitched proofs --- *)

let test_stitched_proof_is_rup () =
  let miter =
    Aig.Miter.build (Circuits.Adder.ripple_carry 3) (Circuits.Adder.carry_lookahead 3)
  in
  match Sweep.run miter Sweep.default_config with
  | Sweep.Proved { proof; root; formula; _ }, _ -> (
    let trimmed, troot = Proof.Trim.cone proof ~root in
    let drup = Proof.Export.drup_to_string trimmed ~root:troot in
    match Proof.Rup.check_drup_string formula drup with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "stitched DRUP rejected: %a" Proof.Rup.pp_error e)
  | (Sweep.Disproved _ | Sweep.Unresolved), _ -> Alcotest.fail "expected Proved"

let test_compress_stitched_proof () =
  let miter =
    Aig.Miter.build (Circuits.Adder.ripple_carry 6) (Circuits.Adder.carry_select 6)
  in
  match Sweep.run miter Sweep.default_config with
  | Sweep.Proved { proof; root; formula; _ }, _ -> (
    let kept, original = Proof.Compress.sharing_gain proof ~root in
    Alcotest.(check bool) "sharing cannot grow the proof" true (kept <= original);
    let shared, sroot = Proof.Compress.share proof ~root in
    match Proof.Checker.check shared ~root:sroot ~formula () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "shared stitched proof rejected: %a" Proof.Checker.pp_error e)
  | (Sweep.Disproved _ | Sweep.Unresolved), _ -> Alcotest.fail "expected Proved"

let test_sweep_deterministic () =
  let miter =
    Aig.Miter.build (Circuits.Adder.ripple_carry 6) (Circuits.Adder.carry_lookahead 6)
  in
  let run () =
    let _, stats = Sweep.run miter Sweep.default_config in
    (stats.Sweep.sat_calls, stats.Sweep.merges, stats.Sweep.lemmas, stats.Sweep.conflicts)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical statistics" true (a = b)

let extra_suites =
  [
    ( "core-extensions",
      [
        Alcotest.test_case "fraig reduces redundancy" `Quick test_fraig_reduces_redundant_graph;
        prop_fraig_preserves_random;
        Alcotest.test_case "fraig idempotent" `Quick test_fraig_idempotent_on_reduced;
        Alcotest.test_case "stitched proof is RUP" `Quick test_stitched_proof_is_rup;
        Alcotest.test_case "compress stitched proof" `Quick test_compress_stitched_proof;
        Alcotest.test_case "sweep deterministic" `Quick test_sweep_deterministic;
      ] );
  ]

(* --- incremental engine mode --- *)

let incremental_cfg = { Sweep.default_config with Sweep.mode = Sweep.Incremental }

let test_incremental_suite () =
  List.iter
    (fun case ->
      let golden = case.Circuits.Suite.golden () and revised = case.Circuits.Suite.revised () in
      match (Cec.check (Cec.Sweeping incremental_cfg) golden revised).Cec.verdict with
      | Cec.Equivalent cert -> (
        match Certify.validate_against cert golden revised with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "%s/incremental: %a" case.Circuits.Suite.name Certify.pp_error e)
      | Cec.Inequivalent _ ->
        Alcotest.failf "%s/incremental: spurious cex" case.Circuits.Suite.name
      | Cec.Undecided -> Alcotest.failf "%s/incremental: undecided" case.Circuits.Suite.name)
    Circuits.Suite.small

let test_incremental_agrees_with_fresh () =
  (* Both modes must agree on verdicts, including inequivalence. *)
  let good = Circuits.Adder.ripple_carry 5 in
  let bad = Circuits.Adder.ripple_carry 5 in
  Aig.set_output bad 2 (Aig.Lit.neg (Aig.output bad 2));
  List.iter
    (fun (a, b, expect_eq) ->
      List.iter
        (fun cfg ->
          match (Cec.check (Cec.Sweeping cfg) a b).Cec.verdict with
          | Cec.Equivalent _ -> Alcotest.(check bool) "verdict" expect_eq true
          | Cec.Inequivalent _ -> Alcotest.(check bool) "verdict" expect_eq false
          | Cec.Undecided -> Alcotest.fail "undecided")
        [ Sweep.default_config; incremental_cfg ])
    [
      (good, Circuits.Adder.carry_lookahead 5, true);
      (good, bad, false);
    ]

let test_incremental_fraig () =
  let base = Circuits.Adder.ripple_carry 4 in
  let inflated = Circuits.Rewrite.restructure ~intensity:1.0 (Support.Rng.create 77) base in
  let reduced, stats = Sweep.fraig inflated incremental_cfg in
  Alcotest.(check bool) "reduces" true (Aig.num_ands reduced < Aig.num_ands inflated);
  Alcotest.(check bool) "made sat calls" true (stats.Sweep.sat_calls > 0);
  for mask = 0 to 255 do
    let assignment = Array.init 8 (fun i -> (mask lsr i) land 1 = 1) in
    if Aig.eval inflated assignment <> Aig.eval reduced assignment then
      Alcotest.failf "incremental fraig broke function at %d" mask
  done

let test_incremental_faster_proofs_check () =
  (* The incremental stitched proof is also RUP-checkable. *)
  let miter =
    Aig.Miter.build (Circuits.Adder.ripple_carry 3) (Circuits.Adder.carry_lookahead 3)
  in
  match Sweep.run miter incremental_cfg with
  | Sweep.Proved { proof; root; formula; _ }, _ -> (
    let trimmed, troot = Proof.Trim.cone proof ~root in
    match Proof.Rup.check_drup_string formula (Proof.Export.drup_to_string trimmed ~root:troot) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "incremental DRUP rejected: %a" Proof.Rup.pp_error e)
  | (Sweep.Disproved _ | Sweep.Unresolved), _ -> Alcotest.fail "expected Proved"

let incremental_suites =
  [
    ( "core-incremental",
      [
        Alcotest.test_case "small suite certified" `Quick test_incremental_suite;
        Alcotest.test_case "agrees with fresh mode" `Quick test_incremental_agrees_with_fresh;
        Alcotest.test_case "incremental fraig" `Quick test_incremental_fraig;
        Alcotest.test_case "incremental proof is RUP" `Quick test_incremental_faster_proofs_check;
      ] );
  ]

(* --- per-output checking --- *)

let test_check_outputs_localizes () =
  let good = Circuits.Adder.ripple_carry 4 in
  let bad = Circuits.Adder.ripple_carry 4 in
  Aig.set_output bad 2 (Aig.Lit.neg (Aig.output bad 2));
  let reports = Cec.check_outputs sweeping good bad in
  Array.iter
    (fun r ->
      match r.Cec.output_verdict with
      | Cec.Equivalent _ ->
        if r.Cec.output = 2 then Alcotest.fail "corrupted output declared equivalent"
      | Cec.Inequivalent _ ->
        Alcotest.(check int) "only output 2 differs" 2 r.Cec.output
      | Cec.Undecided -> Alcotest.fail "undecided")
    reports

let test_check_outputs_all_equal () =
  let reports =
    Cec.check_outputs Cec.Monolithic (Circuits.Adder.ripple_carry 4)
      (Circuits.Adder.carry_lookahead 4)
  in
  Array.iter
    (fun r ->
      match r.Cec.output_verdict with
      | Cec.Equivalent _ -> ()
      | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.failf "output %d not proved" r.Cec.output)
    reports

(* --- differential fuzzing across all four engines --- *)

let test_differential_engines () =
  (* For random (g, rewritten g) pairs — and corrupted variants — the
     monolithic, fresh-sweeping, incremental-sweeping and BDD engines
     must agree on the verdict. *)
  let rng = Support.Rng.create 2024 in
  for round = 1 to 12 do
    let g =
      Circuits.Random_aig.generate
        (Support.Rng.create (1000 + round))
        ~num_inputs:6 ~num_ands:50 ~num_outputs:3
    in
    let revised = Circuits.Rewrite.restructure (Support.Rng.create (2000 + round)) g in
    let revised =
      if Support.Rng.bool rng then revised
      else begin
        (* corrupt one output *)
        let o = Support.Rng.int rng (Aig.num_outputs revised) in
        (* avoid a no-op when the output is constant-false and its
           complement would also differ... complementing always changes
           the function. *)
        Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o));
        revised
      end
    in
    let sat_verdict engine =
      match (Cec.check engine g revised).Cec.verdict with
      | Cec.Equivalent _ -> true
      | Cec.Inequivalent _ -> false
      | Cec.Undecided -> Alcotest.fail "undecided"
    in
    let v_mono = sat_verdict Cec.Monolithic in
    let v_fresh = sat_verdict sweeping in
    let v_inc = sat_verdict (Cec.Sweeping incremental_cfg) in
    let v_bdd =
      match (Bdd.Equiv.check g revised).Bdd.Equiv.verdict with
      | Bdd.Equiv.Equivalent -> true
      | Bdd.Equiv.Inequivalent _ -> false
      | Bdd.Equiv.Blowup -> Alcotest.fail "bdd blowup on tiny instance"
    in
    if not (v_mono = v_fresh && v_fresh = v_inc && v_inc = v_bdd) then
      Alcotest.failf "round %d: engines disagree (mono=%b fresh=%b inc=%b bdd=%b)" round v_mono
        v_fresh v_inc v_bdd
  done

let differential_suites =
  [
    ( "core-differential",
      [
        Alcotest.test_case "per-output localization" `Quick test_check_outputs_localizes;
        Alcotest.test_case "per-output all equal" `Quick test_check_outputs_all_equal;
        Alcotest.test_case "four engines agree" `Quick test_differential_engines;
      ] );
  ]

let suites = base_suites @ extra_suites @ incremental_suites @ differential_suites
