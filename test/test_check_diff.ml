(* Differential harness over the certificate checkers.

   Three independent implementations validate binary certificates: the
   searching streaming checker ([Stream_check]), the search-free hinted
   checker ([Hint_check]) sequentially, and the same checker with its
   shards spread over several domains.  They must accept exactly the
   same certificates — hinted certificates re-encode every proof the
   un-hinted format carries, so any divergence is a checker bug, not a
   prover bug — and reject corrupted ones with the same
   malformed-vs-invalid classification (the CLI's exit-code 2 vs 3
   split).  The sharded run must further be bit-identical to the
   sequential one: same stats on acceptance, same error record on
   rejection, for every job count. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel
module R = Proof.Resolution
module Clause = Cnf.Clause
module Suite = Circuits.Suite

let engine mode = Cec.Sweeping { Sweep.default_config with Sweep.mode }

let cert_of ?(mode = Sweep.Perpair) golden revised =
  match (Cec.check (engine mode) golden revised).Cec.verdict with
  | Cec.Equivalent cert -> Some cert
  | Cec.Inequivalent _ | Cec.Undecided -> None

let parallel_cert golden revised =
  let config = { Parallel.default_config with Parallel.num_domains = 2 } in
  match (Parallel.check ~config golden revised).Parallel.verdict with
  | Cec.Equivalent cert -> Some cert
  | Cec.Inequivalent _ | Cec.Undecided -> None

(* Small shards so even the small fixtures exercise the multi-shard
   machinery (the production default of 256 would coalesce them). *)
let encode_v3 (cert : Cec.certificate) =
  Proof.Binfmt.encode_hinted ~boundaries:cert.Cec.boundaries ~min_shard_nodes:16
    cert.Cec.proof ~root:cert.Cec.root

let encode_v1 (cert : Cec.certificate) =
  Proof.Binfmt.encode cert.Cec.proof ~root:cert.Cec.root

let stream formula data = Proof.Stream_check.check ~formula data
let hint ?(jobs = 1) formula data = Proof.Hint_check.check ~formula ~jobs data

(* --- three-way acceptance agreement on valid certificates --- *)

let accept_all ~what (cert : Cec.certificate) =
  let formula = cert.Cec.formula in
  let v1 = encode_v1 cert and v3 = encode_v3 cert in
  Alcotest.(check bool) (what ^ ": v3 sniffed as hinted") true (Proof.Binfmt.is_hinted v3);
  Alcotest.(check bool) (what ^ ": v1 not sniffed as hinted") false (Proof.Binfmt.is_hinted v1);
  let s1 =
    match stream formula v1 with
    | Ok st -> st
    | Error e ->
      Alcotest.failf "%s: stream checker rejected v1: %a" what Proof.Stream_check.pp_error e
  in
  let s3 =
    match stream formula v3 with
    | Ok st -> st
    | Error e ->
      Alcotest.failf "%s: stream checker rejected v3: %a" what Proof.Stream_check.pp_error e
  in
  let h1 =
    match hint formula v3 with
    | Ok st -> st
    | Error e ->
      Alcotest.failf "%s: hinted checker rejected v3: %a" what Proof.Hint_check.pp_error e
  in
  let h4 =
    match hint ~jobs:4 formula v3 with
    | Ok st -> st
    | Error e ->
      Alcotest.failf "%s: hinted checker (jobs=4) rejected v3: %a" what
        Proof.Hint_check.pp_error e
  in
  (* Both encoders share one emission plan: same nodes, same chains,
     same delete schedule, hence the same streaming peak. *)
  Alcotest.(check int) (what ^ ": same node count") s1.Proof.Stream_check.nodes
    s3.Proof.Stream_check.nodes;
  Alcotest.(check int) (what ^ ": same chain count") s1.Proof.Stream_check.chains
    s3.Proof.Stream_check.chains;
  Alcotest.(check int) (what ^ ": v1/v3 streaming peak identical")
    s1.Proof.Stream_check.peak_live s3.Proof.Stream_check.peak_live;
  Alcotest.(check int) (what ^ ": hinted chains") s3.Proof.Stream_check.chains
    h1.Proof.Hint_check.chains;
  Alcotest.(check int) (what ^ ": hinted nodes") s3.Proof.Stream_check.nodes
    h1.Proof.Hint_check.nodes;
  (* The zero-search pin: every resolution step followed its hint, and
     the step count is exactly the proof's resolution count. *)
  Alcotest.(check int)
    (what ^ ": every step followed a hint")
    h1.Proof.Hint_check.steps h1.Proof.Hint_check.hints_followed;
  let expected_steps =
    (Proof.Pstats.of_root cert.Cec.proof ~root:cert.Cec.root).Proof.Pstats.resolutions
  in
  Alcotest.(check int) (what ^ ": steps = proof resolutions") expected_steps
    h1.Proof.Hint_check.steps;
  (* Sharded live sets (local clauses + held imports) never exceed the
     sequential checker's peak. *)
  Alcotest.(check bool)
    (what ^ ": hinted peak within streaming peak")
    true
    (h1.Proof.Hint_check.peak_live <= s3.Proof.Stream_check.peak_live);
  (* Job-count independence of every reported number. *)
  if h1 <> h4 then Alcotest.failf "%s: stats differ between jobs=1 and jobs=4" what;
  (v1, v3)

(* Hint round-trip: decoding the hinted body re-derives every chain by
   following its stored pivots only; decoding the un-hinted body
   re-derives the same chains by clash search.  Node-for-node the
   results must coincide. *)
let roundtrip_agrees ~what v1 v3 =
  let p1, r1 = Proof.Binfmt.decode v1 in
  let p3, r3 = Proof.Binfmt.decode v3 in
  Alcotest.(check int) (what ^ ": same decoded size") (R.size p1) (R.size p3);
  Alcotest.(check int) (what ^ ": same decoded root") r1 r3;
  for id = 0 to R.size p1 - 1 do
    if not (Clause.equal (R.clause_of p1 id) (R.clause_of p3 id)) then
      Alcotest.failf "%s: node %d: hinted derivation %s <> searched %s" what id
        (Clause.to_dimacs_string (R.clause_of p3 id))
        (Clause.to_dimacs_string (R.clause_of p1 id))
  done

let differential ~what (cert : Cec.certificate) =
  let v1, v3 = accept_all ~what cert in
  roundtrip_agrees ~what v1 v3

(* --- fixed golden circuits, all prover shapes --- *)

let test_golden_circuits () =
  List.iter
    (fun (case : Suite.case) ->
      List.iter
        (fun mode ->
          let golden = case.Suite.golden () and revised = case.Suite.revised () in
          match cert_of ~mode golden revised with
          | Some cert ->
            differential ~what:(case.Suite.name ^ "/" ^ Sweep.mode_to_string mode) cert
          | None -> Alcotest.failf "%s: no certificate" case.Suite.name)
        [ Sweep.Perpair; Sweep.Incremental ])
    Suite.small

let test_partitioned_certificate () =
  (* Multi-output pair through [Parallel.check]: the stitch records one
     boundary per partition, so this is the certificate shape the shard
     table exists for. *)
  let golden = Circuits.Multiplier.array 4 in
  let revised = Circuits.Rewrite.restructure (Support.Rng.create 11) golden in
  match parallel_cert golden revised with
  | Some cert ->
    Alcotest.(check bool) "stitch recorded boundaries" true
      (Array.length cert.Cec.boundaries > 0);
    let _, v3 = accept_all ~what:"mul4-partitioned" cert in
    let r = Proof.Binfmt.reader v3 in
    Alcotest.(check bool) "multi-shard body" true (Array.length (Proof.Binfmt.shards r) > 1)
  | None -> Alcotest.fail "partitioned check did not prove equivalence"

(* --- random AIG pairs (qcheck) --- *)

let qtest ?(count = 20) name prop =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let random_equivalent_pair seed =
  let num_inputs = 4 + (seed mod 3) in
  let golden =
    Circuits.Random_aig.generate
      (Support.Rng.create (1 + seed))
      ~num_inputs
      ~num_ands:(20 + (seed mod 30))
      ~num_outputs:(1 + (seed mod 2))
  in
  let revised = Circuits.Rewrite.restructure (Support.Rng.create (7 * seed)) golden in
  (golden, revised)

let prop_random_pairs_agree =
  qtest "checkers agree on random certificates" (fun seed ->
      let golden, revised = random_equivalent_pair seed in
      let mode = if seed mod 2 = 0 then Sweep.Perpair else Sweep.Incremental in
      (match cert_of ~mode golden revised with
      | Some cert -> differential ~what:(Printf.sprintf "random-%d" seed) cert
      | None -> ());
      true)

(* --- corruption fuzzing --- *)

(* One fixed hinted certificate with several shards and plenty of
   records, plus its formula. *)
let fuzz_fixture =
  lazy
    (let case = Option.get (Suite.find "mul3-arr-sa") in
     match cert_of (case.Suite.golden ()) (case.Suite.revised ()) with
     | Some cert -> (encode_v3 cert, cert.Cec.formula)
     | None -> failwith "fuzz setup failed")

(* All three verdicts on one body, with the sharded checker pinned
   bit-identical to the sequential one (error record included — the
   join always checks every shard and picks a deterministic failure, so
   rejection must not depend on the job count either). *)
let verdicts data =
  let _, formula = Lazy.force fuzz_fixture in
  let s = stream formula data in
  let h1 = hint formula data in
  let h4 = hint ~jobs:4 formula data in
  (match (h1, h4) with
  | Ok a, Ok b when a = b -> ()
  | Error a, Error b when a = b -> ()
  | _ -> Alcotest.fail "hinted checker diverges between jobs=1 and jobs=4");
  (s, h1)

(* The CLI maps [malformed] to exit 2 and any other rejection to exit
   3; classification agreement preserves that split across checkers. *)
let check_agreement ~what s h =
  match (s, h) with
  | Ok _, Ok _ -> ()
  | Error se, Error he ->
    Alcotest.(check bool)
      (what ^ ": same malformed classification")
      se.Proof.Stream_check.malformed he.Proof.Hint_check.malformed
  | Ok _, Error he ->
    Alcotest.failf "%s: stream accepts but hinted rejects: %a" what Proof.Hint_check.pp_error he
  | Error se, Ok _ ->
    Alcotest.failf "%s: hinted accepts but stream rejects: %a" what Proof.Stream_check.pp_error
      se

let prop_bitflip_fuzz =
  qtest ~count:150 "single-bit corruption classified identically" (fun seed ->
      let data, formula = Lazy.force fuzz_fixture in
      let pos = seed mod String.length data in
      let bit = 1 lsl (seed / String.length data mod 8) in
      let corrupted =
        String.mapi (fun i c -> if i = pos then Char.chr (Char.code c lxor bit) else c) data
      in
      let s, h = verdicts corrupted in
      check_agreement ~what:(Printf.sprintf "flip@%d^%d" pos bit) s h;
      (match (s, h) with
      | Ok _, Ok _ ->
        (* A flip that still passes every checker must be a genuinely
           valid certificate (e.g. the flip landed in redundant
           encoding slack — there is none today, so this guards the
           claim). *)
        let proof, root = Proof.Binfmt.decode corrupted in
        (match Proof.Checker.check proof ~root ~formula () with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "flip@%d^%d: checkers accepted an invalid proof: %a" pos bit
            Proof.Checker.pp_error e)
      | _ -> ());
      true)

let prop_truncation_fuzz =
  qtest ~count:100 "truncation rejected at every cut point" (fun seed ->
      let data, _ = Lazy.force fuzz_fixture in
      let cut = seed mod (String.length data - 1) in
      let s, h = verdicts (String.sub data 0 cut) in
      (match (s, h) with
      | Ok _, _ | _, Ok _ -> Alcotest.failf "cut@%d: truncated certificate accepted" cut
      | Error _, Error _ -> check_agreement ~what:(Printf.sprintf "cut@%d" cut) s h);
      true)

let suites =
  [
    ( "check-differential",
      [
        Alcotest.test_case "golden circuits, both sweep modes" `Quick test_golden_circuits;
        Alcotest.test_case "partitioned certificate round-trip" `Quick
          test_partitioned_certificate;
      ] );
    ( "qcheck-check-differential",
      [ prop_random_pairs_agree; prop_bitflip_fuzz; prop_truncation_fuzz ] );
  ]
