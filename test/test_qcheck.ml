(* Property-based differential tests: random circuit pairs checked by
   every engine, certificates re-validated, proof-checker fuzzing by
   store corruption, and parser/printer round-trips. *)

module Cec = Cec_core.Cec
module Sweep = Cec_core.Sweep
module Parallel = Cec_core.Parallel
module R = Proof.Resolution
module Clause = Cnf.Clause

let sweeping = Cec.Sweeping Sweep.default_config

let qtest ?(count = 20) name prop =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* Random (golden, revised) pairs: a random AIG against a restructured
   copy, with roughly a third of the seeds corrupting one output so
   that inequivalent instances are exercised too. *)
let random_pair seed =
  let num_inputs = 4 + (seed mod 3) in
  let num_outputs = 1 + (seed mod 3) in
  let golden =
    Circuits.Random_aig.generate
      (Support.Rng.create (1 + seed))
      ~num_inputs ~num_ands:(20 + (seed mod 30)) ~num_outputs
  in
  let revised = Circuits.Rewrite.restructure (Support.Rng.create (7 * seed)) golden in
  if seed mod 3 = 2 then begin
    let o = seed mod Aig.num_outputs revised in
    Aig.set_output revised o (Aig.Lit.neg (Aig.output revised o));
    (golden, revised)
  end
  else (golden, revised)

let verdict_of = function
  | Cec.Equivalent _ -> "eq"
  | Cec.Inequivalent _ -> "neq"
  | Cec.Undecided -> "undecided"

(* (a) The monolithic, sweeping and parallel engines agree. *)
let prop_engines_agree =
  qtest "mono/sweep/parallel verdicts agree" (fun seed ->
      let golden, revised = random_pair seed in
      let mono = (Cec.check Cec.Monolithic golden revised).Cec.verdict in
      let sweep = (Cec.check sweeping golden revised).Cec.verdict in
      let par =
        (Parallel.check
           ~config:{ Parallel.default_config with Parallel.num_domains = 2 }
           golden revised)
          .Parallel.verdict
      in
      let ok = verdict_of mono = verdict_of sweep && verdict_of sweep = verdict_of par in
      if not ok then
        QCheck.Test.fail_reportf "mono=%s sweep=%s parallel=%s" (verdict_of mono)
          (verdict_of sweep) (verdict_of par);
      true)

(* (b) Every Equivalent certificate is a checkable refutation of its
   own formula, whichever engine produced it. *)
let prop_certificates_check =
  qtest "equivalence certificates pass the checker" (fun seed ->
      let golden, revised = random_pair seed in
      let certs =
        List.filter_map
          (fun verdict -> match verdict with Cec.Equivalent cert -> Some cert | _ -> None)
          [
            (Cec.check Cec.Monolithic golden revised).Cec.verdict;
            (Cec.check sweeping golden revised).Cec.verdict;
            (Parallel.check golden revised).Parallel.verdict;
          ]
      in
      List.iter
        (fun (cert : Cec.certificate) ->
          match
            Proof.Checker.check cert.Cec.proof ~root:cert.Cec.root ~formula:cert.Cec.formula ()
          with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "certificate rejected: %a" Proof.Checker.pp_error e)
        certs;
      true)

(* (c) Every Inequivalent witness really drives the miter output to 1
   under bit-parallel simulation. *)
let prop_witnesses_simulate =
  qtest "counterexamples drive the miter output" (fun seed ->
      let golden, revised = random_pair seed in
      List.iter
        (fun verdict ->
          match verdict with
          | Cec.Inequivalent cex ->
            let miter = Aig.Miter.build golden revised in
            let sim = Aig.Sim.create miter ~words:1 in
            Array.iteri (fun i b -> Aig.Sim.set_input_bit sim ~input:i ~bit:0 b) cex;
            Aig.Sim.run sim;
            if not (Aig.Sim.lit_bit sim (Aig.output miter 0) ~bit:0) then
              QCheck.Test.fail_report "witness does not set the miter output"
          | Cec.Equivalent _ | Cec.Undecided -> ())
        [
          (Cec.check Cec.Monolithic golden revised).Cec.verdict;
          (Cec.check sweeping golden revised).Cec.verdict;
          (Parallel.check golden revised).Parallel.verdict;
        ];
      true)

(* --- proof-checker fuzzing: corrupt a valid store, expect rejection --- *)

(* A valid refutation (with its formula) to corrupt. *)
let valid_proof =
  lazy
    (let miter =
       Aig.Miter.build (Circuits.Adder.ripple_carry 3) (Circuits.Adder.carry_lookahead 3)
     in
     match Sweep.run miter Sweep.default_config with
     | Sweep.Proved { proof; root; formula; _ }, _ -> (proof, root, formula)
     | (Sweep.Disproved _ | Sweep.Unresolved), _ -> failwith "fuzz setup failed")

(* Copy the cone of [root] into a fresh store, passing every node
   through [mutate] (which sees the original node and ids remapped to
   the copy). *)
let copy_with ~mutate src ~root =
  let dst = R.create () in
  let map = Hashtbl.create 64 in
  Array.iter
    (fun id ->
      let remap a = Hashtbl.find map a in
      let dst_id =
        match mutate dst id (R.node src id) with
        | R.Leaf { clause; assumption } -> R.add_leaf ~assumption dst clause
        | R.Chain { clause; antecedents; pivots } ->
          R.add_chain dst ~clause ~antecedents:(Array.map remap antecedents) ~pivots
      in
      Hashtbl.add map id dst_id)
    (R.reachable src ~root);
  (dst, Hashtbl.find map root)

(* The ids of chain nodes in the cone, for picking a corruption site. *)
let cone_chains src ~root =
  Array.to_list (R.reachable src ~root)
  |> List.filter (fun id -> match R.node src id with R.Chain _ -> true | R.Leaf _ -> false)

let pick_chain seed =
  let src, root, _ = Lazy.force valid_proof in
  let chains = cone_chains src ~root in
  (src, root, List.nth chains (seed mod List.length chains))

let expect_rejected ?formula what (proof, root) =
  match Proof.Checker.check proof ~root ?formula () with
  | Ok _ -> QCheck.Test.fail_reportf "%s accepted" what
  | Error e ->
    if String.length e.Proof.Checker.reason = 0 then
      QCheck.Test.fail_reportf "%s rejected without a reason" what;
    true

let fresh_var () =
  let _, _, formula = Lazy.force valid_proof in
  Cnf.Formula.num_vars formula + 1

(* A pivot variable that occurs nowhere makes the resolution step
   invalid rather than merely wrong. *)
let prop_checker_rejects_wrong_pivot =
  qtest "checker rejects wrong pivot" (fun seed ->
      let src, root, victim = pick_chain seed in
      let mutate _dst id node =
        match node with
        | R.Chain { clause; antecedents; pivots } when id = victim ->
          let pivots = Array.copy pivots in
          pivots.(seed mod Array.length pivots) <- fresh_var () + (seed mod 5);
          R.Chain { clause; antecedents; pivots }
        | n -> n
      in
      expect_rejected "wrong-pivot proof" (copy_with ~mutate src ~root))

(* Redirecting an antecedent at an unrelated unit leaf breaks the
   chain: the pivot either stops clashing or resolves to a different
   clause. *)
let prop_checker_rejects_swapped_antecedent =
  qtest "checker rejects swapped antecedent" (fun seed ->
      let src, root, victim = pick_chain seed in
      let dst = R.create () in
      let map = Hashtbl.create 64 in
      Array.iter
        (fun id ->
          let dst_id =
            match R.node src id with
            | R.Leaf { clause; assumption } -> R.add_leaf ~assumption dst clause
            | R.Chain { clause; antecedents; pivots } ->
              let antecedents = Array.map (Hashtbl.find map) antecedents in
              if id = victim then begin
                let bogus =
                  R.add_leaf dst
                    (Clause.singleton (Aig.Lit.of_var (fresh_var () + (seed mod 5))))
                in
                antecedents.(seed mod Array.length antecedents) <- bogus
              end;
              R.add_chain dst ~clause ~antecedents ~pivots
          in
          Hashtbl.add map id dst_id)
        (R.reachable src ~root);
      expect_rejected "swapped-antecedent proof" (dst, Hashtbl.find map root))

(* Growing a chain's stored clause by a fresh literal must be caught
   by recompute-and-compare. *)
let prop_checker_rejects_mutated_clause =
  qtest "checker rejects mutated stored clause" (fun seed ->
      let src, root, victim = pick_chain seed in
      let mutate _dst id node =
        match node with
        | R.Chain { clause; antecedents; pivots } when id = victim ->
          let extra = Aig.Lit.of_var (fresh_var () + (seed mod 5)) in
          let clause = Clause.of_list (extra :: Clause.to_list clause) in
          R.Chain { clause; antecedents; pivots }
        | n -> n
      in
      expect_rejected "mutated-clause proof" (copy_with ~mutate src ~root))

(* Leaf clauses outside the formula are rejected when checking
   against it. *)
let prop_checker_rejects_foreign_leaf =
  qtest "checker rejects leaf outside the formula" (fun seed ->
      let src, root, formula = Lazy.force valid_proof in
      let leaves =
        Array.to_list (R.reachable src ~root)
        |> List.filter (fun id ->
               match R.node src id with R.Leaf _ -> true | R.Chain _ -> false)
      in
      let victim = List.nth leaves (seed mod List.length leaves) in
      let mutate _dst id node =
        match node with
        | R.Leaf { clause; assumption } when id = victim ->
          let extra = Aig.Lit.of_var (fresh_var () + (seed mod 5)) in
          R.Leaf { clause = Clause.of_list (extra :: Clause.to_list clause); assumption }
        | n -> n
      in
      expect_rejected ~formula "foreign-leaf proof" (copy_with ~mutate src ~root))

(* Assumption leaves must never survive into a final proof. *)
let prop_checker_rejects_leftover_assumption =
  qtest "checker rejects leftover assumption leaf" (fun seed ->
      let src, root, _ = Lazy.force valid_proof in
      let leaves =
        Array.to_list (R.reachable src ~root)
        |> List.filter (fun id ->
               match R.node src id with R.Leaf _ -> true | R.Chain _ -> false)
      in
      let victim = List.nth leaves (seed mod List.length leaves) in
      let mutate _dst id node =
        match node with
        | R.Leaf { clause; _ } when id = victim -> R.Leaf { clause; assumption = true }
        | n -> n
      in
      expect_rejected "assumption-bearing proof" (copy_with ~mutate src ~root))

(* Dangling antecedent ids cannot even be constructed: the store
   rejects them at append time. *)
let test_store_rejects_dangling_id () =
  let proof = R.create () in
  let a = R.add_leaf proof (Clause.singleton (Aig.Lit.of_var 1)) in
  let b = R.add_leaf proof (Clause.singleton (Aig.Lit.neg (Aig.Lit.of_var 1))) in
  (try
     ignore
       (R.add_chain proof ~clause:Clause.empty ~antecedents:[| a; b + 17 |] ~pivots:[| 1 |]);
     Alcotest.fail "dangling antecedent id accepted"
   with Invalid_argument _ -> ());
  match R.node proof (b + 17) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range node id accepted"

(* --- round-trips --- *)

let random_graph seed =
  Circuits.Random_aig.generate
    (Support.Rng.create (31 + seed))
    ~num_inputs:(3 + (seed mod 4))
    ~num_ands:(15 + (seed mod 40))
    ~num_outputs:(1 + (seed mod 3))

(* Semantic agreement of two same-interface graphs on random patterns. *)
let simulate_agree seed a b =
  Aig.num_inputs a = Aig.num_inputs b
  && Aig.num_outputs a = Aig.num_outputs b
  &&
  let sa = Aig.Sim.create a ~words:4 and sb = Aig.Sim.create b ~words:4 in
  Aig.Sim.randomize_inputs sa (Support.Rng.create (1234 + seed));
  Aig.Sim.randomize_inputs sb (Support.Rng.create (1234 + seed));
  Aig.Sim.run sa;
  Aig.Sim.run sb;
  let ok = ref true in
  for o = 0 to Aig.num_outputs a - 1 do
    if Aig.Sim.lit_values sa (Aig.output a o) <> Aig.Sim.lit_values sb (Aig.output b o) then
      ok := false
  done;
  !ok

let clauses_of formula =
  let acc = ref [] in
  Cnf.Formula.iter (fun c -> acc := c :: !acc) formula;
  List.sort Clause.compare !acc

let prop_dimacs_roundtrip =
  qtest "DIMACS parse-print round-trip" (fun seed ->
      let formula = Cnf.Tseitin.of_graph (random_graph seed) in
      let reparsed = Cnf.Dimacs.of_string (Cnf.Dimacs.to_string formula) in
      let ok = clauses_of formula = clauses_of reparsed in
      if not ok then QCheck.Test.fail_report "clause sets differ after round-trip";
      true)

let prop_aiger_roundtrip =
  qtest "AIGER write-read preserves semantics" (fun seed ->
      let g = random_graph seed in
      let reread = Aig.Aiger.of_string (Aig.Aiger.to_string g) in
      simulate_agree seed g reread)

let prop_blif_roundtrip =
  qtest "BLIF write-read preserves semantics" (fun seed ->
      let g = random_graph seed in
      let reread = Aig.Blif.of_string (Aig.Blif.to_string g) in
      simulate_agree seed g reread)

(* Dense-trace export/import round-trips on proofs produced by real
   sweeping runs (lemma reuse on, so lifted lemma proofs are included):
   the reparsed proof must keep the root clause and stay checkable
   against the original certificate's formula. *)
let clause_at proof id =
  match R.node proof id with
  | R.Leaf { clause; _ } | R.Chain { clause; _ } -> clause

let prop_trace_roundtrip =
  qtest "resolution trace export round-trip" (fun seed ->
      let golden, revised = random_pair seed in
      match (Cec.check sweeping golden revised).Cec.verdict with
      | Cec.Inequivalent _ | Cec.Undecided -> true (* refutations only *)
      | Cec.Equivalent cert ->
        let trimmed, root = Proof.Trim.cone cert.Cec.proof ~root:cert.Cec.root in
        let text = Proof.Export.trace_to_string trimmed ~root in
        let proof', root' = Proof.Export.trace_of_string text in
        if Clause.compare (clause_at trimmed root) (clause_at proof' root') <> 0 then
          QCheck.Test.fail_report "root clause changed across the round-trip";
        (match
           Proof.Checker.check proof' ~root:root' ~formula:cert.Cec.formula ()
         with
        | Ok _ -> ()
        | Error e ->
          QCheck.Test.fail_reportf "reparsed proof rejected: %a" Proof.Checker.pp_error e);
        (* The round-trip is a fixpoint: re-export reproduces the text. *)
        if Proof.Export.trace_to_string proof' ~root:root' <> text then
          QCheck.Test.fail_report "re-export diverged from the original trace";
        true)

(* Binary certificates: encode real sweeping refutations and (a) decode
   back to an equivalent checkable proof, (b) validate with the
   streaming checker, (c) fuzz the bytes — corruption must come back as
   [Error], never an exception or a crash. *)
let prop_binfmt_roundtrip =
  qtest "binary certificate round-trip" (fun seed ->
      let golden, revised = random_pair seed in
      match (Cec.check sweeping golden revised).Cec.verdict with
      | Cec.Inequivalent _ | Cec.Undecided -> true (* refutations only *)
      | Cec.Equivalent cert ->
        let proof = cert.Cec.proof and root = cert.Cec.root in
        let data = Proof.Binfmt.encode proof ~root in
        (* The encoder trims, so compare against the trimmed cone. *)
        let trimmed, troot = Proof.Trim.cone proof ~root in
        let proof', root' = Proof.Binfmt.decode data in
        if R.size proof' <> Array.length (R.reachable trimmed ~root:troot) then
          QCheck.Test.fail_report "decoded node count differs from the trimmed cone";
        if Clause.compare (clause_at trimmed troot) (clause_at proof' root') <> 0 then
          QCheck.Test.fail_report "root clause changed across the round-trip";
        (match Proof.Checker.check proof' ~root:root' ~formula:cert.Cec.formula () with
        | Ok _ -> ()
        | Error e ->
          QCheck.Test.fail_reportf "decoded proof rejected: %a" Proof.Checker.pp_error e);
        (match Proof.Stream_check.check ~formula:cert.Cec.formula data with
        | Ok st ->
          if st.Proof.Stream_check.nodes <> R.size proof' then
            QCheck.Test.fail_report "streaming node count differs from decode";
          if st.Proof.Stream_check.peak_live > st.Proof.Stream_check.nodes then
            QCheck.Test.fail_report "peak live above node count"
        | Error e ->
          QCheck.Test.fail_reportf "streaming checker rejected a valid certificate: %a"
            Proof.Stream_check.pp_error e);
        (* Deterministic encoding: same proof, same bytes. *)
        if Proof.Binfmt.encode proof' ~root:root' <> data then
          QCheck.Test.fail_report "re-encode diverged from the original bytes";
        true)

let valid_cert_bytes =
  lazy
    (let proof, root, formula = Lazy.force valid_proof in
     (Proof.Binfmt.encode proof ~root, formula))

let prop_binfmt_fuzz =
  qtest ~count:200 "corrupted binary certificates never crash" (fun seed ->
      let data, formula = Lazy.force valid_cert_bytes in
      let rng = Support.Rng.create (seed + 1) in
      let mutated =
        match seed mod 3 with
        | 0 ->
          (* Truncate somewhere (including inside the header). *)
          String.sub data 0 (Support.Rng.int rng (String.length data))
        | 1 ->
          (* Flip one byte. *)
          let i = Support.Rng.int rng (String.length data) in
          let b = 1 + Support.Rng.int rng 255 in
          String.mapi (fun j c -> if i = j then Char.chr (Char.code c lxor b) else c) data
        | _ ->
          (* Splice a random byte in. *)
          let i = Support.Rng.int rng (String.length data) in
          String.sub data 0 i
          ^ String.make 1 (Char.chr (Support.Rng.int rng 256))
          ^ String.sub data i (String.length data - i)
      in
      (* Whatever the mutation did, the checker must return a Result —
         a mutation that leaves the certificate valid is legitimately
         accepted, anything else must be a structured rejection. *)
      (match Proof.Stream_check.check ~formula mutated with
      | Ok _ | Error _ -> ());
      (* Corruption within the 5 header bytes is always detected. *)
      (if String.length mutated < String.length Proof.Binfmt.magic + 1
          || not (String.equal (String.sub mutated 0 5) (String.sub data 0 5))
       then
         match Proof.Stream_check.check ~formula mutated with
         | Ok _ -> QCheck.Test.fail_report "corrupted header accepted"
         | Error e ->
           if not e.Proof.Stream_check.malformed then
             QCheck.Test.fail_report "corrupted header reported as semantic");
      (* [decode] may raise [Failure] (documented) but nothing else. *)
      (match Proof.Binfmt.decode mutated with
      | _ -> ()
      | exception Failure _ -> ());
      true)

let suites =
  [
    ( "qcheck-differential",
      [
        prop_engines_agree;
        prop_certificates_check;
        prop_witnesses_simulate;
      ] );
    ( "qcheck-checker-fuzz",
      [
        prop_checker_rejects_wrong_pivot;
        prop_checker_rejects_swapped_antecedent;
        prop_checker_rejects_mutated_clause;
        prop_checker_rejects_foreign_leaf;
        prop_checker_rejects_leftover_assumption;
        Alcotest.test_case "store rejects dangling ids" `Quick test_store_rejects_dangling_id;
      ] );
    ( "qcheck-roundtrip",
      [
        prop_dimacs_roundtrip;
        prop_aiger_roundtrip;
        prop_blif_roundtrip;
        prop_trace_roundtrip;
      ] );
    ( "qcheck-binfmt",
      [
        prop_binfmt_roundtrip;
        prop_binfmt_fuzz;
      ] );
  ]
