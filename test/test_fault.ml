(* Fault injection and every recovery path it drives: the spec
   language and its deterministic firing, Parallel/Engine supervision
   and graceful degradation, store crash recovery (orphan tmp files,
   torn writes, fsck quarantine and re-adoption), the EINTR-safe wire
   helpers, the retrying client, and the daemon's stale-socket probe
   and typed worker-crash errors. *)

module Cec = Cec_core.Cec
module Parallel = Cec_core.Parallel
module Key = Service.Key
module Protocol = Service.Protocol
module Metrics = Service.Metrics
module Store = Service.Store
module Engine = Service.Engine
module Server = Service.Server
module Client = Service.Client
module Wire = Service.Wire
module Batch = Service.Batch

(* --- scratch directories (as in test_service) --- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let with_temp_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let spec_exn s =
  match Fault.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec %S did not parse: %s" s e

let small_pair () =
  let case = List.hd Circuits.Suite.small in
  (Key.normalize (case.Circuits.Suite.golden ()), Key.normalize (case.Circuits.Suite.revised ()))

(* --- the spec language --- *)

let test_spec_round_trip () =
  let s = "store.write:0.05,worker.crash:0.01@seed=42" in
  let spec = spec_exn s in
  (* to_string must itself parse, to the same rendering. *)
  Alcotest.(check string) "round-trip" (Fault.to_string spec)
    (Fault.to_string (spec_exn (Fault.to_string spec)));
  let bare = spec_exn "worker.crash:1" in
  Alcotest.(check string) "default seed round-trips" (Fault.to_string bare)
    (Fault.to_string (spec_exn (Fault.to_string bare)))

let test_spec_rejects_garbage () =
  let rejected s =
    match Fault.parse s with
    | Ok _ -> Alcotest.failf "spec %S should not parse" s
    | Error msg -> Alcotest.(check bool) (s ^ " has a message") true (String.length msg > 0)
  in
  List.iter rejected
    [
      ""; "nocolon"; "p:"; ":0.5"; "p:abc"; "p:2.0"; "p:-0.1"; "P:0.5"; "sp ace:0.5";
      "p:0.5@seed=x"; "p:0.5@frobnicate=1"; "p:0.5,"; ",p:0.5";
    ]

let test_fire_deterministic () =
  let draws () =
    Fault.with_spec (spec_exn "p:0.5@seed=7") (fun () ->
        List.init 200 (fun _ -> Fault.fire "p"))
  in
  let a = draws () and b = draws () in
  Alcotest.(check (list bool)) "same spec, same schedule" a b;
  Alcotest.(check bool) "some fire" true (List.mem true a);
  Alcotest.(check bool) "some do not" true (List.mem false a);
  let other =
    Fault.with_spec (spec_exn "p:0.5@seed=8") (fun () ->
        List.init 200 (fun _ -> Fault.fire "p"))
  in
  Alcotest.(check bool) "different seed, different schedule" false (a = other)

let test_disabled_is_inert () =
  Fault.disable ();
  Alcotest.(check bool) "inactive" false (Fault.active ());
  for _ = 1 to 100 do
    Alcotest.(check bool) "never fires" false (Fault.fire "store.write")
  done;
  Fault.inject "worker.crash" (* must not raise *)

let test_always_and_restore () =
  Fault.disable ();
  Fault.with_spec (Fault.always "p") (fun () ->
      Alcotest.(check bool) "active inside" true (Fault.active ());
      Alcotest.(check bool) "always fires" true (Fault.fire "p");
      Alcotest.(check bool) "unknown points stay quiet" false (Fault.fire "other");
      (try
         Fault.inject "p";
         Alcotest.fail "inject did not raise"
       with Fault.Injected point -> Alcotest.(check string) "payload" "p" point));
  Alcotest.(check bool) "restored to inactive" false (Fault.active ());
  (* with_spec restores even when the body raises, and re-installs an
     enclosing spec rather than clearing it. *)
  Fault.with_spec (Fault.always "outer") (fun () ->
      (try Fault.with_spec (Fault.always "inner") (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "outer back in force" true (Fault.fire "outer"));
  Fault.disable ()

let test_fired_injections_counted () =
  let reg = Obs.Registry.create () in
  Obs.with_ambient reg (fun () ->
      Fault.with_spec (Fault.always "p") (fun () ->
          for _ = 1 to 3 do
            ignore (Fault.fire "p")
          done));
  let count = try List.assoc "fault.injected.p" (Obs.Registry.counters reg) with Not_found -> 0 in
  Alcotest.(check int) "fault.injected.p" 3 count

(* --- Parallel supervision and degradation --- *)

let test_parallel_crash_degrades () =
  let golden, revised = small_pair () in
  let report =
    Fault.with_spec (Fault.always "worker.crash") (fun () -> Parallel.check golden revised)
  in
  (match report.Parallel.verdict with
  | Cec.Undecided -> ()
  | Cec.Equivalent _ | Cec.Inequivalent _ -> Alcotest.fail "crashed run must not claim a verdict");
  Alcotest.(check bool) "degraded" true (report.Parallel.degraded <> None);
  let crashed =
    Array.exists
      (fun p -> p.Parallel.status = Parallel.Crashed)
      report.Parallel.stats.Parallel.partitions
  in
  Alcotest.(check bool) "some partition Crashed" true crashed

let test_parallel_budget_fault_gives_up_cleanly () =
  (* engine.budget fabricates budget-exhausted rounds: the run gives up
     but is NOT degraded — give-ups are an honest, certified answer. *)
  let golden, revised = small_pair () in
  let config =
    { Parallel.default_config with Parallel.budget = Some 10; Parallel.max_rounds = 2 }
  in
  let report =
    Fault.with_spec (Fault.always "engine.budget") (fun () ->
        Parallel.check ~config golden revised)
  in
  (match report.Parallel.verdict with
  | Cec.Undecided -> ()
  | Cec.Equivalent _ | Cec.Inequivalent _ -> Alcotest.fail "budget fault must leave Undecided");
  Alcotest.(check (option string)) "not degraded" None report.Parallel.degraded

let test_parallel_clean_run_not_degraded () =
  let golden, revised = small_pair () in
  Fault.disable ();
  let report = Parallel.check golden revised in
  (match report.Parallel.verdict with
  | Cec.Equivalent _ -> ()
  | Cec.Inequivalent _ | Cec.Undecided -> Alcotest.fail "suite pair should prove");
  Alcotest.(check (option string)) "clean" None report.Parallel.degraded

let test_engine_propagates_degradation () =
  let golden, revised = small_pair () in
  let result =
    Fault.with_spec (Fault.always "worker.crash") (fun () ->
        Engine.solve Engine.default_config golden revised)
  in
  (match result.Engine.verdict with
  | Cec.Undecided -> ()
  | Cec.Equivalent _ | Cec.Inequivalent _ -> Alcotest.fail "degraded solve must stay Undecided");
  Alcotest.(check bool) "reason surfaced" true (result.Engine.degraded <> None);
  Alcotest.(check bool) "not a timeout" false result.Engine.timed_out

(* --- store crash recovery --- *)

let solved_pair_and_key () =
  let golden, revised = small_pair () in
  let verdict = (Cec.check (Cec.Sweeping Cec_core.Sweep.default_config) golden revised).Cec.verdict in
  (golden, revised, Key.of_pair golden revised, verdict)

let objects_dir dir = Filename.concat dir "objects"

let quarantine_count store =
  match Sys.readdir (Store.quarantine_dir store) with
  | names -> Array.length names
  | exception Sys_error _ -> 0

let test_store_write_fault_tolerated () =
  with_temp_dir "fault-store-write" (fun dir ->
      let golden, revised, key, verdict = solved_pair_and_key () in
      let store = Store.create ~dir () in
      Fault.with_spec (Fault.always "store.write") (fun () -> Store.store store key verdict);
      Alcotest.(check int) "write failure counted" 1 (Store.stats store).Store.write_failures;
      Alcotest.(check bool) "miss, not a crash" true
        (Store.find store key ~golden ~revised = None);
      (* The failed write left an orphan tmp file behind; fsck sweeps it
         into quarantine. *)
      let orphans =
        Sys.readdir (objects_dir dir) |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".part")
      in
      Alcotest.(check int) "orphan tmp left behind" 1 (List.length orphans);
      let report = Store.fsck store in
      Alcotest.(check int) "fsck sweeps the orphan" 1 report.Store.orphan_tmp;
      Alcotest.(check int) "quarantined" 1 report.Store.quarantined;
      Alcotest.(check int) "quarantine holds it" 1 (quarantine_count store);
      (* With the fault gone the same store works again. *)
      Store.store store key verdict;
      Alcotest.(check bool) "stores after recovery" true
        (Store.find store key ~golden ~revised <> None))

let test_store_torn_write_quarantined_on_restart () =
  with_temp_dir "fault-store-torn" (fun dir ->
      let golden, revised, key, verdict = solved_pair_and_key () in
      let ig, ir = small_pair () in
      let ir = Aig.Aiger.of_string (Aig.Aiger.to_string ir) in
      Aig.set_output ir 0 (Aig.Lit.neg (Aig.output ir 0));
      let ir = Key.normalize ir in
      let key2 = Key.of_pair ig ir in
      let verdict2 =
        (Cec.check (Cec.Sweeping Cec_core.Sweep.default_config) ig ir).Cec.verdict
      in
      (* One good object, then a torn write of a second: the crash
         publishes a truncated object file that is in nobody's index. *)
      let store = Store.create ~dir () in
      Store.store store key verdict;
      Fault.with_spec (Fault.always "store.torn_write") (fun () ->
          Store.store store key2 verdict2);
      Alcotest.(check int) "torn write counted" 1 (Store.stats store).Store.write_failures;
      Alcotest.(check int) "both objects on disk" 2 (Array.length (Sys.readdir (objects_dir dir)));
      (* "Restart": a fresh open runs fsck, which must quarantine
         exactly the torn object and keep serving the good one. *)
      let reopened = Store.create ~startup_fsck:false ~dir () in
      let report = Store.fsck reopened in
      Alcotest.(check int) "scanned both" 2 report.Store.scanned;
      Alcotest.(check int) "one valid" 1 report.Store.valid;
      Alcotest.(check int) "exactly the torn object quarantined" 1 report.Store.quarantined;
      Alcotest.(check int) "no orphan tmp" 0 report.Store.orphan_tmp;
      Alcotest.(check int) "quarantine holds it" 1 (quarantine_count reopened);
      Alcotest.(check bool) "good entry still serves warm" true
        (Store.find reopened key ~golden ~revised <> None);
      Alcotest.(check bool) "torn entry is a miss" true
        (Store.find reopened key2 ~golden:ig ~revised:ir = None);
      (* A second fsck finds a consistent store: nothing left to do. *)
      let again = Store.fsck reopened in
      Alcotest.(check int) "idempotent: nothing quarantined" 0 again.Store.quarantined;
      Alcotest.(check int) "idempotent: nothing adopted" 0 again.Store.adopted)

let test_store_fsck_adopts_unindexed_objects () =
  with_temp_dir "fault-store-adopt" (fun dir ->
      let golden, revised, key, verdict = solved_pair_and_key () in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      (* A forgetful-but-valid index (crash between object publish and
         index save, then an index save for an unrelated reason): the
         object is on disk, the index does not know it.  A bare header
         parses as a valid empty index, so the load-time objects/ rescan
         fallback does not kick in — adoption is fsck's job. *)
      Out_channel.with_open_bin (Filename.concat dir "index") (fun oc ->
          Out_channel.output_string oc (Printf.sprintf "cecproof-index %d\n" Store.format_version));
      let reopened = Store.create ~startup_fsck:false ~dir () in
      let report = Store.fsck reopened in
      Alcotest.(check int) "adopted" 1 report.Store.adopted;
      Alcotest.(check int) "nothing quarantined" 0 report.Store.quarantined;
      Alcotest.(check bool) "adopted object serves" true
        (Store.find reopened key ~golden ~revised <> None))

let test_store_fsck_drops_dangling_index_entries () =
  with_temp_dir "fault-store-dangle" (fun dir ->
      let golden, revised, key, verdict = solved_pair_and_key () in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      (* Lose the object under a live handle that still indexes it
         (opening afresh would already drop it at load time). *)
      Sys.remove (Store.entry_path store key);
      let report = Store.fsck store in
      Alcotest.(check int) "dropped" 1 report.Store.dropped;
      Alcotest.(check bool) "clean miss afterwards" true
        (Store.find store key ~golden ~revised = None))

let test_store_corrupt_read_fault () =
  with_temp_dir "fault-store-corrupt" (fun dir ->
      let golden, revised, key, verdict = solved_pair_and_key () in
      let store = Store.create ~dir () in
      Store.store store key verdict;
      (* Bit-rot injected on the read path: paranoid validation must
         reject the certificate, not serve it. *)
      let under_fault =
        Fault.with_spec (Fault.always "store.corrupt") (fun () ->
            Store.find store key ~golden ~revised)
      in
      Alcotest.(check bool) "corrupted read rejected" true (under_fault = None);
      (* Paranoid mode treats the entry as bit-rot: counted, dropped
         from the store (the service re-solves), never served. *)
      Alcotest.(check int) "counted as corrupt" 1 (Store.stats store).Store.corrupt;
      Store.store store key verdict;
      Alcotest.(check bool) "re-stored entry serves clean" true
        (Store.find store key ~golden ~revised <> None))

(* --- wire helpers --- *)

let test_wire_read_line () =
  let r, w = Unix.pipe () in
  let write s = ignore (Unix.write_substring w s 0 (String.length s)) in
  write "hello\nworld\npartial";
  Alcotest.(check (result string string)) "first line" (Ok "hello") (Wire.read_line r);
  Alcotest.(check (result string string)) "second line" (Ok "world") (Wire.read_line r);
  Unix.close w;
  Alcotest.(check (result string string)) "unterminated tail served at EOF" (Ok "partial")
    (Wire.read_line r);
  Alcotest.(check (result string string)) "EOF before any byte" (Error "connection closed")
    (Wire.read_line r);
  Unix.close r

let test_wire_read_line_cap () =
  let r, w = Unix.pipe () in
  let long = String.make 128 'x' ^ "\n" in
  ignore (Unix.write_substring w long 0 (String.length long));
  (match Wire.read_line ~max_bytes:64 r with
  | Error msg -> Alcotest.(check bool) "cap error mentions length" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "over-long line must be rejected");
  Unix.close r;
  Unix.close w

let test_wire_write_round_trip () =
  (* The long line exceeds one pipe buffer, so write_all's short-write
     loop must run; a concurrent reader keeps the pipe draining. *)
  let r, w = Unix.pipe () in
  let reader =
    Domain.spawn (fun () ->
        let first = Wire.read_line r in
        let second = Wire.read_line ~max_bytes:100_000 r in
        Unix.close r;
        (first, second))
  in
  Wire.write_line w "status ok";
  Wire.write_line w (String.make 70000 'y');
  Unix.close w;
  let first, second = Domain.join reader in
  Alcotest.(check (result string string)) "line round-trips" (Ok "status ok") first;
  (match second with
  | Ok s -> Alcotest.(check int) "long line intact" 70000 (String.length s)
  | Error msg -> Alcotest.failf "long line failed: %s" msg)

let test_wire_socket_framing () =
  (* Sockets take the buffered MSG_PEEK fast path: frames must come
     out exactly as written — including a body far larger than one
     peek chunk — and nothing belonging to a later frame may be
     swallowed by the buffering. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let big = String.make 50_000 'z' in
  let writer =
    Domain.spawn (fun () ->
        Wire.write_line a "first";
        Wire.write_line a big;
        Wire.write_line a "last";
        Unix.close a)
  in
  Alcotest.(check (result string string)) "first frame" (Ok "first") (Wire.read_line b);
  (match Wire.read_line ~max_bytes:100_000 b with
  | Ok s -> Alcotest.(check int) "big frame intact" 50_000 (String.length s)
  | Error msg -> Alcotest.failf "big frame failed: %s" msg);
  Alcotest.(check (result string string))
    "later frame not swallowed" (Ok "last") (Wire.read_line b);
  Alcotest.(check (result string string))
    "EOF after the last frame" (Error "connection closed") (Wire.read_line b);
  Domain.join writer;
  Unix.close b

let test_wire_socket_cap () =
  (* The max_bytes bound survives the buffered path too. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Wire.write_line a (String.make 256 'x');
  (match Wire.read_line ~max_bytes:64 b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-long socket line must be rejected");
  Unix.close a;
  Unix.close b

let test_wire_read_deadline () =
  (* A peer that connects and never writes must not block the reader
     past its deadline; the expiry is a typed, comparable error. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t0 = Unix.gettimeofday () in
  (match Wire.read_line ~deadline:(t0 +. 0.15) b with
  | Error msg -> Alcotest.(check string) "typed deadline error" Wire.deadline_error msg
  | Ok s -> Alcotest.failf "read returned %S from a silent peer" s);
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > 2.0 then Alcotest.failf "deadline read took %.1fs" elapsed;
  (* A half-written line stalls the same way (the connection is
     abandoned mid-frame; real callers close it at this point). *)
  ignore (Unix.write_substring a "half" 0 4);
  (match Wire.read_line ~deadline:(Unix.gettimeofday () +. 0.15) b with
  | Error msg -> Alcotest.(check string) "mid-line stall" Wire.deadline_error msg
  | Ok s -> Alcotest.failf "read returned %S mid-line" s);
  Unix.close a;
  Unix.close b

let test_wire_write_deadline () =
  (* A full receive window must not wedge a deadline write forever:
     once the peer stops draining and the buffers fill, write_all
     raises ETIMEDOUT at the deadline. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = String.make 1_000_000 'w' in
  (match Wire.write_all ~deadline:(Unix.gettimeofday () +. 0.2) a payload with
  | () -> Alcotest.fail "1MB into an undrained socketpair should exceed the deadline"
  | exception Unix.Unix_error (Unix.ETIMEDOUT, "write", _) -> ());
  Unix.close a;
  Unix.close b

(* --- the retrying client --- *)

let test_client_retries_with_backoff () =
  with_temp_dir "fault-client" (fun dir ->
      (* A stale socket file with no listener: every attempt gets
         ECONNREFUSED, a transient error worth retrying. *)
      let socket_path = Filename.concat dir "stale.sock" in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX socket_path);
      Unix.close fd;
      let sleeps = ref [] in
      let config =
        {
          Client.retries = 3;
          base_delay_ms = 8.0;
          seed = 1;
          sleep = (fun s -> sleeps := s :: !sleeps);
          connect_timeout_ms = None;
          deadline_ms = None;
        }
      in
      (match Client.request ~config ~socket_path "ping" with
      | Ok _ -> Alcotest.fail "nothing is listening; request must fail"
      | Error msg -> Alcotest.(check bool) "last error surfaced" true (String.length msg > 0));
      let sleeps = List.rev !sleeps in
      Alcotest.(check int) "slept once per retry" 3 (List.length sleeps);
      List.iteri
        (fun k s ->
          let base = 0.008 *. (2.0 ** float_of_int k) in
          Alcotest.(check bool)
            (Printf.sprintf "backoff %d in [0.5, 1.5) x base" k)
            true
            (s >= (0.5 *. base) -. 1e-9 && s < 1.5 *. base))
        sleeps)

let test_client_missing_socket_transient () =
  (* ENOENT (daemon not started yet) is also transient. *)
  let sleeps = ref 0 in
  let config =
    {
      Client.retries = 2;
      base_delay_ms = 1.0;
      seed = 0;
      sleep = (fun _ -> incr sleeps);
      connect_timeout_ms = None;
      deadline_ms = None;
    }
  in
  (match Client.request ~config ~socket_path:"/nonexistent/cecd.sock" "ping" with
  | Ok _ -> Alcotest.fail "must fail"
  | Error _ -> ());
  Alcotest.(check int) "retried" 2 !sleeps

let test_client_deadline_caps_backoff () =
  with_temp_dir "fault-deadline" (fun dir ->
      (* A bound socket with no listener: every attempt is a transient
         ECONNREFUSED.  With a deadline the retry loop must stop
         before sleeping past it and surface the last transient error
         under a deadline tag — not burn all 50 retries. *)
      let socket_path = Filename.concat dir "stale.sock" in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX socket_path);
      Unix.close fd;
      let sleeps = ref 0 in
      let config =
        {
          Client.retries = 50;
          base_delay_ms = 40.0;
          seed = 3;
          sleep = (fun _ -> incr sleeps);
          connect_timeout_ms = None;
          deadline_ms = Some 100.0;
        }
      in
      let t0 = Unix.gettimeofday () in
      (match Client.request ~config ~socket_path "ping" with
      | Ok _ -> Alcotest.fail "nothing is listening; request must fail"
      | Error msg ->
        let prefix = "deadline exceeded" in
        Alcotest.(check string)
          "error carries the deadline tag" prefix
          (String.sub msg 0 (min (String.length msg) (String.length prefix)));
        Alcotest.(check bool) "last transient error preserved" true
          (String.length msg > String.length prefix));
      (* Exponential backoff against a 100ms budget: the loop must bail
         out after a handful of (faked) sleeps, far short of the retry
         budget, and without really sleeping anywhere near 50 rounds. *)
      Alcotest.(check bool)
        (Printf.sprintf "stopped early (%d sleeps)" !sleeps)
        true
        (!sleeps > 0 && !sleeps < 10);
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed > 5.0 then Alcotest.failf "deadline run took %.1fs" elapsed)

(* --- batch degradation --- *)

let test_batch_uncertified_not_cached () =
  with_temp_dir "fault-batch" (fun dir ->
      let golden, revised = small_pair () in
      let path name g =
        let p = Filename.concat dir name in
        Aig.Aiger.write_file p g;
        p
      in
      let pairs = [ (path "g.aig" golden, path "r.aig" revised) ] in
      let store = Store.create ~dir:(Filename.concat dir "store") () in
      let results = ref [] in
      let summary =
        Fault.with_spec (Fault.always "worker.crash") (fun () ->
            Batch.run ~store ~engine:Engine.default_config
              ~on_result:(fun r -> results := r :: !results)
              pairs)
      in
      Alcotest.(check int) "counted as undecided" 1 summary.Batch.undecided;
      Alcotest.(check int) "not an error" 0 summary.Batch.errors;
      (match !results with
      | [ r ] ->
        Alcotest.(check string) "status" "uncertified" r.Batch.status;
        Alcotest.(check bool) "reason in detail" true (String.length r.Batch.detail > 0)
      | _ -> Alcotest.fail "expected one result");
      (* The degraded answer must not have been cached: a clean rerun
         re-solves (miss) and proves. *)
      let clean = Batch.run ~store ~engine:Engine.default_config pairs in
      Alcotest.(check int) "clean rerun misses" 0 clean.Batch.hits;
      Alcotest.(check int) "clean rerun proves" 1 clean.Batch.proved)

(* --- metrics --- *)

let test_metrics_robustness_counters () =
  let m = Metrics.create () in
  Metrics.record m Metrics.Uncertified ~cached:false ~ms:1.0;
  Metrics.record_retry m;
  Metrics.record_retry m;
  Metrics.record_worker_restart m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "uncertified" 1 s.Metrics.uncertified;
  Alcotest.(check int) "retried" 2 s.Metrics.retried;
  Alcotest.(check int) "worker_restarts" 1 s.Metrics.worker_restarts;
  let rendered = Metrics.to_json s in
  Alcotest.(check bool) "counters exported" true
    (String.length rendered > 0
    && List.mem_assoc "uncertified" (Metrics.fields s)
    && List.mem_assoc "retried" (Metrics.fields s)
    && List.mem_assoc "worker_restarts" (Metrics.fields s))

(* --- the daemon under faults --- *)

let wait_for_server socket_path =
  let rec go n =
    if n = 0 then Alcotest.fail "server did not come up"
    else
      match Server.request ~socket_path "ping" with
      | Ok _ -> ()
      | Error _ ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 250

let field_exn name line =
  match Protocol.field name line with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks %S" line name

let test_server_reclaims_stale_socket () =
  with_temp_dir "fault-stale-sock" (fun dir ->
      let socket_path = Filename.concat dir "cecd.sock" in
      (* A dead daemon's leftover: the socket file exists, nobody
         listens.  The probe must detect that and reclaim the path. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX socket_path);
      Unix.close fd;
      let cfg =
        {
          (Server.default_config ~socket_path ~store_dir:(Filename.concat dir "store")) with
          Server.log = false;
        }
      in
      let server = Domain.spawn (fun () -> Server.run cfg) in
      wait_for_server socket_path;
      (match Server.request ~socket_path "shutdown" with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
      ignore (Domain.join server))

let test_server_refuses_live_socket () =
  with_temp_dir "fault-live-sock" (fun dir ->
      let socket_path = Filename.concat dir "cecd.sock" in
      let cfg =
        {
          (Server.default_config ~socket_path ~store_dir:(Filename.concat dir "store")) with
          Server.log = false;
        }
      in
      let server = Domain.spawn (fun () -> Server.run cfg) in
      wait_for_server socket_path;
      (* A second daemon on the same socket must fail loudly, not
         steal the path from the live one. *)
      let cfg2 = { cfg with Server.store_dir = Filename.concat dir "store2" } in
      (match Server.run cfg2 with
      | _ -> Alcotest.fail "second daemon must refuse a live socket"
      | exception Failure msg ->
        Alcotest.(check bool) "says the daemon is alive" true
          (String.length msg > 0));
      (* The first daemon kept working. *)
      (match Server.request ~socket_path "ping" with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "live daemon disturbed: %s" msg);
      ignore (Server.request ~socket_path "shutdown");
      ignore (Domain.join server))

let test_server_worker_crash_typed_error () =
  with_temp_dir "fault-worker-crash" (fun dir ->
      let golden, revised = small_pair () in
      let golden_path = Filename.concat dir "golden.aig" in
      let revised_path = Filename.concat dir "revised.aig" in
      Aig.Aiger.write_file golden_path golden;
      Aig.Aiger.write_file revised_path revised;
      let socket_path = Filename.concat dir "cecd.sock" in
      let cfg =
        {
          (Server.default_config ~socket_path ~store_dir:(Filename.concat dir "store")) with
          Server.log = false;
        }
      in
      let server = Domain.spawn (fun () -> Server.run cfg) in
      wait_for_server socket_path;
      let check_line = Printf.sprintf "check %s %s" golden_path revised_path in
      Fun.protect ~finally:Fault.disable @@ fun () ->
      (* Every processing attempt crashes: the job is re-enqueued once,
         then answered with a typed error — never a hung connection. *)
      Fault.install (Fault.always "worker.crash");
      (match Server.request ~socket_path check_line with
      | Ok response ->
        Alcotest.(check string) "typed code" "worker_crashed" (field_exn "code" response);
        Alcotest.(check bool) "carries an error" true
          (Protocol.field "error" response <> None)
      | Error msg -> Alcotest.failf "expected a typed error response, got failure: %s" msg);
      (* The worker survived; without the fault the same request
         succeeds on the same daemon. *)
      Fault.disable ();
      (match Server.request ~socket_path check_line with
      | Ok response -> Alcotest.(check string) "recovered" "equivalent" (field_exn "status" response)
      | Error msg -> Alcotest.failf "post-crash request failed: %s" msg);
      (match Server.request ~socket_path "shutdown" with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
      let metrics, _ = Domain.join server in
      Alcotest.(check bool) "retry recorded" true (metrics.Metrics.retried >= 1);
      Alcotest.(check bool) "error recorded" true (metrics.Metrics.errors >= 1))

let suites =
  [
    ( "fault-spec",
      [
        Alcotest.test_case "round trip" `Quick test_spec_round_trip;
        Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
        Alcotest.test_case "deterministic firing" `Quick test_fire_deterministic;
        Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
        Alcotest.test_case "always + restore" `Quick test_always_and_restore;
        Alcotest.test_case "fired injections counted" `Quick test_fired_injections_counted;
      ] );
    ( "fault-supervision",
      [
        Alcotest.test_case "parallel crash degrades" `Quick test_parallel_crash_degrades;
        Alcotest.test_case "budget fault gives up cleanly" `Quick
          test_parallel_budget_fault_gives_up_cleanly;
        Alcotest.test_case "clean run not degraded" `Quick test_parallel_clean_run_not_degraded;
        Alcotest.test_case "engine propagates degradation" `Quick
          test_engine_propagates_degradation;
        Alcotest.test_case "batch uncertified not cached" `Quick test_batch_uncertified_not_cached;
        Alcotest.test_case "metrics robustness counters" `Quick test_metrics_robustness_counters;
      ] );
    ( "fault-store",
      [
        Alcotest.test_case "write fault tolerated" `Quick test_store_write_fault_tolerated;
        Alcotest.test_case "torn write quarantined on restart" `Quick
          test_store_torn_write_quarantined_on_restart;
        Alcotest.test_case "fsck adopts unindexed objects" `Quick
          test_store_fsck_adopts_unindexed_objects;
        Alcotest.test_case "fsck drops dangling index entries" `Quick
          test_store_fsck_drops_dangling_index_entries;
        Alcotest.test_case "corrupt read fault" `Quick test_store_corrupt_read_fault;
      ] );
    ( "fault-wire-client",
      [
        Alcotest.test_case "read_line framing" `Quick test_wire_read_line;
        Alcotest.test_case "read_line cap" `Quick test_wire_read_line_cap;
        Alcotest.test_case "write round trip" `Quick test_wire_write_round_trip;
        Alcotest.test_case "socket framing (buffered)" `Quick test_wire_socket_framing;
        Alcotest.test_case "socket cap (buffered)" `Quick test_wire_socket_cap;
        Alcotest.test_case "read deadline" `Quick test_wire_read_deadline;
        Alcotest.test_case "write deadline" `Quick test_wire_write_deadline;
        Alcotest.test_case "client backoff" `Quick test_client_retries_with_backoff;
        Alcotest.test_case "client missing socket" `Quick test_client_missing_socket_transient;
        Alcotest.test_case "client deadline caps backoff" `Quick
          test_client_deadline_caps_backoff;
      ] );
    ( "fault-daemon",
      [
        Alcotest.test_case "reclaims stale socket" `Quick test_server_reclaims_stale_socket;
        Alcotest.test_case "refuses live socket" `Quick test_server_refuses_live_socket;
        Alcotest.test_case "worker crash typed error" `Quick test_server_worker_crash_typed_error;
      ] );
  ]
