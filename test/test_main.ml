let () =
  Alcotest.run "cecproof"
    (Test_support.suites @ Test_aig.suites @ Test_cnf.suites @ Test_sat.suites
   @ Test_proof.suites @ Test_bdd.suites @ Test_synth.suites @ Test_misc.suites @ Test_seq.suites @ Test_edge.suites @ Test_circuits.suites @ Test_core.suites @ Test_parallel.suites
   @ Test_service.suites @ Test_fault.suites @ Test_fleet.suites @ Test_obs.suites @ Test_sweep_diff.suites
   @ Test_check_diff.suites @ Test_engine_diff.suites @ Test_qcheck.suites)
