(* Edge-case and error-path coverage across the libraries: argument
   validation, degenerate inputs, and API corners the main suites do
   not reach. *)

module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Lit = Aig.Lit
module Solver = Sat.Solver

let lit v = Lit.of_var v
let nlit v = Lit.neg (Lit.of_var v)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* --- graph argument validation --- *)

let test_graph_validation () =
  let g = Aig.create ~num_inputs:2 in
  expect_invalid "negative inputs" (fun () -> Aig.create ~num_inputs:(-1));
  expect_invalid "input range" (fun () -> Aig.input g 2);
  expect_invalid "and_ range" (fun () -> Aig.and_ g (Lit.of_var 50) Lit.true_);
  expect_invalid "add_output range" (fun () -> Aig.add_output g (Lit.of_var 50));
  expect_invalid "output index" (fun () -> Aig.output g 0);
  expect_invalid "set_output index" (fun () -> Aig.set_output g 0 Lit.true_);
  expect_invalid "fanin of input" (fun () -> Aig.fanin0 g 1);
  expect_invalid "eval arity" (fun () -> Aig.eval g [| true |]);
  expect_invalid "append arity" (fun () ->
      Aig.append g (Circuits.Adder.ripple_carry 2) ~inputs:[| Aig.input g 0 |])

let test_graph_zero_inputs () =
  (* A constant-only graph is legal. *)
  let g = Aig.create ~num_inputs:0 in
  Aig.add_output g Lit.true_;
  Alcotest.(check (list bool)) "constant true" [ true ] (Array.to_list (Aig.eval g [||]));
  Aig.check g

let test_graph_output_of_constant () =
  let g = Aig.create ~num_inputs:1 in
  Aig.add_output g Lit.false_;
  Aig.add_output g (Aig.input g 0);
  let cleaned = Aig.cleanup g in
  Alcotest.(check int) "cleanup keeps outputs" 2 (Aig.num_outputs cleaned);
  Alcotest.(check (list bool)) "values" [ false; true ] (Array.to_list (Aig.eval cleaned [| true |]))

(* --- simulation corners --- *)

let test_sim_validation () =
  let g = Aig.create ~num_inputs:1 in
  Aig.add_output g (Aig.input g 0);
  expect_invalid "zero words" (fun () -> Aig.Sim.create g ~words:0);
  let sim = Aig.Sim.create g ~words:1 in
  expect_invalid "bit range" (fun () -> Aig.Sim.set_input_bit sim ~input:0 ~bit:64 true);
  expect_invalid "input range" (fun () -> Aig.Sim.set_input_word sim ~input:1 ~word:0 1L);
  let wide = Aig.create ~num_inputs:17 in
  Aig.add_output wide (Aig.input wide 0);
  expect_invalid "truth table too wide" (fun () -> Aig.Sim.truth_table wide (Aig.output wide 0))

let test_truth_table_tiny () =
  (* 1-input graph: 2 patterns, rest of the word masked off. *)
  let g = Aig.create ~num_inputs:1 in
  Aig.add_output g (Lit.neg (Aig.input g 0));
  let tt = Aig.Sim.truth_table g (Aig.output g 0) in
  Alcotest.(check int64) "not(x) over 1 var" 1L tt.(0)

(* --- clause / formula corners --- *)

let test_clause_corners () =
  Alcotest.(check int) "empty size" 0 (Clause.size Clause.empty);
  Alcotest.(check int) "max_var of empty" (-1) (Clause.max_var Clause.empty);
  Alcotest.(check bool) "empty unsat" false (Clause.satisfied_by Clause.empty [||]);
  expect_invalid "of_dimacs zero" (fun () -> Lit.of_dimacs 0);
  let c = Clause.of_list [ lit 3 ] in
  Alcotest.(check bool) "hash stable" true (Clause.hash c = Clause.hash (Clause.of_list [ lit 3 ]))

let test_formula_corners () =
  let f = Formula.create () in
  expect_invalid "clause out of range" (fun () -> Formula.clause f 0);
  ignore (Formula.add f Clause.empty);
  Alcotest.(check bool) "empty clause member" true (Formula.mem f Clause.empty);
  Alcotest.(check bool) "unsatisfiable" false (Formula.satisfied_by f [||])

(* --- solver corners --- *)

let test_solver_duplicate_and_subsumed_clauses () =
  let s = Solver.create () in
  let c = Clause.of_list [ lit 0; lit 1 ] in
  Solver.add_clause s c;
  Solver.add_clause s c;
  Solver.add_clause s (Clause.of_list [ lit 0; lit 1; lit 2 ]);
  match Solver.solve s with
  | Solver.Sat model ->
    Alcotest.(check bool) "satisfied" true (model.(0) || model.(1))
  | _ -> Alcotest.fail "expected SAT"

let test_solver_contradictory_assumptions () =
  (* A self-contradictory assumption list is UNSAT-under-assumptions,
     not a usage error: the result carries the trivial final clause
     [~l] for the later of the clashing pair, and the solver stays
     usable. *)
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ lit 0; lit 1 ]);
  (match Solver.solve ~assumptions:[ lit 2; nlit 2 ] s with
  | Solver.Unsat_assuming { clause; pid = _ } ->
    Alcotest.(check bool) "final clause is (x2)" true (Clause.equal clause (Clause.singleton (lit 2)))
  | _ -> Alcotest.fail "expected Unsat_assuming on contradictory assumptions");
  match Solver.solve s with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "solver unusable after contradictory assumptions"

let test_solver_assumption_on_fresh_var () =
  (* Assuming a variable the clauses never mention must be SAT and
     honoured. *)
  let s = Solver.create () in
  Solver.add_clause s (Clause.of_list [ lit 0 ]);
  match Solver.solve ~assumptions:[ nlit 7 ] s with
  | Solver.Sat model ->
    Alcotest.(check bool) "x7 false" false model.(7);
    Alcotest.(check bool) "x0 true" true model.(0)
  | _ -> Alcotest.fail "expected SAT"

let test_solver_add_derived_clause () =
  (* A derived clause participates in solving and its pid (not a leaf)
     lands in proofs. *)
  let s = Solver.create () in
  let proof = Solver.proof s in
  Solver.add_clause s (Clause.of_list [ nlit 0; lit 1 ]);
  Solver.add_clause s (Clause.of_list [ nlit 1; lit 2 ]);
  (* derive (~x0 x2) by hand and register it *)
  let l1 = Proof.Resolution.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let l2 = Proof.Resolution.add_leaf proof (Clause.of_list [ nlit 1; lit 2 ]) in
  let lemma = Clause.of_list [ nlit 0; lit 2 ] in
  let pid = Proof.Resolution.add_chain proof ~clause:lemma ~antecedents:[| l1; l2 |] ~pivots:[| 1 |] in
  Solver.add_derived_clause s lemma pid;
  Solver.add_clause s (Clause.singleton (lit 0));
  Solver.add_clause s (Clause.singleton (nlit 2));
  match Solver.solve s with
  | Solver.Unsat root -> (
    let f = Formula.create () in
    List.iter
      (fun lits -> ignore (Formula.add_list f lits))
      [ [ nlit 0; lit 1 ]; [ nlit 1; lit 2 ]; [ lit 0 ]; [ nlit 2 ] ];
    match Proof.Checker.check proof ~root ~formula:f () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "proof with derived clause rejected: %a" Proof.Checker.pp_error e)
  | _ -> Alcotest.fail "expected UNSAT"

let test_solver_many_incremental_rounds () =
  (* Alternate clause additions and solves; the solver must stay
     consistent through many rounds. *)
  let s = Solver.create () in
  for round = 0 to 30 do
    Solver.add_clause s (Clause.of_list [ nlit round; lit (round + 1) ]);
    match Solver.solve ~assumptions:[ lit 0 ] s with
    | Solver.Sat model ->
      for v = 0 to round + 1 do
        Alcotest.(check bool) "chain propagated" true model.(v)
      done
    | _ -> Alcotest.fail "expected SAT"
  done;
  Solver.add_clause s (Clause.singleton (nlit 31));
  match Solver.solve ~assumptions:[ lit 0 ] s with
  | Solver.Unsat_assuming { clause; _ } ->
    Alcotest.(check bool) "blames x0" true (Clause.mem (nlit 0) clause)
  | _ -> Alcotest.fail "expected Unsat_assuming"

(* --- proof corners --- *)

let test_interpolant_validation () =
  let proof = Proof.Resolution.create () in
  let l = Proof.Resolution.add_leaf proof (Clause.singleton (lit 0)) in
  let a = Formula.create () and b = Formula.create () in
  expect_invalid "non-refutation root" (fun () ->
      Proof.Interpolant.compute proof ~root:l ~a ~b)

let test_rup_malformed () =
  let f = Formula.create () in
  (match Proof.Rup.check_drup_string f "1 2\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing terminator accepted");
  match Proof.Rup.check_drup_string f "1 x 0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad token accepted"

let test_trace_malformed () =
  let expect text =
    match Proof.Export.trace_of_string text with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "malformed trace accepted: %S" text
  in
  expect "";
  expect "1 L 1\n";
  (* missing terminator *)
  expect "1 Z 1 0\n";
  (* unknown kind *)
  expect "1 C 5 0 0\n" (* forward/dangling reference *)

(* --- bdd corners --- *)

let test_bdd_ite_and_eval () =
  let t = Bdd.Manager.create ~num_vars:3 () in
  let a = Bdd.Manager.var t 0 and b = Bdd.Manager.var t 1 and c = Bdd.Manager.var t 2 in
  let f = Bdd.Manager.ite t a b c in
  for mask = 0 to 7 do
    let assignment = Array.init 3 (fun i -> (mask lsr i) land 1 = 1) in
    let expected = if assignment.(0) then assignment.(1) else assignment.(2) in
    Alcotest.(check bool) (Printf.sprintf "ite(%d)" mask) expected (Bdd.Manager.eval t f assignment)
  done

(* --- cut enumeration degenerate parameters --- *)

let test_cut_parameter_validation () =
  let g = Circuits.Adder.ripple_carry 2 in
  expect_invalid "k too large" (fun () -> Aig.Cut.enumerate g ~k:7 ~max_cuts:4);
  expect_invalid "k too small" (fun () -> Aig.Cut.enumerate g ~k:0 ~max_cuts:4);
  expect_invalid "max_cuts" (fun () -> Aig.Cut.enumerate g ~k:4 ~max_cuts:0)

let suites =
  [
    ( "edge",
      [
        Alcotest.test_case "graph validation" `Quick test_graph_validation;
        Alcotest.test_case "zero-input graph" `Quick test_graph_zero_inputs;
        Alcotest.test_case "constant outputs survive cleanup" `Quick test_graph_output_of_constant;
        Alcotest.test_case "sim validation" `Quick test_sim_validation;
        Alcotest.test_case "tiny truth table" `Quick test_truth_table_tiny;
        Alcotest.test_case "clause corners" `Quick test_clause_corners;
        Alcotest.test_case "formula corners" `Quick test_formula_corners;
        Alcotest.test_case "duplicate clauses" `Quick test_solver_duplicate_and_subsumed_clauses;
        Alcotest.test_case "contradictory assumptions" `Quick test_solver_contradictory_assumptions;
        Alcotest.test_case "assumption on fresh var" `Quick test_solver_assumption_on_fresh_var;
        Alcotest.test_case "add_derived_clause" `Quick test_solver_add_derived_clause;
        Alcotest.test_case "many incremental rounds" `Quick test_solver_many_incremental_rounds;
        Alcotest.test_case "interpolant validation" `Quick test_interpolant_validation;
        Alcotest.test_case "rup malformed" `Quick test_rup_malformed;
        Alcotest.test_case "trace malformed" `Quick test_trace_malformed;
        Alcotest.test_case "bdd ite" `Quick test_bdd_ite_and_eval;
        Alcotest.test_case "cut parameters" `Quick test_cut_parameter_validation;
      ] );
  ]
