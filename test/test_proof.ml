(* Tests for the proof package: the resolution store, the checker's
   rejection behaviour, assumption lifting, trimming, statistics and
   the trace format. *)

module Clause = Cnf.Clause
module Formula = Cnf.Formula
module Lit = Aig.Lit
module R = Proof.Resolution

let lit v = Lit.of_var v
let nlit v = Lit.neg (Lit.of_var v)

(* A tiny hand-built refutation of {(a b), (~a b), (a ~b), (~a ~b)}. *)
let hand_refutation () =
  let proof = R.create () in
  let l1 = R.add_leaf proof (Clause.of_list [ lit 0; lit 1 ]) in
  let l2 = R.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let l3 = R.add_leaf proof (Clause.of_list [ lit 0; nlit 1 ]) in
  let l4 = R.add_leaf proof (Clause.of_list [ nlit 0; nlit 1 ]) in
  let b = R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| l1; l2 |] ~pivots:[| 0 |] in
  let nb = R.add_chain proof ~clause:(Clause.singleton (nlit 1)) ~antecedents:[| l3; l4 |] ~pivots:[| 0 |] in
  let empty = R.add_chain proof ~clause:Clause.empty ~antecedents:[| b; nb |] ~pivots:[| 1 |] in
  (proof, empty)

let formula_of_leaves () =
  let f = Formula.create () in
  List.iter
    (fun lits -> ignore (Formula.add_list f lits))
    [ [ lit 0; lit 1 ]; [ nlit 0; lit 1 ]; [ lit 0; nlit 1 ]; [ nlit 0; nlit 1 ] ];
  f

let test_store_basics () =
  let proof, root = hand_refutation () in
  Alcotest.(check int) "7 nodes" 7 (R.size proof);
  Alcotest.(check bool) "root clause empty" true (Clause.is_empty (R.clause_of proof root));
  let reach = R.reachable proof ~root in
  Alcotest.(check int) "all reachable" 7 (Array.length reach);
  (* hash-consing of leaves *)
  let again = R.add_leaf proof (Clause.of_list [ lit 1; lit 0 ]) in
  Alcotest.(check int) "leaf dedup" 0 again

let test_chain_validation () =
  let proof = R.create () in
  let l = R.add_leaf proof (Clause.singleton (lit 0)) in
  (match R.add_chain proof ~clause:Clause.empty ~antecedents:[| l |] ~pivots:[||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single-antecedent chain accepted");
  match R.add_chain proof ~clause:Clause.empty ~antecedents:[| l; 99 |] ~pivots:[| 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dangling antecedent accepted"

let test_checker_accepts () =
  let proof, root = hand_refutation () in
  match Proof.Checker.check proof ~root ~formula:(formula_of_leaves ()) () with
  | Ok chains -> Alcotest.(check int) "three chains" 3 chains
  | Error e -> Alcotest.failf "rejected: %a" Proof.Checker.pp_error e

let test_checker_rejects_wrong_result () =
  let proof = R.create () in
  let l1 = R.add_leaf proof (Clause.of_list [ lit 0; lit 1 ]) in
  let l2 = R.add_leaf proof (Clause.of_list [ nlit 0 ]) in
  (* Claim (empty) but the resolvent is (b). *)
  let bad = R.add_chain proof ~clause:Clause.empty ~antecedents:[| l1; l2 |] ~pivots:[| 0 |] in
  match Proof.Checker.check proof ~root:bad () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong chain accepted"

let test_checker_rejects_bad_pivot () =
  let proof = R.create () in
  let l1 = R.add_leaf proof (Clause.of_list [ lit 0; lit 1 ]) in
  let l2 = R.add_leaf proof (Clause.of_list [ nlit 0 ]) in
  let bad =
    R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| l1; l2 |] ~pivots:[| 1 |]
  in
  match Proof.Checker.check proof ~root:bad () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad pivot accepted"

let test_checker_rejects_foreign_leaf () =
  let proof, root = hand_refutation () in
  let f = Formula.create () in
  ignore (Formula.add_list f [ lit 0; lit 1 ]);
  match Proof.Checker.check proof ~root ~formula:f () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign leaves accepted"

let test_checker_rejects_leftover_assumption () =
  let proof = R.create () in
  let a = R.add_leaf ~assumption:true proof (Clause.singleton (lit 0)) in
  let na = R.add_leaf proof (Clause.singleton (nlit 0)) in
  let root = R.add_chain proof ~clause:Clause.empty ~antecedents:[| a; na |] ~pivots:[| 0 |] in
  match Proof.Checker.check proof ~root () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "assumption leaf accepted in final proof"

let test_checker_rejects_nonempty_root () =
  let proof = R.create () in
  let l = R.add_leaf proof (Clause.singleton (lit 0)) in
  match Proof.Checker.check proof ~root:l () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-empty root accepted"

let test_check_derivation () =
  let proof = R.create () in
  let l1 = R.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let l2 = R.add_leaf proof (Clause.of_list [ nlit 1; lit 2 ]) in
  let d =
    R.add_chain proof
      ~clause:(Clause.of_list [ nlit 0; lit 2 ])
      ~antecedents:[| l1; l2 |] ~pivots:[| 1 |]
  in
  (match
     Proof.Checker.check_derivation proof ~root:d ~expected:(Clause.of_list [ nlit 0; lit 2 ]) ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid derivation rejected: %a" Proof.Checker.pp_error e);
  match
    Proof.Checker.check_derivation proof ~root:d ~expected:(Clause.singleton (lit 2)) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-subsuming derivation accepted"

let test_lift_simple () =
  (* Refutation of {(~a b)} + assumptions {a, ~b}: lifting must drop the
     assumption leaves and derive a sub-clause of (~a b). *)
  let proof = R.create () in
  let impl = R.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let a = R.add_leaf ~assumption:true proof (Clause.singleton (lit 0)) in
  let nb = R.add_leaf ~assumption:true proof (Clause.singleton (nlit 1)) in
  let step1 =
    R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| impl; a |] ~pivots:[| 0 |]
  in
  let root = R.add_chain proof ~clause:Clause.empty ~antecedents:[| step1; nb |] ~pivots:[| 1 |] in
  let lifted_root, lifted = Proof.Lift.refutation proof ~root in
  Alcotest.(check bool) "subsumes (~a b)" true
    (Clause.subsumes lifted (Clause.of_list [ nlit 0; lit 1 ]));
  Alcotest.(check bool) "no assumptions reachable" true
    (Array.for_all (fun id -> not (R.is_assumption proof id)) (R.reachable proof ~root:lifted_root))

let test_lift_requires_empty_root () =
  let proof = R.create () in
  let l = R.add_leaf proof (Clause.singleton (lit 0)) in
  match Proof.Lift.refutation proof ~root:l with
  | exception Proof.Lift.Lift_error _ -> ()
  | _ -> Alcotest.fail "non-refutation accepted"

let test_lift_no_assumptions_is_identity () =
  let proof, root = hand_refutation () in
  let lifted_root, lifted = Proof.Lift.refutation proof ~root in
  Alcotest.(check int) "same root" root lifted_root;
  Alcotest.(check bool) "still empty" true (Clause.is_empty lifted)

let test_trim () =
  let proof, root = hand_refutation () in
  (* Add unreachable junk. *)
  let j1 = R.add_leaf proof (Clause.singleton (lit 5)) in
  let j2 = R.add_leaf proof (Clause.singleton (nlit 5)) in
  ignore (R.add_chain proof ~clause:Clause.empty ~antecedents:[| j1; j2 |] ~pivots:[| 5 |]);
  let reachable, total = Proof.Trim.sizes proof ~root in
  Alcotest.(check int) "reachable" 7 reachable;
  Alcotest.(check int) "total" 10 total;
  let trimmed, root' = Proof.Trim.cone proof ~root in
  Alcotest.(check int) "trimmed size" 7 (R.size trimmed);
  match Proof.Checker.check trimmed ~root:root' ~formula:(formula_of_leaves ()) () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trimmed proof rejected: %a" Proof.Checker.pp_error e

let test_stats () =
  let proof, root = hand_refutation () in
  let s = Proof.Pstats.of_root proof ~root in
  Alcotest.(check int) "leaves" 4 s.Proof.Pstats.leaves;
  Alcotest.(check int) "chains" 3 s.Proof.Pstats.chains;
  Alcotest.(check int) "resolutions" 3 s.Proof.Pstats.resolutions;
  Alcotest.(check int) "depth" 2 s.Proof.Pstats.depth;
  Alcotest.(check int) "literals: (b) + (~b) + ()" 2 s.Proof.Pstats.literals

let test_stats_dedupes_ids () =
  (* A leaf shared by two chains, handed to [of_ids] through an id
     array that also repeats every id: each node must be counted
     exactly once (the pre-fix code counted per occurrence). *)
  let proof = R.create () in
  let shared = R.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let a = R.add_leaf proof (Clause.singleton (lit 0)) in
  let nb = R.add_leaf proof (Clause.singleton (nlit 1)) in
  let s1 =
    R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| shared; a |]
      ~pivots:[| 0 |]
  in
  let s2 =
    R.add_chain proof ~clause:(Clause.singleton (nlit 0)) ~antecedents:[| shared; nb |]
      ~pivots:[| 1 |]
  in
  let ids = [| shared; a; nb; s1; s2 |] in
  let doubled = Array.append ids ids in
  let once = Proof.Pstats.of_ids proof ids in
  let twice = Proof.Pstats.of_ids proof doubled in
  Alcotest.(check int) "leaves counted once" 3 once.Proof.Pstats.leaves;
  Alcotest.(check int) "chains counted once" 2 once.Proof.Pstats.chains;
  Alcotest.(check int) "resolutions counted once" 2 once.Proof.Pstats.resolutions;
  Alcotest.(check bool) "duplicated ids change nothing" true (once = twice);
  (* [of_proof] covers the same five nodes, so it must agree. *)
  Alcotest.(check bool) "of_proof agrees" true (Proof.Pstats.of_proof proof = once)

let test_trace_roundtrip () =
  let proof, root = hand_refutation () in
  let text = Proof.Export.trace_to_string proof ~root in
  let proof', root' = Proof.Export.trace_of_string text in
  Alcotest.(check int) "same node count" 7 (R.size proof');
  match Proof.Checker.check proof' ~root:root' ~formula:(formula_of_leaves ()) () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reparsed proof rejected: %a" Proof.Checker.pp_error e

let test_drup_export () =
  let proof, root = hand_refutation () in
  let text = Proof.Export.drup_to_string proof ~root in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "one line per chain" 3 (List.length lines);
  Alcotest.(check string) "last line is the empty clause" "0"
    (String.trim (List.nth lines 2))

let test_import_stitches_lemma () =
  (* Simulate the sweeping pattern: derive a lemma in a query proof,
     import it into a global proof, then use it in a later import. *)
  let global = R.create () in
  let f = Formula.create () in
  ignore (Formula.add_list f [ nlit 0; lit 1 ]);
  ignore (Formula.add_list f [ nlit 1; lit 2 ]);
  ignore (Formula.add_list f [ lit 0 ]);
  ignore (Formula.add_list f [ nlit 2 ]);
  (* Query proof 1 derives the lemma (~a c) from the first two clauses. *)
  let q1 = R.create () in
  let c1 = R.add_leaf q1 (Clause.of_list [ nlit 0; lit 1 ]) in
  let c2 = R.add_leaf q1 (Clause.of_list [ nlit 1; lit 2 ]) in
  let lemma_clause = Clause.of_list [ nlit 0; lit 2 ] in
  let d = R.add_chain q1 ~clause:lemma_clause ~antecedents:[| c1; c2 |] ~pivots:[| 1 |] in
  let lemma_global =
    R.import global q1 ~root:d ~map_leaf:(fun _ c ->
        assert (Formula.mem f c);
        R.add_leaf global c)
  in
  (* Query proof 2 refutes {lemma, (a), (~c)} using the lemma as leaf. *)
  let q2 = R.create () in
  let lem = R.add_leaf q2 lemma_clause in
  let a = R.add_leaf q2 (Clause.singleton (lit 0)) in
  let nc = R.add_leaf q2 (Clause.singleton (nlit 2)) in
  let s1 = R.add_chain q2 ~clause:(Clause.singleton (lit 2)) ~antecedents:[| lem; a |] ~pivots:[| 0 |] in
  let e = R.add_chain q2 ~clause:Clause.empty ~antecedents:[| s1; nc |] ~pivots:[| 2 |] in
  let root =
    R.import global q2 ~root:e ~map_leaf:(fun _ c ->
        if Clause.equal c lemma_clause then lemma_global
        else begin
          assert (Formula.mem f c);
          R.add_leaf global c
        end)
  in
  match Proof.Checker.check global ~root ~formula:f () with
  | Ok chains -> Alcotest.(check int) "stitched chains" 3 chains
  | Error err -> Alcotest.failf "stitched proof rejected: %a" Proof.Checker.pp_error err

(* Property: every proof the CDCL solver emits on random UNSAT
   formulas passes the checker AND trims to a checkable proof AND
   round-trips through the trace format. *)
let prop_solver_proofs_roundtrip =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"solver proofs trim and roundtrip" ~count:60 arb (fun seed ->
         let rng = Support.Rng.create seed in
         let nvars = 4 + Support.Rng.int rng 6 in
         let f = Formula.create () in
         Formula.ensure_vars f nvars;
         for _ = 1 to int_of_float (4.5 *. float_of_int nvars) do
           let rec pick acc k =
             if k = 0 then acc
             else
               let v = Support.Rng.int rng nvars in
               if List.exists (fun l -> Lit.var l = v) acc then pick acc k
               else pick (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
           in
           ignore (Formula.add f (Clause.of_list (pick [] 3)))
         done;
         let s = Sat.Solver.create () in
         Sat.Solver.add_formula s f;
         match Sat.Solver.solve s with
         | Sat.Solver.Sat _ | Sat.Solver.Unknown | Sat.Solver.Unsat_assuming _ -> true
         | Sat.Solver.Unsat root ->
           let proof = Sat.Solver.proof s in
           let trimmed, root' = Proof.Trim.cone proof ~root in
           let text = Proof.Export.trace_to_string trimmed ~root:root' in
           let proof'', root'' = Proof.Export.trace_of_string text in
           (match Proof.Checker.check proof'' ~root:root'' ~formula:f () with
           | Ok _ -> true
           | Error _ -> false)))

let base_suites =
  [
    ( "proof",
      [
        Alcotest.test_case "store basics" `Quick test_store_basics;
        Alcotest.test_case "chain validation" `Quick test_chain_validation;
        Alcotest.test_case "checker accepts" `Quick test_checker_accepts;
        Alcotest.test_case "checker rejects wrong result" `Quick test_checker_rejects_wrong_result;
        Alcotest.test_case "checker rejects bad pivot" `Quick test_checker_rejects_bad_pivot;
        Alcotest.test_case "checker rejects foreign leaf" `Quick test_checker_rejects_foreign_leaf;
        Alcotest.test_case "checker rejects leftover assumption" `Quick
          test_checker_rejects_leftover_assumption;
        Alcotest.test_case "checker rejects non-empty root" `Quick test_checker_rejects_nonempty_root;
        Alcotest.test_case "check_derivation" `Quick test_check_derivation;
        Alcotest.test_case "lift simple" `Quick test_lift_simple;
        Alcotest.test_case "lift requires refutation" `Quick test_lift_requires_empty_root;
        Alcotest.test_case "lift without assumptions" `Quick test_lift_no_assumptions_is_identity;
        Alcotest.test_case "trim" `Quick test_trim;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "stats dedupe ids" `Quick test_stats_dedupes_ids;
        Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
        Alcotest.test_case "drup export" `Quick test_drup_export;
        Alcotest.test_case "import stitches lemmas" `Quick test_import_stitches_lemma;
        prop_solver_proofs_roundtrip;
      ] );
  ]

(* --- RUP checking --- *)

let test_rup_simple () =
  let f = formula_of_leaves () in
  (* formula_of_leaves is unsatisfiable, so derived units are RUP. *)
  Alcotest.(check bool) "derived unit is RUP" true
    (Proof.Rup.check_clause f [] (Clause.singleton (lit 1)));
  (* Against a satisfiable formula, non-consequences are not RUP. *)
  let sat_f = Formula.create () in
  ignore (Formula.add_list sat_f [ nlit 0; lit 1 ]);
  ignore (Formula.add_list sat_f [ nlit 1; lit 2 ]);
  Alcotest.(check bool) "implied clause is RUP" true
    (Proof.Rup.check_clause sat_f [] (Clause.of_list [ nlit 0; lit 2 ]));
  Alcotest.(check bool) "non-consequence is not RUP" false
    (Proof.Rup.check_clause sat_f [] (Clause.singleton (lit 0)))

let test_rup_stream () =
  let f = formula_of_leaves () in
  let stream = [ Clause.singleton (lit 1); Clause.singleton (nlit 1); Clause.empty ] in
  (match Proof.Rup.check_stream f stream with
  | Ok n -> Alcotest.(check int) "three lemmas" 3 n
  | Error e -> Alcotest.failf "valid stream rejected: %a" Proof.Rup.pp_error e);
  (* A stream not ending in the empty clause is rejected. *)
  (match Proof.Rup.check_stream f [ Clause.singleton (lit 1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete stream accepted");
  (* A non-RUP step is rejected (satisfiable base formula). *)
  let sat_f = Formula.create () in
  ignore (Formula.add_list sat_f [ nlit 0; lit 1 ]);
  match Proof.Rup.check_stream sat_f [ Clause.singleton (lit 0); Clause.empty ] with
  | Error e -> Alcotest.(check int) "fails at step 0" 0 e.Proof.Rup.index
  | Ok _ -> Alcotest.fail "non-RUP step accepted"

let test_rup_validates_drup_export () =
  let proof, root = hand_refutation () in
  let drup = Proof.Export.drup_to_string proof ~root in
  match Proof.Rup.check_drup_string (formula_of_leaves ()) drup with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "exported DRUP rejected: %a" Proof.Rup.pp_error e

let prop_solver_drup_is_rup =
  (* The DRUP stream of every solver refutation passes the RUP
     checker — a second validation path fully independent of the
     resolution checker. *)
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"solver DRUP streams are RUP" ~count:30 arb (fun seed ->
         let rng = Support.Rng.create (seed + 1000) in
         let nvars = 4 + Support.Rng.int rng 4 in
         let f = Formula.create () in
         Formula.ensure_vars f nvars;
         for _ = 1 to int_of_float (4.6 *. float_of_int nvars) do
           let rec pick acc k =
             if k = 0 then acc
             else
               let v = Support.Rng.int rng nvars in
               if List.exists (fun l -> Lit.var l = v) acc then pick acc k
               else pick (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
           in
           ignore (Formula.add f (Clause.of_list (pick [] 3)))
         done;
         let s = Sat.Solver.create () in
         Sat.Solver.add_formula s f;
         match Sat.Solver.solve s with
         | Sat.Solver.Sat _ | Sat.Solver.Unknown | Sat.Solver.Unsat_assuming _ -> true
         | Sat.Solver.Unsat root -> (
           let trimmed, troot = Proof.Trim.cone (Sat.Solver.proof s) ~root in
           let drup = Proof.Export.drup_to_string trimmed ~root:troot in
           match Proof.Rup.check_drup_string f drup with
           | Ok _ -> true
           | Error _ -> false)))

(* --- compression --- *)

let test_compress_shares_duplicates () =
  (* Derive the unit (b) twice (same resolvent, different antecedent
     order) and make both copies reachable from one refutation. *)
  let proof = R.create () in
  let l1 = R.add_leaf proof (Clause.of_list [ lit 0; lit 1 ]) in
  let l2 = R.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let l3 = R.add_leaf proof (Clause.of_list [ lit 0; nlit 1 ]) in
  let l4 = R.add_leaf proof (Clause.of_list [ nlit 0; nlit 1 ]) in
  let b1 = R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| l1; l2 |] ~pivots:[| 0 |] in
  let b2 = R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| l2; l1 |] ~pivots:[| 0 |] in
  (* (a ~b) [1] (b) -> (a) [0] (~a ~b) -> (~b) [1] (b) -> empty *)
  let root =
    R.add_chain proof ~clause:Clause.empty ~antecedents:[| l3; b1; l4; b2 |] ~pivots:[| 1; 0; 1 |]
  in
  let kept, original = Proof.Compress.sharing_gain proof ~root in
  Alcotest.(check int) "original cone" 7 original;
  Alcotest.(check int) "one duplicate shared" 6 kept;
  let shared, sroot = Proof.Compress.share proof ~root in
  match Proof.Checker.check shared ~root:sroot () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shared proof rejected: %a" Proof.Checker.pp_error e

let test_compress_preserves_validity_on_solver_proofs () =
  let f = formula_of_leaves () in
  let s = Sat.Solver.create () in
  Sat.Solver.add_formula s f;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat root -> (
    let shared, sroot = Proof.Compress.share (Sat.Solver.proof s) ~root in
    match Proof.Checker.check shared ~root:sroot ~formula:f () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "shared proof rejected: %a" Proof.Checker.pp_error e)
  | Sat.Solver.Sat _ | Sat.Solver.Unknown | Sat.Solver.Unsat_assuming _ ->
    Alcotest.fail "expected UNSAT"

let extra_suites =
  [
    ( "proof-rup",
      [
        Alcotest.test_case "rup simple" `Quick test_rup_simple;
        Alcotest.test_case "rup stream" `Quick test_rup_stream;
        Alcotest.test_case "rup validates drup export" `Quick test_rup_validates_drup_export;
        prop_solver_drup_is_rup;
        Alcotest.test_case "compress shares duplicates" `Quick test_compress_shares_duplicates;
        Alcotest.test_case "compress on solver proofs" `Quick
          test_compress_preserves_validity_on_solver_proofs;
      ] );
  ]

(* --- Craig interpolation --- *)

let solve_partition a b =
  (* Refute A ∧ B with the proof-logging solver. *)
  let s = Sat.Solver.create () in
  Sat.Solver.add_formula s a;
  Sat.Solver.add_formula s b;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat root -> Some (Sat.Solver.proof s, root)
  | Sat.Solver.Sat _ | Sat.Solver.Unknown | Sat.Solver.Unsat_assuming _ -> None

let check_interpolant_contracts a b itp =
  let num_vars = max (Formula.num_vars a) (Formula.num_vars b) in
  assert (num_vars <= 14);
  (* support(I) within shared variables *)
  let occurs f =
    let arr = Array.make num_vars false in
    Formula.iter (fun c -> Clause.iter (fun l -> arr.(Lit.var l) <- true) c) f;
    arr
  in
  let in_a = occurs a and in_b = occurs b in
  Array.iter
    (fun v ->
      if not (in_a.(v) && in_b.(v)) then
        Alcotest.failf "interpolant depends on non-shared variable %d" v)
    (Aig.Cone.support itp [ Aig.output itp 0 ]);
  (* A |= I  and  I ∧ B unsat, exhaustively *)
  for mask = 0 to (1 lsl num_vars) - 1 do
    let assignment = Array.init num_vars (fun v -> (mask lsr v) land 1 = 1) in
    let value_i = (Aig.eval itp assignment).(0) in
    if Formula.satisfied_by a assignment && not value_i then
      Alcotest.failf "A |= I violated on %d" mask;
    if value_i && Formula.satisfied_by b assignment then
      Alcotest.failf "I and B satisfiable together on %d" mask
  done

let test_interpolant_hand () =
  let a = Formula.create () in
  ignore (Formula.add_list a [ nlit 0; lit 1 ]);
  let b = Formula.create () in
  ignore (Formula.add_list b [ lit 0 ]);
  ignore (Formula.add_list b [ nlit 1 ]);
  match solve_partition a b with
  | None -> Alcotest.fail "partition should be unsatisfiable"
  | Some (proof, root) ->
    let itp = Proof.Interpolant.compute proof ~root ~a ~b in
    check_interpolant_contracts a b itp

let test_interpolant_rejects_foreign_leaf () =
  let proof, root = hand_refutation () in
  let a = Formula.create () in
  ignore (Formula.add_list a [ lit 0; lit 1 ]);
  let b = Formula.create () in
  ignore (Formula.add_list b [ nlit 0; lit 1 ]);
  (* two of the four leaves are in neither partition *)
  match Proof.Interpolant.compute proof ~root ~a ~b with
  | exception Proof.Interpolant.Partition_error _ -> ()
  | _ -> Alcotest.fail "foreign leaves accepted"

let prop_interpolants_on_random_partitions =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.nat in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"interpolants satisfy the three contracts" ~count:60 arb
       (fun seed ->
         let rng = Support.Rng.create (seed + 500) in
         let nvars = 4 + Support.Rng.int rng 5 in
         let make_clause () =
           let rec pick acc k =
             if k = 0 then acc
             else
               let v = Support.Rng.int rng nvars in
               if List.exists (fun l -> Lit.var l = v) acc then pick acc k
               else pick (Lit.make v ~neg:(Support.Rng.bool rng) :: acc) (k - 1)
           in
           Clause.of_list (pick [] 3)
         in
         let a = Formula.create () and b = Formula.create () in
         let total = int_of_float (5.0 *. float_of_int nvars) in
         for i = 1 to total do
           ignore (Formula.add (if i mod 2 = 0 then a else b) (make_clause ()))
         done;
         Formula.ensure_vars a nvars;
         Formula.ensure_vars b nvars;
         match solve_partition a b with
         | None -> true (* satisfiable: nothing to interpolate *)
         | Some (proof, root) ->
           let itp = Proof.Interpolant.compute proof ~root ~a ~b in
           check_interpolant_contracts a b itp;
           true))

let interpolant_suites =
  [
    ( "proof-interpolant",
      [
        Alcotest.test_case "hand example" `Quick test_interpolant_hand;
        Alcotest.test_case "foreign leaves rejected" `Quick test_interpolant_rejects_foreign_leaf;
        prop_interpolants_on_random_partitions;
      ] );
  ]

let test_dot_export () =
  let proof, root = hand_refutation () in
  let dot = Proof.Export.dot_to_string proof ~root in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  (* one node line per proof node, one edge per resolution step + chain start *)
  let count needle =
    let n = ref 0 in
    let len = String.length needle in
    for i = 0 to String.length dot - len do
      if String.sub dot i len = needle then incr n
    done;
    !n
  in
  Alcotest.(check int) "7 nodes rendered" 7 (count "shape=");
  Alcotest.(check int) "6 edges" 6 (count "->")

let dot_suites =
  [ ("proof-dot", [ Alcotest.test_case "dot export" `Quick test_dot_export ]) ]

(* --- binary certificates (Binfmt + Stream_check) --- *)

let test_binfmt_roundtrip_hand () =
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode proof ~root in
  Alcotest.(check bool) "binary sniffed" true (Proof.Binfmt.is_binary data);
  Alcotest.(check bool) "ascii not sniffed" false
    (Proof.Binfmt.is_binary (Proof.Export.trace_to_string proof ~root));
  let proof', root' = Proof.Binfmt.decode data in
  Alcotest.(check int) "same node count" 7 (R.size proof');
  Alcotest.(check bool) "root empty" true (Clause.is_empty (R.clause_of proof' root'));
  match Proof.Checker.check proof' ~root:root' ~formula:(formula_of_leaves ()) () with
  | Ok chains -> Alcotest.(check int) "three chains" 3 chains
  | Error e -> Alcotest.failf "decoded proof rejected: %a" Proof.Checker.pp_error e

let test_stream_check_accepts_hand () =
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode proof ~root in
  match Proof.Stream_check.check ~formula:(formula_of_leaves ()) data with
  | Error e -> Alcotest.failf "valid certificate rejected: %a" Proof.Stream_check.pp_error e
  | Ok st ->
    Alcotest.(check int) "seven nodes" 7 st.Proof.Stream_check.nodes;
    Alcotest.(check int) "three chains" 3 st.Proof.Stream_check.chains;
    Alcotest.(check bool) "deletes emitted" true (st.Proof.Stream_check.deletes > 0);
    Alcotest.(check bool) "peak below node count" true
      (st.Proof.Stream_check.peak_live < st.Proof.Stream_check.nodes);
    Alcotest.(check bool) "root still live" true (st.Proof.Stream_check.live_at_end >= 1)

let test_stream_check_rejects_nonempty_root () =
  (* Root the certificate at the intermediate unit (b): well-formed
     bytes, but no refutation. *)
  let proof = R.create () in
  let l1 = R.add_leaf proof (Clause.of_list [ lit 0; lit 1 ]) in
  let l2 = R.add_leaf proof (Clause.of_list [ nlit 0; lit 1 ]) in
  let b = R.add_chain proof ~clause:(Clause.singleton (lit 1)) ~antecedents:[| l1; l2 |] ~pivots:[| 0 |] in
  let data = Proof.Binfmt.encode proof ~root:b in
  match Proof.Stream_check.check data with
  | Ok _ -> Alcotest.fail "non-refutation accepted"
  | Error e -> Alcotest.(check bool) "semantic, not malformed" false e.Proof.Stream_check.malformed

let test_stream_check_rejects_assumption_leaf () =
  let proof = R.create () in
  let l1 = R.add_leaf ~assumption:true proof (Clause.singleton (lit 0)) in
  let l2 = R.add_leaf proof (Clause.singleton (nlit 0)) in
  let root = R.add_chain proof ~clause:Clause.empty ~antecedents:[| l1; l2 |] ~pivots:[| 0 |] in
  let data = Proof.Binfmt.encode proof ~root in
  match Proof.Stream_check.check data with
  | Ok _ -> Alcotest.fail "assumption leaf accepted"
  | Error e -> Alcotest.(check bool) "semantic, not malformed" false e.Proof.Stream_check.malformed

let test_stream_check_rejects_foreign_leaf () =
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode proof ~root in
  let small = Formula.create () in
  ignore (Formula.add_list small [ lit 0; lit 1 ]);
  match Proof.Stream_check.check ~formula:small data with
  | Ok _ -> Alcotest.fail "foreign leaf accepted"
  | Error e -> Alcotest.(check bool) "semantic, not malformed" false e.Proof.Stream_check.malformed

let test_stream_check_rejects_corruption () =
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode proof ~root in
  let flip i =
    String.mapi (fun j c -> if i = j then Char.chr (Char.code c lxor 0x7f) else c) data
  in
  (* Bad magic and truncation are byte-level corruption. *)
  (match Proof.Stream_check.check (flip 0) with
  | Error e -> Alcotest.(check bool) "bad magic is malformed" true e.Proof.Stream_check.malformed
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Proof.Stream_check.check (String.sub data 0 (String.length data - 2)) with
  | Error e -> Alcotest.(check bool) "truncation is malformed" true e.Proof.Stream_check.malformed
  | Ok _ -> Alcotest.fail "truncated certificate accepted");
  match Proof.Binfmt.decode (flip 4) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "decode swallowed a bad version byte"

let test_binfmt_delete_then_use_rejected () =
  (* Hand-craft bytes: two unit leaves, a delete of node 0, then a
     chain citing the deleted node.  The reader must stream it (it is
     structurally fine) and the checker must reject the dead
     antecedent. *)
  let buf = Buffer.create 32 in
  Buffer.add_string buf Proof.Binfmt.magic;
  Buffer.add_char buf (Char.chr Proof.Binfmt.version);
  List.iter (Buffer.add_char buf)
    [
      '\003' (* node count 3 *);
      '\000'; '\001'; '\000' (* leaf (a): 1 literal, lit 0 *);
      '\000'; '\001'; '\001' (* leaf (~a): 1 literal, lit 1 *);
      '\003'; '\001'; '\000' (* delete node 0 *);
      '\002'; '\002'; '\002'; '\001' (* chain of nodes 0 and 1 *);
    ];
  match Proof.Stream_check.check (Buffer.contents buf) with
  | Ok _ -> Alcotest.fail "use-after-delete accepted"
  | Error e ->
    Alcotest.(check bool) "semantic, not malformed" false e.Proof.Stream_check.malformed

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- hinted certificates (encode_hinted + Hint_check) --- *)

let test_hinted_roundtrip_hand () =
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode_hinted proof ~root in
  Alcotest.(check bool) "hinted sniffed" true (Proof.Binfmt.is_hinted data);
  Alcotest.(check bool) "v1 not sniffed as hinted" false
    (Proof.Binfmt.is_hinted (Proof.Binfmt.encode proof ~root));
  let proof', root' = Proof.Binfmt.decode data in
  Alcotest.(check int) "same node count" 7 (R.size proof');
  Alcotest.(check bool) "root empty" true (Clause.is_empty (R.clause_of proof' root'));
  match Proof.Hint_check.check ~formula:(formula_of_leaves ()) data with
  | Error e -> Alcotest.failf "valid hinted certificate rejected: %a" Proof.Hint_check.pp_error e
  | Ok st ->
    Alcotest.(check int) "seven nodes" 7 st.Proof.Hint_check.nodes;
    Alcotest.(check int) "three chains" 3 st.Proof.Hint_check.chains;
    Alcotest.(check int) "three steps" 3 st.Proof.Hint_check.steps;
    Alcotest.(check int) "zero search: all steps hinted" st.Proof.Hint_check.steps
      st.Proof.Hint_check.hints_followed;
    Alcotest.(check int) "one shard without boundaries" 1 st.Proof.Hint_check.shards

let test_hinted_sharded_roundtrip () =
  (* Boundaries after [b] (proof id 4) and [nb] (proof id 5) with a
     shard floor of 1 force three shards; the final chain then pulls
     both its antecedents across shard boundaries, exercising the
     export table end to end. *)
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode_hinted ~boundaries:[| 4; 5 |] ~min_shard_nodes:1 proof ~root in
  (* The sequential checker enforces the same shard discipline. *)
  (match Proof.Stream_check.check ~formula:(formula_of_leaves ()) data with
  | Error e -> Alcotest.failf "stream checker rejected shards: %a" Proof.Stream_check.pp_error e
  | Ok _ -> ());
  List.iter
    (fun jobs ->
      match Proof.Hint_check.check ~formula:(formula_of_leaves ()) ~jobs data with
      | Error e ->
        Alcotest.failf "sharded certificate rejected (jobs=%d): %a" jobs
          Proof.Hint_check.pp_error e
      | Ok st ->
        Alcotest.(check int) "three shards" 3 st.Proof.Hint_check.shards;
        Alcotest.(check int) "three chains" 3 st.Proof.Hint_check.chains)
    [ 1; 2; 8 ];
  let proof', root' = Proof.Binfmt.decode data in
  Alcotest.(check bool) "decoded root empty" true (Clause.is_empty (R.clause_of proof' root'))

let test_hint_check_refuses_unhinted () =
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode proof ~root in
  match Proof.Hint_check.check data with
  | Ok _ -> Alcotest.fail "hinted checker accepted an un-hinted certificate"
  | Error e ->
    Alcotest.(check bool) "not classified as corruption" false e.Proof.Hint_check.malformed;
    Alcotest.(check bool) "says the certificate has no hints" true
      (contains e.Proof.Hint_check.reason "no hints")

(* Rejection reports pin the offending chain id and byte offset in a
   fixed format — `check-proof` prints these verbatim, so downstream
   tooling may parse them. *)
let test_reject_message_pins_chain_and_offset () =
  (* v1: two unit leaves, delete node 0, then a chain citing it.
     Records end at bytes 9, 12, 15, 19; the offending chain is node 2. *)
  let v1 = Buffer.create 32 in
  Buffer.add_string v1 Proof.Binfmt.magic;
  Buffer.add_char v1 (Char.chr Proof.Binfmt.version);
  List.iter (Buffer.add_char v1)
    [
      '\003';
      '\000'; '\001'; '\000';
      '\000'; '\001'; '\001';
      '\003'; '\001'; '\000';
      '\002'; '\002'; '\002'; '\001';
    ];
  (match Proof.Stream_check.check (Buffer.contents v1) with
  | Ok _ -> Alcotest.fail "use-after-delete accepted"
  | Error e ->
    Alcotest.(check (option int)) "chain attributed" (Some 2) e.Proof.Stream_check.chain;
    Alcotest.(check string) "stream message format"
      "chain 2, byte 19: antecedent 0 is dead (deleted before its last use)"
      (Format.asprintf "%a" Proof.Stream_check.pp_error e));
  (* The same proof in the hinted layout: a 5-byte header (node count,
     one shard of 3 nodes, 14 body bytes, no exports) shifts the chain
     record's end to byte 24; the chain carries one pivot hint. *)
  let v3 = Buffer.create 32 in
  Buffer.add_string v3 Proof.Binfmt.magic;
  Buffer.add_char v3 (Char.chr Proof.Binfmt.version_hinted);
  List.iter (Buffer.add_char v3)
    [
      '\003'; '\001'; '\003'; '\014'; '\000';
      '\000'; '\001'; '\000';
      '\000'; '\001'; '\001';
      '\003'; '\001'; '\000';
      '\002'; '\002'; '\002'; '\001'; '\000';
    ];
  let expected = "chain 2, byte 24: antecedent 0 is dead (deleted before its last use)" in
  (match Proof.Hint_check.check (Buffer.contents v3) with
  | Ok _ -> Alcotest.fail "hinted use-after-delete accepted"
  | Error e ->
    Alcotest.(check (option int)) "hinted chain attributed" (Some 2) e.Proof.Hint_check.chain;
    Alcotest.(check string) "hinted message format" expected
      (Format.asprintf "%a" Proof.Hint_check.pp_error e));
  match Proof.Stream_check.check (Buffer.contents v3) with
  | Ok _ -> Alcotest.fail "stream accepted hinted use-after-delete"
  | Error e ->
    Alcotest.(check string) "stream agrees on the hinted body" expected
      (Format.asprintf "%a" Proof.Stream_check.pp_error e)

let test_hinted_wrong_hint_rejected () =
  (* Flip the final chain's pivot hint (variable 1 -> variable 0): the
     hinted checker fails the non-clashing resolution, the searching
     checker fails the hint cross-check — both must reject without
     classifying the bytes as corrupt. *)
  let proof, root = hand_refutation () in
  let data = Proof.Binfmt.encode_hinted proof ~root in
  (* The last byte of the final chain record is its single pivot. *)
  let flipped =
    String.mapi
      (fun i c -> if i = String.length data - 1 then Char.chr (Char.code c lxor 1) else c)
      data
  in
  (match Proof.Hint_check.check flipped with
  | Ok _ -> Alcotest.fail "wrong hint accepted by the hinted checker"
  | Error e -> Alcotest.(check bool) "semantic, not malformed" false e.Proof.Hint_check.malformed);
  match Proof.Stream_check.check flipped with
  | Ok _ -> Alcotest.fail "wrong hint accepted by the stream checker"
  | Error e ->
    Alcotest.(check bool) "semantic, not malformed" false e.Proof.Stream_check.malformed

(* --- regressions for the proof-I/O bugfixes --- *)

let test_drup_skips_deletions_comments_crlf () =
  (* A solver-style DRUP file: comments, a deletion line and CRLF
     endings — all of which used to raise [Failure]. *)
  let drup = "c proof of the hand example\r\n2 0\r\nd 1 2 0\r\n-2 0\r\n0\r\n" in
  match Proof.Rup.check_drup_string (formula_of_leaves ()) drup with
  | Ok n -> Alcotest.(check int) "three lemmas survive" 3 n
  | Error e -> Alcotest.failf "solver-style DRUP rejected: %a" Proof.Rup.pp_error e

let test_rup_empty_stream_error_index () =
  match Proof.Rup.check_stream (formula_of_leaves ()) [] with
  | Ok _ -> Alcotest.fail "empty stream accepted"
  | Error e -> Alcotest.(check int) "index 0, not -1" 0 e.Proof.Rup.index

let test_trace_rejects_duplicate_id () =
  let text = "1 L 1 2 0\n1 L -1 2 0\n2 C 1 1 1 0 2 0\n" in
  match Proof.Export.trace_of_string text with
  | exception Failure msg -> Alcotest.(check bool) "names the duplicate" true (contains msg "duplicate")
  | _ -> Alcotest.fail "duplicate node id silently accepted"

let test_trace_accepts_crlf () =
  let proof, root = hand_refutation () in
  let text = Proof.Export.trace_to_string proof ~root in
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' text)
  in
  let proof', root' = Proof.Export.trace_of_string crlf in
  match Proof.Checker.check proof' ~root:root' ~formula:(formula_of_leaves ()) () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "CRLF trace rejected: %a" Proof.Checker.pp_error e

let binfmt_suites =
  [
    ( "proof-binfmt",
      [
        Alcotest.test_case "roundtrip hand proof" `Quick test_binfmt_roundtrip_hand;
        Alcotest.test_case "stream check accepts" `Quick test_stream_check_accepts_hand;
        Alcotest.test_case "stream check rejects non-empty root" `Quick
          test_stream_check_rejects_nonempty_root;
        Alcotest.test_case "stream check rejects assumption leaf" `Quick
          test_stream_check_rejects_assumption_leaf;
        Alcotest.test_case "stream check rejects foreign leaf" `Quick
          test_stream_check_rejects_foreign_leaf;
        Alcotest.test_case "stream check rejects corruption" `Quick
          test_stream_check_rejects_corruption;
        Alcotest.test_case "use-after-delete rejected" `Quick test_binfmt_delete_then_use_rejected;
        Alcotest.test_case "hinted roundtrip hand proof" `Quick test_hinted_roundtrip_hand;
        Alcotest.test_case "hinted sharded roundtrip" `Quick test_hinted_sharded_roundtrip;
        Alcotest.test_case "hint checker refuses un-hinted input" `Quick
          test_hint_check_refuses_unhinted;
        Alcotest.test_case "rejection pins chain id and byte offset" `Quick
          test_reject_message_pins_chain_and_offset;
        Alcotest.test_case "wrong pivot hint rejected" `Quick test_hinted_wrong_hint_rejected;
        Alcotest.test_case "drup skips d/c/CRLF lines" `Quick test_drup_skips_deletions_comments_crlf;
        Alcotest.test_case "empty rup stream error index" `Quick test_rup_empty_stream_error_index;
        Alcotest.test_case "trace rejects duplicate id" `Quick test_trace_rejects_duplicate_id;
        Alcotest.test_case "trace accepts CRLF" `Quick test_trace_accepts_crlf;
      ] );
  ]

let suites = base_suites @ extra_suites @ interpolant_suites @ dot_suites @ binfmt_suites
