(* Tests for the AIG package: literals, graph construction and
   strashing, simulation vs. the reference evaluator, cones, AIGER
   round trips and miters.  Property-based tests draw random graphs. *)

module Lit = Aig.Lit
module Sim = Aig.Sim
module Rng = Support.Rng

(* A reusable QCheck generator of small random AIGs. *)
let arbitrary_aig ?(max_inputs = 6) ?(max_ands = 40) () =
  let open QCheck in
  let gen =
    Gen.map3
      (fun seed ni na ->
        Circuits.Random_aig.generate (Rng.create seed) ~num_inputs:(1 + ni) ~num_ands:na
          ~num_outputs:2)
      Gen.nat (Gen.int_bound (max_inputs - 1)) (Gen.int_bound max_ands)
  in
  make ~print:(fun g -> Aig.Aiger.to_string g) gen

let qtest name ?(count = 100) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* --- Lit --- *)

let test_lit_roundtrip () =
  for v = 0 to 20 do
    List.iter
      (fun neg ->
        let l = Lit.make v ~neg in
        Alcotest.(check int) "var" v (Lit.var l);
        Alcotest.(check bool) "neg" neg (Lit.is_neg l);
        Alcotest.(check int) "double neg" l (Lit.neg (Lit.neg l));
        Alcotest.(check int) "dimacs roundtrip" l (Lit.of_dimacs (Lit.to_dimacs l)))
      [ false; true ]
  done

let test_lit_constants () =
  Alcotest.(check int) "false is lit 0" 0 Lit.false_;
  Alcotest.(check int) "true is lit 1" 1 Lit.true_;
  Alcotest.(check int) "true = not false" Lit.true_ (Lit.neg Lit.false_);
  Alcotest.(check bool) "const detection" true (Lit.is_const Lit.true_);
  Alcotest.(check bool) "non const" false (Lit.is_const (Lit.of_var 3))

let test_lit_abs_sign () =
  let l = Lit.make 5 ~neg:true in
  Alcotest.(check int) "abs" (Lit.of_var 5) (Lit.abs l);
  Alcotest.(check int) "apply_sign false" l (Lit.apply_sign l ~neg:false);
  Alcotest.(check int) "apply_sign true" (Lit.neg l) (Lit.apply_sign l ~neg:true)

(* --- Graph construction --- *)

let test_and_simplifications () =
  let g = Aig.create ~num_inputs:2 in
  let a = Aig.input g 0 and b = Aig.input g 1 in
  Alcotest.(check int) "x & false" Lit.false_ (Aig.and_ g a Lit.false_);
  Alcotest.(check int) "x & true" a (Aig.and_ g a Lit.true_);
  Alcotest.(check int) "x & x" a (Aig.and_ g a a);
  Alcotest.(check int) "x & ~x" Lit.false_ (Aig.and_ g a (Lit.neg a));
  let ab = Aig.and_ g a b in
  Alcotest.(check int) "strash hit" ab (Aig.and_ g b a);
  Alcotest.(check int) "one node" 1 (Aig.num_ands g)

let test_derived_gates () =
  let g = Aig.create ~num_inputs:2 in
  let a = Aig.input g 0 and b = Aig.input g 1 in
  let gates =
    [
      ("or", Aig.or_ g a b, [| false; true; true; true |]);
      ("xor", Aig.xor_ g a b, [| false; true; true; false |]);
      ("xnor", Aig.xnor_ g a b, [| true; false; false; true |]);
      ("implies", Aig.implies g a b, [| true; false; true; true |]);
    ]
  in
  List.iter
    (fun (name, l, table) ->
      Array.iteri
        (fun idx expected ->
          let assignment = [| idx land 1 = 1; idx lsr 1 = 1 |] in
          Alcotest.(check bool)
            (Printf.sprintf "%s(%d)" name idx)
            expected (Aig.eval_lit g assignment l))
        table)
    gates

let test_mux () =
  let g = Aig.create ~num_inputs:3 in
  let s = Aig.input g 0 and t = Aig.input g 1 and e = Aig.input g 2 in
  let m = Aig.mux g ~sel:s ~t ~e in
  for idx = 0 to 7 do
    let assignment = [| idx land 1 = 1; (idx lsr 1) land 1 = 1; idx lsr 2 = 1 |] in
    let expected = if assignment.(0) then assignment.(1) else assignment.(2) in
    Alcotest.(check bool) (Printf.sprintf "mux(%d)" idx) expected (Aig.eval_lit g assignment m)
  done

let test_and_or_list () =
  let g = Aig.create ~num_inputs:4 in
  let ins = List.init 4 (Aig.input g) in
  Alcotest.(check int) "empty and" Lit.true_ (Aig.and_list g []);
  Alcotest.(check int) "empty or" Lit.false_ (Aig.or_list g []);
  let all = Aig.and_list g ins and any = Aig.or_list g ins in
  for idx = 0 to 15 do
    let assignment = Array.init 4 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check bool) "and_list" (Array.for_all Fun.id assignment)
      (Aig.eval_lit g assignment all);
    Alcotest.(check bool) "or_list" (Array.exists Fun.id assignment)
      (Aig.eval_lit g assignment any)
  done

let test_levels_depth () =
  let g = Aig.create ~num_inputs:3 in
  let a = Aig.input g 0 and b = Aig.input g 1 and c = Aig.input g 2 in
  let ab = Aig.and_ g a b in
  let abc = Aig.and_ g ab c in
  Aig.add_output g abc;
  let levels = Aig.levels g in
  Alcotest.(check int) "input level" 0 levels.(Lit.var a);
  Alcotest.(check int) "ab level" 1 levels.(Lit.var ab);
  Alcotest.(check int) "abc level" 2 levels.(Lit.var abc);
  Alcotest.(check int) "depth" 2 (Aig.depth g)

let prop_check_invariants =
  qtest "graph invariants hold on random graphs" (arbitrary_aig ())
    (fun g ->
      Aig.check g;
      true)

(* --- Simulation --- *)

let prop_sim_matches_eval =
  (* Bit-parallel simulation agrees with the reference evaluator on
     random patterns. *)
  qtest "sim agrees with eval" ~count:50 (arbitrary_aig ()) (fun g ->
      let sim = Sim.create g ~words:2 in
      let rng = Rng.create 31 in
      Sim.randomize_inputs sim rng;
      Sim.run sim;
      let ok = ref true in
      for bit = 0 to 20 do
        let assignment =
          Array.init (Aig.num_inputs g) (fun i -> Sim.lit_bit sim (Aig.input g i) ~bit)
        in
        let outputs = Aig.eval g assignment in
        Array.iteri
          (fun o expected ->
            if Sim.lit_bit sim (Aig.output g o) ~bit <> expected then ok := false)
          outputs
      done;
      !ok)

let prop_truth_table_matches_eval =
  qtest "truth table agrees with eval" ~count:50
    (arbitrary_aig ~max_inputs:5 ~max_ands:25 ())
    (fun g ->
      let out = Aig.output g 0 in
      let tt = Sim.truth_table g out in
      let n = Aig.num_inputs g in
      let ok = ref true in
      for idx = 0 to (1 lsl n) - 1 do
        let assignment = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
        let expected = Aig.eval_lit g assignment out in
        let got = Int64.logand (Int64.shift_right_logical tt.(idx / 64) (idx mod 64)) 1L = 1L in
        if expected <> got then ok := false
      done;
      !ok)

let test_truth_table_wide_cone () =
  (* 17 inputs is past the exhaustive-simulation limit: the exception
     variant must refuse, the total variant must return None (the
     portfolio selector relies on this degrading instead of raising),
     and at exactly 16 inputs both must still work. *)
  let wide = Aig.create ~num_inputs:17 in
  Aig.add_output wide (Aig.and_list wide (List.init 17 (Aig.input wide)));
  (match Sim.truth_table wide (Aig.output wide 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "truth_table accepted a 17-input graph");
  Alcotest.(check bool) "truth_table_opt is None past 16 inputs" true
    (Sim.truth_table_opt wide (Aig.output wide 0) = None);
  let limit = Aig.create ~num_inputs:16 in
  Aig.add_output limit (Aig.and_list limit (List.init 16 (Aig.input limit)));
  match Sim.truth_table_opt limit (Aig.output limit 0) with
  | None -> Alcotest.fail "truth_table_opt refused a 16-input graph"
  | Some tt ->
    Alcotest.(check int) "16-input table spans 1024 words" 1024 (Array.length tt);
    if tt = Sim.truth_table limit (Aig.output limit 0) then () else
      Alcotest.fail "total and raising variants disagree at the limit"

let test_set_input_bit () =
  let g = Aig.create ~num_inputs:1 in
  Aig.add_output g (Aig.input g 0);
  let sim = Sim.create g ~words:2 in
  Sim.set_input_bit sim ~input:0 ~bit:70 true;
  Sim.run sim;
  Alcotest.(check bool) "bit set" true (Sim.lit_bit sim (Aig.output g 0) ~bit:70);
  Alcotest.(check bool) "other bit clear" false (Sim.lit_bit sim (Aig.output g 0) ~bit:3);
  Sim.set_input_bit sim ~input:0 ~bit:70 false;
  Sim.run sim;
  Alcotest.(check bool) "bit cleared" false (Sim.lit_bit sim (Aig.output g 0) ~bit:70)

(* --- Cones --- *)

let test_cone_support () =
  let g = Aig.create ~num_inputs:4 in
  let a = Aig.input g 0 and b = Aig.input g 1 and c = Aig.input g 2 in
  let ab = Aig.and_ g a b in
  let bc = Aig.and_ g b c in
  Aig.add_output g ab;
  Aig.add_output g bc;
  Alcotest.(check (array int)) "support of ab" [| 0; 1 |] (Aig.Cone.support g [ ab ]);
  Alcotest.(check (array int)) "support of both" [| 0; 1; 2 |] (Aig.Cone.support g [ ab; bc ]);
  Alcotest.(check int) "cone size" 1 (Aig.Cone.size g [ ab ]);
  Alcotest.(check int) "tfi ands of both" 2 (Array.length (Aig.Cone.tfi_ands g [ ab; bc ]))

let prop_extract_cone_preserves =
  qtest "extract_cone preserves functions" ~count:50
    (arbitrary_aig ~max_inputs:5 ~max_ands:25 ())
    (fun g ->
      let outs = Array.to_list (Aig.outputs g) in
      let cone = Aig.extract_cone g outs in
      let n = Aig.num_inputs g in
      let ok = ref true in
      for idx = 0 to min 63 ((1 lsl n) - 1) do
        let assignment = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
        if Aig.eval g assignment <> Aig.eval cone assignment then ok := false
      done;
      !ok && Aig.num_ands cone <= Aig.num_ands g)

let prop_cleanup_preserves =
  qtest "cleanup preserves functions" ~count:50
    (arbitrary_aig ~max_inputs:5 ~max_ands:25 ())
    (fun g ->
      let cleaned = Aig.cleanup g in
      let n = Aig.num_inputs g in
      let ok = ref true in
      for idx = 0 to min 63 ((1 lsl n) - 1) do
        let assignment = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
        if Aig.eval g assignment <> Aig.eval cleaned assignment then ok := false
      done;
      !ok)

(* --- AIGER --- *)

let prop_aiger_roundtrip =
  qtest "aiger text roundtrip" (arbitrary_aig ()) (fun g ->
      let g' = Aig.Aiger.of_string (Aig.Aiger.to_string g) in
      Aig.num_inputs g' = Aig.num_inputs g
      && Aig.num_ands g' = Aig.num_ands g
      && Aig.num_outputs g' = Aig.num_outputs g
      &&
      let n = Aig.num_inputs g in
      let ok = ref true in
      for idx = 0 to min 63 ((1 lsl n) - 1) do
        let assignment = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
        if Aig.eval g assignment <> Aig.eval g' assignment then ok := false
      done;
      !ok)

let test_aiger_errors () =
  let expect_error text =
    match Aig.Aiger.of_string text with
    | exception Aig.Aiger.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" text
  in
  expect_error "";
  expect_error "aag 1 1 1 0 0\n2\n2 2\n";
  (* latches *)
  expect_error "aag 1 2 0 0 0\n2\n4\n";
  (* var out of range *)
  expect_error "aag 2 1 0 1 1\n2\n4\n4 6 2\n" (* fanin used before definition *)

let test_aiger_file_io () =
  let g = Circuits.Adder.ripple_carry 3 in
  let path = Filename.temp_file "cecproof" ".aag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Aig.Aiger.write_file path g;
      let g' = Aig.Aiger.read_file path in
      Alcotest.(check int) "ands preserved" (Aig.num_ands g) (Aig.num_ands g'))

(* --- Miter --- *)

let test_miter_of_equal_is_const () =
  (* Miter of a circuit with itself folds to constant false
     structurally (shared strashing). *)
  let a = Circuits.Adder.ripple_carry 3 in
  let m = Aig.Miter.build a a in
  Alcotest.(check int) "constant false output" Lit.false_ (Aig.output m 0)

let test_miter_detects_difference () =
  let a = Circuits.Datapath.parity ~tree:true 4 in
  let b = Circuits.Datapath.equality ~tree:true 2 in
  (* parity of 4 inputs vs equality of 2+2: same interface width. *)
  let m = Aig.Miter.build a b in
  Alcotest.(check int) "single output" 1 (Aig.num_outputs m);
  (* 1000: parity=1; eq(10,00)=0 -> miter=1. *)
  Alcotest.(check bool) "differs" true (Aig.eval m [| true; false; false; false |]).(0)

let test_miter_interface_mismatch () =
  let a = Circuits.Adder.ripple_carry 2 and b = Circuits.Adder.ripple_carry 3 in
  match Aig.Miter.build a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_pairwise_miter =
  qtest "pairwise miter has one output per pair" ~count:20
    (arbitrary_aig ~max_inputs:4 ~max_ands:15 ())
    (fun g ->
      let m = Aig.Miter.build_pairwise g g in
      Aig.num_outputs m = Aig.num_outputs g
      && Array.for_all (fun l -> l = Lit.false_) (Aig.outputs m))

let test_append () =
  let sub = Circuits.Datapath.parity ~tree:true 3 in
  let g = Aig.create ~num_inputs:3 in
  let inputs = Array.init 3 (Aig.input g) in
  let out1 = Aig.append g sub ~inputs in
  let out2 = Aig.append g sub ~inputs in
  Alcotest.(check int) "append is hashed" out1.(0) out2.(0)

let base_suites =
  [
    ( "aig",
      [
        Alcotest.test_case "lit roundtrip" `Quick test_lit_roundtrip;
        Alcotest.test_case "lit constants" `Quick test_lit_constants;
        Alcotest.test_case "lit abs/sign" `Quick test_lit_abs_sign;
        Alcotest.test_case "and simplifications" `Quick test_and_simplifications;
        Alcotest.test_case "derived gates" `Quick test_derived_gates;
        Alcotest.test_case "mux" `Quick test_mux;
        Alcotest.test_case "and/or list" `Quick test_and_or_list;
        Alcotest.test_case "levels and depth" `Quick test_levels_depth;
        prop_check_invariants;
        prop_sim_matches_eval;
        prop_truth_table_matches_eval;
        Alcotest.test_case "truth table wide-cone guard" `Quick test_truth_table_wide_cone;
        Alcotest.test_case "set_input_bit" `Quick test_set_input_bit;
        Alcotest.test_case "cone support" `Quick test_cone_support;
        prop_extract_cone_preserves;
        prop_cleanup_preserves;
        prop_aiger_roundtrip;
        Alcotest.test_case "aiger malformed inputs" `Quick test_aiger_errors;
        Alcotest.test_case "aiger file io" `Quick test_aiger_file_io;
        Alcotest.test_case "miter of identical circuits" `Quick test_miter_of_equal_is_const;
        Alcotest.test_case "miter detects difference" `Quick test_miter_detects_difference;
        Alcotest.test_case "miter interface mismatch" `Quick test_miter_interface_mismatch;
        prop_pairwise_miter;
        Alcotest.test_case "append strashing" `Quick test_append;
      ] );
  ]

(* --- binary AIGER --- *)

let prop_aiger_binary_roundtrip =
  qtest "binary aiger roundtrip" (arbitrary_aig ()) (fun g ->
      let g' = Aig.Aiger.of_string (Aig.Aiger.to_binary_string g) in
      Aig.num_inputs g' = Aig.num_inputs g
      && Aig.num_ands g' = Aig.num_ands g
      && Aig.num_outputs g' = Aig.num_outputs g
      &&
      let n = Aig.num_inputs g in
      let ok = ref true in
      for idx = 0 to min 63 ((1 lsl n) - 1) do
        let assignment = Array.init n (fun i -> (idx lsr i) land 1 = 1) in
        if Aig.eval g assignment <> Aig.eval g' assignment then ok := false
      done;
      !ok)

let test_binary_aiger_compact () =
  let g = Circuits.Adder.ripple_carry 16 in
  let ascii = Aig.Aiger.to_string g and binary = Aig.Aiger.to_binary_string g in
  Alcotest.(check bool) "binary is smaller" true (String.length binary < String.length ascii)

let test_binary_aiger_errors () =
  let expect text =
    match Aig.Aiger.of_string text with
    | exception Aig.Aiger.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error"
  in
  expect "aig 3 1 0 1 1\n2\n";
  (* truncated AND section *)
  expect "aig 5 1 0 1 1\n2\n\x01\x00" (* M <> I + A *)

let binary_suites =
  [
    ( "aig-binary",
      [
        prop_aiger_binary_roundtrip;
        Alcotest.test_case "binary is compact" `Quick test_binary_aiger_compact;
        Alcotest.test_case "binary malformed inputs" `Quick test_binary_aiger_errors;
      ] );
  ]

let suites = base_suites @ binary_suites
