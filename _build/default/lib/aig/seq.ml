exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type t = {
  comb : Graph.t;
  num_pis : int;
  num_latches : int;
  init : bool array;
}

let create ?init comb ~num_pis ~num_latches =
  if num_pis < 0 || num_latches < 0 then invalid_arg "Seq.create: negative counts";
  if Graph.num_inputs comb <> num_pis + num_latches then
    invalid_arg "Seq.create: transition structure input count mismatch";
  if Graph.num_outputs comb < num_latches then
    invalid_arg "Seq.create: transition structure needs a next-state output per latch";
  let init =
    match init with
    | None -> Array.make num_latches false
    | Some a ->
      if Array.length a <> num_latches then invalid_arg "Seq.create: init length mismatch";
      Array.copy a
  in
  { comb; num_pis; num_latches; init }

let num_pis t = t.num_pis
let num_latches t = t.num_latches
let num_pos t = Graph.num_outputs t.comb - t.num_latches
let transition t = t.comb

let unroll t ~frames =
  if frames < 1 then invalid_arg "Seq.unroll: need at least one frame";
  let pos = num_pos t in
  let g = Graph.create ~num_inputs:(frames * t.num_pis) in
  let state =
    ref (Array.map (fun b -> if b then Lit.true_ else Lit.false_) t.init)
  in
  for frame = 0 to frames - 1 do
    let frame_inputs =
      Array.init t.num_pis (fun i -> Graph.input g ((frame * t.num_pis) + i))
    in
    let outs = Graph.append g t.comb ~inputs:(Array.append frame_inputs !state) in
    for o = 0 to pos - 1 do
      Graph.add_output g outs.(o)
    done;
    state := Array.sub outs pos t.num_latches
  done;
  g

(* --- AIGER with latches (ASCII) --- *)

let of_aiger_string text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun s -> String.trim s <> "")
  in
  let header, rest =
    match lines with
    | [] -> fail "empty file"
    | h :: rest -> (h, rest)
  in
  let m, i, l, o, a =
    match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
    | [ "aag"; m; i; l; o; a ] -> (
      match
        (int_of_string_opt m, int_of_string_opt i, int_of_string_opt l, int_of_string_opt o,
         int_of_string_opt a)
      with
      | Some m, Some i, Some l, Some o, Some a -> (m, i, l, o, a)
      | _ -> fail "malformed header %S" header)
    | _ -> fail "malformed header %S (sequential reader needs aag)" header
  in
  let take n xs =
    let rec loop n xs acc =
      if n = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> fail "truncated file"
        | x :: xs -> loop (n - 1) xs (x :: acc)
    in
    loop n xs []
  in
  let ints line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some v -> v
           | None -> fail "not a number %S" s)
  in
  let input_lines, rest = take i rest in
  let latch_lines, rest = take l rest in
  let output_lines, rest = take o rest in
  let and_lines, _ = take a rest in
  let g = Graph.create ~num_inputs:(i + l) in
  let map = Array.make (m + 1) (-1) in
  map.(0) <- Lit.false_;
  List.iteri
    (fun idx line ->
      match ints line with
      | [ lit ] when lit mod 2 = 0 && lit / 2 >= 1 && lit / 2 <= m ->
        if map.(lit / 2) <> -1 then fail "variable %d defined twice" (lit / 2);
        map.(lit / 2) <- Graph.input g idx
      | _ -> fail "malformed input line %S" line)
    input_lines;
  let latch_next = ref [] in
  List.iteri
    (fun idx line ->
      match ints line with
      | lit :: next :: init_rest ->
        if lit mod 2 <> 0 then fail "latch literal %d complemented" lit;
        (match init_rest with
        | [] | [ 0 ] -> ()
        | _ -> fail "only reset-to-0 latches are supported");
        if map.(lit / 2) <> -1 then fail "variable %d defined twice" (lit / 2);
        map.(lit / 2) <- Graph.input g (i + idx);
        latch_next := next :: !latch_next
      | _ -> fail "malformed latch line %S" line)
    latch_lines;
  let map_lit lit =
    let v = lit / 2 in
    if v > m then fail "literal %d out of range" lit;
    if map.(v) = -1 then fail "literal %d used before definition" lit;
    Lit.apply_sign map.(v) ~neg:(lit mod 2 = 1)
  in
  List.iter
    (fun line ->
      match ints line with
      | [ lhs; rhs0; rhs1 ] when lhs mod 2 = 0 ->
        let v = lhs / 2 in
        if v < 1 || v > m then fail "AND variable %d out of range" v;
        if map.(v) <> -1 then fail "variable %d defined twice" v;
        map.(v) <- Graph.and_ g (map_lit rhs0) (map_lit rhs1)
      | _ -> fail "malformed AND line %S" line)
    and_lines;
  List.iter
    (fun line ->
      match ints line with
      | [ lit ] -> Graph.add_output g (map_lit lit)
      | _ -> fail "malformed output line %S" line)
    output_lines;
  List.iter (fun next -> Graph.add_output g (map_lit next)) (List.rev !latch_next);
  create g ~num_pis:i ~num_latches:l

let to_aiger_string t =
  let g = t.comb in
  let pos = num_pos t in
  let buf = Buffer.create 4096 in
  let max_var = Graph.num_inputs g + Graph.num_ands g in
  Printf.bprintf buf "aag %d %d %d %d %d\n" max_var t.num_pis t.num_latches pos
    (Graph.num_ands g);
  for i = 0 to t.num_pis - 1 do
    Printf.bprintf buf "%d\n" (Graph.input g i)
  done;
  for j = 0 to t.num_latches - 1 do
    Printf.bprintf buf "%d %d\n" (Graph.input g (t.num_pis + j)) (Graph.output g (pos + j))
  done;
  for o = 0 to pos - 1 do
    Printf.bprintf buf "%d\n" (Graph.output g o)
  done;
  Graph.iter_ands g (fun n ->
      Printf.bprintf buf "%d %d %d\n" (Lit.of_var n) (Graph.fanin1 g n) (Graph.fanin0 g n));
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_aiger_string (really_input_string ic (in_channel_length ic)))

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_aiger_string t))
