exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let to_buffer buf g =
  let num_inputs = Graph.num_inputs g in
  let num_ands = Graph.num_ands g in
  let max_var = num_inputs + num_ands in
  Printf.bprintf buf "aag %d %d 0 %d %d\n" max_var num_inputs (Graph.num_outputs g) num_ands;
  for i = 0 to num_inputs - 1 do
    Printf.bprintf buf "%d\n" (Graph.input g i)
  done;
  Array.iter (fun l -> Printf.bprintf buf "%d\n" l) (Graph.outputs g);
  Graph.iter_ands g (fun n ->
      let f0 = Graph.fanin0 g n and f1 = Graph.fanin1 g n in
      (* The format wants rhs0 >= rhs1; the graph stores f0 <= f1. *)
      Printf.bprintf buf "%d %d %d\n" (Lit.of_var n) f1 f0)

let to_string g =
  let buf = Buffer.create 4096 in
  to_buffer buf g;
  Buffer.contents buf

let write_channel oc g = output_string oc (to_string g)

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc g)

let of_ascii_string text =
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun s -> String.trim s <> "") lines in
  let header, rest =
    match lines with
    | [] -> fail "empty file"
    | h :: rest -> (h, rest)
  in
  let ints_of_line line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some v -> v
           | None -> fail "not a number: %S" s)
  in
  let m, i, l, o, a =
    match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
    | [ "aag"; m; i; l; o; a ] -> (
      match
        (int_of_string_opt m, int_of_string_opt i, int_of_string_opt l, int_of_string_opt o,
         int_of_string_opt a)
      with
      | Some m, Some i, Some l, Some o, Some a -> (m, i, l, o, a)
      | _ -> fail "malformed header %S" header)
    | _ -> fail "malformed header %S" header
  in
  if l <> 0 then fail "latches are not supported (combinational only)";
  if List.length rest < i + o + a then fail "truncated file";
  let take n xs =
    let rec loop n xs acc =
      if n = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> fail "truncated file"
        | x :: xs -> loop (n - 1) xs (x :: acc)
    in
    loop n xs []
  in
  let input_lines, rest = take i rest in
  let output_lines, rest = take o rest in
  let and_lines, _comments = take a rest in
  let g = Graph.create ~num_inputs:i in
  (* map.(aiger_var) = our literal for that variable, or -1. *)
  let map = Array.make (m + 1) (-1) in
  map.(0) <- Lit.false_;
  List.iteri
    (fun idx line ->
      match ints_of_line line with
      | [ lit ] ->
        if lit mod 2 <> 0 then fail "input literal %d is complemented" lit;
        let v = lit / 2 in
        if v < 1 || v > m then fail "input variable %d out of range" v;
        if map.(v) <> -1 then fail "variable %d defined twice" v;
        map.(v) <- Graph.input g idx
      | _ -> fail "malformed input line %S" line)
    input_lines;
  let map_lit lit =
    let v = lit / 2 in
    if v > m then fail "literal %d out of range" lit;
    let ours = map.(v) in
    if ours = -1 then fail "literal %d used before definition" lit;
    Lit.apply_sign ours ~neg:(lit mod 2 = 1)
  in
  List.iter
    (fun line ->
      match ints_of_line line with
      | [ lhs; rhs0; rhs1 ] ->
        if lhs mod 2 <> 0 then fail "AND lhs %d is complemented" lhs;
        let v = lhs / 2 in
        if v < 1 || v > m then fail "AND variable %d out of range" v;
        if map.(v) <> -1 then fail "variable %d defined twice" v;
        map.(v) <- Graph.and_ g (map_lit rhs0) (map_lit rhs1)
      | _ -> fail "malformed AND line %S" line)
    and_lines;
  List.iter
    (fun line ->
      match ints_of_line line with
      | [ lit ] -> Graph.add_output g (map_lit lit)
      | _ -> fail "malformed output line %S" line)
    output_lines;
  g


(* --- binary AIGER --- *)

let to_binary_string g =
  let buf = Buffer.create 4096 in
  let num_inputs = Graph.num_inputs g in
  let num_ands = Graph.num_ands g in
  Printf.bprintf buf "aig %d %d 0 %d %d\n" (num_inputs + num_ands) num_inputs
    (Graph.num_outputs g) num_ands;
  Array.iter (fun l -> Printf.bprintf buf "%d\n" l) (Graph.outputs g);
  let push_varint x =
    let x = ref x in
    while !x >= 0x80 do
      Buffer.add_char buf (Char.chr ((!x land 0x7f) lor 0x80));
      x := !x lsr 7
    done;
    Buffer.add_char buf (Char.chr !x)
  in
  Graph.iter_ands g (fun n ->
      let f0 = Graph.fanin0 g n and f1 = Graph.fanin1 g n in
      (* f0 <= f1 in the graph; binary AIGER wants rhs0 >= rhs1. *)
      let lhs = Lit.of_var n in
      push_varint (lhs - f1);
      push_varint (f1 - f0));
  Buffer.contents buf

let of_binary_string text =
  let len = String.length text in
  let pos = ref 0 in
  let read_line () =
    let start = !pos in
    while !pos < len && text.[!pos] <> '\n' do
      incr pos
    done;
    if !pos >= len then fail "truncated binary file";
    let line = String.sub text start (!pos - start) in
    incr pos;
    line
  in
  let header = read_line () in
  let m, i, l, o, a =
    match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
    | [ "aig"; m; i; l; o; a ] -> (
      match
        (int_of_string_opt m, int_of_string_opt i, int_of_string_opt l, int_of_string_opt o,
         int_of_string_opt a)
      with
      | Some m, Some i, Some l, Some o, Some a -> (m, i, l, o, a)
      | _ -> fail "malformed binary header %S" header)
    | _ -> fail "malformed binary header %S" header
  in
  if l <> 0 then fail "latches are not supported (combinational only)";
  if m <> i + a then fail "binary AIGER requires M = I + A (got M=%d I=%d A=%d)" m i a;
  let output_lits =
    List.init o (fun _ ->
        match int_of_string_opt (String.trim (read_line ())) with
        | Some v -> v
        | None -> fail "malformed output line")
  in
  let read_varint () =
    let rec loop shift acc =
      if !pos >= len then fail "truncated binary AND section";
      let byte = Char.code text.[!pos] in
      incr pos;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 <> 0 then loop (shift + 7) acc else acc
    in
    loop 0 0
  in
  let g = Graph.create ~num_inputs:i in
  (* map.(v) = our literal for binary variable v. *)
  let map = Array.make (m + 1) Lit.false_ in
  for k = 1 to i do
    map.(k) <- Graph.input g (k - 1)
  done;
  let lit_of encoded =
    let v = encoded / 2 in
    if v > m then fail "literal %d out of range" encoded;
    Lit.apply_sign map.(v) ~neg:(encoded mod 2 = 1)
  in
  for k = 0 to a - 1 do
    let lhs = 2 * (i + 1 + k) in
    let delta0 = read_varint () in
    let delta1 = read_varint () in
    let rhs0 = lhs - delta0 and rhs1 = lhs - delta0 - delta1 in
    if delta0 = 0 || rhs1 < 0 then fail "invalid deltas for AND %d" (i + 1 + k);
    map.(i + 1 + k) <- Graph.and_ g (lit_of rhs0) (lit_of rhs1)
  done;
  List.iter (fun lit -> Graph.add_output g (lit_of lit)) output_lits;
  g

let of_string text =
  if String.length text >= 4 && String.sub text 0 4 = "aig " then of_binary_string text
  else of_ascii_string text

let read_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string (Buffer.contents buf)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
