exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- writing --- *)

let to_string ?(model_name = "cecproof") g =
  let buf = Buffer.create 4096 in
  let input_name i = Printf.sprintf "x%d" i in
  let node_name n = Printf.sprintf "n%d" n in
  let signal_of_var v =
    if v = 0 then fail "internal: constant has no signal"
    else if Graph.is_input_node g v then input_name (v - 1)
    else node_name v
  in
  Printf.bprintf buf ".model %s\n" model_name;
  Printf.bprintf buf ".inputs%s\n"
    (String.concat "" (List.init (Graph.num_inputs g) (fun i -> " " ^ input_name i)));
  Printf.bprintf buf ".outputs%s\n"
    (String.concat "" (List.init (Graph.num_outputs g) (fun o -> Printf.sprintf " f%d" o)));
  Graph.iter_ands g (fun n ->
      let f0 = Graph.fanin0 g n and f1 = Graph.fanin1 g n in
      Printf.bprintf buf ".names %s %s %s\n%c%c 1\n"
        (signal_of_var (Lit.var f0))
        (signal_of_var (Lit.var f1))
        (node_name n)
        (if Lit.is_neg f0 then '0' else '1')
        (if Lit.is_neg f1 then '0' else '1'));
  Array.iteri
    (fun o l ->
      if l = Lit.false_ then Printf.bprintf buf ".names f%d\n" o
      else if l = Lit.true_ then Printf.bprintf buf ".names f%d\n1\n" o
      else
        Printf.bprintf buf ".names %s f%d\n%c 1\n"
          (signal_of_var (Lit.var l))
          o
          (if Lit.is_neg l then '0' else '1'))
    (Graph.outputs g);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model_name path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string ?model_name g))

(* --- reading --- *)

type table = { inputs : string list; rows : (string * char) list }

let tokenize line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Join "\\"-continued lines, strip comments and blanks. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
      else if pending <> "" then join ((pending ^ line) :: acc) "" rest
      else if line = "" then join acc "" rest
      else join (line :: acc) "" rest
  in
  join [] "" raw

let of_string text =
  let lines = logical_lines text in
  let inputs = ref [] and outputs = ref [] in
  let tables : (string, table) Hashtbl.t = Hashtbl.create 64 in
  let saw_model = ref false in
  let rec parse = function
    | [] -> ()
    | line :: rest -> (
      match tokenize line with
      | ".model" :: _ ->
        if !saw_model then fail "multiple models are not supported";
        saw_model := true;
        parse rest
      | ".inputs" :: names ->
        inputs := !inputs @ names;
        parse rest
      | ".outputs" :: names ->
        outputs := !outputs @ names;
        parse rest
      | [ ".latch" ] | ".latch" :: _ -> fail "latches are not supported (combinational only)"
      | ".names" :: signals -> (
        match List.rev signals with
        | [] -> fail ".names without signals"
        | out :: rev_ins ->
          let ins = List.rev rev_ins in
          let rec take_rows acc = function
            | line :: rest when String.length line > 0 && line.[0] <> '.' -> (
              match tokenize line with
              | [ out_val ] when ins = [] && String.length out_val = 1 ->
                take_rows (("", out_val.[0]) :: acc) rest
              | [ pattern; out_val ] when String.length out_val = 1 ->
                if String.length pattern <> List.length ins then
                  fail "row %S arity mismatch for %s" line out;
                take_rows ((pattern, out_val.[0]) :: acc) rest
              | _ -> fail "malformed PLA row %S" line)
            | rest -> (List.rev acc, rest)
          in
          let rows, rest = take_rows [] rest in
          if Hashtbl.mem tables out then fail "signal %s defined twice" out;
          Hashtbl.add tables out { inputs = ins; rows };
          parse rest)
      | [ ".end" ] -> ()
      | directive :: _ when String.length directive > 0 && directive.[0] = '.' ->
        fail "unsupported directive %S" directive
      | _ -> fail "unexpected line %S" line)
  in
  parse lines;
  if !inputs = [] && Hashtbl.length tables = 0 then fail "no content";
  let g = Graph.create ~num_inputs:(List.length !inputs) in
  let env : (string, Lit.t) Hashtbl.t = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.replace env name (Graph.input g i)) !inputs;
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve name =
    match Hashtbl.find_opt env name with
    | Some l -> l
    | None ->
      if Hashtbl.mem in_progress name then fail "combinational cycle through %s" name;
      Hashtbl.add in_progress name ();
      let t =
        match Hashtbl.find_opt tables name with
        | Some t -> t
        | None -> fail "undefined signal %s" name
      in
      let input_lits = List.map resolve t.inputs in
      (* Split rows by output value; BLIF requires a single output
         phase per table, but tolerate mixtures by preferring the
         on-set. *)
      let on_rows = List.filter (fun (_, v) -> v = '1') t.rows in
      let off_rows = List.filter (fun (_, v) -> v = '0') t.rows in
      let cube_of pattern =
        Graph.and_list g
          (List.concat
             (List.mapi
                (fun i l ->
                  match pattern.[i] with
                  | '1' -> [ l ]
                  | '0' -> [ Lit.neg l ]
                  | '-' -> []
                  | c -> fail "bad PLA character %C" c)
                input_lits))
      in
      let value =
        if t.rows = [] then Lit.false_
        else if on_rows <> [] then Graph.or_list g (List.map (fun (p, _) -> cube_of p) on_rows)
        else Lit.neg (Graph.or_list g (List.map (fun (p, _) -> cube_of p) off_rows))
      in
      Hashtbl.remove in_progress name;
      Hashtbl.replace env name value;
      value
  in
  List.iter (fun name -> Graph.add_output g (resolve name)) !outputs;
  g

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
