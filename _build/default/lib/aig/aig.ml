(** Library interface: And-Inverter Graphs and companions.

    {!Aig} re-exports the graph operations at top level and exposes the
    companion modules, so clients write [Aig.and_], [Aig.Lit.neg],
    [Aig.Sim.run], etc. *)

module Lit = Lit
module Sim = Sim
module Cone = Cone
module Aiger = Aiger
module Miter = Miter
module Cut = Cut
module Blif = Blif
module Seq = Seq
include Graph
