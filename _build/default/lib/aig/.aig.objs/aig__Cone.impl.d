lib/aig/cone.ml: Array Graph List Lit
