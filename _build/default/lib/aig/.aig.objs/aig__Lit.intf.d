lib/aig/lit.mli: Format
