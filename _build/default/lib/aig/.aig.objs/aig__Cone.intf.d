lib/aig/cone.mli: Graph Lit
