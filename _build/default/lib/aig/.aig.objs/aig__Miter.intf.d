lib/aig/miter.mli: Graph Lit
