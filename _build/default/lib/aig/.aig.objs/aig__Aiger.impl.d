lib/aig/aiger.ml: Array Buffer Char Fun Graph List Lit Printf String
