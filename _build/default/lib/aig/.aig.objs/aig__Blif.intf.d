lib/aig/blif.mli: Graph
