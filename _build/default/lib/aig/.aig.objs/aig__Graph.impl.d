lib/aig/graph.ml: Array Format Hashtbl List Lit Printf Support
