lib/aig/miter.ml: Array Graph
