lib/aig/cut.ml: Array Format Graph Int64 List Lit
