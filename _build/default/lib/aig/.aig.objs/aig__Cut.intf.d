lib/aig/cut.mli: Format Graph
