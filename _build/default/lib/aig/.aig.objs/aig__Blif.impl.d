lib/aig/blif.ml: Array Buffer Fun Graph Hashtbl List Lit Printf String
