lib/aig/seq.mli: Graph
