lib/aig/sim.mli: Graph Lit Support
