lib/aig/seq.ml: Array Buffer Fun Graph List Lit Printf String
