lib/aig/aig.ml: Aiger Blif Cone Cut Graph Lit Miter Seq Sim
