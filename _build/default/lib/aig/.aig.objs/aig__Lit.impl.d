lib/aig/lit.ml: Format Stdlib
