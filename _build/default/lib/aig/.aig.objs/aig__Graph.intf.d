lib/aig/graph.mli: Format Lit
