(** Sequential circuits as combinational graphs plus registers, and
    their bounded unrolling.

    A sequential circuit is represented by its {e transition
    structure}: a combinational graph whose inputs are the primary
    inputs followed by the latch outputs (current state), and whose
    outputs are the primary outputs followed by the latch inputs (next
    state).  {!unroll} expands [k] time frames into a purely
    combinational graph, turning bounded sequential equivalence into
    the combinational problem the rest of this library solves with
    proofs. *)

type t

(** [create ?init comb ~num_pis ~num_latches] wraps a transition
    structure.  [comb] must have [num_pis + num_latches] inputs and at
    least [num_latches] outputs (the last [num_latches] outputs are the
    next-state functions).  [init] gives reset values (default all
    false).
    @raise Invalid_argument on interface mismatch. *)
val create : ?init:bool array -> Graph.t -> num_pis:int -> num_latches:int -> t

val num_pis : t -> int
val num_pos : t -> int
val num_latches : t -> int
val transition : t -> Graph.t

(** [unroll t ~frames] is the combinational expansion: inputs are the
    primary inputs of frame 0, then frame 1, ...; outputs likewise the
    primary outputs per frame.  Latches start at their reset values.
    @raise Invalid_argument unless [frames >= 1]. *)
val unroll : t -> frames:int -> Graph.t

(** {1 AIGER with latches}

    The combinational {!Aiger} reader rejects latches; these functions
    accept them, using the AIGER latch convention (reset value 0). *)

exception Parse_error of string

val of_aiger_string : string -> t
val to_aiger_string : t -> string
val read_file : string -> t
val write_file : string -> t -> unit
