(** Literals: a variable index paired with a sign, packed into one [int].

    The encoding is the AIGER convention, [2 * var + sign], shared by
    the AIG package and the CNF/SAT packages so that the Tseitin
    transform of a graph is the identity on literals.  Variable 0 is
    reserved by the AIG for the constant node: literal 0 denotes
    constant false, literal 1 constant true.  A plain CNF formula may
    use variable 0 as an ordinary variable. *)

type t = int

(** The two constant literals of an AIG. *)
val false_ : t

val true_ : t

(** [make var ~neg] packs a variable index ([var >= 0]) and a sign. *)
val make : int -> neg:bool -> t

(** Positive literal of a variable. *)
val of_var : int -> t

(** Variable index of a literal. *)
val var : t -> int

(** [true] iff the literal is complemented. *)
val is_neg : t -> bool

(** Complement. *)
val neg : t -> t

(** [apply_sign l ~neg] complements [l] iff [neg]. *)
val apply_sign : t -> neg:bool -> t

(** Strip any complement: the positive literal of the same variable. *)
val abs : t -> t

(** [is_const l] holds for literals of variable 0 (AIG constants). *)
val is_const : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Render as in DIMACS: [var+1] with a leading [-] when complemented
    (so that variable 0 prints as 1/-1). *)
val to_dimacs : t -> int

(** Inverse of [to_dimacs].  @raise Invalid_argument on 0. *)
val of_dimacs : int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
