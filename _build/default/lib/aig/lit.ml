type t = int

let false_ = 0
let true_ = 1

let make var ~neg =
  assert (var >= 0);
  (var lsl 1) lor (if neg then 1 else 0)

let of_var var = make var ~neg:false
let var l = l lsr 1
let is_neg l = l land 1 = 1
let neg l = l lxor 1
let apply_sign l ~neg = if neg then l lxor 1 else l
let abs l = l land lnot 1
let is_const l = l lsr 1 = 0
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (l : t) = l land max_int

let to_dimacs l = if is_neg l then -(var l + 1) else var l + 1

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: 0 is not a literal";
  make (Stdlib.abs d - 1) ~neg:(d < 0)

let to_string l = string_of_int (to_dimacs l)
let pp fmt l = Format.pp_print_string fmt (to_string l)
