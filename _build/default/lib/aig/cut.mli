(** K-feasible cut enumeration with truth tables.

    A {e cut} of node [n] is a set of nodes (leaves) such that every
    path from an input to [n] passes through a leaf; a k-feasible cut
    has at most [k] leaves.  Cuts drive every window-based AIG
    optimization: each cut gives a local function of at most [k]
    variables, recorded here as a truth table over the leaves (so
    [k <= 6] packs into one [int64]).

    Enumeration is the standard bottom-up merge: the cut set of an AND
    node is the cross product of its fanins' cut sets, filtered to
    [k]-feasible, deduplicated, dominated cuts removed, and capped at
    [max_cuts] per node (keeping smaller cuts first). *)

type cut = {
  leaves : int array;  (** node identifiers, strictly ascending *)
  truth : int64;  (** function of the node over the leaves; bit [i] is
                      the value under the assignment encoded by [i]
                      (leaf 0 least significant) *)
}

(** Number of leaves. *)
val size : cut -> int

(** The trivial cut of a node: itself, with truth [0b10]. *)
val trivial : int -> cut

(** [enumerate g ~k ~max_cuts] computes cut sets for every node.
    Index the result by node identifier; entry 0 (the constant) is the
    empty list, inputs get their trivial cut only.
    @raise Invalid_argument unless [1 <= k <= 6]. *)
val enumerate : Graph.t -> k:int -> max_cuts:int -> cut list array

(** [eval_truth cut assignment] evaluates the packed truth table under
    per-leaf values ([assignment.(i)] is the value of [cut.leaves.(i)]). *)
val eval_truth : cut -> bool array -> bool

val pp : Format.formatter -> cut -> unit
