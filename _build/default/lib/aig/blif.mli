(** Reading and writing combinational netlists in Berkeley's BLIF
    format (.model / .inputs / .outputs / .names with PLA tables).

    Reading accepts gates in any order (dependencies are resolved
    recursively) and both on-set and off-set tables; latches and
    multiple models are rejected — this is a combinational project.
    Writing emits one two-input [.names] per AND node plus
    buffer/inverter tables for the outputs. *)

exception Parse_error of string

val to_string : ?model_name:string -> Graph.t -> string
val write_file : ?model_name:string -> string -> Graph.t -> unit

(** @raise Parse_error on malformed input, latches, combinational
    cycles, or undefined signals. *)
val of_string : string -> Graph.t

val read_file : string -> Graph.t
