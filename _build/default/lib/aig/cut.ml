type cut = { leaves : int array; truth : int64 }

let size c = Array.length c.leaves
let trivial n = { leaves = [| n |]; truth = 0b10L }

(* Merge two sorted leaf arrays; None if the union exceeds k. *)
let merge_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make k 0 in
  let rec loop i j n =
    if i < la && j < lb then begin
      if n >= k then None
      else if a.(i) = b.(j) then begin
        out.(n) <- a.(i);
        loop (i + 1) (j + 1) (n + 1)
      end
      else if a.(i) < b.(j) then begin
        out.(n) <- a.(i);
        loop (i + 1) j (n + 1)
      end
      else begin
        out.(n) <- b.(j);
        loop i (j + 1) (n + 1)
      end
    end
    else begin
      let rest_len = la - i + (lb - j) in
      if n + rest_len > k then None
      else begin
        Array.blit a i out n (la - i);
        Array.blit b j out (n + (la - i)) (lb - j);
        Some (Array.sub out 0 (n + rest_len))
      end
    end
  in
  loop 0 0 0

(* Re-express [truth] (over [from_leaves]) over the superset
   [to_leaves]: for every assignment index of the wide table, project
   onto the narrow leaves and look up. *)
let expand_truth truth from_leaves to_leaves =
  let wide = Array.length to_leaves in
  let pos =
    Array.map
      (fun leaf ->
        let rec find i = if to_leaves.(i) = leaf then i else find (i + 1) in
        find 0)
      from_leaves
  in
  let out = ref 0L in
  for idx = 0 to (1 lsl wide) - 1 do
    let narrow = ref 0 in
    Array.iteri (fun j p -> if (idx lsr p) land 1 = 1 then narrow := !narrow lor (1 lsl j)) pos;
    if Int64.logand (Int64.shift_right_logical truth !narrow) 1L = 1L then
      out := Int64.logor !out (Int64.shift_left 1L idx)
  done;
  !out

let mask_for width =
  if width >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl width)) 1L

(* [subsumes a b]: a's leaves are a subset of b's (a dominates b, so b
   is redundant). *)
let subsumes a b =
  Array.for_all (fun l -> Array.exists (fun m -> m = l) b.leaves) a.leaves

let enumerate g ~k ~max_cuts =
  if k < 1 || k > 6 then invalid_arg "Cut.enumerate: k must be within [1, 6]";
  if max_cuts < 1 then invalid_arg "Cut.enumerate: max_cuts must be positive";
  let cuts = Array.make (Graph.num_nodes g) [] in
  for i = 0 to Graph.num_inputs g - 1 do
    cuts.(1 + i) <- [ trivial (1 + i) ]
  done;
  Graph.iter_ands g (fun n ->
      let f0 = Graph.fanin0 g n and f1 = Graph.fanin1 g n in
      let candidates = ref [ trivial n ] in
      List.iter
        (fun c0 ->
          List.iter
            (fun c1 ->
              match merge_leaves k c0.leaves c1.leaves with
              | None -> ()
              | Some leaves ->
                let t0 = expand_truth c0.truth c0.leaves leaves in
                let t1 = expand_truth c1.truth c1.leaves leaves in
                let t0 = if Lit.is_neg f0 then Int64.lognot t0 else t0 in
                let t1 = if Lit.is_neg f1 then Int64.lognot t1 else t1 in
                let truth = Int64.logand (mask_for (Array.length leaves)) (Int64.logand t0 t1) in
                candidates := { leaves; truth } :: !candidates)
            cuts.(Lit.var f1))
        cuts.(Lit.var f0);
      (* Deduplicate, drop dominated cuts, keep the smallest. *)
      let sorted =
        List.sort_uniq compare !candidates
        |> List.sort (fun a b -> compare (size a) (size b))
      in
      let kept = ref [] in
      List.iter
        (fun c ->
          if
            List.length !kept < max_cuts
            && not (List.exists (fun better -> subsumes better c) !kept)
          then kept := c :: !kept)
        sorted;
      cuts.(n) <- List.rev !kept);
  cuts

let eval_truth c assignment =
  if Array.length assignment <> size c then invalid_arg "Cut.eval_truth: wrong arity";
  let idx = ref 0 in
  Array.iteri (fun i v -> if v then idx := !idx lor (1 lsl i)) assignment;
  Int64.logand (Int64.shift_right_logical c.truth !idx) 1L = 1L

let pp fmt c =
  Format.fprintf fmt "{";
  Array.iteri (fun i l -> Format.fprintf fmt (if i = 0 then "%d" else " %d") l) c.leaves;
  Format.fprintf fmt " : %Lx}" c.truth
