(** Reading and writing combinational AIGs in the ASCII AIGER format
    ("aag", Biere 2007).  Latches are not supported: this is a
    combinational-equivalence project, and files with latches are
    rejected with {!Parse_error}.  Both the ASCII ("aag") and the
    binary ("aig") encodings are read; writing defaults to ASCII, with
    {!to_binary_string} for the binary form. *)

exception Parse_error of string

(** Render a graph.  AND fanins are emitted with [rhs0 >= rhs1] as the
    format requires. *)
val to_string : Graph.t -> string

val write_channel : out_channel -> Graph.t -> unit
val write_file : string -> Graph.t -> unit

(** Render in the compact binary format ("aig"): implicit input
    literals and varint-delta-encoded ANDs. *)
val to_binary_string : Graph.t -> string

(** Parse an AIGER document, auto-detecting ASCII ("aag") vs binary
    ("aig") from the header.
    @raise Parse_error on malformed input or latches. *)
val of_string : string -> Graph.t

val read_channel : in_channel -> Graph.t
val read_file : string -> Graph.t
