type t = { mutable data : float array; mutable size : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0.0; size = 0 }

let size v = v.size

let get v i =
  assert (i >= 0 && i < v.size);
  Array.unsafe_get v.data i

let set v i x =
  assert (i >= 0 && i < v.size);
  Array.unsafe_set v.data i x

let ensure v n =
  if n > Array.length v.data then begin
    let capacity = ref (Array.length v.data) in
    while !capacity < n do
      capacity := !capacity * 2
    done;
    let data = Array.make !capacity 0.0 in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end

let push v x =
  ensure v (v.size + 1);
  Array.unsafe_set v.data v.size x;
  v.size <- v.size + 1

let grow v n x =
  ensure v n;
  while v.size < n do
    Array.unsafe_set v.data v.size x;
    v.size <- v.size + 1
  done

let clear v = v.size <- 0

let scale v c =
  for i = 0 to v.size - 1 do
    Array.unsafe_set v.data i (Array.unsafe_get v.data i *. c)
  done
