(** Growable vectors of unboxed [float]s (activity tables, statistics). *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val get : t -> int -> float
val set : t -> int -> float -> unit
val push : t -> float -> unit

(** [grow v n x] extends [v] with copies of [x] until [size v >= n]. *)
val grow : t -> int -> float -> unit

val clear : t -> unit

(** Multiply every element by a constant (VSIDS rescaling). *)
val scale : t -> float -> unit
